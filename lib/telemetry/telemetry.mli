(** Pipeline-wide observability: spans, counters, histograms, exporters.

    The measurement substrate behind the paper's runtime claims (the ~0.8 %
    integration overhead, Table 4's per-pair solver effort): hierarchical
    spans with begin/end nesting, monotonic counters, and fixed-bucket
    histograms, all recorded against an injectable clock and drained
    through deterministic exporters (Chrome trace-event JSON for Perfetto,
    JSONL metric dumps, a summary table).

    Design constraints, in priority order:

    - {b near-zero cost when disabled}: every instrumentation point is a
      single mutable-bool check; counter bumps are an int store with no
      allocation, so the [Sim64] settle loop can stay instrumented
      permanently (the overhead regression test in [test_telemetry]
      asserts byte-identical GC allocation counts with telemetry off);
    - {b deterministic under the virtual clock}: the virtual source
      advances by a fixed step on every read, so two identical runs
      produce byte-identical exports — the property the golden-trace
      tests and the CI trace diff rely on;
    - {b tolerant of unbalanced use}: a stray {!end_span} is ignored and
      {!snapshot} virtually closes still-open spans, so any interleaving
      of begin/end through this API yields a well-formed forest (the
      QCheck property);
    - {b domain-safe}: counters and histograms are shared across OCaml 5
      domains and bump through lock-free atomics (two domains hammering
      the same counter lose no increments — the two-domain test in
      [test_telemetry]); span state is domain-local, so each domain grows
      its own well-formed forest and a coordinator stitches worker
      forests into its trace with {!harvest}/{!absorb}.

    The sink is global (one process, one trace), matching the
    one-pipeline-per-process shape of [vega_cli] and [bench].
    {!enable}/{!disable}/{!reset} are coordinator operations: call them
    from the main domain while no worker domains are running. *)

(** Argument values attachable to spans (rendered into exporter [args]). *)
type value = Int of int | Float of float | Str of string | Bool of bool

(** Time sources.  All timestamps are integer nanoseconds in a native
    [int] (63 bits holds ~292 years). *)
module Clock : sig
  type t

  val monotonic : unit -> t
  (** Real time ([Unix.gettimeofday]), clamped to be strictly increasing
      across reads so span nesting always has monotone timestamps. *)

  val virtual_ : ?start_ns:int -> ?step_ns:int -> unit -> t
  (** Deterministic test source: starts at [start_ns] (default 0) and
      advances by [step_ns] (default 1000, i.e. 1 us) on every read.
      @raise Invalid_argument if [step_ns <= 0]. *)

  val now_ns : t -> int
  (** Read the clock.  Every read of a virtual clock advances it. *)

  val is_virtual : t -> bool
end

(** {1 Sink lifecycle} *)

val enabled : unit -> bool
(** Whether the global sink is recording.  The one check every
    instrumentation point makes; hot paths with argument lists should
    guard on it explicitly so the arguments are never even allocated. *)

val enable : ?clock:Clock.t -> unit -> unit
(** Start a fresh recording session: clears spans, zeroes every
    registered counter and histogram, installs [clock] (default: a new
    monotonic source). *)

val disable : unit -> unit
(** Stop recording.  Collected data is retained for {!snapshot}. *)

val reset : unit -> unit
(** Clear the calling domain's spans and zero every registered counter
    and histogram (shared across domains) without changing the enabled
    state or the clock. *)

(** {1 Spans} *)

val begin_span : ?cat:string -> string -> unit
(** Open a span nested under the calling domain's innermost open span.
    No-op when disabled.  Span state is domain-local: spans opened in a
    worker domain build that domain's private forest (see {!harvest}). *)

val end_span : ?args:(string * value) list -> unit -> unit
(** Close the innermost open span, attaching [args].  A stray end (no
    open span) is ignored.  No-op when disabled. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the span is closed even
    when [f] raises. *)

val span_depth : unit -> int
(** Number of currently open spans in the calling domain. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up) the counter with this name.  Counters are
      created once at module-initialization time by the instrumented
      libraries and live for the whole process; {!enable}/[reset] zero
      their values but never unregister them. *)

  val add : t -> int -> unit
  (** Allocation-free bump, recorded only while the sink is enabled. *)

  val incr : t -> unit
  val value : t -> int

  (** Pure snapshot, the unit of cross-shard aggregation. *)
  type snapshot = { c_name : string; c_value : int }

  val merge : snapshot -> snapshot -> snapshot
  (** Sum of two snapshots of the same counter (associative and
      commutative).  @raise Invalid_argument on a name mismatch. *)
end

(** {1 Fixed-bucket histograms} *)

module Histogram : sig
  type t

  val make : string -> bounds:int array -> t
  (** Register (or look up) a histogram with the given inclusive bucket
      upper bounds; an implicit overflow bucket catches everything above
      the last bound.  @raise Invalid_argument if [bounds] is not
      strictly increasing, or on re-registration with different
      bounds. *)

  val observe : t -> int -> unit
  (** Record a value (while enabled). *)

  type snapshot = {
    h_name : string;
    h_bounds : int array;
    h_counts : int array;  (** length = length bounds + 1 (overflow last) *)
    h_total : int;
    h_sum : int;
  }

  val snapshot_value : t -> snapshot

  val merge : snapshot -> snapshot -> snapshot
  (** Bucket-wise sum (associative and commutative).
      @raise Invalid_argument on a name or bounds mismatch. *)
end

(** {1 Snapshots} *)

(** A completed span: a node of the forest. *)
type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_ns : int;
  sp_end_ns : int;
  sp_args : (string * value) list;
  sp_children : span list;  (** in start order *)
}

(** {1 Cross-domain span transfer}

    A worker domain records spans into its own forest; before the domain
    is joined it calls {!harvest} and ships the resulting list back (as
    part of its result value), and the coordinator calls {!absorb} to
    splice the workers' forests into its own trace in a deterministic
    order of its choosing. *)

val harvest : unit -> span list
(** The calling domain's completed root spans, in start order; clears
    them from the recorder.  Open frames are left untouched (a worker
    should harvest only after closing its spans). *)

val absorb : span list -> unit
(** Append harvested spans, preserving their order, under the calling
    domain's innermost open span (or as roots if none is open).  No-op
    when disabled or on an empty list. *)

type snapshot = {
  ss_spans : span list;  (** root spans, in start order *)
  ss_counters : Counter.snapshot list;  (** sorted by name *)
  ss_histograms : Histogram.snapshot list;  (** sorted by name *)
  ss_end_ns : int;  (** clock value when the snapshot was taken *)
}

val snapshot : unit -> snapshot
(** Drain the sink into a pure value.  Still-open spans are virtually
    closed at the current clock value (the recorder state is not
    modified), so the result is always a well-formed forest. *)

val span_totals : snapshot -> (string * int * int) list
(** Per span name, in first-seen depth-first order: (name, occurrence
    count, summed duration in ns). *)

(** {1 Exporters} — all byte-deterministic functions of the snapshot. *)

module Export : sig
  val chrome_trace : snapshot -> string
  (** Chrome trace-event JSON (one complete "X" event per span, one "C"
      event per counter that recorded a nonzero value), loadable in
      Perfetto / chrome://tracing.  Zero-valued counters are omitted so
      the trace depends only on the run, not on which instrumented
      modules the producing binary happens to link. *)

  val jsonl : snapshot -> string
  (** One JSON object per line: every counter, histogram, and per-name
      span total. *)

  val summary : snapshot -> string
  (** Human-readable table of span totals, counters, and histograms. *)
end
