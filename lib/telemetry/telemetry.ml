(* Global-sink telemetry: spans, counters, histograms, exporters.

   The recorder is domain-safe.  Counters and histograms are shared across
   domains and bump through [Atomic] cells (an [Atomic.fetch_and_add] on an
   immediate int: no allocation, no lock), which is what lets the Sim64
   settle loop stay instrumented permanently and lets fleet workers bump
   the same counters concurrently without tearing.  Span state is
   per-domain ([Domain.DLS]): each domain grows its own well-formed span
   forest and a coordinator can [harvest] a worker's finished forest and
   [absorb] it into its own.  The registries are guarded by a mutex (cold
   path: [make] runs once per name, usually at module init).  The
   [enabled_flag] bool is the only thing a disabled instrumentation point
   ever touches; it is flipped by [enable]/[disable] from the coordinating
   domain while no workers run, so plain (non-atomic) reads are fine —
   OCaml 5 guarantees they are memory-safe, and a stale read merely
   records or skips a sample at the toggle boundary.
   Timestamps are native-int nanoseconds: 63 bits holds ~292 years, and
   staying out of Int64 keeps clock reads and span frames boxing-free. *)

type value = Int of int | Float of float | Str of string | Bool of bool

module Clock = struct
  type t =
    | Monotonic of { last : int Atomic.t }
    | Virtual of { now : int Atomic.t; step : int }

  let monotonic () = Monotonic { last = Atomic.make 0 }

  let virtual_ ?(start_ns = 0) ?(step_ns = 1000) () =
    if step_ns <= 0 then invalid_arg "Telemetry.Clock.virtual_: step_ns must be positive";
    Virtual { now = Atomic.make start_ns; step = step_ns }

  let now_ns = function
    | Monotonic m ->
      (* clamped to strictly increasing across all domains: gettimeofday
         can step backwards (NTP) and repeats at microsecond resolution *)
      let rec claim () =
        let last = Atomic.get m.last in
        let t = int_of_float (Unix.gettimeofday () *. 1e9) in
        let t = if t > last then t else last + 1 in
        if Atomic.compare_and_set m.last last t then t else claim ()
      in
      claim ()
    | Virtual v -> Atomic.fetch_and_add v.now v.step

  let is_virtual = function Virtual _ -> true | Monotonic _ -> false
end

(* ---- the global sink ---- *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_ns : int;
  sp_end_ns : int;
  sp_args : (string * value) list;
  sp_children : span list;
}

type frame = {
  f_name : string;
  f_cat : string;
  f_start : int;
  mutable f_children : span list;  (* reversed *)
}

(* Per-domain span state.  Each domain's forest is private to it, so frame
   mutation needs no locks; [harvest]/[absorb] move finished spans (plain
   immutable values) between domains explicitly. *)
type domain_spans = {
  mutable ds_stack : frame list; (* head = innermost open span *)
  mutable ds_roots : span list;  (* reversed *)
}

let spans_key : domain_spans Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { ds_stack = []; ds_roots = [] })

let local_spans () = Domain.DLS.get spans_key

let enabled_flag = ref false
let the_clock = ref (Clock.monotonic ())

let enabled () = !enabled_flag
let span_depth () = List.length (local_spans ()).ds_stack

module Counter = struct
  type t = { c_id : string; v : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64
  let registry_lock = Mutex.create ()

  let make name =
    Mutex.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
          let c = { c_id = name; v = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          c)

  let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.v n)
  let incr c = if !enabled_flag then ignore (Atomic.fetch_and_add c.v 1)
  let value c = Atomic.get c.v

  type snapshot = { c_name : string; c_value : int }

  let merge a b =
    if a.c_name <> b.c_name then
      invalid_arg
        (Printf.sprintf "Telemetry.Counter.merge: %s vs %s" a.c_name b.c_name);
    { c_name = a.c_name; c_value = a.c_value + b.c_value }
end

module Histogram = struct
  type t = {
    h_id : string;
    bounds : int array;
    counts : int Atomic.t array;
    total : int Atomic.t;
    sum : int Atomic.t;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let registry_lock = Mutex.create ()

  let make name ~bounds =
    for i = 1 to Array.length bounds - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg (Printf.sprintf "Telemetry.Histogram.make %s: bounds not strictly increasing" name)
    done;
    Mutex.protect registry_lock (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h ->
          if h.bounds <> bounds then
            invalid_arg (Printf.sprintf "Telemetry.Histogram.make %s: bounds differ from registration" name);
          h
        | None ->
          let h =
            {
              h_id = name;
              bounds = Array.copy bounds;
              counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
              total = Atomic.make 0;
              sum = Atomic.make 0;
            }
          in
          Hashtbl.replace registry name h;
          h)

  let observe h v =
    if !enabled_flag then begin
      let n = Array.length h.bounds in
      let rec idx i = if i >= n || v <= h.bounds.(i) then i else idx (i + 1) in
      let i = idx 0 in
      ignore (Atomic.fetch_and_add h.counts.(i) 1);
      ignore (Atomic.fetch_and_add h.total 1);
      ignore (Atomic.fetch_and_add h.sum v)
    end

  type snapshot = {
    h_name : string;
    h_bounds : int array;
    h_counts : int array;
    h_total : int;
    h_sum : int;
  }

  let snapshot_value h =
    {
      h_name = h.h_id;
      h_bounds = Array.copy h.bounds;
      h_counts = Array.map Atomic.get h.counts;
      h_total = Atomic.get h.total;
      h_sum = Atomic.get h.sum;
    }

  let merge a b =
    if a.h_name <> b.h_name then
      invalid_arg (Printf.sprintf "Telemetry.Histogram.merge: %s vs %s" a.h_name b.h_name);
    if a.h_bounds <> b.h_bounds then
      invalid_arg (Printf.sprintf "Telemetry.Histogram.merge %s: bucket bounds differ" a.h_name);
    {
      h_name = a.h_name;
      h_bounds = a.h_bounds;
      h_counts = Array.init (Array.length a.h_counts) (fun i -> a.h_counts.(i) + b.h_counts.(i));
      h_total = a.h_total + b.h_total;
      h_sum = a.h_sum + b.h_sum;
    }
end

(* ---- lifecycle ---- *)

let reset () =
  let ds = local_spans () in
  ds.ds_stack <- [];
  ds.ds_roots <- [];
  Mutex.protect Counter.registry_lock (fun () ->
      Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.Counter.v 0) Counter.registry);
  Mutex.protect Histogram.registry_lock (fun () ->
      Hashtbl.iter
        (fun _ (h : Histogram.t) ->
          Array.iter (fun c -> Atomic.set c 0) h.Histogram.counts;
          Atomic.set h.Histogram.total 0;
          Atomic.set h.Histogram.sum 0)
        Histogram.registry)

let enable ?clock () =
  (match clock with Some c -> the_clock := c | None -> the_clock := Clock.monotonic ());
  reset ();
  enabled_flag := true

let disable () = enabled_flag := false

(* ---- spans ---- *)

let begin_span ?(cat = "") name =
  if !enabled_flag then begin
    let ds = local_spans () in
    ds.ds_stack <-
      { f_name = name; f_cat = cat; f_start = Clock.now_ns !the_clock; f_children = [] }
      :: ds.ds_stack
  end

let end_span ?(args = []) () =
  if !enabled_flag then begin
    let ds = local_spans () in
    match ds.ds_stack with
    | [] -> () (* stray end: ignored so the forest stays well-formed *)
    | f :: rest ->
      ds.ds_stack <- rest;
      let sp =
        {
          sp_name = f.f_name;
          sp_cat = f.f_cat;
          sp_start_ns = f.f_start;
          sp_end_ns = Clock.now_ns !the_clock;
          sp_args = args;
          sp_children = List.rev f.f_children;
        }
      in
      (match rest with
      | [] -> ds.ds_roots <- sp :: ds.ds_roots
      | parent :: _ -> parent.f_children <- sp :: parent.f_children)
  end

let with_span ?cat name f =
  begin_span ?cat name;
  match f () with
  | v ->
    end_span ();
    v
  | exception e ->
    end_span ~args:[ ("exception", Str (Printexc.to_string e)) ] ();
    raise e

(* ---- cross-domain span transfer ---- *)

let harvest () =
  let ds = local_spans () in
  let spans = List.rev ds.ds_roots in
  ds.ds_roots <- [];
  spans

let absorb spans =
  if !enabled_flag && spans <> [] then begin
    let ds = local_spans () in
    match ds.ds_stack with
    | [] -> ds.ds_roots <- List.rev_append spans ds.ds_roots
    | f :: _ -> f.f_children <- List.rev_append spans f.f_children
  end

(* ---- snapshots ---- *)

type snapshot = {
  ss_spans : span list;
  ss_counters : Counter.snapshot list;
  ss_histograms : Histogram.snapshot list;
  ss_end_ns : int;
}

let snapshot () =
  (* virtually close this domain's still-open frames at one common end
     time; the stack's head is the innermost frame, so folding left
     threads each closed span into its parent *)
  let ds = local_spans () in
  let now = Clock.now_ns !the_clock in
  let open_root =
    List.fold_left
      (fun child f ->
        let kids =
          List.rev f.f_children @ (match child with None -> [] | Some c -> [ c ])
        in
        Some
          {
            sp_name = f.f_name;
            sp_cat = f.f_cat;
            sp_start_ns = f.f_start;
            sp_end_ns = now;
            sp_args = [];
            sp_children = kids;
          })
      None ds.ds_stack
  in
  let spans = List.rev_append ds.ds_roots (match open_root with None -> [] | Some s -> [ s ]) in
  let counters =
    Mutex.protect Counter.registry_lock (fun () ->
        Hashtbl.fold
          (fun _ (c : Counter.t) acc ->
            { Counter.c_name = c.Counter.c_id; c_value = Atomic.get c.Counter.v } :: acc)
          Counter.registry [])
    |> List.sort (fun a b -> compare a.Counter.c_name b.Counter.c_name)
  in
  let histograms =
    Mutex.protect Histogram.registry_lock (fun () ->
        Hashtbl.fold (fun _ h acc -> Histogram.snapshot_value h :: acc) Histogram.registry [])
    |> List.sort (fun a b -> compare a.Histogram.h_name b.Histogram.h_name)
  in
  { ss_spans = spans; ss_counters = counters; ss_histograms = histograms; ss_end_ns = now }

let span_totals snap =
  let order = ref [] in
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  let rec walk sp =
    let count, total =
      match Hashtbl.find_opt totals sp.sp_name with
      | Some ct -> ct
      | None ->
        order := sp.sp_name :: !order;
        (0, 0)
    in
    Hashtbl.replace totals sp.sp_name (count + 1, total + (sp.sp_end_ns - sp.sp_start_ns));
    List.iter walk sp.sp_children
  in
  List.iter walk snap.ss_spans;
  List.rev_map
    (fun name ->
      let count, total = Hashtbl.find totals name in
      (name, count, total))
    !order

(* ---- exporters ---- *)

module Export = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let value_json = function
    | Int n -> string_of_int n
    | Float f -> Printf.sprintf "%.6g" f
    | Str s -> Printf.sprintf "\"%s\"" (escape s)
    | Bool b -> if b then "true" else "false"

  let args_json args =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (value_json v)) args)

  (* Chrome trace "ts"/"dur" are microseconds; keep sub-us precision with a
     fixed three-decimal rendering computed in integer arithmetic, so the
     output is byte-deterministic. *)
  let us_of_ns ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

  let chrome_trace snap =
    let buf = Buffer.create 4096 in
    let first = ref true in
    let emit line =
      if !first then first := false else Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf line
    in
    Buffer.add_string buf "{\"traceEvents\":[\n";
    let rec walk sp =
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":{%s}}"
           (escape sp.sp_name)
           (escape (if sp.sp_cat = "" then "vega" else sp.sp_cat))
           (us_of_ns sp.sp_start_ns)
           (us_of_ns (sp.sp_end_ns - sp.sp_start_ns))
           (args_json sp.sp_args));
      List.iter walk sp.sp_children
    in
    List.iter walk snap.ss_spans;
    (* Zero-valued counters are omitted: which counters are merely
       *registered* depends on which instrumented modules a binary links,
       so including them would make the trace a function of the linker
       image rather than of the run (and would break golden-trace
       comparison across producers). *)
    List.iter
      (fun (c : Counter.snapshot) ->
        if c.Counter.c_value <> 0 then
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":{\"value\":%d}}"
               (escape c.Counter.c_name) (us_of_ns snap.ss_end_ns) c.Counter.c_value))
      snap.ss_counters;
    Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"vega-telemetry\"}}\n";
    Buffer.contents buf

  let int_array_json a =
    "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

  let jsonl snap =
    let buf = Buffer.create 2048 in
    List.iter
      (fun (c : Counter.snapshot) ->
        Buffer.add_string buf
          (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n"
             (escape c.Counter.c_name) c.Counter.c_value))
      snap.ss_counters;
    List.iter
      (fun (h : Histogram.snapshot) ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"type\":\"histogram\",\"name\":\"%s\",\"bounds\":%s,\"counts\":%s,\"total\":%d,\"sum\":%d}\n"
             (escape h.Histogram.h_name)
             (int_array_json h.Histogram.h_bounds)
             (int_array_json h.Histogram.h_counts)
             h.Histogram.h_total h.Histogram.h_sum))
      snap.ss_histograms;
    List.iter
      (fun (name, count, total_ns) ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"type\":\"span_total\",\"name\":\"%s\",\"count\":%d,\"total_ns\":%d}\n"
             (escape name) count total_ns))
      (span_totals snap);
    Buffer.contents buf

  let summary snap =
    let buf = Buffer.create 2048 in
    let spans = span_totals snap in
    if spans <> [] then begin
      Buffer.add_string buf "spans (name, count, total):\n";
      List.iter
        (fun (name, count, total_ns) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %8d %12s us\n" name count (us_of_ns total_ns)))
        spans
    end;
    let live = List.filter (fun (c : Counter.snapshot) -> c.Counter.c_value <> 0) snap.ss_counters in
    if live <> [] then begin
      Buffer.add_string buf "counters:\n";
      List.iter
        (fun (c : Counter.snapshot) ->
          Buffer.add_string buf (Printf.sprintf "  %-40s %12d\n" c.Counter.c_name c.Counter.c_value))
        live
    end;
    let live_h = List.filter (fun (h : Histogram.snapshot) -> h.Histogram.h_total <> 0) snap.ss_histograms in
    if live_h <> [] then begin
      Buffer.add_string buf "histograms:\n";
      List.iter
        (fun (h : Histogram.snapshot) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-40s total %d sum %d\n" h.Histogram.h_name h.Histogram.h_total
               h.Histogram.h_sum);
          Array.iteri
            (fun i n ->
              if n > 0 then
                let label =
                  if i < Array.length h.Histogram.h_bounds then
                    Printf.sprintf "<=%d" h.Histogram.h_bounds.(i)
                  else "overflow"
                in
                Buffer.add_string buf (Printf.sprintf "    %-12s %d\n" label n))
            h.Histogram.h_counts)
        live_h
    end;
    Buffer.contents buf
end
