type constant = C0 | C1 | C_random
type activation = Any_transition | Rising_edge | Falling_edge
type violation_kind = Setup_violation | Hold_violation

type spec = {
  start_dff : string;
  end_dff : string;
  kind : violation_kind;
  constant : constant;
  activation : activation;
}

let random_port = "c_fault"

let describe s =
  Printf.sprintf "%s %s~>%s C=%s %s"
    (match s.kind with Setup_violation -> "setup" | Hold_violation -> "hold")
    s.start_dff s.end_dff
    (match s.constant with C0 -> "0" | C1 -> "1" | C_random -> "rand")
    (match s.activation with
    | Any_transition -> "any"
    | Rising_edge -> "rising"
    | Falling_edge -> "falling")

let variants ?(mitigation = false) ~start_dff ~end_dff kind =
  let base constant activation = { start_dff; end_dff; kind; constant; activation } in
  if mitigation then
    [ base C0 Rising_edge; base C0 Falling_edge; base C1 Rising_edge; base C1 Falling_edge ]
  else [ base C0 Any_transition; base C1 Any_transition ]

let select_names = [ "_fault_diff"; "_fault_rise"; "_fault_fall"; "_fault_meta" ]

let select_cells nl =
  Array.to_list (Netlist.cells nl)
  |> List.filter_map (fun (c : Netlist.cell) ->
         if List.mem c.Netlist.name select_names then Some c.Netlist.name else None)

let find_dff nl name =
  let c = Netlist.find_cell nl name in
  if not (Cell.Kind.is_sequential c.kind) then
    invalid_arg (Printf.sprintf "Fault: cell %s is not a DFF" name);
  c

module B = Netlist.Builder

(* Build the failure-model logic: the condition under which Y samples the
   wrong constant, and the faulty-D mux.  [resolve] maps original nets to
   their shadow copies when the model drives a shadow replica (identity for
   failing netlists); it matters when the launching flip-flop X itself sits
   inside the affected cone (state feedback through Y).  Returns the net
   carrying Y's faulty D value. *)
let build_fault_d ?(resolve = fun n -> n) b nl spec =
  let x = find_dff nl spec.start_dff and y = find_dff nl spec.end_dff in
  let c_net =
    match spec.constant with
    | C0 -> B.add_cell ~name:"_fault_c0" b Cell.Kind.Tie0 [||]
    | C1 -> B.add_cell ~name:"_fault_c1" b Cell.Kind.Tie1 [||]
    | C_random -> (B.add_input b random_port 1).(0)
  in
  let xq = resolve x.output in
  let wrong =
    if x.id = y.id then
      (* self-loop: Y's captured value depends on its own same-cycle value;
         the flip-flop goes metastable and always yields C (Section 3.3.1) *)
      B.add_cell ~name:"_fault_meta" b Cell.Kind.Tie1 [||]
    else begin
      match spec.kind with
      | Setup_violation ->
        (* X(t) vs X(t-1): retain X's output for one cycle *)
        let hist =
          B.add_cell ~name:"_fault_hist" ~clock_domain:x.clock_domain b Cell.Kind.Dff [| xq |]
        in
        (match spec.activation with
        | Any_transition -> B.add_cell ~name:"_fault_diff" b Cell.Kind.Xor2 [| xq; hist |]
        | Rising_edge ->
          let nh = B.add_cell ~name:"_fault_nh" b Cell.Kind.Not [| hist |] in
          B.add_cell ~name:"_fault_rise" b Cell.Kind.And2 [| xq; nh |]
        | Falling_edge ->
          let nx = B.add_cell ~name:"_fault_nx" b Cell.Kind.Not [| xq |] in
          B.add_cell ~name:"_fault_fall" b Cell.Kind.And2 [| nx; hist |])
      | Hold_violation ->
        (* X(t) vs X(t+1): X's next value is its current D input *)
        let xd = resolve x.inputs.(0) in
        (match spec.activation with
        | Any_transition -> B.add_cell ~name:"_fault_diff" b Cell.Kind.Xor2 [| xq; xd |]
        | Rising_edge ->
          let nq = B.add_cell ~name:"_fault_nq" b Cell.Kind.Not [| xq |] in
          B.add_cell ~name:"_fault_rise" b Cell.Kind.And2 [| xd; nq |]
        | Falling_edge ->
          let nd = B.add_cell ~name:"_fault_nd" b Cell.Kind.Not [| xd |] in
          B.add_cell ~name:"_fault_fall" b Cell.Kind.And2 [| nd; xq |])
    end
  in
  let y_d = resolve y.inputs.(0) in
  (* mux inputs (a, b, s): s=wrong selects the constant *)
  B.add_cell ~name:"_fault_mux" b Cell.Kind.Mux2 [| y_d; c_net; wrong |]

let failing_netlist nl spec =
  let b = B.of_netlist nl in
  let y = find_dff nl spec.end_dff in
  let fault_d = build_fault_d b nl spec in
  B.rewire_input b ~cell_id:y.id ~pin:0 fault_d;
  B.finish b

type instrumented = {
  netlist : Netlist.t;
  shadow_of : (Netlist.net * Netlist.net) list;
  cover : Formal.expr;
  watch : (string * Netlist.net) list;
}

let instrument_shadow nl spec =
  let y = find_dff nl spec.end_dff in
  let cone = Netlist.fanout_cone nl y.output in
  let cone = if List.mem y.id cone then cone else y.id :: cone in
  let b = B.of_netlist nl in
  (* Pass 1: shadow copies, initially wired to the original nets. *)
  let copy_net = Hashtbl.create 64 in
  let copies =
    List.map
      (fun id ->
        let c = Netlist.cell nl id in
        let new_id, out =
          B.add_cell_with_id ~name:(c.name ^ "_s") ~clock_domain:c.clock_domain
            ~reset_value:c.reset_value b c.kind (Array.copy c.inputs)
        in
        Hashtbl.replace copy_net c.output out;
        (c, new_id))
      cone
  in
  let resolve n = match Hashtbl.find_opt copy_net n with Some s -> s | None -> n in
  (* Pass 2: repoint shadow-cell inputs into the shadow domain. *)
  List.iter
    (fun ((c : Netlist.cell), new_id) ->
      Array.iteri
        (fun pin n ->
          match Hashtbl.find_opt copy_net n with
          | Some s -> B.rewire_input b ~cell_id:new_id ~pin s
          | None -> ())
        c.inputs)
    copies;
  (* Failure model feeds only the shadow Y. *)
  let fault_d = build_fault_d ~resolve b nl spec in
  let shadow_y_id =
    List.assoc y.id (List.map (fun ((c : Netlist.cell), i) -> (c.id, i)) copies)
  in
  B.rewire_input b ~cell_id:shadow_y_id ~pin:0 fault_d;
  (* Export shadowed output ports and collect cover targets. *)
  let shadow_of = ref [] in
  List.iter
    (fun (p : Netlist.port) ->
      let affected = Array.exists (fun n -> Hashtbl.mem copy_net n) p.port_nets in
      if affected then begin
        let nets = Array.map resolve p.port_nets in
        B.add_output b (p.port_name ^ "_s") nets;
        Array.iter
          (fun n ->
            match Hashtbl.find_opt copy_net n with
            | Some s -> shadow_of := (n, s) :: !shadow_of
            | None -> ())
          p.port_nets
      end)
    (Netlist.outputs nl);
  let shadow_of = List.rev !shadow_of in
  if shadow_of = [] then
    invalid_arg
      (Printf.sprintf "Fault.instrument_shadow: %s cannot influence any output port"
         (describe spec));
  let cover =
    match shadow_of with
    | (n, s) :: rest ->
      List.fold_left
        (fun acc (n, s) -> Formal.Or (acc, Formal.nets_differ n s))
        (Formal.nets_differ n s) rest
    | [] -> assert false
  in
  let netlist = B.finish b in
  let watch =
    List.concat_map
      (fun (n, s) ->
        let name = Netlist.net_name netlist n in
        [ (name, n); (name ^ "_s", s) ])
      shadow_of
  in
  { netlist; shadow_of; cover; watch }
