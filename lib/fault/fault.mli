(** Failure-model instrumentation (the paper's Section 3.3.1–3.3.2).

    A timing violation on a register-to-register path [X ~> Y] is modeled
    logically: the capturing flip-flop [Y] samples a wrong constant [C]
    whenever the launching flip-flop [X] transitions in the window that the
    violated constraint protects —

    - setup (Eq. 2): [Y(t+1) = C] when [X(t) <> X(t-1)], else correct;
    - hold (Eq. 3): [Y(t+1) = C] when [X(t) <> X(t+1)], else correct;
    - the degenerate self-loop [X = Y] is metastable: [Y] always yields [C].

    The model is spliced into the netlist with a MUX in front of [Y]'s [D]
    pin (plus a history DFF for the setup case).  Two products exist:

    - {!failing_netlist}: the netlist *behaves* faulty — the circuit-level
      failure model used to evaluate test-case quality (Section 5.2.3) and
      exported as a Verilog artifact;
    - {!instrument_shadow}: the original circuit is kept intact and a
      *shadow replica* of everything [Y] influences is added, with the
      failure model feeding only the replica — giving the formal engine a
      cover target ("original and shadow outputs differ") that captures
      exactly the module-visible consequences of the fault.

    The §3.3.4 mitigation for initial-value dependency is the
    {!activation} knob: restrict the fault to fire only on a rising or a
    falling transition of [X]. *)

type constant =
  | C0  (** the flip-flop captures 0 on violation *)
  | C1  (** captures 1 *)
  | C_random
      (** captures an unconstrained fresh value each cycle, exposed as the
          extra 1-bit input port {!random_port} *)

type activation =
  | Any_transition  (** Eq. 2/3 exactly as written *)
  | Rising_edge  (** fault only when X transitions 0 -> 1 *)
  | Falling_edge  (** fault only when X transitions 1 -> 0 *)

type violation_kind = Setup_violation | Hold_violation

type spec = {
  start_dff : string;  (** instance name of the launching DFF [X] *)
  end_dff : string;  (** instance name of the capturing DFF [Y] *)
  kind : violation_kind;
  constant : constant;
  activation : activation;
}

val describe : spec -> string

val variants :
  ?mitigation:bool -> start_dff:string -> end_dff:string -> violation_kind -> spec list
(** The fault variants explored per violating pair: without the §3.3.4
    [mitigation] (default), [C = 0] and [C = 1] with [Any_transition]
    activation; with it, the four [C x rising/falling-edge] combinations.
    [C_random] is never enumerated — it is the pessimistic model reserved
    for explicit experiments. *)

val random_port : string
(** Name of the free input port added when [constant = C_random]
    (["c_fault"]). *)

val select_cells : Netlist.t -> string list
(** Instance names of the fault-activation cells the instrumentation
    spliced into a netlist (the corruption mux's select logic:
    ["_fault_diff"], ["_fault_rise"], ["_fault_fall"], ["_fault_meta"]).
    Tying these low (e.g. via [Cec.check ~tie_low]) renders the failure
    model inert, so an instrumented netlist must be combinationally
    equivalent to its source — the static gate the runtime guard applies
    before arming an injector.  Empty for an un-instrumented netlist. *)

val failing_netlist : Netlist.t -> spec -> Netlist.t
(** The circuit with the failure model active in place of [Y]'s original
    data input.  Same ports as the input netlist (plus {!random_port} for
    [C_random]).
    @raise Invalid_argument if [start_dff]/[end_dff] are not DFFs, or
    @raise Not_found if they do not exist. *)

type instrumented = {
  netlist : Netlist.t;
  shadow_of : (Netlist.net * Netlist.net) list;
      (** (original net, shadow net) for every output-port bit the fault
          can influence *)
  cover : Formal.expr;
      (** "some influenced output bit differs from its shadow" *)
  watch : (string * Netlist.net) list;
      (** naming of original/shadow output nets, for trace recording *)
}

val instrument_shadow : Netlist.t -> spec -> instrumented
(** Shadow-replica instrumentation for trace generation.  Shadow copies of
    the [Y]-influenced cone are added with instance names suffixed ["_s"],
    and shadowed output ports are exported with an ["_s"] suffix.
    @raise Invalid_argument if the fault cannot influence any output port
    (there is nothing to cover). *)
