let format_version = 1

open Json

let spec_to_json (s : Fault.spec) =
  Obj
    [
      ("start", String s.Fault.start_dff);
      ("end", String s.Fault.end_dff);
      ( "violation",
        String (match s.Fault.kind with Fault.Setup_violation -> "setup" | Fault.Hold_violation -> "hold") );
      ( "constant",
        String
          (match s.Fault.constant with Fault.C0 -> "0" | Fault.C1 -> "1" | Fault.C_random -> "r")
      );
      ( "activation",
        String
          (match s.Fault.activation with
          | Fault.Any_transition -> "any"
          | Fault.Rising_edge -> "rising"
          | Fault.Falling_edge -> "falling") );
    ]

let spec_of_json j =
  let* start_dff = Result.bind (member "start" j) to_str in
  let* end_dff = Result.bind (member "end" j) to_str in
  let* kind_s = Result.bind (member "violation" j) to_str in
  let* const_s = Result.bind (member "constant" j) to_str in
  let* act_s = Result.bind (member "activation" j) to_str in
  let* kind =
    match kind_s with
    | "setup" -> Ok Fault.Setup_violation
    | "hold" -> Ok Fault.Hold_violation
    | k -> Error (Printf.sprintf "bad violation kind %S" k)
  in
  let* constant =
    match const_s with
    | "0" -> Ok Fault.C0
    | "1" -> Ok Fault.C1
    | "r" -> Ok Fault.C_random
    | c -> Error (Printf.sprintf "bad constant %S" c)
  in
  let* activation =
    match act_s with
    | "any" -> Ok Fault.Any_transition
    | "rising" -> Ok Fault.Rising_edge
    | "falling" -> Ok Fault.Falling_edge
    | a -> Error (Printf.sprintf "bad activation %S" a)
  in
  Ok { Fault.start_dff; end_dff; kind; constant; activation }

let body_to_json = function
  | Lift.Alu_test steps ->
    Obj
      [
        ("unit", String "alu");
        ( "steps",
          List
            (List.map
               (fun (s : Lift.alu_step) ->
                 Obj
                   [
                     ("op", String (Alu.op_name s.Lift.a_op));
                     ("a", Int s.Lift.a_lhs);
                     ("b", Int s.Lift.a_rhs);
                     ("expected", Int s.Lift.a_expected);
                   ])
               steps) );
      ]
  | Lift.Fpu_test steps ->
    Obj
      [
        ("unit", String "fpu");
        ( "steps",
          List
            (List.map
               (fun (s : Lift.fpu_step) ->
                 Obj
                   [
                     ("op", String (Fpu_format.op_name s.Lift.f_op));
                     ("a", Int s.Lift.f_lhs);
                     ("b", Int s.Lift.f_rhs);
                     ("expected", Int s.Lift.f_expected);
                     ("flags", Int (Fpu_format.flags_to_int s.Lift.f_flags));
                   ])
               steps) );
      ]

let body_of_json j =
  let* unit_s = Result.bind (member "unit" j) to_str in
  let* steps = Result.bind (member "steps" j) to_list in
  match unit_s with
  | "alu" ->
    let* steps =
      map_m
        (fun s ->
          let* op_s = Result.bind (member "op" s) to_str in
          let* a = Result.bind (member "a" s) to_int in
          let* b = Result.bind (member "b" s) to_int in
          let* expected = Result.bind (member "expected" s) to_int in
          match Alu.op_of_name op_s with
          | Some op -> Ok { Lift.a_op = op; a_lhs = a; a_rhs = b; a_expected = expected }
          | None -> Error (Printf.sprintf "unknown alu op %S" op_s))
        steps
    in
    Ok (Lift.Alu_test steps)
  | "fpu" ->
    let* steps =
      map_m
        (fun s ->
          let* op_s = Result.bind (member "op" s) to_str in
          let* a = Result.bind (member "a" s) to_int in
          let* b = Result.bind (member "b" s) to_int in
          let* expected = Result.bind (member "expected" s) to_int in
          let* flags = Result.bind (member "flags" s) to_int in
          match Fpu_format.op_of_name op_s with
          | Some op ->
            Ok
              {
                Lift.f_op = op;
                f_lhs = a;
                f_rhs = b;
                f_expected = expected;
                f_flags = Fpu_format.flags_of_int flags;
              }
          | None -> Error (Printf.sprintf "unknown fpu op %S" op_s))
        steps
    in
    Ok (Lift.Fpu_test steps)
  | u -> Error (Printf.sprintf "unknown unit %S" u)

let case_to_json (tc : Lift.test_case) =
  Obj
    [
      ("id", String tc.Lift.tc_id);
      ("target", spec_to_json tc.Lift.tc_spec);
      ("body", body_to_json tc.Lift.tc_body);
      ("may_stall", Bool tc.Lift.tc_may_stall);
      ("checks_flags", Bool tc.Lift.tc_checks_flags);
    ]

let case_of_json j =
  let* tc_id = Result.bind (member "id" j) to_str in
  let* tc_spec = Result.bind (member "target" j) spec_of_json in
  let* tc_body = Result.bind (member "body" j) body_of_json in
  let* tc_may_stall = Result.bind (member "may_stall" j) to_bool in
  let* tc_checks_flags = Result.bind (member "checks_flags" j) to_bool in
  Ok { Lift.tc_id; tc_spec; tc_body; tc_may_stall; tc_checks_flags }

let target_to_json = function
  | Lift.Alu_module { width } -> Obj [ ("unit", String "alu"); ("width", Int width) ]
  | Lift.Fpu_module { fmt } ->
    Obj
      [
        ("unit", String "fpu");
        ("exp_bits", Int fmt.Fpu_format.exp_bits);
        ("man_bits", Int fmt.Fpu_format.man_bits);
      ]

let target_of_json j =
  let* unit_s = Result.bind (member "unit" j) to_str in
  match unit_s with
  | "alu" ->
    let* width = Result.bind (member "width" j) to_int in
    Ok (Lift.Alu_module { width })
  | "fpu" ->
    let* exp_bits = Result.bind (member "exp_bits" j) to_int in
    let* man_bits = Result.bind (member "man_bits" j) to_int in
    Ok (Lift.Fpu_module { fmt = Fpu_format.create_fmt ~exp_bits ~man_bits })
  | u -> Error (Printf.sprintf "unknown unit %S" u)

let violation_name = function
  | Fault.Setup_violation -> "setup"
  | Fault.Hold_violation -> "hold"

let violation_of_name = function
  | "setup" -> Ok Fault.Setup_violation
  | "hold" -> Ok Fault.Hold_violation
  | k -> Error (Printf.sprintf "bad violation kind %S" k)

let variant_outcome_to_json = function
  | Lift.Constructed tc -> Obj [ ("kind", String "constructed"); ("case", case_to_json tc) ]
  | Lift.Proved_unreachable -> Obj [ ("kind", String "unreachable") ]
  | Lift.Formal_timeout -> Obj [ ("kind", String "timeout") ]
  | Lift.Conversion_failed -> Obj [ ("kind", String "conversion-failed") ]

let variant_outcome_of_json j =
  let* kind = Result.bind (member "kind" j) to_str in
  match kind with
  | "constructed" ->
    let* tc = Result.bind (member "case" j) case_of_json in
    Ok (Lift.Constructed tc)
  | "unreachable" -> Ok Lift.Proved_unreachable
  | "timeout" -> Ok Lift.Formal_timeout
  | "conversion-failed" -> Ok Lift.Conversion_failed
  | k -> Error (Printf.sprintf "bad variant outcome %S" k)

let pair_result_to_json (r : Lift.pair_result) =
  Obj
    [
      ("start", String r.Lift.start_dff);
      ("end", String r.Lift.end_dff);
      ("violation", String (violation_name r.Lift.violation));
      ("classification", String (Lift.classification_name r.Lift.classification));
      ( "variants",
        List
          (List.map
             (fun (spec, o) ->
               Obj [ ("spec", spec_to_json spec); ("outcome", variant_outcome_to_json o) ])
             r.Lift.variants) );
    ]

let pair_result_of_json j =
  let* start_dff = Result.bind (member "start" j) to_str in
  let* end_dff = Result.bind (member "end" j) to_str in
  let* viol_s = Result.bind (member "violation" j) to_str in
  let* violation = violation_of_name viol_s in
  let* class_s = Result.bind (member "classification" j) to_str in
  let* classification =
    match class_s with
    | "S" -> Ok Lift.S
    | "UR" -> Ok Lift.UR
    | "FF" -> Ok Lift.FF
    | "FC" -> Ok Lift.FC
    | c -> Error (Printf.sprintf "bad classification %S" c)
  in
  let* vl = Result.bind (member "variants" j) to_list in
  let* variants =
    map_m
      (fun v ->
        let* spec = Result.bind (member "spec" v) spec_of_json in
        let* o = Result.bind (member "outcome" v) variant_outcome_of_json in
        Ok (spec, o))
      vl
  in
  let cases =
    List.filter_map (function _, Lift.Constructed tc -> Some tc | _ -> None) variants
  in
  Ok { Lift.start_dff; end_dff; violation; variants; classification; cases }

let suite_to_json (suite : Lift.suite) =
  Obj
    [
      ("format", String "vega-suite");
      ("version", Int format_version);
      ("target", target_to_json suite.Lift.suite_target);
      ("cases", List (List.map case_to_json suite.Lift.suite_cases));
    ]

let suite_of_json j =
  let* fmt_s = Result.bind (member "format" j) to_str in
  let* version = Result.bind (member "version" j) to_int in
  if fmt_s <> "vega-suite" then Error (Printf.sprintf "not a vega suite (format %S)" fmt_s)
  else if version <> format_version then
    Error (Printf.sprintf "unsupported suite version %d (expected %d)" version format_version)
  else begin
    let* suite_target = Result.bind (member "target" j) target_of_json in
    let* cases = Result.bind (member "cases" j) to_list in
    let* suite_cases = map_m case_of_json cases in
    Ok { Lift.suite_target; suite_cases }
  end

let suite_to_string suite = Json.to_string (suite_to_json suite)

let suite_of_string s =
  let* j = Json.of_string s in
  suite_of_json j
