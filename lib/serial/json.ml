type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(pretty = true) v =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x ->
      if Float.is_integer x && Float.abs x < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" x)
      else Buffer.add_string buf (Printf.sprintf "%.17g" x)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if pretty then "\": " else "\":");
          go (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> Buffer.add_char buf '?'  (* non-ASCII: placeholder *)
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "json: at offset %d: %s" at msg)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "json: missing field %S" key))
  | _ -> Error (Printf.sprintf "json: expected an object with field %S" key)

let to_int = function Int n -> Ok n | _ -> Error "json: expected an integer"

let to_float = function
  | Float f -> Ok f
  | Int n -> Ok (float_of_int n)
  | _ -> Error "json: expected a number"

let to_bool = function Bool b -> Ok b | _ -> Error "json: expected a boolean"
let to_str = function String s -> Ok s | _ -> Error "json: expected a string"
let to_list = function List l -> Ok l | _ -> Error "json: expected an array"

let ( let* ) = Result.bind

let map_m f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match f x with
      | Ok y -> go (y :: acc) rest
      | Error e -> Error e)
  in
  go [] l
