(** Interchange format for generated test suites.

    The paper's §6.3 envisions a commercial split: the chip manufacturer
    runs Aging Analysis and Error Lifting against the netlist (which the
    operator never sees) and ships the resulting test suite; the data-center
    operator schedules and runs it.  This module is that interface: suites
    round-trip through a versioned JSON document that carries everything an
    operator-side runner needs (operations, operand bit patterns, expected
    results and flags, stall/flag-check markers, and the targeted fault for
    telemetry), but no netlist internals beyond register names. *)

val format_version : int

val suite_to_json : Lift.suite -> Json.t
val suite_of_json : Json.t -> (Lift.suite, string) result

val suite_to_string : Lift.suite -> string
val suite_of_string : string -> (Lift.suite, string) result
(** Round trip: [suite_of_string (suite_to_string s)] reproduces [s]
    exactly (the error case reports the offending field). *)

(** {1 Component codecs}

    The building blocks of the suite document, exposed for the
    {!Resilience} checkpoint files, which snapshot per-pair lifting
    results and campaign rows incrementally. *)

val spec_to_json : Fault.spec -> Json.t
val spec_of_json : Json.t -> (Fault.spec, string) result
val case_to_json : Lift.test_case -> Json.t
val case_of_json : Json.t -> (Lift.test_case, string) result
val target_to_json : Lift.module_kind -> Json.t
val target_of_json : Json.t -> (Lift.module_kind, string) result
val violation_name : Fault.violation_kind -> string
val violation_of_name : string -> (Fault.violation_kind, string) result
val pair_result_to_json : Lift.pair_result -> Json.t

val pair_result_of_json : Json.t -> (Lift.pair_result, string) result
(** The [cases] field is reconstructed from the constructed variants, in
    variant order — the same invariant {!Lift.lift_pair} maintains. *)
