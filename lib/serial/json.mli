(** A minimal self-contained JSON representation, printer and parser.

    Supports the full JSON grammar (objects, arrays, strings with escapes,
    numbers, booleans, null); numbers that look integral parse as [Int].
    No external dependencies — this backs the suite/profile interchange
    format of {!Serial}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Render; [pretty] (default true) indents with two spaces. *)

val of_string : string -> (t, string) result
(** Parse; the error carries a character offset and description. *)

(** {1 Accessors} — all return [Error] with a path-aware message on
    shape mismatch. *)

val member : string -> t -> (t, string) result
val to_int : t -> (int, string) result

(** Accepts [Float] or [Int] — integral-looking numbers parse as [Int], so
    float fields must tolerate both. *)
val to_float : t -> (float, string) result
val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
(** Result bind, for decoder pipelines. *)

val map_m : ('a -> ('b, 'e) result) -> 'a list -> ('b list, 'e) result
(** Monadic map: first error wins. *)
