type net = int

type cell = {
  id : int;
  kind : Cell.Kind.t;
  name : string;
  inputs : net array;
  output : net;
  clock_domain : int;
  reset_value : bool;
}

type port = { port_name : string; port_nets : net array }

type driver = Driven_by_cell of int | Driven_by_input of string * int

type t = {
  name : string;
  cells : cell array;
  num_nets : int;
  inputs : port list;
  outputs : port list;
  drivers : driver array;
  readers : int list array;
  topo : int array;
  dffs : int list;
  by_name : (string, int) Hashtbl.t;
}

let name t = t.name
let num_cells t = Array.length t.cells
let num_nets t = t.num_nets
let cell t i = t.cells.(i)
let cells t = t.cells
let inputs t = t.inputs
let outputs t = t.outputs

let find_port ports what name =
  match List.find_opt (fun p -> String.equal p.port_name name) ports with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Netlist: no %s port named %s" what name)

let find_input t name = find_port t.inputs "input" name
let find_output t name = find_port t.outputs "output" name
let driver t n = t.drivers.(n)
let readers t n = t.readers.(n)

let output_readers t n =
  List.concat_map
    (fun p ->
      Array.to_list p.port_nets
      |> List.mapi (fun i pn -> (i, pn))
      |> List.filter_map (fun (i, pn) -> if pn = n then Some (p.port_name, i) else None))
    t.outputs

let topo_order t = t.topo
let dffs t = t.dffs

let find_cell t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> t.cells.(i)
  | None -> raise Not_found

let net_name t n =
  match t.drivers.(n) with
  | Driven_by_input (port, bit) -> Printf.sprintf "%s[%d]" port bit
  | Driven_by_cell id ->
    let c = t.cells.(id) in
    let pin = if Cell.Kind.is_sequential c.kind then "Q" else "Y" in
    Printf.sprintf "%s.%s" c.name pin

let net_of_port_bit t port bit =
  let p =
    match List.find_opt (fun p -> String.equal p.port_name port) (t.inputs @ t.outputs) with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Netlist: no port named %s" port)
  in
  if bit < 0 || bit >= Array.length p.port_nets then
    invalid_arg (Printf.sprintf "Netlist: port %s has no bit %d" port bit);
  p.port_nets.(bit)

let fanout_cone t start_net =
  let seen = Array.make (Array.length t.cells) false in
  let rec visit_net n =
    List.iter
      (fun id ->
        if not seen.(id) then begin
          seen.(id) <- true;
          visit_net t.cells.(id).output
        end)
      t.readers.(n)
  in
  visit_net start_net;
  let acc = ref [] in
  for id = Array.length t.cells - 1 downto 0 do
    if seen.(id) then acc := id :: !acc
  done;
  !acc

let fanin_cone t end_net =
  let seen = Array.make (Array.length t.cells) false in
  let rec visit_net n =
    match t.drivers.(n) with
    | Driven_by_input _ -> ()
    | Driven_by_cell id ->
      if not seen.(id) then begin
        seen.(id) <- true;
        Array.iter visit_net t.cells.(id).inputs
      end
  in
  visit_net end_net;
  let acc = ref [] in
  for id = Array.length t.cells - 1 downto 0 do
    if seen.(id) then acc := id :: !acc
  done;
  !acc

let logic_depth t =
  let depth = Array.make t.num_nets 0 in
  Array.iter
    (fun id ->
      let c = t.cells.(id) in
      let d = Array.fold_left (fun acc n -> max acc depth.(n)) 0 c.inputs in
      depth.(c.output) <- d + 1)
    t.topo;
  Array.fold_left max 0 depth

let stats t =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun (c : cell) ->
      let n = try Hashtbl.find counts c.kind with Not_found -> 0 in
      Hashtbl.replace counts c.kind (n + 1))
    t.cells;
  List.filter_map
    (fun k -> match Hashtbl.find_opt counts k with Some n -> Some (k, n) | None -> None)
    Cell.Kind.all

let sanitize_id s =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') s

let to_verilog t =
  let buf = Buffer.create 4096 in
  let net_id n = Printf.sprintf "n%d" n in
  let ports =
    List.map (fun p -> (p, "input")) t.inputs @ List.map (fun p -> (p, "output")) t.outputs
  in
  Buffer.add_string buf (Printf.sprintf "module %s (clk, rst" (sanitize_id t.name));
  List.iter (fun (p, _) -> Buffer.add_string buf (Printf.sprintf ", %s" p.port_name)) ports;
  Buffer.add_string buf ");\n  input wire clk, rst;\n";
  List.iter
    (fun (p, dir) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s wire [%d:0] %s;\n" dir (Array.length p.port_nets - 1) p.port_name))
    ports;
  for n = 0 to t.num_nets - 1 do
    Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (net_id n))
  done;
  for n = 0 to t.num_nets - 1 do
    match t.drivers.(n) with
    | Driven_by_input (port, bit) ->
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s[%d];\n" (net_id n) port bit)
    | Driven_by_cell _ -> ()
  done;
  Array.iter
    (fun (c : cell) ->
      let args = Array.to_list c.inputs |> List.map net_id |> String.concat ", " in
      if Cell.Kind.is_sequential c.kind then
        Buffer.add_string buf
          (Printf.sprintf "  DFF #(.INIT(1'b%d), .DOMAIN(%d)) %s (.C(clk), .R(rst), .D(%s), .Q(%s));\n"
             (if c.reset_value then 1 else 0)
             c.clock_domain (sanitize_id c.name) args (net_id c.output))
      else if args = "" then
        Buffer.add_string buf
          (Printf.sprintf "  %s %s (%s);\n" (Cell.Kind.to_string c.kind) (sanitize_id c.name)
             (net_id c.output))
      else
        Buffer.add_string buf
          (Printf.sprintf "  %s %s (%s, %s);\n" (Cell.Kind.to_string c.kind)
             (sanitize_id c.name) (net_id c.output) args))
    t.cells;
  List.iter
    (fun p ->
      Array.iteri
        (fun i n ->
          Buffer.add_string buf (Printf.sprintf "  assign %s[%d] = %s;\n" p.port_name i (net_id n)))
        p.port_nets)
    t.outputs;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let to_dot t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" (sanitize_id t.name));
  List.iter
    (fun p ->
      Array.iteri
        (fun i _ ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s[%d]\" [shape=cds,style=filled,fillcolor=lightgray];\n"
               p.port_name i))
        p.port_nets)
    t.inputs;
  Array.iter
    (fun (c : cell) ->
      let shape = if Cell.Kind.is_sequential c.kind then "box3d" else "box" in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=%s,label=\"%s\\n%s\"];\n" c.name shape c.name
           (Cell.Kind.to_string c.kind)))
    t.cells;
  Array.iter
    (fun (c : cell) ->
      Array.iter
        (fun n ->
          match t.drivers.(n) with
          | Driven_by_input (port, bit) ->
            Buffer.add_string buf (Printf.sprintf "  \"%s[%d]\" -> \"%s\";\n" port bit c.name)
          | Driven_by_cell src ->
            Buffer.add_string buf
              (Printf.sprintf "  \"%s\" -> \"%s\";\n" t.cells.(src).name c.name))
        c.inputs)
    t.cells;
  List.iter
    (fun p ->
      Array.iteri
        (fun i n ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s[%d]out\" [shape=cds,style=filled,fillcolor=lightyellow,label=\"%s[%d]\"];\n"
               p.port_name i p.port_name i);
          match t.drivers.(n) with
          | Driven_by_cell src ->
            Buffer.add_string buf
              (Printf.sprintf "  \"%s\" -> \"%s[%d]out\";\n" t.cells.(src).name p.port_name i)
          | Driven_by_input (port, bit) ->
            Buffer.add_string buf
              (Printf.sprintf "  \"%s[%d]\" -> \"%s[%d]out\";\n" port bit p.port_name i))
        p.port_nets)
    t.outputs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

module Raw = struct
  type rcell = {
    rc_name : string;
    rc_kind : Cell.Kind.t;
    rc_inputs : net array;
    rc_output : net;
    rc_clock_domain : int;
    rc_reset_value : bool;
  }

  type rport = { rp_name : string; rp_nets : net array }

  type t = {
    r_name : string;
    r_num_nets : int;
    r_cells : rcell array;
    r_inputs : rport list;
    r_outputs : rport list;
  }
end

let raw t =
  {
    Raw.r_name = t.name;
    r_num_nets = t.num_nets;
    r_cells =
      Array.map
        (fun (c : cell) ->
          {
            Raw.rc_name = c.name;
            rc_kind = c.kind;
            rc_inputs = Array.copy c.inputs;
            rc_output = c.output;
            rc_clock_domain = c.clock_domain;
            rc_reset_value = c.reset_value;
          })
        t.cells;
    r_inputs =
      List.map (fun p -> { Raw.rp_name = p.port_name; rp_nets = Array.copy p.port_nets }) t.inputs;
    r_outputs =
      List.map (fun p -> { Raw.rp_name = p.port_name; rp_nets = Array.copy p.port_nets }) t.outputs;
  }

module Builder = struct
  type netlist = t

  type b_cell = {
    mutable b_kind : Cell.Kind.t;
    b_name : string;
    b_inputs : net array;  (* elements are rewired in place *)
    b_output : net;
    b_clock_domain : int;
    b_reset_value : bool;
  }

  type t = {
    b_netlist_name : string;
    mutable next_net : int;
    mutable rev_cells : b_cell list;  (* reverse order *)
    mutable cells_arr : b_cell array;  (* cells indexed by id; grows *)
    mutable count : int;
    mutable rev_inputs : port list;
    mutable rev_outputs : port list;
    names : (string, unit) Hashtbl.t;
    mutable anon : int;
  }

  let create netlist_name =
    {
      b_netlist_name = netlist_name;
      next_net = 0;
      rev_cells = [];
      cells_arr = [||];
      count = 0;
      rev_inputs = [];
      rev_outputs = [];
      names = Hashtbl.create 64;
      anon = 0;
    }

  let push_cell b c =
    if b.count >= Array.length b.cells_arr then begin
      let cap = max 64 (2 * Array.length b.cells_arr) in
      let arr = Array.make cap c in
      Array.blit b.cells_arr 0 arr 0 b.count;
      b.cells_arr <- arr
    end;
    b.cells_arr.(b.count) <- c;
    b.count <- b.count + 1;
    b.rev_cells <- c :: b.rev_cells

  let of_netlist (nl : netlist) =
    let b = create nl.name in
    b.next_net <- nl.num_nets;
    b.rev_inputs <- List.rev nl.inputs;
    b.rev_outputs <- List.rev nl.outputs;
    Array.iter
      (fun (c : cell) ->
        Hashtbl.replace b.names c.name ();
        push_cell b
          {
            b_kind = c.kind;
            b_name = c.name;
            b_inputs = Array.copy c.inputs;
            b_output = c.output;
            b_clock_domain = c.clock_domain;
            b_reset_value = c.reset_value;
          })
      nl.cells;
    b

  let fresh_net b =
    let n = b.next_net in
    b.next_net <- n + 1;
    n

  let add_input b name width =
    if List.exists (fun p -> String.equal p.port_name name) b.rev_inputs then
      invalid_arg (Printf.sprintf "Builder.add_input: duplicate port %s" name);
    let nets = Array.init width (fun _ -> fresh_net b) in
    b.rev_inputs <- { port_name = name; port_nets = nets } :: b.rev_inputs;
    nets

  let add_output b name nets =
    if List.exists (fun p -> String.equal p.port_name name) b.rev_outputs then
      invalid_arg (Printf.sprintf "Builder.add_output: duplicate port %s" name);
    b.rev_outputs <- { port_name = name; port_nets = Array.copy nets } :: b.rev_outputs

  let add_cell_with_id ?name ?(clock_domain = -1) ?(reset_value = false) b kind inputs =
    let arity = Cell.Kind.arity kind in
    if Array.length inputs <> arity then
      invalid_arg
        (Printf.sprintf "Builder.add_cell: %s expects %d inputs, got %d"
           (Cell.Kind.to_string kind) arity (Array.length inputs));
    Array.iter
      (fun n ->
        if n < 0 || n >= b.next_net then
          invalid_arg (Printf.sprintf "Builder.add_cell: unknown net %d" n))
      inputs;
    let name =
      match name with
      | Some n -> n
      | None ->
        b.anon <- b.anon + 1;
        Printf.sprintf "_%s_%d" (String.lowercase_ascii (Cell.Kind.to_string kind)) b.anon
    in
    if Hashtbl.mem b.names name then
      invalid_arg (Printf.sprintf "Builder.add_cell: duplicate cell name %s" name);
    Hashtbl.replace b.names name ();
    let output = fresh_net b in
    push_cell b
      {
        b_kind = kind;
        b_name = name;
        b_inputs = Array.copy inputs;
        b_output = output;
        b_clock_domain = (if Cell.Kind.is_sequential kind then clock_domain else -1);
        b_reset_value = reset_value;
      };
    (b.count - 1, output)

  let add_cell ?name ?clock_domain ?reset_value b kind inputs =
    snd (add_cell_with_id ?name ?clock_domain ?reset_value b kind inputs)

  let num_cells b = b.count

  let rewire_input b ~cell_id ~pin net =
    if cell_id < 0 || cell_id >= b.count then
      invalid_arg (Printf.sprintf "Builder.rewire_input: no cell %d" cell_id);
    let c = b.cells_arr.(cell_id) in
    if pin < 0 || pin >= Array.length c.b_inputs then
      invalid_arg (Printf.sprintf "Builder.rewire_input: cell %s has no pin %d" c.b_name pin);
    if net < 0 || net >= b.next_net then
      invalid_arg (Printf.sprintf "Builder.rewire_input: unknown net %d" net);
    c.b_inputs.(pin) <- net

  let rewire_output b ~port ~bit net =
    if net < 0 || net >= b.next_net then
      invalid_arg (Printf.sprintf "Builder.rewire_output: unknown net %d" net);
    let rec go = function
      | [] -> invalid_arg (Printf.sprintf "Builder.rewire_output: no output port %s" port)
      | p :: rest when String.equal p.port_name port ->
        if bit < 0 || bit >= Array.length p.port_nets then
          invalid_arg (Printf.sprintf "Builder.rewire_output: port %s has no bit %d" port bit);
        (* copy: [of_netlist] shares port-net arrays with the source netlist *)
        let nets = Array.copy p.port_nets in
        nets.(bit) <- net;
        { p with port_nets = nets } :: rest
      | p :: rest -> p :: go rest
    in
    b.rev_outputs <- go b.rev_outputs

  let set_kind b ~cell_id kind =
    if cell_id < 0 || cell_id >= b.count then
      invalid_arg (Printf.sprintf "Builder.set_kind: no cell %d" cell_id);
    let c = b.cells_arr.(cell_id) in
    if Cell.Kind.arity kind <> Array.length c.b_inputs then
      invalid_arg
        (Printf.sprintf "Builder.set_kind: %s expects %d inputs, cell %s has %d"
           (Cell.Kind.to_string kind) (Cell.Kind.arity kind) c.b_name (Array.length c.b_inputs));
    if Cell.Kind.is_sequential kind <> Cell.Kind.is_sequential c.b_kind then
      invalid_arg
        (Printf.sprintf "Builder.set_kind: cannot change sequentiality of cell %s" c.b_name);
    c.b_kind <- kind

  let cell_output b id =
    if id < 0 || id >= b.count then
      invalid_arg (Printf.sprintf "Builder.cell_output: no cell %d" id);
    b.cells_arr.(id).b_output

  let raw b =
    {
      Raw.r_name = b.b_netlist_name;
      r_num_nets = b.next_net;
      r_cells =
        Array.init b.count (fun i ->
            let c = b.cells_arr.(i) in
            {
              Raw.rc_name = c.b_name;
              rc_kind = c.b_kind;
              rc_inputs = Array.copy c.b_inputs;
              rc_output = c.b_output;
              rc_clock_domain = c.b_clock_domain;
              rc_reset_value = c.b_reset_value;
            });
      r_inputs =
        List.rev_map
          (fun p -> { Raw.rp_name = p.port_name; rp_nets = Array.copy p.port_nets })
          b.rev_inputs;
      r_outputs =
        List.rev_map
          (fun p -> { Raw.rp_name = p.port_name; rp_nets = Array.copy p.port_nets })
          b.rev_outputs;
    }

  let finish b =
    let num_nets = b.next_net in
    let cells =
      Array.init b.count (fun i ->
          let c = b.cells_arr.(i) in
          {
            id = i;
            kind = c.b_kind;
            name = c.b_name;
            inputs = Array.copy c.b_inputs;
            output = c.b_output;
            clock_domain = c.b_clock_domain;
            reset_value = c.b_reset_value;
          })
    in
    let inputs = List.rev b.rev_inputs and outputs = List.rev b.rev_outputs in
    let drivers = Array.make (max num_nets 1) (Driven_by_cell (-1)) in
    let driven = Array.make num_nets false in
    List.iter
      (fun p ->
        Array.iteri
          (fun bit n ->
            if driven.(n) then
              invalid_arg (Printf.sprintf "Netlist %s: net %d driven twice" b.b_netlist_name n);
            driven.(n) <- true;
            drivers.(n) <- Driven_by_input (p.port_name, bit))
          p.port_nets)
      inputs;
    Array.iter
      (fun (c : cell) ->
        if driven.(c.output) then
          invalid_arg
            (Printf.sprintf "Netlist %s: net %d (output of %s) driven twice" b.b_netlist_name
               c.output c.name);
        driven.(c.output) <- true;
        drivers.(c.output) <- Driven_by_cell c.id)
      cells;
    (* Undriven nets that nothing reads are tolerated (they arise from
       rewiring); undriven nets that feed a cell or output port are errors. *)
    let check_driven ctx n =
      if n < 0 || n >= num_nets || not driven.(n) then
        invalid_arg (Printf.sprintf "Netlist %s: %s reads undriven net %d" b.b_netlist_name ctx n)
    in
    Array.iter (fun (c : cell) -> Array.iter (check_driven ("cell " ^ c.name)) c.inputs) cells;
    List.iter
      (fun p -> Array.iter (check_driven ("output port " ^ p.port_name)) p.port_nets)
      outputs;
    let readers = Array.make (max num_nets 1) [] in
    Array.iter
      (fun (c : cell) -> Array.iter (fun n -> readers.(n) <- c.id :: readers.(n)) c.inputs)
      cells;
    for n = 0 to num_nets - 1 do
      readers.(n) <- List.rev readers.(n)
    done;
    (* Kahn topological sort over combinational cells only. *)
    let comb = Array.to_list cells |> List.filter (fun c -> not (Cell.Kind.is_sequential c.kind)) in
    let indeg = Hashtbl.create 64 in
    List.iter
      (fun (c : cell) ->
        let d =
          Array.to_list c.inputs
          |> List.filter (fun n ->
                 match drivers.(n) with
                 | Driven_by_cell id -> not (Cell.Kind.is_sequential cells.(id).kind)
                 | Driven_by_input _ -> false)
          |> List.length
        in
        Hashtbl.replace indeg c.id d)
      comb;
    let queue = Queue.create () in
    List.iter (fun c -> if Hashtbl.find indeg c.id = 0 then Queue.add c.id queue) comb;
    let topo = ref [] in
    let emitted = ref 0 in
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      topo := id :: !topo;
      incr emitted;
      List.iter
        (fun rid ->
          match Hashtbl.find_opt indeg rid with
          | None -> ()  (* sequential reader *)
          | Some d ->
            let d = d - 1 in
            Hashtbl.replace indeg rid d;
            if d = 0 then Queue.add rid queue)
        readers.(cells.(id).output)
    done;
    if !emitted <> List.length comb then
      invalid_arg (Printf.sprintf "Netlist %s: combinational cycle detected" b.b_netlist_name);
    let dffs =
      Array.to_list cells
      |> List.filter_map (fun c -> if Cell.Kind.is_sequential c.kind then Some c.id else None)
    in
    let by_name = Hashtbl.create (Array.length cells) in
    Array.iter (fun (c : cell) -> Hashtbl.replace by_name c.name c.id) cells;
    {
      name = b.b_netlist_name;
      cells;
      num_nets;
      inputs;
      outputs;
      drivers;
      readers;
      topo = Array.of_list (List.rev !topo);
      dffs;
      by_name;
    }
end
