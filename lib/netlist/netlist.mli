(** The gate-level netlist intermediate representation.

    A netlist is a directed graph of standard cells ({!Cell.Kind.t})
    connected by single-bit nets, with named multi-bit primary input and
    output ports — the post-synthesis, post-place-and-route artifact every
    phase of the workflow operates on.  Netlists are immutable once built;
    {!Builder} constructs them (from scratch or by extending an existing
    netlist, which is how failure-model instrumentation works) and validates
    structural invariants at {!Builder.finish} time:

    - every net has exactly one driver (a cell output or a primary input);
    - cell input arities match their kinds;
    - the combinational subgraph is acyclic (every cycle is cut by a DFF);
    - port nets exist and output ports are driven.

    The frozen netlist precomputes the driver map, fan-out lists and a
    topological order of the combinational cells, which the simulator, the
    STA engine and the CNF encoder all reuse. *)

type net = int
(** Nets are dense indices in [[0, num_nets)]. *)

type cell = {
  id : int;
  kind : Cell.Kind.t;
  name : string;  (** instance name, unique within the netlist *)
  inputs : net array;
  output : net;
  clock_domain : int;  (** clock-tree leaf driving this DFF; [-1] for combinational cells *)
  reset_value : bool;  (** value a DFF assumes on reset *)
}

type port = { port_name : string; port_nets : net array  (** LSB first *) }

type driver =
  | Driven_by_cell of int  (** cell id *)
  | Driven_by_input of string * int  (** port name, bit index *)

type t

(** {1 Observation} *)

val name : t -> string
val num_cells : t -> int
val num_nets : t -> int
val cell : t -> int -> cell
val cells : t -> cell array
(** The backing array; callers must not mutate it. *)

val inputs : t -> port list
val outputs : t -> port list
val find_input : t -> string -> port
val find_output : t -> string -> port

val driver : t -> net -> driver
val readers : t -> net -> int list
(** Ids of the cells reading a net. *)

val output_readers : t -> net -> (string * int) list
(** Output ports (name, bit) connected to a net. *)

val topo_order : t -> int array
(** Combinational cell ids in dataflow order: every cell appears after all
    combinational drivers of its inputs. *)

val dffs : t -> int list
(** Ids of all DFF cells. *)

val find_cell : t -> string -> cell
(** @raise Not_found if no cell has this instance name. *)

val net_name : t -> net -> string
(** Human-readable name: the driving port bit ["a[1]"] or cell instance
    ["$7.Y"]. *)

val net_of_port_bit : t -> string -> int -> net
(** Net behind bit [i] of the named input or output port. *)

(** {1 Analysis helpers} *)

val fanout_cone : t -> net -> int list
(** Ids of every cell transitively influenced by a net, crossing DFFs
    (the shadow-replica region of the failure-model instrumentation). *)

val fanin_cone : t -> net -> int list
(** Ids of every cell that can transitively influence a net. *)

val logic_depth : t -> int
(** Longest combinational path, in cells. *)

val stats : t -> (Cell.Kind.t * int) list
(** Cell count per kind, only kinds that occur. *)

val to_verilog : t -> string
(** Structural Verilog text for the netlist (the "failing netlist" artifact
    format of the paper). *)

val to_dot : t -> string
(** Graphviz rendering of the cell graph (DFFs as 3-D boxes, ports as
    tabs) — handy for inspecting instrumented netlists. *)

(** {1 Raw (unvalidated) designs}

    A [Raw.t] is the plain-data view of a netlist-shaped design with {e no}
    structural invariants: nets may be multi-driven, floating, cyclic, out
    of range.  It is what the static linter ({!module:Check}) consumes —
    frozen netlists are exported with {!raw} (and are lint-clean of
    structural errors by construction), builders with {!Builder.raw}
    (mid-construction state), and defective designs for linter self-tests
    can be assembled literally. *)

module Raw : sig
  type rcell = {
    rc_name : string;
    rc_kind : Cell.Kind.t;
    rc_inputs : net array;
    rc_output : net;
    rc_clock_domain : int;
    rc_reset_value : bool;
  }

  type rport = { rp_name : string; rp_nets : net array }

  type t = {
    r_name : string;
    r_num_nets : int;  (** nets are expected in [[0, r_num_nets)] *)
    r_cells : rcell array;
    r_inputs : rport list;
    r_outputs : rport list;
  }
end

val raw : t -> Raw.t
(** The frozen netlist as a raw design. *)

(** {1 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : string -> t
  (** Fresh empty builder for a netlist with the given name. *)

  val of_netlist : netlist -> t
  (** Builder seeded with a copy of an existing netlist — the entry point of
      every instrumentation transform.  Cell ids and nets are preserved. *)

  val fresh_net : t -> net
  val add_input : t -> string -> int -> net array
  (** [add_input b name width] declares a primary input port and returns its
      (fresh) nets, LSB first. *)

  val add_output : t -> string -> net array -> unit
  (** Declare a primary output port connected to existing nets. *)

  val add_cell :
    ?name:string -> ?clock_domain:int -> ?reset_value:bool -> t -> Cell.Kind.t -> net array ->
    net
  (** [add_cell b kind inputs] adds a cell driving a fresh net, returned.
      A unique instance name is generated when [name] is omitted.
      @raise Invalid_argument on arity mismatch or duplicate name. *)

  val add_cell_with_id :
    ?name:string -> ?clock_domain:int -> ?reset_value:bool -> t -> Cell.Kind.t -> net array ->
    int * net
  (** Like {!add_cell} but also returns the new cell's id (ids are assigned
      densely in insertion order and survive {!finish}). *)

  val num_cells : t -> int

  val rewire_input : t -> cell_id:int -> pin:int -> net -> unit
  (** Repoint input [pin] of an existing cell to another net (used to splice
      failure models into a copied netlist). *)

  val rewire_output : t -> port:string -> bit:int -> net -> unit
  (** Repoint bit [bit] of an existing output port to another net (used to
      splice logic — e.g. a seeded mutation — in front of an exported
      signal).  @raise Invalid_argument on an unknown port, bit or net. *)

  val set_kind : t -> cell_id:int -> Cell.Kind.t -> unit
  (** Replace the kind of an existing cell, keeping its connections — the
      primitive behind seeded gate mutations.  The new kind must have the
      same arity and sequentiality as the old one.
      @raise Invalid_argument otherwise. *)

  val cell_output : t -> int -> net
  (** Output net of a cell already in the builder. *)

  val raw : t -> Raw.t
  (** Snapshot of the builder's current — possibly structurally invalid —
      state as a raw design, for linting before {!finish}. *)

  val finish : t -> netlist
  (** Validate and freeze.  @raise Invalid_argument describing the first
      violated structural invariant. *)
end
