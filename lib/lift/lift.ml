type module_kind = Alu_module of { width : int } | Fpu_module of { fmt : Fpu_format.fmt }
type target = { kind : module_kind; netlist : Netlist.t }

let alu_target ?(width = 16) () = { kind = Alu_module { width }; netlist = Alu.netlist ~width () }

let fpu_target ?(fmt = Fpu_format.binary16) () =
  { kind = Fpu_module { fmt }; netlist = Fpu.netlist ~fmt () }

let target_of_netlist kind netlist = { kind; netlist }

type alu_step = { a_op : Alu.op; a_lhs : int; a_rhs : int; a_expected : int }

type fpu_step = {
  f_op : Fpu_format.op;
  f_lhs : int;
  f_rhs : int;
  f_expected : int;
  f_flags : Fpu_format.flags;
}

type body = Alu_test of alu_step list | Fpu_test of fpu_step list

type test_case = {
  tc_id : string;
  tc_spec : Fault.spec;
  tc_body : body;
  tc_may_stall : bool;
  tc_checks_flags : bool;
}

let steps tc = match tc.tc_body with Alu_test l -> List.length l | Fpu_test l -> List.length l

type variant_outcome =
  | Constructed of test_case
  | Proved_unreachable
  | Formal_timeout
  | Conversion_failed

type classification = S | UR | FF | FC

let classification_name = function S -> "S" | UR -> "UR" | FF -> "FF" | FC -> "FC"

type pair_result = {
  start_dff : string;
  end_dff : string;
  violation : Fault.violation_kind;
  variants : (Fault.spec * variant_outcome) list;
  classification : classification;
  cases : test_case list;
}

type config = { mitigation : bool; max_conflicts : int; max_cycles : int option }

let default_config = { mitigation = false; max_conflicts = 200_000; max_cycles = None }

let assumes_for target nl =
  match target.kind with
  | Alu_module _ -> [ Alu.valid_op_assume nl ]
  | Fpu_module _ -> [ Formal.Input (Fpu.in_valid_port, 0) ]

(* Which output-port bits diverge between original and shadow during the
   trace, and at which cycles. *)
let diff_bits (inst : Fault.instrumented) trace =
  let nl = inst.Fault.netlist in
  let sim = Sim.create nl in
  let diffs = ref [] in
  Formal.Trace.replay sim trace ~on_cycle:(fun cycle ->
      List.iter
        (fun (orig, shadow) ->
          if Sim.net sim orig <> Sim.net sim shadow then
            List.iter
              (fun (port, bit) -> diffs := (port, bit, cycle) :: !diffs)
              (Netlist.output_readers nl orig))
        inst.Fault.shadow_of);
  List.rev !diffs

(* ---- per-module instruction-construction lookup tables ---- *)

let alu_steps_of_trace ~width trace =
  let n = trace.Formal.Trace.cycles in
  List.init n (fun c ->
      let opv = Formal.Trace.input_at trace Alu.op_port c in
      let a = Formal.Trace.input_at trace Alu.a_port c in
      let b = Formal.Trace.input_at trace Alu.b_port c in
      let op =
        match Alu.op_of_code (Bitvec.to_int opv) with
        | Some op -> op
        | None -> Alu.Add  (* unreachable under the valid-op assume *)
      in
      {
        a_op = op;
        a_lhs = Bitvec.to_int a;
        a_rhs = Bitvec.to_int b;
        a_expected = Bitvec.to_int (Alu.golden ~width op a b);
      })

let fpu_steps_of_trace ~fmt trace =
  let n = trace.Formal.Trace.cycles in
  List.init n (fun c ->
      let opv = Formal.Trace.input_at trace Fpu.op_port c in
      let a = Formal.Trace.input_at trace Fpu.a_port c in
      let b = Formal.Trace.input_at trace Fpu.b_port c in
      let op = Option.get (Fpu_format.op_of_code (Bitvec.to_int opv)) in
      let r, fl = Softfloat.apply fmt op a b in
      {
        f_op = op;
        f_lhs = Bitvec.to_int a;
        f_rhs = Bitvec.to_int b;
        f_expected = Bitvec.to_int r;
        f_flags = fl;
      })

let sticky_flags steps =
  List.fold_left (fun acc s -> Fpu_format.flags_union acc s.f_flags) Fpu_format.no_flags steps

let convert target spec inst trace =
  let diffs = diff_bits inst trace in
  if diffs = [] then
    (* the formal trace did not replay: should not happen (Trace.covers is
       part of the engine's contract), treat as conversion failure *)
    Conversion_failed
  else begin
    let tc_id = Fault.describe spec in
    match target.kind with
    | Alu_module { width } ->
      Constructed
        {
          tc_id;
          tc_spec = spec;
          tc_body = Alu_test (alu_steps_of_trace ~width trace);
          tc_may_stall = false;
          tc_checks_flags = false;
        }
    | Fpu_module { fmt } ->
      let steps = fpu_steps_of_trace ~fmt trace in
      let ports = List.sort_uniq compare (List.map (fun (p, _, _) -> p) diffs) in
      let only_flags = List.for_all (fun p -> String.equal p Fpu.flags_port) ports in
      let has_valid = List.mem Fpu.valid_port ports in
      let has_flags = List.mem Fpu.flags_port ports in
      if only_flags then begin
        (* sticky-contamination check: a corrupted flag bit that the test's
           own golden operations raise anyway cannot be witnessed *)
        let sticky = Fpu_format.flags_to_int (sticky_flags steps) in
        let contaminated =
          List.for_all
            (fun (p, bit, _) -> (not (String.equal p Fpu.flags_port)) || sticky land (1 lsl bit) <> 0)
            diffs
        in
        if contaminated then Conversion_failed
        else
          Constructed
            {
              tc_id;
              tc_spec = spec;
              tc_body = Fpu_test steps;
              tc_may_stall = false;
              tc_checks_flags = true;
            }
      end
      else
        Constructed
          {
            tc_id;
            tc_spec = spec;
            tc_body = Fpu_test steps;
            tc_may_stall = has_valid;
            tc_checks_flags = has_flags;
          }
  end

let variants_of_config config violation start_dff end_dff =
  Fault.variants ~mitigation:config.mitigation ~start_dff ~end_dff violation

let classify variants =
  let outcomes = List.map snd variants in
  if List.exists (function Constructed _ -> true | _ -> false) outcomes then S
  else if List.for_all (function Proved_unreachable -> true | _ -> false) outcomes then UR
  else if List.exists (function Formal_timeout -> true | _ -> false) outcomes then FF
  else FC

type variant_stats = {
  vs_spec : Fault.spec;
  vs_solver : Sat.stats;
  vs_calls : int;
  vs_deepest_bound : int;
}

type pair_stats = { p_variants : variant_stats list; p_conflicts : int }

let tele_pairs = Telemetry.Counter.make "lift.pairs"
let tele_cases = Telemetry.Counter.make "lift.cases"

let variant_outcome_tag = function
  | Constructed _ -> "constructed"
  | Proved_unreachable -> "unreachable"
  | Formal_timeout -> "timeout"
  | Conversion_failed -> "conversion_failed"

let lift_pair_stats ?(config = default_config) ?budget ?(resume = []) target ~start_dff ~end_dff
    ~violation =
  let tele = Telemetry.enabled () in
  if tele then Telemetry.begin_span ~cat:"lift" "lift.pair";
  let variants = variants_of_config config violation start_dff end_dff in
  (* [budget] caps the whole pair: each variant draws from what the previous
     ones left over, realizing the supervisor's per-pair slice.  Without it,
     every variant gets the classic per-variant [config.max_conflicts]. *)
  let remaining = ref (match budget with Some b -> max 0 b | None -> config.max_conflicts) in
  let stats_acc = ref [] in
  let results =
    List.map
      (fun spec ->
        if tele then Telemetry.begin_span ~cat:"lift" "lift.variant";
        let start_cycle =
          match List.assoc_opt spec resume with Some bound -> bound + 1 | None -> 1
        in
        let outcome, vstats =
          match Fault.instrument_shadow target.netlist spec with
          | exception Invalid_argument _ ->
            (* the fault cannot influence any output: provably harmless *)
            ( Proved_unreachable,
              {
                vs_spec = spec;
                vs_solver = Sat.zero_stats;
                vs_calls = 0;
                vs_deepest_bound = start_cycle - 1;
              } )
          | inst ->
            let assumes = assumes_for target inst.Fault.netlist in
            let max_conflicts =
              match budget with Some _ -> !remaining | None -> config.max_conflicts
            in
            let result, rs =
              Formal.check_cover_stats ~assumes ?max_cycles:config.max_cycles ~max_conflicts
                ~start_cycle inst.Fault.netlist ~cover:inst.Fault.cover
            in
            if budget <> None then
              remaining := max 0 (!remaining - rs.Formal.rs_solver.Sat.conflicts);
            let vstats =
              {
                vs_spec = spec;
                vs_solver = rs.Formal.rs_solver;
                vs_calls = rs.Formal.rs_calls;
                vs_deepest_bound = rs.Formal.rs_deepest_unsat;
              }
            in
            let outcome =
              match result with
              | Formal.Trace_found trace -> convert target spec inst trace
              | Formal.Unreachable -> Proved_unreachable
              | Formal.Bounded_unreachable _ ->
                (* feedback-free modules always get a completeness bound; a
                   bounded result therefore only arises with an explicit
                   max_cycles override, where it is not a proof *)
                Formal_timeout
              | Formal.Timeout _ -> Formal_timeout
            in
            (outcome, vstats)
        in
        stats_acc := vstats :: !stats_acc;
        if tele then
          Telemetry.end_span
            ~args:
              [
                ("spec", Telemetry.Str (Fault.describe spec));
                ("outcome", Telemetry.Str (variant_outcome_tag outcome));
                ("conflicts", Telemetry.Int vstats.vs_solver.Sat.conflicts);
                ("calls", Telemetry.Int vstats.vs_calls);
              ]
            ();
        (spec, outcome))
      variants
  in
  let cases = List.filter_map (function _, Constructed tc -> Some tc | _ -> None) results in
  let p_variants = List.rev !stats_acc in
  let p_conflicts =
    List.fold_left (fun acc v -> acc + v.vs_solver.Sat.conflicts) 0 p_variants
  in
  let classification = classify results in
  Telemetry.Counter.incr tele_pairs;
  Telemetry.Counter.add tele_cases (List.length cases);
  if tele then
    Telemetry.end_span
      ~args:
        [
          ("start_dff", Telemetry.Str start_dff);
          ("end_dff", Telemetry.Str end_dff);
          ("classification", Telemetry.Str (classification_name classification));
          ("conflicts", Telemetry.Int p_conflicts);
          ("cases", Telemetry.Int (List.length cases));
        ]
      ();
  ( { start_dff; end_dff; violation; variants = results; classification; cases },
    { p_variants; p_conflicts } )

let lift_pair ?config target ~start_dff ~end_dff ~violation =
  fst (lift_pair_stats ?config target ~start_dff ~end_dff ~violation)

(* ---- fuzzing-based trace generation (the paper's Section 6.3
   alternative): random valid stimulus on the shadow-instrumented netlist,
   with greedy trace shrinking ---- *)

type fuzz_config = { budget_cycles : int; seed : int; fuzz_mitigation : bool }

let default_fuzz_config = { budget_cycles = 2000; seed = 0xF022; fuzz_mitigation = false }

let random_stimulus target rng nl =
  List.filter_map
    (fun (p : Netlist.port) ->
      let width = Array.length p.Netlist.port_nets in
      let v =
        match target.kind with
        | Alu_module _ when String.equal p.Netlist.port_name Alu.op_port ->
          Alu.op_code (List.nth Alu.all_ops (Random.State.int rng (List.length Alu.all_ops)))
        | Fpu_module _ when String.equal p.Netlist.port_name Fpu.in_valid_port -> 1
        | _ ->
          if width <= 30 then Random.State.int rng (1 lsl width)
          else
            (Random.State.bits rng lor (Random.State.bits rng lsl 30))
            land ((1 lsl width) - 1)
      in
      ignore nl;
      Some (p.Netlist.port_name, Bitvec.create ~width v))
    (Netlist.inputs nl)

let trace_of_history nl history =
  (* history: newest first, each a (port, value) list *)
  let cycles = List.length history in
  let chron = List.rev history in
  let ports = Netlist.inputs nl in
  {
    Formal.Trace.netlist_name = Netlist.name nl;
    cycles;
    inputs =
      List.map
        (fun (p : Netlist.port) ->
          ( p.Netlist.port_name,
            Array.of_list (List.map (fun cyc -> List.assoc p.Netlist.port_name cyc) chron) ))
        ports;
    observed = [];
  }

let drop_cycle trace k =
  {
    trace with
    Formal.Trace.cycles = trace.Formal.Trace.cycles - 1;
    inputs =
      List.map
        (fun (port, arr) ->
          ( port,
            Array.of_list
              (List.filteri (fun i _ -> i <> k) (Array.to_list arr)) ))
        trace.Formal.Trace.inputs;
  }

let shrink_trace nl cover trace =
  (* greedy one-pass delta reduction: try removing each cycle, earliest
     first, keeping the trace covering *)
  let rec pass t k =
    if t.Formal.Trace.cycles <= 1 || k >= t.Formal.Trace.cycles then t
    else begin
      let candidate = drop_cycle t k in
      if Formal.Trace.covers nl candidate cover then pass candidate k else pass t (k + 1)
    end
  in
  pass trace 0

let fuzz_variant target spec fuzz =
  match Fault.instrument_shadow target.netlist spec with
  | exception Invalid_argument _ -> Proved_unreachable
  | inst ->
    let nl = inst.Fault.netlist in
    let rng = Random.State.make [| fuzz.seed |] in
    let sim = Sim.create nl in
    let rec hunt cycle history =
      if cycle >= fuzz.budget_cycles then Formal_timeout
      else begin
        let stim = random_stimulus target rng nl in
        List.iter (fun (port, v) -> Sim.set_input sim port v) stim;
        Sim.settle sim;
        let history = stim :: history in
        if Formal.eval_expr sim inst.Fault.cover then begin
          let trace = trace_of_history nl history in
          let trace = shrink_trace nl inst.Fault.cover trace in
          convert target spec inst trace
        end
        else begin
          Sim.step sim;
          hunt (cycle + 1) history
        end
      end
    in
    hunt 0 []

let fuzz_pair ?(fuzz = default_fuzz_config) target ~start_dff ~end_dff ~violation =
  let config =
    { default_config with mitigation = fuzz.fuzz_mitigation }
  in
  let variants = variants_of_config config violation start_dff end_dff in
  let results = List.map (fun spec -> (spec, fuzz_variant target spec fuzz)) variants in
  let cases = List.filter_map (function _, Constructed tc -> Some tc | _ -> None) results in
  {
    start_dff;
    end_dff;
    violation;
    variants = results;
    classification = classify results;
    cases;
  }

let lift_violating_pairs ?config target pairs =
  (* keep the worst slack per (start, end, check) and lift each *)
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun (start, Sta.At_dff end_id, check, _slack) ->
      match start with
      | Sta.From_input _ -> None
      | Sta.From_dff start_id ->
        let key = (start_id, end_id, check) in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.replace seen key ();
          let start_dff = (Netlist.cell target.netlist start_id).Netlist.name in
          let end_dff = (Netlist.cell target.netlist end_id).Netlist.name in
          let violation =
            match check with
            | Sta.Setup -> Fault.Setup_violation
            | Sta.Hold -> Fault.Hold_violation
          in
          Some (lift_pair ?config target ~start_dff ~end_dff ~violation)
        end)
    pairs

let lift_paths ?config target paths =
  let pairs = Sta.unique_pairs paths in
  List.filter_map
    (fun ((start, Sta.At_dff end_id), (path : Sta.path)) ->
      match start with
      | Sta.From_input _ -> None
      | Sta.From_dff start_id ->
        let start_dff = (Netlist.cell target.netlist start_id).Netlist.name in
        let end_dff = (Netlist.cell target.netlist end_id).Netlist.name in
        let violation =
          match path.Sta.check with
          | Sta.Setup -> Fault.Setup_violation
          | Sta.Hold -> Fault.Hold_violation
        in
        Some (lift_pair ?config target ~start_dff ~end_dff ~violation))
    pairs

(* ---- rendering ---- *)

let case_instrs ~fail_label tc =
  match tc.tc_body with
  | Alu_test steps ->
    let n = List.length steps in
    if n > 20 then invalid_arg "Lift.case_instrs: test case too long";
    let ops =
      List.concat (List.mapi
        (fun i s ->
          [
            Isa.Li (5, s.a_lhs);
            Isa.Li (6, s.a_rhs);
            Isa.Alu (s.a_op, 8 + i, 5, 6);
          ])
        steps)
    in
    let checks =
      List.concat (List.mapi
        (fun i s -> [ Isa.Li (7, s.a_expected); Isa.Bne (8 + i, 7, fail_label) ])
        steps)
    in
    ops @ checks
  | Fpu_test steps ->
    let n = List.length steps in
    if n > 20 then invalid_arg "Lift.case_instrs: test case too long";
    let clear = if tc.tc_checks_flags then [ Isa.Csr_fflags 0 ] else [] in
    let ops =
      List.concat (List.mapi
        (fun i s ->
          [ Isa.Li (5, s.f_lhs); Isa.Li (6, s.f_rhs); Isa.Fmv_wx (0, 5); Isa.Fmv_wx (1, 6) ]
          @
          match s.f_op with
          | Fpu_format.Feq | Fpu_format.Flt | Fpu_format.Fle ->
            [ Isa.Fcmp (s.f_op, 8 + i, 0, 1) ]
          | Fpu_format.Fadd | Fpu_format.Fsub | Fpu_format.Fmul | Fpu_format.Fmin
          | Fpu_format.Fmax ->
            [ Isa.Fop (s.f_op, 2 + i, 0, 1) ])
        steps)
    in
    let checks =
      List.concat (List.mapi
        (fun i s ->
          match s.f_op with
          | Fpu_format.Feq | Fpu_format.Flt | Fpu_format.Fle ->
            [ Isa.Li (7, s.f_expected land 1); Isa.Bne (8 + i, 7, fail_label) ]
          | Fpu_format.Fadd | Fpu_format.Fsub | Fpu_format.Fmul | Fpu_format.Fmin
          | Fpu_format.Fmax ->
            [
              Isa.Fmv_xw (5, 2 + i);
              Isa.Li (7, s.f_expected);
              Isa.Bne (5, 7, fail_label);
            ])
        steps)
    in
    let flag_check =
      if tc.tc_checks_flags then begin
        match tc.tc_body with
        | Fpu_test steps ->
          [
            Isa.Csr_fflags 9;
            Isa.Li (10, Fpu_format.flags_to_int (sticky_flags steps));
            Isa.Bne (9, 10, fail_label);
          ]
        | Alu_test _ -> []
      end
      else []
    in
    clear @ ops @ checks @ flag_check

type suite = { suite_target : module_kind; suite_cases : test_case list }

let suite_of_results suite_target results =
  { suite_target; suite_cases = List.concat_map (fun r -> r.cases) results }

let reorder order cases =
  match order with
  | None -> cases
  | Some order ->
    let arr = Array.of_list cases in
    if List.length order <> Array.length arr then
      invalid_arg "Lift: order length does not match the suite";
    List.map (fun i -> arr.(i)) order

let suite_instrs ?order ?(label_prefix = "") ~fail_label suite =
  ignore label_prefix;
  List.concat_map (case_instrs ~fail_label) (reorder order suite.suite_cases)

let suite_program ?order suite =
  let fail_label = "__vega_fail" in
  Isa.assemble
    (suite_instrs ?order ~fail_label suite
    @ [ Isa.Ecall Isa.exit_ok; Isa.Label fail_label; Isa.Ecall Isa.exit_sdc ])

(* ---- Word-parallel netlist-level suite evaluation --------------------

   Detection-rate evaluation without the instruction-set machine: every
   test case becomes one Sim64 lane, its operation stream is replayed
   back-to-back into the (failing) unit netlist, and each retired result
   is compared against the case's golden expectations — up to
   [Sim64.lanes] cases per sweep.  The machine-based run ([suite_program]
   through [Machine]) stays the reference semantics: it additionally sees
   pipeline bubbles between units and branch-comparison corruption, so
   the paper-facing tables keep using it, while this path makes
   large-scale detection sweeps (random baselines, fuzz triage) cheap. *)

let lane_word nlanes get_bit =
  let w = ref 0 in
  for l = 0 to nlanes - 1 do
    if get_bit l then w := !w lor (1 lsl l)
  done;
  !w

let port_lane_words width nlanes get_value =
  Array.init width (fun bit -> lane_word nlanes (fun l -> (get_value l lsr bit) land 1 = 1))

let has_fault_port nl =
  List.exists (fun (p : Netlist.port) -> String.equal p.port_name Fault.random_port)
    (Netlist.inputs nl)

let port_width ~input nl name =
  let p = if input then Netlist.find_input nl name else Netlist.find_output nl name in
  Array.length p.Netlist.port_nets

(* The simulation backend of a sweep.  A plain variant (rather than a
   first-class module at the API boundary) so configuration records that
   carry it — e.g. the resilience supervisor's ladder — stay structurally
   comparable and serializable.  All three engines drive the same port
   protocol; [Engine_sim64] and [Engine_simc] consume the RNG stream
   identically (same lane count, same draw order), so their verdicts are
   bit-identical even for [C_random] faults.  [Engine_scalar] re-batches
   one case per sweep and so draws the RNG differently; it exists as the
   slow reference. *)
type engine = Engine_scalar | Engine_sim64 | Engine_simc

let engine_name = function
  | Engine_scalar -> "scalar"
  | Engine_sim64 -> "sim64"
  | Engine_simc -> "simc"

let engine_of_name = function
  | "scalar" -> Some Engine_scalar
  | "sim64" -> Some Engine_sim64
  | "simc" -> Some Engine_simc
  | _ -> None

let word_engine : engine -> (module Sim_intf.WORD) = function
  | Engine_scalar -> (module Sim.Word)
  | Engine_sim64 -> (module Sim64)
  | Engine_simc -> (module Simc)

(* Streaming protocol shared with [Machine]: inputs of operation [s] are
   driven before edge [s]; the input rank captures them at edge [s]; the
   result rank captures at edge [s + 1]; so operation [s]'s result is read
   after edge [s + 1] (the unit's latency of 2). *)
let alu_detect_batch (type s) (module E : Sim_intf.WORD with type t = s) rng nl
    (cases : alu_step array array) =
  let nlanes = Array.length cases in
  let s64 = E.create nl in
  let op_w = port_width ~input:true nl Alu.op_port in
  let data_w = port_width ~input:true nl Alu.a_port in
  let r_nets = (Netlist.find_output nl Alu.r_port).Netlist.port_nets in
  let drive_fault = has_fault_port nl in
  let len l = Array.length cases.(l) in
  let maxlen = Array.fold_left (fun a c -> max a (Array.length c)) 0 cases in
  (* short lanes hold their last operation; their results are masked out *)
  let step_val l s f = if len l = 0 then 0 else f cases.(l).(min s (len l - 1)) in
  let detected = ref 0 in
  for t = 0 to maxlen do
    if t < maxlen then begin
      E.set_input_words s64 Alu.op_port
        (port_lane_words op_w nlanes (fun l -> step_val l t (fun st -> Alu.op_code st.a_op)));
      E.set_input_words s64 Alu.a_port
        (port_lane_words data_w nlanes (fun l -> step_val l t (fun st -> st.a_lhs)));
      E.set_input_words s64 Alu.b_port
        (port_lane_words data_w nlanes (fun l -> step_val l t (fun st -> st.a_rhs)))
    end;
    if drive_fault then E.set_input_words s64 Fault.random_port [| Sim64.random_word rng |];
    E.step s64;
    let s = t - 1 in
    if s >= 0 then begin
      let retire = lane_word nlanes (fun l -> s < len l) in
      if retire <> 0 then begin
        let mism = ref 0 in
        Array.iteri
          (fun bit n ->
            let expected =
              lane_word nlanes (fun l ->
                  s < len l && step_val l s (fun st -> (st.a_expected lsr bit) land 1) = 1)
            in
            mism := !mism lor (E.net_word s64 n lxor expected))
          r_nets;
        detected := !detected lor (!mism land retire)
      end
    end
  done;
  !detected

let fpu_detect_batch (type s) (module E : Sim_intf.WORD with type t = s) rng nl
    (cases : (fpu_step array * bool) array) =
  let nlanes = Array.length cases in
  let s64 = E.create nl in
  let op_w = port_width ~input:true nl Fpu.op_port in
  let data_w = port_width ~input:true nl Fpu.a_port in
  let r_nets = (Netlist.find_output nl Fpu.r_port).Netlist.port_nets in
  let fl_nets = (Netlist.find_output nl Fpu.flags_port).Netlist.port_nets in
  let v_net = (Netlist.find_output nl Fpu.valid_port).Netlist.port_nets.(0) in
  let drive_fault = has_fault_port nl in
  let steps l = fst cases.(l) in
  let len l = Array.length (steps l) in
  let maxlen = Array.fold_left (fun a (c, _) -> max a (Array.length c)) 0 cases in
  let step_val l s f = if len l = 0 then 0 else f (steps l).(min s (len l - 1)) in
  let detected = ref 0 in
  let sticky = Array.map (fun _ -> 0) fl_nets in
  for t = 0 to maxlen do
    if t < maxlen then begin
      E.set_input_words s64 Fpu.op_port
        (port_lane_words op_w nlanes (fun l ->
             step_val l t (fun st -> Fpu_format.op_code st.f_op)));
      E.set_input_words s64 Fpu.a_port
        (port_lane_words data_w nlanes (fun l -> step_val l t (fun st -> st.f_lhs)));
      E.set_input_words s64 Fpu.b_port
        (port_lane_words data_w nlanes (fun l -> step_val l t (fun st -> st.f_rhs)));
      E.set_input_words s64 Fpu.in_valid_port [| lane_word nlanes (fun l -> t < len l) |]
    end
    else E.set_input_words s64 Fpu.in_valid_port [| 0 |];
    if drive_fault then E.set_input_words s64 Fault.random_port [| Sim64.random_word rng |];
    E.step s64;
    let s = t - 1 in
    if s >= 0 then begin
      let retire = lane_word nlanes (fun l -> s < len l) in
      if retire <> 0 then begin
        let valid = E.net_word s64 v_net in
        (* a missing handshake token is a stall the machine's watchdog
           would catch *)
        detected := !detected lor (lnot valid land retire);
        let ok = valid land retire in
        let mism = ref 0 in
        Array.iteri
          (fun bit n ->
            let expected =
              lane_word nlanes (fun l ->
                  s < len l && step_val l s (fun st -> (st.f_expected lsr bit) land 1) = 1)
            in
            mism := !mism lor (E.net_word s64 n lxor expected))
          r_nets;
        detected := !detected lor (!mism land ok);
        Array.iteri
          (fun bit n -> sticky.(bit) <- sticky.(bit) lor (E.net_word s64 n land retire))
          fl_nets
      end
    end
  done;
  (* sticky-flag comparison for the cases that check the fflags CSR *)
  let checks = lane_word nlanes (fun l -> snd cases.(l)) in
  if checks <> 0 then begin
    let golden l = Fpu_format.flags_to_int (sticky_flags (Array.to_list (steps l))) in
    let fl_mism = ref 0 in
    Array.iteri
      (fun bit _ ->
        let expected = lane_word nlanes (fun l -> (golden l lsr bit) land 1 = 1) in
        fl_mism := !fl_mism lor (sticky.(bit) lxor expected))
      fl_nets;
    detected := !detected lor (!fl_mism land checks)
  end;
  !detected

let detected_cases ?(seed = 0xde7ec7) ?(engine = Engine_sim64) suite nl =
  let (module E : Sim_intf.WORD) = word_engine engine in
  let rng = Random.State.make [| seed |] in
  let cases = Array.of_list suite.suite_cases in
  let ncases = Array.length cases in
  let out = Array.make (max ncases 1) false in
  let batch lo hi =
    let nlanes = hi - lo in
    let word =
      match suite.suite_target with
      | Alu_module _ ->
        alu_detect_batch (module E) rng nl
          (Array.init nlanes (fun i ->
               match cases.(lo + i).tc_body with
               | Alu_test l -> Array.of_list l
               | Fpu_test _ -> invalid_arg "Lift.detected_cases: FPU case in an ALU suite"))
      | Fpu_module _ ->
        fpu_detect_batch (module E) rng nl
          (Array.init nlanes (fun i ->
               match cases.(lo + i).tc_body with
               | Fpu_test l -> (Array.of_list l, cases.(lo + i).tc_checks_flags)
               | Alu_test _ -> invalid_arg "Lift.detected_cases: ALU case in an FPU suite"))
    in
    for i = 0 to nlanes - 1 do
      out.(lo + i) <- (word lsr i) land 1 = 1
    done
  in
  let rec go lo =
    if lo < ncases then begin
      batch lo (min ncases (lo + E.lanes));
      go (lo + E.lanes)
    end
  in
  go 0;
  Array.sub out 0 ncases

let detects ?seed ?engine suite nl =
  Array.exists Fun.id (detected_cases ?seed ?engine suite nl)

let detection_rate ?seed ?engine suite nls =
  match nls with
  | [] -> invalid_arg "Lift.detection_rate: no netlists to evaluate"
  | _ ->
    let det = List.length (List.filter (fun nl -> detects ?seed ?engine suite nl) nls) in
    float_of_int det /. float_of_int (List.length nls)
