(** Error Lifting: from aging-prone paths to software test cases
    (the paper's phase two, Sections 3.3.3–3.3.5).

    For a violating (startpoint, endpoint) register pair in the ALU or FPU,
    the lifter instruments the failure model and shadow replica
    ({!Fault.instrument_shadow}), runs the formal engine on the cover
    property, and translates each returned module-level waveform into a
    sequence of instructions — one operation per trace cycle, with golden
    expected results attached — via the per-module lookup tables that embody
    the "expert knowledge of the CPU's microarchitecture".

    Outcomes reproduce the paper's Table 4 taxonomy:
    - [S]: at least one executable test case was constructed;
    - [UR]: every variant was formally proven unable to cause an
      observable error (including faults that cannot reach any output);
    - [FF]: the formal tool exhausted its conflict budget;
    - [FC]: a waveform exists but is not convertible — the only observable
      divergence is a sticky status flag that the test's own earlier
      operations already raise, so no comparison can witness it
      (Section 5.2.2's FPU-only failure mode).

    Without the §3.3.4 mitigation, up to two variants are explored per pair
    (C = 0 and C = 1); with it, up to four (C x rising/falling edge). *)

type module_kind = Alu_module of { width : int } | Fpu_module of { fmt : Fpu_format.fmt }

type target = { kind : module_kind; netlist : Netlist.t }

val alu_target : ?width:int -> unit -> target
val fpu_target : ?fmt:Fpu_format.fmt -> unit -> target
val target_of_netlist : module_kind -> Netlist.t -> target
(** Wrap an existing (e.g. profiled) netlist of the right shape. *)

(** One operation of a test case, with its golden expectation. *)
type alu_step = { a_op : Alu.op; a_lhs : int; a_rhs : int; a_expected : int }

type fpu_step = {
  f_op : Fpu_format.op;
  f_lhs : int;
  f_rhs : int;
  f_expected : int;
  f_flags : Fpu_format.flags;
}

type body = Alu_test of alu_step list | Fpu_test of fpu_step list

type test_case = {
  tc_id : string;
  tc_spec : Fault.spec;
  tc_body : body;
  tc_may_stall : bool;
      (** the covered divergence includes the valid handshake: detection
          manifests as a CPU stall rather than a wrong value *)
  tc_checks_flags : bool;  (** the test compares the accumulated fflags CSR *)
}

val steps : test_case -> int

type variant_outcome =
  | Constructed of test_case
  | Proved_unreachable
  | Formal_timeout
  | Conversion_failed

type classification = S | UR | FF | FC

val classification_name : classification -> string

type pair_result = {
  start_dff : string;
  end_dff : string;
  violation : Fault.violation_kind;
  variants : (Fault.spec * variant_outcome) list;
  classification : classification;
  cases : test_case list;
}

type config = {
  mitigation : bool;  (** §3.3.4: edge-restricted activation variants *)
  max_conflicts : int;  (** formal budget per variant (the "FF" knob) *)
  max_cycles : int option;  (** BMC bound override *)
}

val default_config : config
(** mitigation off, 200_000 conflicts, automatic bound. *)

val lift_pair :
  ?config:config ->
  target ->
  start_dff:string ->
  end_dff:string ->
  violation:Fault.violation_kind ->
  pair_result
(** Run Error Lifting for one unique endpoint pair. *)

(** Per-variant formal effort, for budget accounting and resume. *)
type variant_stats = {
  vs_spec : Fault.spec;
  vs_solver : Sat.stats;  (** solver effort actually spent on this variant *)
  vs_calls : int;  (** BMC bounds queried *)
  vs_deepest_bound : int;
      (** deepest bound proven unreachable — feed back via [resume] *)
}

type pair_stats = {
  p_variants : variant_stats list;  (** in variant order *)
  p_conflicts : int;  (** total conflicts spent on the pair *)
}

val lift_pair_stats :
  ?config:config ->
  ?budget:int ->
  ?resume:(Fault.spec * int) list ->
  target ->
  start_dff:string ->
  end_dff:string ->
  violation:Fault.violation_kind ->
  pair_result * pair_stats
(** Like {!lift_pair}, with effort reporting and supervisor hooks.

    [budget], when given, is a conflict cap for the {e whole pair} — each
    variant draws from what the previous ones left over — instead of the
    per-variant [config.max_conflicts].  The pair can never spend more than
    [budget] conflicts (the per-pair slice isolation of {!Resilience}).

    [resume] maps variant specs to the deepest BMC bound already proven
    unreachable for them (from [vs_deepest_bound] of an earlier timed-out
    attempt); those variants restart at bound+1 instead of bound 0. *)

(** {1 Fuzzing-based generation (the paper's §6.3 alternative)} *)

type fuzz_config = {
  budget_cycles : int;  (** random-stimulus budget per variant *)
  seed : int;
  fuzz_mitigation : bool;
}

val default_fuzz_config : fuzz_config
(** 2000 cycles, mitigation off. *)

val fuzz_pair :
  ?fuzz:fuzz_config ->
  target ->
  start_dff:string ->
  end_dff:string ->
  violation:Fault.violation_kind ->
  pair_result
(** Like {!lift_pair} but with random valid stimulus on the
    shadow-instrumented netlist instead of formal search, followed by a
    greedy trace shrink.  Fuzzing can never prove unreachability: a pair
    whose faults cannot influence any output still classifies [UR], but an
    exhausted budget classifies [FF] even when a formal proof would say
    [UR] — exactly the fuzzing/formal trade-off the paper discusses. *)

val lift_violating_pairs :
  ?config:config ->
  target ->
  (Sta.startpoint * Sta.endpoint * Sta.check * float) list ->
  pair_result list
(** Lift each unique violating register pair from {!Sta.violating_pairs}
    (input-launched entries are skipped: they have no register
    startpoint). *)

val lift_paths : ?config:config -> target -> Sta.path list -> pair_result list
(** Filter violating paths to unique (startpoint, endpoint) pairs (keeping
    the worst) and lift each.  Paths launched by primary inputs are skipped
    (they have no register startpoint). *)

(** {1 Rendering to instructions} *)

val case_instrs : fail_label:string -> test_case -> Isa.instr list
(** Instruction sequence for one test case: load operands, execute the
    steps back to back, then compare every result (and, when
    [tc_checks_flags], the accumulated fflags CSR) against the golden
    expectations, branching to [fail_label] on mismatch.  Uses registers
    x5-x31 / f0-f31; the caller provides the fail label. *)

type suite = { suite_target : module_kind; suite_cases : test_case list }

val suite_of_results : module_kind -> pair_result list -> suite

val suite_program : ?order:int list -> suite -> Isa.program
(** A standalone program running the whole suite (optionally in a custom
    order), exiting with {!Isa.exit_ok} or, on any detection,
    {!Isa.exit_sdc}. *)

val suite_instrs : ?order:int list -> ?label_prefix:string -> fail_label:string -> suite -> Isa.instr list
(** The suite as an embeddable instruction block (no ecalls), for Test
    Integration. *)

(** {1 Word-parallel netlist-level evaluation}

    Detection-rate evaluation on the unit netlist itself, without the
    instruction-set machine: each test case occupies one {!Sim64} lane,
    its operation stream replays back-to-back into the (failing) netlist,
    and every retired result is compared against the case's golden
    expectations — up to [Sim64.lanes] cases per sweep.  FPU cases
    additionally watch the valid handshake (a missing token is the stall
    the machine's watchdog would catch) and, when [tc_checks_flags], the
    accumulated sticky flags.  The machine-based run remains the reference
    semantics (it also sees inter-unit bubbles and branch-comparison
    corruption); this path is for large detection sweeps such as the
    random-suite baselines.

    The backend is selectable: the interpreted word-parallel {!Sim64}
    (default), the compiled {!Simc}, or the scalar reference {!Sim}
    through its [Word] adapter.  [Engine_sim64] and [Engine_simc] consume
    the fault RNG identically and give bit-identical verdicts;
    [Engine_scalar] batches one case at a time, so its verdicts on
    [C_random] faults may differ (it is the slow reference, not a
    production path). *)

type engine = Engine_scalar | Engine_sim64 | Engine_simc

val engine_name : engine -> string
(** ["scalar"], ["sim64"] or ["simc"] — stable names for CLI flags and
    checkpoint digests. *)

val engine_of_name : string -> engine option

val word_engine : engine -> (module Sim_intf.WORD)
(** The first-class engine module behind a selector. *)

val detected_cases : ?seed:int -> ?engine:engine -> suite -> Netlist.t -> bool array
(** Per-case detection verdicts against [netlist] (typically a
    {!Fault.failing_netlist} of the suite's target).  [seed] drives the
    {!Fault.random_port} input when the netlist has one ([C_random]
    faults).
    @raise Invalid_argument if a case's body does not match the suite
    target or the netlist lacks the target's ports. *)

val detects : ?seed:int -> ?engine:engine -> suite -> Netlist.t -> bool
(** Whether any case of the suite detects the fault. *)

val detection_rate : ?seed:int -> ?engine:engine -> suite -> Netlist.t list -> float
(** Fraction of the given failing netlists detected by the suite.
    @raise Invalid_argument on an empty list. *)
