type result = Sat | Unsat | Unknown

(* Growable int-array vector. *)
module Vec = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = Array.make 16 0; size = 0 }

  let push v x =
    if v.size = Array.length v.data then begin
      let data = Array.make (2 * v.size) 0 in
      Array.blit v.data 0 data 0 v.size;
      v.data <- data
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.size
  let shrink v n = v.size <- n
  let _clear v = v.size <- 0
end

type t = {
  mutable nvars : int;
  mutable clauses : int array array;  (* problem + learned *)
  mutable nclauses : int;  (* total stored *)
  mutable nproblem : int;
  (* per-variable state, index 1..nvars (0 unused) *)
  mutable assign : int array;  (* 0 / 1 / -1 *)
  mutable level : int array;
  mutable reason : int array;  (* clause index or -1 *)
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;
  (* watches, indexed by literal index *)
  mutable watches : Vec.t array;
  (* heap of decision candidates *)
  mutable heap : int array;
  mutable heap_pos : int array;  (* -1 when absent *)
  mutable heap_size : int;
  problem_idx : Vec.t;  (* indices of problem (non-learned) clauses *)
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;  (* false once root-level conflict found *)
  mutable model_arr : bool array;
  mutable last_result : result;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
}

type stats = { conflicts : int; decisions : int; propagations : int; restarts : int }

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    nproblem = 0;
    assign = Array.make 8 0;
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    activity = Array.make 8 0.0;
    polarity = Array.make 8 false;
    seen = Array.make 8 false;
    watches = Array.init 16 (fun _ -> Vec.create ());
    heap = Array.make 8 0;
    heap_pos = Array.make 8 (-1);
    heap_size = 0;
    problem_idx = Vec.create ();
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    model_arr = [||];
    last_result = Unknown;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
  }

let num_vars t = t.nvars
let num_clauses t = t.nproblem
let stats_conflicts (t : t) = t.conflicts
let stats_decisions (t : t) = t.decisions
let stats_propagations (t : t) = t.propagations

let stats (t : t) =
  {
    conflicts = t.conflicts;
    decisions = t.decisions;
    propagations = t.propagations;
    restarts = t.restarts;
  }

let stats_diff a b =
  {
    conflicts = a.conflicts - b.conflicts;
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    restarts = a.restarts - b.restarts;
  }

let stats_sum a b =
  {
    conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
  }

let zero_stats = { conflicts = 0; decisions = 0; propagations = 0; restarts = 0 }

let lit_idx l = if l > 0 then 2 * l else (-2 * l) + 1

let grow_arrays t n =
  let old = Array.length t.assign in
  if n >= old then begin
    let cap = max (2 * old) (n + 1) in
    let grow a def =
      let a' = Array.make cap def in
      Array.blit a 0 a' 0 old;
      a'
    in
    t.assign <- grow t.assign 0;
    t.level <- grow t.level 0;
    t.reason <- grow t.reason (-1);
    t.activity <- grow t.activity 0.0;
    t.polarity <- grow t.polarity false;
    t.seen <- grow t.seen false;
    t.heap <- grow t.heap 0;
    t.heap_pos <- grow t.heap_pos (-1);
    let oldw = Array.length t.watches in
    let capw = 2 * cap + 2 in
    if capw > oldw then begin
      let w = Array.init capw (fun i -> if i < oldw then t.watches.(i) else Vec.create ()) in
      t.watches <- w
    end
  end

(* max-heap on activity *)
let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less t t.heap.(i) t.heap.(p) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_less t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_less t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) = -1 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_up t (t.heap_size - 1)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap_pos.(t.heap.(0)) <- 0
  end;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then heap_down t 0;
  v

let new_var t =
  let v = t.nvars + 1 in
  t.nvars <- v;
  grow_arrays t v;
  heap_insert t v;
  v

let lit_value t l =
  let s = t.assign.(abs l) in
  if s = 0 then 0 else if l > 0 then s else -s

let decision_level t = Vec.size t.trail_lim

let enqueue t l reason =
  let v = abs l in
  t.assign.(v) <- (if l > 0 then 1 else -1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.polarity.(v) <- l > 0;
  Vec.push t.trail l

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let decay_activities t = t.var_inc <- t.var_inc /. 0.95

let store_clause t lits =
  if t.nclauses = Array.length t.clauses then begin
    let c = Array.make (2 * t.nclauses) [||] in
    Array.blit t.clauses 0 c 0 t.nclauses;
    t.clauses <- c
  end;
  t.clauses.(t.nclauses) <- lits;
  t.nclauses <- t.nclauses + 1;
  t.nclauses - 1

let watch_clause t ci =
  let lits = t.clauses.(ci) in
  Vec.push t.watches.(lit_idx (-lits.(0))) ci;
  Vec.push t.watches.(lit_idx (-lits.(1))) ci

(* Propagate all enqueued facts.  Returns the index of a conflicting clause
   or -1. *)
let propagate t =
  let confl = ref (-1) in
  while !confl = -1 && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    (* clauses watching -p (p just became true, so -p became false) *)
    let wl = t.watches.(lit_idx p) in
    let n = Vec.size wl in
    let keep = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Vec.get wl !i in
      incr i;
      let lits = t.clauses.(ci) in
      (* Ensure the false literal is at position 1. *)
      if lits.(0) = -p then begin
        lits.(0) <- lits.(1);
        lits.(1) <- -p
      end;
      if lit_value t lits.(0) = 1 then begin
        (* clause satisfied; keep watching *)
        Vec.set wl !keep ci;
        incr keep
      end
      else begin
        (* find a new literal to watch *)
        let len = Array.length lits in
        let found = ref false in
        let j = ref 2 in
        while (not !found) && !j < len do
          if lit_value t lits.(!j) <> -1 then begin
            lits.(1) <- lits.(!j);
            lits.(!j) <- -p;
            Vec.push t.watches.(lit_idx (-lits.(1))) ci;
            found := true
          end;
          incr j
        done;
        if not !found then begin
          (* unit or conflicting *)
          Vec.set wl !keep ci;
          incr keep;
          if lit_value t lits.(0) = -1 then begin
            confl := ci;
            (* copy remaining watches back *)
            while !i < n do
              Vec.set wl !keep (Vec.get wl !i);
              incr keep;
              incr i
            done
          end
          else enqueue t lits.(0) ci
        end
      end
    done;
    Vec.shrink wl !keep
  done;
  !confl

let backtrack t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let v = abs (Vec.get t.trail i) in
      t.assign.(v) <- 0;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* First-UIP conflict analysis.  Returns (learnt clause, backtrack level);
   learnt.(0) is the asserting literal. *)
let analyze t confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  let bt = ref 0 in
  let index = ref (Vec.size t.trail - 1) in
  let ci = ref confl in
  let continue_loop = ref true in
  while !continue_loop do
    let lits = t.clauses.(!ci) in
    let start = if !p = 0 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = abs q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        bump_var t v;
        if t.level.(v) = decision_level t then incr counter
        else begin
          learnt := q :: !learnt;
          if t.level.(v) > !bt then bt := t.level.(v)
        end
      end
    done;
    (* next literal on trail to resolve *)
    while not t.seen.(abs (Vec.get t.trail !index)) do
      decr index
    done;
    p := Vec.get t.trail !index;
    decr index;
    t.seen.(abs !p) <- false;
    decr counter;
    if !counter = 0 then continue_loop := false
    else begin
      ci := t.reason.(abs !p);
      (* ensure the resolved literal is at position 0 of its reason *)
      let lits = t.clauses.(!ci) in
      if lits.(0) <> !p then begin
        let pos = ref 0 in
        Array.iteri (fun k q -> if q = !p then pos := k) lits;
        let tmp = lits.(0) in
        lits.(0) <- lits.(!pos);
        lits.(!pos) <- tmp
      end
    end
  done;
  let learnt = Array.of_list ((- !p) :: !learnt) in
  List.iter (fun q -> t.seen.(abs q) <- false) (Array.to_list learnt);
  (learnt, !bt)

let add_clause t lits =
  List.iter
    (fun l ->
      let v = abs l in
      if v < 1 || v > t.nvars then
        invalid_arg (Printf.sprintf "Sat.add_clause: unknown variable %d" v))
    lits;
  if t.ok then begin
    backtrack t 0;
    t.last_result <- Unknown;
    (* simplify: dedupe, drop false lits (root level), detect tautology/satisfied *)
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (-l) lits) lits in
    let satisfied = List.exists (fun l -> lit_value t l = 1) lits in
    if not (taut || satisfied) then begin
      let lits = List.filter (fun l -> lit_value t l <> -1) lits in
      match lits with
      | [] -> t.ok <- false
      | [ l ] ->
        enqueue t l (-1);
        if propagate t <> -1 then t.ok <- false
      | _ ->
        let arr = Array.of_list lits in
        let ci = store_clause t arr in
        t.nproblem <- t.nproblem + 1;
        Vec.push t.problem_idx ci;
        watch_clause t ci
    end
  end

(* Luby restart sequence: 1 1 2 1 1 2 4 ... *)
let luby i =
  let rec compute i =
    let k = ref 1 in
    while (1 lsl !k) - 1 < i + 1 do
      incr k
    done;
    let k = !k in
    if (1 lsl k) - 1 = i + 1 then 1 lsl (k - 1)
    else compute (i + 1 - (1 lsl (k - 1)))
  in
  compute i

let pick_branch_var t =
  let rec go () =
    if t.heap_size = 0 then 0
    else
      let v = heap_pop t in
      if t.assign.(v) = 0 then v else go ()
  in
  go ()

let solve_core ?(assumptions = []) ?max_conflicts t =
  if not t.ok then Unsat
  else begin
    backtrack t 0;
    t.last_result <- Unknown;
    let assumptions = Array.of_list assumptions in
    let budget = match max_conflicts with Some b -> t.conflicts + b | None -> max_int in
    let restart_base = 64 in
    let restart_num = ref 0 in
    let next_restart = ref (t.conflicts + (restart_base * luby 0)) in
    let result = ref None in
    (try
       while !result = None do
         let confl = propagate t in
         if confl >= 0 then begin
           t.conflicts <- t.conflicts + 1;
           if decision_level t = 0 then begin
             t.ok <- false;
             result := Some Unsat
           end
           else if decision_level t <= Array.length assumptions then
             (* conflict while the assumption prefix is active *)
             result := Some Unsat
           else begin
             let learnt, bt = analyze t confl in
             (* never undo the assumption prefix *)
             let bt = max bt (min (decision_level t - 1) (Array.length assumptions)) in
             backtrack t bt;
             if Array.length learnt = 1 then begin
               if lit_value t learnt.(0) = 0 then enqueue t learnt.(0) (-1)
             end
             else begin
               let ci = store_clause t learnt in
               watch_clause t ci;
               enqueue t learnt.(0) ci
             end;
             decay_activities t;
             if t.conflicts >= budget then result := Some Unknown
           end
         end
         else if t.conflicts >= !next_restart && decision_level t > Array.length assumptions
         then begin
           incr restart_num;
           t.restarts <- t.restarts + 1;
           next_restart := t.conflicts + (restart_base * luby !restart_num);
           backtrack t (Array.length assumptions)
         end
         else if decision_level t < Array.length assumptions then begin
           let a = assumptions.(decision_level t) in
           match lit_value t a with
           | 1 -> Vec.push t.trail_lim (Vec.size t.trail)  (* dummy level *)
           | -1 -> result := Some Unsat
           | _ ->
             Vec.push t.trail_lim (Vec.size t.trail);
             t.decisions <- t.decisions + 1;
             enqueue t a (-1)
         end
         else begin
           let v = pick_branch_var t in
           if v = 0 then begin
             (* full assignment: SAT *)
             t.model_arr <- Array.init (t.nvars + 1) (fun i -> i > 0 && t.assign.(i) = 1);
             result := Some Sat
           end
           else begin
             Vec.push t.trail_lim (Vec.size t.trail);
             t.decisions <- t.decisions + 1;
             enqueue t (if t.polarity.(v) then v else -v) (-1)
           end
         end
       done
     with Exit -> ());
    let r = match !result with Some r -> r | None -> Unknown in
    backtrack t 0;
    t.last_result <- r;
    r
  end

(* Telemetry wrapper: a span per solve call carrying the per-call stats
   delta, plus process-wide counters fed from the same delta.  The entire
   instrumented path is skipped behind one [Telemetry.enabled] check so a
   disabled sink never allocates the span or its argument list. *)

let tele_calls = Telemetry.Counter.make "sat.solve.calls"
let tele_conflicts = Telemetry.Counter.make "sat.conflicts"
let tele_decisions = Telemetry.Counter.make "sat.decisions"
let tele_propagations = Telemetry.Counter.make "sat.propagations"
let tele_restarts = Telemetry.Counter.make "sat.restarts"

let result_name = function Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown"

let solve ?assumptions ?max_conflicts t =
  if not (Telemetry.enabled ()) then solve_core ?assumptions ?max_conflicts t
  else begin
    Telemetry.begin_span ~cat:"sat" "sat.solve";
    let before = stats t in
    let finish r =
      let d = stats_diff (stats t) before in
      Telemetry.Counter.incr tele_calls;
      Telemetry.Counter.add tele_conflicts d.conflicts;
      Telemetry.Counter.add tele_decisions d.decisions;
      Telemetry.Counter.add tele_propagations d.propagations;
      Telemetry.Counter.add tele_restarts d.restarts;
      Telemetry.end_span
        ~args:
          [
            ("result", Telemetry.Str (result_name r));
            ("conflicts", Telemetry.Int d.conflicts);
            ("decisions", Telemetry.Int d.decisions);
            ("propagations", Telemetry.Int d.propagations);
            ("restarts", Telemetry.Int d.restarts);
          ]
        ()
    in
    match solve_core ?assumptions ?max_conflicts t with
    | r ->
      finish r;
      r
    | exception e ->
      finish Unknown;
      raise e
  end

let value t v =
  if t.last_result <> Sat then invalid_arg "Sat.value: last result was not Sat";
  if v < 1 || v > t.nvars then invalid_arg "Sat.value: unknown variable";
  t.model_arr.(v)

let to_dimacs t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" t.nvars t.nproblem);
  for k = 0 to Vec.size t.problem_idx - 1 do
    let ci = Vec.get t.problem_idx k in
    Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " l)) t.clauses.(ci);
    Buffer.add_string buf "0\n"
  done;
  Buffer.contents buf

let model t =
  if t.last_result <> Sat then invalid_arg "Sat.model: last result was not Sat";
  Array.copy t.model_arr
