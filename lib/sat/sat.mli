(** A CDCL SAT solver.

    This is the decision engine behind the formal-verification phase
    (the JasperGold substitute): conflict-driven clause learning with
    two-watched-literal propagation, first-UIP conflict analysis,
    VSIDS-style variable activities, phase saving, and Luby restarts.

    Literals are nonzero integers in DIMACS convention: variable [v] is the
    positive literal [v], its negation [-v].  Variables must be allocated
    with {!new_var} before use. *)

type t

type result = Sat | Unsat | Unknown

val result_name : result -> string
(** "sat" / "unsat" / "unknown" — for logs and telemetry args. *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its (positive) id, starting at 1. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Problem clauses added so far (excluding learned clauses). *)

val add_clause : t -> int list -> unit
(** Add a clause (list of literals).  Duplicate literals are merged and
    tautologies dropped.  Adding the empty clause makes the instance
    trivially unsatisfiable.
    @raise Invalid_argument on a literal whose variable was never
    allocated. *)

val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> result
(** Decide satisfiability under the given assumption literals.  Returns
    [Unknown] when [max_conflicts] (default: unlimited) is exhausted — the
    budget that realizes the paper's "FF" formal-tool-timeout outcome.
    The solver may be reused: call {!solve} again, with different
    assumptions or after adding clauses. *)

val value : t -> int -> bool
(** Value of a variable in the model of the last [Sat] answer.
    @raise Invalid_argument if the last result was not [Sat]. *)

val to_dimacs : t -> string
(** The problem clauses in DIMACS CNF (for cross-checking against external
    solvers).  Learned clauses are not included.  Note that root-level
    simplification during {!add_clause} may already have dropped satisfied
    clauses and falsified literals, so this is the simplified instance. *)

val model : t -> bool array
(** The full model, indexed by variable id (entry 0 unused). *)

val stats_conflicts : t -> int
val stats_decisions : t -> int
val stats_propagations : t -> int

type stats = { conflicts : int; decisions : int; propagations : int; restarts : int }
(** Cumulative solver effort since {!create}.  [conflicts] is the budget
    currency of {!solve}'s [max_conflicts]; callers slice shared budgets by
    differencing snapshots around each call. *)

val stats : t -> stats

val stats_diff : stats -> stats -> stats
(** [stats_diff after before]: effort spent between two snapshots. *)

val stats_sum : stats -> stats -> stats
val zero_stats : stats
