(* Random.State.int rejects bounds >= 2^30; compose for wide words. *)
let rand_bits rng width =
  if width <= 30 then Random.State.int rng (1 lsl width)
  else (Random.State.bits rng lor (Random.State.bits rng lsl 30)) land ((1 lsl width) - 1)

let dummy_spec =
  {
    Fault.start_dff = "random";
    end_dff = "random";
    kind = Fault.Setup_violation;
    constant = Fault.C0;
    activation = Fault.Any_transition;
  }

let random_alu_case rng width i =
  let op = List.nth Alu.all_ops (Random.State.int rng (List.length Alu.all_ops)) in
  let a = rand_bits rng width in
  let b = rand_bits rng width in
  let expected =
    Bitvec.to_int
      (Alu.golden ~width op (Bitvec.create ~width a) (Bitvec.create ~width b))
  in
  {
    Lift.tc_id = Printf.sprintf "random_alu_%d" i;
    tc_spec = dummy_spec;
    tc_body = Lift.Alu_test [ { Lift.a_op = op; a_lhs = a; a_rhs = b; a_expected = expected } ];
    tc_may_stall = false;
    tc_checks_flags = false;
  }

let random_fpu_case rng fmt i =
  let w = Fpu_format.width fmt in
  let op =
    List.nth Fpu_format.all_ops (Random.State.int rng (List.length Fpu_format.all_ops))
  in
  let a = rand_bits rng w in
  let b = rand_bits rng w in
  let r, fl = Softfloat.apply fmt op (Bitvec.create ~width:w a) (Bitvec.create ~width:w b) in
  {
    Lift.tc_id = Printf.sprintf "random_fpu_%d" i;
    tc_spec = dummy_spec;
    tc_body =
      Lift.Fpu_test
        [ { Lift.f_op = op; f_lhs = a; f_rhs = b; f_expected = Bitvec.to_int r; f_flags = fl } ];
    tc_may_stall = false;
    tc_checks_flags = true;
  }

let random_alu_suite ?(seed = 0xA11) ~width ~cases () =
  let rng = Random.State.make [| seed |] in
  {
    Lift.suite_target = Lift.Alu_module { width };
    suite_cases = List.init cases (random_alu_case rng width);
  }

let random_fpu_suite ?(seed = 0xF16) ~fmt ~cases () =
  let rng = Random.State.make [| seed |] in
  {
    Lift.suite_target = Lift.Fpu_module { fmt };
    suite_cases = List.init cases (random_fpu_case rng fmt);
  }

let matched_suite ?(seed = 0x3a7c) (suite : Lift.suite) =
  let cases = List.length suite.Lift.suite_cases in
  match suite.Lift.suite_target with
  | Lift.Alu_module { width } -> random_alu_suite ~seed ~width ~cases ()
  | Lift.Fpu_module { fmt } -> random_fpu_suite ~seed ~fmt ~cases ()

(* A uniformly random unit-operation stream in the [Vega.recorded_unit_ops]
   assignment format — the random baseline (and mutation pool) of the
   adversarial stress search. *)
let random_unit_op rng (kind : Lift.module_kind) =
  match kind with
  | Lift.Alu_module { width } ->
    let op = List.nth Alu.all_ops (Random.State.int rng (List.length Alu.all_ops)) in
    [
      (Alu.op_port, Bitvec.create ~width:4 (Alu.op_code op));
      (Alu.a_port, Bitvec.create ~width (rand_bits rng width));
      (Alu.b_port, Bitvec.create ~width (rand_bits rng width));
    ]
  | Lift.Fpu_module { fmt } ->
    let w = Fpu_format.width fmt in
    let op =
      List.nth Fpu_format.all_ops (Random.State.int rng (List.length Fpu_format.all_ops))
    in
    [
      (Fpu.op_port, Bitvec.create ~width:3 (Fpu_format.op_code op));
      (Fpu.a_port, Bitvec.create ~width:w (rand_bits rng w));
      (Fpu.b_port, Bitvec.create ~width:w (rand_bits rng w));
      (Fpu.in_valid_port, Bitvec.create ~width:1 1);
    ]

let random_unit_ops ?(seed = 0xa77ac) ~len (kind : Lift.module_kind) =
  if len < 0 then invalid_arg "Testgen.random_unit_ops: len must be non-negative";
  let rng = Random.State.make [| seed |] in
  Array.init len (fun _ -> random_unit_op rng kind)

let random_baseline_detection ?(seed = 0x7ab1e) ?engine ~runs (suite : Lift.suite) faulty =
  if runs <= 0 then invalid_arg "Testgen.random_baseline_detection: runs must be positive";
  let detected = ref 0 in
  for run = 0 to runs - 1 do
    (* distinct deterministic seed per run, derived from the base seed *)
    let s = matched_suite ~seed:(seed + (run * 7919)) suite in
    if Lift.detects ~seed:(seed lxor run) ?engine s faulty then incr detected
  done;
  float_of_int !detected /. float_of_int runs

let scoap_ranked_pairs nl pairs =
  match pairs with
  | [] -> []
  | _ ->
    let t = Scoap.analyze nl in
    let launch_net = function
      | Sta.From_dff xid -> (Netlist.cell nl xid).Netlist.output
      | Sta.From_input (port, bit) -> Netlist.net_of_port_bit nl port bit
    in
    let difficulty (sp, Sta.At_dff yid, _, _) =
      let l = launch_net sp in
      let q = (Netlist.cell nl yid).Netlist.output in
      Scoap.cc0 t l + Scoap.cc1 t l + Scoap.co t q
    in
    let keyed = List.map (fun p -> (difficulty p, p)) pairs in
    List.stable_sort (fun (da, _) (db, _) -> compare db da) keyed |> List.map snd
