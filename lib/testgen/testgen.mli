(** The random test-suite baseline of Table 7.

    Produces suites "in the style and quantity of Vega's trace-generated
    test cases": each case verifies the functional correctness of a single
    random instruction from the module's operation set on random inputs,
    with expected values from the golden models.  Suites plug into the same
    {!Lift.suite} machinery (sequential execution, branch-to-fail
    detection) used by the Vega-generated suites, making the comparison
    head-to-head. *)

val random_alu_suite : ?seed:int -> width:int -> cases:int -> unit -> Lift.suite
(** [cases] single-operation test cases over uniformly random opcodes and
    operands. *)

val random_fpu_suite : ?seed:int -> fmt:Fpu_format.fmt -> cases:int -> unit -> Lift.suite
(** Random FPU cases; operand bit patterns are drawn uniformly, so specials
    (NaN/inf/zero) occur at their natural encoding density. *)

val matched_suite : ?seed:int -> Lift.suite -> Lift.suite
(** A random suite size-matched to an existing Vega suite (same module,
    same number of cases) — the construction used for Table 7. *)

val scoap_ranked_pairs :
  Netlist.t ->
  (Sta.startpoint * Sta.endpoint * Sta.check * float) list ->
  (Sta.startpoint * Sta.endpoint * Sta.check * float) list
(** Reorder violating register pairs hardest-to-test first, by SCOAP
    testability ({!Scoap.pair_difficulty}: controllability of the launching
    net both ways plus observability of the capturing register).  Formal
    test derivation then attacks the hard-to-observe paths first, which is
    where the formal engine's budget matters most — easy pairs would also
    fall to cheap random search.  The sort is stable, so equally-hard pairs
    keep their worst-slack-first order. *)

val random_unit_ops :
  ?seed:int -> len:int -> Lift.module_kind -> (string * Bitvec.t) list array
(** [len] uniformly random unit operations (opcode + operand port
    assignments) in the stream format recorded by [Vega.recorded_unit_ops]
    — the seed-deterministic random baseline the adversarial stress search
    starts from and mutates.  @raise Invalid_argument if [len < 0]. *)

val random_baseline_detection :
  ?seed:int -> ?engine:Lift.engine -> runs:int -> Lift.suite -> Netlist.t -> float
(** Table-7-style baseline on the word-parallel fast path: the fraction of
    [runs] size-matched random suites (seeds derived deterministically
    from [seed]) that detect the fault in [faulty], evaluated at netlist
    level via {!Lift.detects} — no machine in the loop, so wide sweeps are
    cheap.  [engine] selects the simulation backend (default {!Lift.Engine_sim64}).
    @raise Invalid_argument if [runs <= 0]. *)
