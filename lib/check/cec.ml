(* Register-correspondence CEC over a shared hash-consed CNF encoding.

   Both netlists are lowered into one AIG-style node table (constant
   folding + commutative normalization + structural hashing), so common
   subcircuits get the *same* literal.  Equivalence of a netlist with its
   optimized or fault-tied-inactive twin then discharges structurally:
   every comparison point folds to a constant-false difference and the SAT
   solver is never even called.  Real differences leave a miter clause the
   CDCL engine decides. *)

type cex = {
  cex_inputs : (string * Bitvec.t) list;
  cex_states : (string * bool) list;
  cex_site : string;
}

type verdict = Equivalent | Inequivalent of cex | Unknown

type node_key = And of int * int | Xor of int * int

exception Early of verdict

let port_widths l =
  List.map (fun (p : Netlist.port) -> (p.Netlist.port_name, Array.length p.Netlist.port_nets)) l

let check_interfaces ~free_inputs ~kind here_name there_name here there =
  List.iter
    (fun (name, w) ->
      match List.assoc_opt name there with
      | Some w' when w <> w' ->
        invalid_arg
          (Printf.sprintf "Cec.check: %s port %s has width %d in %s but %d in %s" kind name w
             here_name w' there_name)
      | Some _ -> ()
      | None ->
        if not free_inputs then
          invalid_arg
            (Printf.sprintf "Cec.check: %s port %s of %s has no counterpart in %s" kind name
               here_name there_name))
    here

let check ?(free_inputs = false) ?(tie_low = []) ?max_conflicts a b =
  let an = Netlist.name a and bn = Netlist.name b in
  let an, bn = if an = bn then (an ^ "(left)", bn ^ "(right)") else (an, bn) in
  let ia = port_widths (Netlist.inputs a) and ib = port_widths (Netlist.inputs b) in
  check_interfaces ~free_inputs ~kind:"input" an bn ia ib;
  check_interfaces ~free_inputs ~kind:"input" bn an ib ia;
  let oa = port_widths (Netlist.outputs a) and ob = port_widths (Netlist.outputs b) in
  check_interfaces ~free_inputs ~kind:"output" an bn oa ob;
  check_interfaces ~free_inputs ~kind:"output" bn an ob oa;
  let s = Sat.create () in
  let tt = Sat.new_var s in
  Sat.add_clause s [ tt ];
  let nodes : (node_key, int) Hashtbl.t = Hashtbl.create 4096 in
  let mk_and x y =
    if x = -tt || y = -tt then -tt
    else if x = tt then y
    else if y = tt then x
    else if x = y then x
    else if x = -y then -tt
    else begin
      let x, y = if x < y then (x, y) else (y, x) in
      match Hashtbl.find_opt nodes (And (x, y)) with
      | Some v -> v
      | None ->
        let v = Sat.new_var s in
        Sat.add_clause s [ -v; x ];
        Sat.add_clause s [ -v; y ];
        Sat.add_clause s [ v; -x; -y ];
        Hashtbl.replace nodes (And (x, y)) v;
        v
    end
  in
  let mk_or x y = -mk_and (-x) (-y) in
  let mk_xor x y =
    if x = tt then -y
    else if x = -tt then y
    else if y = tt then -x
    else if y = -tt then x
    else if x = y then -tt
    else if x = -y then tt
    else begin
      let sign = x < 0 <> (y < 0) in
      let x, y = (abs x, abs y) in
      let x, y = if x < y then (x, y) else (y, x) in
      let v =
        match Hashtbl.find_opt nodes (Xor (x, y)) with
        | Some v -> v
        | None ->
          let v = Sat.new_var s in
          Sat.add_clause s [ -v; x; y ];
          Sat.add_clause s [ -v; -x; -y ];
          Sat.add_clause s [ v; -x; y ];
          Sat.add_clause s [ v; x; -y ];
          Hashtbl.replace nodes (Xor (x, y)) v;
          v
      in
      if sign then -v else v
    end
  in
  let mk_mux a0 b0 sel = mk_or (mk_and sel b0) (mk_and (-sel) a0) in
  let tied = Hashtbl.create 8 in
  List.iter (fun name -> Hashtbl.replace tied name ()) tie_low;
  (* Shared input variables, keyed by (port, bit) across both netlists. *)
  let input_vars : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let input_var name bit =
    match Hashtbl.find_opt input_vars (name, bit) with
    | Some v -> v
    | None ->
      let v = Sat.new_var s in
      Hashtbl.replace input_vars (name, bit) v;
      v
  in
  (* Register correspondence: DFFs present (by instance name) in both
     netlists share one free Q variable — and must agree on reset value
     and clock domain, otherwise the induction hypothesis is unsound. *)
  let dff_table nl =
    let t = Hashtbl.create 32 in
    List.iter
      (fun id ->
        let c = Netlist.cell nl id in
        Hashtbl.replace t c.Netlist.name c)
      (Netlist.dffs nl);
    t
  in
  let dffs_a = dff_table a and dffs_b = dff_table b in
  let matched =
    Hashtbl.fold (fun name _ acc -> if Hashtbl.mem dffs_b name then name :: acc else acc) dffs_a []
    |> List.sort compare
  in
  let fail_cex site = raise (Early (Inequivalent { cex_inputs = []; cex_states = []; cex_site = site })) in
  let check_matched () =
    List.iter
      (fun name ->
        let ca = Hashtbl.find dffs_a name and cb = Hashtbl.find dffs_b name in
        if ca.Netlist.reset_value <> cb.Netlist.reset_value then
          fail_cex
            (Printf.sprintf "register %s (reset value %b in %s vs %b in %s)" name
               ca.Netlist.reset_value an cb.Netlist.reset_value bn);
        if ca.Netlist.clock_domain <> cb.Netlist.clock_domain then
          fail_cex
            (Printf.sprintf "register %s (clock domain %d in %s vs %d in %s)" name
               ca.Netlist.clock_domain an cb.Netlist.clock_domain bn))
      matched
  in
  let shared_q : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let q_var nl_dffs name =
    if not (Hashtbl.mem nl_dffs name) then assert false
    else
      match Hashtbl.find_opt shared_q name with
      | Some v -> v
      | None ->
        let v = Sat.new_var s in
        if List.mem name matched then Hashtbl.replace shared_q name v;
        v
  in
  let encode nl nl_dffs =
    let lits = Array.make (max (Netlist.num_nets nl) 1) 0 in
    List.iter
      (fun (p : Netlist.port) ->
        Array.iteri (fun bit n -> lits.(n) <- input_var p.Netlist.port_name bit) p.Netlist.port_nets)
      (Netlist.inputs nl);
    List.iter
      (fun id ->
        let c = Netlist.cell nl id in
        lits.(c.Netlist.output) <-
          (if Hashtbl.mem tied c.Netlist.name then -tt else q_var nl_dffs c.Netlist.name))
      (Netlist.dffs nl);
    Array.iter
      (fun id ->
        let c = Netlist.cell nl id in
        let l =
          if Hashtbl.mem tied c.Netlist.name then -tt
          else begin
            let i k = lits.(c.Netlist.inputs.(k)) in
            match c.Netlist.kind with
            | Cell.Kind.Tie0 -> -tt
            | Cell.Kind.Tie1 -> tt
            | Cell.Kind.Buf -> i 0
            | Cell.Kind.Not -> -(i 0)
            | Cell.Kind.And2 -> mk_and (i 0) (i 1)
            | Cell.Kind.Nand2 -> -mk_and (i 0) (i 1)
            | Cell.Kind.Or2 -> mk_or (i 0) (i 1)
            | Cell.Kind.Nor2 -> -mk_or (i 0) (i 1)
            | Cell.Kind.Xor2 -> mk_xor (i 0) (i 1)
            | Cell.Kind.Xnor2 -> -mk_xor (i 0) (i 1)
            | Cell.Kind.Mux2 -> mk_mux (i 0) (i 1) (i 2)
            | Cell.Kind.Dff -> assert false
          end
        in
        lits.(c.Netlist.output) <- l)
      (Netlist.topo_order nl);
    lits
  in
  try
    check_matched ();
    let la = encode a dffs_a and lb = encode b dffs_b in
    (* Comparison points: common output-port bits, then matched registers'
       next-state (D) functions. *)
    let points = ref [] in
    List.iter
      (fun (p : Netlist.port) ->
        match
          List.find_opt (fun (q : Netlist.port) -> q.Netlist.port_name = p.Netlist.port_name)
            (Netlist.outputs b)
        with
        | None -> ()
        | Some q ->
          Array.iteri
            (fun bit n ->
              points :=
                ( Printf.sprintf "output %s[%d]" p.Netlist.port_name bit,
                  la.(n),
                  lb.(q.Netlist.port_nets.(bit)) )
                :: !points)
            p.Netlist.port_nets)
      (Netlist.outputs a);
    List.iter
      (fun name ->
        if not (Hashtbl.mem tied name) then begin
          let ca = Hashtbl.find dffs_a name and cb = Hashtbl.find dffs_b name in
          points :=
            ( Printf.sprintf "register %s.D" name,
              la.(ca.Netlist.inputs.(0)),
              lb.(cb.Netlist.inputs.(0)) )
            :: !points
        end)
      matched;
    let points = List.rev !points in
    let diffs =
      List.filter_map
        (fun (site, x, y) ->
          let d = mk_xor x y in
          if d = -tt then None else Some (site, d))
        points
    in
    let build_cex value site =
      let chunk name w bit_at =
        if w <= Bitvec.max_width then [ (name, Bitvec.of_bits (List.init w bit_at)) ]
        else begin
          let acc = ref [] in
          let lo = ref 0 in
          while !lo < w do
            let hi = min (!lo + Bitvec.max_width) w - 1 in
            acc :=
              ( Printf.sprintf "%s[%d:%d]" name hi !lo,
                Bitvec.of_bits (List.init (hi - !lo + 1) (fun i -> bit_at (!lo + i))) )
              :: !acc;
            lo := hi + 1
          done;
          List.rev !acc
        end
      in
      let seen = Hashtbl.create 16 in
      let cex_inputs =
        List.concat_map
          (fun (p : Netlist.port) ->
            let name = p.Netlist.port_name in
            if Hashtbl.mem seen name then []
            else begin
              Hashtbl.replace seen name ();
              chunk name (Array.length p.Netlist.port_nets) (fun bit ->
                  match Hashtbl.find_opt input_vars (name, bit) with
                  | Some v -> value v
                  | None -> false)
            end)
          (Netlist.inputs a @ Netlist.inputs b)
      in
      let cex_states =
        List.map
          (fun name ->
            ( name,
              match Hashtbl.find_opt shared_q name with Some v -> value v | None -> false ))
          matched
      in
      { cex_inputs; cex_states; cex_site = site }
    in
    if diffs = [] then Equivalent
    else begin
      match List.find_opt (fun (_, d) -> d = tt) diffs with
      | Some (site, _) ->
        (* Constant-true difference: *every* assignment distinguishes the
           netlists, in particular all-zeros — no SAT call needed. *)
        Inequivalent (build_cex (fun _ -> false) site)
      | None -> (
        Sat.add_clause s (List.map snd diffs);
        match Sat.solve ?max_conflicts s with
        | Sat.Unsat -> Equivalent
        | Sat.Unknown -> Unknown
        | Sat.Sat ->
          let model = Sat.model s in
          let value v = model.(v) in
          let lit_true l = if l > 0 then value l else not (value (-l)) in
          let site =
            match List.find_opt (fun (_, d) -> lit_true d) diffs with
            | Some (site, _) -> site
            | None -> fst (List.hd diffs)
          in
          Inequivalent (build_cex value site))
    end
  with Early v -> v

let describe = function
  | Equivalent -> "equivalent (proven by register-correspondence CEC)"
  | Unknown -> "unknown (SAT conflict budget exhausted)"
  | Inequivalent cex ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "INEQUIVALENT at %s" cex.cex_site);
    if cex.cex_inputs <> [] then
      Buffer.add_string buf
        (Printf.sprintf "\n  inputs: %s"
           (String.concat ", "
              (List.map (fun (n, v) -> Printf.sprintf "%s = %s" n (Bitvec.to_string v)) cex.cex_inputs)));
    if cex.cex_states <> [] then
      Buffer.add_string buf
        (Printf.sprintf "\n  states: %s"
           (String.concat ", "
              (List.map (fun (n, v) -> Printf.sprintf "%s = %d" n (Bool.to_int v)) cex.cex_states)));
    Buffer.contents buf
