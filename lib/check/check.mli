(** Structural netlist lint: the entry pass of the static-verification
    suite.

    The linter consumes {!Netlist.Raw.t} — the unvalidated plain-data view
    of a design — so it can diagnose exactly the defect classes that
    {!Netlist.Builder.finish} would reject with a single exception
    (multi-driven nets, floating inputs, combinational cycles) {e as well
    as} the legal-but-suspicious shapes a frozen netlist can still carry
    (dead gates, dangling nets).  Every diagnostic carries a stable code
    ([NL001]...), a source location inside the IR (cell, net or port name)
    and a one-line message; reports render deterministically so they can be
    diffed against goldens in CI.

    Frozen netlists are linted via {!lint_netlist}; builders
    mid-construction via [lint (Netlist.Builder.raw b)]; defective designs
    for self-tests can be assembled as raw literals. *)

type severity = Error | Warning

type code =
  | Multi_driver  (** [NL001] a net with more than one driver *)
  | Floating_input  (** [NL002] a cell input reads an undriven net *)
  | Undriven_output  (** [NL003] an output-port bit reads an undriven net *)
  | Comb_cycle  (** [NL004] a combinational cycle (not cut by any DFF) *)
  | Dead_gate  (** [NL005] a cell that cannot reach any output port *)
  | Arity_mismatch  (** [NL006] cell input count does not match its kind *)
  | Bad_net  (** [NL007] a net index outside [[0, num_nets)] *)
  | Dangling_net  (** [NL008] a driven net with no reader and no port *)
  | Duplicate_name  (** [NL009] two cells or two ports share a name *)
  | Empty_port  (** [NL010] a zero-width port *)
  | Const_dff
      (** [NL011] a register whose D input is statically constant — the
          flop can never change value after the first cycle, so it burns a
          sequential cell (and a maximally BTI-stressed one: constant
          inputs are exactly the [sp] extremes {!Spbound} flags) for what a
          tie would express.  Derivable from {!Spbound} singleton
          intervals; the linter reproves it with a raw-safe constant
          propagation so broken designs still lint. *)
  | Unread_input
      (** [NL012] an input-port bit whose net reaches no cell and no
          output port — dead boundary logic upstream, or a port-width
          mismatch introduced by a transform. *)

val code_id : code -> string
(** The stable diagnostic code, ["NL001"]... *)

val severity_of : code -> severity
(** [NL001]-[NL004], [NL006], [NL007], [NL009] are errors — simulation,
    STA and CNF encoding are all undefined on such designs; the rest are
    warnings (legal netlists that waste area or hint at a bad transform). *)

type diagnostic = {
  code : code;
  loc : string;  (** the cell / net / port the diagnostic anchors to *)
  message : string;
}

val lint : Netlist.Raw.t -> diagnostic list
(** All diagnostics for a raw design, sorted by (code, location) so equal
    designs always produce byte-equal reports. *)

val lint_netlist : Netlist.t -> diagnostic list
(** [lint (Netlist.raw nl)].  A frozen netlist cannot carry the
    error-severity defects (its builder already rejected them); this
    surfaces the warning classes. *)

val errors : diagnostic list -> diagnostic list
(** The error-severity subset. *)

val render : design:string -> diagnostic list -> string
(** Deterministic multi-line report: header, one line per diagnostic,
    and an [errors/warnings] summary — the golden-diffable artifact. *)

(** {1 Seeded mutations}

    A mutation makes a netlist provably inequivalent to its source by
    complementing the logic feeding a comparison point that {!Cec.check}
    inspects (an output-port bit or a register's [D] pin) — either by
    flipping the driving gate's kind to its complement ([And2 ~ Nand2],
    [Xor2 ~ Xnor2], ...) or, when the driver has no complement kind, by
    splicing an inverter in front of the point.  Used to validate that the
    equivalence checker actually catches broken transforms. *)

val selftest_designs : (code * Netlist.Raw.t) list
(** One deliberately defective raw design per diagnostic code, in code
    order — the linter's self-test corpus.  [lint] on each design must
    report its paired code (and possibly others: a dead gate's output is
    usually also dangling).  Consumed by [vega lint --selftest] and the
    regression tests. *)

val mutate : ?seed:int -> Netlist.t -> Netlist.t * string
(** A mutated copy and a human-readable description of the mutation.
    @raise Invalid_argument if the netlist has no output port bit and no
    DFF (nothing CEC-observable to mutate). *)
