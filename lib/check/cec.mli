(** SAT-based combinational equivalence checking (CEC) with register
    correspondence.

    Complements {!Formal.check_equivalence} (cycle-by-cycle bounded model
    checking): instead of unrolling the transition relation, the checker
    matches the two netlists' registers {e by instance name}, treats each
    matched register's [Q] as a shared free variable, and builds a miter
    proving that (a) every matched output-port bit and (b) every matched
    register's next-state function compute the same combinational function
    of the shared inputs and register states.  If all comparison points are
    equal for {e every} assignment — including unreachable register states —
    the netlists are sequentially equivalent by induction, so [Equivalent]
    is a sound proof (matched registers must also agree on reset values,
    which is checked).  The price is possible incompleteness: a
    counterexample may start from an unreachable state.

    Both netlists are encoded into one hash-consed AIG-style CNF (constant
    folding, commutative normalization, structural sharing across the two
    designs), so structurally similar designs — an optimizer's output, a
    fault-instrumented replica with its fault lines tied inactive — reduce
    to identical literals and prove [Equivalent] with {e zero} SAT search,
    while a mutated gate feeding a comparison point collapses to a
    constant-true difference that is likewise caught structurally. *)

type cex = {
  cex_inputs : (string * Bitvec.t) list;
      (** one entry per input-port chunk of at most [Bitvec.max_width] bits
          (wide ports are split as ["name[hi:lo]"]), LSB first *)
  cex_states : (string * bool) list;
      (** matched registers' [Q] values in the distinguishing assignment *)
  cex_site : string;  (** the comparison point that differs *)
}

type verdict = Equivalent | Inequivalent of cex | Unknown

val check :
  ?free_inputs:bool -> ?tie_low:string list -> ?max_conflicts:int ->
  Netlist.t -> Netlist.t -> verdict
(** [check a b] proves or refutes equivalence of all shared comparison
    points.

    [free_inputs] (default [false]): when set, input ports present in only
    one netlist are allowed and become free variables, and output ports
    present in only one netlist are ignored — the mode used to compare a
    golden netlist against a {!Fault}-instrumented copy, whose [c_fault]
    port and shadow outputs have no golden counterpart.  When unset, the
    two interfaces must coincide.

    [tie_low] names cells whose outputs are encoded as constant 0 — e.g.
    {!Fault.select_cells}, forcing the instrumented netlist's corruption
    muxes inactive so the un-faulted behaviour is compared.

    [max_conflicts] bounds SAT effort; exhausting it yields [Unknown].

    @raise Invalid_argument when a port exists in both netlists with
    different widths, or (without [free_inputs]) when the interfaces
    differ. *)

val describe : verdict -> string
(** One-paragraph human-readable rendering, stable across runs for
    [Equivalent]/[Unknown]. *)
