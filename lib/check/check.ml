(* Structural netlist lint over the raw (unvalidated) design view.

   The pass mirrors — and extends — the invariants [Netlist.Builder.finish]
   enforces, but instead of raising on the first violation it collects every
   defect as a coded diagnostic, so a broken transform can be understood in
   one report and so CI can diff reports against goldens. *)

module R = Netlist.Raw
module K = Cell.Kind

type severity = Error | Warning

type code =
  | Multi_driver
  | Floating_input
  | Undriven_output
  | Comb_cycle
  | Dead_gate
  | Arity_mismatch
  | Bad_net
  | Dangling_net
  | Duplicate_name
  | Empty_port
  | Const_dff
  | Unread_input

let code_id = function
  | Multi_driver -> "NL001"
  | Floating_input -> "NL002"
  | Undriven_output -> "NL003"
  | Comb_cycle -> "NL004"
  | Dead_gate -> "NL005"
  | Arity_mismatch -> "NL006"
  | Bad_net -> "NL007"
  | Dangling_net -> "NL008"
  | Duplicate_name -> "NL009"
  | Empty_port -> "NL010"
  | Const_dff -> "NL011"
  | Unread_input -> "NL012"

let severity_of = function
  | Multi_driver | Floating_input | Undriven_output | Comb_cycle | Arity_mismatch | Bad_net
  | Duplicate_name ->
    Error
  | Dead_gate | Dangling_net | Empty_port | Const_dff | Unread_input -> Warning

type diagnostic = { code : code; loc : string; message : string }

let errors diags = List.filter (fun d -> severity_of d.code = Error) diags

(* Every check below must survive arbitrary garbage: out-of-range nets are
   reported once (NL007) and skipped everywhere else. *)

let lint (r : R.t) =
  let diags = ref [] in
  let emit code loc message = diags := { code; loc; message } :: !diags in
  let valid n = n >= 0 && n < r.r_num_nets in
  let ports = List.map (fun p -> (p, "input")) r.r_inputs @ List.map (fun p -> (p, "output")) r.r_outputs in
  (* NL009: duplicate cell / port names (cells and ports are separate
     namespaces, as are input and output ports). *)
  let dup_check what names =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun name ->
        match Hashtbl.find_opt seen name with
        | Some already_reported ->
          if not already_reported then begin
            emit Duplicate_name name (Printf.sprintf "%s name %s is used more than once" what name);
            Hashtbl.replace seen name true
          end
        | None -> Hashtbl.replace seen name false)
      names
  in
  dup_check "cell" (Array.to_list r.r_cells |> List.map (fun c -> c.R.rc_name));
  dup_check "input port" (List.map (fun p -> p.R.rp_name) r.r_inputs);
  dup_check "output port" (List.map (fun p -> p.R.rp_name) r.r_outputs);
  (* NL010: zero-width ports. *)
  List.iter
    (fun ((p : R.rport), dir) ->
      if Array.length p.R.rp_nets = 0 then
        emit Empty_port p.R.rp_name (Printf.sprintf "%s port %s has width 0" dir p.R.rp_name))
    ports;
  (* NL006: arity mismatches.  NL007: out-of-range net references. *)
  let bad_net_reported = Hashtbl.create 8 in
  let check_net loc n =
    if not (valid n) && not (Hashtbl.mem bad_net_reported (loc, n)) then begin
      Hashtbl.replace bad_net_reported (loc, n) ();
      emit Bad_net loc
        (Printf.sprintf "%s references net %d outside [0, %d)" loc n r.r_num_nets)
    end
  in
  Array.iter
    (fun (c : R.rcell) ->
      let arity = K.arity c.R.rc_kind in
      if Array.length c.R.rc_inputs <> arity then
        emit Arity_mismatch c.R.rc_name
          (Printf.sprintf "cell %s (%s) expects %d inputs, has %d" c.R.rc_name
             (K.to_string c.R.rc_kind) arity (Array.length c.R.rc_inputs));
      Array.iter (check_net c.R.rc_name) c.R.rc_inputs;
      check_net c.R.rc_name c.R.rc_output)
    r.r_cells;
  List.iter
    (fun ((p : R.rport), _) -> Array.iter (check_net p.R.rp_name) p.R.rp_nets)
    ports;
  (* Driver map (lists: a net may legally have at most one). *)
  let drivers = Array.make (max r.r_num_nets 1) [] in
  List.iter
    (fun (p : R.rport) ->
      Array.iteri
        (fun bit n ->
          if valid n then drivers.(n) <- Printf.sprintf "input %s[%d]" p.R.rp_name bit :: drivers.(n))
        p.R.rp_nets)
    r.r_inputs;
  Array.iter
    (fun (c : R.rcell) ->
      if valid c.R.rc_output then
        drivers.(c.R.rc_output) <- Printf.sprintf "cell %s" c.R.rc_name :: drivers.(c.R.rc_output))
    r.r_cells;
  (* NL001: multi-driven nets. *)
  for n = 0 to r.r_num_nets - 1 do
    match drivers.(n) with
    | [] | [ _ ] -> ()
    | many ->
      emit Multi_driver
        (Printf.sprintf "net %d" n)
        (Printf.sprintf "net %d is driven by %s" n
           (String.concat " and " (List.sort compare many)))
  done;
  let driven n = valid n && drivers.(n) <> [] in
  (* NL002: cell inputs reading undriven nets. *)
  Array.iter
    (fun (c : R.rcell) ->
      let floating =
        Array.to_list c.R.rc_inputs
        |> List.mapi (fun pin n -> (pin, n))
        |> List.filter (fun (_, n) -> valid n && not (driven n))
      in
      match floating with
      | [] -> ()
      | _ ->
        emit Floating_input c.R.rc_name
          (Printf.sprintf "cell %s reads undriven net%s %s" c.R.rc_name
             (if List.length floating > 1 then "s" else "")
             (String.concat ", "
                (List.map (fun (pin, n) -> Printf.sprintf "%d (pin %d)" n pin) floating))))
    r.r_cells;
  (* NL003: output-port bits reading undriven nets. *)
  List.iter
    (fun (p : R.rport) ->
      Array.iteri
        (fun bit n ->
          if valid n && not (driven n) then
            emit Undriven_output
              (Printf.sprintf "%s[%d]" p.R.rp_name bit)
              (Printf.sprintf "output %s[%d] reads undriven net %d" p.R.rp_name bit n))
        p.R.rp_nets)
    r.r_outputs;
  (* Cell-level graph helpers shared by the cycle and liveness checks. *)
  let ncells = Array.length r.r_cells in
  let cell_drivers_of_net = Array.make (max r.r_num_nets 1) [] in
  Array.iteri
    (fun id (c : R.rcell) ->
      if valid c.R.rc_output then
        cell_drivers_of_net.(c.R.rc_output) <- id :: cell_drivers_of_net.(c.R.rc_output))
    r.r_cells;
  (* NL004: combinational cycles, reported per strongly-connected component
     (Tarjan), so one diagnostic names the whole loop rather than every cell
     stuck behind it (which is what leftover-after-Kahn would report). *)
  let comb id = not (K.is_sequential r.r_cells.(id).R.rc_kind) in
  (* readers per net *)
  let cell_readers_of_net = Array.make (max r.r_num_nets 1) [] in
  Array.iteri
    (fun id (c : R.rcell) ->
      Array.iter
        (fun n -> if valid n then cell_readers_of_net.(n) <- id :: cell_readers_of_net.(n))
        c.R.rc_inputs)
    r.r_cells;
  let comb_succs id =
    let c = r.r_cells.(id) in
    if (not (comb id)) || not (valid c.R.rc_output) then []
    else List.filter comb cell_readers_of_net.(c.R.rc_output)
  in
  (* Tarjan SCC over the combinational subgraph. *)
  let index = Array.make ncells (-1) in
  let lowlink = Array.make ncells 0 in
  let on_stack = Array.make ncells false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (comb_succs v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  for id = 0 to ncells - 1 do
    if comb id && index.(id) < 0 then strongconnect id
  done;
  List.iter
    (fun scc ->
      let cyclic =
        match scc with
        | [ v ] -> List.mem v (comb_succs v) (* self-loop *)
        | _ :: _ :: _ -> true
        | _ -> false
      in
      if cyclic then begin
        let names =
          List.map (fun id -> r.r_cells.(id).R.rc_name) scc |> List.sort compare
        in
        let shown =
          if List.length names > 8 then
            String.concat " -> " (List.filteri (fun i _ -> i < 8) names) ^ " -> ..."
          else String.concat " -> " names
        in
        emit Comb_cycle (List.hd names)
          (Printf.sprintf "combinational cycle through %d cell%s: %s" (List.length names)
             (if List.length names > 1 then "s" else "") shown)
      end)
    !sccs;
  (* NL005: dead gates — cells from which no output port is reachable
     (crossing DFFs).  Backward BFS from the output-port nets. *)
  let live_cell = Array.make ncells false in
  let live_net = Array.make (max r.r_num_nets 1) false in
  let frontier = Queue.create () in
  List.iter
    (fun (p : R.rport) ->
      Array.iter
        (fun n ->
          if valid n && not live_net.(n) then begin
            live_net.(n) <- true;
            Queue.add n frontier
          end)
        p.R.rp_nets)
    r.r_outputs;
  while not (Queue.is_empty frontier) do
    let n = Queue.pop frontier in
    List.iter
      (fun id ->
        if not live_cell.(id) then begin
          live_cell.(id) <- true;
          Array.iter
            (fun m ->
              if valid m && not live_net.(m) then begin
                live_net.(m) <- true;
                Queue.add m frontier
              end)
            r.r_cells.(id).R.rc_inputs
        end)
      cell_drivers_of_net.(n)
  done;
  Array.iteri
    (fun id (c : R.rcell) ->
      if not live_cell.(id) then
        emit Dead_gate c.R.rc_name
          (Printf.sprintf "%s %s (%s) cannot reach any output port"
             (if K.is_sequential c.R.rc_kind then "register" else "gate")
             c.R.rc_name (K.to_string c.R.rc_kind)))
    r.r_cells;
  (* NL008: cell-driven nets nobody reads (and no output port exports). *)
  let on_output = Array.make (max r.r_num_nets 1) false in
  List.iter
    (fun (p : R.rport) ->
      Array.iter (fun n -> if valid n then on_output.(n) <- true) p.R.rp_nets)
    r.r_outputs;
  Array.iter
    (fun (c : R.rcell) ->
      let n = c.R.rc_output in
      if valid n && cell_readers_of_net.(n) = [] && not on_output.(n) then
        emit Dangling_net
          (Printf.sprintf "net %d" n)
          (Printf.sprintf "net %d (output of %s) has no reader and is not exported" n c.R.rc_name))
    r.r_cells;
  (* NL012: input-port bits that fan out to nothing. *)
  List.iter
    (fun (p : R.rport) ->
      Array.iteri
        (fun bit n ->
          if valid n && cell_readers_of_net.(n) = [] && not on_output.(n) then
            emit Unread_input
              (Printf.sprintf "%s[%d]" p.R.rp_name bit)
              (Printf.sprintf "input bit %s[%d] (net %d) fans out to nothing" p.R.rp_name bit n))
        p.R.rp_nets)
    r.r_inputs;
  (* NL011: registers whose D input is statically constant.  A raw-safe
     monotone constant propagation: only nets with exactly one cell driver
     and no input-port driver participate; Tie cells seed the lattice,
     combinational cells evaluate once every input is known, and a
     register forwards its D constant only when it matches the reset value
     (otherwise Q differs on the first cycle). *)
  let input_driven = Array.make (max r.r_num_nets 1) false in
  List.iter
    (fun (p : R.rport) ->
      Array.iter (fun n -> if valid n then input_driven.(n) <- true) p.R.rp_nets)
    r.r_inputs;
  let konst : bool option array = Array.make (max r.r_num_nets 1) None in
  let arity_ok (c : R.rcell) = Array.length c.R.rc_inputs = K.arity c.R.rc_kind in
  let sole_driver id (c : R.rcell) =
    valid c.R.rc_output
    && (not input_driven.(c.R.rc_output))
    && cell_drivers_of_net.(c.R.rc_output) = [ id ]
  in
  let k_changed = ref true in
  while !k_changed do
    k_changed := false;
    Array.iteri
      (fun id (c : R.rcell) ->
        if sole_driver id c && arity_ok c && konst.(c.R.rc_output) = None then begin
          let value =
            match c.R.rc_kind with
            | K.Tie0 -> Some false
            | K.Tie1 -> Some true
            | K.Dff ->
              let d = c.R.rc_inputs.(0) in
              if valid d && konst.(d) = Some c.R.rc_reset_value then Some c.R.rc_reset_value
              else None
            | kind ->
              let ins = c.R.rc_inputs in
              if Array.for_all (fun n -> valid n && konst.(n) <> None) ins then
                Some (K.eval kind (Array.map (fun n -> konst.(n) = Some true) ins))
              else None
          in
          match value with
          | Some v ->
            konst.(c.R.rc_output) <- Some v;
            k_changed := true
          | None -> ()
        end)
      r.r_cells
  done;
  Array.iter
    (fun (c : R.rcell) ->
      if c.R.rc_kind = K.Dff && arity_ok c then begin
        let d = c.R.rc_inputs.(0) in
        match if valid d then konst.(d) else None with
        | Some v ->
          emit Const_dff c.R.rc_name
            (Printf.sprintf "register %s D input is the constant %d" c.R.rc_name
               (if v then 1 else 0))
        | None -> ()
      end)
    r.r_cells;
  List.sort
    (fun a b ->
      match compare (code_id a.code) (code_id b.code) with
      | 0 -> ( match compare a.loc b.loc with 0 -> compare a.message b.message | c -> c)
      | c -> c)
    !diags

let lint_netlist nl = lint (Netlist.raw nl)

let render ~design diags =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "lint report for %s\n" design);
  if diags = [] then Buffer.add_string buf "  clean\n"
  else
    List.iter
      (fun d ->
        Buffer.add_string buf
          (Printf.sprintf "  [%s] %-7s %s\n" (code_id d.code)
             (match severity_of d.code with Error -> "error" | Warning -> "warning")
             d.message))
      diags;
  let n_err = List.length (errors diags) in
  let n_warn = List.length diags - n_err in
  Buffer.add_string buf (Printf.sprintf "  %d error(s), %d warning(s)\n" n_err n_warn);
  Buffer.contents buf

(* ---- self-test corpus ------------------------------------------------- *)

let selftest_designs =
  let rc ?(kind = K.Buf) name inputs output =
    {
      R.rc_name = name;
      rc_kind = kind;
      rc_inputs = Array.of_list inputs;
      rc_output = output;
      rc_clock_domain = -1;
      rc_reset_value = false;
    }
  in
  let rp name nets = { R.rp_name = name; rp_nets = Array.of_list nets } in
  let design name ~nets ~cells ~ins ~outs =
    { R.r_name = name; r_num_nets = nets; r_cells = Array.of_list cells; r_inputs = ins; r_outputs = outs }
  in
  [
    ( Multi_driver,
      design "multi_driver" ~nets:3
        ~cells:[ rc "g1" [ 0 ] 2; rc "g2" [ 1 ] 2 ]
        ~ins:[ rp "a" [ 0 ]; rp "b" [ 1 ] ]
        ~outs:[ rp "y" [ 2 ] ] );
    ( Floating_input,
      design "floating_input" ~nets:3
        ~cells:[ rc ~kind:K.And2 "g" [ 0; 1 ] 2 ]
        ~ins:[ rp "a" [ 0 ] ] ~outs:[ rp "y" [ 2 ] ] );
    ( Undriven_output,
      design "undriven_output" ~nets:3
        ~cells:[ rc "g" [ 0 ] 1 ]
        ~ins:[ rp "a" [ 0 ] ]
        ~outs:[ rp "y" [ 1 ]; rp "z" [ 2 ] ] );
    ( Comb_cycle,
      design "comb_cycle" ~nets:3
        ~cells:[ rc ~kind:K.And2 "g1" [ 0; 2 ] 1; rc "g2" [ 1 ] 2 ]
        ~ins:[ rp "a" [ 0 ] ] ~outs:[ rp "y" [ 1 ] ] );
    ( Dead_gate,
      design "dead_gate" ~nets:3
        ~cells:[ rc "g1" [ 0 ] 1; rc ~kind:K.Not "g2" [ 0 ] 2 ]
        ~ins:[ rp "a" [ 0 ] ] ~outs:[ rp "y" [ 1 ] ] );
    ( Arity_mismatch,
      design "arity_mismatch" ~nets:2
        ~cells:[ rc ~kind:K.And2 "g" [ 0 ] 1 ]
        ~ins:[ rp "a" [ 0 ] ] ~outs:[ rp "y" [ 1 ] ] );
    ( Bad_net,
      design "bad_net" ~nets:2
        ~cells:[ rc "g" [ 5 ] 1 ]
        ~ins:[ rp "a" [ 0 ] ] ~outs:[ rp "y" [ 1 ] ] );
    ( Dangling_net,
      design "dangling_net" ~nets:3
        ~cells:[ rc "g1" [ 0 ] 1; rc ~kind:K.Not "g2" [ 0 ] 2 ]
        ~ins:[ rp "a" [ 0 ] ] ~outs:[ rp "y" [ 1 ] ] );
    ( Duplicate_name,
      design "duplicate_name" ~nets:3
        ~cells:[ rc "g" [ 0 ] 1; rc ~kind:K.Not "g" [ 0 ] 2 ]
        ~ins:[ rp "a" [ 0 ] ]
        ~outs:[ rp "y" [ 1 ]; rp "z" [ 2 ] ] );
    ( Empty_port,
      design "empty_port" ~nets:1 ~cells:[]
        ~ins:[ rp "a" [ 0 ]; rp "b" [] ]
        ~outs:[ rp "y" [ 0 ] ] );
    ( Const_dff,
      design "constant_dff" ~nets:2
        ~cells:[ rc ~kind:K.Tie1 "t" [] 0; rc ~kind:K.Dff "r" [ 0 ] 1 ]
        ~ins:[] ~outs:[ rp "y" [ 1 ] ] );
    ( Unread_input,
      design "unread_input" ~nets:3
        ~cells:[ rc "g" [ 0 ] 2 ]
        ~ins:[ rp "a" [ 0 ]; rp "b" [ 1 ] ]
        ~outs:[ rp "y" [ 2 ] ] );
  ]

(* ---- seeded mutations ------------------------------------------------- *)

let complement_kind = function
  | K.And2 -> Some K.Nand2
  | K.Nand2 -> Some K.And2
  | K.Or2 -> Some K.Nor2
  | K.Nor2 -> Some K.Or2
  | K.Xor2 -> Some K.Xnor2
  | K.Xnor2 -> Some K.Xor2
  | K.Buf -> Some K.Not
  | K.Not -> Some K.Buf
  | K.Tie0 -> Some K.Tie1
  | K.Tie1 -> Some K.Tie0
  | K.Mux2 | K.Dff -> None

(* A comparison point the equivalence checker inspects: complementing the
   logic feeding one makes the mutant inequivalent for *every* input
   assignment, so CEC is guaranteed to catch it. *)
type site =
  | Output_bit of string * int * Netlist.net
  | Dff_d of int (* cell id *)

let mutate ?(seed = 0) nl =
  let sites =
    List.concat_map
      (fun (p : Netlist.port) ->
        Array.to_list p.Netlist.port_nets
        |> List.mapi (fun bit n -> Output_bit (p.Netlist.port_name, bit, n)))
      (Netlist.outputs nl)
    @ List.map (fun id -> Dff_d id) (Netlist.dffs nl)
  in
  if sites = [] then invalid_arg "Check.mutate: netlist has no output ports and no registers";
  let rng = Random.State.make [| seed; 0x3417 |] in
  let site = List.nth sites (Random.State.int rng (List.length sites)) in
  let b = Netlist.Builder.of_netlist nl in
  let point_net, describe_point, rewire_point =
    match site with
    | Output_bit (port, bit, n) ->
      ( n,
        Printf.sprintf "output %s[%d]" port bit,
        fun inv -> Netlist.Builder.rewire_output b ~port ~bit inv )
    | Dff_d id ->
      let c = Netlist.cell nl id in
      ( c.Netlist.inputs.(0),
        Printf.sprintf "register %s.D" c.Netlist.name,
        fun inv -> Netlist.Builder.rewire_input b ~cell_id:id ~pin:0 inv )
  in
  let desc =
    match Netlist.driver nl point_net with
    | Netlist.Driven_by_cell id
      when complement_kind (Netlist.cell nl id).Netlist.kind <> None ->
      let c = Netlist.cell nl id in
      let flipped = Option.get (complement_kind c.Netlist.kind) in
      Netlist.Builder.set_kind b ~cell_id:id flipped;
      Printf.sprintf "flipped %s from %s to %s (feeds %s)" c.Netlist.name
        (K.to_string c.Netlist.kind) (K.to_string flipped) describe_point
    | _ ->
      let inv = Netlist.Builder.add_cell ~name:"_mutant_not" b K.Not [| point_net |] in
      rewire_point inv;
      Printf.sprintf "inserted an inverter in front of %s" describe_point
  in
  (Netlist.Builder.finish b, desc)
