(** SCOAP testability analysis (Goldstein's controllability / observability
    scores) over a netlist.

    For every net the analysis computes the classic integer costs
    [CC0]/[CC1] — how hard it is to drive the net to 0/1 from the primary
    inputs — and [CO] — how hard it is to propagate the net's value to a
    primary output.  Standard gate formulas are used (e.g. for [And2],
    [CC1 = CC1(a) + CC1(b) + 1] and [CC0 = min(CC0(a), CC0(b)) + 1]);
    registers add one unit of sequential depth in both directions.  Scores
    are computed as a monotone fixpoint, so register feedback loops
    converge, and saturate at {!unobservable} (constant nets have an
    unobservable side, dead logic has unobservable [CO]).

    The scores rank aging-fault sites by how hard a test is to construct:
    exciting a slow path launched by register [X] and captured by register
    [Y] requires controlling [X] to both values (a transition) and
    observing [Y] — {!pair_difficulty}.  {!Testgen.scoap_ranked_pairs}
    uses this to order Error Lifting so the formal engine attacks the
    hardest-to-observe violating pairs first. *)

type t

val unobservable : int
(** Saturation ceiling for all scores. *)

val analyze : Netlist.t -> t

val cc0 : t -> Netlist.net -> int
val cc1 : t -> Netlist.net -> int
val co : t -> Netlist.net -> int

val net_difficulty : t -> Netlist.net -> int
(** [CC0 + CC1 + CO] (saturating): the cost of exciting a transition on the
    net and observing it — the per-site ranking key. *)

val pair_difficulty : Netlist.t -> t -> launch:string -> capture:string -> int
(** Difficulty of testing a register-to-register path:
    [CC0(Q_launch) + CC1(Q_launch) + CO(Q_capture)] (saturating).
    @raise Not_found if either instance name is not a cell of the
    netlist. *)

val hardest : ?limit:int -> Netlist.t -> t -> (string * int) list
(** Cells ranked by {!net_difficulty} of their output net, hardest first
    (ties broken by name), at most [limit] (default 10). *)

val render : ?limit:int -> Netlist.t -> t -> string
(** Deterministic summary: score spread plus the [limit] hardest cells with
    their CC0/CC1/CO breakdown. *)
