(** Static signal-probability bounds: a sound abstract interpretation of
    the netlist that brackets every net's signal probability in an
    interval [[lo, hi]] without running a single simulation cycle.

    The domain is intervals over [[0, 1]].  Primary-input bits start from
    per-port assumptions (default: the full [[0, 1]], i.e. "any
    workload"); gate outputs are computed with Frechet bounds, which are
    sharp under {i arbitrary} correlation between the inputs, so the
    result is sound no matter how reconvergent fanout entangles the
    cone.  When a gate's inputs provably depend on disjoint sets of
    primary-input bits (tracked transitively through a bounded support
    window), the inputs are independent and the exact product-form
    probability — multilinear, hence extremal at interval corners — is
    intersected in to tighten the box.  Flip-flop outputs are solved by a
    monotone accumulate-join fixpoint (each iteration folds the reset
    value and the current D interval into Q); registers still unstable
    after [widen_after] iterations are widened to [[0, 1]], which
    guarantees termination.

    From the SP interval of a cell's output follow, via the existing
    {!Aging} corner model, a BTI stress-duty interval, a
    threshold-shift interval, and — by running aged STA once with every
    net pinned at its lower SP endpoint (maximum aging) and once at its
    upper endpoint (minimum aging) — a static bracket on every register
    pair's aged slack.  {!classify} turns the bracket into the three-way
    triage verdict the phase-1 sweep consumes: [Safe] pairs can never
    violate under any admissible workload and are skipped, [Critical]
    pairs violate under every admissible workload and are front-loaded,
    [Unknown] pairs are simulated exactly as before. *)

type interval = { lo : float; hi : float }
(** A closed subinterval of [[0, 1]]; invariant [0 <= lo <= hi <= 1]. *)

val top : interval
(** The full [[0, 1]] — no information. *)

val point : float -> interval
(** Singleton interval.  @raise Invalid_argument outside [[0, 1]]. *)

val make : float -> float -> interval
(** [make lo hi], clamped to [[0, 1]].  @raise Invalid_argument if
    [lo > hi] after clamping. *)

type config = {
  widen_after : int;
      (** fixpoint iterations before still-unstable registers are widened
          to [[0, 1]] (default 8) *)
  support_window : int;
      (** independence tightening tracks up to this many primary-input
          bits per net; larger supports saturate to "possibly
          correlated" (default 16) *)
}

val default_config : config

type t
(** A completed analysis: per-net SP intervals plus the netlist and
    configuration they were computed from. *)

val analyze : ?config:config -> ?assume:(string -> int -> interval) -> Netlist.t -> t
(** Run the abstract interpretation.  [assume port_name bit] narrows the
    SP of a primary-input bit (default: {!top} everywhere — sound for
    any workload).  Deterministic: same netlist and assumptions, same
    result. *)

val netlist : t -> Netlist.t
val config : t -> config
val sp : t -> Netlist.net -> interval
(** SP interval of a net.  Soundness contract (QCheck-enforced): the
    measured SP of any simulation whose input bits respect the
    assumptions lies inside this interval. *)

val iterations : t -> int
(** Sequential fixpoint iterations performed. *)

val widened : t -> int
(** Number of registers widened to [[0, 1]] to force convergence. *)

val duty_interval : Aging.config -> t -> Netlist.cell -> interval
(** Stress-duty interval of a cell, from the SP interval of its output
    net ({!Aging.duty_of_sp} is decreasing, so the endpoints swap). *)

val dvth_interval : Aging.config -> t -> years:float -> Netlist.cell -> interval
(** Threshold-shift interval (volts) after [years]; {e not} a
    probability, so only the ordering invariant [lo <= hi] holds. *)

(** Three-way triage verdict for a register pair. *)
type verdict =
  | Safe  (** slack >= 0 even at maximum aging: skip in phase 1 *)
  | Critical  (** slack < 0 even at minimum aging: front-load *)
  | Unknown  (** the interval straddles zero: simulate as today *)

val verdict_name : verdict -> string
(** ["safe"], ["critical"], ["unknown"]. *)

type pair_verdict = {
  pv_start : Sta.startpoint;
  pv_end : Sta.endpoint;
  pv_check : Sta.check;
  pv_verdict : verdict;
  pv_slack_lo : float;  (** aged slack at maximum aging (every SP at lo) *)
  pv_slack_hi : float;  (** aged slack at minimum aging (every SP at hi) *)
}

val classify :
  ?derate:float ->
  ?clock_tree:Clock_tree.t ->
  aglib:Aging.Timing_library.t ->
  years:float ->
  clock_period_ps:float ->
  t ->
  pair_verdict list
(** Bracket the aged slack of every register pair by running
    {!Sta.endpoint_pairs} at the two aging corners and classify each
    pair.  Because {!Aging.Timing_library.factor} is decreasing in SP,
    pinning every net at its interval's [lo] maximizes every cell delay
    simultaneously (and [hi] minimizes it), so
    [pv_slack_lo <= true slack <= pv_slack_hi] for any admissible
    workload.  Hold slacks do not depend on data-net SP (min delays stay
    fresh; clock-tree aging uses segment activity), so hold verdicts are
    always exact ([Safe] or [Critical]). *)

val verdict_counts : pair_verdict list -> int * int * int
(** [(safe, critical, unknown)]. *)

val pair_key : Netlist.t -> Sta.startpoint -> Sta.endpoint -> Sta.check -> string
(** Stable name-based identity of a register pair and check —
    ["a_q0->r_q3:setup"].  Instance names survive netlist-rewriting
    transforms that renumber cell ids (the repair pass's dead-cell sweep),
    so name keys are how before/after verdicts and repair outcomes are
    matched across netlist versions. *)

val render : ?limit:int -> t -> pair_verdict list -> string
(** Deterministic, golden-diffable report: analysis header, verdict
    summary, the non-[Safe] pairs (worst slack bound first, at most
    [limit], default 16), and per-cell SP/duty intervals. *)
