(* SCOAP controllability/observability, as a monotone fixpoint.

   Scores start at the saturation ceiling and only ever decrease, so
   iterating the transfer functions over the (possibly cyclic, through
   DFFs) graph converges.  Passes sweep the combinational cells in
   topological order (forward for controllability, backward for
   observability), so acyclic designs converge in one pass plus one
   verification pass per register loop. *)

module K = Cell.Kind

let unobservable = 100_000_000

type t = { s_cc0 : int array; s_cc1 : int array; s_co : int array }

let ( +! ) a b = min (a + b) unobservable
let cc0 t n = t.s_cc0.(n)
let cc1 t n = t.s_cc1.(n)
let co t n = t.s_co.(n)
let net_difficulty t n = t.s_cc0.(n) +! t.s_cc1.(n) +! t.s_co.(n)

let analyze nl =
  let nn = max (Netlist.num_nets nl) 1 in
  let c0 = Array.make nn unobservable in
  let c1 = Array.make nn unobservable in
  let ob = Array.make nn unobservable in
  List.iter
    (fun (p : Netlist.port) ->
      Array.iter
        (fun n ->
          c0.(n) <- 1;
          c1.(n) <- 1)
        p.Netlist.port_nets)
    (Netlist.inputs nl);
  let topo = Netlist.topo_order nl in
  let dffs = Netlist.dffs nl in
  let lower a n v = if v < a.(n) then (a.(n) <- v; true) else false in
  (* Controllability: forward sweeps until stable. *)
  let cc_cell (c : Netlist.cell) =
    let i k = c.Netlist.inputs.(k) in
    let y = c.Netlist.output in
    let n0, n1 =
      match c.Netlist.kind with
      | K.Tie0 -> (1, unobservable)
      | K.Tie1 -> (unobservable, 1)
      | K.Buf -> (c0.(i 0) +! 1, c1.(i 0) +! 1)
      | K.Not -> (c1.(i 0) +! 1, c0.(i 0) +! 1)
      | K.And2 -> (min c0.(i 0) c0.(i 1) +! 1, c1.(i 0) +! c1.(i 1) +! 1)
      | K.Nand2 -> (c1.(i 0) +! c1.(i 1) +! 1, min c0.(i 0) c0.(i 1) +! 1)
      | K.Or2 -> (c0.(i 0) +! c0.(i 1) +! 1, min c1.(i 0) c1.(i 1) +! 1)
      | K.Nor2 -> (min c1.(i 0) c1.(i 1) +! 1, c0.(i 0) +! c0.(i 1) +! 1)
      | K.Xor2 ->
        ( min (c0.(i 0) +! c0.(i 1)) (c1.(i 0) +! c1.(i 1)) +! 1,
          min (c0.(i 0) +! c1.(i 1)) (c1.(i 0) +! c0.(i 1)) +! 1 )
      | K.Xnor2 ->
        ( min (c0.(i 0) +! c1.(i 1)) (c1.(i 0) +! c0.(i 1)) +! 1,
          min (c0.(i 0) +! c0.(i 1)) (c1.(i 0) +! c1.(i 1)) +! 1 )
      | K.Mux2 ->
        (* inputs [a; b; s]: selects b when s. *)
        ( min (c0.(i 2) +! c0.(i 0)) (c1.(i 2) +! c0.(i 1)) +! 1,
          min (c0.(i 2) +! c1.(i 0)) (c1.(i 2) +! c1.(i 1)) +! 1 )
      | K.Dff -> (c0.(i 0) +! 1, c1.(i 0) +! 1)
    in
    let ch0 = lower c0 y n0 in
    let ch1 = lower c1 y n1 in
    ch0 || ch1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter (fun id -> if cc_cell (Netlist.cell nl id) then changed := true) topo;
    List.iter (fun id -> if cc_cell (Netlist.cell nl id) then changed := true) dffs
  done;
  (* Observability: primary outputs are free to observe; backward sweeps. *)
  List.iter
    (fun (p : Netlist.port) -> Array.iter (fun n -> ob.(n) <- 0) p.Netlist.port_nets)
    (Netlist.outputs nl);
  let co_cell (c : Netlist.cell) =
    let i k = c.Netlist.inputs.(k) in
    let oy = ob.(c.Netlist.output) in
    if oy >= unobservable then false
    else begin
      let upd pin extra = lower ob (i pin) (oy +! extra +! 1) in
      match c.Netlist.kind with
      | K.Tie0 | K.Tie1 -> false
      | K.Buf | K.Not | K.Dff -> upd 0 0
      | K.And2 | K.Nand2 ->
        let a = upd 0 c1.(i 1) in
        let b = upd 1 c1.(i 0) in
        a || b
      | K.Or2 | K.Nor2 ->
        let a = upd 0 c0.(i 1) in
        let b = upd 1 c0.(i 0) in
        a || b
      | K.Xor2 | K.Xnor2 ->
        let a = upd 0 (min c0.(i 1) c1.(i 1)) in
        let b = upd 1 (min c0.(i 0) c1.(i 0)) in
        a || b
      | K.Mux2 ->
        let a = upd 0 c0.(i 2) in
        let b = upd 1 c1.(i 2) in
        (* the select is observable when the data inputs differ *)
        let s = upd 2 (min (c0.(i 0) +! c1.(i 1)) (c1.(i 0) +! c0.(i 1))) in
        a || b || s
    end
  in
  let ncomb = Array.length topo in
  changed := true;
  while !changed do
    changed := false;
    for k = ncomb - 1 downto 0 do
      if co_cell (Netlist.cell nl topo.(k)) then changed := true
    done;
    List.iter (fun id -> if co_cell (Netlist.cell nl id) then changed := true) dffs
  done;
  { s_cc0 = c0; s_cc1 = c1; s_co = ob }

let pair_difficulty nl t ~launch ~capture =
  let ql = (Netlist.find_cell nl launch).Netlist.output in
  let qc = (Netlist.find_cell nl capture).Netlist.output in
  t.s_cc0.(ql) +! t.s_cc1.(ql) +! t.s_co.(qc)

let hardest ?(limit = 10) nl t =
  Array.to_list (Netlist.cells nl)
  |> List.map (fun (c : Netlist.cell) -> (c.Netlist.name, net_difficulty t c.Netlist.output))
  |> List.sort (fun (na, da) (nb, db) ->
         match compare db da with 0 -> compare na nb | c -> c)
  |> List.filteri (fun i _ -> i < limit)

let render ?(limit = 10) nl t =
  let buf = Buffer.create 256 in
  let cells = Netlist.cells nl in
  let observable =
    Array.fold_left
      (fun acc (c : Netlist.cell) ->
        if t.s_co.(c.Netlist.output) < unobservable then acc + 1 else acc)
      0 cells
  in
  Buffer.add_string buf
    (Printf.sprintf "SCOAP testability for %s: %d cells, %d observable\n" (Netlist.name nl)
       (Array.length cells) observable);
  Buffer.add_string buf "  hardest fault sites (CC0/CC1/CO):\n";
  List.iter
    (fun (name, d) ->
      let c = Netlist.find_cell nl name in
      let y = c.Netlist.output in
      let sc v = if v >= unobservable then "inf" else string_of_int v in
      Buffer.add_string buf
        (Printf.sprintf "    %-16s %-5s %s/%s/%s  difficulty %s\n" name
           (K.to_string c.Netlist.kind) (sc t.s_cc0.(y)) (sc t.s_cc1.(y)) (sc t.s_co.(y))
           (sc d)))
    (hardest ~limit nl t);
  Buffer.contents buf
