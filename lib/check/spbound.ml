(* Static signal-probability bounds by abstract interpretation.

   Soundness rests on three facts.  (1) Frechet bounds are valid for any
   joint distribution with the given marginals, so they survive arbitrary
   correlation from reconvergent fanout.  (2) When two nets depend on
   disjoint sets of primary-input bits they are independent processes
   (input bits are modeled as independent sources), and the exact
   independent-inputs probability of a gate is multilinear in its input
   probabilities, hence extremal at the corners of the interval box.
   (3) A register's output distribution at any cycle is either the reset
   value or some earlier cycle's D distribution, so the accumulate-join
   fixpoint interval contains the SP of every cycle, and therefore any
   average over cycles. *)

module K = Cell.Kind
module IntSet = Set.Make (Int)

type interval = { lo : float; hi : float }

let top = { lo = 0.0; hi = 1.0 }

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let point p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Spbound.point: %g outside [0, 1]" p);
  { lo = p; hi = p }

let make lo hi =
  let lo = clamp01 lo and hi = clamp01 hi in
  if lo > hi then invalid_arg (Printf.sprintf "Spbound.make: lo %g > hi %g" lo hi);
  { lo; hi }

let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

(* Intersect a sound box with a (mathematically contained) tightening;
   fall back to the coarse box if rounding ever makes the meet empty. *)
let meet_sound coarse tight =
  let lo = Float.max coarse.lo tight.lo and hi = Float.min coarse.hi tight.hi in
  if lo <= hi then { lo; hi } else coarse

let norm iv = { lo = clamp01 iv.lo; hi = clamp01 (Float.max iv.lo iv.hi) }

(* ---------- transfer functions ---------- *)

(* Frechet bounds: sharp bounds on P(f(inputs) = 1) given only the input
   marginals, valid under arbitrary correlation. *)
let frechet kind (ivs : interval array) =
  let v =
    match (kind, ivs) with
    | K.Tie0, _ -> { lo = 0.0; hi = 0.0 }
    | K.Tie1, _ -> { lo = 1.0; hi = 1.0 }
    | K.Buf, [| a |] -> a
    | K.Not, [| a |] -> { lo = 1.0 -. a.hi; hi = 1.0 -. a.lo }
    | K.And2, [| a; b |] -> { lo = a.lo +. b.lo -. 1.0; hi = Float.min a.hi b.hi }
    | K.Nand2, [| a; b |] ->
      { lo = 1.0 -. Float.min a.hi b.hi; hi = 2.0 -. a.lo -. b.lo }
    | K.Or2, [| a; b |] -> { lo = Float.max a.lo b.lo; hi = a.hi +. b.hi }
    | K.Nor2, [| a; b |] ->
      { lo = 1.0 -. (a.hi +. b.hi); hi = 1.0 -. Float.max a.lo b.lo }
    | K.Xor2, [| a; b |] | K.Xnor2, [| a; b |] ->
      (* P(a xor b) ranges over [|pa - pb|, min (pa + pb, 2 - pa - pb)]
         for fixed marginals; extremize over the box. *)
      let gap = Float.max 0.0 (Float.max (a.lo -. b.hi) (b.lo -. a.hi)) in
      let s_lo = a.lo +. b.lo and s_hi = a.hi +. b.hi in
      let hi =
        if s_lo <= 1.0 && 1.0 <= s_hi then 1.0
        else if s_hi < 1.0 then s_hi
        else 2.0 -. s_lo
      in
      let x = { lo = gap; hi } in
      if kind = K.Xor2 then x else { lo = 1.0 -. x.hi; hi = 1.0 -. x.lo }
    | K.Mux2, [| a; b; s |] ->
      (* out = if s then b else a: out >= a&b, s&b, !s&a and
         out <= a|b, s|a, !s|b. *)
      let lo =
        Float.max (a.lo +. b.lo -. 1.0) (Float.max (s.lo +. b.lo -. 1.0) (a.lo -. s.hi))
      in
      let hi =
        Float.min (a.hi +. b.hi) (Float.min (s.hi +. a.hi) (1.0 -. s.lo +. b.hi))
      in
      { lo; hi }
    | K.Dff, _ -> invalid_arg "Spbound.frechet: Dff has no combinational transfer"
    | _ -> invalid_arg (Printf.sprintf "Spbound.frechet: %s arity" (K.to_string kind))
  in
  norm v

(* Exact P(out = 1) for independent inputs with probabilities [ps]. *)
let exact_prob kind ps =
  let k = Array.length ps in
  let bits = Array.make k false in
  let total = ref 0.0 in
  for m = 0 to (1 lsl k) - 1 do
    let w = ref 1.0 in
    for i = 0 to k - 1 do
      let b = m land (1 lsl i) <> 0 in
      bits.(i) <- b;
      w := !w *. (if b then ps.(i) else 1.0 -. ps.(i))
    done;
    if K.eval kind bits then total := !total +. !w
  done;
  !total

(* The independent-inputs probability is multilinear in each input
   probability, so its extrema over the box sit at corners. *)
let independent_box kind (ivs : interval array) =
  let k = Array.length ivs in
  let ps = Array.make k 0.0 in
  let lo = ref infinity and hi = ref neg_infinity in
  for m = 0 to (1 lsl k) - 1 do
    for i = 0 to k - 1 do
      ps.(i) <- (if m land (1 lsl i) <> 0 then ivs.(i).hi else ivs.(i).lo)
    done;
    let p = exact_prob kind ps in
    if p < !lo then lo := p;
    if p > !hi then hi := p
  done;
  norm { lo = !lo; hi = !hi }

(* ---------- analysis ---------- *)

type config = { widen_after : int; support_window : int }

let default_config = { widen_after = 8; support_window = 16 }

type t = {
  sb_netlist : Netlist.t;
  sb_config : config;
  sb_iv : interval array;  (** by net *)
  sb_iterations : int;
  sb_widened : int;
}

let netlist t = t.sb_netlist
let config t = t.sb_config
let iterations t = t.sb_iterations
let widened t = t.sb_widened

let sp t net =
  if net < 0 || net >= Array.length t.sb_iv then
    invalid_arg (Printf.sprintf "Spbound.sp: net %d out of range" net);
  t.sb_iv.(net)

(* Support sets: which primary-input bits a net (transitively, through
   registers) depends on.  [None] means "saturated": the support exceeded
   the window and the net is treated as possibly correlated with
   everything.  Supports only grow, so the fixpoint terminates. *)
let compute_supports nl config =
  let n = Netlist.num_nets nl in
  let cells = Netlist.cells nl in
  let topo = Netlist.topo_order nl in
  let dffs = Netlist.dffs nl in
  let supp : IntSet.t option array = Array.make n (Some IntSet.empty) in
  List.iter
    (fun (p : Netlist.port) ->
      Array.iter (fun net -> supp.(net) <- Some (IntSet.singleton net)) p.port_nets)
    (Netlist.inputs nl);
  let union_of inputs =
    Array.fold_left
      (fun acc inp ->
        match (acc, supp.(inp)) with
        | None, _ | _, None -> None
        | Some s, Some t ->
          let u = IntSet.union s t in
          if IntSet.cardinal u > config.support_window then None else Some u)
      (Some IntSet.empty) inputs
  in
  let equal_supp a b =
    match (a, b) with
    | None, None -> true
    | Some s, Some t -> IntSet.equal s t
    | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let update out s =
      if not (equal_supp s supp.(out)) then begin
        supp.(out) <- s;
        changed := true
      end
    in
    Array.iter
      (fun cid ->
        let c = cells.(cid) in
        update c.Netlist.output (union_of c.Netlist.inputs))
      topo;
    List.iter
      (fun cid ->
        let c = cells.(cid) in
        update c.Netlist.output supp.(c.Netlist.inputs.(0)))
      dffs
  done;
  supp

let pairwise_disjoint supp (inputs : int array) =
  let k = Array.length inputs in
  let ok = ref true in
  for i = 0 to k - 1 do
    match supp.(inputs.(i)) with
    | None -> ok := false
    | Some si ->
      for j = i + 1 to k - 1 do
        match supp.(inputs.(j)) with
        | None -> ok := false
        | Some sj -> if not (IntSet.disjoint si sj) then ok := false
      done
  done;
  !ok

let analyze ?(config = default_config) ?(assume = fun _ _ -> top) nl =
  if config.widen_after < 1 then invalid_arg "Spbound.analyze: widen_after < 1";
  if config.support_window < 1 then invalid_arg "Spbound.analyze: support_window < 1";
  let n = Netlist.num_nets nl in
  let cells = Netlist.cells nl in
  let topo = Netlist.topo_order nl in
  let dffs = Netlist.dffs nl in
  let supp = compute_supports nl config in
  let iv = Array.make n top in
  List.iter
    (fun (p : Netlist.port) ->
      Array.iteri
        (fun bit net ->
          let a = assume p.Netlist.port_name bit in
          if not (a.lo <= a.hi && 0.0 <= a.lo && a.hi <= 1.0) then
            invalid_arg
              (Printf.sprintf "Spbound.analyze: assumption [%g, %g] for %s[%d] invalid" a.lo
                 a.hi p.Netlist.port_name bit);
          iv.(net) <- a)
        p.Netlist.port_nets)
    (Netlist.inputs nl);
  let recompute_comb () =
    Array.iter
      (fun cid ->
        let c = cells.(cid) in
        let ivs = Array.map (fun i -> iv.(i)) c.Netlist.inputs in
        let coarse = frechet c.Netlist.kind ivs in
        let out =
          if Array.length c.Netlist.inputs >= 2 && pairwise_disjoint supp c.Netlist.inputs
          then meet_sound coarse (independent_box c.Netlist.kind ivs)
          else coarse
        in
        iv.(c.Netlist.output) <- out)
      topo
  in
  List.iter
    (fun cid ->
      let c = cells.(cid) in
      iv.(c.Netlist.output) <- point (if c.Netlist.reset_value then 1.0 else 0.0))
    dffs;
  recompute_comb ();
  let iterations = ref 0 in
  let widened = ref 0 in
  let since_widen = ref 0 in
  let continue_ = ref (dffs <> []) in
  while !continue_ do
    incr iterations;
    incr since_widen;
    let changed = ref [] in
    List.iter
      (fun cid ->
        let c = cells.(cid) in
        let q = iv.(c.Netlist.output) in
        let q' = join q iv.(c.Netlist.inputs.(0)) in
        if q'.lo <> q.lo || q'.hi <> q.hi then begin
          iv.(c.Netlist.output) <- q';
          changed := cid :: !changed
        end)
      dffs;
    if !changed = [] then continue_ := false
    else begin
      (* Widening: registers still drifting after [widen_after] straight
         unstable iterations jump to [0, 1] and never move again, which
         bounds the loop by widen_after * (#dffs + 1) iterations. *)
      if !since_widen >= config.widen_after then begin
        List.iter
          (fun cid ->
            let c = cells.(cid) in
            if iv.(c.Netlist.output) <> top then begin
              iv.(c.Netlist.output) <- top;
              incr widened
            end)
          !changed;
        since_widen := 0
      end;
      recompute_comb ()
    end
  done;
  {
    sb_netlist = nl;
    sb_config = config;
    sb_iv = iv;
    sb_iterations = !iterations;
    sb_widened = !widened;
  }

(* ---------- derived aging quantities ---------- *)

(* duty_of_sp and delta_vth_of_sp are decreasing in sp, so the cell's
   worst (largest) duty and threshold shift sit at the SP lower bound. *)
let duty_interval acfg t (cell : Netlist.cell) =
  let s = sp t cell.Netlist.output in
  { lo = Aging.duty_of_sp acfg s.hi; hi = Aging.duty_of_sp acfg s.lo }

let dvth_interval acfg t ~years (cell : Netlist.cell) =
  let s = sp t cell.Netlist.output in
  { lo = Aging.delta_vth_of_sp acfg ~sp:s.hi ~years;
    hi = Aging.delta_vth_of_sp acfg ~sp:s.lo ~years }

(* ---------- pair triage ---------- *)

type verdict = Safe | Critical | Unknown

let verdict_name = function Safe -> "safe" | Critical -> "critical" | Unknown -> "unknown"

type pair_verdict = {
  pv_start : Sta.startpoint;
  pv_end : Sta.endpoint;
  pv_check : Sta.check;
  pv_verdict : verdict;
  pv_slack_lo : float;
  pv_slack_hi : float;
}

let classify ?derate ?clock_tree ~aglib ~years ~clock_period_ps t =
  let nl = t.sb_netlist in
  (* factor is decreasing in sp: pinning every net at its SP lower bound
     maximizes every cell delay simultaneously (and hi minimizes), so the
     two corner runs bracket the aged slack of every pair. *)
  let pess =
    Sta.aged_timing ?derate ?clock_tree ~sp_of_net:(fun net -> t.sb_iv.(net).lo) ~years aglib
  in
  let opt =
    Sta.aged_timing ?derate ?clock_tree ~sp_of_net:(fun net -> t.sb_iv.(net).hi) ~years aglib
  in
  let worst = Sta.endpoint_pairs ~timing:pess ~clock_period_ps nl in
  let best = Sta.endpoint_pairs ~timing:opt ~clock_period_ps nl in
  List.map2
    (fun (s, e, c, slack_lo) (s', e', c', slack_hi) ->
      if not (s = s' && e = e' && c = c') then
        invalid_arg "Spbound.classify: corner enumerations disagree";
      let v =
        if slack_lo >= 0.0 then Safe else if slack_hi < 0.0 then Critical else Unknown
      in
      {
        pv_start = s;
        pv_end = e;
        pv_check = c;
        pv_verdict = v;
        pv_slack_lo = slack_lo;
        pv_slack_hi = slack_hi;
      })
    worst best

let verdict_counts pvs =
  List.fold_left
    (fun (s, c, u) pv ->
      match pv.pv_verdict with
      | Safe -> (s + 1, c, u)
      | Critical -> (s, c + 1, u)
      | Unknown -> (s, c, u + 1))
    (0, 0, 0) pvs

let pair_key nl start finish chk =
  Printf.sprintf "%s->%s:%s"
    (Sta.describe_startpoint nl start)
    (Sta.describe_endpoint nl finish)
    (match chk with Sta.Setup -> "setup" | Sta.Hold -> "hold")

(* ---------- report ---------- *)

let render ?(limit = 16) t pvs =
  let nl = t.sb_netlist in
  let buf = Buffer.create 4096 in
  let cells = Netlist.cells nl in
  let safe, critical, unknown = verdict_counts pvs in
  let total = safe + critical + unknown in
  Buffer.add_string buf (Printf.sprintf "spbound report for %s\n" (Netlist.name nl));
  Buffer.add_string buf
    (Printf.sprintf "  nets %d, cells %d, dffs %d, pairs %d\n" (Netlist.num_nets nl)
       (Array.length cells)
       (List.length (Netlist.dffs nl))
       total);
  Buffer.add_string buf
    (Printf.sprintf "  fixpoint: %d iteration(s), %d register(s) widened\n" t.sb_iterations
       t.sb_widened);
  let prunable = if total = 0 then 0.0 else 100.0 *. float_of_int safe /. float_of_int total in
  Buffer.add_string buf
    (Printf.sprintf "  verdicts: %d safe / %d critical / %d unknown (%.1f%% prunable)\n" safe
       critical unknown prunable);
  let flagged =
    List.filter (fun pv -> pv.pv_verdict <> Safe) pvs
    |> List.sort (fun a b ->
           match Float.compare a.pv_slack_lo b.pv_slack_lo with
           | 0 -> compare (a.pv_start, a.pv_end, a.pv_check) (b.pv_start, b.pv_end, b.pv_check)
           | c -> c)
  in
  let shown = if List.length flagged > limit then limit else List.length flagged in
  if flagged = [] then Buffer.add_string buf "  no pair can age into a violation\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "  non-safe pairs (worst bound first, showing %d of %d):\n" shown
         (List.length flagged));
    List.iteri
      (fun i pv ->
        if i < limit then
          Buffer.add_string buf
            (Printf.sprintf "    [%-8s] %s -> %s (%s)  slack in [%.1f, %.1f] ps\n"
               (verdict_name pv.pv_verdict)
               (Sta.describe_startpoint nl pv.pv_start)
               (Sta.describe_endpoint nl pv.pv_end)
               (match pv.pv_check with Sta.Setup -> "setup" | Sta.Hold -> "hold")
               pv.pv_slack_lo pv.pv_slack_hi))
      flagged
  end;
  Buffer.add_string buf "  cell SP and stress-duty intervals:\n";
  let acfg = Aging.default_config in
  Array.iter
    (fun (c : Netlist.cell) ->
      if not (K.is_sequential c.Netlist.kind) then begin
        let s = sp t c.Netlist.output in
        let d = duty_interval acfg t c in
        Buffer.add_string buf
          (Printf.sprintf "    %-18s %-5s sp [%.3f, %.3f]  duty [%.3f, %.3f]\n"
             c.Netlist.name
             (K.to_string c.Netlist.kind)
             s.lo s.hi d.lo d.hi)
      end)
    cells;
  Buffer.contents buf
