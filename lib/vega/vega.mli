(** The Vega workflow: the paper's three phases, end to end.

    {ol
    {- {!aging_analysis} — profile signal probabilities by running a
       representative workload on a CPU whose analyzed unit is the
       gate-level netlist, build the aging-aware timing library, run
       aging-aware STA at the unit's target clock (derived so the fresh
       design meets timing with a small margin, as a signed-off design
       would), and collect the violating paths and per-cell degradation.}
    {- {!error_lifting} — reduce violating paths to unique register pairs
       and run the formal construction of test cases for each
       ({!Lift.lift_paths}).}
    {- {!test_integration} — splice the resulting suite into an
       application with the profile-guided pass, or package it as the
       software aging library ({!Integrate}).}}

    {!run_workflow} chains all three for one functional unit. *)

type phase1_config = {
  years : float;  (** assumed service life (10, per the paper) *)
  clock_margin : float;
      (** target period = fresh critical path x this margin; below the
          minimum aging degradation so that aging can break timing *)
  derate : float;  (** pessimistic-corner multiplier on max delays *)
  clock_tree : Clock_tree.t;
  sp_fallback : float;  (** SP for units the workload never exercised *)
  max_violating_paths : int;
}

val default_phase1 : phase1_config
(** 10 years, 1.5 % margin, no extra derate, the two-domain gated clock
    tree (gated segment parked at SP 0.05, i.e. idling low and aging
    fastest), fallback SP 0.5. *)

type analysis = {
  target : Lift.target;
  clock_period_ps : float;
  fresh_report : Sta.report;
  aged_report : Sta.report;
  violating_pairs : (Sta.startpoint * Sta.endpoint * Sta.check * float) list;
      (** exact violating register pairs ({!Sta.violating_pairs}),
          worst-slack first *)
  sp_of_net : Netlist.net -> float;
  cell_degradation : (string * float) list;
      (** per combinational cell: 10-year max-delay factor (Fig. 8 data) *)
  sp_samples : int;  (** profiling samples behind the SP data *)
  static_verdicts : Spbound.pair_verdict list option;
      (** the static triage that pruned this analysis ([Some] exactly when
          phase 1 ran with [~static_prune:true]): one {!Spbound} verdict
          per register pair and check.  [Safe] pairs were skipped by the
          sweep — soundness guarantees they cannot appear in
          [violating_pairs] — and [Critical] pairs are ordered first by
          {!lifting_items}/{!error_lifting}. *)
}

(** How phase one collects the SP profile.

    [Scalar_profile] (the reference): run the workload on a machine whose
    analyzed unit is the profiled scalar netlist simulator — the profile
    sees every unit cycle, including inter-unit bubbles and drains.

    [Batched_profile] (the fast path): record the unit's operation stream
    from a purely functional run, then replay it split across
    [Sim64.lanes] lanes of the word-parallel simulator, each lane warmed
    up for the unit's pipeline latency.  Ones-counts are exact w.r.t. a
    sequential back-to-back replay of the same stream; pacing effects
    (bubbles between unit operations) are deliberately not modeled, and
    toggle counts lose the few transitions that straddle lane-chunk
    boundaries.

    [Compiled_profile] is [Batched_profile] on the compiled {!Simc}
    engine: the same recorded stream, lane split and warm-up, but the
    netlist is compiled to a superop program first.  Counters (and hence
    the analysis) are bit-identical to [Batched_profile] — Simc's
    profiling mode compiles conservatively for exactly this reason — with
    the compile cost amortized over the replay. *)
type profile_engine = Scalar_profile | Batched_profile | Compiled_profile

val aging_analysis :
  ?engine:profile_engine ->
  ?config:phase1_config ->
  ?static_prune:bool ->
  Lift.target ->
  workload:(Machine.t -> unit) ->
  analysis
(** Phase one.  [workload] drives a machine whose analyzed unit is the
    profiled gate-level netlist (e.g. run the minver kernel); the machine's
    other unit is functional.  [engine] defaults to [Scalar_profile].
    The target netlist is linted first ({!Check.lint_netlist});
    @raise Invalid_argument with the rendered report if it carries
    error-class defects.

    With [static_prune] (default [false]), {!Spbound} triages every
    register pair before the aged sweep under the sound default
    assumptions (any workload): pairs it proves [Safe] are skipped by the
    pair sweep — which cannot change [violating_pairs], only the work to
    compute it — and verdict counts land on the [vega.spbound.*]
    telemetry counters.  The verdicts persist in
    {!analysis.static_verdicts}. *)

val recorded_unit_ops :
  Lift.target -> workload:(Machine.t -> unit) -> (string * Bitvec.t) list array
(** The per-operation input assignments the workload feeds the target unit
    (one entry per operation, in program order), recorded from a functional
    run via the machine's operation hooks — the stream [Batched_profile]
    replays.  Exposed for differential testing and custom sweeps. *)

val replay_unit_ops : Lift.target -> (string * Bitvec.t) list array -> Sim64.t option
(** Replay a recorded operation stream onto the target netlist across the
    word-parallel simulator's lanes, profiled; [None] on an empty
    stream. *)

val replay_sp :
  ?engine:profile_engine ->
  Lift.target ->
  (string * Bitvec.t) list array ->
  (int * (Netlist.net -> float)) option
(** Replay an operation stream (recorded by {!recorded_unit_ops} or
    synthesized, e.g. by the adversarial stress search) on the selected
    word engine (default [Compiled_profile]) and return [(samples, sp)] —
    the per-net signal probability the stream induces.  [None] on an empty
    stream.  Deterministic: same stream, same engine, same profile. *)

val run_minver_workload : Machine.t -> unit
(** The default representative workload: the minver-style kernel is not
    available here (it lives in [vega_workload], which depends on this
    library's clients, not on it), so this drives the unit with a mixed
    arithmetic sweep approximating embench's operation mix.  Prefer passing
    a real {!Workload} kernel. *)

val error_lifting : ?config:Lift.config -> analysis -> Lift.pair_result list
(** Phase two, over the unique pairs of the aged STA report's violations,
    ordered hardest-to-test first by SCOAP testability
    ({!Testgen.scoap_ranked_pairs}) so the formal budget is spent on the
    paths random search cannot reach.  When the analysis carries static
    verdicts, statically-[Critical] pairs are front-loaded (SCOAP-ranked
    within each group, same pair set). *)

val lifting_items : analysis -> Resilience.item list
(** The phase-two work list (unique violating pairs, SCOAP-ranked,
    [Critical]-first when static verdicts are present) as supervisor
    items. *)

val error_lifting_supervised :
  ?config:Lift.config ->
  ?supervisor:Resilience.supervisor ->
  ?checkpoint:Resilience.Checkpoint.t ->
  ?on_item:(int -> Resilience.item_report -> unit) ->
  analysis ->
  Resilience.report
(** Phase two under {!Resilience.supervised_lift}: per-pair budget slices
    with adaptive escalation, the random-search degradation ladder for
    formally-FF pairs, and optional one-item-granular checkpoint/resume. *)

type workflow_report = {
  analysis : analysis;
  pair_results : Lift.pair_result list;
  suite : Lift.suite;
  suite_cycles : int;  (** healthy execution time of the full suite *)
}

val run_workflow :
  ?phase1:phase1_config ->
  ?phase2:Lift.config ->
  Lift.target ->
  workload:(Machine.t -> unit) ->
  workflow_report
(** Phases one and two plus suite assembly and timing.  Phase three is
    application-specific: feed [report.suite] to {!Integrate}. *)

val machine_for : ?profile_units:bool -> Lift.target -> Machine.t
(** A machine whose analyzed unit is the target's netlist (other unit
    functional), with a config matching the target's width/format. *)

val suite_cycles : Lift.suite -> int
(** Cycle count of one sequential execution of the suite on a healthy
    functional machine (Table 5's "Cycles"). *)

val classification_counts : Lift.pair_result list -> (Lift.classification * int) list
(** Tally of S/UR/FF/FC over pairs (Table 4's rows). *)

(** {1 Aging-aware netlist repair}

    Phase 1 evidence in, repaired netlist out: {!repair} runs
    {!aging_analysis} with static pruning, hands the violating pairs to
    {!Repair.run} (the CEC/STA-verified rewrite ladder), then re-scores
    the repaired netlist through both aged STA (with the repair pass's
    provenance-tracked SP view) and {!Spbound.classify}, so the report
    can state the before/after violating-pair and verdict counts. *)

type repair_report = {
  rr_analysis : analysis;  (** the phase-1 run the repair consumed *)
  rr_result : Repair.result;
  rr_verdicts_before : int * int * int;
      (** {!Spbound} (safe, critical, unknown) on the original netlist *)
  rr_verdicts_after : int * int * int;  (** same triage, repaired netlist *)
  rr_violating_before : int;  (** aged violating pairs before repair *)
  rr_violating_after : int;  (** and on the repaired netlist *)
}

val repair :
  ?engine:profile_engine ->
  ?config:phase1_config ->
  ?repair_config:Repair.config ->
  ?checkpoint:Resilience.Checkpoint.t ->
  ?log:(string -> unit) ->
  Lift.target ->
  workload:(Machine.t -> unit) ->
  repair_report
(** End-to-end repair of one functional unit.  Deterministic for a fixed
    target, workload and configuration.  The checkpoint digest should be
    {!Repair.digest} of the repair configuration and target netlist.
    @raise Invalid_argument if the netlist fails error-class lint. *)

val render_repair : repair_report -> string
(** Deterministic, golden-diffable report: phase-1 header, before/after
    violating-pair and {!Spbound} verdict counts, then {!Repair.render}. *)
