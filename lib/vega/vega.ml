type phase1_config = {
  years : float;
  clock_margin : float;
  derate : float;
  clock_tree : Clock_tree.t;
  sp_fallback : float;
  max_violating_paths : int;
}

let default_phase1 =
  {
    years = 10.0;
    clock_margin = 1.015;
    derate = 1.0;
    clock_tree = Clock_tree.two_domain_gated ~sp_gated:0.05 ();
    sp_fallback = 0.5;
    max_violating_paths = 10_000;
  }

type analysis = {
  target : Lift.target;
  clock_period_ps : float;
  fresh_report : Sta.report;
  aged_report : Sta.report;
  violating_pairs : (Sta.startpoint * Sta.endpoint * Sta.check * float) list;
  sp_of_net : Netlist.net -> float;
  cell_degradation : (string * float) list;
  sp_samples : int;
  static_verdicts : Spbound.pair_verdict list option;
}

let tele_spbound_safe = Telemetry.Counter.make "vega.spbound.safe"
let tele_spbound_critical = Telemetry.Counter.make "vega.spbound.critical"
let tele_spbound_unknown = Telemetry.Counter.make "vega.spbound.unknown"

let unit_config (target : Lift.target) =
  match target.Lift.kind with
  | Lift.Alu_module { width } ->
    let fmt = if width >= 16 then Fpu_format.binary16 else Fpu_format.tiny in
    { Machine.default_config with Machine.width; fmt }
  | Lift.Fpu_module { fmt } ->
    { Machine.default_config with Machine.width = max 16 (Fpu_format.width fmt); fmt }

let machine_for ?(profile_units = false) (target : Lift.target) =
  let config = unit_config target in
  match target.Lift.kind with
  | Lift.Alu_module _ ->
    Machine.create ~config ~profile_units
      ~alu:(Machine.Alu_netlist target.Lift.netlist) ~fpu:Machine.Fpu_functional ()
  | Lift.Fpu_module _ ->
    Machine.create ~config ~profile_units ~alu:Machine.Alu_functional
      ~fpu:(Machine.Fpu_netlist target.Lift.netlist) ()

(* A mixed arithmetic sweep used when no real workload is supplied: walks
   integer and floating-point operations over structured operand patterns
   approximating embench's operation mix. *)
let run_minver_workload m =
  let width = (Machine.config m).Machine.width in
  let fmt = (Machine.config m).Machine.fmt in
  let ops = [ Alu.Add; Alu.Sub; Alu.And_op; Alu.Xor_op; Alu.Sll; Alu.Srl; Alu.Slt ] in
  let prog =
    Isa.assemble
      (List.concat_map
         (fun k ->
           let a = (k * 37) land ((1 lsl width) - 1) in
           let b = (k * k) land ((1 lsl width) - 1) in
           let fa = Bitvec.to_int (Fpu_format.of_float fmt (float_of_int (k mod 9) /. 4.0)) in
           let fb = Bitvec.to_int (Fpu_format.of_float fmt (1.0 +. float_of_int (k mod 5))) in
           [
             Isa.Li (1, a);
             Isa.Li (2, b);
             Isa.Alu (List.nth ops (k mod List.length ops), 3, 1, 2);
             Isa.Li (4, fa);
             Isa.Li (5, fb);
             Isa.Fmv_wx (1, 4);
             Isa.Fmv_wx (2, 5);
             Isa.Fop ((if k mod 3 = 0 then Fpu_format.Fmul else Fpu_format.Fadd), 3, 1, 2);
           ])
         (List.init 200 (fun k -> k))
      @ [ Isa.Ecall Isa.exit_ok ])
  in
  Machine.reset m;
  ignore (Machine.run m prog)

(* ---- batched SP profiling (word-parallel) ----------------------------

   Scalar profiling pays one full netlist evaluation per workload cycle.
   The batched engine instead records the unit's operation stream from a
   purely functional run (via the machine's [on_alu_op]/[on_fpu_op] hooks,
   which fire identically for functional and netlist backends), splits the
   stream across [Sim64.lanes] lanes, and replays all lanes at once on the
   word-parallel simulator — each lane preceded by [latency] unsampled
   warm-up steps so its pipeline registers hold exactly what a sequential
   replay would hold entering its chunk.  Ones-counts are exact w.r.t. a
   sequential replay of the same stream; the profile deliberately ignores
   the machine's inter-unit bubbles and drain cycles (it is the SP of the
   unit under back-to-back load), which is the documented semantic
   difference from [Scalar_profile]. *)

type profile_engine = Scalar_profile | Batched_profile | Compiled_profile

let idle_assignment (target : Lift.target) =
  match target.Lift.kind with
  | Lift.Alu_module { width } ->
    [ (Alu.op_port, Bitvec.zero 4); (Alu.a_port, Bitvec.zero width); (Alu.b_port, Bitvec.zero width) ]
  | Lift.Fpu_module { fmt } ->
    let w = Fpu_format.width fmt in
    [
      (Fpu.op_port, Bitvec.zero 3);
      (Fpu.a_port, Bitvec.zero w);
      (Fpu.b_port, Bitvec.zero w);
      (Fpu.in_valid_port, Bitvec.zero 1);
    ]

let recorded_unit_ops (target : Lift.target) ~workload =
  let ops = ref [] in
  let on_alu_op, on_fpu_op =
    match target.Lift.kind with
    | Lift.Alu_module _ ->
      ( (fun op a b ->
          ops :=
            [
              (Alu.op_port, Bitvec.create ~width:4 (Alu.op_code op));
              (Alu.a_port, a);
              (Alu.b_port, b);
            ]
            :: !ops),
        fun _ _ _ -> () )
    | Lift.Fpu_module _ ->
      ( (fun _ _ _ -> ()),
        fun op a b ->
          ops :=
            [
              (Fpu.op_port, Bitvec.create ~width:3 (Fpu_format.op_code op));
              (Fpu.a_port, a);
              (Fpu.b_port, b);
              (Fpu.in_valid_port, Bitvec.create ~width:1 1);
            ]
            :: !ops )
  in
  let m =
    Machine.create ~config:(unit_config target) ~on_alu_op ~on_fpu_op ~alu:Machine.Alu_functional
      ~fpu:Machine.Fpu_functional ()
  in
  workload m;
  Array.of_list (List.rev !ops)

let replay_unit_ops_e (type s) (module E : Sim_intf.WORD with type t = s)
    (target : Lift.target) ops =
  let n = Array.length ops in
  if n = 0 then None
  else begin
    let latency =
      match target.Lift.kind with
      | Lift.Alu_module _ -> Alu.latency
      | Lift.Fpu_module _ -> Fpu.latency
    in
    let idle = idle_assignment target in
    let s64 = E.create ~profile:true target.Lift.netlist in
    let nlanes = min E.lanes n in
    let chunk = (n + nlanes - 1) / nlanes in
    (* lane [l] replays operations [l*chunk .. min ((l+1)*chunk, n) - 1] *)
    let assignment lane s =
      let i = (lane * chunk) + s in
      if lane < nlanes && i >= 0 && i < n then ops.(i) else idle
    in
    let drive s =
      List.iter
        (fun (pname, zero) ->
          let width = Bitvec.width zero in
          let words = Array.make width 0 in
          for lane = 0 to nlanes - 1 do
            let v = try List.assoc pname (assignment lane s) with Not_found -> zero in
            for bit = 0 to width - 1 do
              if Bitvec.bit v bit then words.(bit) <- words.(bit) lor (1 lsl lane)
            done
          done;
          E.set_input_words s64 pname words)
        idle
    in
    for s = -latency to -1 do
      drive s;
      E.step ~sample:false s64
    done;
    for s = 0 to chunk - 1 do
      let m = ref 0 in
      for lane = 0 to nlanes - 1 do
        if (lane * chunk) + s < n then m := !m lor (1 lsl lane)
      done;
      E.set_active_mask s64 !m;
      drive s;
      E.step s64
    done;
    Some s64
  end

let replay_unit_ops target ops = replay_unit_ops_e (module Sim64) target ops

(* Replay an operation stream (recorded or synthesized) and return the
   sample count plus the SP accessor — the evaluator behind the adversarial
   stress search in [Attack].  Engine selection mirrors {!aging_analysis}:
   [Scalar_profile] is the lanes=1 scalar view, so all three engines share
   the lane-chunked replay semantics. *)
let replay_sp ?(engine = Compiled_profile) target ops =
  let run (type s) (module E : Sim_intf.WORD with type t = s) =
    match replay_unit_ops_e (module E) target ops with
    | None -> None
    | Some s -> Some (E.samples s, E.sp s)
  in
  match engine with
  | Scalar_profile -> run (module Sim.Word)
  | Batched_profile -> run (module Sim64)
  | Compiled_profile -> run (module Simc)

(* Record the stream, replay it on the given word engine, return the
   sample count and SP accessor. *)
let batched_profile (type s) (module E : Sim_intf.WORD with type t = s) target ~workload =
  match replay_unit_ops_e (module E) target (recorded_unit_ops target ~workload) with
  | None -> (0, None)
  | Some s -> (E.samples s, Some (E.sp s))

let aging_analysis ?(engine = Scalar_profile) ?(config = default_phase1)
    ?(static_prune = false) (target : Lift.target) ~workload =
  Telemetry.with_span ~cat:"vega" "vega.phase1" @@ fun () ->
  let nl = target.Lift.netlist in
  (* Static gate: the whole phase-1/2 machinery (simulation, STA, CNF
     encoding) assumes a structurally sound netlist, so reject a design the
     linter finds error-class defects in before spending any budget on it. *)
  Telemetry.with_span ~cat:"vega" "vega.lint" (fun () ->
      match Check.errors (Check.lint_netlist nl) with
      | [] -> ()
      | diags ->
        invalid_arg
          (Printf.sprintf "Vega.aging_analysis: netlist %s fails lint:\n%s" (Netlist.name nl)
             (Check.render ~design:(Netlist.name nl) diags)));
  let sp_samples, profiled_sp =
    Telemetry.with_span ~cat:"vega" "vega.profile" @@ fun () ->
    match engine with
    | Scalar_profile ->
      let m = machine_for ~profile_units:true target in
      workload m;
      let unit_sim =
        match target.Lift.kind with
        | Lift.Alu_module _ -> Option.get (Machine.alu_sim m)
        | Lift.Fpu_module _ -> Option.get (Machine.fpu_sim m)
      in
      let s = Sim.samples unit_sim in
      (s, if s = 0 then None else Some (Sim.sp unit_sim))
    | Batched_profile -> batched_profile (module Sim64) target ~workload
    | Compiled_profile -> batched_profile (module Simc) target ~workload
  in
  let sp_of_net =
    match profiled_sp with None -> fun _ -> config.sp_fallback | Some f -> f
  in
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  (* target clock: fresh critical path plus the signoff margin *)
  let fresh_timing =
    Sta.fresh_timing ~derate:config.derate ~clock_tree:config.clock_tree Cell.Library.c28
  in
  let clock_period_ps, fresh_report =
    Telemetry.with_span ~cat:"vega" "vega.fresh_sta" @@ fun () ->
    let fresh_probe = Sta.analyze ~timing:fresh_timing ~clock_period_ps:1e9 nl in
    let crit =
      List.fold_left
        (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
        0.0 fresh_probe.Sta.endpoint_slacks
    in
    let clock_period_ps = crit *. config.clock_margin in
    (clock_period_ps, Sta.analyze ~timing:fresh_timing ~clock_period_ps nl)
  in
  (* Static triage: under the sound default assumptions (any workload),
     every pair Spbound proves Safe can never violate — whatever SP the
     profile just measured — so the exact pair sweep may skip it without
     changing its result. *)
  let static_verdicts =
    if not static_prune then None
    else
      Telemetry.with_span ~cat:"vega" "vega.spbound" @@ fun () ->
      let sb = Spbound.analyze nl in
      let pvs =
        Spbound.classify ~derate:config.derate ~clock_tree:config.clock_tree ~aglib
          ~years:config.years ~clock_period_ps sb
      in
      let safe, critical, unknown = Spbound.verdict_counts pvs in
      Telemetry.Counter.add tele_spbound_safe safe;
      Telemetry.Counter.add tele_spbound_critical critical;
      Telemetry.Counter.add tele_spbound_unknown unknown;
      Some pvs
  in
  let skip =
    match static_verdicts with
    | None -> None
    | Some pvs ->
      let safe = Hashtbl.create 64 in
      List.iter
        (fun (pv : Spbound.pair_verdict) ->
          if pv.Spbound.pv_verdict = Spbound.Safe then
            Hashtbl.replace safe (pv.Spbound.pv_start, pv.Spbound.pv_end, pv.Spbound.pv_check) ())
        pvs;
      Some (fun s e c -> Hashtbl.mem safe (s, e, c))
  in
  let aged_timing =
    Sta.aged_timing ~derate:config.derate ~clock_tree:config.clock_tree ~sp_of_net
      ~years:config.years aglib
  in
  let aged_report, violating_pairs =
    Telemetry.with_span ~cat:"vega" "vega.aged_sta" @@ fun () ->
    let aged_report =
      Sta.analyze ~max_violating_paths:config.max_violating_paths ~timing:aged_timing
        ~clock_period_ps nl
    in
    (aged_report, Sta.violating_pairs ?skip ~timing:aged_timing ~clock_period_ps nl)
  in
  let cell_degradation =
    Array.to_list (Netlist.cells nl)
    |> List.filter_map (fun (c : Netlist.cell) ->
           if Cell.Kind.is_sequential c.Netlist.kind || Cell.Kind.arity c.Netlist.kind = 0 then
             None
           else
             Some
               ( c.Netlist.name,
                 Aging.Timing_library.factor aglib c.Netlist.kind
                   ~sp:(sp_of_net c.Netlist.output) ~years:config.years ))
  in
  {
    target;
    clock_period_ps;
    fresh_report;
    aged_report;
    violating_pairs;
    sp_of_net;
    cell_degradation;
    sp_samples;
    static_verdicts;
  }

(* Hardest-to-test pairs first (SCOAP ranking): the formal budget goes to
   the paths cheap random search would miss.  The sort is stable, so the
   worst-slack representative of each unique pair is unchanged.  When the
   analysis carries static verdicts, pairs already proven Critical go to
   the head of the queue (SCOAP-ranked within each group): they violate
   under every admissible workload, so their counterexamples are the most
   valuable to front-load. *)
let ordered_pairs analysis =
  let nl = analysis.target.Lift.netlist in
  match analysis.static_verdicts with
  | None -> Testgen.scoap_ranked_pairs nl analysis.violating_pairs
  | Some pvs ->
    let crit = Hashtbl.create 16 in
    List.iter
      (fun (pv : Spbound.pair_verdict) ->
        if pv.Spbound.pv_verdict = Spbound.Critical then
          Hashtbl.replace crit (pv.Spbound.pv_start, pv.Spbound.pv_end, pv.Spbound.pv_check) ())
      pvs;
    let critical, rest =
      List.partition (fun (s, e, c, _) -> Hashtbl.mem crit (s, e, c)) analysis.violating_pairs
    in
    Testgen.scoap_ranked_pairs nl critical @ Testgen.scoap_ranked_pairs nl rest

let error_lifting ?config analysis =
  Telemetry.with_span ~cat:"vega" "vega.phase2" @@ fun () ->
  Lift.lift_violating_pairs ?config analysis.target (ordered_pairs analysis)

let lifting_items analysis =
  Resilience.items_of_pairs analysis.target.Lift.netlist (ordered_pairs analysis)

let error_lifting_supervised ?config ?supervisor ?checkpoint ?on_item analysis =
  Telemetry.with_span ~cat:"vega" "vega.phase2" @@ fun () ->
  Resilience.supervised_lift ?config ?supervisor ?checkpoint ?on_item analysis.target
    (lifting_items analysis)

type workflow_report = {
  analysis : analysis;
  pair_results : Lift.pair_result list;
  suite : Lift.suite;
  suite_cycles : int;
}

let suite_cycles (suite : Lift.suite) =
  if suite.Lift.suite_cases = [] then 0
  else begin
    let width, fmt =
      match suite.Lift.suite_target with
      | Lift.Alu_module { width } ->
        (* machine word width must equal the ALU width so that the golden
           expectations baked into the cases line up *)
        (width, if width >= 16 then Fpu_format.binary16 else Fpu_format.tiny)
      | Lift.Fpu_module { fmt } -> (max 16 (Fpu_format.width fmt), fmt)
    in
    let m =
      Machine.create
        ~config:{ Machine.default_config with Machine.width; fmt }
        ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()
    in
    Machine.reset m;
    match Machine.run m (Lift.suite_program suite) with
    | Machine.Exited code when code = Isa.exit_ok -> Machine.cycles m
    | o ->
      invalid_arg
        (Format.asprintf "Vega.suite_cycles: healthy suite did not pass (%a)" Machine.pp_outcome
           o)
  end

let run_workflow ?phase1 ?phase2 target ~workload =
  let analysis = aging_analysis ?config:phase1 target ~workload in
  let pair_results = error_lifting ?config:phase2 analysis in
  let suite = Lift.suite_of_results target.Lift.kind pair_results in
  { analysis; pair_results; suite; suite_cycles = suite_cycles suite }

let classification_counts results =
  List.map
    (fun cls ->
      ( cls,
        List.length
          (List.filter (fun (r : Lift.pair_result) -> r.Lift.classification = cls) results) ))
    [ Lift.S; Lift.UR; Lift.FF; Lift.FC ]

(* ------------------------------------------------------------------ *)
(* Aging-aware netlist repair (phase 1 -> Repair -> re-score)          *)

type repair_report = {
  rr_analysis : analysis;
  rr_result : Repair.result;
  rr_verdicts_before : int * int * int;
  rr_verdicts_after : int * int * int;
  rr_violating_before : int;
  rr_violating_after : int;
}

let tele_repair_before = Telemetry.Counter.make "vega.repair.violating_before"
let tele_repair_after = Telemetry.Counter.make "vega.repair.violating_after"

let repair ?engine ?(config = default_phase1) ?repair_config ?checkpoint ?log
    (target : Lift.target) ~workload =
  Telemetry.with_span ~cat:"vega" "vega.repair" @@ fun () ->
  let analysis = aging_analysis ?engine ~config ~static_prune:true target ~workload in
  let nl = target.Lift.netlist in
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  let result =
    Repair.run ?config:repair_config ?checkpoint ?log ~netlist:nl
      ~sp_of_net:analysis.sp_of_net ~clock_period_ps:analysis.clock_period_ps
      ~years:config.years ~derate:config.derate ~clock_tree:config.clock_tree ~aglib
      ~pairs:analysis.violating_pairs ()
  in
  let classify nl' =
    Spbound.verdict_counts
      (Spbound.classify ~derate:config.derate ~clock_tree:config.clock_tree ~aglib
         ~years:config.years ~clock_period_ps:analysis.clock_period_ps (Spbound.analyze nl'))
  in
  let before =
    match analysis.static_verdicts with
    | Some pvs -> Spbound.verdict_counts pvs
    | None -> classify nl
  in
  let after = classify result.Repair.rs_netlist in
  let aged =
    Sta.aged_timing ~derate:config.derate ~clock_tree:config.clock_tree
      ~sp_of_net:result.Repair.rs_sp_of_net ~years:config.years aglib
  in
  let violating_after =
    List.length
      (Sta.violating_pairs ~timing:aged ~clock_period_ps:analysis.clock_period_ps
         result.Repair.rs_netlist)
  in
  let violating_before = List.length analysis.violating_pairs in
  Telemetry.Counter.add tele_repair_before violating_before;
  Telemetry.Counter.add tele_repair_after violating_after;
  {
    rr_analysis = analysis;
    rr_result = result;
    rr_verdicts_before = before;
    rr_verdicts_after = after;
    rr_violating_before = violating_before;
    rr_violating_after = violating_after;
  }

let render_repair r =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let sb, cb, ub = r.rr_verdicts_before and sa, ca, ua = r.rr_verdicts_after in
  pf "Vega repair: %s\n" (Netlist.name r.rr_analysis.target.Lift.netlist);
  pf "  clock period %.1f ps, profile samples %d\n" r.rr_analysis.clock_period_ps
    r.rr_analysis.sp_samples;
  pf "  aged violating pairs %d -> %d\n" r.rr_violating_before r.rr_violating_after;
  pf "  spbound verdicts safe/critical/unknown %d/%d/%d -> %d/%d/%d\n\n" sb cb ub sa ca ua;
  Buffer.add_string b (Repair.render r.rr_result);
  Buffer.contents b
