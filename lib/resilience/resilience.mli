(** Resilient supervision of the failure-prone pipeline stages.

    The paper's phase two is explicitly fallible — "FF" (formal-tool
    timeout) is a first-class outcome in Table 4 — and the ROADMAP's
    production setting makes three demands the bare workflow does not meet:

    - {b per-work-item budget governance}: a shared conflict/wall-clock
      {!Budget.t} is carved into per-pair slices, so one pathologically
      hard pair exhausts {e its slice}, gets parked, and only re-runs with
      an escalated slice after every pair has had a first pass — it can
      never starve the pairs behind it;
    - {b a degradation ladder}: a pair still FF after its formal passes
      falls back to seeded random search over size-matched suites
      ({!Testgen} generation, {!Lift.detected_cases} on the 64-lane fast
      path), splitting Table 4's FF bucket into "covered by fallback"
      vs. "exhausted";
    - {b checkpoint/resume}: every completed work item is snapshotted as an
      atomically-written (tmp + rename) JSON file keyed by a
      config/netlist digest, so a killed run resumes exactly where it
      stopped — byte-identical results, enforced by the QCheck resume
      property and the CI kill-and-resume smoke. *)

(** Shared effort budget: solver conflicts (the deterministic currency)
    plus an optional wall-clock deadline (only consulted between escalation
    passes, so it never makes results input-dependent mid-item). *)
module Budget : sig
  type t

  val create : ?wall_clock_s:float -> conflicts:int -> unit -> t
  (** [wall_clock_s] is a soft deadline measured from [create]. *)

  val total : t -> int
  val spent : t -> int
  val remaining : t -> int
  val charge : t -> int -> unit
  val deadline_passed : t -> bool
end

val digest_of_strings : string list -> string
(** Hex MD5 over the rendered configuration tokens — the staleness key of a
    checkpoint. *)

val netlist_digest : Netlist.t -> string
(** Digest of the netlist's Verilog rendering: any structural change
    invalidates checkpoints made against it. *)

(** Incremental checkpoint store: a directory holding [meta.json]
    (format/version/digest) plus one [items/<name>.json] per completed
    work item.  All writes go through a temp file and [rename], so a
    crash can never leave a torn item — at worst a stale [*.tmp] that the
    next open sweeps away. *)
module Checkpoint : sig
  type t

  val open_dir : ?resume:bool -> dir:string -> digest:string -> unit -> (t, string) result
  (** Create or reopen the store.  A fresh directory is initialized either
      way.  An existing populated directory is an error unless [resume]
      (default false) is set — pointing a new run at old state must be
      explicit.  A digest mismatch against [meta.json] is always a
      readable error naming both digests.  Unparseable item files (a crash
      cannot cause one, but a truncated copy can) are deleted and their
      items recomputed. *)

  val dir : t -> string
  val digest : t -> string
  val load : t -> string -> Json.t option
  (** Completed-item snapshot under this key, if any. *)

  val store : t -> string -> Json.t -> unit
  (** Atomically persist one item (tmp + rename) and update the in-memory
      view. *)

  val keys : t -> string list
  val item_count : t -> int

  (** {2 Per-domain shards}

      A sharded store is one checkpoint directory holding a root
      [meta.json] plus [shard-<k>/] subdirectories, each itself a full
      single-writer store.  In a fleet run, worker domain [k] writes only
      to shard [k] (so no lock sits on the store path), while reads go
      through a merged view built once at open time.  Opening re-runs the
      torn-tmp sweep and the stale-digest check inside {e every} shard on
      disk — one stale shard refuses the whole resume — and merges
      whatever shards exist regardless of the current shard count, so a
      run killed at [--domains 4] resumes correctly at [--domains 1] and
      vice versa (the digest deliberately excludes the domain count). *)

  type sharded

  val open_sharded :
    ?resume:bool -> dir:string -> digest:string -> shards:int -> unit -> (sharded, string) result
  (** Create or reopen a sharded store with [shards] writable shards
      (>= 1, one per worker domain).  Same refusal rules as {!open_dir}:
      populated-without-[resume] and digest mismatches (root or any
      shard) are readable errors.
      @raise Invalid_argument if [shards < 1]. *)

  val shard : sharded -> int -> t
  (** The writable store of worker [k].  Each shard must be written by at
      most one domain at a time; the merged read view is not updated by
      writes (it is fixed at open). *)

  val shard_count : sharded -> int
  val sharded_dir : sharded -> string
  val sharded_digest : sharded -> string

  val sharded_load : sharded -> string -> Json.t option
  (** Look up a key in the merged view of all shards found at open time
      (ascending shard order, first shard holding the key wins).  Safe to
      call concurrently from any domain. *)

  val sharded_keys : sharded -> string list
  val sharded_item_count : sharded -> int
end

(** {1 The lifting supervisor} *)

(** Structured disposition of one supervised work item. *)
type outcome =
  | Proved  (** formal search concluded within budget (S, UR or FC) *)
  | Found_by_fallback
      (** formally FF, but seeded random search found a detecting case *)
  | Exhausted  (** FF and the fallback found nothing (or was disabled) *)
  | Failed of string  (** the item raised; isolated, not fatal to the run *)

val outcome_name : outcome -> string

(** Degradation-ladder knobs. *)
type ladder = {
  ld_fallback : bool;  (** run the random-search rung at all *)
  ld_suites : int;  (** random suites tried per timed-out variant *)
  ld_cases : int;  (** cases per suite (size-match of the Table-7 baseline) *)
  ld_seed : int;  (** base seed; per-item seeds derive deterministically *)
  ld_engine : Lift.engine;  (** simulation backend for the detection sweeps *)
}

val default_ladder : ladder

type supervisor = {
  sv_budget_conflicts : int;  (** shared conflict budget across all items *)
  sv_wall_clock_s : float option;
  sv_slice : int;  (** first-pass per-pair conflict slice *)
  sv_escalation : int;  (** slice multiplier per escalation pass *)
  sv_max_passes : int;  (** formal passes, first pass included *)
  sv_ladder : ladder;
}

val default_supervisor : ?pairs:int -> Lift.config -> supervisor
(** Slice = the config's per-variant [max_conflicts]; total budget =
    slice x max(pairs, 1) (default [pairs] = 1); escalation x4, up to 3
    passes, default ladder. *)

(** One supervised work item: a unique violating register pair. *)
type item = {
  it_key : string;  (** stable identity, the checkpoint key *)
  it_start : string;  (** launching DFF instance name *)
  it_end : string;  (** capturing DFF instance name *)
  it_violation : Fault.violation_kind;
}

val items_of_pairs :
  Netlist.t -> (Sta.startpoint * Sta.endpoint * Sta.check * float) list -> item list
(** Unique register pairs of a violating-pairs listing, in order (the same
    dedup {!Lift.lift_violating_pairs} applies); input-launched entries are
    skipped. *)

type item_report = {
  ir_item : item;
  ir_outcome : outcome;
  ir_result : Lift.pair_result option;
      (** the formal verdict; [None] only for an unattempted or [Failed]
          item *)
  ir_fallback_cases : Lift.test_case list;
      (** detecting cases recovered by the ladder (empty unless
          [Found_by_fallback]) *)
  ir_passes : int;  (** formal passes attempted *)
  ir_pass_conflicts : int list;  (** conflicts spent, one entry per pass *)
  ir_conflicts : int;  (** total conflicts spent on the item *)
  ir_bounds : (Fault.spec * int) list;
      (** deepest BMC bound proven per variant — the resume hints *)
}

type report = {
  rp_items : item_report list;  (** in input-item order *)
  rp_budget_total : int;
  rp_budget_spent : int;
  rp_escalations : int;  (** escalated re-runs performed *)
}

val supervised_lift :
  ?config:Lift.config ->
  ?supervisor:supervisor ->
  ?checkpoint:Checkpoint.t ->
  ?on_item:(int -> item_report -> unit) ->
  Lift.target ->
  item list ->
  report
(** Run Error Lifting over the items under supervision.

    Pass 1 gives every item a slice of [min sv_slice remaining] conflicts
    (via {!Lift.lift_pair_stats}'s whole-pair budget, so no item can spend
    more than its slice).  Items still FF are parked; escalation passes
    re-run parked items with slice x escalation^(pass-1) and the recorded
    BMC bounds as resume hints, while budget remains and the wall-clock
    deadline has not passed.  Items FF after the last pass go to the
    degradation ladder.  Every state change is checkpointed (when
    [checkpoint] is given) and [on_item] is called after each freshly
    computed item event — items satisfied from the checkpoint are silent,
    which is what makes resume-after-kill replay byte-identical.

    Determinism: with equal config, supervisor, items and checkpoint state,
    the report is a pure function — the wall-clock deadline is only
    consulted before starting an escalated re-run, never mid-item. *)

(** {1 Table-4-style accounting} *)

(** Classification refined by the supervisor outcome: the paper's FF bucket
    splits into fallback-covered vs. exhausted. *)
type split_class = R_S | R_UR | R_FF_covered | R_FF_exhausted | R_FC | R_failed

val split_classification : item_report -> split_class
val split_name : split_class -> string
val all_split_classes : split_class list

val split_counts : report -> (split_class * int) list
(** Tally over all items, in {!all_split_classes} order. *)

val render_report : report -> string
(** Deterministic text rendering: one line per item (classification,
    passes, conflicts, case count) plus the split tally and budget
    summary — the artifact diffed by the CI kill-and-resume job. *)

val suite_of_report : Lift.target -> report -> Lift.suite
(** All executable cases the supervised run produced — formally
    constructed ones first (in item order), then fallback-recovered
    ones. *)

(** {1 Checkpoint codecs} (exposed for {!Experiments} campaign rows) *)

val item_report_to_json : item_report -> Json.t
val item_report_of_json : item : item -> Json.t -> (item_report, string) result
(** The item identity is not trusted from the file: the caller supplies the
    [item] it expects under this key. *)
