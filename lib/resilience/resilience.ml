module Budget = struct
  type t = { total : int; mutable spent : int; deadline : float option }

  let create ?wall_clock_s ~conflicts () =
    {
      total = conflicts;
      spent = 0;
      deadline = Option.map (fun s -> Unix.gettimeofday () +. s) wall_clock_s;
    }

  let total t = t.total
  let spent t = t.spent
  let remaining t = max 0 (t.total - t.spent)
  let charge t n = t.spent <- t.spent + n

  let deadline_passed t =
    match t.deadline with None -> false | Some d -> Unix.gettimeofday () > d
end

let digest_of_strings parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))
let netlist_digest nl = Digest.to_hex (Digest.string (Netlist.to_verilog nl))

(* ---- checkpoint store ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

module Checkpoint = struct
  type t = { dir : string; digest : string; items : (string, Json.t) Hashtbl.t }

  let checkpoint_format = "vega-checkpoint"
  let checkpoint_version = 1
  let meta_file dir = Filename.concat dir "meta.json"
  let items_dir dir = Filename.concat dir "items"

  (* item files are named after a sanitized key plus a short hash, but the
     authoritative key is the one embedded in the document *)
  let file_of_key key =
    let sane =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c | _ -> '_')
        key
    in
    Printf.sprintf "%s-%s.json" sane (String.sub (Digest.to_hex (Digest.string key)) 0 8)

  let meta_json digest =
    Json.Obj
      [
        ("format", Json.String checkpoint_format);
        ("version", Json.Int checkpoint_version);
        ("digest", Json.String digest);
      ]

  let check_meta ~dir ~digest j =
    let open Json in
    let* fmt = Result.bind (member "format" j) to_str in
    let* version = Result.bind (member "version" j) to_int in
    let* found = Result.bind (member "digest" j) to_str in
    if fmt <> checkpoint_format then
      Error (Printf.sprintf "%s is not a vega checkpoint (format %S)" dir fmt)
    else if version <> checkpoint_version then
      Error
        (Printf.sprintf "checkpoint %s has unsupported version %d (expected %d)" dir version
           checkpoint_version)
    else if found <> digest then
      Error
        (Printf.sprintf
           "stale checkpoint: %s was written for configuration digest %s, but the current run \
            digests to %s — resume with the original configuration or remove the directory"
           dir found digest)
    else Ok ()

  let scan_items dir tbl =
    let idir = items_dir dir in
    Array.iter
      (fun name ->
        let path = Filename.concat idir name in
        if Filename.check_suffix name ".tmp" then
          (* a write the crash interrupted: the rename never happened, so
             the item it belonged to was not completed — drop it *)
          Sys.remove path
        else if Filename.check_suffix name ".json" then begin
          let parsed =
            let open Json in
            let* j = Json.of_string (read_file path) in
            let* key = Result.bind (member "key" j) to_str in
            let* data = member "data" j in
            Ok (key, data)
          in
          match parsed with
          | Ok (key, data) -> Hashtbl.replace tbl key data
          | Error _ -> Sys.remove path (* truncated or foreign: recompute *)
        end)
      (Sys.readdir idir)

  let open_dir ?(resume = false) ~dir ~digest () =
    let items = Hashtbl.create 64 in
    let fresh () =
      mkdir_p (items_dir dir);
      write_atomic (meta_file dir) (Json.to_string (meta_json digest));
      Ok { dir; digest; items }
    in
    if not (Sys.file_exists (meta_file dir)) then fresh ()
    else
      let open Json in
      let* meta = Json.of_string (read_file (meta_file dir)) in
      let* () = check_meta ~dir ~digest meta in
      scan_items dir items;
      if (not resume) && Hashtbl.length items > 0 then
        Error
          (Printf.sprintf
             "checkpoint %s already holds %d completed item(s); pass --resume to continue it or \
              remove the directory"
             dir (Hashtbl.length items))
      else Ok { dir; digest; items }

  let dir t = t.dir
  let digest t = t.digest
  let load t key = Hashtbl.find_opt t.items key

  let store t key data =
    let doc = Json.Obj [ ("key", Json.String key); ("data", data) ] in
    write_atomic (Filename.concat (items_dir t.dir) (file_of_key key)) (Json.to_string doc);
    Hashtbl.replace t.items key data

  let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.items [])
  let item_count t = Hashtbl.length t.items

  (* ---- per-domain shards ---- *)

  type sharded = {
    sh_dir : string;
    sh_digest : string;
    sh_shards : t array;
    sh_merged : (string, Json.t) Hashtbl.t; (* read-only after open *)
  }

  let shard_path root k = Filename.concat root (Printf.sprintf "shard-%d" k)

  let shard_index name =
    let prefix = "shard-" in
    let pl = String.length prefix in
    if String.length name > pl && String.sub name 0 pl = prefix then
      int_of_string_opt (String.sub name pl (String.length name - pl))
    else None

  let open_sharded ?(resume = false) ~dir ~digest ~shards () =
    if shards < 1 then invalid_arg "Checkpoint.open_sharded: shards must be >= 1";
    let open Json in
    let fresh = not (Sys.file_exists (meta_file dir)) in
    let* () =
      if fresh then begin
        mkdir_p dir;
        write_atomic (meta_file dir) (Json.to_string (meta_json digest));
        Ok ()
      end
      else
        let* meta = Json.of_string (read_file (meta_file dir)) in
        check_meta ~dir ~digest meta
    in
    (* Open every shard already on disk, whatever its index: a run killed
       at --domains 4 must be resumable at --domains 1 and vice versa.
       Going through [open_dir] re-runs the torn-tmp sweep and the
       stale-digest check inside each shard subdirectory, so one stale
       shard poisons the whole open. *)
    let existing =
      if fresh then []
      else
        Sys.readdir dir |> Array.to_list |> List.filter_map shard_index |> List.sort compare
    in
    let* opened =
      List.fold_left
        (fun acc k ->
          let* acc = acc in
          let* ck = open_dir ~resume:true ~dir:(shard_path dir k) ~digest () in
          Ok ((k, ck) :: acc))
        (Ok []) existing
    in
    let opened = List.rev opened in
    let total = List.fold_left (fun n (_, ck) -> n + item_count ck) 0 opened in
    if (not resume) && total > 0 then
      Error
        (Printf.sprintf
           "checkpoint %s already holds %d completed item(s) across %d shard(s); pass --resume \
            to continue it or remove the directory"
           dir total (List.length opened))
    else begin
      (* merge in ascending shard order; the first shard holding a key
         wins (duplicates only arise from a straggler re-dispatch racing
         a kill, and both copies are outputs of the same pure function,
         so the tie-break only needs to be deterministic) *)
      let merged = Hashtbl.create 64 in
      List.iter
        (fun (_, ck) ->
          List.iter
            (fun key ->
              if not (Hashtbl.mem merged key) then
                match load ck key with
                | Some data -> Hashtbl.replace merged key data
                | None -> ())
            (keys ck))
        opened;
      let* rev_shards =
        List.fold_left
          (fun acc k ->
            let* acc = acc in
            let* ck =
              match List.assoc_opt k opened with
              | Some ck -> Ok ck
              | None -> open_dir ~resume:true ~dir:(shard_path dir k) ~digest ()
            in
            Ok (ck :: acc))
          (Ok [])
          (List.init shards (fun k -> k))
      in
      Ok
        {
          sh_dir = dir;
          sh_digest = digest;
          sh_shards = Array.of_list (List.rev rev_shards);
          sh_merged = merged;
        }
    end

  let shard sh k = sh.sh_shards.(k)
  let shard_count sh = Array.length sh.sh_shards
  let sharded_dir sh = sh.sh_dir
  let sharded_digest sh = sh.sh_digest
  let sharded_load sh key = Hashtbl.find_opt sh.sh_merged key

  let sharded_keys sh =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) sh.sh_merged [])

  let sharded_item_count sh = Hashtbl.length sh.sh_merged
end

(* ---- supervisor ---- *)

type outcome = Proved | Found_by_fallback | Exhausted | Failed of string

let outcome_name = function
  | Proved -> "proved"
  | Found_by_fallback -> "fallback"
  | Exhausted -> "exhausted"
  | Failed _ -> "failed"

type ladder = {
  ld_fallback : bool;
  ld_suites : int;
  ld_cases : int;
  ld_seed : int;
  ld_engine : Lift.engine;
}

let default_ladder =
  { ld_fallback = true; ld_suites = 4; ld_cases = 32; ld_seed = 0; ld_engine = Lift.Engine_sim64 }

type supervisor = {
  sv_budget_conflicts : int;
  sv_wall_clock_s : float option;
  sv_slice : int;
  sv_escalation : int;
  sv_max_passes : int;
  sv_ladder : ladder;
}

let default_supervisor ?(pairs = 1) (config : Lift.config) =
  {
    sv_budget_conflicts = config.Lift.max_conflicts * max 1 pairs;
    sv_wall_clock_s = None;
    sv_slice = config.Lift.max_conflicts;
    sv_escalation = 4;
    sv_max_passes = 3;
    sv_ladder = default_ladder;
  }

type item = {
  it_key : string;
  it_start : string;
  it_end : string;
  it_violation : Fault.violation_kind;
}

let items_of_pairs nl pairs =
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun (start, Sta.At_dff end_id, check, _slack) ->
      match start with
      | Sta.From_input _ -> None
      | Sta.From_dff start_id ->
        let key = (start_id, end_id, check) in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.replace seen key ();
          let it_start = (Netlist.cell nl start_id).Netlist.name in
          let it_end = (Netlist.cell nl end_id).Netlist.name in
          let it_violation =
            match check with Sta.Setup -> Fault.Setup_violation | Sta.Hold -> Fault.Hold_violation
          in
          Some
            {
              it_key =
                Printf.sprintf "%s~%s~%s" it_start it_end (Serial.violation_name it_violation);
              it_start;
              it_end;
              it_violation;
            }
        end)
    pairs

type item_report = {
  ir_item : item;
  ir_outcome : outcome;
  ir_result : Lift.pair_result option;
  ir_fallback_cases : Lift.test_case list;
  ir_passes : int;
  ir_pass_conflicts : int list;
  ir_conflicts : int;
  ir_bounds : (Fault.spec * int) list;
}

type report = {
  rp_items : item_report list;
  rp_budget_total : int;
  rp_budget_spent : int;
  rp_escalations : int;
}

(* intermediate state of an item still in the formal ladder *)
type parked = {
  pk_passes : int;
  pk_pass_conflicts : int list;
  pk_conflicts : int;
  pk_bounds : (Fault.spec * int) list;
  pk_result : Lift.pair_result option;
}

type state = Done of item_report | Parked of parked

let zero_parked =
  { pk_passes = 0; pk_pass_conflicts = []; pk_conflicts = 0; pk_bounds = []; pk_result = None }

let report_of_parked it p =
  {
    ir_item = it;
    ir_outcome = Exhausted;
    ir_result = p.pk_result;
    ir_fallback_cases = [];
    ir_passes = p.pk_passes;
    ir_pass_conflicts = p.pk_pass_conflicts;
    ir_conflicts = p.pk_conflicts;
    ir_bounds = p.pk_bounds;
  }

(* ---- state codecs (the per-item checkpoint schema) ---- *)

let bounds_to_json bounds =
  Json.List
    (List.map
       (fun (s, b) -> Json.Obj [ ("spec", Serial.spec_to_json s); ("bound", Json.Int b) ])
       bounds)

let bounds_of_json j =
  let open Json in
  let* l = to_list j in
  map_m
    (fun e ->
      let* spec = Result.bind (member "spec" e) Serial.spec_of_json in
      let* bound = Result.bind (member "bound" e) to_int in
      Ok (spec, bound))
    l

let result_opt_to_json = function
  | None -> Json.Null
  | Some pr -> Serial.pair_result_to_json pr

let result_opt_of_json = function
  | Json.Null -> Ok None
  | j -> Result.map Option.some (Serial.pair_result_of_json j)

let item_report_to_json r =
  Json.Obj
    [
      ("state", Json.String "done");
      ("outcome", Json.String (outcome_name r.ir_outcome));
      ("error", match r.ir_outcome with Failed e -> Json.String e | _ -> Json.Null);
      ("result", result_opt_to_json r.ir_result);
      ("fallback_cases", Json.List (List.map Serial.case_to_json r.ir_fallback_cases));
      ("passes", Json.Int r.ir_passes);
      ("pass_conflicts", Json.List (List.map (fun c -> Json.Int c) r.ir_pass_conflicts));
      ("conflicts", Json.Int r.ir_conflicts);
      ("bounds", bounds_to_json r.ir_bounds);
    ]

let item_report_of_json ~item j =
  let open Json in
  let* outcome_s = Result.bind (member "outcome" j) to_str in
  let* error = member "error" j in
  let* ir_outcome =
    match (outcome_s, error) with
    | "proved", _ -> Ok Proved
    | "fallback", _ -> Ok Found_by_fallback
    | "exhausted", _ -> Ok Exhausted
    | "failed", String e -> Ok (Failed e)
    | "failed", _ -> Ok (Failed "unknown error")
    | o, _ -> Error (Printf.sprintf "bad outcome %S" o)
  in
  let* ir_result = Result.bind (member "result" j) result_opt_of_json in
  let* fb = Result.bind (member "fallback_cases" j) to_list in
  let* ir_fallback_cases = map_m Serial.case_of_json fb in
  let* ir_passes = Result.bind (member "passes" j) to_int in
  let* pc = Result.bind (member "pass_conflicts" j) to_list in
  let* ir_pass_conflicts = map_m to_int pc in
  let* ir_conflicts = Result.bind (member "conflicts" j) to_int in
  let* ir_bounds = Result.bind (member "bounds" j) bounds_of_json in
  Ok
    {
      ir_item = item;
      ir_outcome;
      ir_result;
      ir_fallback_cases;
      ir_passes;
      ir_pass_conflicts;
      ir_conflicts;
      ir_bounds;
    }

let parked_to_json p =
  Json.Obj
    [
      ("state", Json.String "parked");
      ("result", result_opt_to_json p.pk_result);
      ("passes", Json.Int p.pk_passes);
      ("pass_conflicts", Json.List (List.map (fun c -> Json.Int c) p.pk_pass_conflicts));
      ("conflicts", Json.Int p.pk_conflicts);
      ("bounds", bounds_to_json p.pk_bounds);
    ]

let parked_of_json j =
  let open Json in
  let* pk_result = Result.bind (member "result" j) result_opt_of_json in
  let* pk_passes = Result.bind (member "passes" j) to_int in
  let* pc = Result.bind (member "pass_conflicts" j) to_list in
  let* pk_pass_conflicts = map_m to_int pc in
  let* pk_conflicts = Result.bind (member "conflicts" j) to_int in
  let* pk_bounds = Result.bind (member "bounds" j) bounds_of_json in
  Ok { pk_result; pk_passes; pk_pass_conflicts; pk_conflicts; pk_bounds }

let state_to_json = function Done r -> item_report_to_json r | Parked p -> parked_to_json p

let state_of_json ~item j =
  let open Json in
  let* s = Result.bind (member "state" j) to_str in
  match s with
  | "done" -> Result.map (fun r -> Done r) (item_report_of_json ~item j)
  | "parked" -> Result.map (fun p -> Parked p) (parked_of_json j)
  | s -> Error (Printf.sprintf "bad item state %S" s)

let state_conflicts = function Done r -> r.ir_conflicts | Parked p -> p.pk_conflicts

(* ---- the supervised run ---- *)

let rec pow b e = if e <= 0 then 1 else b * pow b (e - 1)

let tele_budget_spent = Telemetry.Counter.make "resilience.budget_spent"

let tele_pair_conflicts =
  Telemetry.Histogram.make "resilience.pair_conflicts"
    ~bounds:[| 0; 2; 8; 32; 128; 512; 2048; 8192; 32768 |]

let supervised_lift ?(config = Lift.default_config) ?supervisor ?checkpoint
    ?(on_item = fun _ _ -> ()) (target : Lift.target) items =
  let tele = Telemetry.enabled () in
  if tele then Telemetry.begin_span ~cat:"resilience" "resilience.supervised_lift";
  let n = List.length items in
  let sup = match supervisor with Some s -> s | None -> default_supervisor ~pairs:n config in
  let budget =
    Budget.create ?wall_clock_s:sup.sv_wall_clock_s ~conflicts:sup.sv_budget_conflicts ()
  in
  let states : (string, state) Hashtbl.t = Hashtbl.create 64 in
  (* replay checkpointed state, re-charging the budget with what those
     items already spent so a resumed run sees the same remaining budget
     the killed run saw *)
  (match checkpoint with
  | None -> ()
  | Some ck ->
    List.iter
      (fun it ->
        match Checkpoint.load ck it.it_key with
        | None -> ()
        | Some j -> (
          match state_of_json ~item:it j with
          | Ok st ->
            Hashtbl.replace states it.it_key st;
            Budget.charge budget (state_conflicts st)
          | Error _ -> ()))
      items);
  let event = ref 0 in
  let record it st =
    Hashtbl.replace states it.it_key st;
    (match checkpoint with None -> () | Some ck -> Checkpoint.store ck it.it_key (state_to_json st));
    let r = match st with Done r -> r | Parked p -> report_of_parked it p in
    on_item !event r;
    incr event
  in
  let rec run_pass it (prev : parked) ~slice ~pass =
    if tele then Telemetry.begin_span ~cat:"resilience" "resilience.item";
    let st =
      match
        Lift.lift_pair_stats ~config ~budget:slice ~resume:prev.pk_bounds target
          ~start_dff:it.it_start ~end_dff:it.it_end ~violation:it.it_violation
      with
      | exception e ->
        Done
          {
            ir_item = it;
            ir_outcome = Failed (Printexc.to_string e);
            ir_result = None;
            ir_fallback_cases = [];
            ir_passes = pass;
            ir_pass_conflicts = prev.pk_pass_conflicts @ [ 0 ];
            ir_conflicts = prev.pk_conflicts;
            ir_bounds = prev.pk_bounds;
          }
      | pr, st -> run_pass_done it pr st ~pass ~prev
    in
    if tele then
      Telemetry.end_span
        ~args:
          [
            ("key", Telemetry.Str it.it_key);
            ("pass", Telemetry.Int pass);
            ("slice", Telemetry.Int slice);
            ("state", Telemetry.Str (match st with Done _ -> "done" | Parked _ -> "parked"));
            ("conflicts", Telemetry.Int (state_conflicts st));
          ]
        ();
    st
  and run_pass_done it pr st ~pass ~prev =
    Budget.charge budget st.Lift.p_conflicts;
    Telemetry.Counter.add tele_budget_spent st.Lift.p_conflicts;
    Telemetry.Histogram.observe tele_pair_conflicts st.Lift.p_conflicts;
    let pk =
        {
          pk_passes = pass;
          pk_pass_conflicts = prev.pk_pass_conflicts @ [ st.Lift.p_conflicts ];
          pk_conflicts = prev.pk_conflicts + st.Lift.p_conflicts;
          pk_bounds =
            List.map (fun v -> (v.Lift.vs_spec, v.Lift.vs_deepest_bound)) st.Lift.p_variants;
          pk_result = Some pr;
        }
      in
      if pr.Lift.classification = Lift.FF then Parked pk
      else
        Done
          {
            ir_item = it;
            ir_outcome = Proved;
            ir_result = Some pr;
            ir_fallback_cases = [];
            ir_passes = pk.pk_passes;
            ir_pass_conflicts = pk.pk_pass_conflicts;
            ir_conflicts = pk.pk_conflicts;
            ir_bounds = pk.pk_bounds;
          }
  in
  (* pass 1: every item gets a first slice before anyone escalates *)
  List.iter
    (fun it ->
      match Hashtbl.find_opt states it.it_key with
      | Some (Done _) -> ()
      | Some (Parked p) when p.pk_passes >= 1 -> ()
      | _ ->
        let slice = min sup.sv_slice (Budget.remaining budget) in
        let st =
          if slice <= 0 then Parked { zero_parked with pk_passes = 1; pk_pass_conflicts = [ 0 ] }
          else run_pass it zero_parked ~slice ~pass:1
        in
        record it st)
    items;
  (* escalation passes over the parked items, with resume hints *)
  for pass = 2 to sup.sv_max_passes do
    List.iter
      (fun it ->
        match Hashtbl.find_opt states it.it_key with
        | Some (Parked p)
          when p.pk_passes < pass
               && Budget.remaining budget > 0
               && not (Budget.deadline_passed budget) ->
          let slice =
            min (sup.sv_slice * pow sup.sv_escalation (pass - 1)) (Budget.remaining budget)
          in
          record it (run_pass it p ~slice ~pass)
        | _ -> ())
      items
  done;
  (* degradation ladder: seeded random search for the still-FF items *)
  let ladder = sup.sv_ladder in
  let rec run_ladder it (p : parked) =
    if tele then Telemetry.begin_span ~cat:"resilience" "resilience.ladder";
    let outcome, cases = run_ladder_search it p in
    if tele then
      Telemetry.end_span
        ~args:
          [
            ("key", Telemetry.Str it.it_key);
            ("outcome", Telemetry.Str (outcome_name outcome));
            ("cases", Telemetry.Int (List.length cases));
          ]
        ();
    (outcome, cases)
  and run_ladder_search it (p : parked) =
    let specs =
      match p.pk_result with
      | Some pr ->
        List.filter_map
          (function s, Lift.Formal_timeout -> Some s | _ -> None)
          pr.Lift.variants
      | None ->
        Fault.variants ~mitigation:config.Lift.mitigation ~start_dff:it.it_start
          ~end_dff:it.it_end it.it_violation
    in
    let found =
      List.concat_map
        (fun spec ->
          match Fault.failing_netlist target.Lift.netlist spec with
          | exception _ -> []
          | faulty ->
            let rec attempt a =
              if a >= ladder.ld_suites then []
              else begin
                let seed = ladder.ld_seed + Hashtbl.hash (it.it_key, Fault.describe spec, a) in
                let suite =
                  match target.Lift.kind with
                  | Lift.Alu_module { width } ->
                    Testgen.random_alu_suite ~seed ~width ~cases:ladder.ld_cases ()
                  | Lift.Fpu_module { fmt } ->
                    Testgen.random_fpu_suite ~seed ~fmt ~cases:ladder.ld_cases ()
                in
                let verdicts = Lift.detected_cases ~seed ~engine:ladder.ld_engine suite faulty in
                match List.filteri (fun i _ -> verdicts.(i)) suite.Lift.suite_cases with
                | [] -> attempt (a + 1)
                | hits ->
                  List.mapi
                    (fun i tc ->
                      {
                        tc with
                        Lift.tc_spec = spec;
                        Lift.tc_id =
                          Printf.sprintf "fallback:%s:%d" (Fault.describe spec) i;
                      })
                    hits
              end
            in
            attempt 0)
        specs
    in
    match found with [] -> (Exhausted, []) | cases -> (Found_by_fallback, cases)
  in
  List.iter
    (fun it ->
      match Hashtbl.find_opt states it.it_key with
      | Some (Parked p) ->
        let ir_outcome, ir_fallback_cases =
          if ladder.ld_fallback then run_ladder it p else (Exhausted, [])
        in
        record it
          (Done
             {
               ir_item = it;
               ir_outcome;
               ir_result = p.pk_result;
               ir_fallback_cases;
               ir_passes = p.pk_passes;
               ir_pass_conflicts = p.pk_pass_conflicts;
               ir_conflicts = p.pk_conflicts;
               ir_bounds = p.pk_bounds;
             })
      | _ -> ())
    items;
  let rp_items =
    List.map
      (fun it ->
        match Hashtbl.find_opt states it.it_key with
        | Some (Done r) -> r
        | Some (Parked p) -> report_of_parked it p
        | None ->
          {
            (report_of_parked it zero_parked) with
            ir_outcome = Failed "item was never attempted";
          })
      items
  in
  let rp_escalations =
    (* reconstructed from the final states (not a live counter) so that a
       resumed run reports the same number as the uninterrupted one *)
    List.fold_left (fun acc r -> acc + max 0 (r.ir_passes - 1)) 0 rp_items
  in
  if tele then
    Telemetry.end_span
      ~args:
        [
          ("items", Telemetry.Int n);
          ("budget_spent", Telemetry.Int (Budget.spent budget));
          ("escalations", Telemetry.Int rp_escalations);
        ]
      ();
  {
    rp_items;
    rp_budget_total = Budget.total budget;
    rp_budget_spent = Budget.spent budget;
    rp_escalations;
  }

(* ---- Table-4-style accounting ---- *)

type split_class = R_S | R_UR | R_FF_covered | R_FF_exhausted | R_FC | R_failed

let all_split_classes = [ R_S; R_UR; R_FF_covered; R_FF_exhausted; R_FC; R_failed ]

let split_name = function
  | R_S -> "S"
  | R_UR -> "UR"
  | R_FF_covered -> "FF-covered"
  | R_FF_exhausted -> "FF-exhausted"
  | R_FC -> "FC"
  | R_failed -> "failed"

let split_classification r =
  match r.ir_outcome with
  | Failed _ -> R_failed
  | Found_by_fallback -> R_FF_covered
  | Exhausted -> R_FF_exhausted
  | Proved -> (
    match r.ir_result with
    | Some pr -> (
      match pr.Lift.classification with
      | Lift.S -> R_S
      | Lift.UR -> R_UR
      | Lift.FF -> R_FF_exhausted
      | Lift.FC -> R_FC)
    | None -> R_failed)

let split_counts rp =
  List.map
    (fun c ->
      ( c,
        List.length (List.filter (fun r -> split_classification r = c) rp.rp_items) ))
    all_split_classes

let report_cases r =
  (match r.ir_result with Some pr -> List.length pr.Lift.cases | None -> 0)
  + List.length r.ir_fallback_cases

let render_report rp =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "pair %-36s %-13s passes %d  conflicts %-9d cases %d%s\n"
           r.ir_item.it_key
           (split_name (split_classification r))
           r.ir_passes r.ir_conflicts (report_cases r)
           (match r.ir_outcome with Failed e -> "  error: " ^ e | _ -> "")))
    rp.rp_items;
  Buffer.add_string b
    (Printf.sprintf "classes: %s\n"
       (String.concat "  "
          (List.map (fun (c, n) -> Printf.sprintf "%s %d" (split_name c) n) (split_counts rp))));
  Buffer.add_string b
    (Printf.sprintf "budget: %d/%d conflicts spent, %d escalation(s)\n" rp.rp_budget_spent
       rp.rp_budget_total rp.rp_escalations);
  Buffer.contents b

let suite_of_report (target : Lift.target) rp =
  let formal =
    List.concat_map
      (fun r -> match r.ir_result with Some pr -> pr.Lift.cases | None -> [])
      rp.rp_items
  in
  let fallback = List.concat_map (fun r -> r.ir_fallback_cases) rp.rp_items in
  { Lift.suite_target = target.Lift.kind; suite_cases = formal @ fallback }
