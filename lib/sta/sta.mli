(** Static timing analysis, fresh or aging-aware.

    Arrival times are propagated over the combinational DAG between
    flip-flops: maximum arrivals (with per-cell max delays and clk-to-Q max)
    bound setup slack at every DFF [D] pin against the next clock edge;
    minimum arrivals bound hold slack against the same edge.  Per-domain
    clock-arrival times come from a {!Clock_tree.t}, so aging-induced clock
    skew between gated and free-running subtrees is visible to the hold
    check — the mechanism behind the paper's FPU hold violations.

    Violating *paths* (not just endpoints) are recovered by a backward
    depth-first search with arrival-time pruning, capped to keep enumeration
    tractable; Vega's Error Lifting keeps one representative path per unique
    (startpoint, endpoint) pair, mirroring Section 5.2.1. *)

type startpoint =
  | From_dff of int  (** launching DFF cell id *)
  | From_input of string * int  (** primary-input port bit *)

type endpoint = At_dff of int  (** capturing DFF cell id *)

type check = Setup | Hold

type path = {
  start : startpoint;
  finish : endpoint;
  through : int list;  (** combinational cell ids, start to finish *)
  delay_ps : float;  (** data arrival at the endpoint [D] pin *)
  slack_ps : float;  (** negative iff violating *)
  check : check;
}

type endpoint_slack = {
  ep : endpoint;
  setup_slack_ps : float;
  hold_slack_ps : float;
}

type report = {
  clock_period_ps : float;
  endpoint_slacks : endpoint_slack list;
  setup_violations : path list;  (** worst-first *)
  hold_violations : path list;
  wns_setup_ps : float;  (** 0 when no endpoint violates *)
  wns_hold_ps : float;
  truncated : bool;  (** true if path enumeration hit the cap *)
}

(** How the analysis obtains delays and clock arrivals. *)
type timing_source = {
  cell_delay : Netlist.cell -> Cell.timing;
  dff_timing : Cell.dff_timing;
  clock_arrival_ps : int -> float;  (** by clock domain *)
  input_arrival_ps : float;  (** data arrival of primary inputs after the edge *)
}

val fresh_timing :
  ?derate:float -> ?clock_tree:Clock_tree.t -> Cell.Library.t -> timing_source
(** Unaged timing: library delays scaled by [derate] (default 1.0, the
    signoff-corner pessimism knob), clock arrivals from [clock_tree]
    (default {!Clock_tree.single_domain}) using fresh buffer delays. *)

val aged_timing :
  ?derate:float ->
  ?clock_tree:Clock_tree.t ->
  ?toggle_of_net:(Netlist.net -> float) ->
  sp_of_net:(Netlist.net -> float) ->
  years:float ->
  Aging.Timing_library.t ->
  timing_source
(** Aging-aware timing: each cell's max delay is scaled by the
    aging-library degradation factor at the signal probability of its
    output net; clock-tree buffers are aged with their segments' activity
    SP (min delays stay fresh — aging only slows transistors down).

    With [toggle_of_net] (switching activity per net, e.g.
    {!Sim.toggle_rate}), the electromigration extension also derates each
    cell's max delay by {!Aging.em_delay_factor} — BTI stresses the idlest
    cells, EM the busiest nets. *)

val analyze :
  ?constrain_inputs:bool ->
  ?max_violating_paths:int ->
  timing:timing_source ->
  clock_period_ps:float ->
  Netlist.t ->
  report
(** Run setup and hold analysis on every DFF endpoint.  At most
    [max_violating_paths] (default 10_000) violating paths are enumerated
    per check; [report.truncated] records whether the cap was hit.

    By default primary-input-launched paths are unconstrained
    ([constrain_inputs = false]): module-level analysis treats the upstream
    pipeline registers feeding the module as out of scope, exactly like an
    STA run without input-delay constraints.  With [constrain_inputs],
    inputs arrive at [timing.input_arrival_ps] and participate in both
    checks. *)

val endpoint_pairs :
  ?constrain_inputs:bool ->
  ?skip:(startpoint -> endpoint -> check -> bool) ->
  timing:timing_source ->
  clock_period_ps:float ->
  Netlist.t ->
  (startpoint * endpoint * check * float) list
(** Exact worst slack for every (startpoint, endpoint) register pair and
    check, computed by per-endpoint dynamic programming over the fan-in
    cone — immune to the combinatorial path-count explosion that bounds
    {!analyze}'s enumeration.  One tuple per connected pair and check.

    Pairs for which [skip] returns [true] (default: none) are dropped
    before any cone traversal — an endpoint whose pairs are all skipped
    costs nothing.  {!Check.Spbound} uses this to prune statically-safe
    pairs from the phase-1 sweep. *)

val violating_pairs :
  ?constrain_inputs:bool ->
  ?skip:(startpoint -> endpoint -> check -> bool) ->
  timing:timing_source ->
  clock_period_ps:float ->
  Netlist.t ->
  (startpoint * endpoint * check * float) list
(** The negative-slack subset of {!endpoint_pairs}, worst first — the exact
    list of unique aging-prone pairs Error Lifting consumes.  [skip] is
    sound to use exactly when skipped pairs are proven non-violating. *)

val unique_pairs : path list -> ((startpoint * endpoint) * path) list
(** Group violating paths by (startpoint, endpoint) keeping the
    worst-slack representative of each pair, worst-first — the filtering
    Vega applies before test-case generation. *)

val pair_path :
  ?constrain_inputs:bool ->
  timing:timing_source ->
  clock_period_ps:float ->
  Netlist.t ->
  startpoint ->
  endpoint ->
  check ->
  path option
(** The single worst path of one (startpoint, endpoint) pair: the same
    per-endpoint dynamic program as {!endpoint_pairs} followed by an
    argmax walk that reconstructs the extremal path's cells, so — unlike
    {!analyze}'s enumeration — it is immune to the path-count cap and
    returns the path whether or not it violates.  [None] when no
    combinational path connects the pair (or the startpoint is an
    unconstrained primary input).  The netlist repair pass uses this as
    its path oracle when choosing where to rewrite. *)

val render_report : Netlist.t -> report -> string
(** Signoff-style textual rendering: WNS summary, the violating paths
    (capped at 20 per check), and the tightest endpoints. *)

val describe_startpoint : Netlist.t -> startpoint -> string
val describe_endpoint : Netlist.t -> endpoint -> string
val describe_path : Netlist.t -> path -> string
(** ["$4 -> $7 -> $8 -> $10 (setup, slack -46.0 ps)"]-style rendering. *)
