type startpoint = From_dff of int | From_input of string * int
type endpoint = At_dff of int
type check = Setup | Hold

type path = {
  start : startpoint;
  finish : endpoint;
  through : int list;
  delay_ps : float;
  slack_ps : float;
  check : check;
}

type endpoint_slack = { ep : endpoint; setup_slack_ps : float; hold_slack_ps : float }

type report = {
  clock_period_ps : float;
  endpoint_slacks : endpoint_slack list;
  setup_violations : path list;
  hold_violations : path list;
  wns_setup_ps : float;
  wns_hold_ps : float;
  truncated : bool;
}

type timing_source = {
  cell_delay : Netlist.cell -> Cell.timing;
  dff_timing : Cell.dff_timing;
  clock_arrival_ps : int -> float;
  input_arrival_ps : float;
}

let fresh_timing ?(derate = 1.0) ?(clock_tree = Clock_tree.single_domain) lib =
  let cell_delay (c : Netlist.cell) =
    let t = Cell.Library.timing lib c.kind in
    { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. derate }
  in
  let buf = Cell.Library.timing lib Cell.Kind.Buf in
  let buffer_delay ~sp:_ = buf.Cell.tpd_max_ps *. derate in
  {
    cell_delay;
    dff_timing = Cell.Library.dff lib;
    clock_arrival_ps = (fun dom -> Clock_tree.arrival_ps clock_tree ~buffer_delay dom);
    input_arrival_ps = 0.0;
  }

let aged_timing ?(derate = 1.0) ?(clock_tree = Clock_tree.single_domain) ?toggle_of_net
    ~sp_of_net ~years aglib =
  let celllib = Aging.Timing_library.cell_library aglib in
  let em_factor net =
    match toggle_of_net with
    | None -> 1.0
    | Some f ->
      Aging.em_delay_factor (Aging.Timing_library.config aglib) ~toggle_rate:(f net) ~years
  in
  let cell_delay (c : Netlist.cell) =
    let aged = Aging.Timing_library.aged_timing aglib c.kind ~sp:(sp_of_net c.output) ~years in
    { aged with Cell.tpd_max_ps = aged.Cell.tpd_max_ps *. derate *. em_factor c.output }
  in
  let buf_fresh = Cell.Library.timing celllib Cell.Kind.Buf in
  let buffer_delay ~sp =
    buf_fresh.Cell.tpd_max_ps *. derate *. Aging.Timing_library.factor aglib Cell.Kind.Buf ~sp ~years
  in
  {
    cell_delay;
    dff_timing = Cell.Library.dff celllib;
    clock_arrival_ps = (fun dom -> Clock_tree.arrival_ps clock_tree ~buffer_delay dom);
    input_arrival_ps = 0.0;
  }

(* Maximum and minimum data arrival time at every net, relative to the
   launching clock edge at t = 0 (clock arrivals shift launch times per
   domain). *)
let propagate_arrivals ~constrain_inputs nl timing =
  let n = Netlist.num_nets nl in
  let at_max = Array.make (max n 1) neg_infinity in
  let at_min = Array.make (max n 1) infinity in
  let cells = Netlist.cells nl in
  for net = 0 to n - 1 do
    match Netlist.driver nl net with
    | Netlist.Driven_by_input _ ->
      if constrain_inputs then begin
        at_max.(net) <- timing.input_arrival_ps;
        at_min.(net) <- timing.input_arrival_ps
      end
    | Netlist.Driven_by_cell id when id >= 0 ->
      let c = cells.(id) in
      if Cell.Kind.is_sequential c.kind then begin
        let arr = timing.clock_arrival_ps c.clock_domain in
        at_max.(net) <- arr +. timing.dff_timing.Cell.clk_to_q_max_ps;
        at_min.(net) <- arr +. timing.dff_timing.Cell.clk_to_q_min_ps
      end
    | Netlist.Driven_by_cell _ ->
      (* undriven net (legal when unread, e.g. after Builder rewiring):
         launches no timing path *)
      ()
  done;
  Array.iter
    (fun id ->
      let c = cells.(id) in
      if Array.length c.inputs > 0 then begin
        let d = timing.cell_delay c in
        let mx = Array.fold_left (fun acc i -> Float.max acc at_max.(i)) neg_infinity c.inputs in
        let mn = Array.fold_left (fun acc i -> Float.min acc at_min.(i)) infinity c.inputs in
        at_max.(c.output) <- mx +. d.Cell.tpd_max_ps;
        at_min.(c.output) <- mn +. d.Cell.tpd_min_ps
      end
      (* Tie cells never transition: like unconstrained inputs, they launch
         no timing path (at_max stays -inf, at_min +inf). *))
    (Netlist.topo_order nl);
  (at_max, at_min)

exception Cap_reached

let analyze ?(constrain_inputs = false) ?(max_violating_paths = 10_000) ~timing
    ~clock_period_ps nl =
  let cells = Netlist.cells nl in
  let at_max, at_min = propagate_arrivals ~constrain_inputs nl timing in
  let dff = timing.dff_timing in
  let truncated = ref false in
  let endpoint_slacks =
    List.map
      (fun id ->
        let c = cells.(id) in
        let d_net = c.inputs.(0) in
        let cap_arr = timing.clock_arrival_ps c.clock_domain in
        let setup_slack_ps =
          clock_period_ps +. cap_arr -. dff.Cell.setup_ps -. at_max.(d_net)
        in
        let hold_slack_ps = at_min.(d_net) -. (cap_arr +. dff.Cell.hold_ps) in
        { ep = At_dff id; setup_slack_ps; hold_slack_ps })
      (Netlist.dffs nl)
  in
  (* Backward DFS recovering all violating paths to one endpoint. *)
  let enumerate chk (ep_id : int) acc =
    let c = cells.(ep_id) in
    let cap_arr = timing.clock_arrival_ps c.clock_domain in
    let results = ref acc in
    let count = ref (List.length acc) in
    let record p =
      if !count >= max_violating_paths then begin
        truncated := true;
        raise Cap_reached
      end;
      results := p :: !results;
      incr count
    in
    let source_launch net =
      match Netlist.driver nl net with
      | Netlist.Driven_by_input _ ->
        if constrain_inputs then Some timing.input_arrival_ps else None
      | Netlist.Driven_by_cell id ->
        let src = cells.(id) in
        if Cell.Kind.is_sequential src.kind then
          let arr = timing.clock_arrival_ps src.clock_domain in
          Some
            (match chk with
            | Setup -> arr +. dff.Cell.clk_to_q_max_ps
            | Hold -> arr +. dff.Cell.clk_to_q_min_ps)
        else None
    in
    let startpoint_of net =
      match Netlist.driver nl net with
      | Netlist.Driven_by_input (port, bit) -> From_input (port, bit)
      | Netlist.Driven_by_cell id -> From_dff id
    in
    let required =
      match chk with
      | Setup -> clock_period_ps +. cap_arr -. dff.Cell.setup_ps
      | Hold -> cap_arr +. dff.Cell.hold_ps
    in
    let violates arrival =
      match chk with Setup -> arrival > required | Hold -> arrival < required
    in
    let prune net suffix =
      match chk with
      | Setup -> at_max.(net) +. suffix <= required
      | Hold -> at_min.(net) +. suffix >= required
    in
    let rec visit net suffix through =
      if not (prune net suffix) then begin
        match source_launch net with
        | Some launch ->
          let arrival = launch +. suffix in
          if violates arrival then
            record
              {
                start = startpoint_of net;
                finish = At_dff ep_id;
                through;
                delay_ps = arrival;
                slack_ps =
                  (match chk with
                  | Setup -> required -. arrival
                  | Hold -> arrival -. required);
                check = chk;
              }
        | None ->
          (match Netlist.driver nl net with
          | Netlist.Driven_by_input _ -> ()
          | Netlist.Driven_by_cell id ->
            let g = cells.(id) in
            let d = timing.cell_delay g in
            let step =
              match chk with Setup -> d.Cell.tpd_max_ps | Hold -> d.Cell.tpd_min_ps
            in
            Array.iter (fun i -> visit i (suffix +. step) (id :: through)) g.inputs)
      end
    in
    (try visit c.inputs.(0) 0.0 [] with Cap_reached -> ());
    !results
  in
  let worst_first paths = List.sort (fun a b -> Float.compare a.slack_ps b.slack_ps) paths in
  let collect chk slack_of =
    List.fold_left
      (fun acc es ->
        if slack_of es < 0.0 then
          match es.ep with At_dff id -> enumerate chk id acc
        else acc)
      [] endpoint_slacks
    |> worst_first
  in
  let setup_violations = collect Setup (fun e -> e.setup_slack_ps) in
  let hold_violations = collect Hold (fun e -> e.hold_slack_ps) in
  let wns slack_of =
    List.fold_left (fun acc e -> Float.min acc (slack_of e)) 0.0 endpoint_slacks
  in
  {
    clock_period_ps;
    endpoint_slacks;
    setup_violations;
    hold_violations;
    wns_setup_ps = wns (fun e -> e.setup_slack_ps);
    wns_hold_ps = wns (fun e -> e.hold_slack_ps);
    truncated = !truncated;
  }

(* Exact per-(startpoint, endpoint) worst slacks: for each endpoint, one
   backward DP over its fan-in cone computes the max (resp. min) path delay
   from every net to the endpoint's D pin, from which each launching
   register's worst arrival follows directly.  Unlike path enumeration this
   is immune to path-count explosion. *)
let endpoint_pairs ?(constrain_inputs = false) ?(skip = fun _ _ _ -> false) ~timing
    ~clock_period_ps nl =
  let cells = Netlist.cells nl in
  let dff = timing.dff_timing in
  let results = ref [] in
  let for_check chk =
    List.iter
      (fun ep_id ->
        let ec = cells.(ep_id) in
        let d_net = ec.inputs.(0) in
        let cap_arr = timing.clock_arrival_ps ec.clock_domain in
        let required =
          match chk with
          | Setup -> clock_period_ps +. cap_arr -. dff.Cell.setup_ps
          | Hold -> cap_arr +. dff.Cell.hold_ps
        in
        (* delay from each net to d_net through combinational logic *)
        let memo = Hashtbl.create 64 in
        let worse a b = match chk with Setup -> Float.max a b | Hold -> Float.min a b in
        let neutral = match chk with Setup -> neg_infinity | Hold -> infinity in
        let rec delay_from net =
          match Hashtbl.find_opt memo net with
          | Some d -> d
          | None ->
            let direct = if net = d_net then 0.0 else neutral in
            let through =
              List.fold_left
                (fun acc rid ->
                  let g = cells.(rid) in
                  if Cell.Kind.is_sequential g.kind then acc
                  else begin
                    let d = timing.cell_delay g in
                    let step =
                      match chk with Setup -> d.Cell.tpd_max_ps | Hold -> d.Cell.tpd_min_ps
                    in
                    let tail = delay_from g.output in
                    if Float.is_finite tail then worse acc (step +. tail) else acc
                  end)
                neutral (Netlist.readers nl net)
            in
            let d = worse direct through in
            Hashtbl.replace memo net d;
            d
        in
        let consider start launch net =
          (* Skipped pairs do no DP work at all: when every pair of an
             endpoint is skipped, its fan-in cone is never traversed. *)
          if not (skip start (At_dff ep_id) chk) then begin
            let tail = delay_from net in
            if Float.is_finite tail then begin
              let arrival = launch +. tail in
              let slack =
                match chk with Setup -> required -. arrival | Hold -> arrival -. required
              in
              results := (start, At_dff ep_id, chk, slack) :: !results
            end
          end
        in
        (* launching registers *)
        List.iter
          (fun sid ->
            let sc = cells.(sid) in
            let arr = timing.clock_arrival_ps sc.clock_domain in
            let launch =
              match chk with
              | Setup -> arr +. dff.Cell.clk_to_q_max_ps
              | Hold -> arr +. dff.Cell.clk_to_q_min_ps
            in
            consider (From_dff sid) launch sc.output)
          (Netlist.dffs nl);
        (* primary inputs, when constrained *)
        if constrain_inputs then
          List.iter
            (fun (p : Netlist.port) ->
              Array.iteri
                (fun bit net -> consider (From_input (p.port_name, bit)) timing.input_arrival_ps net)
                p.port_nets)
            (Netlist.inputs nl))
      (Netlist.dffs nl)
  in
  for_check Setup;
  for_check Hold;
  List.rev !results

let violating_pairs ?constrain_inputs ?skip ~timing ~clock_period_ps nl =
  endpoint_pairs ?constrain_inputs ?skip ~timing ~clock_period_ps nl
  |> List.filter (fun (_, _, _, slack) -> slack < 0.0)
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare a b)

let unique_pairs paths =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let key = (p.start, p.finish) in
      match Hashtbl.find_opt tbl key with
      | Some best when best.slack_ps <= p.slack_ps -> ()
      | _ -> Hashtbl.replace tbl key p)
    paths;
  Hashtbl.fold (fun key p acc -> (key, p) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Float.compare a.slack_ps b.slack_ps)

(* Worst path of one pair: rerun the per-endpoint DP of [endpoint_pairs]
   for the one endpoint, then walk forward from the launching net choosing
   at each step a reader that achieves the memoized extremal tail — the
   walk reconstructs an argmax (argmin for hold) path without enumerating
   the cone. *)
let pair_path ?(constrain_inputs = false) ~timing ~clock_period_ps nl start
    (At_dff ep_id) chk =
  let cells = Netlist.cells nl in
  let dff = timing.dff_timing in
  let ec = cells.(ep_id) in
  let d_net = ec.inputs.(0) in
  let cap_arr = timing.clock_arrival_ps ec.clock_domain in
  let required =
    match chk with
    | Setup -> clock_period_ps +. cap_arr -. dff.Cell.setup_ps
    | Hold -> cap_arr +. dff.Cell.hold_ps
  in
  let memo = Hashtbl.create 64 in
  let worse a b = match chk with Setup -> Float.max a b | Hold -> Float.min a b in
  let neutral = match chk with Setup -> neg_infinity | Hold -> infinity in
  let step_of g =
    let d = timing.cell_delay g in
    match chk with Setup -> d.Cell.tpd_max_ps | Hold -> d.Cell.tpd_min_ps
  in
  let rec delay_from net =
    match Hashtbl.find_opt memo net with
    | Some d -> d
    | None ->
      let direct = if net = d_net then 0.0 else neutral in
      let through =
        List.fold_left
          (fun acc rid ->
            let g = cells.(rid) in
            if Cell.Kind.is_sequential g.kind then acc
            else begin
              let tail = delay_from g.output in
              if Float.is_finite tail then worse acc (step_of g +. tail) else acc
            end)
          neutral (Netlist.readers nl net)
      in
      let d = worse direct through in
      Hashtbl.replace memo net d;
      d
  in
  let launch =
    match start with
    | From_dff sid ->
      let sc = cells.(sid) in
      let arr = timing.clock_arrival_ps sc.clock_domain in
      Some
        ( sc.output,
          match chk with
          | Setup -> arr +. dff.Cell.clk_to_q_max_ps
          | Hold -> arr +. dff.Cell.clk_to_q_min_ps )
    | From_input (p, b) ->
      if constrain_inputs then
        Some (Netlist.net_of_port_bit nl p b, timing.input_arrival_ps)
      else None
  in
  match launch with
  | None -> None
  | Some (net0, launch_ps) ->
    let tail = delay_from net0 in
    if not (Float.is_finite tail) then None
    else begin
      let pick net =
        let t = delay_from net in
        List.find_opt
          (fun rid ->
            let g = cells.(rid) in
            (not (Cell.Kind.is_sequential g.kind))
            && Float.is_finite (delay_from g.output)
            && Float.abs (step_of g +. delay_from g.output -. t)
               <= 1e-6 *. (1.0 +. Float.abs t))
          (Netlist.readers nl net)
      in
      let rec walk net acc =
        if net = d_net then List.rev acc
        else
          match pick net with
          | None -> List.rev acc
          | Some rid -> walk cells.(rid).output (rid :: acc)
      in
      let arrival = launch_ps +. tail in
      let slack_ps =
        match chk with Setup -> required -. arrival | Hold -> arrival -. required
      in
      Some
        {
          start;
          finish = At_dff ep_id;
          through = walk net0 [];
          delay_ps = arrival;
          slack_ps;
          check = chk;
        }
    end

let describe_startpoint nl = function
  | From_dff id -> (Netlist.cell nl id).name
  | From_input (port, bit) -> Printf.sprintf "%s[%d]" port bit

let describe_endpoint nl (At_dff id) = (Netlist.cell nl id).name

let describe_path nl p =
  let mid = List.map (fun id -> (Netlist.cell nl id).name) p.through in
  let chain =
    String.concat " -> " ((describe_startpoint nl p.start :: mid) @ [ describe_endpoint nl p.finish ])
  in
  Printf.sprintf "%s (%s, slack %.1f ps)" chain
    (match p.check with Setup -> "setup" | Hold -> "hold")
    p.slack_ps

let render_report nl r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Timing report (clock period %.1f ps)\n" r.clock_period_ps;
  add "  endpoints: %d   setup WNS: %.1f ps   hold WNS: %.1f ps%s\n"
    (List.length r.endpoint_slacks) r.wns_setup_ps r.wns_hold_ps
    (if r.truncated then "   [path enumeration truncated]" else "");
  let show title paths =
    add "  %s violations: %d\n" title (List.length paths);
    List.iteri
      (fun i p -> if i < 20 then add "    %s\n" (describe_path nl p))
      paths;
    if List.length paths > 20 then add "    ... (%d more)\n" (List.length paths - 20)
  in
  show "setup" r.setup_violations;
  show "hold" r.hold_violations;
  let worst =
    List.sort
      (fun a b -> Float.compare a.setup_slack_ps b.setup_slack_ps)
      r.endpoint_slacks
  in
  add "  tightest endpoints (setup slack):\n";
  List.iteri
    (fun i es ->
      if i < 8 then
        add "    %-12s setup %8.1f ps   hold %s\n" (describe_endpoint nl es.ep)
          es.setup_slack_ps
          (if Float.is_finite es.hold_slack_ps then Printf.sprintf "%8.1f ps" es.hold_slack_ps
           else "unconstrained"))
    worst;
  Buffer.contents buf
