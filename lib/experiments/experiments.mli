(** One driver per table and figure of the paper's evaluation.

    Every experiment returns structured rows plus a paper-style textual
    rendering; [bench/main.exe] prints them all.  The heavyweight shared
    state (the full ALU and FPU workflow runs) lives in a {!context},
    computed once and reused by Tables 3–7 and Fig. 9.

    Expected fidelity is *shape*, not absolute numbers (see DESIGN.md and
    EXPERIMENTS.md): who wins, rough magnitudes, where the crossovers are. *)

type config = {
  alu_width : int;
  fpu_fmt : Fpu_format.fmt;
  alu_margin : float;  (** phase-1 clock margin for the ALU *)
  fpu_margin : float;
  path_cap : int;  (** violating-path enumeration cap for Table 3 *)
  table7_runs : int;  (** random-suite repetitions (the paper uses 10) *)
  fig9_threshold : float;  (** overhead budget of profile-guided integration *)
  lift_max_conflicts : int;
}

val default_config : config
(** ALU32 @ 1.005 margin, binary16 FPU @ 1.046, 50k path cap, 10 runs. *)

val quick_config : config
(** A reduced configuration for fast smoke runs (fewer Table 7 runs, lower
    path cap). *)

type context

val make_context : ?config:config -> ?log:(string -> unit) -> unit -> context
(** Runs phases one and two for both units (with and without the §3.3.4
    mitigation).  [log] receives progress lines. *)

val context_config : context -> config
val alu_report : context -> Vega.workflow_report
val fpu_report : context -> Vega.workflow_report
val alu_report_mitigated : context -> Vega.workflow_report
val fpu_report_mitigated : context -> Vega.workflow_report

(** {1 Figure 4 — delay degradation of a XOR cell vs SP over 10 years} *)

type fig4 = { sp_series : (float * (float * float) list) list }
(** Per SP value: (years, % max-delay increase) samples. *)

val fig4 : unit -> fig4
val render_fig4 : fig4 -> string

(** {1 Table 1 — SP profile of the Section-3 example adder} *)

val table1 : unit -> (string * float) list
val render_table1 : (string * float) list -> string

(** {1 Table 2 — formal trace for the example's instrumented failure} *)

val table2 : unit -> Formal.Trace.t
val render_table2 : Formal.Trace.t -> string

(** {1 Figure 8 — distribution of aging-induced delay increase} *)

type fig8_bucket = { lo_pct : float; hi_pct : float; alu_frac : float; fpu_frac : float }

val fig8 : context -> fig8_bucket list
val render_fig8 : fig8_bucket list -> string

(** {1 Table 3 — aging-aware STA results} *)

type table3_row = {
  t3_unit : string;
  setup_wns_ps : float;
  setup_paths : int;
  setup_paths_capped : bool;
  hold_wns_ps : float;
  hold_paths : int;
  unique_pairs : int;
}

val table3 : context -> table3_row list
val render_table3 : table3_row list -> string

(** {1 Table 4 — test-case construction outcomes} *)

type table4_row = {
  t4_unit : string;
  without : (Lift.classification * float) list;  (** percentages over pairs *)
  with_mitigation : (Lift.classification * float) list;
}

val table4 : context -> table4_row list
val render_table4 : table4_row list -> string

(** Table 4 under the {!Resilience} supervisor: lifting re-run with a
    deliberately small per-pair conflict slice, so the FF bucket the paper
    reports appears and the degradation ladder splits it into
    fallback-covered vs. truly exhausted pairs. *)
type table4s_row = {
  t4s_unit : string;
  t4s_counts : (Resilience.split_class * int) list;
  t4s_budget_spent : int;
  t4s_escalations : int;
}

val table4_resilient : ?slice:int -> context -> table4s_row list
(** [slice] (default 2 conflicts — starvation level, so the FF bucket
    actually appears) is the first-pass per-pair budget. *)

val render_table4_resilient : table4s_row list -> string

(** {1 Table 5 — suite sizes and execution cycles} *)

type table5_row = {
  t5_unit : string;
  cases_without : int;
  cycles_without : int;
  cases_with : int;
  cycles_with : int;
}

val table5 : context -> table5_row list
val render_table5 : table5_row list -> string

(** {1 Table 6 — detection quality against failing netlists} *)

type fm = FM0 | FM1 | FMR

val fm_name : fm -> string

type table6_row = {
  t6_unit : string;
  t6_fm : fm;
  t6_mitigated : bool;
  detected_pct : float;
  before_pct : float;  (** "B": found by an earlier test than its own *)
  late_pct : float;  (** "L": missed by its own test, found later *)
  stall_pct : float;  (** "S": detected as a CPU stall *)
}

val table6 : context -> table6_row list
val render_table6 : table6_row list -> string

(** {1 Table 7 — Vega vs random test suites} *)

type table7_row = { t7_unit : string; t7_fm : fm; vega_pct : float; random_pct : float }

val table7 : context -> table7_row list
val render_table7 : table7_row list -> string

(** {1 Figure 9 — overhead of profile-guided test integration} *)

type fig9_row = {
  bench_name : string;
  baseline_cycles : int;
  overhead_without_pct : float;  (** "-N": suite built without mitigation *)
  overhead_with_pct : float;  (** "-M": suite built with mitigation *)
  chosen_block : string;
  gated : bool;
}

val fig9 : context -> fig9_row list
val render_fig9 : fig9_row list -> string

val fig9_mean_overheads : fig9_row list -> float * float
(** Mean (-N, -M) overhead percentages across benchmarks. *)

(** {1 Guard campaign — runtime fault-injection under the closed loop}

    The runtime extension of Table 6: each selected phase-2 fault spec is
    injected {e mid-run} ({!Guard.Injector}) into kernels executing under
    {!Guard.Monitor}, once per recovery policy plus an unguarded baseline,
    tabulating detection latency, SDC escape rate, recovery success, and
    guard overhead.  Fully deterministic for a fixed seed. *)

type campaign_config = {
  cg_width : int;
  cg_fmt : Fpu_format.fmt;
  cg_kernels : string list;  (** [[]] = every [Workload.all] kernel *)
  cg_specs_per_unit : int;
      (** lift worst-slack violating pairs until this many yield cases *)
  cg_constants : Fault.constant list;  (** failure models per spec *)
  cg_onset_frac : float;
      (** fault onset as a fraction of the kernel's golden instruction
          count *)
  cg_seed : int;  (** machine RNG seed (C_random faults, shuffles) *)
  cg_guard : Guard.Monitor.config;  (** policy field overridden per mode *)
  cg_checkpoint_every : int;
  cg_max_retries : int;
}

val default_campaign : campaign_config
(** Every kernel, every phase-2 spec, all three failure models — the full
    sweep (slow). *)

val quick_campaign : campaign_config
(** crc + nbody, two specs per unit, C=0 and C=1 — the CI smoke
    configuration (C=0 faults tend to corrupt silently, C=1 faults tend
    to hang loops). *)

type campaign_row = {
  cr_kernel : string;
  cr_unit : string;
  cr_spec : string;
  cr_mode : string;  (** "unguarded", "abort", "failover", or "rollback" *)
  cr_outcome : string;
  cr_detected : bool;
  cr_latency : (int * int) option;
      (** (instructions, cycles) from fault onset to first detection *)
  cr_checksum_ok : bool;  (** final checksum matches the golden run *)
  cr_escape : bool;
      (** silent corruption: clean exit, checksum mismatch, no detection *)
  cr_recovered : bool;
  cr_retries : int;
  cr_overhead_pct : float;  (** guard cycles as % of app cycles *)
}

val campaign_digest : campaign_config -> string
(** Staleness key for campaign checkpoints: any knob that changes the rows
    changes the digest. *)

val campaign_row_to_json : campaign_row -> Json.t
val campaign_row_of_json : Json.t -> (campaign_row, string) result

val campaign :
  ?config:campaign_config ->
  ?log:(string -> unit) ->
  ?checkpoint:Resilience.Checkpoint.t ->
  unit ->
  campaign_row list
(** [checkpoint] (opened against {!campaign_digest}) makes the sweep
    resumable at two granularities: each unit's error-lifting selection,
    and each fault spec's four runs (unguarded + three policies) per
    kernel.  Completed items are restored instead of re-executed; the row
    list is identical either way. *)

type campaign_summary = {
  cs_rows : int;
  cs_unguarded_rows : int;
  cs_unguarded_escapes : int;
  cs_guarded_rows : int;
  cs_guarded_escapes : int;
  cs_guarded_detected : int;
  cs_rollback_rows : int;
  cs_rollback_checksum_ok : int;
}

val campaign_summary : campaign_row list -> campaign_summary
val render_campaign : campaign_row list -> string

(** {1 Adversarial wearout campaign — attack-aged corners and canary monitors}

    The robustness counterpart of the guard campaign: an adversarial
    workload ({!Attack.search}) ages the ALU's worst paths past the
    violating corner early, and the guard's canary poll channel
    ({!Canary}, {!Guard.Monitor}) is measured against the software-only
    test schedule at the resulting attack-aged corner.  Fully
    deterministic for a fixed configuration. *)

type attack_campaign_config = {
  ak_width : int;  (** ALU width; the campaign's single target unit *)
  ak_kernels : string list;  (** [[]] = every [Workload.all] kernel *)
  ak_specs : int;  (** fault specs lifted from the attack-aged corner *)
  ak_constants : Fault.constant list;
  ak_onset_frac : float;
  ak_seed : int;  (** machine RNG seed for the guard phase *)
  ak_attack : Attack.config;  (** search budget, seed, engine *)
  ak_cells : string list;  (** [[]] = {!Attack.default_targets} *)
  ak_years_max : float;  (** TTV bisection horizon *)
  ak_ttv_precision : float;
  ak_canary_count : int;
  ak_canary_pessimism : float;  (** canary guardband (see {!Canary.plan}) *)
  ak_canary_poll : int;  (** trip-port poll cadence (app instructions) *)
  ak_guard : Guard.Monitor.config;
}

val default_attack_campaign : attack_campaign_config
(** Width-16 ALU, every kernel, two specs, C=0 and C=1, a 48-op/24-iter
    search — the full sweep. *)

val quick_attack_campaign : attack_campaign_config
(** crc only, one spec, C=0, a 32-op/12-iter search — the CI smoke
    configuration. *)

val attack_campaign_cells : attack_campaign_config -> string list
(** The resolved victim-cell set ([ak_cells], or {!Attack.default_targets}
    of the configured ALU when empty) — the set the digest commits to. *)

val attack_campaign_digest : attack_campaign_config -> string
(** Staleness key for attack-campaign checkpoints.  Commits to the
    resolved target-cell set, the search seed and budget, the corner
    parameters (horizon, precision, canary guardband and poll cadence)
    and the guard knobs — any change invalidates a resume. *)

type attack_row = {
  ar_kernel : string;
  ar_spec : string;
  ar_mode : string;  (** "unguarded", "sw-only" or "sw+canary" *)
  ar_outcome : string;
  ar_detected : bool;
  ar_detected_by : string;  (** "canary", "test", "watchdog" or "-" *)
  ar_latency : (int * int) option;
      (** (instructions, cycles) from fault onset to first detection *)
  ar_checksum_ok : bool;
  ar_escape : bool;
  ar_polls : int;  (** canary trip-port reads the guard performed *)
  ar_overhead_pct : float;
}

val attack_row_to_json : attack_row -> Json.t
val attack_row_of_json : Json.t -> (attack_row, string) result

type attack_report = {
  ap_cells : Attack.cell_stress list;  (** per-victim SP shift *)
  ap_baseline_obj : float;  (** stress-duty objective, random baseline *)
  ap_attacked_obj : float;  (** stress-duty objective, winning stream *)
  ap_evals : int;
  ap_sat_patterns : int;
  ap_samples : int;
  ap_fresh_crit_ps : float;
  ap_clock_period_ps : float;
      (** guard clock: halfway between the fresh critical path and the
          fully-attacked arrival, so fresh timing closes and the attacked
          corner violates within the horizon *)
  ap_ttv_nominal : float option;  (** [None]: clean at the horizon *)
  ap_ttv_attack : float option;
  ap_acceleration : float option;  (** ttv nominal / ttv attack *)
  ap_canaries : Canary.canary list;
  ap_rows : attack_row list;
}

val attack_campaign :
  ?config:attack_campaign_config ->
  ?log:(string -> unit) ->
  ?checkpoint:Resilience.Checkpoint.t ->
  unit ->
  attack_report
(** Run the campaign: search, TTV bisection under the attacked and the
    nominal (minver-workload) corners, canary insertion
    (CEC-proved inert via {!Canary.verify} — the campaign aborts on a
    failing proof), error lifting at the attack-aged corner, then the
    guard comparison (unguarded / software-tests-only / software+canary)
    per kernel and fault spec.  [checkpoint] (opened against
    {!attack_campaign_digest}) makes it resumable at three granularities:
    the attack corner (search + bisections), the lifting selection, and
    each fault spec's three runs per kernel.
    @raise Failure if a golden kernel run or the canary proof fails. *)

type attack_summary = {
  as_unguarded_rows : int;
  as_unguarded_escapes : int;
  as_sw_rows : int;
  as_sw_detected : int;
  as_sw_escapes : int;
  as_canary_rows : int;
  as_canary_detected : int;
  as_canary_escapes : int;
  as_canary_first : int;
      (** sw+canary rows whose first detection was the trip port *)
  as_latency_pairs : int;
      (** (kernel, spec) pairs with a latency in both guarded modes *)
  as_canary_wins : int;
      (** pairs where the canary latency <= the software-test latency *)
}

val attack_summary : attack_row list -> attack_summary

val render_attack_campaign : ?years_max:float -> attack_report -> string
(** Deterministic table (the CI-diffed artifact); [years_max] (default
    30) only affects how a clean-at-horizon TTV prints. *)

(** {1 Everything} *)

val run_all : ?config:config -> ?log:(string -> unit) -> unit -> string
(** Regenerate every table and figure; returns the full report text. *)
