(** One driver per table and figure of the paper's evaluation.

    Every experiment returns structured rows plus a paper-style textual
    rendering; [bench/main.exe] prints them all.  The heavyweight shared
    state (the full ALU and FPU workflow runs) lives in a {!context},
    computed once and reused by Tables 3–7 and Fig. 9.

    Expected fidelity is *shape*, not absolute numbers (see DESIGN.md and
    EXPERIMENTS.md): who wins, rough magnitudes, where the crossovers are. *)

type config = {
  alu_width : int;
  fpu_fmt : Fpu_format.fmt;
  alu_margin : float;  (** phase-1 clock margin for the ALU *)
  fpu_margin : float;
  path_cap : int;  (** violating-path enumeration cap for Table 3 *)
  table7_runs : int;  (** random-suite repetitions (the paper uses 10) *)
  fig9_threshold : float;  (** overhead budget of profile-guided integration *)
  lift_max_conflicts : int;
}

val default_config : config
(** ALU32 @ 1.005 margin, binary16 FPU @ 1.046, 50k path cap, 10 runs. *)

val quick_config : config
(** A reduced configuration for fast smoke runs (fewer Table 7 runs, lower
    path cap). *)

type context

val make_context : ?config:config -> ?log:(string -> unit) -> unit -> context
(** Runs phases one and two for both units (with and without the §3.3.4
    mitigation).  [log] receives progress lines. *)

val context_config : context -> config
val alu_report : context -> Vega.workflow_report
val fpu_report : context -> Vega.workflow_report
val alu_report_mitigated : context -> Vega.workflow_report
val fpu_report_mitigated : context -> Vega.workflow_report

(** {1 Figure 4 — delay degradation of a XOR cell vs SP over 10 years} *)

type fig4 = { sp_series : (float * (float * float) list) list }
(** Per SP value: (years, % max-delay increase) samples. *)

val fig4 : unit -> fig4
val render_fig4 : fig4 -> string

(** {1 Table 1 — SP profile of the Section-3 example adder} *)

val table1 : unit -> (string * float) list
val render_table1 : (string * float) list -> string

(** {1 Table 2 — formal trace for the example's instrumented failure} *)

val table2 : unit -> Formal.Trace.t
val render_table2 : Formal.Trace.t -> string

(** {1 Figure 8 — distribution of aging-induced delay increase} *)

type fig8_bucket = { lo_pct : float; hi_pct : float; alu_frac : float; fpu_frac : float }

val fig8 : context -> fig8_bucket list
val render_fig8 : fig8_bucket list -> string

(** {1 Table 3 — aging-aware STA results} *)

type table3_row = {
  t3_unit : string;
  setup_wns_ps : float;
  setup_paths : int;
  setup_paths_capped : bool;
  hold_wns_ps : float;
  hold_paths : int;
  unique_pairs : int;
}

val table3 : context -> table3_row list
val render_table3 : table3_row list -> string

(** {1 Table 4 — test-case construction outcomes} *)

type table4_row = {
  t4_unit : string;
  without : (Lift.classification * float) list;  (** percentages over pairs *)
  with_mitigation : (Lift.classification * float) list;
}

val table4 : context -> table4_row list
val render_table4 : table4_row list -> string

(** Table 4 under the {!Resilience} supervisor: lifting re-run with a
    deliberately small per-pair conflict slice, so the FF bucket the paper
    reports appears and the degradation ladder splits it into
    fallback-covered vs. truly exhausted pairs. *)
type table4s_row = {
  t4s_unit : string;
  t4s_counts : (Resilience.split_class * int) list;
  t4s_budget_spent : int;
  t4s_escalations : int;
}

val table4_resilient : ?slice:int -> context -> table4s_row list
(** [slice] (default 2 conflicts — starvation level, so the FF bucket
    actually appears) is the first-pass per-pair budget. *)

val render_table4_resilient : table4s_row list -> string

(** {1 Table 5 — suite sizes and execution cycles} *)

type table5_row = {
  t5_unit : string;
  cases_without : int;
  cycles_without : int;
  cases_with : int;
  cycles_with : int;
}

val table5 : context -> table5_row list
val render_table5 : table5_row list -> string

(** {1 Table 6 — detection quality against failing netlists} *)

type fm = FM0 | FM1 | FMR

val fm_name : fm -> string

type table6_row = {
  t6_unit : string;
  t6_fm : fm;
  t6_mitigated : bool;
  detected_pct : float;
  before_pct : float;  (** "B": found by an earlier test than its own *)
  late_pct : float;  (** "L": missed by its own test, found later *)
  stall_pct : float;  (** "S": detected as a CPU stall *)
}

val table6 : context -> table6_row list
val render_table6 : table6_row list -> string

(** {1 Table 7 — Vega vs random test suites} *)

type table7_row = { t7_unit : string; t7_fm : fm; vega_pct : float; random_pct : float }

val table7 : context -> table7_row list
val render_table7 : table7_row list -> string

(** {1 Figure 9 — overhead of profile-guided test integration} *)

type fig9_row = {
  bench_name : string;
  baseline_cycles : int;
  overhead_without_pct : float;  (** "-N": suite built without mitigation *)
  overhead_with_pct : float;  (** "-M": suite built with mitigation *)
  chosen_block : string;
  gated : bool;
}

val fig9 : context -> fig9_row list
val render_fig9 : fig9_row list -> string

val fig9_mean_overheads : fig9_row list -> float * float
(** Mean (-N, -M) overhead percentages across benchmarks. *)

(** {1 Guard campaign — runtime fault-injection under the closed loop}

    The runtime extension of Table 6: each selected phase-2 fault spec is
    injected {e mid-run} ({!Guard.Injector}) into kernels executing under
    {!Guard.Monitor}, once per recovery policy plus an unguarded baseline,
    tabulating detection latency, SDC escape rate, recovery success, and
    guard overhead.  Fully deterministic for a fixed seed. *)

type campaign_config = {
  cg_width : int;
  cg_fmt : Fpu_format.fmt;
  cg_kernels : string list;  (** [[]] = every [Workload.all] kernel *)
  cg_specs_per_unit : int;
      (** lift worst-slack violating pairs until this many yield cases *)
  cg_constants : Fault.constant list;  (** failure models per spec *)
  cg_onset_frac : float;
      (** fault onset as a fraction of the kernel's golden instruction
          count *)
  cg_seed : int;  (** machine RNG seed (C_random faults, shuffles) *)
  cg_guard : Guard.Monitor.config;  (** policy field overridden per mode *)
  cg_checkpoint_every : int;
  cg_max_retries : int;
}

val default_campaign : campaign_config
(** Every kernel, every phase-2 spec, all three failure models — the full
    sweep (slow). *)

val quick_campaign : campaign_config
(** crc + nbody, two specs per unit, C=0 and C=1 — the CI smoke
    configuration (C=0 faults tend to corrupt silently, C=1 faults tend
    to hang loops). *)

type campaign_row = {
  cr_kernel : string;
  cr_unit : string;
  cr_spec : string;
  cr_mode : string;  (** "unguarded", "abort", "failover", or "rollback" *)
  cr_outcome : string;
  cr_detected : bool;
  cr_latency : (int * int) option;
      (** (instructions, cycles) from fault onset to first detection *)
  cr_checksum_ok : bool;  (** final checksum matches the golden run *)
  cr_escape : bool;
      (** silent corruption: clean exit, checksum mismatch, no detection *)
  cr_recovered : bool;
  cr_retries : int;
  cr_overhead_pct : float;  (** guard cycles as % of app cycles *)
}

val campaign_digest : campaign_config -> string
(** Staleness key for campaign checkpoints: any knob that changes the rows
    changes the digest. *)

val campaign_row_to_json : campaign_row -> Json.t
val campaign_row_of_json : Json.t -> (campaign_row, string) result

val campaign :
  ?config:campaign_config ->
  ?log:(string -> unit) ->
  ?checkpoint:Resilience.Checkpoint.t ->
  unit ->
  campaign_row list
(** [checkpoint] (opened against {!campaign_digest}) makes the sweep
    resumable at two granularities: each unit's error-lifting selection,
    and each fault spec's four runs (unguarded + three policies) per
    kernel.  Completed items are restored instead of re-executed; the row
    list is identical either way. *)

type campaign_summary = {
  cs_rows : int;
  cs_unguarded_rows : int;
  cs_unguarded_escapes : int;
  cs_guarded_rows : int;
  cs_guarded_escapes : int;
  cs_guarded_detected : int;
  cs_rollback_rows : int;
  cs_rollback_checksum_ok : int;
}

val campaign_summary : campaign_row list -> campaign_summary
val render_campaign : campaign_row list -> string

(** {1 Adversarial wearout campaign — attack-aged corners and canary monitors}

    The robustness counterpart of the guard campaign: an adversarial
    workload ({!Attack.search}) ages the ALU's worst paths past the
    violating corner early, and the guard's canary poll channel
    ({!Canary}, {!Guard.Monitor}) is measured against the software-only
    test schedule at the resulting attack-aged corner.  Fully
    deterministic for a fixed configuration. *)

type attack_campaign_config = {
  ak_width : int;  (** ALU width; the campaign's single target unit *)
  ak_kernels : string list;  (** [[]] = every [Workload.all] kernel *)
  ak_specs : int;  (** fault specs lifted from the attack-aged corner *)
  ak_constants : Fault.constant list;
  ak_onset_frac : float;
  ak_seed : int;  (** machine RNG seed for the guard phase *)
  ak_attack : Attack.config;  (** search budget, seed, engine *)
  ak_cells : string list;  (** [[]] = {!Attack.default_targets} *)
  ak_years_max : float;  (** TTV bisection horizon *)
  ak_ttv_precision : float;
  ak_canary_count : int;
  ak_canary_pessimism : float;  (** canary guardband (see {!Canary.plan}) *)
  ak_canary_poll : int;  (** trip-port poll cadence (app instructions) *)
  ak_guard : Guard.Monitor.config;
}

val default_attack_campaign : attack_campaign_config
(** Width-16 ALU, every kernel, two specs, C=0 and C=1, a 48-op/24-iter
    search — the full sweep. *)

val quick_attack_campaign : attack_campaign_config
(** crc only, one spec, C=0, a 32-op/12-iter search — the CI smoke
    configuration. *)

val attack_campaign_cells : ?netlist:Netlist.t -> attack_campaign_config -> string list
(** The resolved victim-cell set ([ak_cells], or {!Attack.default_targets}
    of the configured ALU — or of [netlist] when given — when empty) —
    the set the digest commits to. *)

val attack_campaign_digest : ?netlist:Netlist.t -> attack_campaign_config -> string
(** Staleness key for attack-campaign checkpoints.  Commits to the
    resolved target-cell set, the search seed and budget, the corner
    parameters (horizon, precision, canary guardband and poll cadence),
    the guard knobs and the substituted [netlist] (e.g. a
    {!Repair}-hardened ALU) when given — any change invalidates a
    resume. *)

type attack_row = {
  ar_kernel : string;
  ar_spec : string;
  ar_mode : string;  (** "unguarded", "sw-only" or "sw+canary" *)
  ar_outcome : string;
  ar_detected : bool;
  ar_detected_by : string;  (** "canary", "test", "watchdog" or "-" *)
  ar_latency : (int * int) option;
      (** (instructions, cycles) from fault onset to first detection *)
  ar_checksum_ok : bool;
  ar_escape : bool;
  ar_polls : int;  (** canary trip-port reads the guard performed *)
  ar_overhead_pct : float;
}

val attack_row_to_json : attack_row -> Json.t
val attack_row_of_json : Json.t -> (attack_row, string) result

type attack_report = {
  ap_cells : Attack.cell_stress list;  (** per-victim SP shift *)
  ap_baseline_obj : float;  (** stress-duty objective, random baseline *)
  ap_attacked_obj : float;  (** stress-duty objective, winning stream *)
  ap_evals : int;
  ap_sat_patterns : int;
  ap_samples : int;
  ap_fresh_crit_ps : float;
  ap_clock_period_ps : float;
      (** guard clock: halfway between the fresh critical path and the
          fully-attacked arrival, so fresh timing closes and the attacked
          corner violates within the horizon *)
  ap_ttv_nominal : float option;  (** [None]: clean at the horizon *)
  ap_ttv_attack : float option;
  ap_acceleration : float option;  (** ttv nominal / ttv attack *)
  ap_canaries : Canary.canary list;
  ap_rows : attack_row list;
}

val attack_campaign :
  ?config:attack_campaign_config ->
  ?netlist:Netlist.t ->
  ?log:(string -> unit) ->
  ?checkpoint:Resilience.Checkpoint.t ->
  unit ->
  attack_report
(** Run the campaign: search, TTV bisection under the attacked and the
    nominal (minver-workload) corners, canary insertion
    (CEC-proved inert via {!Canary.verify} — the campaign aborts on a
    failing proof), error lifting at the attack-aged corner, then the
    guard comparison (unguarded / software-tests-only / software+canary)
    per kernel and fault spec.  [checkpoint] (opened against
    {!attack_campaign_digest}) makes it resumable at three granularities:
    the attack corner (search + bisections), the lifting selection, and
    each fault spec's three runs per kernel.
    @raise Failure if a golden kernel run or the canary proof fails. *)

type attack_summary = {
  as_unguarded_rows : int;
  as_unguarded_escapes : int;
  as_sw_rows : int;
  as_sw_detected : int;
  as_sw_escapes : int;
  as_canary_rows : int;
  as_canary_detected : int;
  as_canary_escapes : int;
  as_canary_first : int;
      (** sw+canary rows whose first detection was the trip port *)
  as_latency_pairs : int;
      (** (kernel, spec) pairs with a latency in both guarded modes *)
  as_canary_wins : int;
      (** pairs where the canary latency <= the software-test latency *)
}

val attack_summary : attack_row list -> attack_summary

val render_attack_campaign : ?years_max:float -> attack_report -> string
(** Deterministic table (the CI-diffed artifact); [years_max] (default
    30) only affects how a clean-at-horizon TTV prints. *)

(** {1 Fleet campaign — a device population through the domain pool}

    N devices, each with a seeded (temperature, Vdd, workload-kernel)
    aging corner, all shipping the one deployed test suite — lifted at
    the worst fleet corner (hottest, highest Vdd, full service life),
    because a fleet ships one test binary.  Per device: find the lifetime-grid onset of timing
    violations under its corner, inject the capture faults at the onset
    pair, and check detection by the deployed suite.  Devices run
    through {!Fleet.run}, so rows are bit-identical across domain
    counts and kill/resume, and a persistently failing device is
    quarantined rather than fatal. *)

type fleet_config = {
  fd_width : int;  (** ALU width of the analyzed unit *)
  fd_devices : int;  (** population size *)
  fd_seed : int;  (** master seed: corners and per-device item seeds *)
  fd_margin : float;  (** clock margin of the shared phase-1 analysis *)
  fd_specs : int;  (** violating pairs lifted into the deployed suite *)
  fd_constants : Fault.constant list;  (** capture constants injected *)
  fd_engine : Lift.engine;  (** detection-sweep backend *)
  fd_years_max : float;
  fd_year_steps : int;  (** lifetime grid: step i = i/steps * years_max *)
  fd_temp_min_k : float;  (** corner distribution bounds *)
  fd_temp_max_k : float;
  fd_vdd_min : float;
  fd_vdd_max : float;
  fd_kernels : string list;  (** workload pool ([[]] = all benchmarks) *)
  fd_poison : int list;  (** device ids forced to fail (quarantine drill) *)
  fd_max_attempts : int;  (** fleet retry budget per device *)
  fd_timeout_s : float option;  (** fleet soft per-device timeout *)
}

val default_fleet : fleet_config
(** 64 devices, alu16, 4 specs, sim64 engine, 10 lifetime steps over 10
    years, T in 330..420 K, Vdd in 0.9..1.1, all kernels. *)

val quick_fleet : fleet_config
(** 24 devices, alu8, 2 specs, 8 steps, 3 kernels — the CI smoke size. *)

type device_corner = {
  dc_device : int;
  dc_temp_k : float;
  dc_vdd : float;
  dc_kernel : string;
}

val fleet_corners : fleet_config -> device_corner list
(** The seeded corner draw: deterministic in (seed, device id),
    independent of the device count. *)

type fleet_row = {
  dv_device : int;
  dv_temp_k : float;
  dv_vdd : float;
  dv_kernel : string;
  dv_onset_idx : int option;
      (** first violating lifetime-grid index (1-based); [None] = clean
          at horizon *)
  dv_worst_pair : string;  (** "start~end~violation", or "-" *)
  dv_specs : int;  (** fault specs injected at the onset pair *)
  dv_detected : int;  (** specs the deployed suite detects *)
  dv_escape : bool;  (** some injected corruption escapes the suite *)
  dv_latency_cycles : int option;
      (** worst detection latency over detected specs, in deployed-suite
          cycles from suite start *)
}

val fleet_years : fleet_config -> int -> float
(** Years at lifetime-grid index [i]. *)

val fleet_digest : ?netlist:Netlist.t -> fleet_config -> string
(** Checkpoint digest; deliberately excludes the domain count and the
    retry/timeout knobs, so a run killed at [--domains 4] resumes at
    [--domains 1].  Commits to the substituted [netlist] when given. *)

val fleet_row_to_json : fleet_row -> Json.t
val fleet_row_of_json : Json.t -> (fleet_row, string) result

val fleet_eval :
  config:fleet_config ->
  clock_period_ps:float ->
  nl:Netlist.t ->
  sp_by_kernel:(string * (Netlist.net -> float)) list ->
  suite:Lift.suite ->
  case_prefix_cycles:int array ->
  seed:int ->
  device_corner ->
  fleet_row
(** One device's evaluation — a pure function of (seed, corner) and the
    shared read-only context; raises on a poisoned device.  Exposed for
    the determinism tests. *)

type fleet_point = {
  fp_years : float;
  fp_violated : int;  (** devices whose onset is at or before this year *)
  fp_detected : int;  (** of those, fully detected by the suite *)
  fp_escaped : int;
  fp_mean_latency : float option;  (** mean latency over detected devices *)
}

type fleet_report = {
  fe_config : fleet_config;
  fe_clock_period_ps : float;
  fe_suite_cases : int;
  fe_results : (device_corner * (fleet_row, string) result) list;
      (** device order; [Error] is the quarantine message *)
  fe_curve : fleet_point list;  (** one point per lifetime-grid step *)
  fe_stats : Fleet.stats;
}

val fleet_campaign :
  ?config:fleet_config ->
  ?netlist:Netlist.t ->
  ?domains:int ->
  ?log:(string -> unit) ->
  ?checkpoint:Resilience.Checkpoint.sharded ->
  unit ->
  fleet_report
(** Run the population.  Rows and curve are bit-identical for any
    [domains] >= 1 and across kill/resume against the same sharded
    checkpoint (open it with {!fleet_digest}); only [fe_stats] may
    differ.  The deployed suite is checkpointed in shard 0 under
    ["fleet~lift"].  [netlist] substitutes a pre-repaired ALU netlist
    (see {!Vega.repair}) for the stock one — ports and register names
    must match the configured width. *)

val render_fleet : fleet_report -> string
(** Deterministic rendering (per-device rows, population curve,
    summary).  Wall-clock health — steals, re-dispatches, checkpoint
    hits — is deliberately absent: CI diffs this output across domain
    counts and kill/resume. *)

(** {1 Everything} *)

val run_all : ?config:config -> ?log:(string -> unit) -> unit -> string
(** Regenerate every table and figure; returns the full report text. *)
