type config = {
  alu_width : int;
  fpu_fmt : Fpu_format.fmt;
  alu_margin : float;
  fpu_margin : float;
  path_cap : int;
  table7_runs : int;
  fig9_threshold : float;
  lift_max_conflicts : int;
}

let default_config =
  {
    alu_width = 32;
    fpu_fmt = Fpu_format.binary16;
    alu_margin = 1.005;
    fpu_margin = 1.046;
    path_cap = 50_000;
    table7_runs = 10;
    fig9_threshold = 0.02;
    lift_max_conflicts = 200_000;
  }

let quick_config = { default_config with path_cap = 5_000; table7_runs = 3 }

type context = {
  cfg : config;
  log : string -> unit;
  alu_analysis : Vega.analysis;
  fpu_analysis : Vega.analysis;
  alu_nomit : Vega.workflow_report;
  alu_mit : Vega.workflow_report;
  fpu_nomit : Vega.workflow_report;
  fpu_mit : Vega.workflow_report;
}

let context_config c = c.cfg
let alu_report c = c.alu_nomit
let fpu_report c = c.fpu_nomit
let alu_report_mitigated c = c.alu_mit
let fpu_report_mitigated c = c.fpu_mit

(* The representative workload of phase one: the minver kernel, compiled
   for the machine's word width (paper Section 4). *)
let minver_workload m =
  let width = (Machine.config m).Machine.width in
  let fmt = (Machine.config m).Machine.fmt in
  let compiled = Minic.compile ~width ~fmt Workload.minver.Workload.program in
  Machine.reset m;
  ignore (Machine.run ~max_instructions:3_000_000 m (Minic.assemble compiled))

let make_report analysis lift_config =
  let pair_results = Vega.error_lifting ~config:lift_config analysis in
  let suite = Lift.suite_of_results analysis.Vega.target.Lift.kind pair_results in
  {
    Vega.analysis;
    pair_results;
    suite;
    suite_cycles = Vega.suite_cycles suite;
  }

let make_context ?(config = default_config) ?(log = fun _ -> ()) () =
  let phase1 margin =
    { Vega.default_phase1 with Vega.clock_margin = margin; max_violating_paths = config.path_cap }
  in
  let lift_cfg mitigation =
    { Lift.default_config with Lift.mitigation; max_conflicts = config.lift_max_conflicts }
  in
  log "phase 1: ALU aging analysis (profiling minver on the gate-level ALU)";
  let alu_target = Lift.alu_target ~width:config.alu_width () in
  let alu_analysis =
    Vega.aging_analysis ~config:(phase1 config.alu_margin) alu_target ~workload:minver_workload
  in
  log "phase 1: FPU aging analysis";
  let fpu_target = Lift.fpu_target ~fmt:config.fpu_fmt () in
  let fpu_analysis =
    Vega.aging_analysis ~config:(phase1 config.fpu_margin) fpu_target ~workload:minver_workload
  in
  log "phase 2: ALU error lifting (without mitigation)";
  let alu_nomit = make_report alu_analysis (lift_cfg false) in
  log "phase 2: ALU error lifting (with mitigation)";
  let alu_mit = make_report alu_analysis (lift_cfg true) in
  log "phase 2: FPU error lifting (without mitigation)";
  let fpu_nomit = make_report fpu_analysis (lift_cfg false) in
  log "phase 2: FPU error lifting (with mitigation)";
  let fpu_mit = make_report fpu_analysis (lift_cfg true) in
  { cfg = config; log; alu_analysis; fpu_analysis; alu_nomit; alu_mit; fpu_nomit; fpu_mit }

(* ---------------- Figure 4 ---------------- *)

type fig4 = { sp_series : (float * (float * float) list) list }

let fig4 () =
  let lib = Aging.Timing_library.build Cell.Library.c28 in
  let sps = [ 0.05; 0.25; 0.5; 0.75; 0.95 ] in
  let years = List.init 11 float_of_int in
  {
    sp_series =
      List.map
        (fun sp ->
          ( sp,
            List.map
              (fun y ->
                (y, 100.0 *. (Aging.Timing_library.factor lib Cell.Kind.Xor2 ~sp ~years:y -. 1.0)))
              years ))
        sps;
  }

let render_fig4 f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 4: switching-delay degradation of a 28nm-class XOR cell over 10 years\n";
  Buffer.add_string buf "years:     ";
  List.iter (fun y -> Buffer.add_string buf (Printf.sprintf "%6.0f" y)) (List.init 11 float_of_int);
  Buffer.add_char buf '\n';
  List.iter
    (fun (sp, series) ->
      Buffer.add_string buf (Printf.sprintf "SP %.2f  " sp);
      List.iter (fun (_, pct) -> Buffer.add_string buf (Printf.sprintf "%5.2f%%" pct)) series;
      Buffer.add_char buf '\n')
    f.sp_series;
  Buffer.contents buf

(* ---------------- Table 1 ---------------- *)

let table1 () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create ~profile:true nl in
  let rng = Random.State.make [| 0x7ab1e |] in
  (* biased stimulus so that the profile exhibits the nonuniformity the
     paper's Table 1 illustrates *)
  let biased p = Random.State.float rng 1.0 < p in
  for _ = 1 to 2000 do
    Sim.set_input_bit sim "a" 0 (biased 0.85);
    Sim.set_input_bit sim "a" 1 (biased 0.55);
    Sim.set_input_bit sim "b" 0 (biased 0.40);
    Sim.set_input_bit sim "b" 1 (biased 0.15);
    Sim.step sim
  done;
  List.map
    (fun name ->
      let c = Netlist.find_cell nl name in
      let pin = if Cell.Kind.is_sequential c.Netlist.kind then "Q" else "Y" in
      (Printf.sprintf "%s%s.%s" (Cell.Kind.to_string c.Netlist.kind) name pin, Sim.sp_of_cell sim name))
    [ "$1"; "$2"; "$3"; "$4"; "$5"; "$6"; "$7"; "$8"; "$9"; "$10" ]

let render_table1 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Table 1: SP profile of the example adder netlist\n";
  List.iteri
    (fun k (name, sp) ->
      Buffer.add_string buf (Printf.sprintf "%-14s %4.2f   " name sp);
      if k mod 3 = 2 then Buffer.add_char buf '\n')
    rows;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------------- Table 2 ---------------- *)

let table2 () =
  let nl = Example_circuits.pipelined_adder () in
  let spec =
    {
      Fault.start_dff = "$4";
      end_dff = "$10";
      kind = Fault.Setup_violation;
      constant = Fault.C1;
      activation = Fault.Any_transition;
    }
  in
  let inst = Fault.instrument_shadow nl spec in
  match
    Formal.check_cover ~watch:inst.Fault.watch inst.Fault.netlist ~cover:inst.Fault.cover
  with
  | Formal.Trace_found t -> t
  | _ -> failwith "Experiments.table2: no trace for the example failure"

let render_table2 t =
  "Table 2: trace provoking the instrumented $4~>$10 setup failure (C=1)\n"
  ^ Formal.Trace.to_string t

(* ---------------- Figure 8 ---------------- *)

type fig8_bucket = { lo_pct : float; hi_pct : float; alu_frac : float; fpu_frac : float }

let fig8 ctx =
  let pcts analysis =
    List.map (fun (_, f) -> 100.0 *. (f -. 1.0)) analysis.Vega.cell_degradation
  in
  let alu = pcts ctx.alu_analysis and fpu = pcts ctx.fpu_analysis in
  let buckets = List.init 10 (fun k -> (1.5 +. (0.5 *. float_of_int k), 2.0 +. (0.5 *. float_of_int k))) in
  let frac data (lo, hi) =
    if data = [] then 0.0
    else
      float_of_int (List.length (List.filter (fun p -> p >= lo && p < hi) data))
      /. float_of_int (List.length data)
  in
  List.map
    (fun (lo, hi) ->
      { lo_pct = lo; hi_pct = hi; alu_frac = frac alu (lo, hi); fpu_frac = frac fpu (lo, hi) })
    buckets

let render_fig8 buckets =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 8: distribution of aging-induced delay increase (combinational cells)\n";
  Buffer.add_string buf "  delay increase     ALU          FPU\n";
  List.iter
    (fun b ->
      if b.alu_frac > 0.0 || b.fpu_frac > 0.0 then
        Buffer.add_string buf
          (Printf.sprintf "  [%3.1f%%, %3.1f%%)   %5.1f%%  %s  %5.1f%%  %s\n" b.lo_pct b.hi_pct
             (100.0 *. b.alu_frac)
             (String.make (int_of_float (30.0 *. b.alu_frac)) '#')
             (100.0 *. b.fpu_frac)
             (String.make (int_of_float (30.0 *. b.fpu_frac)) '#')))
    buckets;
  Buffer.contents buf

(* ---------------- Table 3 ---------------- *)

type table3_row = {
  t3_unit : string;
  setup_wns_ps : float;
  setup_paths : int;
  setup_paths_capped : bool;
  hold_wns_ps : float;
  hold_paths : int;
  unique_pairs : int;
}

let table3 ctx =
  let row name analysis (report : Vega.workflow_report) =
    let r = analysis.Vega.aged_report in
    {
      t3_unit = name;
      setup_wns_ps = r.Sta.wns_setup_ps;
      setup_paths = List.length r.Sta.setup_violations;
      setup_paths_capped = r.Sta.truncated;
      hold_wns_ps = r.Sta.wns_hold_ps;
      hold_paths = List.length r.Sta.hold_violations;
      unique_pairs = List.length report.Vega.pair_results;
    }
  in
  [ row "ALU" ctx.alu_analysis ctx.alu_nomit; row "FPU" ctx.fpu_analysis ctx.fpu_nomit ]

let render_table3 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Table 3: STA results with aging-aware timing libraries\n";
  Buffer.add_string buf "  Unit   Setup WNS / paths          Hold WNS / paths   unique pairs\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-5s  %6.0fps / %s%-8d      %6.0fps / %-6d   %d\n" r.t3_unit
           r.setup_wns_ps
           (if r.setup_paths_capped then ">=" else "")
           r.setup_paths
           (if r.hold_paths = 0 then 0.0 else r.hold_wns_ps)
           r.hold_paths r.unique_pairs))
    rows;
  Buffer.contents buf

(* ---------------- Table 4 ---------------- *)

type table4_row = {
  t4_unit : string;
  without : (Lift.classification * float) list;
  with_mitigation : (Lift.classification * float) list;
}

let percentages results =
  let n = max 1 (List.length results) in
  List.map
    (fun (cls, count) -> (cls, 100.0 *. float_of_int count /. float_of_int n))
    (Vega.classification_counts results)

let table4 ctx =
  [
    {
      t4_unit = "ALU";
      without = percentages ctx.alu_nomit.Vega.pair_results;
      with_mitigation = percentages ctx.alu_mit.Vega.pair_results;
    };
    {
      t4_unit = "FPU";
      without = percentages ctx.fpu_nomit.Vega.pair_results;
      with_mitigation = percentages ctx.fpu_mit.Vega.pair_results;
    };
  ]

let render_table4 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Table 4: test-case construction outcomes (% of unique pairs)\n";
  Buffer.add_string buf
    "  Unit   w/o mitigation: S / UR / FF / FC     w/ mitigation: S / UR / FF / FC\n";
  let line ps =
    String.concat " / "
      (List.map (fun (_, pct) -> Printf.sprintf "%4.1f" pct) ps)
  in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-5s  %s          %s\n" r.t4_unit (line r.without)
           (line r.with_mitigation)))
    rows;
  Buffer.contents buf

(* Table 4 under the resilience supervisor: a constrained slice forces the
   FF outcomes the paper reports, and the degradation ladder then splits
   that bucket into fallback-covered vs. truly exhausted. *)

type table4s_row = {
  t4s_unit : string;
  t4s_counts : (Resilience.split_class * int) list;
  t4s_budget_spent : int;
  t4s_escalations : int;
}

let table4_resilient ?(slice = 2) ctx =
  let supervised analysis =
    let items = Vega.lifting_items analysis in
    let config = { Lift.default_config with Lift.max_conflicts = slice } in
    let sup =
      Resilience.default_supervisor ~pairs:(List.length items) config
    in
    Resilience.supervised_lift ~config ~supervisor:sup analysis.Vega.target items
  in
  List.map
    (fun (t4s_unit, analysis) ->
      ctx.log (Printf.sprintf "table 4 (resilient): %s supervised lifting" t4s_unit);
      let rp = supervised analysis in
      {
        t4s_unit;
        t4s_counts = Resilience.split_counts rp;
        t4s_budget_spent = rp.Resilience.rp_budget_spent;
        t4s_escalations = rp.Resilience.rp_escalations;
      })
    [ ("ALU", ctx.alu_analysis); ("FPU", ctx.fpu_analysis) ]

let render_table4_resilient rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Table 4 (resilient): supervised outcomes, FF split by the degradation ladder\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-5s  %s   (%d conflicts, %d escalation(s))\n" r.t4s_unit
           (String.concat "  "
              (List.map
                 (fun (c, n) -> Printf.sprintf "%s %d" (Resilience.split_name c) n)
                 r.t4s_counts))
           r.t4s_budget_spent r.t4s_escalations))
    rows;
  Buffer.contents buf

(* ---------------- Table 5 ---------------- *)

type table5_row = {
  t5_unit : string;
  cases_without : int;
  cycles_without : int;
  cases_with : int;
  cycles_with : int;
}

let table5 ctx =
  let row name (nomit : Vega.workflow_report) (mit : Vega.workflow_report) =
    {
      t5_unit = name;
      cases_without = List.length nomit.Vega.suite.Lift.suite_cases;
      cycles_without = nomit.Vega.suite_cycles;
      cases_with = List.length mit.Vega.suite.Lift.suite_cases;
      cycles_with = mit.Vega.suite_cycles;
    }
  in
  [ row "ALU" ctx.alu_nomit ctx.alu_mit; row "FPU" ctx.fpu_nomit ctx.fpu_mit ]

let render_table5 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Table 5: generated test cases and execution cycles\n";
  Buffer.add_string buf "  Unit   w/o mitigation (cases/cycles)   w/ mitigation (cases/cycles)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-5s  %6d / %-8d               %6d / %-8d\n" r.t5_unit
           r.cases_without r.cycles_without r.cases_with r.cycles_with))
    rows;
  Buffer.contents buf

(* ---------------- Table 6 ---------------- *)

type fm = FM0 | FM1 | FMR

let fm_name = function FM0 -> "0" | FM1 -> "1" | FMR -> "R"
let fm_constant = function FM0 -> Fault.C0 | FM1 -> Fault.C1 | FMR -> Fault.C_random

type table6_row = {
  t6_unit : string;
  t6_fm : fm;
  t6_mitigated : bool;
  detected_pct : float;
  before_pct : float;
  late_pct : float;
  stall_pct : float;
}

let case_program tc =
  Isa.assemble
    (Lift.case_instrs ~fail_label:"__fail" tc
    @ [ Isa.Ecall Isa.exit_ok; Isa.Label "__fail"; Isa.Ecall Isa.exit_sdc ])

(* Run the suite case by case on a machine; first detection (index, stall?). *)
let first_detection m (suite : Lift.suite) =
  let rec go i = function
    | [] -> None
    | tc :: rest -> (
      Machine.reset m;
      match Machine.run m (case_program tc) with
      | Machine.Exited code when code = Isa.exit_ok -> go (i + 1) rest
      | Machine.Exited _ -> Some (i, false)
      | Machine.Stalled -> Some (i, true)
      | Machine.Out_of_fuel -> Some (i, true))
  in
  go 0 suite.Lift.suite_cases

let faulty_machine (report : Vega.workflow_report) spec =
  let faulty = Fault.failing_netlist report.Vega.analysis.Vega.target.Lift.netlist spec in
  Vega.machine_for
    (Lift.target_of_netlist report.Vega.analysis.Vega.target.Lift.kind faulty)

let injectable_pairs (report : Vega.workflow_report) =
  List.filter
    (fun (pr : Lift.pair_result) -> pr.Lift.cases <> [])
    report.Vega.pair_results

let spec_matches_pair (pr : Lift.pair_result) (spec : Fault.spec) =
  String.equal spec.Fault.start_dff pr.Lift.start_dff
  && String.equal spec.Fault.end_dff pr.Lift.end_dff
  && spec.Fault.kind = pr.Lift.violation

let table6_for unit_name (report : Vega.workflow_report) mitigated =
  List.map
    (fun fm ->
      let pairs = injectable_pairs report in
      let n = max 1 (List.length pairs) in
      let det = ref 0 and before = ref 0 and late = ref 0 and stall = ref 0 in
      List.iter
        (fun (pr : Lift.pair_result) ->
          let spec =
            {
              Fault.start_dff = pr.Lift.start_dff;
              end_dff = pr.Lift.end_dff;
              kind = pr.Lift.violation;
              constant = fm_constant fm;
              activation = Fault.Any_transition;
            }
          in
          let m = faulty_machine report spec in
          let own =
            List.mapi (fun i tc -> (i, tc)) report.Vega.suite.Lift.suite_cases
            |> List.filter_map (fun (i, (tc : Lift.test_case)) ->
                   if spec_matches_pair pr tc.Lift.tc_spec then Some i else None)
          in
          match first_detection m report.Vega.suite with
          | None -> ()
          | Some (i, stalled) ->
            incr det;
            if stalled then incr stall;
            (match own with
            | [] -> ()
            | _ ->
              let first_own = List.fold_left min max_int own in
              if i < first_own then incr before
              else if not (List.mem i own) then incr late))
        pairs;
      let pct x = 100.0 *. float_of_int !x /. float_of_int n in
      {
        t6_unit = unit_name;
        t6_fm = fm;
        t6_mitigated = mitigated;
        detected_pct = pct det;
        before_pct = pct before;
        late_pct = pct late;
        stall_pct = pct stall;
      })
    [ FM0; FM1; FMR ]

let table6 ctx =
  ctx.log "table 6: detection quality against failing netlists (ALU)";
  let alu = table6_for "ALU" ctx.alu_nomit false @ table6_for "ALU" ctx.alu_mit true in
  ctx.log "table 6: detection quality against failing netlists (FPU)";
  let fpu = table6_for "FPU" ctx.fpu_nomit false @ table6_for "FPU" ctx.fpu_mit true in
  alu @ fpu

let render_table6 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Table 6: detection quality of generated suites (% of injected faults)\n";
  Buffer.add_string buf "  Unit  FM   suite     Det.     B      L      S\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-4s  %-3s  %-6s  %6.1f %6.1f %6.1f %6.1f\n" r.t6_unit
           (fm_name r.t6_fm)
           (if r.t6_mitigated then "w/" else "w/o")
           r.detected_pct r.before_pct r.late_pct r.stall_pct))
    rows;
  Buffer.contents buf

(* ---------------- Table 7 ---------------- *)

type table7_row = { t7_unit : string; t7_fm : fm; vega_pct : float; random_pct : float }

let table7_for ctx unit_name (report : Vega.workflow_report) =
  List.map
    (fun fm ->
      let pairs = injectable_pairs report in
      let n = max 1 (List.length pairs) in
      let detect_with suite m =
        match first_detection m suite with Some _ -> true | None -> false
      in
      let vega_det = ref 0 in
      let random_det = ref 0 in
      List.iter
        (fun (pr : Lift.pair_result) ->
          let spec =
            {
              Fault.start_dff = pr.Lift.start_dff;
              end_dff = pr.Lift.end_dff;
              kind = pr.Lift.violation;
              constant = fm_constant fm;
              activation = Fault.Any_transition;
            }
          in
          let m = faulty_machine report spec in
          if detect_with report.Vega.suite m then incr vega_det;
          for run = 1 to ctx.cfg.table7_runs do
            let rsuite = Testgen.matched_suite ~seed:(run * 7919) report.Vega.suite in
            if detect_with rsuite m then incr random_det
          done)
        pairs;
      {
        t7_unit = unit_name;
        t7_fm = fm;
        vega_pct = 100.0 *. float_of_int !vega_det /. float_of_int n;
        random_pct =
          100.0 *. float_of_int !random_det /. float_of_int (n * ctx.cfg.table7_runs);
      })
    [ FM0; FM1; FMR ]

let table7 ctx =
  ctx.log "table 7: Vega vs random suites (ALU)";
  let alu = table7_for ctx "ALU" ctx.alu_nomit in
  ctx.log "table 7: Vega vs random suites (FPU)";
  let fpu = table7_for ctx "FPU" ctx.fpu_nomit in
  alu @ fpu

let render_table7 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Table 7: Vega-generated vs random test suites (% of faults detected)\n";
  Buffer.add_string buf "  Unit  FM    Vega     Random\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-4s  %-3s  %6.1f%%  %6.1f%%\n" r.t7_unit (fm_name r.t7_fm) r.vega_pct
           r.random_pct))
    rows;
  Buffer.contents buf

(* ---------------- Figure 9 ---------------- *)

type fig9_row = {
  bench_name : string;
  baseline_cycles : int;
  overhead_without_pct : float;
  overhead_with_pct : float;
  chosen_block : string;
  gated : bool;
}

let fig9 ctx =
  ctx.log "figure 9: profile-guided integration overhead";
  let width = ctx.cfg.alu_width in
  let fmt = ctx.cfg.fpu_fmt in
  let machine () =
    Machine.create
      ~config:{ Machine.default_config with Machine.width; fmt }
      ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()
  in
  let combined nomit =
    let a = if nomit then ctx.alu_nomit else ctx.alu_mit in
    let f = if nomit then ctx.fpu_nomit else ctx.fpu_mit in
    {
      Lift.suite_target = Lift.Alu_module { width };
      suite_cases = a.Vega.suite.Lift.suite_cases @ f.Vega.suite.Lift.suite_cases;
    }
  in
  let suite_n = combined true and suite_m = combined false in
  List.map
    (fun (b : Workload.benchmark) ->
      let compiled = Minic.compile ~width ~fmt b.Workload.program in
      let m = machine () in
      Machine.reset m;
      (match Machine.run ~max_instructions:5_000_000 m (Minic.assemble compiled) with
      | Machine.Exited 0 -> ()
      | o ->
        failwith
          (Format.asprintf "fig9: %s baseline failed (%a)" b.Workload.name Machine.pp_outcome o));
      let baseline = Machine.cycles m in
      let prof = Integrate.profile (machine ()) compiled in
      let run_with suite =
        let plan =
          Integrate.plan_integration ~overhead_threshold:ctx.cfg.fig9_threshold ~compiled
            ~profile:prof ~suite ()
        in
        let code = Integrate.instrument ~compiled ~suite ~plan in
        let m = machine () in
        Machine.reset m;
        (match Machine.run ~max_instructions:8_000_000 m (Isa.assemble code) with
        | Machine.Exited 0 -> ()
        | o ->
          failwith
            (Format.asprintf "fig9: %s instrumented failed (%a)" b.Workload.name
               Machine.pp_outcome o));
        (Machine.cycles m, plan)
      in
      let cyc_n, plan_n = run_with suite_n in
      let cyc_m, _ = run_with suite_m in
      let pct c = 100.0 *. (float_of_int (c - baseline) /. float_of_int baseline) in
      {
        bench_name = b.Workload.name;
        baseline_cycles = baseline;
        overhead_without_pct = pct cyc_n;
        overhead_with_pct = pct cyc_m;
        chosen_block = plan_n.Integrate.chosen_block;
        gated = plan_n.Integrate.gate <> None;
      })
    Workload.all

let fig9_mean_overheads rows =
  let n = float_of_int (max 1 (List.length rows)) in
  ( List.fold_left (fun acc r -> acc +. r.overhead_without_pct) 0.0 rows /. n,
    List.fold_left (fun acc r -> acc +. r.overhead_with_pct) 0.0 rows /. n )

let render_fig9 rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Figure 9: overhead of profile-guided test integration\n";
  Buffer.add_string buf "  benchmark    baseline-cycles    -N ovh    -M ovh   splice block (gated?)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-11s  %12d     %6.2f%%   %6.2f%%   %s%s\n" r.bench_name
           r.baseline_cycles r.overhead_without_pct r.overhead_with_pct r.chosen_block
           (if r.gated then " (gated)" else "")))
    rows;
  let mn, mm = fig9_mean_overheads rows in
  Buffer.add_string buf (Printf.sprintf "  mean overhead: -N %.2f%%  -M %.2f%%\n" mn mm);
  Buffer.contents buf

(* ---------------- Guard campaign ----------------

   The runtime extension of Table 6: instead of baking a fault into the
   netlist before the run starts, every selected phase-2 fault spec is
   injected *mid-run* into kernels executing under the closed-loop guard,
   once per recovery policy plus an unguarded baseline.  Tabulates
   detection latency, SDC escape rate (checksum mismatch with no
   detection), recovery success, and guard overhead. *)

type campaign_config = {
  cg_width : int;
  cg_fmt : Fpu_format.fmt;
  cg_kernels : string list;  (** [[]] = every [Workload.all] kernel *)
  cg_specs_per_unit : int;
  cg_constants : Fault.constant list;
  cg_onset_frac : float;
  cg_seed : int;
  cg_guard : Guard.Monitor.config;
  cg_checkpoint_every : int;
  cg_max_retries : int;
}

let default_campaign =
  {
    cg_width = 16;
    cg_fmt = Fpu_format.binary16;
    cg_kernels = [];
    cg_specs_per_unit = max_int;
    cg_constants = [ Fault.C0; Fault.C1; Fault.C_random ];
    cg_onset_frac = 0.2;
    cg_seed = 42;
    cg_guard =
      {
        Guard.Monitor.default_config with
        Guard.Monitor.cadence = 100;
        max_cadence = 2_000;
      };
    cg_checkpoint_every = 2_000;
    cg_max_retries = 3;
  }

let quick_campaign =
  {
    default_campaign with
    cg_kernels = [ "crc"; "nbody" ];
    cg_specs_per_unit = 2;
    (* C=0 faults tend to corrupt silently (equality exits still fire);
       C=1 faults tend to hang loops — both behaviors belong in the smoke *)
    cg_constants = [ Fault.C0; Fault.C1 ];
  }

type campaign_row = {
  cr_kernel : string;
  cr_unit : string;
  cr_spec : string;
  cr_mode : string;  (** "unguarded" or the policy name *)
  cr_outcome : string;
  cr_detected : bool;
  cr_latency : (int * int) option;  (** (instrs, cycles) from onset *)
  cr_checksum_ok : bool;
  cr_escape : bool;  (** checksum mismatch, clean exit, no detection *)
  cr_recovered : bool;
  cr_retries : int;
  cr_overhead_pct : float;  (** guard cycles vs app cycles *)
}

let campaign_digest (c : campaign_config) =
  Resilience.digest_of_strings
    [
      "vega-campaign";
      string_of_int c.cg_width;
      string_of_int c.cg_fmt.Fpu_format.exp_bits;
      string_of_int c.cg_fmt.Fpu_format.man_bits;
      String.concat "," c.cg_kernels;
      string_of_int c.cg_specs_per_unit;
      String.concat ","
        (List.map
           (function Fault.C0 -> "0" | Fault.C1 -> "1" | Fault.C_random -> "r")
           c.cg_constants);
      Printf.sprintf "%.17g" c.cg_onset_frac;
      string_of_int c.cg_seed;
      string_of_int c.cg_guard.Guard.Monitor.cadence;
      string_of_int c.cg_guard.Guard.Monitor.max_cadence;
      string_of_int c.cg_guard.Guard.Monitor.max_instructions;
      string_of_int c.cg_checkpoint_every;
      string_of_int c.cg_max_retries;
    ]

let campaign_row_to_json r =
  Json.Obj
    [
      ("kernel", Json.String r.cr_kernel);
      ("unit", Json.String r.cr_unit);
      ("spec", Json.String r.cr_spec);
      ("mode", Json.String r.cr_mode);
      ("outcome", Json.String r.cr_outcome);
      ("detected", Json.Bool r.cr_detected);
      ( "latency",
        match r.cr_latency with
        | None -> Json.Null
        | Some (i, c) -> Json.List [ Json.Int i; Json.Int c ] );
      ("checksum_ok", Json.Bool r.cr_checksum_ok);
      ("escape", Json.Bool r.cr_escape);
      ("recovered", Json.Bool r.cr_recovered);
      ("retries", Json.Int r.cr_retries);
      ("overhead_pct", Json.Float r.cr_overhead_pct);
    ]

let campaign_row_of_json j =
  let open Json in
  let* cr_kernel = Result.bind (member "kernel" j) to_str in
  let* cr_unit = Result.bind (member "unit" j) to_str in
  let* cr_spec = Result.bind (member "spec" j) to_str in
  let* cr_mode = Result.bind (member "mode" j) to_str in
  let* cr_outcome = Result.bind (member "outcome" j) to_str in
  let* cr_detected = Result.bind (member "detected" j) to_bool in
  let* cr_latency =
    let* l = member "latency" j in
    match l with
    | Null -> Ok None
    | List [ li; lc ] ->
      let* i = to_int li in
      let* c = to_int lc in
      Ok (Some (i, c))
    | _ -> Error "bad latency"
  in
  let* cr_checksum_ok = Result.bind (member "checksum_ok" j) to_bool in
  let* cr_escape = Result.bind (member "escape" j) to_bool in
  let* cr_recovered = Result.bind (member "recovered" j) to_bool in
  let* cr_retries = Result.bind (member "retries" j) to_int in
  let* cr_overhead_pct = Result.bind (member "overhead_pct" j) to_float in
  Ok
    {
      cr_kernel;
      cr_unit;
      cr_spec;
      cr_mode;
      cr_outcome;
      cr_detected;
      cr_latency;
      cr_checksum_ok;
      cr_escape;
      cr_recovered;
      cr_retries;
      cr_overhead_pct;
    }

(* Lift worst-slack-first violating pairs until [n] produce test cases. *)
let select_campaign_pairs (target : Lift.target) pairs n =
  let seen = Hashtbl.create 32 in
  let rec go acc count = function
    | [] -> List.rev acc
    | _ when count >= n -> List.rev acc
    | (start, Sta.At_dff end_id, check, _slack) :: rest -> (
      match start with
      | Sta.From_input _ -> go acc count rest
      | Sta.From_dff start_id ->
        let key = (start_id, end_id, check) in
        if Hashtbl.mem seen key then go acc count rest
        else begin
          Hashtbl.replace seen key ();
          let start_dff = (Netlist.cell target.Lift.netlist start_id).Netlist.name in
          let end_dff = (Netlist.cell target.Lift.netlist end_id).Netlist.name in
          let violation =
            match check with Sta.Setup -> Fault.Setup_violation | Sta.Hold -> Fault.Hold_violation
          in
          let pr = Lift.lift_pair target ~start_dff ~end_dff ~violation in
          if pr.Lift.cases <> [] then go (pr :: acc) (count + 1) rest else go acc count rest
        end)
  in
  go [] 0 pairs

let campaign_dims (target : Lift.target) =
  match target.Lift.kind with
  | Lift.Alu_module { width } ->
    (width, if width >= 16 then Fpu_format.binary16 else Fpu_format.tiny)
  | Lift.Fpu_module { fmt } -> (max 16 (Fpu_format.width fmt), fmt)

let campaign_machine (target : Lift.target) seed =
  let width, fmt = campaign_dims target in
  let config = { Machine.default_config with Machine.width; fmt; rng_seed = seed } in
  match target.Lift.kind with
  | Lift.Alu_module _ ->
    Machine.create ~config ~alu:(Machine.Alu_netlist target.Lift.netlist)
      ~fpu:Machine.Fpu_functional ()
  | Lift.Fpu_module _ ->
    Machine.create ~config ~alu:Machine.Alu_functional
      ~fpu:(Machine.Fpu_netlist target.Lift.netlist) ()

(* Checkpoint accessors shared in shape by the fault-injection and
   attack campaigns: a decode failure is treated as a cache miss (the
   item is recomputed and overwritten), never an error. *)
let ck_load checkpoint key decode =
  match checkpoint with
  | None -> None
  | Some ck -> (
    match Resilience.Checkpoint.load ck key with
    | None -> None
    | Some j -> ( match decode j with Ok v -> Some v | Error _ -> None))

let ck_store checkpoint key json =
  match checkpoint with None -> () | Some ck -> Resilience.Checkpoint.store ck key json

let campaign ?(config = quick_campaign) ?(log = fun _ -> ()) ?checkpoint () =
  Telemetry.with_span ~cat:"experiments" "experiments.campaign" @@ fun () ->
  let ck_load key decode = ck_load checkpoint key decode in
  let ck_store key json = ck_store checkpoint key json in
  let kernels =
    match config.cg_kernels with
    | [] -> Workload.all
    | names -> List.map Workload.find names
  in
  let policies =
    [
      Guard.Monitor.Abort;
      Guard.Monitor.Failover;
      Guard.Monitor.Rollback_retry
        { checkpoint_every = config.cg_checkpoint_every; max_retries = config.cg_max_retries };
    ]
  in
  let units =
    [
      ("ALU", Lift.alu_target ~width:config.cg_width (), Guard.Injector.Alu_slot);
      ("FPU", Lift.fpu_target ~fmt:config.cg_fmt (), Guard.Injector.Fpu_slot);
    ]
  in
  List.concat_map
    (fun (uname, target, slot) ->
      Telemetry.with_span ~cat:"experiments" "campaign.unit" @@ fun () ->
      let lift_key = "lift~" ^ uname in
      let selected =
        match
          ck_load lift_key (fun j ->
              Result.bind (Json.to_list j) (Json.map_m Serial.pair_result_of_json))
        with
        | Some selected ->
          log (Printf.sprintf "campaign: %s lifting restored from checkpoint" uname);
          selected
        | None ->
          log (Printf.sprintf "campaign: %s aging analysis + error lifting" uname);
          let analysis =
            Vega.aging_analysis
              ~config:{ Vega.default_phase1 with Vega.clock_margin = 1.0 }
              target ~workload:Vega.run_minver_workload
          in
          let selected =
            select_campaign_pairs target analysis.Vega.violating_pairs config.cg_specs_per_unit
          in
          ck_store lift_key (Json.List (List.map Serial.pair_result_to_json selected));
          selected
      in
      let suite = Lift.suite_of_results target.Lift.kind selected in
      log
        (Printf.sprintf "campaign: %s — %d fault specs, %d-case guard suite" uname
           (List.length selected * List.length config.cg_constants)
           (List.length suite.Lift.suite_cases));
      let width, fmt = campaign_dims target in
      List.concat_map
        (fun (b : Workload.benchmark) ->
          Telemetry.with_span ~cat:"experiments" "campaign.kernel" @@ fun () ->
          let compiled = Minic.compile ~width ~fmt b.Workload.program in
          let prog = Minic.assemble compiled in
          (* golden reference: functional machine, fault-free by construction *)
          let golden_m =
            Machine.create
              ~config:{ Machine.default_config with Machine.width; fmt; rng_seed = config.cg_seed }
              ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()
          in
          Machine.reset golden_m;
          (match Machine.run ~max_instructions:config.cg_guard.Guard.Monitor.max_instructions golden_m prog with
          | Machine.Exited code when code = Isa.exit_ok -> ()
          | o ->
            failwith
              (Format.asprintf "campaign: golden run of %s failed (%a)" b.Workload.name
                 Machine.pp_outcome o));
          let golden_sum = Bitvec.to_int (Machine.mem golden_m Workload.checksum_address) in
          let golden_instrs = Machine.instructions_retired golden_m in
          let onset = max 1 (int_of_float (config.cg_onset_frac *. float_of_int golden_instrs)) in
          (* corrupted control flow can hang a kernel; cap the fuel at a
             small multiple of the golden run so hangs are cheap to observe *)
          let fuel =
            min config.cg_guard.Guard.Monitor.max_instructions ((4 * golden_instrs) + 10_000)
          in
          log (Printf.sprintf "campaign: %s x %s (onset at instr %d)" uname b.Workload.name onset);
          List.concat_map
            (fun (pr : Lift.pair_result) ->
              List.concat_map
                (fun constant ->
                  let spec =
                    {
                      Fault.start_dff = pr.Lift.start_dff;
                      end_dff = pr.Lift.end_dff;
                      kind = pr.Lift.violation;
                      constant;
                      activation = Fault.Any_transition;
                    }
                  in
                  let fresh_run mk_row =
                    let m = campaign_machine target config.cg_seed in
                    Machine.reset m;
                    let inj =
                      Guard.Injector.create ~machine:m ~slot ~spec
                        (Guard.Injector.permanent onset)
                    in
                    mk_row m inj
                  in
                  let row mode outcome ~clean_exit detected latency checksum_ok recovered
                      retries overhead_pct =
                    {
                      cr_kernel = b.Workload.name;
                      cr_unit = uname;
                      cr_spec = Fault.describe spec;
                      cr_mode = mode;
                      cr_outcome = outcome;
                      cr_detected = detected;
                      cr_latency = latency;
                      cr_checksum_ok = checksum_ok;
                      cr_escape = clean_exit && (not detected) && not checksum_ok;
                      cr_recovered = recovered;
                      cr_retries = retries;
                      cr_overhead_pct = overhead_pct;
                    }
                  in
                  let unguarded () =
                    fresh_run (fun m inj ->
                        let outcome =
                          Machine.run ~max_instructions:fuel
                            ~on_instr:(fun _ -> Guard.Injector.tick inj)
                            m prog
                        in
                        let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
                        let clean_exit =
                          match outcome with
                          | Machine.Exited code -> code = Isa.exit_ok
                          | _ -> false
                        in
                        row "unguarded"
                          (Format.asprintf "%a" Machine.pp_outcome outcome)
                          ~clean_exit false None (sum = golden_sum) false 0 0.0)
                  in
                  let guarded policy =
                    fresh_run (fun m inj ->
                        let gcfg =
                          { config.cg_guard with Guard.Monitor.policy; max_instructions = fuel }
                        in
                        let r = Guard.Monitor.run ~config:gcfg ~injector:inj ~suite m prog in
                        let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
                        let outcome, clean_exit =
                          match r.Guard.Monitor.r_verdict with
                          | Guard.Monitor.App_completed o ->
                            ( Format.asprintf "%a" Machine.pp_outcome o,
                              match o with Machine.Exited code -> code = Isa.exit_ok | _ -> false
                            )
                          | Guard.Monitor.Guard_aborted _ -> ("aborted", false)
                        in
                        row
                          (Guard.Monitor.policy_name policy)
                          outcome ~clean_exit
                          (Guard.Monitor.detected r)
                          r.Guard.Monitor.r_latency (sum = golden_sum)
                          r.Guard.Monitor.r_recovered r.Guard.Monitor.r_retries
                          (100.0
                          *. float_of_int r.Guard.Monitor.r_guard_cycles
                          /. float_of_int (max 1 r.Guard.Monitor.r_app_cycles)))
                  in
                  (* one checkpointable work item = this fault spec's four
                     runs (unguarded + the three policies) on this kernel *)
                  let item_key =
                    Printf.sprintf "rows~%s~%s~%s" uname b.Workload.name (Fault.describe spec)
                  in
                  match
                    ck_load item_key (fun j ->
                        Result.bind (Json.to_list j) (Json.map_m campaign_row_of_json))
                  with
                  | Some rows -> rows
                  | None ->
                    let rows = unguarded () :: List.map guarded policies in
                    ck_store item_key (Json.List (List.map campaign_row_to_json rows));
                    rows)
                config.cg_constants)
            selected)
        kernels)
    units

type campaign_summary = {
  cs_rows : int;
  cs_unguarded_rows : int;
  cs_unguarded_escapes : int;
  cs_guarded_rows : int;
  cs_guarded_escapes : int;
  cs_guarded_detected : int;
  cs_rollback_rows : int;
  cs_rollback_checksum_ok : int;
}

let campaign_summary rows =
  let count p = List.length (List.filter p rows) in
  let unguarded r = r.cr_mode = "unguarded" in
  let rollback r = r.cr_mode = "rollback" in
  {
    cs_rows = List.length rows;
    cs_unguarded_rows = count unguarded;
    cs_unguarded_escapes = count (fun r -> unguarded r && r.cr_escape);
    cs_guarded_rows = count (fun r -> not (unguarded r));
    cs_guarded_escapes = count (fun r -> (not (unguarded r)) && r.cr_escape);
    cs_guarded_detected = count (fun r -> (not (unguarded r)) && r.cr_detected);
    cs_rollback_rows = count rollback;
    cs_rollback_checksum_ok = count (fun r -> rollback r && r.cr_checksum_ok);
  }

let render_campaign rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Guard campaign: mid-life fault injection under each recovery policy\n";
  Buffer.add_string buf
    "  kernel     unit  spec                                mode       outcome        det  \
     latency      sum    recov  retry   ovh%\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-9s  %-4s  %-34s  %-9s  %-13s  %-3s  %-11s  %-5s  %-5s  %5d  %5.1f\n"
           r.cr_kernel r.cr_unit r.cr_spec r.cr_mode r.cr_outcome
           (if r.cr_detected then "yes" else "no")
           (match r.cr_latency with
           | Some (i, _) -> Printf.sprintf "%d instr" i
           | None -> "-")
           (if r.cr_checksum_ok then "ok" else "BAD")
           (if r.cr_recovered then "yes" else "no")
           r.cr_retries r.cr_overhead_pct))
    rows;
  let s = campaign_summary rows in
  Buffer.add_string buf
    (Printf.sprintf "  unguarded: %d/%d runs escaped (silent corruption)\n" s.cs_unguarded_escapes
       s.cs_unguarded_rows);
  Buffer.add_string buf
    (Printf.sprintf "  guarded:   %d/%d runs escaped; %d/%d detected; rollback checksums golden %d/%d\n"
       s.cs_guarded_escapes s.cs_guarded_rows s.cs_guarded_detected s.cs_guarded_rows
       s.cs_rollback_checksum_ok s.cs_rollback_rows);
  Buffer.contents buf

(* ---------------- Adversarial wearout campaign ----------------

   The robustness question behind the attack/monitor pair: a pathological
   (or adversarial) workload can hold the critical path's cells in their
   BTI-stress state, aging the unit past the violating corner years
   before the nominal profile predicts — and the phase-2 software tests
   then face faults they were never scheduled for.  The campaign measures
   both halves of that story on the ALU:

   - the {e attack} half runs {!Attack.search} against the unit's worst
     fresh paths and bisects time-to-first-violation under the attacked
     and the nominal (minver-workload) SP corners, reporting the
     acceleration factor;
   - the {e defense} half re-runs the mid-life fault-injection campaign
     at the attack-aged corner with in-situ canary monitors inserted
     ({!Canary.insert}, CEC-proved inert before use), comparing the
     software-test-only guard against the same guard with its canary
     poll channel open. *)

type attack_campaign_config = {
  ak_width : int;  (** ALU width; the campaign's single target unit *)
  ak_kernels : string list;  (** [[]] = every [Workload.all] kernel *)
  ak_specs : int;  (** fault specs lifted from the attack-aged corner *)
  ak_constants : Fault.constant list;
  ak_onset_frac : float;
  ak_seed : int;
  ak_attack : Attack.config;
  ak_cells : string list;  (** [[]] = {!Attack.default_targets} *)
  ak_years_max : float;  (** TTV bisection horizon *)
  ak_ttv_precision : float;
  ak_canary_count : int;
  ak_canary_pessimism : float;
  ak_canary_poll : int;  (** trip-port poll cadence (app instructions) *)
  ak_guard : Guard.Monitor.config;
}

let default_attack_campaign =
  {
    ak_width = 16;
    ak_kernels = [];
    ak_specs = 2;
    ak_constants = [ Fault.C0; Fault.C1 ];
    ak_onset_frac = 0.2;
    ak_seed = 42;
    ak_attack = { Attack.default_config with Attack.atk_len = 48; atk_iters = 24 };
    ak_cells = [];
    ak_years_max = 30.0;
    ak_ttv_precision = 0.05;
    ak_canary_count = 2;
    ak_canary_pessimism = 1.25;
    ak_canary_poll = 25;
    ak_guard =
      {
        Guard.Monitor.default_config with
        Guard.Monitor.cadence = 100;
        max_cadence = 2_000;
      };
  }

let quick_attack_campaign =
  {
    default_attack_campaign with
    ak_kernels = [ "crc" ];
    ak_specs = 1;
    ak_constants = [ Fault.C0 ];
    ak_attack = { default_attack_campaign.ak_attack with Attack.atk_len = 32; atk_iters = 12 };
  }

let profile_engine_name = function
  | Vega.Scalar_profile -> "scalar"
  | Vega.Batched_profile -> "batched"
  | Vega.Compiled_profile -> "compiled"

(* The resolved victim set: what the digest commits to, so a resumed
   campaign cannot silently aim at different cells. *)
let attack_campaign_cells ?netlist (config : attack_campaign_config) =
  match config.ak_cells with
  | [] ->
    let nl =
      match netlist with
      | Some nl -> nl
      | None -> (Lift.alu_target ~width:config.ak_width ()).Lift.netlist
    in
    Attack.default_targets nl
  | cells -> cells

let attack_campaign_digest ?netlist (config : attack_campaign_config) =
  let a = config.ak_attack in
  Resilience.digest_of_strings
    ([
       "vega-attack-campaign";
       (match netlist with
       | None -> "stock"
       | Some nl -> Resilience.netlist_digest nl);
       string_of_int config.ak_width;
       String.concat "," config.ak_kernels;
       string_of_int config.ak_specs;
       String.concat ","
         (List.map
            (function Fault.C0 -> "0" | Fault.C1 -> "1" | Fault.C_random -> "r")
            config.ak_constants);
       Printf.sprintf "%.17g" config.ak_onset_frac;
       string_of_int config.ak_seed;
       (* the search *)
       string_of_int a.Attack.atk_seed;
       string_of_int a.Attack.atk_len;
       string_of_int a.Attack.atk_iters;
       string_of_bool a.Attack.atk_sat_assist;
       profile_engine_name a.Attack.atk_engine;
       Printf.sprintf "%.17g" a.Attack.atk_temp;
       (* the corner *)
       Printf.sprintf "%.17g" config.ak_years_max;
       Printf.sprintf "%.17g" config.ak_ttv_precision;
       string_of_int config.ak_canary_count;
       Printf.sprintf "%.17g" config.ak_canary_pessimism;
       string_of_int config.ak_canary_poll;
       (* the guard *)
       string_of_int config.ak_guard.Guard.Monitor.cadence;
       string_of_int config.ak_guard.Guard.Monitor.max_cadence;
       string_of_int config.ak_guard.Guard.Monitor.max_instructions;
     ]
    @ attack_campaign_cells ?netlist config)

type attack_row = {
  ar_kernel : string;
  ar_spec : string;
  ar_mode : string;  (** "unguarded", "sw-only" or "sw+canary" *)
  ar_outcome : string;
  ar_detected : bool;
  ar_detected_by : string;  (** "canary", "test", "watchdog" or "-" *)
  ar_latency : (int * int) option;  (** (instrs, cycles) from onset *)
  ar_checksum_ok : bool;
  ar_escape : bool;
  ar_polls : int;  (** canary trip-port reads the guard performed *)
  ar_overhead_pct : float;
}

let attack_row_to_json r =
  Json.Obj
    [
      ("kernel", Json.String r.ar_kernel);
      ("spec", Json.String r.ar_spec);
      ("mode", Json.String r.ar_mode);
      ("outcome", Json.String r.ar_outcome);
      ("detected", Json.Bool r.ar_detected);
      ("detected_by", Json.String r.ar_detected_by);
      ( "latency",
        match r.ar_latency with
        | None -> Json.Null
        | Some (i, c) -> Json.List [ Json.Int i; Json.Int c ] );
      ("checksum_ok", Json.Bool r.ar_checksum_ok);
      ("escape", Json.Bool r.ar_escape);
      ("polls", Json.Int r.ar_polls);
      ("overhead_pct", Json.Float r.ar_overhead_pct);
    ]

let attack_row_of_json j =
  let open Json in
  let* ar_kernel = Result.bind (member "kernel" j) to_str in
  let* ar_spec = Result.bind (member "spec" j) to_str in
  let* ar_mode = Result.bind (member "mode" j) to_str in
  let* ar_outcome = Result.bind (member "outcome" j) to_str in
  let* ar_detected = Result.bind (member "detected" j) to_bool in
  let* ar_detected_by = Result.bind (member "detected_by" j) to_str in
  let* ar_latency =
    let* l = member "latency" j in
    match l with
    | Null -> Ok None
    | List [ li; lc ] ->
      let* i = to_int li in
      let* c = to_int lc in
      Ok (Some (i, c))
    | _ -> Error "bad latency"
  in
  let* ar_checksum_ok = Result.bind (member "checksum_ok" j) to_bool in
  let* ar_escape = Result.bind (member "escape" j) to_bool in
  let* ar_polls = Result.bind (member "polls" j) to_int in
  let* ar_overhead_pct = Result.bind (member "overhead_pct" j) to_float in
  Ok
    {
      ar_kernel;
      ar_spec;
      ar_mode;
      ar_outcome;
      ar_detected;
      ar_detected_by;
      ar_latency;
      ar_checksum_ok;
      ar_escape;
      ar_polls;
      ar_overhead_pct;
    }

(* The attack-aged corner: everything the search and the TTV bisections
   produced, plus the winning stream itself so a resumed campaign can
   re-derive the SP profile (one cheap replay) without re-searching. *)
type attack_corner = {
  ac_ops : (string * Bitvec.t) list array;
  ac_cells : Attack.cell_stress list;
  ac_baseline_obj : float;
  ac_attacked_obj : float;
  ac_evals : int;
  ac_sat_patterns : int;
  ac_samples : int;
  ac_fresh_crit_ps : float;
  ac_clock_period_ps : float;
  ac_ttv_nominal : float option;
  ac_ttv_attack : float option;
  ac_acceleration : float option;
}

let attack_ops_to_json ops =
  Json.List
    (List.map
       (fun assignment ->
         Json.List
           (List.map
              (fun (port, v) ->
                Json.List [ Json.String port; Json.Int (Bitvec.width v); Json.Int (Bitvec.to_int v) ])
              assignment))
       (Array.to_list ops))

let attack_ops_of_json j =
  let open Json in
  let* entries = to_list j in
  let* ops =
    map_m
      (fun entry ->
        let* fields = to_list entry in
        map_m
          (function
            | List [ String port; Int w; Int v ] -> Ok (port, Bitvec.create ~width:w v)
            | _ -> Error "bad op field")
          fields)
      entries
  in
  Ok (Array.of_list ops)

let float_opt_to_json = function None -> Json.Null | Some f -> Json.Float f

let float_opt_of_json j =
  match j with
  | Json.Null -> Ok None
  | _ -> Result.map (fun f -> Some f) (Json.to_float j)

let attack_corner_to_json c =
  Json.Obj
    [
      ("ops", attack_ops_to_json c.ac_ops);
      ( "cells",
        Json.List
          (List.map
             (fun (s : Attack.cell_stress) ->
               Json.List
                 [
                   Json.String s.Attack.cs_cell;
                   Json.Float s.Attack.cs_baseline_sp;
                   Json.Float s.Attack.cs_attacked_sp;
                 ])
             c.ac_cells) );
      ("baseline_obj", Json.Float c.ac_baseline_obj);
      ("attacked_obj", Json.Float c.ac_attacked_obj);
      ("evals", Json.Int c.ac_evals);
      ("sat_patterns", Json.Int c.ac_sat_patterns);
      ("samples", Json.Int c.ac_samples);
      ("fresh_crit_ps", Json.Float c.ac_fresh_crit_ps);
      ("clock_period_ps", Json.Float c.ac_clock_period_ps);
      ("ttv_nominal", float_opt_to_json c.ac_ttv_nominal);
      ("ttv_attack", float_opt_to_json c.ac_ttv_attack);
      ("acceleration", float_opt_to_json c.ac_acceleration);
    ]

let attack_corner_of_json j =
  let open Json in
  let* ac_ops = Result.bind (member "ops" j) attack_ops_of_json in
  let* ac_cells =
    let* l = Result.bind (member "cells" j) to_list in
    map_m
      (function
        | List [ String cs_cell; base; att ] ->
          let* cs_baseline_sp = to_float base in
          let* cs_attacked_sp = to_float att in
          Ok { Attack.cs_cell; cs_baseline_sp; cs_attacked_sp }
        | _ -> Error "bad cell stress")
      l
  in
  let* ac_baseline_obj = Result.bind (member "baseline_obj" j) to_float in
  let* ac_attacked_obj = Result.bind (member "attacked_obj" j) to_float in
  let* ac_evals = Result.bind (member "evals" j) to_int in
  let* ac_sat_patterns = Result.bind (member "sat_patterns" j) to_int in
  let* ac_samples = Result.bind (member "samples" j) to_int in
  let* ac_fresh_crit_ps = Result.bind (member "fresh_crit_ps" j) to_float in
  let* ac_clock_period_ps = Result.bind (member "clock_period_ps" j) to_float in
  let* ac_ttv_nominal = Result.bind (member "ttv_nominal" j) float_opt_of_json in
  let* ac_ttv_attack = Result.bind (member "ttv_attack" j) float_opt_of_json in
  let* ac_acceleration = Result.bind (member "acceleration" j) float_opt_of_json in
  Ok
    {
      ac_ops;
      ac_cells;
      ac_baseline_obj;
      ac_attacked_obj;
      ac_evals;
      ac_sat_patterns;
      ac_samples;
      ac_fresh_crit_ps;
      ac_clock_period_ps;
      ac_ttv_nominal;
      ac_ttv_attack;
      ac_acceleration;
    }

type attack_report = {
  ap_cells : Attack.cell_stress list;
  ap_baseline_obj : float;
  ap_attacked_obj : float;
  ap_evals : int;
  ap_sat_patterns : int;
  ap_samples : int;
  ap_fresh_crit_ps : float;
  ap_clock_period_ps : float;
  ap_ttv_nominal : float option;
  ap_ttv_attack : float option;
  ap_acceleration : float option;
  ap_canaries : Canary.canary list;
  ap_rows : attack_row list;
}

let attack_campaign ?(config = quick_attack_campaign) ?netlist ?(log = fun _ -> ()) ?checkpoint
    () =
  Telemetry.with_span ~cat:"experiments" "experiments.attack_campaign" @@ fun () ->
  let ck_load key decode = ck_load checkpoint key decode in
  let ck_store key json = ck_store checkpoint key json in
  let target =
    let t = Lift.alu_target ~width:config.ak_width () in
    match netlist with Some nl -> { t with Lift.netlist = nl } | None -> t
  in
  let nl = target.Lift.netlist in
  let cells = attack_campaign_cells ?netlist config in
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  let worst_arrival timing =
    let probe = Sta.analyze ~timing ~clock_period_ps:1e9 nl in
    List.fold_left
      (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
      0.0 probe.Sta.endpoint_slacks
  in
  let replay label ops =
    match Vega.replay_sp ~engine:config.ak_attack.Attack.atk_engine target ops with
    | Some (samples, sp) -> (samples, sp)
    | None -> failwith (Printf.sprintf "attack-campaign: %s SP replay produced no samples" label)
  in
  let aged sp years = Sta.aged_timing ~sp_of_net:sp ~years aglib in
  let corner =
    match ck_load "corner" attack_corner_of_json with
    | Some c ->
      log "attack-campaign: attack corner restored from checkpoint";
      c
    | None ->
      log
        (Printf.sprintf "attack-campaign: stress search over %d target cell(s)"
           (List.length cells));
      let r = Attack.search ~config:config.ak_attack target ~cells in
      let fresh_crit = worst_arrival (Sta.fresh_timing Cell.Library.c28) in
      let att_max = worst_arrival (aged r.Attack.atk_sp_of_net config.ak_years_max) in
      (* A guard period halfway between the fresh critical path and the
         fully-attacked arrival: fresh timing closes with margin, and the
         attacked corner is guaranteed to violate within the horizon. *)
      let clock_period_ps = 0.5 *. (fresh_crit +. att_max) in
      let ttv sp =
        Attack.time_to_violation ~years_max:config.ak_years_max
          ~precision:config.ak_ttv_precision
          ~timing_of_years:(fun y -> aged sp y)
          ~clock_period_ps nl
      in
      let _, nom_sp =
        replay "nominal" (Vega.recorded_unit_ops target ~workload:Vega.run_minver_workload)
      in
      let ttv_nominal = ttv nom_sp in
      let ttv_attack = ttv r.Attack.atk_sp_of_net in
      let acceleration =
        match (ttv_nominal, ttv_attack) with
        | Some n, Some a when a > 0.0 -> Some (n /. a)
        | _ -> None
      in
      let corner =
        {
          ac_ops = r.Attack.atk_ops;
          ac_cells = r.Attack.atk_cells;
          ac_baseline_obj = r.Attack.atk_baseline;
          ac_attacked_obj = r.Attack.atk_best;
          ac_evals = r.Attack.atk_evals;
          ac_sat_patterns = r.Attack.atk_sat_patterns;
          ac_samples = r.Attack.atk_samples;
          ac_fresh_crit_ps = fresh_crit;
          ac_clock_period_ps = clock_period_ps;
          ac_ttv_nominal = ttv_nominal;
          ac_ttv_attack = ttv_attack;
          ac_acceleration = acceleration;
        }
      in
      ck_store "corner" (attack_corner_to_json corner);
      corner
  in
  (* Re-derive the attacked SP profile from the winning stream — the same
     replay on both the fresh and the resumed path. *)
  let _, att_sp = replay "attack" corner.ac_ops in
  let att_timing = aged att_sp config.ak_years_max in
  (* Defense: canary monitors planned from the attack-aged corner,
     CEC-proved inert before any machine runs them. *)
  let paths =
    Canary.plan ~count:config.ak_canary_count ~pessimism:config.ak_canary_pessimism nl
      ~timing:att_timing ~clock_period_ps:corner.ac_clock_period_ps
  in
  let monitored, canaries = Canary.insert nl paths in
  (match Canary.verify ~original:nl monitored with
  | Ok () ->
    log
      (Printf.sprintf "attack-campaign: %d canary monitor(s) inserted, proved inert"
         (List.length canaries))
  | Error e -> failwith ("attack-campaign: canary verification failed: " ^ e));
  (* Fault specs for the guard phase come from the attack-aged corner's
     violating pairs — the faults this wearout actually produces. *)
  let selected =
    match
      ck_load "lift" (fun j ->
          Result.bind (Json.to_list j) (Json.map_m Serial.pair_result_of_json))
    with
    | Some selected ->
      log "attack-campaign: error lifting restored from checkpoint";
      selected
    | None ->
      let pairs =
        Sta.violating_pairs ~timing:att_timing ~clock_period_ps:corner.ac_clock_period_ps nl
      in
      let selected = select_campaign_pairs target pairs config.ak_specs in
      ck_store "lift" (Json.List (List.map Serial.pair_result_to_json selected));
      selected
  in
  let suite = Lift.suite_of_results target.Lift.kind selected in
  log
    (Printf.sprintf "attack-campaign: %d fault spec(s), %d-case guard suite"
       (List.length selected * List.length config.ak_constants)
       (List.length suite.Lift.suite_cases));
  let width, fmt = campaign_dims target in
  let machine () =
    let mconfig =
      { Machine.default_config with Machine.width; fmt; rng_seed = config.ak_seed }
    in
    Machine.create ~config:mconfig ~alu:(Machine.Alu_netlist monitored)
      ~fpu:Machine.Fpu_functional ()
  in
  let kernels =
    match config.ak_kernels with
    | [] -> Workload.all
    | names -> List.map Workload.find names
  in
  let detected_by (r : Guard.Monitor.report) =
    match r.Guard.Monitor.r_detections with
    | [] -> "-"
    | d :: _ ->
      let id = d.Guard.Monitor.det_id in
      let has_prefix p = String.length id >= String.length p && String.sub id 0 (String.length p) = p in
      let has_suffix s =
        String.length id >= String.length s
        && String.sub id (String.length id - String.length s) (String.length s) = s
      in
      if has_prefix "__canary" then "canary" else if has_suffix "(stall)" then "watchdog" else "test"
  in
  let rows =
    List.concat_map
      (fun (b : Workload.benchmark) ->
        Telemetry.with_span ~cat:"experiments" "attack_campaign.kernel" @@ fun () ->
        let compiled = Minic.compile ~width ~fmt b.Workload.program in
        let prog = Minic.assemble compiled in
        let golden_m =
          Machine.create
            ~config:{ Machine.default_config with Machine.width; fmt; rng_seed = config.ak_seed }
            ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()
        in
        Machine.reset golden_m;
        (match
           Machine.run ~max_instructions:config.ak_guard.Guard.Monitor.max_instructions golden_m
             prog
         with
        | Machine.Exited code when code = Isa.exit_ok -> ()
        | o ->
          failwith
            (Format.asprintf "attack-campaign: golden run of %s failed (%a)" b.Workload.name
               Machine.pp_outcome o));
        let golden_sum = Bitvec.to_int (Machine.mem golden_m Workload.checksum_address) in
        let golden_instrs = Machine.instructions_retired golden_m in
        let onset = max 1 (int_of_float (config.ak_onset_frac *. float_of_int golden_instrs)) in
        let fuel =
          min config.ak_guard.Guard.Monitor.max_instructions ((4 * golden_instrs) + 10_000)
        in
        log
          (Printf.sprintf "attack-campaign: kernel %s (onset at instr %d)" b.Workload.name onset);
        List.concat_map
          (fun (pr : Lift.pair_result) ->
            List.concat_map
              (fun constant ->
                let spec =
                  {
                    Fault.start_dff = pr.Lift.start_dff;
                    end_dff = pr.Lift.end_dff;
                    kind = pr.Lift.violation;
                    constant;
                    activation = Fault.Any_transition;
                  }
                in
                let fresh_run mk_row =
                  let m = machine () in
                  Machine.reset m;
                  let inj =
                    Guard.Injector.create ~machine:m ~slot:Guard.Injector.Alu_slot ~spec
                      (Guard.Injector.permanent onset)
                  in
                  mk_row m inj
                in
                let row mode outcome ~clean_exit detected detected_by latency checksum_ok polls
                    overhead_pct =
                  {
                    ar_kernel = b.Workload.name;
                    ar_spec = Fault.describe spec;
                    ar_mode = mode;
                    ar_outcome = outcome;
                    ar_detected = detected;
                    ar_detected_by = detected_by;
                    ar_latency = latency;
                    ar_checksum_ok = checksum_ok;
                    ar_escape = clean_exit && (not detected) && not checksum_ok;
                    ar_polls = polls;
                    ar_overhead_pct = overhead_pct;
                  }
                in
                let unguarded () =
                  fresh_run (fun m inj ->
                      let outcome =
                        Machine.run ~max_instructions:fuel
                          ~on_instr:(fun _ -> Guard.Injector.tick inj)
                          m prog
                      in
                      let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
                      let clean_exit =
                        match outcome with
                        | Machine.Exited code -> code = Isa.exit_ok
                        | _ -> false
                      in
                      row "unguarded"
                        (Format.asprintf "%a" Machine.pp_outcome outcome)
                        ~clean_exit false "-" None (sum = golden_sum) 0 0.0)
                in
                let guarded mode canary_poll =
                  fresh_run (fun m inj ->
                      let gcfg =
                        {
                          config.ak_guard with
                          Guard.Monitor.max_instructions = fuel;
                          canary_poll;
                        }
                      in
                      let r = Guard.Monitor.run ~config:gcfg ~injector:inj ~suite m prog in
                      let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
                      let outcome, clean_exit =
                        match r.Guard.Monitor.r_verdict with
                        | Guard.Monitor.App_completed o ->
                          ( Format.asprintf "%a" Machine.pp_outcome o,
                            match o with
                            | Machine.Exited code -> code = Isa.exit_ok
                            | _ -> false )
                        | Guard.Monitor.Guard_aborted _ -> ("aborted", false)
                      in
                      row mode outcome ~clean_exit
                        (Guard.Monitor.detected r)
                        (detected_by r) r.Guard.Monitor.r_latency (sum = golden_sum)
                        r.Guard.Monitor.r_canary_polls
                        (100.0
                        *. float_of_int r.Guard.Monitor.r_guard_cycles
                        /. float_of_int (max 1 r.Guard.Monitor.r_app_cycles)))
                in
                (* one checkpointable work item = this fault spec's three
                   runs (unguarded, software-only, software+canary) *)
                let item_key =
                  Printf.sprintf "rows~%s~%s" b.Workload.name (Fault.describe spec)
                in
                match
                  ck_load item_key (fun j ->
                      Result.bind (Json.to_list j) (Json.map_m attack_row_of_json))
                with
                | Some rows -> rows
                | None ->
                  let rows =
                    [
                      unguarded ();
                      guarded "sw-only" None;
                      guarded "sw+canary" (Some config.ak_canary_poll);
                    ]
                  in
                  ck_store item_key (Json.List (List.map attack_row_to_json rows));
                  rows)
              config.ak_constants)
          selected)
      kernels
  in
  {
    ap_cells = corner.ac_cells;
    ap_baseline_obj = corner.ac_baseline_obj;
    ap_attacked_obj = corner.ac_attacked_obj;
    ap_evals = corner.ac_evals;
    ap_sat_patterns = corner.ac_sat_patterns;
    ap_samples = corner.ac_samples;
    ap_fresh_crit_ps = corner.ac_fresh_crit_ps;
    ap_clock_period_ps = corner.ac_clock_period_ps;
    ap_ttv_nominal = corner.ac_ttv_nominal;
    ap_ttv_attack = corner.ac_ttv_attack;
    ap_acceleration = corner.ac_acceleration;
    ap_canaries = canaries;
    ap_rows = rows;
  }

type attack_summary = {
  as_unguarded_rows : int;
  as_unguarded_escapes : int;
  as_sw_rows : int;
  as_sw_detected : int;
  as_sw_escapes : int;
  as_canary_rows : int;
  as_canary_detected : int;
  as_canary_escapes : int;
  as_canary_first : int;  (** sw+canary rows whose first detection was the trip port *)
  as_latency_pairs : int;  (** (kernel, spec) pairs with latency in both guarded modes *)
  as_canary_wins : int;  (** pairs where the canary latency <= the software latency *)
}

let attack_summary rows =
  let count p = List.length (List.filter p rows) in
  let mode m r = r.ar_mode = m in
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = (r.ar_kernel, r.ar_spec) in
      if not (Hashtbl.mem pairs key) then Hashtbl.replace pairs key ())
    rows;
  let latency_pairs, canary_wins =
    Hashtbl.fold
      (fun (kernel, spec) () (lp, cw) ->
        let find m =
          List.find_opt (fun r -> r.ar_kernel = kernel && r.ar_spec = spec && mode m r) rows
        in
        match (find "sw-only", find "sw+canary") with
        | Some sw, Some cn -> (
          match (sw.ar_latency, cn.ar_latency) with
          | Some (si, _), Some (ci, _) -> (lp + 1, if ci <= si then cw + 1 else cw)
          | _ -> (lp, cw))
        | _ -> (lp, cw))
      pairs (0, 0)
  in
  {
    as_unguarded_rows = count (mode "unguarded");
    as_unguarded_escapes = count (fun r -> mode "unguarded" r && r.ar_escape);
    as_sw_rows = count (mode "sw-only");
    as_sw_detected = count (fun r -> mode "sw-only" r && r.ar_detected);
    as_sw_escapes = count (fun r -> mode "sw-only" r && r.ar_escape);
    as_canary_rows = count (mode "sw+canary");
    as_canary_detected = count (fun r -> mode "sw+canary" r && r.ar_detected);
    as_canary_escapes = count (fun r -> mode "sw+canary" r && r.ar_escape);
    as_canary_first = count (fun r -> mode "sw+canary" r && r.ar_detected_by = "canary");
    as_latency_pairs = latency_pairs;
    as_canary_wins = canary_wins;
  }

let render_ttv years_max = function
  | None -> Printf.sprintf ">%.0f y (clean)" years_max
  | Some y -> Printf.sprintf "%.2f y" y

let render_attack_campaign ?(years_max = default_attack_campaign.ak_years_max) report =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Adversarial wearout campaign (ALU)\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  attack: %d target cell(s), stress duty %.4f -> %.4f (%d evals, %d SAT patterns, %d \
        samples)\n"
       (List.length report.ap_cells) report.ap_baseline_obj report.ap_attacked_obj
       report.ap_evals report.ap_sat_patterns report.ap_samples);
  Buffer.add_string buf
    (Printf.sprintf "  corner: fresh critical path %.1f ps, guard clock %.1f ps\n"
       report.ap_fresh_crit_ps report.ap_clock_period_ps);
  Buffer.add_string buf
    (Printf.sprintf "  time-to-first-violation: nominal %s, attacked %s, acceleration %s\n"
       (render_ttv years_max report.ap_ttv_nominal)
       (render_ttv years_max report.ap_ttv_attack)
       (match report.ap_acceleration with
       | None -> "-"
       | Some a -> Printf.sprintf "%.2fx" a));
  Buffer.add_string buf
    (Printf.sprintf "  canaries: %d inserted, CEC-proved inert\n" (List.length report.ap_canaries));
  Buffer.add_string buf
    "  kernel     spec                                mode       outcome        det  by        \
     latency      sum    polls   ovh%\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-9s  %-34s  %-9s  %-13s  %-3s  %-8s  %-11s  %-5s  %5d  %5.1f\n"
           r.ar_kernel r.ar_spec r.ar_mode r.ar_outcome
           (if r.ar_detected then "yes" else "no")
           r.ar_detected_by
           (match r.ar_latency with
           | Some (i, _) -> Printf.sprintf "%d instr" i
           | None -> "-")
           (if r.ar_checksum_ok then "ok" else "BAD")
           r.ar_polls r.ar_overhead_pct))
    report.ap_rows;
  let s = attack_summary report.ap_rows in
  Buffer.add_string buf
    (Printf.sprintf "  unguarded: %d/%d runs escaped (silent corruption)\n" s.as_unguarded_escapes
       s.as_unguarded_rows);
  Buffer.add_string buf
    (Printf.sprintf "  sw-only:   %d/%d detected, %d escaped\n" s.as_sw_detected s.as_sw_rows
       s.as_sw_escapes);
  Buffer.add_string buf
    (Printf.sprintf "  sw+canary: %d/%d detected, %d escaped; canary fired first in %d/%d\n"
       s.as_canary_detected s.as_canary_rows s.as_canary_escapes s.as_canary_first
       s.as_canary_rows);
  Buffer.add_string buf
    (Printf.sprintf "  latency:   canary channel <= software tests on %d/%d measured pair(s)\n"
       s.as_canary_wins s.as_latency_pairs);
  Buffer.contents buf

(* ---------------- Fleet campaign ----------------

   Population-level deployment of the pipeline: N devices, each with its
   own (temperature, Vdd, workload-mix) aging corner drawn from a seeded
   distribution, all shipping the same deployed test suite (built once,
   lifted at the worst fleet corner, the way a real fleet ships one
   suite).
   Per device: scan the lifetime grid for the onset of timing violations
   under the device's corner, inject the paper's capture faults at the
   onset pair, and ask whether the deployed suite detects them.  The
   population rollup is the paper's end-goal curve: violated / detected /
   escaped device counts and mean detection latency vs lifetime.
   Devices run through the Fleet work-stealing pool — per-device derived
   seeds keep the rows bit-identical across domain counts, and a device
   whose evaluation keeps failing is quarantined, not fatal. *)

type fleet_config = {
  fd_width : int;
  fd_devices : int;
  fd_seed : int;
  fd_margin : float;
  fd_specs : int;
  fd_constants : Fault.constant list;
  fd_engine : Lift.engine;
  fd_years_max : float;
  fd_year_steps : int;
  fd_temp_min_k : float;
  fd_temp_max_k : float;
  fd_vdd_min : float;
  fd_vdd_max : float;
  fd_kernels : string list;
  fd_poison : int list;
  fd_max_attempts : int;
  fd_timeout_s : float option;
}

let default_fleet =
  {
    fd_width = 16;
    fd_devices = 64;
    fd_seed = 42;
    fd_margin = 1.04;
    fd_specs = 4;
    fd_constants = [ Fault.C0; Fault.C1 ];
    fd_engine = Lift.Engine_sim64;
    fd_years_max = 10.0;
    fd_year_steps = 10;
    fd_temp_min_k = 330.0;
    fd_temp_max_k = 420.0;
    fd_vdd_min = 0.9;
    fd_vdd_max = 1.1;
    fd_kernels = [];
    fd_poison = [];
    fd_max_attempts = 3;
    fd_timeout_s = Some 120.0;
  }

let quick_fleet =
  {
    default_fleet with
    fd_width = 8;
    fd_devices = 24;
    fd_margin = 1.0;
    fd_specs = 2;
    fd_year_steps = 8;
    fd_kernels = [ "crc"; "nbody"; "fir" ];
  }

type device_corner = {
  dc_device : int;
  dc_temp_k : float;
  dc_vdd : float;
  dc_kernel : string;
}

(* the seeded corner distribution: uniform in temperature and Vdd, the
   workload mix a uniform pick from the kernel pool; deterministic in
   (fd_seed, device id) and independent of the device count *)
let fleet_corners config =
  let kernels =
    match config.fd_kernels with
    | [] -> List.map (fun (b : Workload.benchmark) -> b.Workload.name) Workload.all
    | ks -> ks
  in
  List.init config.fd_devices (fun id ->
      let st = Random.State.make [| config.fd_seed; id; 0x5eed |] in
      let dc_temp_k =
        config.fd_temp_min_k +. Random.State.float st (config.fd_temp_max_k -. config.fd_temp_min_k)
      in
      let dc_vdd = config.fd_vdd_min +. Random.State.float st (config.fd_vdd_max -. config.fd_vdd_min) in
      let dc_kernel = List.nth kernels (Random.State.int st (List.length kernels)) in
      { dc_device = id; dc_temp_k; dc_vdd; dc_kernel })

type fleet_row = {
  dv_device : int;
  dv_temp_k : float;
  dv_vdd : float;
  dv_kernel : string;
  dv_onset_idx : int option;  (** first violating lifetime-grid index (1-based) *)
  dv_worst_pair : string;
  dv_specs : int;
  dv_detected : int;
  dv_escape : bool;
  dv_latency_cycles : int option;
}

let fleet_years config i =
  config.fd_years_max *. float_of_int i /. float_of_int config.fd_year_steps

let fleet_row_to_json r =
  Json.Obj
    [
      ("device", Json.Int r.dv_device);
      ("temp_k", Json.Float r.dv_temp_k);
      ("vdd", Json.Float r.dv_vdd);
      ("kernel", Json.String r.dv_kernel);
      ("onset", match r.dv_onset_idx with None -> Json.Null | Some i -> Json.Int i);
      ("worst_pair", Json.String r.dv_worst_pair);
      ("specs", Json.Int r.dv_specs);
      ("detected", Json.Int r.dv_detected);
      ("escape", Json.Bool r.dv_escape);
      ("latency", match r.dv_latency_cycles with None -> Json.Null | Some c -> Json.Int c);
    ]

let fleet_row_of_json j =
  let open Json in
  let* dv_device = Result.bind (member "device" j) to_int in
  let* dv_temp_k = Result.bind (member "temp_k" j) to_float in
  let* dv_vdd = Result.bind (member "vdd" j) to_float in
  let* dv_kernel = Result.bind (member "kernel" j) to_str in
  let* dv_onset_idx =
    let* o = member "onset" j in
    match o with Null -> Ok None | o -> Result.map Option.some (to_int o)
  in
  let* dv_worst_pair = Result.bind (member "worst_pair" j) to_str in
  let* dv_specs = Result.bind (member "specs" j) to_int in
  let* dv_detected = Result.bind (member "detected" j) to_int in
  let* dv_escape = Result.bind (member "escape" j) to_bool in
  let* dv_latency_cycles =
    let* l = member "latency" j in
    match l with Null -> Ok None | l -> Result.map Option.some (to_int l)
  in
  Ok
    {
      dv_device;
      dv_temp_k;
      dv_vdd;
      dv_kernel;
      dv_onset_idx;
      dv_worst_pair;
      dv_specs;
      dv_detected;
      dv_escape;
      dv_latency_cycles;
    }

let fleet_digest ?netlist (c : fleet_config) =
  (* deliberately excludes the domain count and the robustness knobs
     (attempts, timeout): neither may change a row, so a run killed at
     --domains 4 must resume at --domains 1 *)
  Resilience.digest_of_strings
    [
      "vega-fleet";
      (match netlist with
      | None -> "stock"
      | Some nl -> Resilience.netlist_digest nl);
      string_of_int c.fd_width;
      string_of_int c.fd_devices;
      string_of_int c.fd_seed;
      Printf.sprintf "%.17g" c.fd_margin;
      string_of_int c.fd_specs;
      String.concat ","
        (List.map
           (function Fault.C0 -> "0" | Fault.C1 -> "1" | Fault.C_random -> "r")
           c.fd_constants);
      Lift.engine_name c.fd_engine;
      Printf.sprintf "%.17g" c.fd_years_max;
      string_of_int c.fd_year_steps;
      Printf.sprintf "%.17g" c.fd_temp_min_k;
      Printf.sprintf "%.17g" c.fd_temp_max_k;
      Printf.sprintf "%.17g" c.fd_vdd_min;
      Printf.sprintf "%.17g" c.fd_vdd_max;
      String.concat "," c.fd_kernels;
      String.concat "," (List.map string_of_int c.fd_poison);
    ]

let kernel_workload (b : Workload.benchmark) m =
  let width = (Machine.config m).Machine.width in
  let fmt = (Machine.config m).Machine.fmt in
  let compiled = Minic.compile ~width ~fmt b.Workload.program in
  Machine.reset m;
  ignore (Machine.run ~max_instructions:3_000_000 m (Minic.assemble compiled))

(* One device's evaluation: a pure function of (seed, corner) and the
   shared read-only context — the whole fleet determinism argument. *)
let fleet_eval ~config ~clock_period_ps ~nl ~sp_by_kernel ~suite ~case_prefix_cycles ~seed corner
    =
  if List.mem corner.dc_device config.fd_poison then
    failwith (Printf.sprintf "device %d is poisoned (forced persistent failure)" corner.dc_device);
  let aging_cfg =
    {
      Aging.default_config with
      Aging.temp_k = corner.dc_temp_k;
      (* overdrive accelerates BTI roughly with the square of the stress
         voltage: fold the device's Vdd corner into the 10-year anchor *)
      calibration_dvth_10y =
        Aging.default_config.Aging.calibration_dvth_10y *. corner.dc_vdd *. corner.dc_vdd;
    }
  in
  let aglib = Aging.Timing_library.build ~config:aging_cfg Cell.Library.c28 in
  let sp = List.assoc corner.dc_kernel sp_by_kernel in
  let clock_tree = Vega.default_phase1.Vega.clock_tree in
  let row ~onset ~pair ~specs ~detected ~escape ~latency =
    {
      dv_device = corner.dc_device;
      dv_temp_k = corner.dc_temp_k;
      dv_vdd = corner.dc_vdd;
      dv_kernel = corner.dc_kernel;
      dv_onset_idx = onset;
      dv_worst_pair = pair;
      dv_specs = specs;
      dv_detected = detected;
      dv_escape = escape;
      dv_latency_cycles = latency;
    }
  in
  let rec scan i =
    if i > config.fd_year_steps then None
    else begin
      let timing =
        Sta.aged_timing ~clock_tree ~sp_of_net:sp ~years:(fleet_years config i) aglib
      in
      match Sta.violating_pairs ~timing ~clock_period_ps nl with
      | [] -> scan (i + 1)
      | pairs -> Some (i, pairs)
    end
  in
  match scan 1 with
  | None -> row ~onset:None ~pair:"-" ~specs:0 ~detected:0 ~escape:false ~latency:None
  | Some (onset, pairs) -> (
    let worst =
      List.find_map
        (fun (start, Sta.At_dff end_id, check, _slack) ->
          match start with
          | Sta.From_input _ -> None
          | Sta.From_dff start_id -> Some (start_id, end_id, check))
        pairs
    in
    match worst with
    | None ->
      (* violated, but only on input-launched paths: nothing the capture
         fault model can express, so the device counts as an escape *)
      row ~onset:(Some onset) ~pair:"-" ~specs:0 ~detected:0 ~escape:true ~latency:None
    | Some (start_id, end_id, check) ->
      let start_dff = (Netlist.cell nl start_id).Netlist.name in
      let end_dff = (Netlist.cell nl end_id).Netlist.name in
      let kind =
        match check with Sta.Setup -> Fault.Setup_violation | Sta.Hold -> Fault.Hold_violation
      in
      let faulty_specs =
        List.filter_map
          (fun constant ->
            let spec =
              { Fault.start_dff; end_dff; kind; constant; activation = Fault.Any_transition }
            in
            match Fault.failing_netlist nl spec with
            | exception _ -> None
            | faulty -> Some faulty)
          config.fd_constants
      in
      let firsts =
        List.map
          (fun faulty ->
            let det = Lift.detected_cases ~seed ~engine:config.fd_engine suite faulty in
            let first = ref None in
            Array.iteri (fun i d -> if d && !first = None then first := Some i) det;
            !first)
          faulty_specs
      in
      let detected = List.length (List.filter Option.is_some firsts) in
      let latency =
        List.fold_left
          (fun acc first ->
            match first with
            | None -> acc
            | Some i ->
              let c = case_prefix_cycles.(i) in
              Some (match acc with None -> c | Some a -> max a c))
          None firsts
      in
      row ~onset:(Some onset)
        ~pair:(Printf.sprintf "%s~%s~%s" start_dff end_dff (Serial.violation_name kind))
        ~specs:(List.length faulty_specs) ~detected
        ~escape:(faulty_specs = [] || detected < List.length faulty_specs)
        ~latency)

type fleet_point = {
  fp_years : float;
  fp_violated : int;
  fp_detected : int;
  fp_escaped : int;
  fp_mean_latency : float option;
}

type fleet_report = {
  fe_config : fleet_config;
  fe_clock_period_ps : float;
  fe_suite_cases : int;
  fe_results : (device_corner * (fleet_row, string) result) list;
      (** device order; [Error] is the quarantine message *)
  fe_curve : fleet_point list;
  fe_stats : Fleet.stats;
}

let fleet_campaign ?(config = quick_fleet) ?netlist ?(domains = 1) ?(log = fun _ -> ())
    ?checkpoint () =
  Telemetry.with_span ~cat:"experiments" "experiments.fleet_campaign" @@ fun () ->
  let target =
    let t = Lift.alu_target ~width:config.fd_width () in
    match netlist with Some nl -> { t with Lift.netlist = nl } | None -> t
  in
  let nl = target.Lift.netlist in
  log (Printf.sprintf "fleet: phase 1 aging analysis (alu%d, nominal corner)" config.fd_width);
  let analysis =
    Vega.aging_analysis
      ~config:{ Vega.default_phase1 with Vega.clock_margin = config.fd_margin }
      target ~workload:minver_workload
  in
  let clock_period_ps = analysis.Vega.clock_period_ps in
  (* the vendor lifts the deployed suite at the WORST fleet corner
     (hottest, highest Vdd, full service life): a fleet ships one test
     binary, and it must cover the most aged device it will ever meet.
     Devices whose onset pair falls outside the lifted budget are the
     campaign's escapes. *)
  let worst_pairs =
    let aging_cfg =
      {
        Aging.default_config with
        Aging.temp_k = config.fd_temp_max_k;
        calibration_dvth_10y =
          Aging.default_config.Aging.calibration_dvth_10y *. config.fd_vdd_max
          *. config.fd_vdd_max;
      }
    in
    let aglib = Aging.Timing_library.build ~config:aging_cfg Cell.Library.c28 in
    let timing =
      Sta.aged_timing
        ~clock_tree:Vega.default_phase1.Vega.clock_tree
        ~sp_of_net:analysis.Vega.sp_of_net ~years:config.fd_years_max aglib
    in
    Sta.violating_pairs ~timing ~clock_period_ps nl
  in
  (* the deployed suite is shared by the whole fleet; checkpoint it in
     shard 0 so a resumed run skips the lift *)
  let sck = Option.map (fun sh -> Resilience.Checkpoint.shard sh 0) checkpoint in
  let selected =
    match
      ck_load sck "fleet~lift" (fun j ->
          Result.bind (Json.to_list j) (Json.map_m Serial.pair_result_of_json))
    with
    | Some selected ->
      log "fleet: deployed suite restored from checkpoint";
      selected
    | None ->
      log "fleet: error lifting for the deployed suite (worst fleet corner)";
      let selected = select_campaign_pairs target worst_pairs config.fd_specs in
      ck_store sck "fleet~lift" (Json.List (List.map Serial.pair_result_to_json selected));
      selected
  in
  let suite = Lift.suite_of_results target.Lift.kind selected in
  let n_cases = List.length suite.Lift.suite_cases in
  (* schedule latency: the deployed suite runs case 0, 1, ... in order, so
     detection at case i costs the cycles of every case up to i *)
  let case_prefix_cycles =
    let acc = ref 0 in
    suite.Lift.suite_cases
    |> List.map (fun c ->
           acc :=
             !acc
             + Vega.suite_cycles { Lift.suite_target = suite.Lift.suite_target; suite_cases = [ c ] };
           !acc)
    |> Array.of_list
  in
  let kernels =
    match config.fd_kernels with
    | [] -> List.map (fun (b : Workload.benchmark) -> b.Workload.name) Workload.all
    | ks -> ks
  in
  log (Printf.sprintf "fleet: SP profiles for %d kernel(s)" (List.length kernels));
  let sp_by_kernel =
    List.map
      (fun name ->
        let b = Workload.find name in
        match Vega.replay_sp target (Vega.recorded_unit_ops target ~workload:(kernel_workload b)) with
        | Some (_, sp) -> (name, sp)
        | None -> (name, analysis.Vega.sp_of_net))
      kernels
  in
  let corners = fleet_corners config in
  let tasks =
    List.map
      (fun c -> { Fleet.tk_key = Printf.sprintf "device-%04d" c.dc_device; Fleet.tk_payload = c })
      corners
  in
  log
    (Printf.sprintf "fleet: evaluating %d device(s) on %d domain(s), %d-case deployed suite"
       config.fd_devices domains n_cases);
  let results, stats =
    Fleet.run
      ~config:
        {
          Fleet.fl_domains = domains;
          fl_max_attempts = config.fd_max_attempts;
          fl_backoff_s = 0.02;
          fl_timeout_s = config.fd_timeout_s;
        }
      ?checkpoint ~log ~seed:config.fd_seed
      ~f:(fun ~seed corner ->
        fleet_eval ~config ~clock_period_ps ~nl ~sp_by_kernel ~suite ~case_prefix_cycles ~seed
          corner)
      ~encode:fleet_row_to_json ~decode:fleet_row_of_json tasks
  in
  let fe_results =
    List.map2
      (fun corner (r : fleet_row Fleet.item_result) ->
        match (r.Fleet.fr_outcome, r.Fleet.fr_value) with
        | Fleet.Quarantined e, _ -> (corner, Error e)
        | _, Some row -> (corner, Ok row)
        | _, None -> (corner, Error "missing value"))
      corners (Array.to_list results)
  in
  let rows = List.filter_map (fun (_, r) -> Result.to_option r) fe_results in
  let fe_curve =
    List.init config.fd_year_steps (fun k ->
        let i = k + 1 in
        let active =
          List.filter
            (fun r -> match r.dv_onset_idx with Some o -> o <= i | None -> false)
            rows
        in
        let detected = List.filter (fun r -> not r.dv_escape) active in
        let latencies = List.filter_map (fun r -> r.dv_latency_cycles) detected in
        {
          fp_years = fleet_years config i;
          fp_violated = List.length active;
          fp_detected = List.length detected;
          fp_escaped = List.length active - List.length detected;
          fp_mean_latency =
            (match latencies with
            | [] -> None
            | l ->
              Some (float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)));
        })
  in
  {
    fe_config = config;
    fe_clock_period_ps = clock_period_ps;
    fe_suite_cases = n_cases;
    fe_results;
    fe_curve;
    fe_stats = stats;
  }

(* Deterministic rendering: rows and curves only.  Wall-clock health
   (steals, re-dispatches, checkpoint hits) is deliberately absent — the
   CI smoke diffs this output across domain counts and across
   kill/resume. *)
let render_fleet report =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "fleet campaign: alu%d, %d device(s), %d-case deployed suite, clock %.1f ps\n"
       report.fe_config.fd_width report.fe_config.fd_devices report.fe_suite_cases
       report.fe_clock_period_ps);
  Buffer.add_string buf
    "  device        T(K)    Vdd   kernel      onset   worst pair                    specs  det  \
     latency  escape\n";
  List.iter
    (fun (c, r) ->
      match r with
      | Error e ->
        Buffer.add_string buf
          (Printf.sprintf "  device-%04d  QUARANTINED: %s\n" c.dc_device e)
      | Ok row ->
        Buffer.add_string buf
          (Printf.sprintf "  device-%04d  %5.1f  %5.3f  %-10s  %-6s  %-28s  %5d  %3d  %-7s  %s\n"
             row.dv_device row.dv_temp_k row.dv_vdd row.dv_kernel
             (match row.dv_onset_idx with
             | None -> "-"
             | Some i -> Printf.sprintf "%.1fy" (fleet_years report.fe_config i))
             row.dv_worst_pair row.dv_specs row.dv_detected
             (match row.dv_latency_cycles with None -> "-" | Some c -> string_of_int c)
             (if row.dv_escape then "YES" else "no")))
    report.fe_results;
  Buffer.add_string buf "population vs lifetime:\n";
  Buffer.add_string buf "  years  violated  detected  escaped  mean-latency-cycles\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  %5.1f  %8d  %8d  %7d  %s\n" p.fp_years p.fp_violated p.fp_detected
           p.fp_escaped
           (match p.fp_mean_latency with None -> "-" | Some m -> Printf.sprintf "%.0f" m)))
    report.fe_curve;
  let quarantined =
    List.length (List.filter (fun (_, r) -> Result.is_error r) report.fe_results)
  in
  let violated =
    List.length
      (List.filter
         (fun (_, r) -> match r with Ok row -> row.dv_onset_idx <> None | Error _ -> false)
         report.fe_results)
  in
  let escaped =
    List.length
      (List.filter (fun (_, r) -> match r with Ok row -> row.dv_escape | Error _ -> false)
         report.fe_results)
  in
  Buffer.add_string buf
    (Printf.sprintf "summary: %d device(s): %d violated, %d detected, %d escaped, %d quarantined\n"
       (List.length report.fe_results) violated (violated - escaped) escaped quarantined);
  Buffer.contents buf

(* ---------------- run everything ---------------- *)

let run_all ?config ?(log = fun _ -> ()) () =
  let buf = Buffer.create 8192 in
  let add s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  add (render_fig4 (fig4 ()));
  add (render_table1 (table1 ()));
  add (render_table2 (table2 ()));
  let ctx = make_context ?config ~log () in
  add (render_fig8 (fig8 ctx));
  add (render_table3 (table3 ctx));
  add (render_table4 (table4 ctx));
  add (render_table4_resilient (table4_resilient ctx));
  add (render_table5 (table5 ctx));
  add (render_table6 (table6 ctx));
  add (render_table7 (table7 ctx));
  add (render_fig9 (fig9 ctx));
  Buffer.contents buf
