(* Adversarial wearout search — see attack.mli for the model.

   The evaluator is [Vega.replay_sp]: a candidate stream is replayed
   lane-parallel on the target netlist and scored as the mean BTI stress
   duty over the target cells' output nets.  The SAT assist encodes the
   netlist combinationally (truth-table clauses per cell, steady-state
   [q = d] constraints per DFF: holding inputs constant, an acyclic
   pipeline settles to exactly that fixpoint), pins the opcode port to
   each valid operation in turn, and asks for an input assignment that
   drives the target cells low — a "hold" pattern the mutation pool can
   smear across stream segments. *)

type config = {
  atk_seed : int;
  atk_len : int;
  atk_iters : int;
  atk_sat_assist : bool;
  atk_engine : Vega.profile_engine;
  atk_temp : float;
  atk_aging : Aging.config;
}

let default_config =
  {
    atk_seed = 0xA77;
    atk_len = 64;
    atk_iters = 40;
    atk_sat_assist = true;
    atk_engine = Vega.Compiled_profile;
    atk_temp = 0.05;
    atk_aging = Aging.default_config;
  }

type cell_stress = {
  cs_cell : string;
  cs_baseline_sp : float;
  cs_attacked_sp : float;
}

type result = {
  atk_cells : cell_stress list;
  atk_baseline : float;
  atk_best : float;
  atk_evals : int;
  atk_sat_patterns : int;
  atk_ops : (string * Bitvec.t) list array;
  atk_sp_of_net : Netlist.net -> float;
  atk_samples : int;
}

let skew r = r.atk_best -. r.atk_baseline

let tele_evals = Telemetry.Counter.make "attack.evals"
let tele_sat_patterns = Telemetry.Counter.make "attack.sat_patterns"
let tele_accepts = Telemetry.Counter.make "attack.accepts"

(* ---- default victims: cells on the worst fresh critical paths ---- *)

let default_targets ?(n = 16) nl =
  let report =
    Sta.analyze ~timing:(Sta.fresh_timing Cell.Library.c28) ~clock_period_ps:1.0 nl
  in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let count = ref 0 in
  List.iter
    (fun (p : Sta.path) ->
      List.iter
        (fun cid ->
          if !count < n then begin
            let name = (Netlist.cell nl cid).Netlist.name in
            if not (Hashtbl.mem seen name) then begin
              Hashtbl.replace seen name ();
              out := name :: !out;
              incr count
            end
          end)
        (List.rev p.Sta.through))
    report.Sta.setup_violations;
  List.rev !out

(* ---- SAT-assisted steady-state cone fixing ---- *)

let sat_stress_patterns (target : Lift.target) cells =
  let nl = target.Lift.netlist in
  let s = Sat.create () in
  let vars = Hashtbl.create 512 in
  let var n =
    match Hashtbl.find_opt vars n with
    | Some v -> v
    | None ->
      let v = Sat.new_var s in
      Hashtbl.replace vars n v;
      v
  in
  List.iter
    (fun (p : Netlist.port) -> Array.iter (fun n -> ignore (var n)) p.Netlist.port_nets)
    (Netlist.inputs nl);
  Array.iter
    (fun (c : Netlist.cell) ->
      let o = var c.Netlist.output in
      if c.Netlist.kind = Cell.Kind.Dff then begin
        (* steady state: with inputs held, the settled fixpoint has q = d *)
        let d = var c.Netlist.inputs.(0) in
        Sat.add_clause s [ -o; d ];
        Sat.add_clause s [ o; -d ]
      end
      else begin
        let ins = Array.map var c.Netlist.inputs in
        let k = Array.length ins in
        for m = 0 to (1 lsl k) - 1 do
          let bits = Array.init k (fun i -> m land (1 lsl i) <> 0) in
          let out = Cell.Kind.eval c.Netlist.kind bits in
          Sat.add_clause s
            ((if out then o else -o)
            :: Array.to_list (Array.mapi (fun i v -> if bits.(i) then -v else v) ins))
        done
      end)
    (Netlist.cells nl);
  let port_lits name bv =
    match
      List.find_opt (fun (p : Netlist.port) -> p.Netlist.port_name = name) (Netlist.inputs nl)
    with
    | None -> []
    | Some p ->
      Array.to_list
        (Array.mapi (fun i n -> if Bitvec.bit bv i then var n else -var n) p.Netlist.port_nets)
  in
  (* pin the opcode port to each valid operation so found patterns stay
     materializable as real instructions *)
  let opcode_assumptions =
    match target.Lift.kind with
    | Lift.Alu_module _ ->
      List.map
        (fun op -> port_lits Alu.op_port (Bitvec.create ~width:4 (Alu.op_code op)))
        Alu.all_ops
    | Lift.Fpu_module _ ->
      List.map
        (fun op ->
          port_lits Fpu.op_port (Bitvec.create ~width:3 (Fpu_format.op_code op))
          @ port_lits Fpu.in_valid_port (Bitvec.create ~width:1 1))
        Fpu_format.all_ops
  in
  let low_lits names =
    List.map (fun cname -> -var (Netlist.find_cell nl cname).Netlist.output) names
  in
  let model_pattern () =
    List.map
      (fun (p : Netlist.port) ->
        let w = Array.length p.Netlist.port_nets in
        let v = ref 0 in
        Array.iteri
          (fun i n -> if Sat.value s (var n) then v := !v lor (1 lsl i))
          p.Netlist.port_nets;
        (p.Netlist.port_name, Bitvec.create ~width:w !v))
      (Netlist.inputs nl)
  in
  let solve_for names =
    let lows = low_lits names in
    let rec try_ops = function
      | [] -> None
      | op_lits :: rest -> (
        match Sat.solve ~assumptions:(op_lits @ lows) ~max_conflicts:100_000 s with
        | Sat.Sat -> Some (model_pattern ())
        | Sat.Unsat | Sat.Unknown -> try_ops rest)
    in
    try_ops opcode_assumptions
  in
  (* all targets low at once, then each individually *)
  let patterns =
    List.filter_map Fun.id (solve_for cells :: List.map (fun c -> solve_for [ c ]) cells)
  in
  (* drop duplicates, keep order *)
  let rec dedup acc = function
    | [] -> List.rev acc
    | p :: rest -> if List.mem p acc then dedup acc rest else dedup (p :: acc) rest
  in
  dedup [] patterns

(* ---- the search ---- *)

let search ?(config = default_config) (target : Lift.target) ~cells =
  Telemetry.with_span ~cat:"attack" "attack.search" @@ fun () ->
  if cells = [] then invalid_arg "Attack.search: no target cells";
  if config.atk_len <= 0 then invalid_arg "Attack.search: stream length must be positive";
  if config.atk_iters < 0 then invalid_arg "Attack.search: iteration count must be non-negative";
  let nl = target.Lift.netlist in
  let nets =
    List.map
      (fun c ->
        match Netlist.find_cell nl c with
        | cell -> cell.Netlist.output
        | exception Not_found ->
          invalid_arg (Printf.sprintf "Attack.search: no cell named %s in %s" c (Netlist.name nl)))
      cells
  in
  let n_cells = float_of_int (List.length nets) in
  let evals = ref 0 in
  let eval ops =
    incr evals;
    Telemetry.Counter.incr tele_evals;
    match Vega.replay_sp ~engine:config.atk_engine target ops with
    | None -> (neg_infinity, 0, fun (_ : Netlist.net) -> 0.5)
    | Some (samples, sp) ->
      let duty =
        List.fold_left (fun acc n -> acc +. Aging.duty_of_sp config.atk_aging (sp n)) 0.0 nets
      in
      (duty /. n_cells, samples, sp)
  in
  let rng = Random.State.make [| config.atk_seed; 0xa77ac |] in
  let baseline =
    Testgen.random_unit_ops ~seed:config.atk_seed ~len:config.atk_len target.Lift.kind
  in
  let base_obj, base_samples, base_sp = eval baseline in
  let sat_pats = if config.atk_sat_assist then sat_stress_patterns target cells else [] in
  Telemetry.Counter.add tele_sat_patterns (List.length sat_pats);
  let cur = ref baseline and cur_obj = ref base_obj in
  let best = ref baseline and best_obj = ref base_obj in
  let best_sp = ref base_sp and best_samples = ref base_samples in
  let consider cand obj samples sp =
    if obj > !best_obj then begin
      best := cand;
      best_obj := obj;
      best_sp := sp;
      best_samples := samples
    end
  in
  (* seed candidates: each SAT pattern held for the whole stream *)
  List.iter
    (fun pat ->
      let cand = Array.make config.atk_len pat in
      let obj, samples, sp = eval cand in
      consider cand obj samples sp;
      if obj >= !cur_obj then begin
        cur := cand;
        cur_obj := obj
      end)
    sat_pats;
  let zero_assignment a = List.map (fun (p, v) -> (p, Bitvec.zero (Bitvec.width v))) a in
  let mutate ops =
    let ops = Array.copy ops in
    let n = Array.length ops in
    let seg () =
      let i = Random.State.int rng n in
      (i, i + Random.State.int rng (n - i))
    in
    (match Random.State.int rng (if sat_pats = [] then 4 else 5) with
    | 0 ->
      (* point mutation: one fresh random operation *)
      let i = Random.State.int rng n in
      ops.(i) <-
        (Testgen.random_unit_ops ~seed:(Random.State.bits rng) ~len:1 target.Lift.kind).(0)
    | 1 ->
      (* spread: copy one position over another *)
      let i = Random.State.int rng n and j = Random.State.int rng n in
      ops.(i) <- ops.(j)
    | 2 ->
      (* hold: smear one operation across a segment (kills toggling) *)
      let i, j = seg () in
      for k = i to j do
        ops.(k) <- ops.(i)
      done
    | 3 ->
      (* blackout: all-zero operands across a segment *)
      let i, j = seg () in
      let z = zero_assignment ops.(i) in
      for k = i to j do
        ops.(k) <- z
      done
    | _ ->
      (* SAT pattern: hold a solver-derived stress assignment *)
      let pat = List.nth sat_pats (Random.State.int rng (List.length sat_pats)) in
      let i, j = seg () in
      for k = i to j do
        ops.(k) <- pat
      done);
    ops
  in
  for it = 1 to config.atk_iters do
    let cand = mutate !cur in
    let obj, samples, sp = eval cand in
    let temp =
      config.atk_temp *. (1.0 -. (float_of_int it /. float_of_int (max 1 config.atk_iters)))
    in
    let accept =
      obj >= !cur_obj
      || (temp > 0.0 && Random.State.float rng 1.0 < exp ((obj -. !cur_obj) /. temp))
    in
    if accept then begin
      Telemetry.Counter.incr tele_accepts;
      cur := cand;
      cur_obj := obj
    end;
    consider cand obj samples sp
  done;
  {
    atk_cells =
      List.map2
        (fun c n -> { cs_cell = c; cs_baseline_sp = base_sp n; cs_attacked_sp = !best_sp n })
        cells nets;
    atk_baseline = base_obj;
    atk_best = !best_obj;
    atk_evals = !evals;
    atk_sat_patterns = List.length sat_pats;
    atk_ops = !best;
    atk_sp_of_net = !best_sp;
    atk_samples = !best_samples;
  }

(* ---- time to first violation under an aging corner ---- *)

let time_to_violation ?(years_max = 30.0) ?(precision = 0.05) ~timing_of_years ~clock_period_ps
    nl =
  let violates y = Sta.violating_pairs ~timing:(timing_of_years y) ~clock_period_ps nl <> [] in
  if not (violates years_max) then None
  else if violates 0.0 then Some 0.0
  else begin
    let lo = ref 0.0 and hi = ref years_max in
    while !hi -. !lo > precision do
      let mid = 0.5 *. (!lo +. !hi) in
      if violates mid then hi := mid else lo := mid
    done;
    Some !hi
  end

(* ---- stream materialization ---- *)

let workload_program (kind : Lift.module_kind) ops =
  let body =
    List.concat_map
      (fun assignment ->
        let get p = try List.assoc p assignment with Not_found -> Bitvec.zero 1 in
        match kind with
        | Lift.Alu_module _ ->
          let op =
            match
              List.find_opt
                (fun o -> Alu.op_code o = Bitvec.to_int (get Alu.op_port))
                Alu.all_ops
            with
            | Some o -> o
            | None -> Alu.Add
          in
          [
            Isa.Li (1, Bitvec.to_int (get Alu.a_port));
            Isa.Li (2, Bitvec.to_int (get Alu.b_port));
            Isa.Alu (op, 3, 1, 2);
          ]
        | Lift.Fpu_module _ ->
          if Bitvec.to_int (get Fpu.in_valid_port) = 0 then []
          else begin
            let op =
              match
                List.find_opt
                  (fun o -> Fpu_format.op_code o = Bitvec.to_int (get Fpu.op_port))
                  Fpu_format.all_ops
              with
              | Some o -> o
              | None -> Fpu_format.Fadd
            in
            [
              Isa.Li (1, Bitvec.to_int (get Fpu.a_port));
              Isa.Li (2, Bitvec.to_int (get Fpu.b_port));
              Isa.Fmv_wx (1, 1);
              Isa.Fmv_wx (2, 2);
              Isa.Fop (op, 3, 1, 2);
            ]
          end)
      (Array.to_list ops)
  in
  Isa.assemble (body @ [ Isa.Ecall Isa.exit_ok ])

(* ---- reporting ---- *)

let render r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "Adversarial stress search: %d target cell(s), %d evals, %d SAT pattern(s)\n"
    (List.length r.atk_cells) r.atk_evals r.atk_sat_patterns;
  add "  objective (mean BTI stress duty): baseline %.4f -> attack %.4f (skew +%.4f)\n"
    r.atk_baseline r.atk_best (skew r);
  List.iter
    (fun c -> add "  cell %-24s sp %.4f -> %.4f\n" c.cs_cell c.cs_baseline_sp c.cs_attacked_sp)
    r.atk_cells;
  add "  profile: %d samples over %d operations\n" r.atk_samples (Array.length r.atk_ops);
  Buffer.contents buf
