(** Adversarial wearout search: Vega inverted.

    Phase 1 measures how a {e representative} workload ages a unit; this
    module searches for the workload an adversary (or an unlucky job mix)
    would run to age {e chosen cells} as fast as possible, after "Targeted
    Wearout Attacks in Microprocessor Cores" (PAPERS.md).  Because BTI
    stress grows as a cell's output idles at logical 0 ({!Aging.duty_of_sp}
    is monotonically decreasing in signal probability), the search
    maximizes the mean stress duty of the target cells — equivalently it
    {e minimizes} their SP — over the space of unit operation streams.

    The search is seeded hill climbing with a decaying-temperature
    annealing escape hatch, evaluated on the batched SP-replay fast path
    ({!Vega.replay_sp}, compiled engine by default), plus an optional
    SAT-assisted mode that asks the CDCL solver for a steady-state input
    assignment forcing a target cell's output low through its input cone —
    the found pattern becomes a "hold" segment in the mutation pool.
    Everything is deterministic per seed. *)

type config = {
  atk_seed : int;
  atk_len : int;  (** operations per candidate stream *)
  atk_iters : int;  (** mutate/evaluate iterations *)
  atk_sat_assist : bool;  (** derive hold patterns from the SAT solver *)
  atk_engine : Vega.profile_engine;  (** SP-replay engine (default compiled) *)
  atk_temp : float;  (** initial annealing temperature; 0 = pure hill climb *)
  atk_aging : Aging.config;  (** the duty model scored by the objective *)
}

val default_config : config
(** seed 0xA77, 64-op streams, 40 iterations, SAT assist on, compiled
    engine, temperature 0.05, default aging corner. *)

type cell_stress = {
  cs_cell : string;  (** target cell instance name *)
  cs_baseline_sp : float;  (** its SP under the seed-matched random stream *)
  cs_attacked_sp : float;  (** its SP under the best stream found *)
}

type result = {
  atk_cells : cell_stress list;  (** in the caller's target order *)
  atk_baseline : float;  (** objective of the random baseline stream *)
  atk_best : float;  (** objective of the best stream found *)
  atk_evals : int;  (** SP replays spent *)
  atk_sat_patterns : int;  (** hold patterns the SAT assist contributed *)
  atk_ops : (string * Bitvec.t) list array;  (** the winning stream *)
  atk_sp_of_net : Netlist.net -> float;  (** SP profile the winner induces *)
  atk_samples : int;  (** replay samples behind that profile *)
}

val skew : result -> float
(** [atk_best -. atk_baseline] — never negative: the baseline is the
    search's starting candidate, and the best-ever candidate is kept. *)

val default_targets : ?n:int -> Netlist.t -> string list
(** Up to [n] (default 16) combinational cells on the worst fresh critical
    paths, endpoint-nearest first — the cells whose aging moves the
    violating corner soonest, and the default victims of the campaign.
    The default deliberately covers most of the worst path: attacking only
    a handful of its cells lets a toggle-happy random workload age the
    {e rest} of the path faster than the attack's hold patterns do. *)

val search : ?config:config -> Lift.target -> cells:string list -> result
(** Run the search.  @raise Invalid_argument on an empty or unknown target
    cell list, or a non-positive stream length. *)

val time_to_violation :
  ?years_max:float ->
  ?precision:float ->
  timing_of_years:(float -> Sta.timing_source) ->
  clock_period_ps:float ->
  Netlist.t ->
  float option
(** Bisect the service age (in years, to [precision], default 0.05) at
    which the first register pair violates timing under the given aging
    corner — aged arrivals grow monotonically with age, so bisection is
    exact.  [None] when even [years_max] (default 30) stays clean.  The
    acceleration factor of an attack is [ttv nominal /. ttv attack]. *)

val workload_program : Lift.module_kind -> (string * Bitvec.t) list array -> Isa.program
(** Materialize an operation stream as an ISA program (load operands,
    issue the operation; FPU streams move operands through [Fmv_wx]),
    terminated by a clean exit — the attack stream as a runnable kernel
    for the guard campaign.  Idle FPU entries (in_valid 0) are skipped. *)

val render : result -> string
(** Deterministic multi-line report (the golden-diffed artifact). *)
