(** Compiled word-parallel ("parallel-pattern") gate-level simulation.

    [Simc] is the compiled sibling of {!Sim64}: identical lane conventions
    (bit [k] of every word is simulation lane [k], {!lanes} lanes per
    word), identical observable semantics, but the netlist is translated
    once at construction into a flat superop program — one contiguous
    [int array] of (opcode, dst, src0, src1) quadruples over a
    preallocated word-per-net state array — executed by a tight
    threaded-dispatch loop with no graph traversal and zero per-cycle
    allocation.  Registers commit through a double-buffered swap.

    Construction levelizes the combinational cells into topological ranks
    (rejecting combinational cycles with a readable error), drops logic
    outside the fanin cone of the output ports and register D pins,
    collapses Buf/Not/Tie cells into read descriptors, and absorbs operand
    inversions into complementing opcodes.  Eliminated nets remain
    observable: {!net_word} falls back to an on-demand interpretation of
    the original netlist, memoized per settle.

    Settling is lazy — driving inputs or clocking an edge marks the state
    dirty and the program runs at most once per observation point — so a
    write-only [set_inputs; step] loop executes one program pass per cycle
    where {!Sim64.step} settles twice.

    With [~profile:true] the compiler is conservative (every cell emitted,
    no aliasing or elimination), making the SP/toggle counters
    byte-identical to {!Sim64}'s. *)

val lanes : int
(** Number of parallel simulation lanes per word ([= Sim64.lanes]). *)

val all_lanes : int
(** Word with every lane bit set. *)

(** {1 Levelization} *)

val levelize : Netlist.Raw.t -> (int array, string) result
(** Topological rank of every cell of a raw design: DFFs rank 0, each
    combinational cell 1 + the maximum rank of the combinational cells
    driving its inputs.  Deterministic.  [Error msg] names the cells on a
    combinational cycle (frozen {!Netlist.t} values are acyclic by
    construction, so this can only trip on hand-built raw designs). *)

(** {1 Construction} *)

type t

val create : ?profile:bool -> Netlist.t -> t
(** Compile the netlist and return a fresh simulator in the reset state.
    With [profile] (default false), SP counters are attached to every net
    and the compile is conservative so the counters match {!Sim64}'s
    exactly. *)

val netlist : t -> Netlist.t

val program_length : t -> int
(** Number of superops in the compiled program (after dead-code
    elimination and wire folding; equals the combinational cell count for
    a profiling simulator). *)

val reset : t -> unit

(** {1 Driving inputs} *)

val set_input_words : t -> string -> int array -> unit
(** Drive a port with one word per port bit, LSB first.
    @raise Invalid_argument on width mismatch. *)

val set_input_all : t -> string -> Bitvec.t -> unit
(** Drive the same value on every lane. *)

val set_input : t -> lane:int -> string -> Bitvec.t -> unit
val set_input_bit : t -> lane:int -> string -> int -> bool -> unit

val set_active_mask : t -> int -> unit
(** Restrict profile sampling to the lanes set in the mask. *)

val active_mask : t -> int

(** {1 The clock} *)

val settle : t -> unit
(** Ensure every net reflects the current inputs and register values.
    Idempotent; a no-op unless the state is dirty. *)

val step : ?sample:bool -> t -> unit
(** One full clock cycle on all lanes: settle, sample the SP counters
    (unless [~sample:false]), clock edge.  The post-edge settle is lazy. *)

val hold_clock : t -> unit
(** Settle and sample without a clock edge (clock-gated cycle). *)

val cycle : t -> int

(** {1 Observation} *)

val net_word : t -> Netlist.net -> int
(** Current word of a net: bit [k] is the net's value in lane [k].  Exact
    for every net, including nets the optimizer eliminated. *)

val net : t -> lane:int -> Netlist.net -> bool
val output_words : t -> string -> int array
val output : t -> lane:int -> string -> Bitvec.t
val input_value : t -> lane:int -> string -> Bitvec.t
val peek_cell_word : t -> string -> int

(** {1 Signal-probability profiling}

    Aggregated over all active lanes, exactly as {!Sim64}. *)

val sp : t -> Netlist.net -> float
val sp_of_cell : t -> string -> float
val toggle_rate : t -> Netlist.net -> float
val samples : t -> int
val cycles_sampled : t -> int
val ones_count : t -> Netlist.net -> int
val toggles_count : t -> Netlist.net -> int

(** {1 State snapshots} *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** @raise Invalid_argument if the snapshot was taken on a netlist with a
    different net count. *)

(** {1 Batch driving} *)

val run_random : ?seed:int -> t -> cycles:int -> unit
(** Drive every primary input with independent random words for [cycles]
    cycles (same stream as {!Sim64.run_random}). *)

(** {1 The single-lane engine view} *)

module Lane : Sim_intf.S
(** One lane of a [Simc], satisfying the shared engine signature (see
    {!Sim64.Lane} for the clock/profile sharing rules). *)

val lane_view : t -> int -> Lane.t
