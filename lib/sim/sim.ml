type t = {
  netlist : Netlist.t;
  values : bool array;  (* indexed by net *)
  ones : int array;  (* SP counters; empty when profiling is off *)
  toggles : int array;  (* transition counters; empty when profiling is off *)
  prev : bool array;  (* previous sampled values, for toggle counting *)
  mutable samples : int;
  mutable cycle : int;
  scratch : bool array array;  (* per-arity input buffers, avoids allocation *)
}

let make ?(profile = false) netlist =
  let n = Netlist.num_nets netlist in
  {
    netlist;
    values = Array.make (max n 1) false;
    ones = (if profile then Array.make (max n 1) 0 else [||]);
    toggles = (if profile then Array.make (max n 1) 0 else [||]);
    prev = (if profile then Array.make (max n 1) false else [||]);
    samples = 0;
    cycle = 0;
    scratch = Array.init 4 (fun a -> Array.make a false);
  }

let netlist t = t.netlist

let eval_cell t (c : Netlist.cell) =
  let arity = Array.length c.inputs in
  let buf = t.scratch.(arity) in
  for i = 0 to arity - 1 do
    buf.(i) <- t.values.(c.inputs.(i))
  done;
  t.values.(c.output) <- Cell.Kind.eval c.kind buf

(* Hot-path counters: a guarded int store, so instrumentation adds no
   allocation whether the sink is on or off. *)
let tele_cycles = Telemetry.Counter.make "sim.cycles"
let tele_gate_evals = Telemetry.Counter.make "sim.gate_evals"

let settle t =
  let cells = Netlist.cells t.netlist in
  let order = Netlist.topo_order t.netlist in
  Array.iter (fun id -> eval_cell t cells.(id)) order;
  Telemetry.Counter.add tele_gate_evals (Array.length order)

let reset t =
  Array.fill t.values 0 (Array.length t.values) false;
  if Array.length t.ones > 0 then begin
    Array.fill t.ones 0 (Array.length t.ones) 0;
    Array.fill t.toggles 0 (Array.length t.toggles) 0;
    Array.fill t.prev 0 (Array.length t.prev) false
  end;
  t.samples <- 0;
  t.cycle <- 0;
  let cells = Netlist.cells t.netlist in
  List.iter
    (fun id ->
      let c = cells.(id) in
      t.values.(c.output) <- c.reset_value)
    (Netlist.dffs t.netlist);
  settle t

let create ?profile netlist =
  let t = make ?profile netlist in
  reset t;
  t

let set_input t port v =
  let p = Netlist.find_input t.netlist port in
  let width = Array.length p.port_nets in
  if Bitvec.width v <> width then
    invalid_arg
      (Printf.sprintf "Sim.set_input: port %s has width %d, value has width %d" port width
         (Bitvec.width v));
  Array.iteri (fun i n -> t.values.(n) <- Bitvec.bit v i) p.port_nets

let set_input_bit t port bit v =
  let p = Netlist.find_input t.netlist port in
  if bit < 0 || bit >= Array.length p.port_nets then
    invalid_arg (Printf.sprintf "Sim.set_input_bit: port %s has no bit %d" port bit);
  t.values.(p.port_nets.(bit)) <- v

let sample_sp t =
  if Array.length t.ones > 0 then begin
    for n = 0 to Array.length t.values - 1 do
      if t.values.(n) then t.ones.(n) <- t.ones.(n) + 1;
      if t.samples > 0 && t.values.(n) <> t.prev.(n) then
        t.toggles.(n) <- t.toggles.(n) + 1;
      t.prev.(n) <- t.values.(n)
    done;
    t.samples <- t.samples + 1
  end

let step ?(sample = true) t =
  settle t;
  if sample then sample_sp t;
  let cells = Netlist.cells t.netlist in
  let dffs = Netlist.dffs t.netlist in
  (* Two-phase edge: latch all D values, then update all Qs. *)
  let captured = List.map (fun id -> (id, t.values.(cells.(id).inputs.(0)))) dffs in
  List.iter (fun (id, d) -> t.values.(cells.(id).output) <- d) captured;
  t.cycle <- t.cycle + 1;
  Telemetry.Counter.incr tele_cycles;
  settle t

let hold_clock t =
  settle t;
  sample_sp t

let cycle t = t.cycle
let net t n = t.values.(n)

(* ---- state snapshots (checkpoint/rollback support) ---- *)

type snapshot = {
  snap_values : bool array;
  snap_ones : int array;
  snap_toggles : int array;
  snap_prev : bool array;
  snap_samples : int;
  snap_cycle : int;
}

let snapshot t =
  {
    snap_values = Array.copy t.values;
    snap_ones = Array.copy t.ones;
    snap_toggles = Array.copy t.toggles;
    snap_prev = Array.copy t.prev;
    snap_samples = t.samples;
    snap_cycle = t.cycle;
  }

let restore t s =
  if Array.length s.snap_values <> Array.length t.values then
    invalid_arg "Sim.restore: snapshot was taken on a different netlist";
  Array.blit s.snap_values 0 t.values 0 (Array.length t.values);
  if Array.length t.ones > 0 && Array.length s.snap_ones = Array.length t.ones then begin
    Array.blit s.snap_ones 0 t.ones 0 (Array.length t.ones);
    Array.blit s.snap_toggles 0 t.toggles 0 (Array.length t.toggles);
    Array.blit s.snap_prev 0 t.prev 0 (Array.length t.prev)
  end;
  t.samples <- s.snap_samples;
  t.cycle <- s.snap_cycle

let port_value t (p : Netlist.port) =
  let width = Array.length p.port_nets in
  let v = ref (Bitvec.zero width) in
  Array.iteri (fun i n -> if t.values.(n) then v := Bitvec.set_bit !v i true) p.port_nets;
  !v

let output t port = port_value t (Netlist.find_output t.netlist port)
let input_value t port = port_value t (Netlist.find_input t.netlist port)

let peek_cell t name =
  let c = Netlist.find_cell t.netlist name in
  t.values.(c.output)

let check_profiling t =
  if Array.length t.ones = 0 then
    invalid_arg "Sim: simulator was created without ~profile:true";
  if t.samples = 0 then invalid_arg "Sim: no cycles sampled yet"

let sp t n =
  check_profiling t;
  float_of_int t.ones.(n) /. float_of_int t.samples

let sp_of_cell t name =
  let c = Netlist.find_cell t.netlist name in
  sp t c.output

let sp_profile t =
  check_profiling t;
  Array.to_list (Netlist.cells t.netlist)
  |> List.map (fun (c : Netlist.cell) -> (c.name, sp t c.output))

let toggle_rate t n =
  check_profiling t;
  if t.samples < 2 then 0.0 else float_of_int t.toggles.(n) /. float_of_int (t.samples - 1)

let samples t = t.samples

let run t ~cycles ~stimulus =
  for i = 0 to cycles - 1 do
    List.iter (fun (port, v) -> set_input t port v) (stimulus i);
    step t
  done

let run_random ?(seed = 0x5eed) t ~cycles =
  let rng = Random.State.make [| seed |] in
  let ports = Netlist.inputs t.netlist in
  for _ = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        let width = Array.length p.port_nets in
        let v =
          if width <= 30 then Random.State.bits rng
          else Random.State.bits rng lor (Random.State.bits rng lsl 30)
        in
        set_input t p.port_name (Bitvec.create ~width v))
      ports;
    step t
  done

(* A lanes=1 compatibility adapter satisfying the word-parallel engine
   signature, so batch consumers can select the scalar reference
   simulator through the same first-class module as Sim64/Simc.  The
   "word" of a net is its single bit; bit 0 of the active mask gates
   profile sampling (a masked-out cycle is simply not sampled). *)
module Word = struct
  type sim = t
  type t = { s : sim; mutable active : bool }

  let lanes = 1

  let create ?profile netlist = { s = create ?profile netlist; active = true }

  let netlist w = netlist w.s

  let reset w =
    reset w.s;
    w.active <- true

  let set_input_words w port words =
    let p = Netlist.find_input (netlist w) port in
    let width = Array.length p.Netlist.port_nets in
    if Array.length words <> width then
      invalid_arg
        (Printf.sprintf "Sim.Word.set_input_words: port %s has width %d, got %d words" port
           width (Array.length words));
    let v = ref (Bitvec.zero width) in
    Array.iteri (fun i word -> if word land 1 = 1 then v := Bitvec.set_bit !v i true) words;
    set_input w.s port !v

  let set_active_mask w m = w.active <- m land 1 = 1

  let settle w = settle w.s

  let step ?(sample = true) w = step ~sample:(sample && w.active) w.s

  let net_word w n = if net w.s n then 1 else 0

  let output_words w port =
    let p = Netlist.find_output (netlist w) port in
    Array.map (fun n -> if net w.s n then 1 else 0) p.Netlist.port_nets

  let sp w n = sp w.s n
  let toggle_rate w n = toggle_rate w.s n
  let samples w = samples w.s
end
