(** Value Change Dump (IEEE 1364 VCD) waveform export.

    The textual waveform format every hardware debugging tool reads
    (GTKWave, commercial simulators).  Used to dump gate-level simulation
    runs and the formal engine's counterexample traces so they can be
    inspected alongside the paper's own waveforms.

    A {!t} is an append-only builder: declare signals, then alternate
    {!set}/{!set_bit} with {!advance}.  Values are recorded only when they
    change, per the format's semantics. *)

type t
type signal

val create : ?timescale:string -> ?design:string -> unit -> t
(** Fresh dump starting at time 0 ([timescale] defaults to ["1ps"]). *)

val add_signal : t -> ?width:int -> string -> signal
(** Declare a signal (default 1 bit wide).  All declarations must precede
    the first {!set}/{!advance}.
    @raise Invalid_argument on duplicate names, widths outside
    [[1, Bitvec.max_width]], or late declarations. *)

val set : t -> signal -> Bitvec.t -> unit
(** Record the signal's value at the current time.
    @raise Invalid_argument on width mismatch. *)

val set_bit : t -> signal -> bool -> unit
(** Shorthand for 1-bit signals. *)

val advance : t -> int -> unit
(** Move time forward by [n > 0] units. *)

val now : t -> int

val to_string : t -> string
(** Render the complete VCD document. *)

(** {1 Convenience} *)

val of_sim_run :
  ?nets:(string * Netlist.net list) list ->
  Sim.t ->
  cycles:int ->
  stimulus:(int -> (string * Bitvec.t) list) ->
  string
(** Drive a simulator like {!Sim.run} while dumping the listed net groups
    (default: every input and output port) one time-unit per cycle. *)

val of_engine_run :
  (module Sim_intf.S with type t = 's) ->
  ?nets:(string * Netlist.net list) list ->
  's ->
  cycles:int ->
  stimulus:(int -> (string * Bitvec.t) list) ->
  string
(** Engine-generic {!of_sim_run}: same dump over any engine satisfying the
    shared signature — e.g. [(module Sim64.Lane)] with a {!Sim64.lane_view}
    to dump one lane of a parallel-pattern run. *)
