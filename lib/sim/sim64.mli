(** Word-parallel ("64-lane") gate-level simulation.

    A parallel-pattern simulator in the PPSFP tradition: every net holds one
    native [int] whose bits are {!lanes} independent simulation lanes, so a
    single bitwise operation evaluates {!lanes} patterns per gate, and the
    SP/toggle counters accumulate via popcount.  On a 64-bit platform
    [lanes = Sys.int_size = 63].

    The engine is cycle-for-cycle, lane-for-lane equivalent to the scalar
    {!Sim} reference model (the differential property suite in
    [test/test_sim64.ml] is the correctness anchor): lane [k] of a [Sim64]
    run behaves exactly like a scalar [Sim] fed lane [k]'s stimulus.  All
    lanes share the one clock — [step]/[hold_clock]/[reset] act on every
    lane at once.

    Profiling counters aggregate across lanes: {!samples} is the number of
    (lane, cycle) observations, and {!sp} is ones over that total, so a
    profiled run of [c] cycles with all lanes active yields the same SP as
    63 scalar runs of [c] cycles each.  {!set_active_mask} restricts which
    lanes the counters observe — used for ragged batches where the tail
    lanes run out of work. *)

type t

val lanes : int
(** Number of independent simulation lanes per word ([Sys.int_size]; 63 on
    64-bit platforms). *)

val all_lanes : int
(** The lane mask with every lane set (as a bit pattern). *)

val mask_of_count : int -> int
(** [mask_of_count n] is the mask of the first [n] lanes (all of them if
    [n >= lanes]).  @raise Invalid_argument if [n < 0]. *)

val popcount : int -> int
(** Number of set bits in a native word (table-driven). *)

val random_word : Random.State.t -> int
(** A word with {!lanes} independent uniform random bits. *)

val create : ?profile:bool -> Netlist.t -> t
(** Fresh simulator in the reset state.  The combinational topo order is
    compiled once into a flat opcode program, so [create] does the work
    that makes every subsequent {!settle} a single tight pass.  With
    [profile] (default false), SP counters are attached to every net. *)

val netlist : t -> Netlist.t

val reset : t -> unit
(** Reset: every DFF returns to its reset value in every lane, counters and
    the cycle count restart, inputs clear to zero, the active mask returns
    to {!all_lanes}. *)

(** {1 Driving inputs} *)

val set_input : t -> lane:int -> string -> Bitvec.t -> unit
(** Drive a primary input port in one lane, leaving the other lanes'
    values untouched.  Width must match the port.
    @raise Invalid_argument on width or lane mismatch. *)

val set_input_bit : t -> lane:int -> string -> int -> bool -> unit

val set_input_all : t -> string -> Bitvec.t -> unit
(** Broadcast one value to every lane of a port. *)

val set_input_words : t -> string -> int array -> unit
(** Raw fast path: drive a port from per-bit lane words, LSB first —
    [words.(i)] is the word for port bit [i], lane [k] in bit [k].
    @raise Invalid_argument if the array length differs from the port
    width. *)

(** {1 Clocking} *)

val settle : t -> unit
(** Propagate inputs and register values through the combinational logic in
    all lanes (no clock edge). *)

val step : ?sample:bool -> t -> unit
(** One full clock cycle in all lanes: settle, sample the profile counters
    over the active lanes (unless [~sample:false]), two-phase clock edge,
    settle again. *)

val hold_clock : t -> unit
(** Settle and sample without a clock edge, in all lanes. *)

val cycle : t -> int

(** {1 Reading values} *)

val net_word : t -> Netlist.net -> int
(** Raw lane word of a net (after the last settle). *)

val net : t -> lane:int -> Netlist.net -> bool
val output : t -> lane:int -> string -> Bitvec.t

val output_words : t -> string -> int array
(** Per-bit lane words of an output port, LSB first. *)

val input_value : t -> lane:int -> string -> Bitvec.t
val peek_cell_word : t -> string -> int

(** {1 Signal-probability profiling} *)

val set_active_mask : t -> int -> unit
(** Restrict which lanes the profile counters observe from the next sample
    on.  Sampling with an empty mask is a no-op (the cycle does not count).
    Inactive lanes keep their toggle-reference values. *)

val active_mask : t -> int

val sp : t -> Netlist.net -> float
(** Fraction of sampled (lane, cycle) observations in which the net held
    logical "1".
    @raise Invalid_argument without [~profile:true] or before any sample. *)

val sp_of_cell : t -> string -> float
val sp_profile : t -> (string * float) list

val toggle_rate : t -> Netlist.net -> float
(** Transitions per sampled slot, aggregated over active lanes, in
    [[0, 1]].  @raise Invalid_argument without profiling or samples. *)

val samples : t -> int
(** Total (lane, cycle) observations so far. *)

val cycles_sampled : t -> int
(** Number of sampled cycles (each contributing up to {!lanes}
    observations). *)

val ones_count : t -> Netlist.net -> int
(** Raw ones counter of a net — equals the sum of the per-lane scalar
    counters, which the differential tests check exactly.
    @raise Invalid_argument without [~profile:true]. *)

val toggles_count : t -> Netlist.net -> int

(** {1 Batch driving} *)

val run_random : ?seed:int -> t -> cycles:int -> unit
(** Drive every input bit of every lane with uniform random values for
    [cycles] cycles — {!lanes} random patterns per step. *)

(** {1 Scalar view} *)

(** A single-lane view satisfying the shared engine signature, so
    engine-generic consumers ({!Vcd.of_engine_run}, {!Power.analyze_engine})
    can drive a [Sim64].  Inputs and reads touch only the viewed lane;
    clocking and reset act on the whole engine; profile queries report the
    cross-lane aggregate. *)
module Lane : Sim_intf.S

val lane_view : t -> int -> Lane.t
(** The view of one lane.  @raise Invalid_argument if out of range. *)
