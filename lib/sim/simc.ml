(* Compiled word-parallel gate-level simulation.

   Where Sim64 interprets the netlist cell by cell on every settle, Simc
   compiles it once at construction: the combinational logic is levelized
   (topological ranks), dead logic outside the fanin cone of the outputs
   and register D pins is dropped, wire cells (Buf/Not/Tie) collapse into
   read descriptors, input inversions are absorbed into complementing
   opcodes, and what remains is emitted as one flat superop program — a
   contiguous [int array] of (opcode, dst, src0, src1) quadruples over a
   preallocated word-per-net state array.  The settle loop is then a single
   threaded-dispatch pass with no graph traversal and no per-cycle
   allocation; registers commit through a double-buffered swap.

   Settling is lazy: driving inputs or clocking an edge only marks the
   state dirty, and the program runs at most once per observation point.
   A write-only cycle loop therefore executes the program once per cycle
   where Sim64's step settles twice.

   Lane conventions are exactly Sim64's: bit [k] of every word is
   simulation lane [k], only land/lor/lxor/lnot/lsr touch words, and the
   active mask restricts profile sampling.  With [~profile:true] the
   compiler switches to a conservative mode (every cell emitted, no
   aliasing, slot = net) so the SP/toggle counters are byte-identical to
   Sim64's. *)

let lanes = Sim64.lanes
let all_lanes = Sim64.all_lanes
let popcount = Sim64.popcount

(* --- superop ISA ---

   Opcodes 0-10 mirror Sim64 (the conservative/profile compile emits only
   these); 11-13 are the polarity-absorbing forms the optimizer uses so a
   negated operand never needs a materialized Not cell.  Mux packs its
   second data operand and the select into src1 as two 31-bit fields. *)
let op_tie0 = 0

and op_tie1 = 1

and op_buf = 2

and op_not = 3

and op_and2 = 4

and op_or2 = 5

and op_xor2 = 6

and op_nand2 = 7

and op_nor2 = 8

and op_xnor2 = 9

and op_mux2 = 10

and op_andn = 11 (* src0 land lnot src1 *)

and op_orn = 12 (* src0 lor lnot src1 *)

and op_muxn = 13 (* mux with the selected-high operand complemented *)

let opcode_of_kind : Cell.Kind.t -> int = function
  | Cell.Kind.Tie0 -> op_tie0
  | Cell.Kind.Tie1 -> op_tie1
  | Cell.Kind.Buf -> op_buf
  | Cell.Kind.Not -> op_not
  | Cell.Kind.And2 -> op_and2
  | Cell.Kind.Or2 -> op_or2
  | Cell.Kind.Xor2 -> op_xor2
  | Cell.Kind.Nand2 -> op_nand2
  | Cell.Kind.Nor2 -> op_nor2
  | Cell.Kind.Xnor2 -> op_xnor2
  | Cell.Kind.Mux2 -> op_mux2
  | Cell.Kind.Dff -> invalid_arg "Simc: Dff is not a combinational opcode"

(* --- levelization --- *)

(* Topological ranks over the combinational cells of a raw design: DFFs
   get rank 0 (their Q is state, not logic), a combinational cell gets
   1 + max rank over the combinational cells driving its inputs.  The
   fixpoint sweep is deterministic (ascending cell id within each pass)
   and detects combinational cycles, which the frozen-netlist builder
   rejects but raw designs may contain. *)
let levelize (raw : Netlist.Raw.t) =
  let cells = raw.Netlist.Raw.r_cells in
  let n = Array.length cells in
  let driver_cell = Array.make (max raw.r_num_nets 1) (-1) in
  Array.iteri
    (fun i (c : Netlist.Raw.rcell) ->
      if c.rc_kind <> Cell.Kind.Dff && c.rc_output >= 0 && c.rc_output < raw.r_num_nets then
        driver_cell.(c.rc_output) <- i)
    cells;
  let rank = Array.make (max n 1) (-1) in
  let remaining = ref 0 in
  Array.iteri
    (fun i (c : Netlist.Raw.rcell) ->
      if c.rc_kind = Cell.Kind.Dff then rank.(i) <- 0 else incr remaining)
    cells;
  let progress = ref true in
  while !remaining > 0 && !progress do
    progress := false;
    for i = 0 to n - 1 do
      if rank.(i) < 0 then begin
        let ready = ref true and mx = ref 0 in
        Array.iter
          (fun inp ->
            if inp >= 0 && inp < raw.r_num_nets then begin
              let d = driver_cell.(inp) in
              if d >= 0 then
                if rank.(d) < 0 then ready := false else if rank.(d) > !mx then mx := rank.(d)
            end)
          cells.(i).rc_inputs;
        if !ready then begin
          rank.(i) <- !mx + 1;
          decr remaining;
          progress := true
        end
      end
    done
  done;
  if !remaining = 0 then Ok rank
  else begin
    (* walk unranked predecessors from the lowest unranked cell until one
       repeats; the repeat closes a combinational cycle *)
    let start = ref 0 in
    while rank.(!start) >= 0 do
      incr start
    done;
    let on_path = Array.make n (-1) in
    let path = ref [] in
    let cur = ref !start and len = ref 0 and closed = ref (-1) in
    while !closed < 0 do
      if on_path.(!cur) >= 0 then closed := !cur
      else begin
        on_path.(!cur) <- !len;
        path := !cur :: !path;
        incr len;
        let next = ref (-1) in
        Array.iter
          (fun inp ->
            if !next < 0 && inp >= 0 && inp < raw.r_num_nets then begin
              let d = driver_cell.(inp) in
              if d >= 0 && rank.(d) < 0 then next := d
            end)
          cells.(!cur).rc_inputs;
        (* an unranked cell always has an unranked combinational driver *)
        cur := !next
      end
    done;
    let cycle =
      List.rev !path
      |> List.filteri (fun i _ -> i >= on_path.(!closed))
      |> List.map (fun i -> cells.(i).Netlist.Raw.rc_name)
    in
    Error
      (Printf.sprintf "Simc.levelize: combinational cycle through cells: %s -> %s"
         (String.concat " -> " cycle)
         (List.hd cycle))
  end

(* --- the engine --- *)

type t = {
  netlist : Netlist.t;
  cells : Netlist.cell array;
  num_nets : int;
  state : int array;  (* one slot per net plus a trailing hardwired-0 slot *)
  code : int array;  (* packed superops: (op, dst, src0, src1) stride 4 *)
  segs : int array;  (* same-opcode runs: (opcode, stop offset into code) stride 2 *)
  n_ops : int;
  rd_slot : int array;  (* net -> slot holding its (possibly inverted) value *)
  rd_neg : int array;  (* net -> 0 or all_lanes: value = state.(slot) lxor neg *)
  dff_d_slot : int array;  (* resolved D read descriptor per DFF *)
  dff_d_neg : int array;
  dff_q : int array;  (* Q net (always its own slot) per DFF *)
  dff_reset : int array;  (* reset word per DFF: 0 or all-lanes *)
  q_next : int array;  (* double buffer for the register commit *)
  ones : int array;  (* SP counters; empty when profiling is off *)
  toggles : int array;
  prev : int array;
  fb_val : int array;  (* memo for fallback reads of eliminated nets *)
  fb_stamp : int array;
  mutable fb_epoch : int;
  mutable dirty : bool;  (* inputs or registers changed since the last run *)
  mutable lane_samples : int;
  mutable toggle_slots : int;
  mutable cycles_sampled : int;
  mutable cycle : int;
  mutable active : int;
}

let netlist t = t.netlist
let program_length t = t.n_ops

(* Hot-path counters, allocation-free either way (see Sim64). *)
let tele_cycles = Telemetry.Counter.make "simc.cycles"
let tele_gate_evals = Telemetry.Counter.make "simc.gate_evals"
let tele_lane_samples = Telemetry.Counter.make "simc.lane_samples"

(* Compile-time counters: compiles, superops emitted, cells collapsed into
   read descriptors, cells dropped as dead. *)
let tele_compiles = Telemetry.Counter.make "simc.compiles"
let tele_ops = Telemetry.Counter.make "simc.compiled_ops"
let tele_folded = Telemetry.Counter.make "simc.cells_folded"
let tele_dead = Telemetry.Counter.make "simc.cells_dead"

(* The dispatch loop.  The program is scheduled as same-opcode runs (see
   [compile]), so the opcode match runs once per segment and each segment
   body is a tight branch-predictable loop over its ops.  Every index in
   [code] was validated at compile time (slots are net ids or the const
   slot), so the unsafe accesses cannot go out of bounds. *)
let exec t =
  let code = t.code and v = t.state and segs = t.segs in
  let n_segs = Array.length segs lsr 1 in
  let i = ref 0 in
  for s = 0 to n_segs - 1 do
    let op = Array.unsafe_get segs (2 * s) in
    let stop = Array.unsafe_get segs ((2 * s) + 1) in
    (match op with
    | 0 (* Tie0 *) ->
      while !i < stop do
        Array.unsafe_set v (Array.unsafe_get code (!i + 1)) 0;
        i := !i + 4
      done
    | 1 (* Tie1 *) ->
      while !i < stop do
        Array.unsafe_set v (Array.unsafe_get code (!i + 1)) all_lanes;
        i := !i + 4
      done
    | 2 (* Buf *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (Array.unsafe_get v (Array.unsafe_get code (!i + 2)));
        i := !i + 4
      done
    | 3 (* Not *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (lnot (Array.unsafe_get v (Array.unsafe_get code (!i + 2))));
        i := !i + 4
      done
    | 4 (* And2 *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
          land Array.unsafe_get v (Array.unsafe_get code (!i + 3)));
        i := !i + 4
      done
    | 5 (* Or2 *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
          lor Array.unsafe_get v (Array.unsafe_get code (!i + 3)));
        i := !i + 4
      done
    | 6 (* Xor2 *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
          lxor Array.unsafe_get v (Array.unsafe_get code (!i + 3)));
        i := !i + 4
      done
    | 7 (* Nand2 *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (lnot
             (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
             land Array.unsafe_get v (Array.unsafe_get code (!i + 3))));
        i := !i + 4
      done
    | 8 (* Nor2 *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (lnot
             (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
             lor Array.unsafe_get v (Array.unsafe_get code (!i + 3))));
        i := !i + 4
      done
    | 9 (* Xnor2 *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (lnot
             (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
             lxor Array.unsafe_get v (Array.unsafe_get code (!i + 3))));
        i := !i + 4
      done
    | 10 (* Mux2: src1 packs (sel << 31) | data1 *) ->
      while !i < stop do
        let s1 = Array.unsafe_get code (!i + 3) in
        let s = Array.unsafe_get v (s1 lsr 31) in
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          ((Array.unsafe_get v (s1 land 0x7fffffff) land s)
          lor (Array.unsafe_get v (Array.unsafe_get code (!i + 2)) land lnot s));
        i := !i + 4
      done
    | 11 (* AndN *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
          land lnot (Array.unsafe_get v (Array.unsafe_get code (!i + 3))));
        i := !i + 4
      done
    | 12 (* OrN *) ->
      while !i < stop do
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          (Array.unsafe_get v (Array.unsafe_get code (!i + 2))
          lor lnot (Array.unsafe_get v (Array.unsafe_get code (!i + 3))));
        i := !i + 4
      done
    | _ (* 13 MuxN *) ->
      while !i < stop do
        let s1 = Array.unsafe_get code (!i + 3) in
        let s = Array.unsafe_get v (s1 lsr 31) in
        Array.unsafe_set v
          (Array.unsafe_get code (!i + 1))
          ((lnot (Array.unsafe_get v (s1 land 0x7fffffff)) land s)
          lor (Array.unsafe_get v (Array.unsafe_get code (!i + 2)) land lnot s));
        i := !i + 4
      done)
  done

let ensure_settled t =
  if t.dirty then begin
    exec t;
    t.dirty <- false;
    (* any memoized fallback value predates this state *)
    t.fb_epoch <- t.fb_epoch + 1;
    Telemetry.Counter.add tele_gate_evals t.n_ops
  end

(* Exact value of any net, including nets the optimizer eliminated: live
   nets read through their descriptor; dead nets are interpreted on demand
   from the netlist, memoized per settle epoch.  Callers must have settled
   first. *)
let rec fb_eval t n =
  let s = t.rd_slot.(n) in
  if s >= 0 then t.state.(s) lxor t.rd_neg.(n)
  else if t.fb_stamp.(n) = t.fb_epoch then t.fb_val.(n)
  else begin
    let v =
      match Netlist.driver t.netlist n with
      | Netlist.Driven_by_input _ -> t.state.(n)
      | Netlist.Driven_by_cell id ->
        let c = t.cells.(id) in
        (match c.Netlist.kind with
        | Cell.Kind.Tie0 -> 0
        | Cell.Kind.Tie1 -> all_lanes
        | Cell.Kind.Buf -> fb_eval t c.inputs.(0)
        | Cell.Kind.Not -> lnot (fb_eval t c.inputs.(0))
        | Cell.Kind.And2 -> fb_eval t c.inputs.(0) land fb_eval t c.inputs.(1)
        | Cell.Kind.Or2 -> fb_eval t c.inputs.(0) lor fb_eval t c.inputs.(1)
        | Cell.Kind.Xor2 -> fb_eval t c.inputs.(0) lxor fb_eval t c.inputs.(1)
        | Cell.Kind.Nand2 -> lnot (fb_eval t c.inputs.(0) land fb_eval t c.inputs.(1))
        | Cell.Kind.Nor2 -> lnot (fb_eval t c.inputs.(0) lor fb_eval t c.inputs.(1))
        | Cell.Kind.Xnor2 -> lnot (fb_eval t c.inputs.(0) lxor fb_eval t c.inputs.(1))
        | Cell.Kind.Mux2 ->
          let s = fb_eval t c.inputs.(2) in
          (fb_eval t c.inputs.(1) land s) lor (fb_eval t c.inputs.(0) land lnot s)
        | Cell.Kind.Dff -> t.state.(c.output))
    in
    t.fb_stamp.(n) <- t.fb_epoch;
    t.fb_val.(n) <- v;
    v
  end

(* --- compilation --- *)

let compile ~optimize netlist =
  let num_nets = Netlist.num_nets netlist in
  let const_slot = num_nets in
  if const_slot >= 1 lsl 30 then invalid_arg "Simc: netlist too large to compile";
  let cells = Netlist.cells netlist in
  let rank =
    match levelize (Netlist.raw netlist) with Ok r -> r | Error msg -> invalid_arg msg
  in
  let rd_slot = Array.make (max num_nets 1) (-1) in
  let rd_neg = Array.make (max num_nets 1) 0 in
  (* primary inputs and register Qs are state: they read as themselves *)
  List.iter
    (fun (p : Netlist.port) -> Array.iter (fun n -> rd_slot.(n) <- n) p.port_nets)
    (Netlist.inputs netlist);
  List.iter (fun id -> rd_slot.(cells.(id).Netlist.output) <- cells.(id).Netlist.output)
    (Netlist.dffs netlist);
  (* dead-code elimination: only cells in the combinational fanin cone of
     an output port or a register D pin are compiled *)
  let live = Array.make (max (Array.length cells) 1) (not optimize) in
  if optimize then begin
    let need = Array.make (max num_nets 1) false in
    let stack = ref [] in
    let root n =
      if not need.(n) then begin
        need.(n) <- true;
        stack := n :: !stack
      end
    in
    List.iter
      (fun (p : Netlist.port) -> Array.iter root p.port_nets)
      (Netlist.outputs netlist);
    List.iter (fun id -> root cells.(id).Netlist.inputs.(0)) (Netlist.dffs netlist);
    let rec drain () =
      match !stack with
      | [] -> ()
      | n :: rest ->
        stack := rest;
        (match Netlist.driver netlist n with
        | Netlist.Driven_by_input _ -> ()
        | Netlist.Driven_by_cell id ->
          let c = cells.(id) in
          if c.Netlist.kind <> Cell.Kind.Dff && not live.(id) then begin
            live.(id) <- true;
            Array.iter root c.inputs
          end);
        drain ()
    in
    drain ()
  end;
  (* emission order: ascending (rank, cell id) — a valid topological order,
     deterministic across runs *)
  let order =
    Array.to_list cells
    |> List.filter (fun (c : Netlist.cell) -> c.kind <> Cell.Kind.Dff && live.(c.id))
    |> List.map (fun (c : Netlist.cell) -> c.id)
    |> List.sort (fun a b ->
           let c = compare rank.(a) rank.(b) in
           if c <> 0 then c else compare a b)
  in
  let ops = ref [] and n_ops = ref 0 and folded = ref 0 in
  let emit op dst s0 s1 =
    ops := (op, dst, s0, s1) :: !ops;
    incr n_ops
  in
  let alias out s n =
    rd_slot.(out) <- s;
    rd_neg.(out) <- n;
    incr folded
  in
  let compute out op s0 s1 neg =
    emit op out s0 s1;
    rd_slot.(out) <- out;
    rd_neg.(out) <- neg
  in
  List.iter
    (fun id ->
      let c = cells.(id) in
      let out = c.Netlist.output in
      if not optimize then begin
        (* conservative: plain opcode per cell, slot = net — value-identical
           to Sim64, which the profile counters require *)
        let a = Array.length c.inputs in
        let i0 = if a > 0 then c.inputs.(0) else 0
        and i1 = if a > 1 then c.inputs.(1) else 0
        and i2 = if a > 2 then c.inputs.(2) else 0 in
        if c.kind = Cell.Kind.Mux2 then compute out op_mux2 i0 (i1 lor (i2 lsl 31)) 0
        else compute out (opcode_of_kind c.kind) i0 i1 0
      end
      else begin
        let desc n = (rd_slot.(n), rd_neg.(n)) in
        match c.kind with
        | Cell.Kind.Dff -> assert false
        | Cell.Kind.Tie0 -> alias out const_slot 0
        | Cell.Kind.Tie1 -> alias out const_slot all_lanes
        | Cell.Kind.Buf ->
          let s, n = desc c.inputs.(0) in
          alias out s n
        | Cell.Kind.Not ->
          let s, n = desc c.inputs.(0) in
          alias out s (n lxor all_lanes)
        | Cell.Kind.And2 | Cell.Kind.Nand2 | Cell.Kind.Or2 | Cell.Kind.Nor2 | Cell.Kind.Xor2
        | Cell.Kind.Xnor2 ->
          let sa, na = desc c.inputs.(0) and sb, nb = desc c.inputs.(1) in
          let inv =
            match c.kind with
            | Cell.Kind.Nand2 | Cell.Kind.Nor2 | Cell.Kind.Xnor2 -> all_lanes
            | _ -> 0
          in
          (match c.kind with
          | Cell.Kind.Xor2 | Cell.Kind.Xnor2 ->
            (* input/output inversions all fold into the descriptor *)
            if sa = const_slot && sb = const_slot then
              alias out const_slot (na lxor nb lxor inv)
            else if sa = const_slot then alias out sb (nb lxor na lxor inv)
            else if sb = const_slot then alias out sa (na lxor nb lxor inv)
            else compute out op_xor2 sa sb (na lxor nb lxor inv)
          | Cell.Kind.And2 | Cell.Kind.Nand2 ->
            if sa = const_slot then
              if na = 0 then alias out const_slot inv else alias out sb (nb lxor inv)
            else if sb = const_slot then
              if nb = 0 then alias out const_slot inv else alias out sa (na lxor inv)
            else if na = 0 && nb = 0 then compute out op_and2 sa sb inv
            else if na = 0 then compute out op_andn sa sb inv
            else if nb = 0 then compute out op_andn sb sa inv
            else (* ¬a ∧ ¬b = nor(a, b) *) compute out op_nor2 sa sb inv
          | _ (* Or2 | Nor2 *) ->
            if sa = const_slot then
              if na = 0 then alias out sb (nb lxor inv) else alias out const_slot (all_lanes lxor inv)
            else if sb = const_slot then
              if nb = 0 then alias out sa (na lxor inv) else alias out const_slot (all_lanes lxor inv)
            else if na = 0 && nb = 0 then compute out op_or2 sa sb inv
            else if na = 0 then compute out op_orn sa sb inv
            else if nb = 0 then compute out op_orn sb sa inv
            else (* ¬a ∨ ¬b = nand(a, b) *) compute out op_nand2 sa sb inv)
        | Cell.Kind.Mux2 ->
          let sa, na = desc c.inputs.(0)
          and sb, nb = desc c.inputs.(1)
          and ss, ns = desc c.inputs.(2) in
          if ss = const_slot then begin
            (* constant select picks one branch *)
            let s, n = if ns = 0 then (sa, na) else (sb, nb) in
            alias out s n
          end
          else begin
            (* an inverted select swaps the branches *)
            let sa, na, sb, nb = if ns = 0 then (sa, na, sb, nb) else (sb, nb, sa, na) in
            if sa = const_slot && sb = const_slot then begin
              if na = nb then alias out const_slot na
              else if na = 0 then (* mux(0, 1, s) = s *) alias out ss 0
              else alias out ss all_lanes
            end
            else if sa = sb && na = nb then alias out sa na
            else begin
              let s1 = sb lor (ss lsl 31) in
              (* a selection of complemented operands is the complemented
                 selection, so equal branch inversions move to the output
                 and a single mismatched one becomes MuxN *)
              if na = nb then compute out op_mux2 sa s1 na
              else if na = 0 then compute out op_muxn sa s1 0
              else compute out op_muxn sa s1 all_lanes
            end
          end
      end)
    order;
  let n = !n_ops in
  let emitted = Array.make (max n 1) (0, 0, 0, 0) in
  List.iteri (fun j op -> emitted.(n - 1 - j) <- op) !ops;
  (* Schedule: greedy opcode-affine list scheduling.  Any topological
     order of the op dependency graph is a correct program; this one
     drains all ready ops of one opcode before switching to the next, so
     the program becomes a short sequence of long same-opcode runs — the
     executor then dispatches once per run instead of once per op, and
     each run body is a branch-predictable tight loop.  Each op writes a
     distinct slot (its cell's output net), so dependencies are exactly
     producer-of-read-slot edges. *)
  let producer = Array.make (num_nets + 1) (-1) in
  Array.iteri (fun j (_, dst, _, _) -> producer.(dst) <- j) emitted;
  let indeg = Array.make (max n 1) 0 in
  let succs = Array.make (max n 1) [] in
  let add_dep j src =
    let k = producer.(src) in
    if k >= 0 && k <> j then begin
      indeg.(j) <- indeg.(j) + 1;
      succs.(k) <- j :: succs.(k)
    end
  in
  Array.iteri
    (fun j (op, _, s0, s1) ->
      if op >= 2 then add_dep j s0;
      if op = op_mux2 || op = op_muxn then begin
        add_dep j (s1 land 0x7fffffff);
        add_dep j (s1 lsr 31)
      end
      else if op >= 4 then add_dep j s1)
    emitted;
  let buckets = Array.make 14 [] in
  Array.iteri
    (fun j (op, _, _, _) -> if indeg.(j) = 0 then buckets.(op) <- j :: buckets.(op))
    emitted;
  (* emission order is reversed by the bucket push, giving a deterministic
     (if arbitrary) order within each run *)
  let code = Array.make (max (4 * n) 1) 0 in
  let segs = ref [] and n_segs = ref 0 in
  let pos = ref 0 in
  let place j =
    let op, dst, s0, s1 = emitted.(j) in
    let base = 4 * !pos in
    code.(base) <- op;
    code.(base + 1) <- dst;
    code.(base + 2) <- s0;
    code.(base + 3) <- s1;
    incr pos;
    (match !segs with
    | (o, _) :: rest when o = op -> segs := (o, base + 4) :: rest
    | _ ->
      segs := (op, base + 4) :: !segs;
      incr n_segs);
    List.iter
      (fun k ->
        indeg.(k) <- indeg.(k) - 1;
        if indeg.(k) = 0 then begin
          let kop, _, _, _ = emitted.(k) in
          buckets.(kop) <- k :: buckets.(kop)
        end)
      succs.(j)
  in
  while !pos < n do
    let b = ref 0 in
    while buckets.(!b) = [] do
      incr b
    done;
    let op = !b in
    let rec drain () =
      match buckets.(op) with
      | [] -> ()
      | j :: rest ->
        buckets.(op) <- rest;
        place j;
        drain ()
    in
    drain ()
  done;
  let seg_table = Array.make (2 * !n_segs) 0 in
  List.iteri
    (fun j (op, stop) ->
      let k = 2 * (!n_segs - 1 - j) in
      seg_table.(k) <- op;
      seg_table.(k + 1) <- stop)
    !segs;
  let dead = ref 0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      if c.kind <> Cell.Kind.Dff && not live.(c.id) then incr dead)
    cells;
  Telemetry.Counter.incr tele_compiles;
  Telemetry.Counter.add tele_ops n;
  Telemetry.Counter.add tele_folded !folded;
  Telemetry.Counter.add tele_dead !dead;
  (code, n, seg_table, rd_slot, rd_neg)

let reset t =
  Array.fill t.state 0 (Array.length t.state) 0;
  if Array.length t.ones > 0 then begin
    Array.fill t.ones 0 (Array.length t.ones) 0;
    Array.fill t.toggles 0 (Array.length t.toggles) 0;
    Array.fill t.prev 0 (Array.length t.prev) 0
  end;
  t.lane_samples <- 0;
  t.toggle_slots <- 0;
  t.cycles_sampled <- 0;
  t.cycle <- 0;
  t.active <- all_lanes;
  for i = 0 to Array.length t.dff_q - 1 do
    t.state.(t.dff_q.(i)) <- t.dff_reset.(i)
  done;
  t.dirty <- true;
  ensure_settled t

let create ?(profile = false) netlist =
  let n = Netlist.num_nets netlist in
  let cells = Netlist.cells netlist in
  let dff_ids = Array.of_list (Netlist.dffs netlist) in
  let nd = Array.length dff_ids in
  let code, n_ops, segs, rd_slot, rd_neg = compile ~optimize:(not profile) netlist in
  let t =
    {
      netlist;
      cells;
      num_nets = n;
      state = Array.make (n + 1) 0;
      code;
      segs;
      n_ops;
      rd_slot;
      rd_neg;
      dff_d_slot = Array.map (fun id -> rd_slot.(cells.(id).Netlist.inputs.(0))) dff_ids;
      dff_d_neg = Array.map (fun id -> rd_neg.(cells.(id).Netlist.inputs.(0))) dff_ids;
      dff_q = Array.map (fun id -> cells.(id).Netlist.output) dff_ids;
      dff_reset =
        Array.map (fun id -> if cells.(id).Netlist.reset_value then all_lanes else 0) dff_ids;
      q_next = Array.make (max nd 1) 0;
      ones = (if profile then Array.make (max n 1) 0 else [||]);
      toggles = (if profile then Array.make (max n 1) 0 else [||]);
      prev = (if profile then Array.make (max n 1) 0 else [||]);
      fb_val = Array.make (max n 1) 0;
      fb_stamp = Array.make (max n 1) 0;
      fb_epoch = 1;
      dirty = true;
      lane_samples = 0;
      toggle_slots = 0;
      cycles_sampled = 0;
      cycle = 0;
      active = all_lanes;
    }
  in
  reset t;
  t

(* --- driving inputs --- *)

let check_lane fn lane =
  if lane < 0 || lane >= lanes then
    invalid_arg (Printf.sprintf "Simc.%s: lane %d out of range [0, %d)" fn lane lanes)

let set_active_mask t m = t.active <- m
let active_mask t = t.active

(* Non-allocating port lookup (Netlist.find_input builds a closure and an
   option per call, which would put words on the minor heap in the
   per-cycle driving loop). *)
let rec find_in_ports what name ports =
  match ports with
  | [] -> invalid_arg (Printf.sprintf "Netlist: no %s port named %s" what name)
  | (p : Netlist.port) :: rest ->
    if String.equal p.Netlist.port_name name then p else find_in_ports what name rest

let find_input t name = find_in_ports "input" name (Netlist.inputs t.netlist)
let find_output t name = find_in_ports "output" name (Netlist.outputs t.netlist)

let set_input_words t port words =
  let p = find_input t port in
  let nets = p.Netlist.port_nets in
  let width = Array.length nets in
  if Array.length words <> width then
    invalid_arg
      (Printf.sprintf "Simc.set_input_words: port %s has width %d, got %d words" port width
         (Array.length words));
  for i = 0 to width - 1 do
    t.state.(nets.(i)) <- words.(i)
  done;
  t.dirty <- true

let set_input_all t port v =
  let p = find_input t port in
  let width = Array.length p.port_nets in
  if Bitvec.width v <> width then
    invalid_arg
      (Printf.sprintf "Simc.set_input_all: port %s has width %d, value has width %d" port width
         (Bitvec.width v));
  Array.iteri (fun i n -> t.state.(n) <- (if Bitvec.bit v i then all_lanes else 0)) p.port_nets;
  t.dirty <- true

let set_input t ~lane port v =
  check_lane "set_input" lane;
  let p = find_input t port in
  let width = Array.length p.port_nets in
  if Bitvec.width v <> width then
    invalid_arg
      (Printf.sprintf "Simc.set_input: port %s has width %d, value has width %d" port width
         (Bitvec.width v));
  let bit = 1 lsl lane in
  Array.iteri
    (fun i n ->
      if Bitvec.bit v i then t.state.(n) <- t.state.(n) lor bit
      else t.state.(n) <- t.state.(n) land lnot bit)
    p.port_nets;
  t.dirty <- true

let set_input_bit t ~lane port bit v =
  check_lane "set_input_bit" lane;
  let p = find_input t port in
  if bit < 0 || bit >= Array.length p.Netlist.port_nets then
    invalid_arg (Printf.sprintf "Simc.set_input_bit: port %s has no bit %d" port bit);
  let m = 1 lsl lane in
  let n = p.Netlist.port_nets.(bit) in
  if v then t.state.(n) <- t.state.(n) lor m else t.state.(n) <- t.state.(n) land lnot m;
  t.dirty <- true

(* --- the clock --- *)

(* In profile mode the compile was conservative (slot = net for every
   net), so reading [state] directly here observes exactly what Sim64
   observes and the counter arithmetic below is byte-identical to its. *)
let sample_sp t =
  if Array.length t.ones > 0 then begin
    let m = t.active in
    let lanes_here = popcount m in
    if lanes_here > 0 then begin
      let count_toggles = t.cycles_sampled > 0 in
      for n = 0 to t.num_nets - 1 do
        let v = t.state.(n) in
        t.ones.(n) <- t.ones.(n) + popcount (v land m);
        if count_toggles then t.toggles.(n) <- t.toggles.(n) + popcount ((v lxor t.prev.(n)) land m);
        t.prev.(n) <- v land m lor (t.prev.(n) land lnot m)
      done;
      t.lane_samples <- t.lane_samples + lanes_here;
      Telemetry.Counter.add tele_lane_samples lanes_here;
      if count_toggles then t.toggle_slots <- t.toggle_slots + lanes_here;
      t.cycles_sampled <- t.cycles_sampled + 1
    end
  end

let settle t = ensure_settled t

let step ?(sample = true) t =
  ensure_settled t;
  if sample then sample_sp t;
  let nd = Array.length t.dff_q in
  (* double-buffered commit: capture every D word, then update every Q *)
  for i = 0 to nd - 1 do
    Array.unsafe_set t.q_next i
      (Array.unsafe_get t.state (Array.unsafe_get t.dff_d_slot i)
      lxor Array.unsafe_get t.dff_d_neg i)
  done;
  for i = 0 to nd - 1 do
    Array.unsafe_set t.state (Array.unsafe_get t.dff_q i) (Array.unsafe_get t.q_next i)
  done;
  t.cycle <- t.cycle + 1;
  Telemetry.Counter.incr tele_cycles;
  (* lazy settle: the program reruns only at the next observation *)
  t.dirty <- true

let hold_clock t =
  ensure_settled t;
  sample_sp t

let cycle t = t.cycle

(* --- observation --- *)

let net_word t n =
  ensure_settled t;
  fb_eval t n

let net t ~lane n =
  check_lane "net" lane;
  (net_word t n lsr lane) land 1 = 1

let port_words t (p : Netlist.port) =
  ensure_settled t;
  Array.map (fun n -> fb_eval t n) p.port_nets

let port_value t lane (p : Netlist.port) =
  ensure_settled t;
  let v = ref (Bitvec.zero (Array.length p.port_nets)) in
  Array.iteri
    (fun i n -> if (fb_eval t n lsr lane) land 1 = 1 then v := Bitvec.set_bit !v i true)
    p.port_nets;
  !v

let output_words t port = port_words t (find_output t port)

let output t ~lane port =
  check_lane "output" lane;
  port_value t lane (find_output t port)

let input_value t ~lane port =
  check_lane "input_value" lane;
  port_value t lane (find_input t port)

let peek_cell_word t name =
  let c = Netlist.find_cell t.netlist name in
  net_word t c.output

(* --- profiling --- *)

let check_profiling t =
  if Array.length t.ones = 0 then
    invalid_arg "Simc: simulator was created without ~profile:true";
  if t.lane_samples = 0 then invalid_arg "Simc: no cycles sampled yet"

let sp t n =
  check_profiling t;
  float_of_int t.ones.(n) /. float_of_int t.lane_samples

let sp_of_cell t name =
  let c = Netlist.find_cell t.netlist name in
  sp t c.output

let toggle_rate t n =
  check_profiling t;
  if t.toggle_slots = 0 then 0.0 else float_of_int t.toggles.(n) /. float_of_int t.toggle_slots

let samples t = t.lane_samples
let cycles_sampled t = t.cycles_sampled

let ones_count t n =
  if Array.length t.ones = 0 then
    invalid_arg "Simc: simulator was created without ~profile:true";
  t.ones.(n)

let toggles_count t n =
  if Array.length t.toggles = 0 then
    invalid_arg "Simc: simulator was created without ~profile:true";
  t.toggles.(n)

(* --- snapshots --- *)

type snapshot = {
  sn_state : int array;
  sn_cycle : int;
  sn_active : int;
  sn_ones : int array;
  sn_toggles : int array;
  sn_prev : int array;
  sn_lane_samples : int;
  sn_toggle_slots : int;
  sn_cycles_sampled : int;
}

let snapshot t =
  ensure_settled t;
  {
    sn_state = Array.copy t.state;
    sn_cycle = t.cycle;
    sn_active = t.active;
    sn_ones = Array.copy t.ones;
    sn_toggles = Array.copy t.toggles;
    sn_prev = Array.copy t.prev;
    sn_lane_samples = t.lane_samples;
    sn_toggle_slots = t.toggle_slots;
    sn_cycles_sampled = t.cycles_sampled;
  }

let restore t s =
  if Array.length s.sn_state <> Array.length t.state then
    invalid_arg "Simc.restore: snapshot is from a netlist with a different net count";
  Array.blit s.sn_state 0 t.state 0 (Array.length t.state);
  t.cycle <- s.sn_cycle;
  t.active <- s.sn_active;
  if Array.length t.ones > 0 && Array.length s.sn_ones = Array.length t.ones then begin
    Array.blit s.sn_ones 0 t.ones 0 (Array.length t.ones);
    Array.blit s.sn_toggles 0 t.toggles 0 (Array.length t.toggles);
    Array.blit s.sn_prev 0 t.prev 0 (Array.length t.prev)
  end;
  t.lane_samples <- s.sn_lane_samples;
  t.toggle_slots <- s.sn_toggle_slots;
  t.cycles_sampled <- s.sn_cycles_sampled;
  (* rerunning the program from restored state is deterministic, so a
     forced settle also invalidates the fallback memo *)
  t.dirty <- true

(* --- batch driving --- *)

let run_random ?(seed = 0x5eed) t ~cycles =
  let rng = Random.State.make [| seed |] in
  let ports = Netlist.inputs t.netlist in
  for _ = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        Array.iter (fun n -> t.state.(n) <- Sim64.random_word rng) p.port_nets)
      ports;
    t.dirty <- true;
    step t
  done

(* --- the single-lane engine view --- *)

module Lane = struct
  type simc = t
  type t = { sim : simc; lane : int }

  let netlist v = netlist v.sim
  let reset v = reset v.sim
  let set_input v port value = set_input v.sim ~lane:v.lane port value
  let set_input_bit v port bit value = set_input_bit v.sim ~lane:v.lane port bit value
  let settle v = settle v.sim
  let step ?sample v = step ?sample v.sim
  let hold_clock v = hold_clock v.sim
  let cycle v = cycle v.sim
  let net v n = net v.sim ~lane:v.lane n
  let output v port = output v.sim ~lane:v.lane port
  let sp v n = sp v.sim n
  let sp_of_cell v name = sp_of_cell v.sim name
  let toggle_rate v n = toggle_rate v.sim n
  let samples v = samples v.sim
end

let lane_view t lane =
  check_lane "lane_view" lane;
  { Lane.sim = t; lane }
