type kind_row = {
  kind : Cell.Kind.t;
  count : int;
  area_um2 : float;
  leakage_nw : float;
}

type report = {
  cell_count : int;
  total_area_um2 : float;
  total_leakage_nw : float;
  total_dynamic_nw : float;
  clock_mhz : float;
  by_kind : kind_row list;
}

let analyze_engine (type s) (module E : Sim_intf.S with type t = s) lib (sim : s) ~clock_mhz =
  let nl = E.netlist sim in
  let rows = Hashtbl.create 16 in
  let dynamic = ref 0.0 in
  Array.iter
    (fun (c : Netlist.cell) ->
      let phys = Cell.Library.physical lib c.kind in
      let elec = Cell.Library.electrical lib c.kind in
      let sp = E.sp sim c.output in
      let leak =
        (sp *. phys.Cell.leakage_nw_at_1) +. ((1.0 -. sp) *. phys.Cell.leakage_nw_at_0)
      in
      (* fF * V^2 * MHz = nW *)
      dynamic :=
        !dynamic
        +. (E.toggle_rate sim c.output *. elec.Cell.cload_ff *. elec.Cell.vdd *. elec.Cell.vdd
           *. clock_mhz);
      let prev =
        match Hashtbl.find_opt rows c.kind with
        | Some r -> r
        | None -> { kind = c.kind; count = 0; area_um2 = 0.0; leakage_nw = 0.0 }
      in
      Hashtbl.replace rows c.kind
        {
          prev with
          count = prev.count + 1;
          area_um2 = prev.area_um2 +. phys.Cell.area_um2;
          leakage_nw = prev.leakage_nw +. leak;
        })
    (Netlist.cells nl);
  let by_kind =
    List.filter_map (fun k -> Hashtbl.find_opt rows k) Cell.Kind.all
  in
  {
    cell_count = Netlist.num_cells nl;
    total_area_um2 = List.fold_left (fun acc r -> acc +. r.area_um2) 0.0 by_kind;
    total_leakage_nw = List.fold_left (fun acc r -> acc +. r.leakage_nw) 0.0 by_kind;
    total_dynamic_nw = !dynamic;
    clock_mhz;
    by_kind;
  }

let analyze lib sim ~clock_mhz = analyze_engine (module Sim) lib sim ~clock_mhz

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "Area/power report (%d cells, clock %.0f MHz)\n" r.cell_count r.clock_mhz);
  Buffer.add_string buf
    (Printf.sprintf "  area %.1f um^2   leakage %.1f nW   dynamic %.1f nW\n" r.total_area_um2
       r.total_leakage_nw r.total_dynamic_nw);
  Buffer.add_string buf "  kind    count     area      leakage\n";
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "  %-6s  %5d  %8.1f um^2  %7.1f nW\n"
           (Cell.Kind.to_string row.kind) row.count row.area_um2 row.leakage_nw))
    r.by_kind;
  Buffer.contents buf
