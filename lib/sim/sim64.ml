(* Word-parallel ("parallel-pattern") gate-level simulation, PPSFP-style:
   every net holds one native int whose bits are independent simulation
   lanes, so a single land/lor/lxor evaluates [lanes] patterns at once and
   the SP/toggle counters accumulate via popcount instead of per-bit
   branches.

   Words are treated strictly as bit patterns: only land/lor/lxor/lnot/lsr
   touch them (never asr, never arithmetic), so the top (sign) bit is an
   ordinary lane.  [lnot] flips all [Sys.int_size] value bits, which is why
   no per-gate masking is needed: every bit of the word IS a lane. *)

let lanes = Sys.int_size
let all_lanes = -1 (* as a bit pattern: every lane bit set *)

let mask_of_count n =
  if n < 0 then invalid_arg "Sim64.mask_of_count: negative count"
  else if n >= lanes then all_lanes
  else (1 lsl n) - 1

(* 16-bit-table popcount over the full native word.  SWAR constants such as
   0x5555555555555555 do not fit in a 63-bit literal, so a lookup table it
   is; four probes per word, still far cheaper than 63 branches. *)
let pop_table =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count x = if x = 0 then 0 else (x land 1) + count (x lsr 1) in
    Bytes.unsafe_set t i (Char.unsafe_chr (count i))
  done;
  t

let popcount x =
  (* [lsr] on the 63-bit int leaves the top chunk below 2^15, in range. *)
  Bytes.get_uint8 pop_table (x land 0xffff)
  + Bytes.get_uint8 pop_table ((x lsr 16) land 0xffff)
  + Bytes.get_uint8 pop_table ((x lsr 32) land 0xffff)
  + Bytes.get_uint8 pop_table (x lsr 48)

let random_word rng =
  (* 63 independent random bits *)
  Random.State.bits rng
  lor (Random.State.bits rng lsl 30)
  lor ((Random.State.bits rng land 0x7) lsl 60)

(* Combinational cells are compiled once into a flat "program" (parallel
   arrays of int opcodes and net indices in topo order) so the settle loop
   is a single tight pass with an integer dispatch — no per-cell closure,
   no scratch-buffer copying, no [Cell.Kind.eval] arity checks. *)
let op_tie0 = 0

and op_tie1 = 1

and op_buf = 2

and op_not = 3

and op_and2 = 4

and op_or2 = 5

and op_xor2 = 6

and op_nand2 = 7

and op_nor2 = 8

and op_xnor2 = 9

and op_mux2 = 10

let opcode_of_kind : Cell.Kind.t -> int = function
  | Cell.Kind.Tie0 -> op_tie0
  | Cell.Kind.Tie1 -> op_tie1
  | Cell.Kind.Buf -> op_buf
  | Cell.Kind.Not -> op_not
  | Cell.Kind.And2 -> op_and2
  | Cell.Kind.Or2 -> op_or2
  | Cell.Kind.Xor2 -> op_xor2
  | Cell.Kind.Nand2 -> op_nand2
  | Cell.Kind.Nor2 -> op_nor2
  | Cell.Kind.Xnor2 -> op_xnor2
  | Cell.Kind.Mux2 -> op_mux2
  | Cell.Kind.Dff -> invalid_arg "Sim64: Dff is not a combinational opcode"

type t = {
  netlist : Netlist.t;
  values : int array;  (* indexed by net; one lane per bit *)
  ones : int array;  (* SP counters; empty when profiling is off *)
  toggles : int array;  (* transition counters; empty when profiling is off *)
  prev : int array;  (* previous sampled words, for toggle counting *)
  mutable lane_samples : int;  (* sum of active-lane counts over sampled cycles *)
  mutable toggle_slots : int;  (* same, excluding each run's first sampled cycle *)
  mutable cycles_sampled : int;
  mutable cycle : int;
  mutable active : int;  (* lane mask applied when sampling the counters *)
  prog_op : int array;  (* compiled topo-order combinational program *)
  prog_in0 : int array;
  prog_in1 : int array;
  prog_in2 : int array;
  prog_out : int array;
  dff_d : int array;  (* D input net per DFF *)
  dff_q : int array;  (* Q output net per DFF *)
  dff_reset : int array;  (* reset word per DFF: 0 or all-lanes *)
  edge_buf : int array;  (* captured D words; avoids per-edge allocation *)
}

let netlist t = t.netlist

let compile netlist =
  let cells = Netlist.cells netlist in
  let topo = Netlist.topo_order netlist in
  let n = Array.length topo in
  let prog_op = Array.make n 0
  and prog_in0 = Array.make n 0
  and prog_in1 = Array.make n 0
  and prog_in2 = Array.make n 0
  and prog_out = Array.make n 0 in
  Array.iteri
    (fun i id ->
      let c = cells.(id) in
      prog_op.(i) <- opcode_of_kind c.Netlist.kind;
      let arity = Array.length c.inputs in
      if arity > 0 then prog_in0.(i) <- c.inputs.(0);
      if arity > 1 then prog_in1.(i) <- c.inputs.(1);
      if arity > 2 then prog_in2.(i) <- c.inputs.(2);
      prog_out.(i) <- c.output)
    topo;
  (prog_op, prog_in0, prog_in1, prog_in2, prog_out)

(* Hot-path counters.  [Counter.add] is a guarded int store — no
   allocation either way — which is what lets the settle loop stay
   instrumented permanently (the overhead regression test asserts
   identical [Gc.minor_words] with the sink disabled). *)
let tele_cycles = Telemetry.Counter.make "sim64.cycles"
let tele_gate_evals = Telemetry.Counter.make "sim64.gate_evals"
let tele_lane_samples = Telemetry.Counter.make "sim64.lane_samples"

let settle t =
  let v = t.values in
  let op = t.prog_op
  and i0 = t.prog_in0
  and i1 = t.prog_in1
  and i2 = t.prog_in2
  and out = t.prog_out in
  let n = Array.length op in
  for i = 0 to n - 1 do
    let r =
      match op.(i) with
      | 0 (* Tie0 *) -> 0
      | 1 (* Tie1 *) -> all_lanes
      | 2 (* Buf *) -> v.(i0.(i))
      | 3 (* Not *) -> lnot v.(i0.(i))
      | 4 (* And2 *) -> v.(i0.(i)) land v.(i1.(i))
      | 5 (* Or2 *) -> v.(i0.(i)) lor v.(i1.(i))
      | 6 (* Xor2 *) -> v.(i0.(i)) lxor v.(i1.(i))
      | 7 (* Nand2 *) -> lnot (v.(i0.(i)) land v.(i1.(i)))
      | 8 (* Nor2 *) -> lnot (v.(i0.(i)) lor v.(i1.(i)))
      | 9 (* Xnor2 *) -> lnot (v.(i0.(i)) lxor v.(i1.(i)))
      | 10 (* Mux2: inputs.(2) selects between inputs.(0) and inputs.(1) *) ->
        let s = v.(i2.(i)) in
        (v.(i1.(i)) land s) lor (v.(i0.(i)) land lnot s)
      | _ -> assert false
    in
    v.(out.(i)) <- r
  done;
  Telemetry.Counter.add tele_gate_evals n

(* The trailing [settle] leaves every net consistent, mirroring [Sim]. *)
let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  if Array.length t.ones > 0 then begin
    Array.fill t.ones 0 (Array.length t.ones) 0;
    Array.fill t.toggles 0 (Array.length t.toggles) 0;
    Array.fill t.prev 0 (Array.length t.prev) 0
  end;
  t.lane_samples <- 0;
  t.toggle_slots <- 0;
  t.cycles_sampled <- 0;
  t.cycle <- 0;
  t.active <- all_lanes;
  for i = 0 to Array.length t.dff_q - 1 do
    t.values.(t.dff_q.(i)) <- t.dff_reset.(i)
  done;
  settle t

let create ?(profile = false) netlist =
  let n = Netlist.num_nets netlist in
  let cells = Netlist.cells netlist in
  let dff_ids = Array.of_list (Netlist.dffs netlist) in
  let nd = Array.length dff_ids in
  let prog_op, prog_in0, prog_in1, prog_in2, prog_out = compile netlist in
  let t =
    {
      netlist;
      values = Array.make (max n 1) 0;
      ones = (if profile then Array.make (max n 1) 0 else [||]);
      toggles = (if profile then Array.make (max n 1) 0 else [||]);
      prev = (if profile then Array.make (max n 1) 0 else [||]);
      lane_samples = 0;
      toggle_slots = 0;
      cycles_sampled = 0;
      cycle = 0;
      active = all_lanes;
      prog_op;
      prog_in0;
      prog_in1;
      prog_in2;
      prog_out;
      dff_d = Array.map (fun id -> cells.(id).Netlist.inputs.(0)) dff_ids;
      dff_q = Array.map (fun id -> cells.(id).Netlist.output) dff_ids;
      dff_reset =
        Array.map (fun id -> if cells.(id).Netlist.reset_value then all_lanes else 0) dff_ids;
      edge_buf = Array.make (max nd 1) 0;
    }
  in
  reset t;
  t

let check_lane fn lane =
  if lane < 0 || lane >= lanes then
    invalid_arg (Printf.sprintf "Sim64.%s: lane %d out of range [0, %d)" fn lane lanes)

let set_active_mask t m = t.active <- m
let active_mask t = t.active

let set_input_words t port words =
  let p = Netlist.find_input t.netlist port in
  let width = Array.length p.port_nets in
  if Array.length words <> width then
    invalid_arg
      (Printf.sprintf "Sim64.set_input_words: port %s has width %d, got %d words" port width
         (Array.length words));
  Array.iteri (fun i n -> t.values.(n) <- words.(i)) p.port_nets

let set_input_all t port v =
  let p = Netlist.find_input t.netlist port in
  let width = Array.length p.port_nets in
  if Bitvec.width v <> width then
    invalid_arg
      (Printf.sprintf "Sim64.set_input_all: port %s has width %d, value has width %d" port width
         (Bitvec.width v));
  Array.iteri (fun i n -> t.values.(n) <- (if Bitvec.bit v i then all_lanes else 0)) p.port_nets

let set_input t ~lane port v =
  check_lane "set_input" lane;
  let p = Netlist.find_input t.netlist port in
  let width = Array.length p.port_nets in
  if Bitvec.width v <> width then
    invalid_arg
      (Printf.sprintf "Sim64.set_input: port %s has width %d, value has width %d" port width
         (Bitvec.width v));
  let bit = 1 lsl lane in
  Array.iteri
    (fun i n ->
      if Bitvec.bit v i then t.values.(n) <- t.values.(n) lor bit
      else t.values.(n) <- t.values.(n) land lnot bit)
    p.port_nets

let set_input_bit t ~lane port bit v =
  check_lane "set_input_bit" lane;
  let p = Netlist.find_input t.netlist port in
  if bit < 0 || bit >= Array.length p.port_nets then
    invalid_arg (Printf.sprintf "Sim64.set_input_bit: port %s has no bit %d" port bit);
  let m = 1 lsl lane in
  let n = p.port_nets.(bit) in
  if v then t.values.(n) <- t.values.(n) lor m else t.values.(n) <- t.values.(n) land lnot m

let sample_sp t =
  if Array.length t.ones > 0 then begin
    let m = t.active in
    let lanes_here = popcount m in
    if lanes_here > 0 then begin
      let count_toggles = t.cycles_sampled > 0 in
      for n = 0 to Array.length t.values - 1 do
        let v = t.values.(n) in
        t.ones.(n) <- t.ones.(n) + popcount (v land m);
        if count_toggles then t.toggles.(n) <- t.toggles.(n) + popcount ((v lxor t.prev.(n)) land m);
        (* inactive lanes keep their toggle-reference value *)
        t.prev.(n) <- v land m lor (t.prev.(n) land lnot m)
      done;
      t.lane_samples <- t.lane_samples + lanes_here;
      Telemetry.Counter.add tele_lane_samples lanes_here;
      if count_toggles then t.toggle_slots <- t.toggle_slots + lanes_here;
      t.cycles_sampled <- t.cycles_sampled + 1
    end
  end

let step ?(sample = true) t =
  settle t;
  if sample then sample_sp t;
  let nd = Array.length t.dff_d in
  (* Two-phase edge: latch all D words, then update all Qs. *)
  for i = 0 to nd - 1 do
    t.edge_buf.(i) <- t.values.(t.dff_d.(i))
  done;
  for i = 0 to nd - 1 do
    t.values.(t.dff_q.(i)) <- t.edge_buf.(i)
  done;
  t.cycle <- t.cycle + 1;
  Telemetry.Counter.incr tele_cycles;
  settle t

let hold_clock t =
  settle t;
  sample_sp t

let cycle t = t.cycle
let net_word t n = t.values.(n)

let net t ~lane n =
  check_lane "net" lane;
  (t.values.(n) lsr lane) land 1 = 1

let port_words t (p : Netlist.port) = Array.map (fun n -> t.values.(n)) p.port_nets

let port_value t lane (p : Netlist.port) =
  let width = Array.length p.port_nets in
  let v = ref (Bitvec.zero width) in
  Array.iteri
    (fun i n -> if (t.values.(n) lsr lane) land 1 = 1 then v := Bitvec.set_bit !v i true)
    p.port_nets;
  !v

let output_words t port = port_words t (Netlist.find_output t.netlist port)

let output t ~lane port =
  check_lane "output" lane;
  port_value t lane (Netlist.find_output t.netlist port)

let input_value t ~lane port =
  check_lane "input_value" lane;
  port_value t lane (Netlist.find_input t.netlist port)

let peek_cell_word t name =
  let c = Netlist.find_cell t.netlist name in
  t.values.(c.output)

let check_profiling t =
  if Array.length t.ones = 0 then
    invalid_arg "Sim64: simulator was created without ~profile:true";
  if t.lane_samples = 0 then invalid_arg "Sim64: no cycles sampled yet"

let sp t n =
  check_profiling t;
  float_of_int t.ones.(n) /. float_of_int t.lane_samples

let sp_of_cell t name =
  let c = Netlist.find_cell t.netlist name in
  sp t c.output

let sp_profile t =
  check_profiling t;
  Array.to_list (Netlist.cells t.netlist)
  |> List.map (fun (c : Netlist.cell) -> (c.name, sp t c.output))

let toggle_rate t n =
  check_profiling t;
  if t.toggle_slots = 0 then 0.0
  else float_of_int t.toggles.(n) /. float_of_int t.toggle_slots

let samples t = t.lane_samples
let cycles_sampled t = t.cycles_sampled

let ones_count t n =
  if Array.length t.ones = 0 then
    invalid_arg "Sim64: simulator was created without ~profile:true";
  t.ones.(n)

let toggles_count t n =
  if Array.length t.toggles = 0 then
    invalid_arg "Sim64: simulator was created without ~profile:true";
  t.toggles.(n)

let run_random ?(seed = 0x5eed) t ~cycles =
  let rng = Random.State.make [| seed |] in
  let ports = Netlist.inputs t.netlist in
  for _ = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        Array.iter (fun n -> t.values.(n) <- random_word rng) p.port_nets)
      ports;
    step t
  done

(* A single-lane, scalar-typed view of one engine, satisfying the shared
   engine signature so Vcd/Power consumers can drive a Sim64 directly.
   [reset]/[settle]/[step]/[hold_clock] act on the WHOLE engine (all lanes
   share the one clock); [sp]/[toggle_rate]/[samples] report the aggregate
   over active lanes, which is exactly what a power/profile consumer
   wants from a parallel-pattern run. *)
module Lane = struct
  type sim64 = t
  type t = { sim : sim64; lane : int }

  let netlist v = netlist v.sim
  let reset v = reset v.sim
  let set_input v port value = set_input v.sim ~lane:v.lane port value
  let set_input_bit v port bit value = set_input_bit v.sim ~lane:v.lane port bit value
  let settle v = settle v.sim
  let step ?sample v = step ?sample v.sim
  let hold_clock v = hold_clock v.sim
  let cycle v = cycle v.sim
  let net v n = net v.sim ~lane:v.lane n
  let output v port = output v.sim ~lane:v.lane port
  let sp v n = sp v.sim n
  let sp_of_cell v name = sp_of_cell v.sim name
  let toggle_rate v n = toggle_rate v.sim n
  let samples v = samples v.sim
end

let lane_view t lane =
  check_lane "lane_view" lane;
  { Lane.sim = t; lane }
