(** The engine signature shared by the scalar reference simulator ({!Sim})
    and the per-lane view of the word-parallel simulator ({!Sim64.Lane}).

    Engine-generic consumers — {!Vcd.of_engine_run}, {!Power.analyze_engine} —
    take a first-class [(module S with type t = 'a)] witness, so any engine
    that can present a single-pattern, cycle-accurate view plugs in without
    functorising the whole call graph. *)

module type S = sig
  type t

  val netlist : t -> Netlist.t
  val reset : t -> unit

  val set_input : t -> string -> Bitvec.t -> unit
  (** Drive a primary input port.  Width must match the port.
      @raise Invalid_argument otherwise. *)

  val set_input_bit : t -> string -> int -> bool -> unit

  val settle : t -> unit
  (** Propagate inputs and register values through the combinational logic
      (no clock edge). *)

  val step : ?sample:bool -> t -> unit
  (** One full clock cycle: settle, sample the profile counters (unless
      [~sample:false]), clock edge, settle again. *)

  val hold_clock : t -> unit
  (** Settle and sample without a clock edge (clock-gated cycle). *)

  val cycle : t -> int
  val net : t -> Netlist.net -> bool
  val output : t -> string -> Bitvec.t

  val sp : t -> Netlist.net -> float
  (** Fraction of sampled (net, cycle) observations holding logical "1".
      @raise Invalid_argument without profiling or before any sample. *)

  val sp_of_cell : t -> string -> float

  val toggle_rate : t -> Netlist.net -> float
  (** Transitions per sampled slot of the net, in [[0, 1]]. *)

  val samples : t -> int
end

(** The word-parallel engine signature shared by {!Sim64} (interpreted),
    {!Simc} (compiled) and the scalar compatibility adapter {!Sim.Word}.

    Batch consumers — {!Lift.detected_cases}, {!Vega.aging_analysis} — take a
    first-class [(module WORD with type t = 'a)] witness so the simulation
    backend is selectable per call without functorising the pipeline.  All
    lane/word conventions follow {!Sim64}: bit [k] of a word is lane [k],
    [lanes] bits per word, and the active mask restricts profile sampling. *)
module type WORD = sig
  type t

  val lanes : int
  val create : ?profile:bool -> Netlist.t -> t
  val netlist : t -> Netlist.t
  val reset : t -> unit

  val set_input_words : t -> string -> int array -> unit
  (** Drive a port with one word per port bit (element [i] = net words of
      port bit [i]).  Width must match the port.
      @raise Invalid_argument otherwise. *)

  val set_active_mask : t -> int -> unit
  (** Restrict profile sampling to the lanes set in the mask. *)

  val settle : t -> unit
  val step : ?sample:bool -> t -> unit

  val net_word : t -> Netlist.net -> int
  (** Current word of a net: bit [k] is the net's value in lane [k]. *)

  val output_words : t -> string -> int array
  (** One word per output-port bit, LSB first. *)

  val sp : t -> Netlist.net -> float
  val toggle_rate : t -> Netlist.net -> float
  val samples : t -> int
end
