(** Cycle-accurate two-valued gate-level simulation.

    The simulator evaluates a {!Netlist.t} one clock cycle at a time:
    combinational cells settle in topological order, then the clock edge
    samples every DFF's [D] pin.  This is the Verilator substitute used for
    signal-probability profiling (phase 1), for validating generated test
    cases against failing netlists (Section 5.2.3), and as the netlist
    backend of the instruction-set simulator.

    Signal-probability counters can be attached to every cell output — the
    instrumentation of Section 3.2.1.  The counters are sampled once per
    {!step}, after combinational settling and before the clock edge, i.e.
    they observe the value each net holds during the cycle (the counters'
    "free-running clock" keeps sampling even when {!hold_clock} suppresses
    the circuit's own edge). *)

type t

val create : ?profile:bool -> Netlist.t -> t
(** Fresh simulator in the reset state.  With [profile] (default false), SP
    counters are attached to every net. *)

val netlist : t -> Netlist.t

val reset : t -> unit
(** Reset: every DFF returns to its reset value, the cycle counter and SP
    counters restart, inputs are cleared to zero. *)

val set_input : t -> string -> Bitvec.t -> unit
(** Drive a primary input port.  Width must match the port.
    @raise Invalid_argument otherwise. *)

val set_input_bit : t -> string -> int -> bool -> unit

val settle : t -> unit
(** Propagate the current input and register values through the
    combinational logic (no clock edge). *)

val step : ?sample:bool -> t -> unit
(** One full clock cycle: settle, sample SP counters, clock edge (DFFs
    capture), settle again so outputs reflect the post-edge state.
    [~sample:false] suppresses the SP/toggle sampling for this cycle (the
    cycle neither counts toward the totals nor updates the toggle-reference
    values) — used for pipeline warm-up cycles that should not pollute a
    profile. *)

val hold_clock : t -> unit
(** Like {!step} but with the circuit clock gated off: combinational logic
    settles, SP counters sample, no DFF captures.  Models profiling during
    clock-gated periods. *)

val cycle : t -> int
(** Number of clock edges since the last reset. *)

val net : t -> Netlist.net -> bool
(** Current value of a net (after the last settle). *)

val output : t -> string -> Bitvec.t
(** Current value of an output port. *)

val input_value : t -> string -> Bitvec.t
(** Value currently driven on an input port. *)

val peek_cell : t -> string -> bool
(** Current output value of the named cell. *)

(** {1 Signal-probability profiling} *)

val sp : t -> Netlist.net -> float
(** Fraction of sampled cycles in which the net held logical "1".
    @raise Invalid_argument if the simulator was created without
    [~profile:true] or no cycle has been sampled yet. *)

val sp_of_cell : t -> string -> float
(** SP of the named cell's output. *)

val sp_profile : t -> (string * float) list
(** SP of every cell output, by instance name, in cell order. *)

val toggle_rate : t -> Netlist.net -> float
(** Transitions per sampled cycle of the net, in [[0, 1]] — the switching
    activity that drives interconnect current density in the
    electromigration extension.
    @raise Invalid_argument without [~profile:true] or before any sample. *)

val samples : t -> int

(** {1 State snapshots} *)

type snapshot
(** A full copy of the simulator's state: every net value, the cycle
    counter, and (when profiling) the SP/toggle counters.  Backs the
    machine-level checkpoint/rollback API of the runtime guard. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rewind the simulator to a previously captured snapshot.  Execution
    after [restore t s] is bit-identical to execution after [snapshot t]
    returned [s].
    @raise Invalid_argument if the snapshot was taken on a netlist with a
    different net count. *)

(** {1 Batch driving} *)

val run :
  t -> cycles:int -> stimulus:(int -> (string * Bitvec.t) list) -> unit
(** [run t ~cycles ~stimulus] applies [stimulus cycle] to the inputs and
    {!step}s, for [cycles] cycles starting at the current cycle count. *)

val run_random : ?seed:int -> t -> cycles:int -> unit
(** Drive all primary inputs with uniform random values for [cycles]
    cycles. *)

(** {1 Word-engine adapter} *)

module Word : Sim_intf.WORD
(** A lanes=1 view of the scalar simulator satisfying the word-parallel
    engine signature, so batch consumers ({!Lift.detected_cases},
    {!Vega.aging_analysis}) can select the reference simulator through
    the same first-class module as {!Sim64} and {!Simc}.  Bit 0 of every
    word is the value; bit 0 of the active mask gates sampling. *)
