(** Test Integration (the paper's phase three, Section 3.4).

    Two integration styles are provided, as in the paper:

    - {!Runner} and {!emit_c_library}: the *software aging library* — the
      generated test cases packaged for explicit invocation, with
      sequential or randomized scheduling, an exception-raising mode for
      languages with structured error handling, and a C-source rendering of
      the suite (inline-assembly style) as the distributable artifact;

    - {!profile}/{!plan_integration}/{!instrument}: *profile-guided test
      integration* — basic-block execution counts are collected on
      representative inputs, an integration point that is routinely but not
      hotly executed is chosen under an overhead budget (with
      every-Nth-invocation gating when even the coldest routine block would
      blow the budget), and the test cases are spliced into the compiled
      program with full register save/restore. *)

(** {1 Profiling} *)

type profile = (string * int) list
(** Basic-block label to invocation count, in block order. *)

val profile : Machine.t -> Minic.compiled -> profile
(** Run the program once on the given machine (reset first) with a
    block-entry counter attached to every basic block.
    @raise Invalid_argument if the program does not exit cleanly. *)

val dynamic_instructions : Minic.compiled -> profile -> int
(** Total dynamic instruction estimate: sum over blocks of
    [count * static size]. *)

(** {1 Planning} *)

type plan = {
  chosen_block : string;
  block_count : int;  (** invocations of the chosen block in the profile *)
  gate : int option;  (** run the tests every [2^k]-th invocation *)
  test_static_size : int;  (** instructions added, including save/restore *)
  estimated_overhead : float;
      (** predicted dynamic-instruction overhead fraction (the IR-count
          comparison of Section 3.4.2) *)
}

val plan_integration :
  ?overhead_threshold:float ->
  compiled:Minic.compiled ->
  profile:profile ->
  suite:Lift.suite ->
  unit ->
  plan
(** Choose the integration point: the most frequently invoked block whose
    estimated overhead stays below [overhead_threshold] (default 0.02);
    when every block is too hot, the coldest routinely-executed block is
    gated to every Nth invocation to meet the budget.
    @raise Invalid_argument if the profile has no executed block or the
    suite is empty. *)

(** {1 Instrumentation} *)

val instrument : compiled:Minic.compiled -> suite:Lift.suite -> plan:plan -> Isa.instr list
(** The program with the suite spliced in after the chosen block's label:
    registers used by the tests are saved to the reserved save area and
    restored afterwards; with [plan.gate], a counter in the reserved
    counter area skips all but every Nth invocation.  A detection handler
    ([ecall exit_sdc]) is appended. *)

(** {1 The software aging library} *)

val emit_c_library : ?name:string -> Lift.suite -> string
(** C source for the suite: one [static inline] function per test case in
    inline-assembly style with registers as named operands, plus
    [<name>_run_all] / [<name>_run_random] drivers and an optional
    exception-trampoline hook — the library artifact of Section 3.4.1. *)

module Runner : sig
  type strategy =
    | Sequential
    | Random_order of int  (** shuffle seed *)

  exception Sdc_detected of string
  (** Argument is the detecting test case's id. *)

  val case_program : Lift.test_case -> Isa.program
  (** The standalone program for one test case: the case's instructions,
      [ecall exit_ok] on pass, [ecall exit_sdc] at the fail label. *)

  val run_tests : Machine.t -> Lift.suite -> strategy -> (unit, string) result
  (** Execute the suite case by case on the machine; [Error id] identifies
      the first detecting case.  A stalled CPU also counts as a detection
      ([Error "<id> (stall)"]).  The machine's pre-existing architectural
      state (registers, memory, counters, unit pipelines) is snapshotted on
      entry and restored on exit, so a suite run is transparent to an
      application executing on the same machine.  If the pre-test drain
      itself wedges the FPU, that is reported as
      [Error "__pre-test drain (stall)"]. *)

  val run_tests_exn : Machine.t -> Lift.suite -> strategy -> unit
  (** Like {!run_tests} but raises {!Sdc_detected} — the exception-based
      reporting mode. *)

  val run_slice : Machine.t -> Lift.suite -> index:int -> (unit, string) result
  (** Run only the [index mod length]-th case — the rotating schedule for
      callers that amortize one case per invocation (keep a counter, call
      with [index], [index+1], ...; a full rotation covers the suite).
      State-preserving like {!run_tests}. *)
end
