type profile = (string * int) list

let profile m (compiled : Minic.compiled) =
  let prog = Minic.assemble compiled in
  let block_addr =
    List.map
      (fun (b : Minic.block_info) -> (b.Minic.bb_label, Isa.label_address prog b.Minic.bb_label))
      compiled.Minic.blocks
  in
  let counts = Hashtbl.create 64 in
  let watched = Hashtbl.create 64 in
  List.iter (fun (_, addr) -> Hashtbl.replace watched addr ()) block_addr;
  Machine.reset m;
  let on_instr pc =
    if Hashtbl.mem watched pc then
      Hashtbl.replace counts pc (1 + Option.value ~default:0 (Hashtbl.find_opt counts pc))
  in
  (match Machine.run ~max_instructions:5_000_000 ~on_instr m prog with
  | Machine.Exited 0 -> ()
  | o ->
    invalid_arg
      (Format.asprintf "Integrate.profile: program did not exit cleanly (%a)" Machine.pp_outcome
         o));
  List.map
    (fun (label, addr) -> (label, Option.value ~default:0 (Hashtbl.find_opt counts addr)))
    block_addr

let dynamic_instructions (compiled : Minic.compiled) profile =
  List.fold_left
    (fun acc (b : Minic.block_info) ->
      let count = Option.value ~default:0 (List.assoc_opt b.Minic.bb_label profile) in
      acc + (count * b.Minic.bb_static_size))
    0 compiled.Minic.blocks

type plan = {
  chosen_block : string;
  block_count : int;
  gate : int option;
  test_static_size : int;
  estimated_overhead : float;
}

(* register save/restore around the spliced tests *)
let saved_int_regs = [ 5; 6; 7; 8; 9; 10; 11; 12 ]
let saved_float_regs = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let save_instrs () =
  List.mapi (fun k r -> Isa.Sw (r, 0, Minic.save_area_base + k)) saved_int_regs
  @ List.mapi
      (fun k r -> Isa.Fsw (r, 0, Minic.save_area_base + List.length saved_int_regs + k))
      saved_float_regs

let restore_instrs () =
  List.mapi (fun k r -> Isa.Lw (r, 0, Minic.save_area_base + k)) saved_int_regs
  @ List.mapi
      (fun k r -> Isa.Flw (r, 0, Minic.save_area_base + List.length saved_int_regs + k))
      saved_float_regs

let gate_instrs ~gate ~skip_label =
  match gate with
  | None -> []
  | Some k ->
    if k land (k - 1) <> 0 then invalid_arg "Integrate: gate must be a power of two";
    let cnt = Minic.counter_area_base in
    [
      Isa.Lw (5, 0, cnt);
      Isa.Alui (Alu.Add, 5, 5, 1);
      Isa.Sw (5, 0, cnt);
      Isa.Alui (Alu.And_op, 5, 5, k - 1);
      Isa.Bne (5, 0, skip_label);
    ]

let splice_block ~suite ~gate ~fail_label ~skip_label =
  save_instrs ()
  @ gate_instrs ~gate ~skip_label
  @ Lift.suite_instrs ~fail_label suite
  @ [ Isa.Label skip_label ]
  @ restore_instrs ()

let round_up_pow2 x =
  let rec go k = if k >= x then k else go (2 * k) in
  go 1

let plan_integration ?(overhead_threshold = 0.02) ~(compiled : Minic.compiled) ~profile ~suite
    () =
  if suite.Lift.suite_cases = [] then invalid_arg "Integrate.plan_integration: empty suite";
  let total = dynamic_instructions compiled profile in
  if total <= 0 then invalid_arg "Integrate.plan_integration: empty profile";
  let test_static_size =
    List.length (splice_block ~suite ~gate:(Some 2) ~fail_label:"f" ~skip_label:"s") - 1
  in
  let executed =
    List.filter (fun (_, c) -> c > 0) profile
    (* the entry stub runs exactly once and is not a routine location *)
    |> List.filter (fun (l, _) -> l <> "__start")
  in
  if executed = [] then invalid_arg "Integrate.plan_integration: no routinely executed block";
  let est count = float_of_int (count * test_static_size) /. float_of_int total in
  let by_count_desc = List.sort (fun (_, a) (_, b) -> compare b a) executed in
  match List.find_opt (fun (_, c) -> est c <= overhead_threshold) by_count_desc with
  | Some (label, count) ->
    {
      chosen_block = label;
      block_count = count;
      gate = None;
      test_static_size;
      estimated_overhead = est count;
    }
  | None ->
    (* even the coldest routine block is too hot: gate the tests *)
    let label, count =
      List.fold_left
        (fun (bl, bc) (l, c) -> if c < bc then (l, c) else (bl, bc))
        (List.hd by_count_desc) (List.tl by_count_desc)
    in
    let raw = est count in
    let k = round_up_pow2 (int_of_float (Float.ceil (raw /. overhead_threshold))) in
    {
      chosen_block = label;
      block_count = count;
      gate = Some k;
      test_static_size;
      estimated_overhead = raw /. float_of_int k;
    }

let fail_label = "__vega_detect"

let instrument ~(compiled : Minic.compiled) ~suite ~(plan : plan) =
  let skip_label = "__vega_skip" in
  let splice = splice_block ~suite ~gate:plan.gate ~fail_label ~skip_label in
  let found = ref false in
  let code =
    List.concat_map
      (fun instr ->
        match instr with
        | Isa.Label l when String.equal l plan.chosen_block && not !found ->
          found := true;
          instr :: splice
        | _ -> [ instr ])
      compiled.Minic.code
  in
  if not !found then
    invalid_arg (Printf.sprintf "Integrate.instrument: no block named %s" plan.chosen_block);
  code @ [ Isa.Label fail_label; Isa.Ecall Isa.exit_sdc ]

(* ---- the software aging library ---- *)

let emit_c_library ?(name = "vega_aging") suite =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "/* %s: aging-related SDC test library, generated by Vega.\n" name;
  add " * Each function returns 0 when the hardware behaved correctly and 1\n";
  add " * when a test case detected a miscomputation. */\n\n";
  add "#include <stdint.h>\n\n";
  let case_fn i (tc : Lift.test_case) =
    add "/* target: %s */\n" tc.Lift.tc_id;
    add "static inline int %s_case_%d(void) {\n" name i;
    add "  int detected = 0;\n";
    add "  __asm__ volatile (\n";
    List.iter
      (fun instr ->
        match instr with
        | Isa.Bne (a, b, _) -> add "    \"bne x%d, x%d, 1f\\n\\t\"\n" a b
        | _ -> add "    \"%s\\n\\t\"\n" (Format.asprintf "%a" Isa.pp_instr instr))
      (Lift.case_instrs ~fail_label:"1f" tc);
    add "    \"j 2f\\n\\t\"\n";
    add "    \"1: li %%[det], 1\\n\\t\"\n";
    add "    \"2:\\n\\t\"\n";
    add "    : [det] \"+r\" (detected)\n";
    add "    :\n";
    add "    : \"x5\", \"x6\", \"x7\", \"x8\", \"x9\", \"x10\", \"f0\", \"f1\", \"f2\", \"f3\", \"f4\", \"memory\");\n";
    add "  return detected;\n";
    add "}\n\n"
  in
  List.iteri case_fn suite.Lift.suite_cases;
  let n = List.length suite.Lift.suite_cases in
  add "typedef void (*%s_handler)(int case_id);\n\n" name;
  add "/* sequential scheduling */\n";
  add "int %s_run_all(%s_handler on_detect) {\n" name name;
  add "  int failed = 0;\n";
  List.iteri
    (fun i _ ->
      add "  if (%s_case_%d()) { failed = 1; if (on_detect) on_detect(%d); }\n" name i i)
    suite.Lift.suite_cases;
  add "  return failed;\n}\n\n";
  add "/* randomized scheduling (xorshift order) */\n";
  add "int %s_run_random(unsigned seed, %s_handler on_detect) {\n" name name;
  add "  static int (*const cases[%d])(void) = {\n" (max n 1);
  List.iteri (fun i _ -> add "    %s_case_%d,\n" name i) suite.Lift.suite_cases;
  add "  };\n";
  add "  int failed = 0;\n";
  add "  unsigned order[%d];\n" (max n 1);
  add "  for (int i = 0; i < %d; i++) order[i] = i;\n" n;
  add "  for (int i = %d - 1; i > 0; i--) {\n" n;
  add "    seed ^= seed << 7; seed ^= seed >> 9; seed ^= seed << 8;\n";
  add "    unsigned j = seed %% (i + 1);\n";
  add "    unsigned t = order[i]; order[i] = order[j]; order[j] = t;\n";
  add "  }\n";
  add "  for (int i = 0; i < %d; i++)\n" n;
  add "    if (cases[order[i]]()) { failed = 1; if (on_detect) on_detect(order[i]); }\n";
  add "  return failed;\n}\n";
  Buffer.contents buf

module Runner = struct
  type strategy = Sequential | Random_order of int

  exception Sdc_detected of string

  let shuffle seed cases =
    let arr = Array.of_list cases in
    let rng = Random.State.make [| seed |] in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list arr

  let case_program tc =
    Isa.assemble
      (Lift.case_instrs ~fail_label:"__fail" tc
      @ [ Isa.Ecall Isa.exit_ok; Isa.Label "__fail"; Isa.Ecall Isa.exit_sdc ])

  (* Run [f], restoring the machine's pre-existing architectural state
     afterwards: a guarded application resumes exactly where it left off
     even though the cases reset the machine.  A wedged in-flight FPU
     operation makes the pre-test snapshot itself stall — that, too, is a
     detection. *)
  let preserving_state m f =
    match Machine.snapshot m with
    | exception Machine.Stall_detected -> Error "__pre-test drain (stall)"
    | snap ->
      let result = try f () with e -> Machine.restore m snap; raise e in
      Machine.restore m snap;
      result

  let run_case m (tc : Lift.test_case) =
    Machine.reset m;
    match Machine.run m (case_program tc) with
    | Machine.Exited code when code = Isa.exit_ok -> Ok ()
    | Machine.Exited _ -> Error tc.Lift.tc_id
    | Machine.Stalled -> Error (tc.Lift.tc_id ^ " (stall)")
    | Machine.Out_of_fuel -> Error (tc.Lift.tc_id ^ " (no progress)")

  let run_tests m suite strategy =
    let cases =
      match strategy with
      | Sequential -> suite.Lift.suite_cases
      | Random_order seed -> shuffle seed suite.Lift.suite_cases
    in
    preserving_state m (fun () ->
        let rec go = function
          | [] -> Ok ()
          | tc :: rest -> ( match run_case m tc with Ok () -> go rest | Error _ as e -> e)
        in
        go cases)

  let run_slice m (suite : Lift.suite) ~index =
    match suite.Lift.suite_cases with
    | [] -> Ok ()
    | cases ->
      let n = List.length cases in
      let tc = List.nth cases (((index mod n) + n) mod n) in
      preserving_state m (fun () -> run_case m tc)

  let run_tests_exn m suite strategy =
    match run_tests m suite strategy with
    | Ok () -> ()
    | Error id -> raise (Sdc_detected id)
end
