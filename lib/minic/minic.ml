type typ = Tint | Tfloat

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Band | Bor | Bxor | Bshl | Bshr
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Bult | Buge
  | Bland | Blor

type unop = Uneg | Unot

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Decl of typ * string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr option
  | Break
  | Continue
  | Expr of expr

type global =
  | Gint of string * int
  | Gfloat of string * float
  | Gint_array of string * int list
  | Gfloat_array of string * float list

type func = {
  fname : string;
  params : (typ * string) list;
  ret : typ option;
  body : stmt list;
}

type program = { globals : global list; funcs : func list }

type block_info = { bb_label : string; bb_func : string; bb_static_size : int }

type compiled = {
  code : Isa.instr list;
  blocks : block_info list;
  globals_base : int;
  fmt : Fpu_format.fmt;
}

exception Compile_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* ---------------------------------------------------------------- *)
(* Runtime library: multiply / divide / float-divide, in Mini-C.     *)
(* ---------------------------------------------------------------- *)

let runtime_funcs ~width ~fmt =
  let m = fmt.Fpu_format.man_bits in
  let bias = Fpu_format.bias fmt in
  let fpw = Fpu_format.width fmt in
  let sign_mask = 1 lsl (fpw - 1) in
  let mag_mask = sign_mask - 1 in
  let recip_magic = 2 * bias lsl m in
  let min_normal = 1 lsl m in
  [
    {
      fname = "__mul";
      params = [ (Tint, "a"); (Tint, "b") ];
      ret = Some Tint;
      body =
        [
          Decl (Tint, "r", Int 0);
          While
            ( Binop (Bne, Var "b", Int 0),
              [
                If
                  ( Binop (Bne, Binop (Band, Var "b", Int 1), Int 0),
                    [ Assign ("r", Binop (Badd, Var "r", Var "a")) ],
                    [] );
                Assign ("a", Binop (Bshl, Var "a", Int 1));
                Assign ("b", Binop (Bshr, Var "b", Int 1));
              ] );
          Return (Some (Var "r"));
        ];
    };
    {
      fname = "__divu";
      params = [ (Tint, "a"); (Tint, "b") ];
      ret = Some Tint;
      body =
        [
          Decl (Tint, "q", Int 0);
          Decl (Tint, "i", Int (width - 1));
          If (Binop (Beq, Var "b", Int 0), [ Return (Some (Int 0)) ], []);
          While
            ( Binop (Bge, Var "i", Int 0),
              [
                If
                  ( Binop (Buge, Binop (Bshr, Var "a", Var "i"), Var "b"),
                    [
                      Assign ("a", Binop (Bsub, Var "a", Binop (Bshl, Var "b", Var "i")));
                      Assign ("q", Binop (Bor, Var "q", Binop (Bshl, Int 1, Var "i")));
                    ],
                    [] );
                Assign ("i", Binop (Bsub, Var "i", Int 1));
              ] );
          Return (Some (Var "q"));
        ];
    };
    {
      fname = "__div";
      params = [ (Tint, "a"); (Tint, "b") ];
      ret = Some Tint;
      body =
        [
          Decl (Tint, "neg", Int 0);
          If
            ( Binop (Blt, Var "a", Int 0),
              [ Assign ("a", Binop (Bsub, Int 0, Var "a")); Assign ("neg", Binop (Bxor, Var "neg", Int 1)) ],
              [] );
          If
            ( Binop (Blt, Var "b", Int 0),
              [ Assign ("b", Binop (Bsub, Int 0, Var "b")); Assign ("neg", Binop (Bxor, Var "neg", Int 1)) ],
              [] );
          Decl (Tint, "q", Call ("__divu", [ Var "a"; Var "b" ]));
          If (Binop (Bne, Var "neg", Int 0), [ Return (Some (Binop (Bsub, Int 0, Var "q"))) ], []);
          Return (Some (Var "q"));
        ];
    };
    {
      fname = "__mod";
      params = [ (Tint, "a"); (Tint, "b") ];
      ret = Some Tint;
      body =
        [
          Return
            (Some
               (Binop
                  (Bsub, Var "a", Call ("__mul", [ Call ("__div", [ Var "a"; Var "b" ]); Var "b" ]))));
        ];
    };
    {
      fname = "__modu";
      params = [ (Tint, "a"); (Tint, "b") ];
      ret = Some Tint;
      body =
        [
          Return
            (Some
               (Binop
                  (Bsub, Var "a", Call ("__mul", [ Call ("__divu", [ Var "a"; Var "b" ]); Var "b" ]))));
        ];
    };
    {
      fname = "__fdiv";
      params = [ (Tfloat, "a"); (Tfloat, "b") ];
      ret = Some Tfloat;
      body =
        [
          Decl (Tint, "bb", Call ("__bits", [ Var "b" ]));
          Decl (Tint, "sign", Binop (Band, Var "bb", Int sign_mask));
          Decl (Tint, "mag", Binop (Band, Var "bb", Int mag_mask));
          Decl (Tint, "est", Binop (Bsub, Int recip_magic, Var "mag"));
          If (Binop (Blt, Var "est", Int min_normal), [ Assign ("est", Int min_normal) ], []);
          Decl (Tfloat, "x", Call ("__float", [ Var "est" ]));
          Decl (Tfloat, "babs", Call ("__float", [ Var "mag" ]));
          (* Newton-Raphson: x <- x * (2 - babs * x), four rounds *)
          Assign ("x", Binop (Bmul, Var "x", Binop (Bsub, Float 2.0, Binop (Bmul, Var "babs", Var "x"))));
          Assign ("x", Binop (Bmul, Var "x", Binop (Bsub, Float 2.0, Binop (Bmul, Var "babs", Var "x"))));
          Assign ("x", Binop (Bmul, Var "x", Binop (Bsub, Float 2.0, Binop (Bmul, Var "babs", Var "x"))));
          Assign ("x", Binop (Bmul, Var "x", Binop (Bsub, Float 2.0, Binop (Bmul, Var "babs", Var "x"))));
          Decl (Tfloat, "r", Binop (Bmul, Var "a", Var "x"));
          Return (Some (Call ("__float", [ Binop (Bxor, Call ("__bits", [ Var "r" ]), Var "sign") ])));
        ];
    };
  ]

(* ---------------------------------------------------------------- *)
(* Code generation                                                   *)
(* ---------------------------------------------------------------- *)

(* register conventions *)
let reg_ra = 1
let reg_sp = 2
let int_arg_regs = [ 10; 11; 12; 13; 14; 15; 16; 17 ]
let float_arg_regs = [ 10; 11; 12; 13; 14; 15; 16; 17 ]
let int_temp_pool = [ 5; 6; 7; 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28 ]
let float_temp_pool = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 18; 19; 20 ]

(* memory layout *)
let save_area_base = 0
let counter_area_base = 16
let globals_base = 32


type gvar = { g_addr : int; g_typ : typ; g_len : int  (* 1 for scalars *) }

type fsig = { s_params : typ list; s_ret : typ option }

type cg = {
  fmt : Fpu_format.fmt;
  mutable out : Isa.instr list;  (* reversed *)
  globals : (string, gvar) Hashtbl.t;
  sigs : (string, fsig) Hashtbl.t;
  mutable label_counter : int;
  (* per-function state *)
  mutable locals : (string * (typ * int)) list;  (* name -> slot offset *)
  mutable nlocals : int;
  mutable max_locals : int;
  mutable in_use_int : int list;
  mutable in_use_float : int list;
  mutable cur_func : string;
  mutable ret_typ : typ option;
  mutable loop_labels : (string * string) list;  (* (continue, break) stack *)
}

let emit cg i = cg.out <- i :: cg.out

let fresh_label cg prefix =
  cg.label_counter <- cg.label_counter + 1;
  Printf.sprintf "__%s_%d_%s" prefix cg.label_counter cg.cur_func

let alloc_int cg =
  match List.find_opt (fun r -> not (List.mem r cg.in_use_int)) int_temp_pool with
  | Some r ->
    cg.in_use_int <- r :: cg.in_use_int;
    r
  | None -> error "expression too complex: out of integer temporaries in %s" cg.cur_func

let alloc_float cg =
  match List.find_opt (fun r -> not (List.mem r cg.in_use_float)) float_temp_pool with
  | Some r ->
    cg.in_use_float <- r :: cg.in_use_float;
    r
  | None -> error "expression too complex: out of float temporaries in %s" cg.cur_func

let free_int cg r = cg.in_use_int <- List.filter (fun x -> x <> r) cg.in_use_int
let free_float cg r = cg.in_use_float <- List.filter (fun x -> x <> r) cg.in_use_float

(* frame layout: slot 0 = ra, slots 1..max_locals = locals, then spill *)
let spill_int_slots = 16
let spill_float_slots = 13

let frame_size cg = 1 + cg.max_locals + spill_int_slots + spill_float_slots
let spill_int_off cg i = 1 + cg.max_locals + i
let spill_float_off cg i = 1 + cg.max_locals + spill_int_slots + i

let add_local cg name typ =
  if List.mem_assoc name cg.locals then error "duplicate variable %s in %s" name cg.cur_func;
  cg.nlocals <- cg.nlocals + 1;
  cg.max_locals <- max cg.max_locals cg.nlocals;
  let slot = cg.nlocals in
  cg.locals <- (name, (typ, slot)) :: cg.locals;
  slot

let lookup_var cg name =
  match List.assoc_opt name cg.locals with
  | Some (typ, slot) -> `Local (typ, slot)
  | None -> (
    match Hashtbl.find_opt cg.globals name with
    | Some g when g.g_len = 1 -> `Global g
    | Some _ -> error "array %s used without an index" name
    | None -> error "unknown variable %s" name)

let float_bits cg x = Bitvec.to_int (Fpu_format.of_float cg.fmt x)

(* ---- expression codegen: returns (register, type); the register is a
   fresh temporary owned by the caller ---- *)

let is_cmp_fop = function Fpu_format.Feq | Fpu_format.Flt | Fpu_format.Fle -> true | _ -> false
let _ = is_cmp_fop

let rec gen_expr cg e : int * typ =
  match e with
  | Int v ->
    let r = alloc_int cg in
    emit cg (Isa.Li (r, v));
    (r, Tint)
  | Float x ->
    let ri = alloc_int cg in
    emit cg (Isa.Li (ri, float_bits cg x));
    let rf = alloc_float cg in
    emit cg (Isa.Fmv_wx (rf, ri));
    free_int cg ri;
    (rf, Tfloat)
  | Var name -> (
    match lookup_var cg name with
    | `Local (Tint, slot) ->
      let r = alloc_int cg in
      emit cg (Isa.Lw (r, reg_sp, slot));
      (r, Tint)
    | `Local (Tfloat, slot) ->
      let r = alloc_float cg in
      emit cg (Isa.Flw (r, reg_sp, slot));
      (r, Tfloat)
    | `Global g ->
      if g.g_typ = Tint then begin
        let r = alloc_int cg in
        emit cg (Isa.Lw (r, 0, g.g_addr));
        (r, Tint)
      end
      else begin
        let r = alloc_float cg in
        emit cg (Isa.Flw (r, 0, g.g_addr));
        (r, Tfloat)
      end)
  | Index (name, idx_e) -> (
    match Hashtbl.find_opt cg.globals name with
    | None -> error "unknown array %s" name
    | Some g ->
      let ri, ti = gen_expr cg idx_e in
      if ti <> Tint then error "array index of %s must be an int" name;
      emit cg (Isa.Alui (Alu.Add, ri, ri, g.g_addr));
      let r =
        if g.g_typ = Tint then begin
          let r = alloc_int cg in
          emit cg (Isa.Lw (r, ri, 0));
          (r, Tint)
        end
        else begin
          let r = alloc_float cg in
          emit cg (Isa.Flw (r, ri, 0));
          (r, Tfloat)
        end
      in
      free_int cg ri;
      r)
  | Unop (Uneg, e1) -> (
    let r1, t1 = gen_expr cg e1 in
    match t1 with
    | Tint ->
      emit cg (Isa.Alu (Alu.Sub, r1, 0, r1));
      (r1, Tint)
    | Tfloat ->
      let ri = alloc_int cg in
      emit cg (Isa.Fmv_xw (ri, r1));
      emit cg (Isa.Alui (Alu.Xor_op, ri, ri, 1 lsl (Fpu_format.width cg.fmt - 1)));
      emit cg (Isa.Fmv_wx (r1, ri));
      free_int cg ri;
      (r1, Tfloat))
  | Unop (Unot, e1) ->
    let r1, t1 = gen_expr cg e1 in
    if t1 <> Tint then error "! applied to a float";
    (* r1 <- (r1 == 0) *)
    emit cg (Isa.Alu (Alu.Sltu, r1, 0, r1));
    emit cg (Isa.Alui (Alu.Xor_op, r1, r1, 1));
    (r1, Tint)
  | Binop (Bland, a, b) -> gen_short_circuit cg ~is_and:true a b
  | Binop (Blor, a, b) -> gen_short_circuit cg ~is_and:false a b
  | Binop (op, a, b) -> gen_binop cg op a b
  | Call ("__bits", [ arg ]) ->
    let rf, t = gen_expr cg arg in
    if t <> Tfloat then error "__bits expects a float";
    let ri = alloc_int cg in
    emit cg (Isa.Fmv_xw (ri, rf));
    free_float cg rf;
    (ri, Tint)
  | Call ("__float", [ arg ]) ->
    let ri, t = gen_expr cg arg in
    if t <> Tint then error "__float expects an int";
    let rf = alloc_float cg in
    emit cg (Isa.Fmv_wx (rf, ri));
    free_int cg ri;
    (rf, Tfloat)
  | Call (fname, args) -> gen_call cg fname args

and gen_short_circuit cg ~is_and a b =
  let skip = fresh_label cg "sc" in
  let ra, ta = gen_expr cg a in
  if ta <> Tint then error "logical operator on float";
  (* normalize to 0/1 *)
  emit cg (Isa.Alu (Alu.Sltu, ra, 0, ra));
  if is_and then emit cg (Isa.Beq (ra, 0, skip)) else emit cg (Isa.Bne (ra, 0, skip));
  let rb, tb = gen_expr cg b in
  if tb <> Tint then error "logical operator on float";
  emit cg (Isa.Alu (Alu.Sltu, rb, 0, rb));
  emit cg (Isa.Alu (Alu.Add, ra, rb, 0));
  free_int cg rb;
  emit cg (Isa.Label skip);
  (ra, Tint)

and gen_binop cg op a b =
  (* runtime-routine lowerings first *)
  let call2 fname = gen_call cg fname [ a; b ] in
  let ta = infer cg a in
  match (op, ta) with
  | Bmul, Tint -> call2 "__mul"
  | Bdiv, Tint -> call2 "__div"
  | Bmod, Tint -> call2 "__mod"
  | Bdiv, Tfloat -> call2 "__fdiv"
  | Bmod, Tfloat -> error "%% applied to floats"
  | _ ->
    let ra, ta = gen_expr cg a in
    let rb, tb = gen_expr cg b in
    if ta <> tb then error "operand type mismatch";
    (match ta with
    | Tint ->
      let simple k =
        emit cg (Isa.Alu (k, ra, ra, rb));
        free_int cg rb;
        (ra, Tint)
      in
      let cmp_flip k flip =
        (* k gives 0/1; flip xors the result *)
        emit cg (Isa.Alu (k, ra, ra, rb));
        if flip then emit cg (Isa.Alui (Alu.Xor_op, ra, ra, 1));
        free_int cg rb;
        (ra, Tint)
      in
      let cmp_swapped k flip =
        emit cg (Isa.Alu (k, ra, rb, ra));
        if flip then emit cg (Isa.Alui (Alu.Xor_op, ra, ra, 1));
        free_int cg rb;
        (ra, Tint)
      in
      (match op with
      | Badd -> simple Alu.Add
      | Bsub -> simple Alu.Sub
      | Band -> simple Alu.And_op
      | Bor -> simple Alu.Or_op
      | Bxor -> simple Alu.Xor_op
      | Bshl -> simple Alu.Sll
      | Bshr -> simple Alu.Srl
      | Blt -> cmp_flip Alu.Slt false
      | Bge -> cmp_flip Alu.Slt true
      | Bgt -> cmp_swapped Alu.Slt false
      | Ble -> cmp_swapped Alu.Slt true
      | Bult -> cmp_flip Alu.Sltu false
      | Buge -> cmp_flip Alu.Sltu true
      | Beq ->
        emit cg (Isa.Alu (Alu.Sub, ra, ra, rb));
        emit cg (Isa.Alu (Alu.Sltu, ra, 0, ra));
        emit cg (Isa.Alui (Alu.Xor_op, ra, ra, 1));
        free_int cg rb;
        (ra, Tint)
      | Bne ->
        emit cg (Isa.Alu (Alu.Sub, ra, ra, rb));
        emit cg (Isa.Alu (Alu.Sltu, ra, 0, ra));
        free_int cg rb;
        (ra, Tint)
      | Bmul | Bdiv | Bmod | Bland | Blor -> assert false)
    | Tfloat ->
      let arith k =
        emit cg (Isa.Fop (k, ra, ra, rb));
        free_float cg rb;
        (ra, Tfloat)
      in
      let cmp ?(swap = false) ?(flip = false) k =
        let ri = alloc_int cg in
        if swap then emit cg (Isa.Fcmp (k, ri, rb, ra)) else emit cg (Isa.Fcmp (k, ri, ra, rb));
        if flip then emit cg (Isa.Alui (Alu.Xor_op, ri, ri, 1));
        free_float cg ra;
        free_float cg rb;
        (ri, Tint)
      in
      (match op with
      | Badd -> arith Fpu_format.Fadd
      | Bsub -> arith Fpu_format.Fsub
      | Bmul -> arith Fpu_format.Fmul
      | Blt -> cmp Fpu_format.Flt
      | Ble -> cmp Fpu_format.Fle
      | Bgt -> cmp ~swap:true Fpu_format.Flt
      | Bge -> cmp ~swap:true Fpu_format.Fle
      | Beq -> cmp Fpu_format.Feq
      | Bne -> cmp ~flip:true Fpu_format.Feq
      | Band | Bor | Bxor | Bshl | Bshr | Bult | Buge -> error "bitwise operator on floats"
      | Bdiv | Bmod | Bland | Blor -> assert false))

(* quick type inference used only to route runtime lowerings *)
and infer cg e : typ =
  match e with
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Var name -> (
    match List.assoc_opt name cg.locals with
    | Some (t, _) -> t
    | None -> (
      match Hashtbl.find_opt cg.globals name with
      | Some g -> g.g_typ
      | None -> error "unknown variable %s" name))
  | Index (name, _) -> (
    match Hashtbl.find_opt cg.globals name with
    | Some g -> g.g_typ
    | None -> error "unknown array %s" name)
  | Unop (_, e1) -> infer cg e1
  | Binop ((Blt | Ble | Bgt | Bge | Beq | Bne | Bult | Buge | Bland | Blor), _, _) -> Tint
  | Binop (_, a, _) -> infer cg a
  | Call ("__bits", _) -> Tint
  | Call ("__float", _) -> Tfloat
  | Call (fname, _) -> (
    match Hashtbl.find_opt cg.sigs fname with
    | Some { s_ret = Some t; _ } -> t
    | Some { s_ret = None; _ } -> error "void function %s used as a value" fname
    | None -> error "unknown function %s" fname)

and gen_call cg fname args =
  let fsig =
    match Hashtbl.find_opt cg.sigs fname with
    | Some s -> s
    | None -> error "unknown function %s" fname
  in
  if List.length args <> List.length fsig.s_params then
    error "%s expects %d arguments, got %d" fname (List.length fsig.s_params) (List.length args);
  (* evaluate arguments into temporaries *)
  let arg_regs =
    List.map2
      (fun e expected ->
        let r, t = gen_expr cg e in
        if t <> expected then error "argument type mismatch in call to %s" fname;
        (r, t))
      args fsig.s_params
  in
  (* save caller's live temporaries (excluding the argument temps) *)
  let arg_ints = List.filter_map (fun (r, t) -> if t = Tint then Some r else None) arg_regs in
  let arg_floats = List.filter_map (fun (r, t) -> if t = Tfloat then Some r else None) arg_regs in
  let live_ints = List.filter (fun r -> not (List.mem r arg_ints)) cg.in_use_int in
  let live_floats = List.filter (fun r -> not (List.mem r arg_floats)) cg.in_use_float in
  List.iteri (fun i r -> emit cg (Isa.Sw (r, reg_sp, spill_int_off cg i))) live_ints;
  List.iteri (fun i r -> emit cg (Isa.Fsw (r, reg_sp, spill_float_off cg i))) live_floats;
  (* move argument temps into the ABI registers *)
  let rec move regs_int regs_float = function
    | [] -> ()
    | (r, Tint) :: rest -> (
      match regs_int with
      | dst :: tl ->
        emit cg (Isa.Alu (Alu.Add, dst, r, 0));
        move tl regs_float rest
      | [] -> error "too many integer arguments in call to %s" fname)
    | (r, Tfloat) :: rest -> (
      match regs_float with
      | dst :: tl ->
        emit cg (Isa.Fop (Fpu_format.Fmin, dst, r, r));
        move regs_int tl rest
      | [] -> error "too many float arguments in call to %s" fname)
  in
  move int_arg_regs float_arg_regs arg_regs;
  List.iter (fun (r, t) -> if t = Tint then free_int cg r else free_float cg r) arg_regs;
  emit cg (Isa.Jal (reg_ra, fname));
  (* restore live temporaries *)
  List.iteri (fun i r -> emit cg (Isa.Lw (r, reg_sp, spill_int_off cg i))) live_ints;
  List.iteri (fun i r -> emit cg (Isa.Flw (r, reg_sp, spill_float_off cg i))) live_floats;
  (* fetch the result *)
  match fsig.s_ret with
  | Some Tint ->
    let r = alloc_int cg in
    emit cg (Isa.Alu (Alu.Add, r, 10, 0));
    (r, Tint)
  | Some Tfloat ->
    let r = alloc_float cg in
    emit cg (Isa.Fop (Fpu_format.Fmin, r, 10, 10));
    (r, Tfloat)
  | None ->
    (* void: return a dummy zero temp so Expr statements can free it *)
    let r = alloc_int cg in
    emit cg (Isa.Li (r, 0));
    (r, Tint)

(* ---- statements ---- *)

let rec gen_stmt cg ret_label s =
  match s with
  | Decl (typ, name, init) ->
    let r, t = gen_expr cg init in
    if t <> typ then error "initializer type mismatch for %s" name;
    let slot = add_local cg name typ in
    (match typ with
    | Tint ->
      emit cg (Isa.Sw (r, reg_sp, slot));
      free_int cg r
    | Tfloat ->
      emit cg (Isa.Fsw (r, reg_sp, slot));
      free_float cg r)
  | Assign (name, e) -> (
    let r, t = gen_expr cg e in
    match lookup_var cg name with
    | `Local (typ, slot) ->
      if t <> typ then error "assignment type mismatch for %s" name;
      (match typ with
      | Tint ->
        emit cg (Isa.Sw (r, reg_sp, slot));
        free_int cg r
      | Tfloat ->
        emit cg (Isa.Fsw (r, reg_sp, slot));
        free_float cg r)
    | `Global g ->
      if t <> g.g_typ then error "assignment type mismatch for %s" name;
      (match g.g_typ with
      | Tint ->
        emit cg (Isa.Sw (r, 0, g.g_addr));
        free_int cg r
      | Tfloat ->
        emit cg (Isa.Fsw (r, 0, g.g_addr));
        free_float cg r))
  | Store (name, idx_e, val_e) -> (
    match Hashtbl.find_opt cg.globals name with
    | None -> error "unknown array %s" name
    | Some g ->
      let rv, tv = gen_expr cg val_e in
      if tv <> g.g_typ then error "store type mismatch for %s" name;
      let ri, ti = gen_expr cg idx_e in
      if ti <> Tint then error "array index of %s must be an int" name;
      emit cg (Isa.Alui (Alu.Add, ri, ri, g.g_addr));
      (match g.g_typ with
      | Tint ->
        emit cg (Isa.Sw (rv, ri, 0));
        free_int cg rv
      | Tfloat ->
        emit cg (Isa.Fsw (rv, ri, 0));
        free_float cg rv);
      free_int cg ri)
  | If (cond, then_s, else_s) ->
    let lelse = fresh_label cg "else" in
    let lend = fresh_label cg "endif" in
    let rc, tc = gen_expr cg cond in
    if tc <> Tint then error "if condition must be an int";
    emit cg (Isa.Beq (rc, 0, (if else_s = [] then lend else lelse)));
    free_int cg rc;
    gen_block cg ret_label then_s;
    if else_s <> [] then begin
      emit cg (Isa.Jal (0, lend));
      emit cg (Isa.Label lelse);
      gen_block cg ret_label else_s
    end;
    emit cg (Isa.Label lend)
  | While (cond, body) ->
    let lhead = fresh_label cg "while" in
    let lend = fresh_label cg "wend" in
    emit cg (Isa.Label lhead);
    let rc, tc = gen_expr cg cond in
    if tc <> Tint then error "while condition must be an int";
    emit cg (Isa.Beq (rc, 0, lend));
    free_int cg rc;
    cg.loop_labels <- (lhead, lend) :: cg.loop_labels;
    gen_block cg ret_label body;
    cg.loop_labels <- List.tl cg.loop_labels;
    emit cg (Isa.Jal (0, lhead));
    emit cg (Isa.Label lend)
  | For (init, cond, step, body) ->
    let saved = (cg.locals, cg.nlocals) in
    gen_stmt cg ret_label init;
    let lhead = fresh_label cg "for" in
    let lend = fresh_label cg "fend" in
    emit cg (Isa.Label lhead);
    let rc, tc = gen_expr cg cond in
    if tc <> Tint then error "for condition must be an int";
    emit cg (Isa.Beq (rc, 0, lend));
    free_int cg rc;
    (* continue in a for loop jumps to the step, not the head *)
    let lstep = fresh_label cg "fstep" in
    cg.loop_labels <- (lstep, lend) :: cg.loop_labels;
    gen_block cg ret_label body;
    cg.loop_labels <- List.tl cg.loop_labels;
    emit cg (Isa.Label lstep);
    gen_stmt cg ret_label step;
    emit cg (Isa.Jal (0, lhead));
    emit cg (Isa.Label lend);
    let locals, nlocals = saved in
    cg.locals <- locals;
    cg.nlocals <- nlocals
  | Return None ->
    if cg.ret_typ <> None then error "missing return value in %s" cg.cur_func;
    emit cg (Isa.Jal (0, ret_label))
  | Return (Some e) -> (
    let r, t = gen_expr cg e in
    match cg.ret_typ with
    | None -> error "void function %s returns a value" cg.cur_func
    | Some rt when rt <> t -> error "return type mismatch in %s" cg.cur_func
    | Some Tint ->
      emit cg (Isa.Alu (Alu.Add, 10, r, 0));
      free_int cg r;
      emit cg (Isa.Jal (0, ret_label))
    | Some Tfloat ->
      emit cg (Isa.Fop (Fpu_format.Fmin, 10, r, r));
      free_float cg r;
      emit cg (Isa.Jal (0, ret_label)))
  | Break -> (
    match cg.loop_labels with
    | (_, lend) :: _ -> emit cg (Isa.Jal (0, lend))
    | [] -> error "break outside a loop in %s" cg.cur_func)
  | Continue -> (
    match cg.loop_labels with
    | (lcont, _) :: _ -> emit cg (Isa.Jal (0, lcont))
    | [] -> error "continue outside a loop in %s" cg.cur_func)
  | Expr e ->
    let r, t = gen_expr cg e in
    if t = Tint then free_int cg r else free_float cg r

and gen_block cg ret_label stmts =
  let saved = (cg.locals, cg.nlocals) in
  List.iter (gen_stmt cg ret_label) stmts;
  let locals, nlocals = saved in
  cg.locals <- locals;
  cg.nlocals <- nlocals

let gen_func cg f =
  cg.cur_func <- f.fname;
  cg.ret_typ <- f.ret;
  cg.locals <- [];
  cg.nlocals <- 0;
  cg.max_locals <- 0;
  cg.in_use_int <- [];
  cg.in_use_float <- [];
  let ret_label = Printf.sprintf "__ret_%s" f.fname in
  (* First pass into a scratch buffer to learn max_locals, then re-run with
     the final frame size.  Simpler: pre-count the maximum number of
     simultaneously live locals = all Decls in any path; we over-approximate
     with the total number of Decls plus parameters. *)
  let rec count_decls stmts =
    List.fold_left
      (fun acc s ->
        acc
        +
        match s with
        | Decl _ -> 1
        | If (_, a, b) -> count_decls a + count_decls b
        | While (_, b) -> count_decls b
        | For (init, _, step, b) -> count_decls [ init ] + count_decls [ step ] + count_decls b
        | _ -> 0)
      0 stmts
  in
  cg.max_locals <- List.length f.params + count_decls f.body;
  emit cg (Isa.Label f.fname);
  emit cg (Isa.Alui (Alu.Add, reg_sp, reg_sp, -frame_size cg));
  emit cg (Isa.Sw (reg_ra, reg_sp, 0));
  (* move parameters into local slots *)
  let rec bind_params regs_int regs_float = function
    | [] -> ()
    | (Tint, name) :: rest -> (
      let slot = add_local cg name Tint in
      match regs_int with
      | r :: tl ->
        emit cg (Isa.Sw (r, reg_sp, slot));
        bind_params tl regs_float rest
      | [] -> error "too many integer parameters in %s" f.fname)
    | (Tfloat, name) :: rest -> (
      let slot = add_local cg name Tfloat in
      match regs_float with
      | r :: tl ->
        emit cg (Isa.Fsw (r, reg_sp, slot));
        bind_params regs_int tl rest
      | [] -> error "too many float parameters in %s" f.fname)
  in
  bind_params int_arg_regs float_arg_regs f.params;
  List.iter (gen_stmt cg ret_label) f.body;
  (* fall through to return *)
  emit cg (Isa.Label ret_label);
  emit cg (Isa.Lw (reg_ra, reg_sp, 0));
  emit cg (Isa.Alui (Alu.Add, reg_sp, reg_sp, frame_size cg));
  emit cg (Isa.Jalr (0, reg_ra))

let needs_runtime program =
  let rec expr_needs e =
    match e with
    | Binop ((Bmul | Bdiv | Bmod), _, _) -> true
    | Binop (_, a, b) -> expr_needs a || expr_needs b
    | Unop (_, a) -> expr_needs a
    | Call (_, args) -> List.exists expr_needs args
    | Index (_, a) -> expr_needs a
    | Int _ | Float _ | Var _ -> false
  in
  let rec stmt_needs s =
    match s with
    | Decl (_, _, e) | Assign (_, e) | Expr e -> expr_needs e
    | Store (_, a, b) -> expr_needs a || expr_needs b
    | If (c, a, b) -> expr_needs c || List.exists stmt_needs a || List.exists stmt_needs b
    | While (c, b) -> expr_needs c || List.exists stmt_needs b
    | For (i, c, st, b) ->
      stmt_needs i || expr_needs c || stmt_needs st || List.exists stmt_needs b
    | Return (Some e) -> expr_needs e
    | Return None | Break | Continue -> false
  in
  List.exists (fun f -> List.exists stmt_needs f.body) program.funcs

let compile ?(fmt = Fpu_format.binary16) ?(width = 16) ?(mem_top = 4095) program =
  let funcs =
    if needs_runtime program then program.funcs @ runtime_funcs ~width ~fmt else program.funcs
  in
  if not (List.exists (fun f -> String.equal f.fname "main") funcs) then
    error "no main function";
  let cg =
    {
      fmt;
      out = [];
      globals = Hashtbl.create 16;
      sigs = Hashtbl.create 16;
      label_counter = 0;
      locals = [];
      nlocals = 0;
      max_locals = 0;
      in_use_int = [];
      in_use_float = [];
      cur_func = "";
      ret_typ = None;
      loop_labels = [];
    }
  in
  (* allocate globals *)
  let next_addr = ref globals_base in
  let add_global name typ len =
    if Hashtbl.mem cg.globals name then error "duplicate global %s" name;
    Hashtbl.replace cg.globals name { g_addr = !next_addr; g_typ = typ; g_len = len };
    next_addr := !next_addr + len
  in
  List.iter
    (function
      | Gint (n, _) -> add_global n Tint 1
      | Gfloat (n, _) -> add_global n Tfloat 1
      | Gint_array (n, vs) -> add_global n Tint (List.length vs)
      | Gfloat_array (n, vs) -> add_global n Tfloat (List.length vs))
    program.globals;
  (* function signatures (including intrinsics) *)
  List.iter
    (fun f ->
      if Hashtbl.mem cg.sigs f.fname then error "duplicate function %s" f.fname;
      Hashtbl.replace cg.sigs f.fname { s_params = List.map fst f.params; s_ret = f.ret })
    funcs;
  (* startup stub: initialize globals, set sp, call main *)
  cg.cur_func <- "__start";
  emit cg (Isa.Label "__start");
  emit cg (Isa.Li (reg_sp, mem_top));
  List.iter
    (fun g ->
      let store addr v =
        emit cg (Isa.Li (5, v));
        emit cg (Isa.Sw (5, 0, addr))
      in
      match g with
      | Gint (n, v) -> store (Hashtbl.find cg.globals n).g_addr v
      | Gfloat (n, x) -> store (Hashtbl.find cg.globals n).g_addr (float_bits cg x)
      | Gint_array (n, vs) ->
        let base = (Hashtbl.find cg.globals n).g_addr in
        List.iteri (fun j v -> store (base + j) v) vs
      | Gfloat_array (n, xs) ->
        let base = (Hashtbl.find cg.globals n).g_addr in
        List.iteri (fun j x -> store (base + j) (float_bits cg x)) xs)
    program.globals;
  emit cg (Isa.Jal (reg_ra, "main"));
  emit cg (Isa.Ecall Isa.exit_ok);
  List.iter (gen_func cg) funcs;
  let code = List.rev cg.out in
  (* basic blocks: every label heads a block *)
  let blocks = ref [] in
  let cur = ref None in
  let flush size =
    match !cur with
    | Some (label, func) -> blocks := { bb_label = label; bb_func = func; bb_static_size = size } :: !blocks
    | None -> ()
  in
  let size = ref 0 in
  let cur_fn = ref "__start" in
  List.iter
    (fun i ->
      match i with
      | Isa.Label l ->
        flush !size;
        size := 0;
        (* track which function we are in: function labels have no "__" prefix
           pattern reserved for generated labels *)
        if Hashtbl.mem cg.sigs l || String.equal l "__start" then cur_fn := l;
        cur := Some (l, !cur_fn)
      | _ -> incr size)
    code;
  flush !size;
  { code; blocks = List.rev !blocks; globals_base; fmt }

let assemble c = Isa.assemble c.code

(* ---- AST conveniences (defined last: they shadow Stdlib operators) ---- *)

let v name = Var name
let i n = Int n
let f x = Float x
let idx name e = Index (name, e)
let ( + ) a b = Binop (Badd, a, b)
let ( - ) a b = Binop (Bsub, a, b)
let ( * ) a b = Binop (Bmul, a, b)
let ( / ) a b = Binop (Bdiv, a, b)
let ( % ) a b = Binop (Bmod, a, b)
let ( < ) a b = Binop (Blt, a, b)
let ( <= ) a b = Binop (Ble, a, b)
let ( > ) a b = Binop (Bgt, a, b)
let ( >= ) a b = Binop (Bge, a, b)
let ( == ) a b = Binop (Beq, a, b)
let ( != ) a b = Binop (Bne, a, b)
let ( && ) a b = Binop (Bland, a, b)
let ( || ) a b = Binop (Blor, a, b)
