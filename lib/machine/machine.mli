(** The instruction-set simulator (ISS) of the analyzed CPU.

    Executes {!Isa.program}s on a machine whose ALU and FPU are pluggable:

    - *functional* backends compute with the golden models ({!Alu.golden},
      {!Softfloat}) — the reference CPU;
    - *netlist* backends drive gate-level netlists (healthy or
      fault-instrumented) through the {!Sim} simulator, exactly as the
      paper swaps the placed-and-routed ALU/FPU into the Verilator model.

    Netlist units are modeled as genuine 2-stage pipelines with interlocks:
    issuing an operation steps the netlist once (retiring the previous
    operation at the same clock edge), and a bubble is inserted only on a
    register hazard or when a non-unit instruction needs the result.  This
    preserves the cycle-adjacent input transitions that Eq. (2)/(3) failure
    models key on, so generated test cases observe faults just as they
    would on real pipelined hardware.  A watchdog detects the
    valid-handshake stalls of Table 6's "S" outcomes.

    Cycle accounting uses a fixed per-instruction cost model (independent
    of backend) so that overhead comparisons are deterministic. *)

type alu_backend = Alu_functional | Alu_netlist of Netlist.t
type fpu_backend = Fpu_functional | Fpu_netlist of Netlist.t

(** Which gate-level simulator executes a netlist unit.

    [Scalar_unit] interprets the netlist through {!Sim} (the reference
    engine); [Compiled_unit] runs it on the compiled {!Simc} engine, which
    drives the same stimulus on every lane, reads lane 0, and pins the
    profile mask to lane 0 — observationally identical to a scalar unit
    (same values, same SP/toggle statistics), but with the compiled
    dispatch loop underneath. *)
type unit_engine = Scalar_unit | Compiled_unit

(** A unit's gate-level simulator, tagged by engine. *)
type unit_sim = Scalar_sim of Sim.t | Compiled_sim of Simc.t

val make_unit_sim : ?profile:bool -> unit_engine -> Netlist.t -> unit_sim
(** Build a unit simulator on the given engine (compiled simulators get
    their profile mask pinned to lane 0, see {!unit_engine}).  This is the
    constructor the runtime guard uses to build fault-instrumented
    replicas on the same engine as the unit they replace. *)

val unit_sim_netlist : unit_sim -> Netlist.t

val unit_sim_output : unit_sim -> string -> Bitvec.t
(** Read an output port of the unit's netlist in its current state,
    whichever engine runs it (lane 0 for compiled units).  This is how the
    runtime guard polls a monitored unit's [canary_trip] port without
    caring which simulator is installed. *)

type config = {
  width : int;  (** integer register width; must match the ALU netlist *)
  fmt : Fpu_format.fmt;  (** FP format; width must not exceed [width] *)
  mem_words : int;
  fpu_watchdog : int;
      (** extra cycles to wait for the FPU valid handshake before declaring
          a stall *)
  rng_seed : int;  (** drives the [c_fault] port of C_random failing netlists *)
}

val default_config : config
(** width 16, binary16, 4096 memory words, watchdog 64. *)

type outcome =
  | Exited of int  (** [Ecall code] reached *)
  | Stalled  (** FPU handshake never became valid (watchdog expired) *)
  | Out_of_fuel  (** instruction budget exhausted *)

val pp_outcome : Format.formatter -> outcome -> unit

exception Stall_detected
(** Raised out of {!snapshot} and the backend-swap functions when draining
    an in-flight FPU operation trips the watchdog (the unit is wedged).
    {!run} and {!run_slice} catch it internally and report [Stalled]. *)

type t

val create :
  ?config:config ->
  ?unit_engine:unit_engine ->
  ?profile_units:bool ->
  ?on_alu_op:(Alu.op -> Bitvec.t -> Bitvec.t -> unit) ->
  ?on_fpu_op:(Fpu_format.op -> Bitvec.t -> Bitvec.t -> unit) ->
  alu:alu_backend ->
  fpu:fpu_backend ->
  unit ->
  t
(** @raise Invalid_argument if a netlist backend's ports do not match the
    configured width/format.  [unit_engine] (default [Scalar_unit])
    selects the simulator behind every netlist backend.  With
    [profile_units], netlist units carry signal-probability counters (see
    {!alu_sim}/{!fpu_sim}) — the Signal Probability Simulation hookup of
    phase one.

    [on_alu_op]/[on_fpu_op] observe every operation entering the
    corresponding unit — including the branch comparisons the machine
    routes through the ALU — regardless of backend.  They let a functional
    run record the exact unit operation stream that a netlist-backed run
    would execute, which is how {!Vega}'s batched SP profiling replays a
    workload onto the word-parallel simulator. *)

val config : t -> config

val reset : t -> unit
(** Clear registers, memory, flags, cycle counters, and reset the netlist
    units. *)

val run : ?max_instructions:int -> ?on_instr:(int -> unit) -> t -> Isa.program -> outcome
(** Reset-free execution from instruction 0 (call {!reset} first for a cold
    start); [max_instructions] defaults to 1_000_000.  [on_instr] observes
    every executed instruction index (the hook behind basic-block
    profiling). *)

val cycles : t -> int
val instructions_retired : t -> int

(** Retired-instruction mix, for workload characterization (which
    operations the representative workload exercises — the context behind
    a unit's SP profile). *)
type op_stats = {
  alu_ops : (Alu.op * int) list;  (** only ops that occurred *)
  fpu_ops : (Fpu_format.op * int) list;
  loads : int;
  stores : int;
  branches : int;
  branches_taken : int;
  jumps : int;
  moves : int;
  other : int;
}

val op_stats : t -> op_stats

val reg : t -> int -> Bitvec.t
val set_reg : t -> int -> Bitvec.t -> unit
val freg : t -> int -> Bitvec.t
val set_freg : t -> int -> Bitvec.t -> unit
val fflags : t -> Fpu_format.flags
val mem : t -> int -> Bitvec.t
val set_mem : t -> int -> Bitvec.t -> unit

val alu_sim : t -> Sim.t option
(** The scalar simulator behind a netlist ALU backend (for SP profiling);
    [None] for the functional backend {e and} for a [Compiled_unit]
    backend (use {!alu_unit_sim} to reach either engine). *)

val fpu_sim : t -> Sim.t option

val alu_unit_sim : t -> unit_sim option
(** The unit simulator behind the ALU backend, whichever engine runs it;
    [None] for the functional backend. *)

val fpu_unit_sim : t -> unit_sim option

val alu_netlist : t -> Netlist.t option
(** The netlist behind the ALU backend, independent of engine. *)

val fpu_netlist : t -> Netlist.t option

val alu_functional : t -> bool
(** Whether the ALU currently runs on the functional golden backend. *)

val fpu_functional : t -> bool

(** {1 Sliced execution}

    The runtime guard executes an application in bounded slices so test
    cases can be interleaved at a configurable cadence, then resumes the
    program exactly where it paused. *)

type slice_outcome =
  | Paused of int
      (** budget exhausted; resume from this pc.  In-flight unit operations
          are drained, so the machine state at the pause is architectural. *)
  | Completed of outcome

val run_slice :
  ?on_instr:(int -> unit) -> pc:int -> budget:int -> t -> Isa.program -> slice_outcome
(** Execute at most [budget] instructions starting at [pc].  A drain that
    wedges at the pause point surfaces as [Completed Stalled] (the
    watchdog outcome).  [run] is equivalent to [run_slice ~pc:0] with
    [Paused _] mapped to [Out_of_fuel]. *)

(** {1 Mid-run backend swapping}

    Support for mid-life fault onset and failover recovery: the guard flips
    a unit between a golden and a fault-instrumented replica while the
    application is running. *)

val swap_alu_unit : t -> unit_sim option -> unit_sim option
(** [swap_alu_unit t sim] installs [sim] as the ALU backend ([None] =
    functional golden backend) and returns the displaced simulator with its
    state intact, so it can be re-installed later without a fresh
    construction (or recompile).  The in-flight operation is drained first
    (which may raise [Stall_detected]), keeping the architectural state
    consistent.
    @raise Invalid_argument if the new netlist's width does not match. *)

val swap_fpu_unit : t -> unit_sim option -> unit_sim option

val swap_alu_sim : t -> Sim.t option -> Sim.t option
(** Scalar-typed wrapper over {!swap_alu_unit}: the installed simulator is
    wrapped as [Scalar_sim]; a displaced [Compiled_sim] surfaces as [None]
    (its state is dropped from the caller's view — use {!swap_alu_unit} to
    round-trip compiled units). *)

val swap_fpu_sim : t -> Sim.t option -> Sim.t option

(** {1 Architectural snapshots}

    Checkpoint/rollback support for the recovery policies of the runtime
    guard. *)

type snapshot

val snapshot : t -> snapshot
(** Drain in-flight unit operations (may raise [Stall_detected]), then
    capture the complete machine state: registers, memory, flags,
    cycle/instruction/op-mix counters, RNG state, and the gate-level state
    of any netlist units. *)

val restore : t -> snapshot -> unit
(** Rewind to a snapshot.  Execution after [restore] is bit-identical to
    execution after the snapshot was taken.  If a unit backend was swapped
    since the snapshot (recovery onto a golden unit), the architectural
    state is still restored exactly and the incompatible unit simulator is
    reset instead. *)
