type alu_backend = Alu_functional | Alu_netlist of Netlist.t
type fpu_backend = Fpu_functional | Fpu_netlist of Netlist.t

type config = {
  width : int;
  fmt : Fpu_format.fmt;
  mem_words : int;
  fpu_watchdog : int;
  rng_seed : int;
}

let default_config =
  { width = 16; fmt = Fpu_format.binary16; mem_words = 4096; fpu_watchdog = 64; rng_seed = 7 }

type outcome = Exited of int | Stalled | Out_of_fuel

let pp_outcome fmt = function
  | Exited code -> Format.fprintf fmt "exited(%d)" code
  | Stalled -> Format.pp_print_string fmt "stalled"
  | Out_of_fuel -> Format.pp_print_string fmt "out-of-fuel"

type unit_engine = Scalar_unit | Compiled_unit

type unit_sim = Scalar_sim of Sim.t | Compiled_sim of Simc.t

(* A compiled unit drives every lane with the same stimulus and reads lane
   0, so it is observationally a scalar simulator; its profile mask is
   pinned to lane 0 so SP/toggle counters match a scalar unit's exactly. *)

let us_netlist = function Scalar_sim s -> Sim.netlist s | Compiled_sim s -> Simc.netlist s

let us_reset = function
  | Scalar_sim s -> Sim.reset s
  | Compiled_sim s ->
    Simc.reset s;
    Simc.set_active_mask s 1

let us_set_input u name v =
  match u with
  | Scalar_sim s -> Sim.set_input s name v
  | Compiled_sim s -> Simc.set_input_all s name v

let us_set_input_bit u name i b =
  match u with
  | Scalar_sim s -> Sim.set_input_bit s name i b
  | Compiled_sim s ->
    Simc.set_input_all s name (Bitvec.set_bit (Simc.input_value s ~lane:0 name) i b)

let us_step = function Scalar_sim s -> Sim.step s | Compiled_sim s -> Simc.step s

let us_output u name =
  match u with Scalar_sim s -> Sim.output s name | Compiled_sim s -> Simc.output s ~lane:0 name

(* A 2-stage pipelined gate-level unit: issuing steps the simulator once and
   retires the previously issued operation at the same edge. *)
type pipe_unit = {
  usim : unit_sim;
  has_fault_port : bool;
  mutable pending : int option;
      (* destination register of the in-flight operation; for the FPU,
         [dest land 0x100 <> 0] marks an integer (comparison) destination *)
}

type op_stats = {
  alu_ops : (Alu.op * int) list;
  fpu_ops : (Fpu_format.op * int) list;
  loads : int;
  stores : int;
  branches : int;
  branches_taken : int;
  jumps : int;
  moves : int;
  other : int;
}

type t = {
  cfg : config;
  regs : Bitvec.t array;
  fregs : Bitvec.t array;
  memory : Bitvec.t array;
  mutable flags : Fpu_format.flags;
  mutable cycles : int;
  mutable retired : int;
  alu_counts : int array;  (* indexed by Alu.op_code *)
  fpu_counts : int array;  (* indexed by Fpu_format.op_code *)
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_branches : int;
  mutable n_branches_taken : int;
  mutable n_jumps : int;
  mutable n_moves : int;
  mutable n_other : int;
  mutable rng : Random.State.t;
  mutable alu_fn : bool;
  mutable fpu_fn : bool;
  mutable alu_unit : pipe_unit option;
  mutable fpu_unit : pipe_unit option;
  on_alu_op : Alu.op -> Bitvec.t -> Bitvec.t -> unit;
  on_fpu_op : Fpu_format.op -> Bitvec.t -> Bitvec.t -> unit;
}

let port_width nl name = Array.length (Netlist.find_input nl name).Netlist.port_nets

let has_input nl name =
  List.exists (fun (p : Netlist.port) -> String.equal p.port_name name) (Netlist.inputs nl)

let make_unit_sim ?(profile = false) engine nl =
  match engine with
  | Scalar_unit -> Scalar_sim (Sim.create ~profile nl)
  | Compiled_unit ->
    let s = Simc.create ~profile nl in
    Simc.set_active_mask s 1;
    Compiled_sim s

let unit_sim_netlist = us_netlist

let unit_sim_output us name =
  match us with
  | Scalar_sim s -> Sim.output s name
  | Compiled_sim s -> Simc.output s ~lane:0 name

let make_unit ~engine ~profile nl =
  {
    usim = make_unit_sim ~profile engine nl;
    has_fault_port = has_input nl Fault.random_port;
    pending = None;
  }

let create ?(config = default_config) ?(unit_engine = Scalar_unit) ?(profile_units = false)
    ?(on_alu_op = fun _ _ _ -> ()) ?(on_fpu_op = fun _ _ _ -> ()) ~alu ~fpu () =
  if Fpu_format.width config.fmt > config.width then
    invalid_arg "Machine.create: FP format wider than the integer registers";
  (match alu with
  | Alu_functional -> ()
  | Alu_netlist nl ->
    if port_width nl Alu.a_port <> config.width then
      invalid_arg "Machine.create: ALU netlist width does not match config");
  (match fpu with
  | Fpu_functional -> ()
  | Fpu_netlist nl ->
    if port_width nl Fpu.a_port <> Fpu_format.width config.fmt then
      invalid_arg "Machine.create: FPU netlist format does not match config");
  {
    cfg = config;
    regs = Array.make 32 (Bitvec.zero config.width);
    fregs = Array.make 32 (Bitvec.zero (Fpu_format.width config.fmt));
    memory = Array.make config.mem_words (Bitvec.zero config.width);
    flags = Fpu_format.no_flags;
    cycles = 0;
    retired = 0;
    alu_counts = Array.make 16 0;
    fpu_counts = Array.make 8 0;
    n_loads = 0;
    n_stores = 0;
    n_branches = 0;
    n_branches_taken = 0;
    n_jumps = 0;
    n_moves = 0;
    n_other = 0;
    rng = Random.State.make [| config.rng_seed |];
    on_alu_op;
    on_fpu_op;
    alu_fn = (match alu with Alu_functional -> true | Alu_netlist _ -> false);
    fpu_fn = (match fpu with Fpu_functional -> true | Fpu_netlist _ -> false);
    alu_unit =
      (match alu with
      | Alu_functional -> None
      | Alu_netlist nl -> Some (make_unit ~engine:unit_engine ~profile:profile_units nl));
    fpu_unit =
      (match fpu with
      | Fpu_functional -> None
      | Fpu_netlist nl -> Some (make_unit ~engine:unit_engine ~profile:profile_units nl));
  }

let config t = t.cfg

let reset t =
  Array.fill t.regs 0 32 (Bitvec.zero t.cfg.width);
  Array.fill t.fregs 0 32 (Bitvec.zero (Fpu_format.width t.cfg.fmt));
  Array.fill t.memory 0 t.cfg.mem_words (Bitvec.zero t.cfg.width);
  t.flags <- Fpu_format.no_flags;
  t.cycles <- 0;
  t.retired <- 0;
  Array.fill t.alu_counts 0 (Array.length t.alu_counts) 0;
  Array.fill t.fpu_counts 0 (Array.length t.fpu_counts) 0;
  t.n_loads <- 0;
  t.n_stores <- 0;
  t.n_branches <- 0;
  t.n_branches_taken <- 0;
  t.n_jumps <- 0;
  t.n_moves <- 0;
  t.n_other <- 0;
  let reset_unit u =
    us_reset u.usim;
    u.pending <- None
  in
  Option.iter reset_unit t.alu_unit;
  Option.iter reset_unit t.fpu_unit

let cycles t = t.cycles
let instructions_retired t = t.retired

let op_stats t =
  {
    alu_ops =
      List.filter_map
        (fun op ->
          let n = t.alu_counts.(Alu.op_code op) in
          if n > 0 then Some (op, n) else None)
        Alu.all_ops;
    fpu_ops =
      List.filter_map
        (fun op ->
          let n = t.fpu_counts.(Fpu_format.op_code op) in
          if n > 0 then Some (op, n) else None)
        Fpu_format.all_ops;
    loads = t.n_loads;
    stores = t.n_stores;
    branches = t.n_branches;
    branches_taken = t.n_branches_taken;
    jumps = t.n_jumps;
    moves = t.n_moves;
    other = t.n_other;
  }
let reg t r = if r = 0 then Bitvec.zero t.cfg.width else t.regs.(r)
let set_reg t r v = if r <> 0 then t.regs.(r) <- v
let freg t r = t.fregs.(r)
let set_freg t r v = t.fregs.(r) <- v
let fflags t = t.flags

let mem_addr t a =
  let m = ((a mod t.cfg.mem_words) + t.cfg.mem_words) mod t.cfg.mem_words in
  m

let mem t a = t.memory.(mem_addr t a)
let set_mem t a v = t.memory.(mem_addr t a) <- v
let scalar_sim_of = function Scalar_sim s -> Some s | Compiled_sim _ -> None
let alu_sim t = Option.bind t.alu_unit (fun u -> scalar_sim_of u.usim)
let fpu_sim t = Option.bind t.fpu_unit (fun u -> scalar_sim_of u.usim)
let alu_unit_sim t = Option.map (fun u -> u.usim) t.alu_unit
let fpu_unit_sim t = Option.map (fun u -> u.usim) t.fpu_unit
let alu_netlist t = Option.map (fun u -> us_netlist u.usim) t.alu_unit
let fpu_netlist t = Option.map (fun u -> us_netlist u.usim) t.fpu_unit

exception Stall_detected
exception Exit_program of int

let alu_functional t = t.alu_fn
let fpu_functional t = t.fpu_fn

(* ---- gate-level ALU protocol ---- *)

let drive_fault t u =
  if u.has_fault_port then
    us_set_input_bit u.usim Fault.random_port 0 (Random.State.bool t.rng)

let alu_retire t u =
  match u.pending with
  | None -> ()
  | Some rd ->
    set_reg t rd (us_output u.usim Alu.r_port);
    u.pending <- None

let alu_bubble t u =
  drive_fault t u;
  us_step u.usim;
  t.cycles <- t.cycles + 1;
  alu_retire t u

let alu_drain t u = if u.pending <> None then alu_bubble t u

let alu_issue t u op a b rd =
  us_set_input u.usim Alu.op_port (Bitvec.create ~width:4 (Alu.op_code op));
  us_set_input u.usim Alu.a_port a;
  us_set_input u.usim Alu.b_port b;
  drive_fault t u;
  us_step u.usim;
  alu_retire t u;
  u.pending <- Some rd

(* Compute an ALU value immediately (branch comparisons): run the operation
   through the pipe and drain it. *)
let alu_value t op a b =
  t.on_alu_op op a b;
  match t.alu_unit with
  | None -> Alu.golden ~width:t.cfg.width op a b
  | Some u ->
    alu_drain t u;
    us_set_input u.usim Alu.op_port (Bitvec.create ~width:4 (Alu.op_code op));
    us_set_input u.usim Alu.a_port a;
    us_set_input u.usim Alu.b_port b;
    drive_fault t u;
    us_step u.usim;
    drive_fault t u;
    us_step u.usim;
    t.cycles <- t.cycles + 1;
    us_output u.usim Alu.r_port

(* ---- gate-level FPU protocol ---- *)

let fpu_wait_valid t u =
  let rec wait n =
    if Bitvec.to_int (us_output u.usim Fpu.valid_port) = 1 then ()
    else if n >= t.cfg.fpu_watchdog then raise Stall_detected
    else begin
      us_set_input u.usim Fpu.in_valid_port (Bitvec.zero 1);
      drive_fault t u;
      us_step u.usim;
      t.cycles <- t.cycles + 1;
      wait (n + 1)
    end
  in
  wait 0

let fpu_retire t u =
  match u.pending with
  | None -> ()
  | Some dest ->
    fpu_wait_valid t u;
    let r = us_output u.usim Fpu.r_port in
    let fl = Fpu_format.flags_of_int (Bitvec.to_int (us_output u.usim Fpu.flags_port)) in
    t.flags <- Fpu_format.flags_union t.flags fl;
    if dest land 0x100 <> 0 then
      set_reg t (dest land 0xff) (Bitvec.create ~width:t.cfg.width (Bitvec.to_int r land 1))
    else set_freg t (dest land 0xff) r;
    u.pending <- None

let fpu_bubble t u =
  us_set_input u.usim Fpu.in_valid_port (Bitvec.zero 1);
  drive_fault t u;
  us_step u.usim;
  t.cycles <- t.cycles + 1;
  fpu_retire t u

let fpu_drain t u = if u.pending <> None then fpu_bubble t u

let fpu_issue t u op a b dest =
  us_set_input u.usim Fpu.op_port (Bitvec.create ~width:3 (Fpu_format.op_code op));
  us_set_input u.usim Fpu.a_port a;
  us_set_input u.usim Fpu.b_port b;
  us_set_input u.usim Fpu.in_valid_port (Bitvec.one 1);
  drive_fault t u;
  us_step u.usim;
  (match u.pending with
  | None -> ()
  | Some _ ->
    (* the previous token reaches the output at this edge *)
    fpu_retire t u);
  u.pending <- Some dest

(* ---- mid-run backend swapping ----

   Swapping drains the unit's in-flight operation first (which may raise
   [Stall_detected] on a wedged FPU), so the architectural state is
   consistent across the swap.  The displaced simulator is returned with
   its state intact; re-installing it later resumes exactly where it left
   off, which lets a caller flip between a golden and a fault-instrumented
   replica of the same unit without paying a simulator construction (or,
   for a compiled unit, a recompile) on every flip.  [None] selects the
   functional golden backend. *)

let swap_alu_unit t sim =
  Option.iter (fun u -> alu_drain t u) t.alu_unit;
  let old = Option.map (fun u -> u.usim) t.alu_unit in
  (match sim with
  | None ->
    t.alu_unit <- None;
    t.alu_fn <- true
  | Some s ->
    let nl = us_netlist s in
    if port_width nl Alu.a_port <> t.cfg.width then
      invalid_arg "Machine.swap_alu_unit: ALU netlist width does not match config";
    t.alu_unit <- Some { usim = s; has_fault_port = has_input nl Fault.random_port; pending = None };
    t.alu_fn <- false);
  old

let swap_fpu_unit t sim =
  Option.iter (fun u -> fpu_drain t u) t.fpu_unit;
  let old = Option.map (fun u -> u.usim) t.fpu_unit in
  (match sim with
  | None ->
    t.fpu_unit <- None;
    t.fpu_fn <- true
  | Some s ->
    let nl = us_netlist s in
    if port_width nl Fpu.a_port <> Fpu_format.width t.cfg.fmt then
      invalid_arg "Machine.swap_fpu_unit: FPU netlist format does not match config";
    t.fpu_unit <- Some { usim = s; has_fault_port = has_input nl Fault.random_port; pending = None };
    t.fpu_fn <- false);
  old

(* Scalar-typed compatibility wrappers: a displaced compiled simulator has
   no [Sim.t] to hand back, so it surfaces as [None]. *)

let swap_alu_sim t sim =
  Option.bind (swap_alu_unit t (Option.map (fun s -> Scalar_sim s) sim)) scalar_sim_of

let swap_fpu_sim t sim =
  Option.bind (swap_fpu_unit t (Option.map (fun s -> Scalar_sim s) sim)) scalar_sim_of

(* ---- architectural snapshots (checkpoint/rollback support) ----

   A snapshot drains in-flight unit operations first (which may raise
   [Stall_detected]) and then captures the full architectural state:
   registers, memory, flags, cycle/instruction counters, op-mix counters,
   the RNG state, and the gate-level state of any unit simulators.
   [restore] rewinds all of it, so execution after a restore is
   bit-identical to execution after the snapshot was taken.  If a unit
   backend was swapped between snapshot and restore (recovery onto a
   golden unit), the architectural state is still restored exactly and the
   incompatible unit simulator is simply reset. *)

type unit_snapshot = S_scalar of Sim.snapshot | S_compiled of Simc.snapshot

let unit_snapshot_of = function
  | Scalar_sim s -> S_scalar (Sim.snapshot s)
  | Compiled_sim s -> S_compiled (Simc.snapshot s)

type snapshot = {
  s_regs : Bitvec.t array;
  s_fregs : Bitvec.t array;
  s_memory : Bitvec.t array;
  s_flags : Fpu_format.flags;
  s_cycles : int;
  s_retired : int;
  s_alu_counts : int array;
  s_fpu_counts : int array;
  s_misc_counts : int array;
  s_rng : Random.State.t;
  s_alu_sim : unit_snapshot option;
  s_fpu_sim : unit_snapshot option;
}

let snapshot t =
  Option.iter (fun u -> alu_drain t u) t.alu_unit;
  Option.iter (fun u -> fpu_drain t u) t.fpu_unit;
  {
    s_regs = Array.copy t.regs;
    s_fregs = Array.copy t.fregs;
    s_memory = Array.copy t.memory;
    s_flags = t.flags;
    s_cycles = t.cycles;
    s_retired = t.retired;
    s_alu_counts = Array.copy t.alu_counts;
    s_fpu_counts = Array.copy t.fpu_counts;
    s_misc_counts =
      [| t.n_loads; t.n_stores; t.n_branches; t.n_branches_taken; t.n_jumps; t.n_moves; t.n_other |];
    s_rng = Random.State.copy t.rng;
    s_alu_sim = Option.map (fun u -> unit_snapshot_of u.usim) t.alu_unit;
    s_fpu_sim = Option.map (fun u -> unit_snapshot_of u.usim) t.fpu_unit;
  }

let restore t s =
  Array.blit s.s_regs 0 t.regs 0 (Array.length t.regs);
  Array.blit s.s_fregs 0 t.fregs 0 (Array.length t.fregs);
  Array.blit s.s_memory 0 t.memory 0 (Array.length t.memory);
  t.flags <- s.s_flags;
  t.cycles <- s.s_cycles;
  t.retired <- s.s_retired;
  Array.blit s.s_alu_counts 0 t.alu_counts 0 (Array.length t.alu_counts);
  Array.blit s.s_fpu_counts 0 t.fpu_counts 0 (Array.length t.fpu_counts);
  t.n_loads <- s.s_misc_counts.(0);
  t.n_stores <- s.s_misc_counts.(1);
  t.n_branches <- s.s_misc_counts.(2);
  t.n_branches_taken <- s.s_misc_counts.(3);
  t.n_jumps <- s.s_misc_counts.(4);
  t.n_moves <- s.s_misc_counts.(5);
  t.n_other <- s.s_misc_counts.(6);
  t.rng <- Random.State.copy s.s_rng;
  let restore_unit u snap =
    u.pending <- None;
    match (u.usim, snap) with
    | Scalar_sim sim, Some (S_scalar ss) -> (
      try Sim.restore sim ss with Invalid_argument _ -> Sim.reset sim)
    | Compiled_sim sim, Some (S_compiled ss) -> (
      try Simc.restore sim ss with
      | Invalid_argument _ ->
        Simc.reset sim;
        Simc.set_active_mask sim 1)
    | _, (Some _ | None) -> us_reset u.usim
  in
  Option.iter (fun u -> restore_unit u s.s_alu_sim) t.alu_unit;
  Option.iter (fun u -> restore_unit u s.s_fpu_sim) t.fpu_unit

(* ---- hazard bookkeeping ---- *)

let alu_reads = function
  | Isa.Alu (_, _, r1, r2) -> [ r1; r2 ]
  | Isa.Alui (_, _, r1, _) -> [ r1 ]
  | _ -> []

let is_alu_instr = function Isa.Alu _ | Isa.Alui _ -> true | _ -> false
let is_fpu_instr = function Isa.Fop _ | Isa.Fcmp _ -> true | _ -> false

let fpu_freg_reads = function
  | Isa.Fop (_, _, f1, f2) | Isa.Fcmp (_, _, f1, f2) -> [ f1; f2 ]
  | _ -> []

let sync_units t instr =
  (match t.alu_unit with
  | Some u when u.pending <> None ->
    let hazard =
      (not (is_alu_instr instr)) || List.exists (fun r -> Some r = u.pending) (alu_reads instr)
    in
    if hazard then alu_drain t u
  | _ -> ());
  match t.fpu_unit with
  | Some u when u.pending <> None ->
    let hazard =
      if not (is_fpu_instr instr) then true
      else begin
        match u.pending with
        | Some dest when dest land 0x100 = 0 ->
          List.exists (fun f -> f = dest land 0xff) (fpu_freg_reads instr)
        | Some _ -> true  (* integer destination: conservatively drain *)
        | None -> false
      end
    in
    if hazard then fpu_drain t u
  | _ -> ()

(* ---- instruction cost model (backend independent) ---- *)

let base_cost = function
  | Isa.Li _ | Isa.Nop -> 1
  | Isa.Alu _ | Isa.Alui _ -> 1
  | Isa.Lw _ | Isa.Sw _ | Isa.Flw _ | Isa.Fsw _ -> 2
  | Isa.Beq _ | Isa.Bne _ | Isa.Blt _ | Isa.Bge _ | Isa.Bltu _ | Isa.Bgeu _ -> 1
  | Isa.Jal _ | Isa.Jalr _ -> 2
  | Isa.Fop _ | Isa.Fcmp _ -> 2
  | Isa.Fmv_wx _ | Isa.Fmv_xw _ -> 1
  | Isa.Csr_fflags _ -> 1
  | Isa.Ecall _ -> 1
  | Isa.Label _ -> 0

type slice_outcome = Paused of int | Completed of outcome

let run_raw ~on_instr ~pc ~budget t (prog : Isa.program) =
  let start_pc = pc and max_instructions = budget in
  let w = t.cfg.width in
  let fpw = Fpu_format.width t.cfg.fmt in
  let imm v = Bitvec.create ~width:w v in
  let exec_alu op rd r1 b2 =
    t.on_alu_op op (reg t r1) b2;
    match t.alu_unit with
    | None -> set_reg t rd (Alu.golden ~width:w op (reg t r1) b2)
    | Some u -> alu_issue t u op (reg t r1) b2 rd
  in
  let exec_fpu_arith op fd f1 f2 =
    t.on_fpu_op op (freg t f1) (freg t f2);
    match t.fpu_unit with
    | None ->
      let r, fl = Softfloat.apply t.cfg.fmt op (freg t f1) (freg t f2) in
      t.flags <- Fpu_format.flags_union t.flags fl;
      set_freg t fd r
    | Some u -> fpu_issue t u op (freg t f1) (freg t f2) fd
  in
  let exec_fpu_cmp op rd f1 f2 =
    t.on_fpu_op op (freg t f1) (freg t f2);
    match t.fpu_unit with
    | None ->
      let r, fl = Softfloat.apply t.cfg.fmt op (freg t f1) (freg t f2) in
      t.flags <- Fpu_format.flags_union t.flags fl;
      set_reg t rd (Bitvec.create ~width:w (Bitvec.to_int r land 1))
    | Some u -> fpu_issue t u op (freg t f1) (freg t f2) (rd lor 0x100)
  in
  let branch_taken cond target pc =
    if cond then begin
      t.cycles <- t.cycles + 1;
      t.n_branches_taken <- t.n_branches_taken + 1;
      Isa.label_address prog target
    end
    else pc + 1
  in
  let cmp_eq a b = Bitvec.is_zero (alu_value t Alu.Sub a b) in
  let cmp_lt a b = Bitvec.to_int (alu_value t Alu.Slt a b) = 1 in
  let cmp_ltu a b = Bitvec.to_int (alu_value t Alu.Sltu a b) = 1 in
  let rec loop pc fuel =
    if fuel <= 0 then Paused pc
    else if pc < 0 || pc >= Array.length prog.instrs then Completed (Exited Isa.exit_ok)
    else begin
      let instr = prog.instrs.(pc) in
      on_instr pc;
      sync_units t instr;
      t.cycles <- t.cycles + base_cost instr;
      t.retired <- t.retired + 1;
      (match instr with
      | Isa.Alu (op, _, _, _) | Isa.Alui (op, _, _, _) ->
        t.alu_counts.(Alu.op_code op) <- t.alu_counts.(Alu.op_code op) + 1
      | Isa.Fop (op, _, _, _) | Isa.Fcmp (op, _, _, _) ->
        t.fpu_counts.(Fpu_format.op_code op) <- t.fpu_counts.(Fpu_format.op_code op) + 1
      | Isa.Lw _ | Isa.Flw _ -> t.n_loads <- t.n_loads + 1
      | Isa.Sw _ | Isa.Fsw _ -> t.n_stores <- t.n_stores + 1
      | Isa.Beq _ | Isa.Bne _ | Isa.Blt _ | Isa.Bge _ | Isa.Bltu _ | Isa.Bgeu _ ->
        t.n_branches <- t.n_branches + 1
      | Isa.Jal _ | Isa.Jalr _ -> t.n_jumps <- t.n_jumps + 1
      | Isa.Fmv_wx _ | Isa.Fmv_xw _ -> t.n_moves <- t.n_moves + 1
      | Isa.Li _ | Isa.Csr_fflags _ | Isa.Ecall _ | Isa.Label _ | Isa.Nop ->
        t.n_other <- t.n_other + 1);
      let next =
        match instr with
        | Isa.Li (rd, v) ->
          set_reg t rd (imm v);
          pc + 1
        | Isa.Alu (op, rd, r1, r2) ->
          exec_alu op rd r1 (reg t r2);
          pc + 1
        | Isa.Alui (op, rd, r1, v) ->
          exec_alu op rd r1 (imm v);
          pc + 1
        | Isa.Lw (rd, base, off) ->
          set_reg t rd (mem t (Bitvec.to_int (reg t base) + off));
          pc + 1
        | Isa.Sw (rs, base, off) ->
          set_mem t (Bitvec.to_int (reg t base) + off) (reg t rs);
          pc + 1
        | Isa.Beq (a, b, l) -> branch_taken (cmp_eq (reg t a) (reg t b)) l pc
        | Isa.Bne (a, b, l) -> branch_taken (not (cmp_eq (reg t a) (reg t b))) l pc
        | Isa.Blt (a, b, l) -> branch_taken (cmp_lt (reg t a) (reg t b)) l pc
        | Isa.Bge (a, b, l) -> branch_taken (not (cmp_lt (reg t a) (reg t b))) l pc
        | Isa.Bltu (a, b, l) -> branch_taken (cmp_ltu (reg t a) (reg t b)) l pc
        | Isa.Bgeu (a, b, l) -> branch_taken (not (cmp_ltu (reg t a) (reg t b))) l pc
        | Isa.Jal (rd, l) ->
          set_reg t rd (imm (pc + 1));
          Isa.label_address prog l
        | Isa.Jalr (rd, rs) ->
          let target = Bitvec.to_int (reg t rs) in
          set_reg t rd (imm (pc + 1));
          target
        | Isa.Fop (op, fd, f1, f2) ->
          exec_fpu_arith op fd f1 f2;
          pc + 1
        | Isa.Fcmp (op, rd, f1, f2) ->
          exec_fpu_cmp op rd f1 f2;
          pc + 1
        | Isa.Flw (fd, base, off) ->
          let v = mem t (Bitvec.to_int (reg t base) + off) in
          set_freg t fd (Bitvec.create ~width:fpw (Bitvec.to_int v));
          pc + 1
        | Isa.Fsw (fs, base, off) ->
          set_mem t
            (Bitvec.to_int (reg t base) + off)
            (Bitvec.create ~width:w (Bitvec.to_int (freg t fs)));
          pc + 1
        | Isa.Fmv_wx (fd, rs) ->
          set_freg t fd (Bitvec.create ~width:fpw (Bitvec.to_int (reg t rs)));
          pc + 1
        | Isa.Fmv_xw (rd, fs) ->
          set_reg t rd (Bitvec.create ~width:w (Bitvec.to_int (freg t fs)));
          pc + 1
        | Isa.Csr_fflags rd ->
          set_reg t rd (imm (Fpu_format.flags_to_int t.flags));
          t.flags <- Fpu_format.no_flags;
          pc + 1
        | Isa.Ecall code -> raise (Exit_program code)
        | Isa.Label _ -> pc + 1
        | Isa.Nop -> pc + 1
      in
      loop next (fuel - 1)
    end
  in
  try loop start_pc max_instructions with
  | Exit_program code ->
    (* drain in-flight operations so architectural state is final *)
    (try
       Option.iter (fun u -> alu_drain t u) t.alu_unit;
       Option.iter (fun u -> fpu_drain t u) t.fpu_unit;
       Completed (Exited code)
     with Stall_detected -> Completed Stalled)
  | Stall_detected -> Completed Stalled

let run ?(max_instructions = 1_000_000) ?(on_instr = fun _ -> ()) t prog =
  match run_raw ~on_instr ~pc:0 ~budget:max_instructions t prog with
  | Paused _ -> Out_of_fuel
  | Completed o -> o

(* Run a bounded slice of [prog] starting at [pc]; [Paused pc'] hands back
   the resume point with in-flight unit operations drained, so the machine
   state at the pause is architectural (a snapshot or an interleaved test
   run can safely happen before resuming).  A drain that wedges surfaces
   as [Completed Stalled] — the watchdog outcome. *)
let run_slice ?(on_instr = fun _ -> ()) ~pc ~budget t prog =
  match run_raw ~on_instr ~pc ~budget t prog with
  | Paused pc' -> (
    try
      Option.iter (fun u -> alu_drain t u) t.alu_unit;
      Option.iter (fun u -> fpu_drain t u) t.fpu_unit;
      Paused pc'
    with Stall_detected -> Completed Stalled)
  | Completed _ as c -> c
