(* Aged-replica canary insertion: see canary.mli for the scheme.

   Wiring per canary (one shared arm cell per netlist):

                 launch DFF Q ----+--------------------------+
                                  |                          |
                                  |   replica of the path's  |
                                  |   combinational chain    |
                                  |   (side inputs shared)   |
                                  v                          v
                            [rep0]..[repN] = chain      [hist DFF]
                                  |                          |
                 +----------------+                 XOR <----+  (transition?)
                 |                |                  |
                 |             [Not]        [And] <--+-- arm (Tie0/Tie1)
                 |                |           |
                 |                v           |
                 +---------> [Mux2  a=chain  b=~chain  s=sel]
                 |                      |
                 v                      v
            [fresh DFF]            [aged DFF]
                 |                      |
                 +-----> [Xor2 cmp] <---+
                             |
                    [Or2] <--+   +--(sticky self-loop)
                      |          |
                      v          |
                 [sticky DFF] ---+-----> canary_trip[i]

   The replica chain re-computes the monitored path from the *same* side
   inputs, so fresh and aged replicas always capture the same value while
   disarmed; armed, the aged replica's capture is flipped for exactly the
   cycles in which the launching register toggles — the cycles where a
   path aged past the clock period would capture stale data. *)

let trip_port = "canary_trip"
let arm_cell = "_canary_arm"

type canary = {
  cn_index : int;
  cn_start : string;
  cn_end : string;
  cn_cells : int;
  cn_aged_delay_ps : float;
  cn_slack_ps : float;
}

let tele_inserted = Telemetry.Counter.make "canary.inserted"
let tele_cells = Telemetry.Counter.make "canary.replica_cells"
let tele_verified = Telemetry.Counter.make "canary.verified"

let trip_nets nl =
  List.find_map
    (fun (p : Netlist.port) -> if p.Netlist.port_name = trip_port then Some p.Netlist.port_nets else None)
    (Netlist.outputs nl)

let has_canaries nl = trip_nets nl <> None
let count nl = match trip_nets nl with None -> 0 | Some nets -> Array.length nets
let arm_cells nl = if has_canaries nl then [ arm_cell ] else []

let armed nl =
  match Netlist.find_cell nl arm_cell with
  | c -> c.Netlist.kind = Cell.Kind.Tie1
  | exception Not_found -> false

let set_arm value nl =
  let c =
    match Netlist.find_cell nl arm_cell with
    | c -> c
    | exception Not_found -> invalid_arg "Canary.arm: netlist has no canaries"
  in
  let b = Netlist.Builder.of_netlist nl in
  Netlist.Builder.set_kind b ~cell_id:c.Netlist.id
    (if value then Cell.Kind.Tie1 else Cell.Kind.Tie0);
  Netlist.Builder.finish b

let arm nl = set_arm true nl
let disarm nl = set_arm false nl

(* ---- planning ---- *)

let plan ?(count = 2) ?(pessimism = 1.25) nl ~timing ~clock_period_ps =
  if count <= 0 then invalid_arg "Canary.plan: count must be positive";
  if pessimism <= 0.0 then invalid_arg "Canary.plan: pessimism must be positive";
  (* arrival * pessimism > period  <=>  violating at period / pessimism *)
  let report = Sta.analyze ~timing ~clock_period_ps:(clock_period_ps /. pessimism) nl in
  let seen = Hashtbl.create 8 in
  let rec pick acc n = function
    | [] -> List.rev acc
    | _ when n >= count -> List.rev acc
    | (p : Sta.path) :: rest -> (
      match (p.Sta.start, p.Sta.finish) with
      | Sta.From_dff _, Sta.At_dff end_id when not (Hashtbl.mem seen end_id) ->
        Hashtbl.replace seen end_id ();
        pick (p :: acc) (n + 1) rest
      | _ -> pick acc n rest)
  in
  pick [] 0 report.Sta.setup_violations

(* ---- insertion ---- *)

let insert nl paths =
  if has_canaries nl then invalid_arg "Canary.insert: netlist already has canaries";
  let b = Netlist.Builder.of_netlist nl in
  let _, arm_net = Netlist.Builder.add_cell_with_id ~name:arm_cell b Cell.Kind.Tie0 [||] in
  let insert_one i (p : Sta.path) =
    let prefix = Printf.sprintf "_cn%d" i in
    let start_id, end_id =
      match (p.Sta.start, p.Sta.finish, p.Sta.check) with
      | Sta.From_dff s, Sta.At_dff e, Sta.Setup -> (s, e)
      | _ ->
        invalid_arg
          (Printf.sprintf "Canary.insert: canary %d is not a register-launched setup path" i)
    in
    let start_cell = Netlist.cell nl start_id in
    let end_cell = Netlist.cell nl end_id in
    let launch_q = start_cell.Netlist.output in
    (* replicate the combinational chain; side inputs stay shared *)
    let chain_out =
      List.fold_left
        (fun (prev, k) cid ->
          let c = Netlist.cell nl cid in
          let pin = ref (-1) in
          Array.iteri (fun j n -> if !pin < 0 && n = fst prev then pin := j) c.Netlist.inputs;
          if !pin < 0 then
            invalid_arg
              (Printf.sprintf "Canary.insert: canary %d's path does not thread through cell %s" i
                 c.Netlist.name);
          let inputs = Array.copy c.Netlist.inputs in
          inputs.(!pin) <- snd prev;
          let r =
            Netlist.Builder.add_cell
              ~name:(Printf.sprintf "%s_rep%d" prefix k)
              b c.Netlist.kind inputs
          in
          ((c.Netlist.output, r), k + 1))
        ((launch_q, launch_q), 0)
        p.Sta.through
      |> fun ((_, replica), _) -> replica
    in
    (* launch-transition detector: Q vs its one-cycle history *)
    let hist =
      Netlist.Builder.add_cell ~name:(prefix ^ "_hist")
        ~clock_domain:start_cell.Netlist.clock_domain ~reset_value:start_cell.Netlist.reset_value
        b Cell.Kind.Dff [| launch_q |]
    in
    let trans =
      Netlist.Builder.add_cell ~name:(prefix ^ "_trans") b Cell.Kind.Xor2 [| launch_q; hist |]
    in
    let sel = Netlist.Builder.add_cell ~name:(prefix ^ "_sel") b Cell.Kind.And2 [| trans; arm_net |] in
    let corrupt = Netlist.Builder.add_cell ~name:(prefix ^ "_late") b Cell.Kind.Not [| chain_out |] in
    (* Mux2 computes [if s then b else a] over inputs [a; b; s] *)
    let aged_d =
      Netlist.Builder.add_cell ~name:(prefix ^ "_aged_d") b Cell.Kind.Mux2
        [| chain_out; corrupt; sel |]
    in
    let fresh_ff =
      Netlist.Builder.add_cell ~name:(prefix ^ "_fresh")
        ~clock_domain:end_cell.Netlist.clock_domain ~reset_value:end_cell.Netlist.reset_value b
        Cell.Kind.Dff [| chain_out |]
    in
    let aged_ff =
      Netlist.Builder.add_cell ~name:(prefix ^ "_aged")
        ~clock_domain:end_cell.Netlist.clock_domain ~reset_value:end_cell.Netlist.reset_value b
        Cell.Kind.Dff [| aged_d |]
    in
    let cmp =
      Netlist.Builder.add_cell ~name:(prefix ^ "_cmp") b Cell.Kind.Xor2 [| fresh_ff; aged_ff |]
    in
    (* sticky trip latch: st' = st or cmp (pin 1 rewired onto the loop) *)
    let or_id, or_net =
      Netlist.Builder.add_cell_with_id ~name:(prefix ^ "_hold") b Cell.Kind.Or2 [| cmp; cmp |]
    in
    let sticky =
      Netlist.Builder.add_cell ~name:(prefix ^ "_sticky")
        ~clock_domain:end_cell.Netlist.clock_domain ~reset_value:false b Cell.Kind.Dff [| or_net |]
    in
    Netlist.Builder.rewire_input b ~cell_id:or_id ~pin:1 sticky;
    ( sticky,
      {
        cn_index = i;
        cn_start = start_cell.Netlist.name;
        cn_end = end_cell.Netlist.name;
        cn_cells = List.length p.Sta.through;
        cn_aged_delay_ps = p.Sta.delay_ps;
        cn_slack_ps = p.Sta.slack_ps;
      } )
  in
  let stickies, canaries = List.split (List.mapi insert_one paths) in
  Netlist.Builder.add_output b trip_port (Array.of_list stickies);
  let out = Netlist.Builder.finish b in
  Telemetry.Counter.add tele_inserted (List.length canaries);
  List.iter (fun c -> Telemetry.Counter.add tele_cells c.cn_cells) canaries;
  (out, canaries)

let describe canaries =
  String.concat ""
    (List.map
       (fun c ->
         Printf.sprintf "canary %d: %s -> %s, %d replica cells, aged %.1f ps (slack %.1f ps)\n"
           c.cn_index c.cn_start c.cn_end c.cn_cells c.cn_aged_delay_ps c.cn_slack_ps)
       canaries)

(* ---- verification gate ---- *)

let trip_expr nl =
  match trip_nets nl with
  | None | Some [||] -> Formal.Const false
  | Some nets ->
    Array.fold_left (fun acc n -> Formal.Or (acc, Formal.Net n)) (Formal.Const false) nets

let verify ?(check_trip = true) ?max_conflicts ~original nl =
  let ( let* ) = Result.bind in
  let* () =
    match Check.errors (Check.lint_netlist nl) with
    | [] -> Ok ()
    | diags -> Error ("monitored netlist fails lint:\n" ^ Check.render ~design:(Netlist.name nl) diags)
  in
  (* inertness proof: the canary logic (armed or not) never feeds an
     original comparison point, so no tie_low is needed here *)
  let* () =
    match Cec.check ~free_inputs:true ?max_conflicts original nl with
    | Cec.Equivalent -> Ok ()
    | v -> Error ("monitored netlist is not inert w.r.t. original outputs: " ^ Cec.describe v)
  in
  let* () =
    if not check_trip then Ok ()
    else begin
      let disarmed = if armed nl then disarm nl else nl in
      match Formal.check_cover ?max_conflicts disarmed ~cover:(trip_expr disarmed) with
      | Formal.Unreachable | Formal.Bounded_unreachable _ -> Ok ()
      | Formal.Trace_found t ->
        Error
          (Printf.sprintf "disarmed canary trips spontaneously (broken comparator?):\n%s"
             (Formal.Trace.to_string t))
      | Formal.Timeout _ -> Error "disarmed trip cover: solver budget exhausted"
    end
  in
  let* () =
    if not check_trip then Ok ()
    else begin
      let live = if armed nl then nl else arm nl in
      match Formal.check_cover ?max_conflicts live ~cover:(trip_expr live) with
      | Formal.Trace_found _ -> Ok ()
      | Formal.Unreachable | Formal.Bounded_unreachable _ ->
        Error "armed canary can never trip (stuck comparator?)"
      | Formal.Timeout _ -> Error "armed trip cover: solver budget exhausted"
    end
  in
  Telemetry.Counter.incr tele_verified;
  Ok ()
