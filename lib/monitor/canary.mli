(** In-situ aging canary monitors: aged-replica copies of near-critical
    paths, compared against fresh replicas by an XOR comparator whose
    verdict latches into a sticky trip register — the hardware-style second
    detection channel that complements Vega's software test sequences
    (after "A Survey of Aging Monitors and Reconfiguration Techniques").

    The insertion pass is purely additive: canary logic only {e reads}
    original nets and drives only the new [canary_trip] output port, so
    the instrumented netlist is combinationally equivalent to the original
    on every pre-existing comparison point — and {!verify} proves exactly
    that with the {!Cec} miter before a monitored netlist is ever used.

    Because gate delays live in the timing model rather than the netlist,
    the aged replica's late capture is modeled functionally: a corruption
    mux flips the replica's captured value whenever the launching register
    toggles {e and} the shared arm cell is set — the cycle in which a
    replica path slower than the clock would capture the stale value.
    Arming is a one-cell rewrite ({!arm}: the [Tie0] arm cell becomes
    [Tie1]), mirroring how {!Fault.failing_netlist} models the aged unit
    itself, so a campaign can run the very netlist it proved inert. *)

type canary = {
  cn_index : int;  (** bit position in the [canary_trip] port *)
  cn_start : string;  (** launching DFF instance of the monitored path *)
  cn_end : string;  (** capturing DFF instance of the monitored path *)
  cn_cells : int;  (** replica chain length (combinational cells copied) *)
  cn_aged_delay_ps : float;  (** pessimistically-aged arrival of the path *)
  cn_slack_ps : float;  (** slack of the path under the pessimistic corner *)
}

val trip_port : string
(** ["canary_trip"] — the sticky trip output port, one bit per canary
    (LSB = canary 0). *)

val arm_cell : string
(** ["_canary_arm"] — the shared arming tie cell's instance name. *)

val has_canaries : Netlist.t -> bool
(** The netlist carries a [canary_trip] output port. *)

val count : Netlist.t -> int
(** Number of canaries (the trip port's width); 0 when none. *)

val arm_cells : Netlist.t -> string list
(** The arm cell's name when present, [[]] otherwise — ready to splice
    into a {!Cec.check} [tie_low] list so armed canaries are proven inert
    alongside dormant fault instrumentation. *)

val armed : Netlist.t -> bool
(** The arm cell is present and set ([Tie1]). *)

val arm : Netlist.t -> Netlist.t
(** Copy with the arm cell set: every canary's corruption mux becomes
    live.  @raise Invalid_argument if the netlist has no canaries. *)

val disarm : Netlist.t -> Netlist.t
(** Copy with the arm cell cleared (the inverse of {!arm}). *)

val plan :
  ?count:int ->
  ?pessimism:float ->
  Netlist.t ->
  timing:Sta.timing_source ->
  clock_period_ps:float ->
  Sta.path list
(** Select up to [count] (default 2) register-launched setup paths to
    monitor, worst-slack first with distinct capturing endpoints.  A path
    qualifies when its arrival under [timing] — typically the phase-1
    aged corner — scaled by [pessimism] (default 1.25, the canary's
    built-in guardband) exceeds [clock_period_ps]; equivalently the
    analysis runs at [clock_period_ps /. pessimism].  Empty when the
    design clears even the pessimistic corner. *)

val insert : Netlist.t -> Sta.path list -> Netlist.t * canary list
(** Rewrite the netlist with one canary per path (in order; canary [i]
    is trip bit [i]): the path's combinational chain is replicated with
    side inputs shared, a history register detects launch transitions,
    fresh and aged replica registers capture the chain, and their XOR
    latches into a sticky trip register.  The shared arm cell is created
    cleared ([Tie0]): the inserted netlist is dormant and bit-identical
    in behaviour to the original on all original ports.

    @raise Invalid_argument if the netlist already has canaries, a path
    is not a register-launched setup path, or a path does not thread
    through the netlist (stale ids). *)

val describe : canary list -> string
(** Deterministic one-line-per-canary rendering for reports. *)

val verify :
  ?check_trip:bool ->
  ?max_conflicts:int ->
  original:Netlist.t ->
  Netlist.t ->
  (unit, string) result
(** The monitored netlist's acceptance gate, in order:

    {ol
    {- structural lint must report no error-class defects;}
    {- {!Cec.check} [~free_inputs] must prove the monitored netlist
       equivalent to [original] on every original comparison point — the
       canary logic, armed or not, must be provably inert;}
    {- (with [check_trip], default [true]) a BMC cover on the disarmed
       netlist must find {e no} reachable trip — a mutated comparator
       (e.g. XOR turned XNOR) trips spontaneously and is caught here;}
    {- (with [check_trip]) the same cover on the armed netlist must find
       a trip trace — the canary can actually fire.}}

    Returns [Error] with the first failing check's report.  The sticky
    trip register's self-loop makes the trip covers bounded claims rather
    than proofs; the CEC inertness proof in step 2 is unconditional. *)
