(** The closed-loop runtime guard.

    The static pipeline (phases one and two) produces an aging-test suite
    for a functional unit and {!Integrate} splices it into an application.
    This module closes the loop at runtime:

    - {!Injector} models *mid-life fault onset*: the unit starts healthy
      and a fault-instrumented replica is swapped in once a scheduled
      retired-instruction count is reached (optionally intermittently,
      with a duty knob).  Aging faults appear gradually in the field —
      they are not present at reset — so detection latency has to be
      measured from an onset that the application does not observe.

    - {!Monitor} executes the application in bounded slices, interleaves
      test cases at an adaptive cadence (exponential backoff while
      healthy, burst re-testing after a hit), and applies a recovery
      policy on detection: failover to the golden backend,
      checkpoint/rollback with bounded retries, or abort.  A test case
      that stalls the machine ({!Machine.Stalled}) counts as a detection.

    Runs are deterministic given the machine's RNG seed — the property the
    fault-injection campaign in {!Experiments} relies on. *)

module Injector : sig
  type slot = Alu_slot | Fpu_slot

  type schedule = {
    onset_instr : int;
        (** retired-instruction count at which the fault appears *)
    duty : (int * int) option;
        (** [Some (on, period)]: after onset, active for [on] instructions
            out of every [period] (an intermittent fault); [None]:
            permanent once it appears *)
  }

  val permanent : int -> schedule
  (** [permanent n] — the fault appears at instruction [n] and stays. *)

  type t

  val create :
    ?engine:Machine.unit_engine ->
    machine:Machine.t ->
    slot:slot ->
    spec:Fault.spec ->
    schedule ->
    t
  (** Build the fault-instrumented replica of the targeted unit's netlist
      ({!Fault.failing_netlist}) without installing it.  If the unit
      carries canary monitors ({!Canary.has_canaries}), the replica is
      built from the {e armed} netlist: swapping it in is the moment the
      unit ages past the canary guardband, so the hardware trip channel
      and the functional fault onset coincide.  The replica is
      statically vetted before it can ever be armed: with its fault lines
      tied inactive ({!Fault.select_cells}, plus the canary arm cell when
      present) it must be CEC-equivalent to the golden netlist
      ({!Cec.check}), proving the instrumentation is inert while dormant.  [engine] selects the simulator the replica
      runs on; it defaults to the engine of the unit being replaced, so a
      machine built with [~unit_engine:Compiled_unit] gets a compiled
      faulty replica with no further plumbing.
      @raise Invalid_argument if the targeted unit runs on a functional
      backend (there is no netlist to instrument), or if the replica fails
      the equivalence gate. *)

  val tick : t -> unit
  (** Advance the schedule; swaps the faulty replica in or out when a
      transition is due.  Intended as (part of) the machine's [on_instr]
      hook.  Cheap when no transition is due. *)

  val disable : t -> unit
  (** Permanently retire the suspect unit onto the functional golden
      backend — the failover action.  Subsequent {!tick}s do nothing. *)

  val active : t -> bool
  (** The faulty replica is currently installed. *)

  val disabled : t -> bool

  val onset : t -> (int * int) option
  (** [(instructions, cycles)] of the first activation, once it happened. *)

  val spec : t -> Fault.spec
end

module Monitor : sig
  type policy =
    | Abort  (** stop the application on a confirmed detection *)
    | Failover
        (** swap the suspect unit to its functional golden backend and
            continue *)
    | Rollback_retry of { checkpoint_every : int; max_retries : int }
        (** checkpoint every [checkpoint_every] instructions (verified by a
            full-suite pass before being trusted); on detection, restore
            the last checkpoint and re-execute on the golden backend, at
            most [max_retries] times *)

  val policy_name : policy -> string

  type config = {
    cadence : int;  (** initial app instructions between test slices *)
    backoff : float;  (** cadence multiplier after each healthy slice *)
    max_cadence : int;
    burst : int;  (** full-suite confirmation sweeps after a first hit *)
    policy : policy;
    max_instructions : int;  (** forward-progress budget for the app *)
    final_sweep : bool;  (** run the full suite once more at app exit *)
    canary_poll : int option;
        (** [Some n]: poll the monitored unit's {!Canary.trip_port} every
            [n] app instructions — the hardware detection channel, live
            when the unit's netlist carries canaries ({!Canary.insert}).
            A poll is a register read (no test excursion, no machine-state
            change), so [n] is typically far below [cadence].  A trip is
            recorded as a ["__canary (trip 0x..)"] detection and feeds the
            same burst-confirmation and recovery path as a failing test.
            [None] (the default): channel off. *)
  }

  val default_config : config
  (** cadence 200, backoff 1.5, max_cadence 5000, burst 1, Failover,
      5M instructions, final sweep on, canary polling off. *)

  type detection = {
    det_id : string;  (** test-case id, with [" (stall)"] for watchdog hits *)
    det_instr : int;  (** app instructions retired at detection *)
    det_cycle : int;
    det_slice : int;  (** guard slices run before this detection *)
  }

  type verdict =
    | App_completed of Machine.outcome
        (** the app ran to its own end (possibly after recovery) *)
    | Guard_aborted of string
        (** the Abort policy, retry exhaustion, or an unrecoverable stall *)

  type report = {
    r_verdict : verdict;
    r_detections : detection list;  (** chronological *)
    r_onset : (int * int) option;  (** from the injector, when attached *)
    r_latency : (int * int) option;
        (** (instructions, cycles) from onset to first detection *)
    r_retries : int;  (** rollbacks performed *)
    r_recovered : bool;  (** a recovery action ran and the app continued *)
    r_app_instructions : int;
    r_app_cycles : int;
    r_guard_cycles : int;  (** cycles spent executing interleaved tests *)
    r_guard_slices : int;
    r_lost_cycles : int;  (** app cycles discarded by rollbacks *)
    r_lost_instructions : int;
    r_checkpoints : int;
    r_final_cadence : int;
    r_canary_polls : int;  (** trip-port reads performed *)
  }

  val run :
    ?config:config ->
    ?injector:Injector.t ->
    suite:Lift.suite ->
    Machine.t ->
    Isa.program ->
    report
  (** Execute [prog] from pc 0 under the guard loop.  The caller resets
      the machine (or not — execution is reset-free, like {!Machine.run}).
      With an [injector], its {!Injector.tick} runs on every retired app
      instruction (test-case excursions do not tick the schedule), and
      recovery retires the injected unit via {!Injector.disable}; without
      one, failover swaps the unit named by [suite]'s target to its
      functional backend.
      @raise Invalid_argument if [config] is degenerate: non-positive test
      cadence, canary poll cadence, instruction budget, or checkpoint
      interval (each would loop or re-fire on every instruction). *)

  val detected : report -> bool

  val render : report -> string
  (** Multi-line human-readable report. *)
end
