(* The closed-loop runtime guard: mid-life fault onset, adaptive test
   cadence, and checkpoint/rollback recovery.

   The static pipeline (phases 1-2) produces a test suite for a functional
   unit; [Integrate] splices it into an application.  This module closes
   the loop at runtime:

   - {!Injector} models *mid-life onset*: the unit starts healthy and a
     fault-instrumented replica is swapped in at a scheduled instruction
     (optionally intermittently, with a duty knob) — aging faults appear
     gradually in the field, they are not present at reset.
   - {!Monitor} runs an application in bounded slices, interleaving test
     cases at an adaptive cadence (exponential backoff while healthy,
     burst re-testing after a hit to debounce intermittent faults), and
     applies a recovery policy on detection: failover to the golden
     backend, checkpoint/rollback with bounded retries, or abort.

   Both are deterministic given the machine's RNG seed, which is what the
   fault-injection campaign in [Experiments] relies on. *)

module Injector = struct
  type slot = Alu_slot | Fpu_slot

  type schedule = {
    onset_instr : int;  (* retired-instruction count at which the fault appears *)
    duty : (int * int) option;
        (* [Some (on, period)]: after onset the fault is active for [on]
           instructions out of every [period] (an intermittent contact);
           [None]: permanent once it appears *)
  }

  let permanent onset_instr = { onset_instr; duty = None }

  type state = Golden | Faulty | Disabled

  type t = {
    machine : Machine.t;
    slot : slot;
    spec : Fault.spec;
    faulty_sim : Machine.unit_sim;
    mutable golden_sim : Machine.unit_sim option;
        (* stashed while the faulty replica is installed *)
    schedule : schedule;
    mutable state : state;
    mutable onset : (int * int) option;  (* (instr, cycle) of first activation *)
  }

  let swap t sim =
    match t.slot with
    | Alu_slot -> Machine.swap_alu_unit t.machine sim
    | Fpu_slot -> Machine.swap_fpu_unit t.machine sim

  let create ?engine ~machine ~slot ~spec schedule =
    let unit_sim =
      match
        match slot with
        | Alu_slot -> Machine.alu_unit_sim machine
        | Fpu_slot -> Machine.fpu_unit_sim machine
      with
      | Some u -> u
      | None ->
        invalid_arg "Guard.Injector.create: the targeted unit runs on a functional backend"
    in
    let golden_nl = Machine.unit_sim_netlist unit_sim in
    (* the faulty replica runs on the same engine as the unit it replaces,
       unless the caller overrides *)
    let engine =
      match engine with
      | Some e -> e
      | None -> (
        match unit_sim with
        | Machine.Scalar_sim _ -> Machine.Scalar_unit
        | Machine.Compiled_sim _ -> Machine.Compiled_unit)
    in
    (* A monitored golden unit carries dormant canaries; the aged replica
       carries the same canaries *armed* — swapping it in is the moment
       the unit "ages past the canary guardband", so the trip channel and
       the functional fault onset coincide. *)
    let faulty_base =
      if Canary.has_canaries golden_nl then Canary.arm golden_nl else golden_nl
    in
    let faulty_nl = Fault.failing_netlist faulty_base spec in
    (* CEC gate: with its fault-activation lines tied low — and any canary
       arm cell with them — the instrumented replica must be provably
       equivalent to the golden netlist: a broken instrumentation would
       otherwise corrupt the machine even while the fault is nominally
       dormant.  The proof is structural (hash-consed miter, no SAT
       search), so this is cheap. *)
    (match
       Cec.check ~free_inputs:true
         ~tie_low:(Fault.select_cells faulty_nl @ Canary.arm_cells faulty_nl)
         golden_nl faulty_nl
     with
    | Cec.Equivalent -> ()
    | v ->
      invalid_arg
        (Printf.sprintf
           "Guard.Injector.create: instrumented replica is not equivalent to %s with the fault \
            inert: %s"
           (Netlist.name golden_nl) (Cec.describe v)));
    {
      machine;
      slot;
      spec;
      faulty_sim = Machine.make_unit_sim engine faulty_nl;
      golden_sim = None;
      schedule;
      state = Golden;
      onset = None;
    }

  let want_active t retired =
    retired >= t.schedule.onset_instr
    &&
    match t.schedule.duty with
    | None -> true
    | Some (on, period) ->
      period > 0 && (retired - t.schedule.onset_instr) mod period < on

  (* Called per retired instruction (the machine's [on_instr] hook); swaps
     the faulty replica in or out according to the schedule.  Cheap when no
     transition is due. *)
  let tick t =
    match t.state with
    | Disabled -> ()
    | cur -> (
      let retired = Machine.instructions_retired t.machine in
      let want = want_active t retired in
      match (cur, want) with
      | Golden, true ->
        t.golden_sim <- swap t (Some t.faulty_sim);
        t.state <- Faulty;
        if t.onset = None then t.onset <- Some (retired, Machine.cycles t.machine)
      | Faulty, false ->
        ignore (swap t t.golden_sim);
        t.state <- Golden
      | _ -> ())

  (* Permanently retire the suspect unit onto the functional golden
     backend — the failover action. *)
  let disable t =
    if t.state <> Disabled then begin
      ignore (swap t None);
      t.state <- Disabled
    end

  let active t = t.state = Faulty
  let disabled t = t.state = Disabled
  let onset t = t.onset
  let spec t = t.spec
end

module Monitor = struct
  type policy =
    | Abort
    | Failover
    | Rollback_retry of { checkpoint_every : int; max_retries : int }

  let policy_name = function
    | Abort -> "abort"
    | Failover -> "failover"
    | Rollback_retry _ -> "rollback"

  type config = {
    cadence : int;  (* initial app instructions between interleaved test slices *)
    backoff : float;  (* cadence multiplier after each healthy slice *)
    max_cadence : int;
    burst : int;  (* full-suite confirmation sweeps after a first hit *)
    policy : policy;
    max_instructions : int;
    final_sweep : bool;  (* run the full suite once more when the app exits *)
    canary_poll : int option;
        (* [Some n]: poll the monitored unit's canary trip port every [n]
           app instructions (the hardware detection channel); [None]: off *)
  }

  let default_config =
    {
      cadence = 200;
      backoff = 1.5;
      max_cadence = 5_000;
      burst = 1;
      policy = Failover;
      max_instructions = 5_000_000;
      final_sweep = true;
      canary_poll = None;
    }

  (* Reject the configurations that would otherwise spin forever or mask
     themselves: a zero cadence used to be silently clamped to 1, a zero
     poll or checkpoint interval would re-fire on every instruction. *)
  let validate_config config =
    if config.cadence <= 0 then
      invalid_arg "Guard.Monitor.run: test cadence must be positive";
    (match config.canary_poll with
    | Some n when n <= 0 ->
      invalid_arg "Guard.Monitor.run: canary poll cadence must be positive"
    | _ -> ());
    if config.max_instructions <= 0 then
      invalid_arg "Guard.Monitor.run: instruction budget must be positive";
    match config.policy with
    | Rollback_retry { checkpoint_every; _ } when checkpoint_every <= 0 ->
      invalid_arg "Guard.Monitor.run: checkpoint interval must be positive"
    | _ -> ()

  type detection = {
    det_id : string;  (* test-case id, with " (stall)" for watchdog hits *)
    det_instr : int;  (* app instructions retired at detection *)
    det_cycle : int;
    det_slice : int;  (* how many guard slices had run *)
  }

  type verdict =
    | App_completed of Machine.outcome  (* the app ran to its own end (possibly after recovery) *)
    | Guard_aborted of string  (* the Abort policy (or an unrecoverable stall) stopped it *)

  type report = {
    r_verdict : verdict;
    r_detections : detection list;  (* chronological *)
    r_onset : (int * int) option;  (* from the injector, when one is attached *)
    r_latency : (int * int) option;  (* (instrs, cycles) from onset to first detection *)
    r_retries : int;  (* rollbacks performed *)
    r_recovered : bool;  (* a recovery action ran and the app continued *)
    r_app_instructions : int;
    r_app_cycles : int;
    r_guard_cycles : int;  (* cycles spent executing interleaved test cases *)
    r_guard_slices : int;
    r_lost_cycles : int;  (* app cycles discarded by rollbacks *)
    r_lost_instructions : int;
    r_checkpoints : int;
    r_final_cadence : int;
    r_canary_polls : int;  (* trip-port reads performed *)
  }

  (* Run [cases] on the machine, preserving the application's architectural
     state around the excursion (the machine resumes exactly where it left
     off).  Stops at the first failure.  Returns the result and the cycles
     spent.  Assumes the machine is drained (a slice pause point). *)
  let run_cases m cases =
    let snap = Machine.snapshot m in
    let spent = ref 0 in
    let rec go = function
      | [] -> Ok ()
      | (tc : Lift.test_case) :: rest -> (
        Machine.reset m;
        let outcome = Machine.run m (Integrate.Runner.case_program tc) in
        spent := !spent + Machine.cycles m;
        match outcome with
        | Machine.Exited code when code = Isa.exit_ok -> go rest
        | Machine.Exited _ -> Error tc.Lift.tc_id
        | Machine.Stalled -> Error (tc.Lift.tc_id ^ " (stall)")
        | Machine.Out_of_fuel -> Error (tc.Lift.tc_id ^ " (no progress)"))
    in
    let result = go cases in
    Machine.restore m snap;
    (result, !spent)

  let tele_slices = Telemetry.Counter.make "guard.slices"
  let tele_detections = Telemetry.Counter.make "guard.detections"
  let tele_test_cycles = Telemetry.Counter.make "guard.test_cycles"

  let tele_latency =
    Telemetry.Histogram.make "guard.detection_latency"
      ~bounds:[| 16; 64; 256; 1024; 4096; 16384; 65536 |]

  let tele_polls = Telemetry.Counter.make "canary.polls"
  let tele_trips = Telemetry.Counter.make "canary.trips"

  let run ?(config = default_config) ?injector ~suite m (prog : Isa.program) =
    validate_config config;
    let tele = Telemetry.enabled () in
    if tele then Telemetry.begin_span ~cat:"guard" "guard.run";
    let cases = Array.of_list suite.Lift.suite_cases in
    let n_cases = Array.length cases in
    let cadence = ref config.cadence in
    let poll_cadence = match config.canary_poll with Some n -> n | None -> 0 in
    let until_test = ref !cadence in
    let until_poll = ref poll_cadence in
    let canary_polls = ref 0 in
    let slice_idx = ref 0 in
    let detections = ref [] in
    let retries = ref 0 in
    let guard_cycles = ref 0 in
    let guard_slices = ref 0 in
    let lost_cycles = ref 0 in
    let lost_instrs = ref 0 in
    let checkpoints = ref 0 in
    let recovered = ref false in
    let executed = ref 0 in
    let on_instr =
      match injector with None -> fun _ -> () | Some inj -> fun _ -> Injector.tick inj
    in
    let record_detection id =
      detections :=
        {
          det_id = id;
          det_instr = Machine.instructions_retired m;
          det_cycle = Machine.cycles m;
          det_slice = !slice_idx;
        }
        :: !detections
    in
    let full_suite () =
      let result, spent = run_cases m (Array.to_list cases) in
      guard_cycles := !guard_cycles + spent;
      result
    in
    (* Failover action: permanently retire the suspect unit onto its
       functional golden backend.  Without an injector the suspect unit is
       inferred from the suite's target. *)
    let swap_to_golden () =
      match injector with
      | Some inj -> Injector.disable inj
      | None -> (
        match suite.Lift.suite_target with
        | Lift.Alu_module _ -> ignore (Machine.swap_alu_sim m None)
        | Lift.Fpu_module _ -> ignore (Machine.swap_fpu_sim m None))
    in
    (* The hardware channel: read the monitored unit's sticky trip port.
       A poll is a register read — no test excursion, no machine-state
       change — so its cadence can be far tighter than the test cadence.
       After failover the unit runs functionally and the channel goes
       quiet on its own. *)
    let target_unit_sim () =
      match suite.Lift.suite_target with
      | Lift.Alu_module _ -> Machine.alu_unit_sim m
      | Lift.Fpu_module _ -> Machine.fpu_unit_sim m
    in
    let polling () =
      poll_cadence > 0
      &&
      match target_unit_sim () with
      | Some us -> Canary.has_canaries (Machine.unit_sim_netlist us)
      | None -> false
    in
    let poll_canaries () =
      incr canary_polls;
      Telemetry.Counter.incr tele_polls;
      match target_unit_sim () with
      | None -> None
      | Some us ->
        let mask = Bitvec.to_int (Machine.unit_sim_output us Canary.trip_port) in
        if mask = 0 then None
        else begin
          Telemetry.Counter.incr tele_trips;
          Some (Printf.sprintf "__canary (trip 0x%x)" mask)
        end
    in
    (* Checkpoints are taken only after the full suite passes, so for a
       permanent (detectable) fault every checkpoint predates any silent
       corruption: once the fault is active the verification sweep fails
       and no checkpoint is taken. *)
    let checkpoint = ref None in
    let last_cp_instr = ref min_int in
    let take_checkpoint pc =
      checkpoint := Some (Machine.snapshot m, pc, Machine.instructions_retired m, Machine.cycles m);
      last_cp_instr := Machine.instructions_retired m;
      incr checkpoints
    in
    let rec exec pc =
      if !executed >= config.max_instructions then App_completed Machine.Out_of_fuel
      else begin
        let budget = min (max 1 !until_test) (config.max_instructions - !executed) in
        let budget = if polling () then min budget (max 1 !until_poll) else budget in
        let before = Machine.instructions_retired m in
        let result = Machine.run_slice ~on_instr ~pc ~budget m prog in
        let ran = Machine.instructions_retired m - before in
        executed := !executed + ran;
        until_test := !until_test - ran;
        until_poll := !until_poll - ran;
        match result with
        | Machine.Completed Machine.Stalled ->
          (* the application itself wedged: watchdog detection *)
          record_detection "__app (stall)";
          recover_from_stall ()
        | Machine.Completed o -> finish o
        | Machine.Paused pc' -> pause pc'
      end
    and pause pc' =
      (* the canary channel runs first: it is cheap, and a trip preempts
         the software test slice *)
      if polling () && !until_poll <= 0 then begin
        until_poll := poll_cadence;
        match poll_canaries () with
        | Some id ->
          record_detection id;
          escalate pc' id
        | None -> if !until_test <= 0 then guard_slice pc' else exec pc'
      end
      else if !until_test <= 0 then guard_slice pc'
      else exec pc'
    and guard_slice pc' =
      if n_cases = 0 then begin
        until_test := !cadence;
        exec pc'
      end
      else begin
        let tc = cases.(!slice_idx mod n_cases) in
        incr slice_idx;
        incr guard_slices;
        let result, spent = run_cases m [ tc ] in
        guard_cycles := !guard_cycles + spent;
        match result with
        | Ok () ->
          cadence :=
            min config.max_cadence
              (max (!cadence + 1) (int_of_float (float_of_int !cadence *. config.backoff)));
          until_test := !cadence;
          (match config.policy with
          | Rollback_retry { checkpoint_every; _ }
            when Machine.instructions_retired m - !last_cp_instr >= checkpoint_every -> (
            (* verify with the full suite before trusting this state *)
            match full_suite () with
            | Ok () ->
              take_checkpoint pc';
              exec pc'
            | Error id ->
              record_detection id;
              escalate pc' id)
          | _ -> exec pc')
        | Error id ->
          record_detection id;
          escalate pc' id
      end
    and escalate pc' id =
      (* burst re-testing: debounce/confirm before recovery acts *)
      for _ = 1 to config.burst do
        match full_suite () with Ok () -> () | Error id2 -> record_detection id2
      done;
      cadence := config.cadence;
      until_test := !cadence;
      until_poll := poll_cadence;
      match config.policy with
      | Abort -> Guard_aborted id
      | Failover ->
        swap_to_golden ();
        recovered := true;
        exec pc'
      | Rollback_retry _ -> rollback id
    and rollback id =
      match (config.policy, !checkpoint) with
      | Rollback_retry { max_retries; _ }, _ when !retries >= max_retries -> Guard_aborted id
      | _, None -> Guard_aborted id
      | _, Some (snap, cpc, cp_instr, cp_cycle) ->
        incr retries;
        let discarded = Machine.instructions_retired m - cp_instr in
        lost_instrs := !lost_instrs + discarded;
        lost_cycles := !lost_cycles + (Machine.cycles m - cp_cycle);
        (* the discarded instructions will be re-executed: give the fuel back
           so [max_instructions] caps forward progress, not total work *)
        executed := max 0 (!executed - discarded);
        Machine.restore m snap;
        (* re-execute on the golden unit: the suspect backend is retired *)
        swap_to_golden ();
        recovered := true;
        until_test := !cadence;
        until_poll := poll_cadence;
        exec cpc
    and recover_from_stall () =
      match config.policy with
      | Rollback_retry _ -> rollback "__app (stall)"
      | Abort | Failover ->
        (* the stall interrupted an instruction mid-flight; without a
           checkpoint there is no coherent resume point *)
        Guard_aborted "__app (stall)"
    and finish o =
      if config.final_sweep && n_cases > 0 then begin
        match full_suite () with
        | Ok () -> App_completed o
        | Error id -> (
          record_detection id;
          match config.policy with
          | Abort -> Guard_aborted id
          | Failover ->
            swap_to_golden ();
            recovered := true;
            App_completed o
          | Rollback_retry _ -> rollback id)
      end
      else App_completed o
    in
    (match config.policy with
    | Rollback_retry _ ->
      (* pc 0, before any instruction (and any injector activation): clean
         by construction *)
      take_checkpoint 0
    | _ -> ());
    let verdict = exec 0 in
    let detections = List.rev !detections in
    let onset = Option.bind injector Injector.onset in
    let latency =
      match (onset, detections) with
      | Some (oi, oc), d :: _ -> Some (d.det_instr - oi, d.det_cycle - oc)
      | _ -> None
    in
    Telemetry.Counter.add tele_slices !guard_slices;
    Telemetry.Counter.add tele_detections (List.length detections);
    Telemetry.Counter.add tele_test_cycles !guard_cycles;
    (match latency with
    | Some (instrs, _) -> Telemetry.Histogram.observe tele_latency instrs
    | None -> ());
    if tele then
      Telemetry.end_span
        ~args:
          [
            ( "verdict",
              Telemetry.Str
                (match verdict with App_completed _ -> "completed" | Guard_aborted _ -> "aborted")
            );
            ("slices", Telemetry.Int !guard_slices);
            ("detections", Telemetry.Int (List.length detections));
            ("guard_cycles", Telemetry.Int !guard_cycles);
            ("app_cycles", Telemetry.Int (Machine.cycles m));
          ]
        ();
    {
      r_verdict = verdict;
      r_detections = detections;
      r_onset = onset;
      r_latency = latency;
      r_retries = !retries;
      r_recovered = !recovered;
      r_app_instructions = Machine.instructions_retired m;
      r_app_cycles = Machine.cycles m;
      r_guard_cycles = !guard_cycles;
      r_guard_slices = !guard_slices;
      r_lost_cycles = !lost_cycles;
      r_lost_instructions = !lost_instrs;
      r_checkpoints = !checkpoints;
      r_final_cadence = !cadence;
      r_canary_polls = !canary_polls;
    }

  let detected r = r.r_detections <> []

  let render r =
    let buf = Buffer.create 256 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    (match r.r_verdict with
    | App_completed o -> add "verdict: app %s\n" (Format.asprintf "%a" Machine.pp_outcome o)
    | Guard_aborted id -> add "verdict: aborted on [%s]\n" id);
    (match r.r_onset with
    | Some (i, c) -> add "onset: instr %d, cycle %d\n" i c
    | None -> add "onset: none (healthy run)\n");
    List.iter
      (fun d -> add "detection: [%s] at instr %d, cycle %d (slice %d)\n" d.det_id d.det_instr d.det_cycle d.det_slice)
      r.r_detections;
    (match r.r_latency with
    | Some (i, c) -> add "detection latency: %d instructions, %d cycles\n" i c
    | None -> ());
    add "recovery: %s, %d rollback(s), %d checkpoint(s), lost %d cycles\n"
      (if r.r_recovered then "yes" else "no")
      r.r_retries r.r_checkpoints r.r_lost_cycles;
    add "guard: %d slices, %d cycles, %d canary poll(s); app: %d instrs, %d cycles; final cadence %d\n"
      r.r_guard_slices r.r_guard_cycles r.r_canary_polls r.r_app_instructions r.r_app_cycles
      r.r_final_cadence;
    Buffer.contents buf
end
