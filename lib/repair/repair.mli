(** Aging-aware netlist repair: a verified rewriting pass that *fixes*
    the register pairs phase 1 reports as violating.

    The pass consumes the phase-1 evidence (the exact violating pairs of
    {!Sta.violating_pairs}, which — under the sound default assumptions —
    subsume {!Check.Spbound}'s [Critical] verdicts) and walks the pairs
    worst-slack-first.  For each pair it asks {!Sta.pair_path} for the
    extremal aged path and tries a ranked ladder of local rewrites:

    - {e gate strengthening} — drive duplication with fanout split: the
      critical consumer pin gets a private, fused copy of its driver
      (inverter absorption [NOT(AND) -> NAND] and friends, buffer and
      double-inverter elimination) while every other reader keeps the
      original cells;
    - {e cell duplication + voting} — a near-critical hold cone's driver
      is triplicated and a majority voter arbitrates the copies, padding
      the min-delay path while masking a single slow replica;
    - {e SP-rebalancing restructure} — associative AND/OR/XOR chains on
      the path are rebuilt as balanced trees, and reconvergent cones are
      Shannon-restructured against the late-arriving path signal (the
      cofactors compute from the early side inputs, the late signal moves
      to a single mux select);
    - {e bounded-error approximation} (opt-in) — an FP-datapath path is
      cut by tying the critical pin to its most probable value, accepted
      only when the 64-lane random differential stays within the declared
      error bound.

    Every exact rewrite is proved equivalent against the previous netlist
    with the {!Cec} miter before it is committed; a rewrite is also
    rejected if it worsens any other pair, exceeds the area budget, or
    introduces a new lint code.  Committed edits form the {e rewrite
    ledger}: an ordered list of reversible local edits with provenance,
    each replayable from its JSON encoding — the checkpoint/resume
    substrate and the reusable transformation IR.  After the ladder the
    netlist is swept of dead cells (surviving cells keep their instance
    names) and re-scored through [Sta] + [Spbound] by the caller
    ({!Vega.repair}). *)

(** The ladder rung a committed edit belongs to. *)
type rung =
  | Strengthen  (** fusion / buffer elimination / hold padding *)
  | Dup_vote  (** triplicated driver + majority voter (hold) *)
  | Rebalance  (** chain balancing or Shannon restructure *)
  | Approx  (** bounded-error constant tie (opt-in) *)

val rung_name : rung -> string

(** One reversible local edit.  Cells are referenced by instance name (ids
    are not stable across the dead-cell sweep); [reader]/[pin] name the
    input pin that is rewired, and the rest of the edit re-derives
    deterministically from the current netlist — which is what makes the
    ledger replayable on resume. *)
type edit =
  | Buf_elim of { eb_reader : string; eb_pin : int }
      (** the pin reads a BUF: rewire it to the BUF's input *)
  | Not_not of { en_reader : string; en_pin : int }
      (** the pin reads NOT(NOT(x)): rewire it to [x] *)
  | Fuse_inv of { ef_reader : string; ef_pin : int; ef_kind : Cell.Kind.t }
      (** the pin reads NOT(g(a,b)): give it a private fused cell
          [ef_kind](a,b) (the complement kind of [g]) *)
  | Chain_balance of { ec_reader : string; ec_pin : int; ec_chain : string list }
      (** the pin reads the root of the named same-kind associative
          chain (deepest cell first): rebuild it as a balanced tree *)
  | Shannon of { es_reader : string; es_pin : int; es_late : string }
      (** cofactor the cone between the late signal (output net of the
          named cell) and the pin against late = 0/1, fold the copies,
          and select with a single mux driven by the late signal *)
  | Hold_pad of { eh_reader : string; eh_pin : int; eh_bufs : int }
      (** insert a BUF chain in front of the pin (hold fix) *)
  | Vote3 of { ev_reader : string; ev_pin : int }
      (** triplicate the pin's driver cell and vote the copies *)
  | Approx_tie of { ea_reader : string; ea_pin : int; ea_value : bool }
      (** tie the pin to a constant (approximate; needs an error bound) *)

val describe_edit : edit -> string

(** How a committed rewrite was verified. *)
type verification =
  | Verified_cec  (** {!Cec.check} returned [Equivalent] *)
  | Verified_bound of float
      (** measured 64-lane differential error rate (within the bound) *)

type committed = {
  cm_seq : int;  (** ledger position; also seeds the [_rp<seq>_] names *)
  cm_pair : string;  (** {!Spbound.pair_key} of the pair being repaired *)
  cm_rung : rung;
  cm_edit : edit;
  cm_verification : verification;
  cm_slack_before_ps : float;  (** the pair's aged slack before the edit *)
  cm_slack_after_ps : float;
  cm_cells_added : int;
}

type pair_status =
  | Repaired  (** aged slack non-negative after repair *)
  | Improved  (** slack improved but still negative (budget/ladder ran out) *)
  | Unrepaired of string  (** nothing committed; the reason *)

type pair_outcome = {
  po_pair : string;
  po_check : Sta.check;
  po_slack_before_ps : float;
  po_slack_after_ps : float;
  po_edits : int;
  po_status : pair_status;
}

type config = {
  rp_max_rewrites : int;  (** budget: committed rewrites across all pairs *)
  rp_max_area_frac : float;
      (** budget: max live-area growth as a fraction of the original *)
  rp_max_pair_edits : int;  (** inner-loop cap per pair *)
  rp_rungs : rung list;  (** enabled rungs, in ladder order *)
  rp_approx_bound : float option;
      (** error-rate bound for {!Approx}; [None] disables the rung even
          when listed *)
  rp_approx_cycles : int;  (** 64-lane differential cycles per check *)
  rp_seed : int;  (** differential stimulus seed *)
  rp_max_conflicts : int;  (** SAT budget per CEC proof *)
  rp_max_cone : int;  (** Shannon cone cell cap *)
}

val default_config : config
(** 64 rewrites, 25% area, all exact rungs, approximation off. *)

type result = {
  rs_netlist : Netlist.t;  (** repaired and swept; instance names survive *)
  rs_sp_of_net : Netlist.net -> float;
      (** SP view of the repaired netlist: original nets keep their
          profiled SP, provenance-tracked new cells inherit theirs, and
          new cells without provenance are pinned at SP 0 (maximum BTI
          aging), so re-scored slack gains are lower bounds *)
  rs_outcomes : pair_outcome list;  (** worst-slack-first pair order *)
  rs_ledger : committed list;  (** commit order *)
  rs_rewrites : int;
  rs_rejected : int;  (** candidates discarded by a verification gate *)
  rs_cec_failures : int;
      (** candidates whose miter came back [Inequivalent] — always 0 for
          the shipped rewrite ladder; counted so the report can prove it *)
  rs_cells_before : int;
  rs_cells_after : int;
  rs_area_before_um2 : float;
  rs_area_after_um2 : float;
  rs_resumed_pairs : int;  (** pairs replayed from the checkpoint *)
}

val run :
  ?config:config ->
  ?checkpoint:Resilience.Checkpoint.t ->
  ?log:(string -> unit) ->
  netlist:Netlist.t ->
  sp_of_net:(Netlist.net -> float) ->
  clock_period_ps:float ->
  years:float ->
  derate:float ->
  clock_tree:Clock_tree.t ->
  aglib:Aging.Timing_library.t ->
  pairs:(Sta.startpoint * Sta.endpoint * Sta.check * float) list ->
  unit ->
  result
(** Repair the given pairs (ids refer to [netlist]) worst-slack-first.
    Deterministic: the same inputs and config produce byte-identical
    {!render} output and a structurally identical netlist.  With a
    [checkpoint], each pair's committed edits are persisted as JSON and
    replayed (skipping the search and the proofs) on resume.
    @raise Invalid_argument if the netlist fails error-class lint. *)

val digest : config -> Netlist.t -> clock_period_ps:float -> years:float -> string
(** Checkpoint compatibility digest: netlist, timing knobs and the full
    rewrite configuration. *)

val render : result -> string
(** Deterministic, golden-diffable repair report: summary counters, the
    per-pair before/after slack table and the rewrite ledger. *)
