(* Aging-aware netlist repair: see repair.mli for the contract.

   Structure of this file:
     1. types mirrored from the interface + small helpers
     2. dead-cell sweep and live-area accounting (the only "deletion"
        primitive — Builder cannot remove cells, so dead logic is swept
        by a two-pass rebuild that keeps instance names)
     3. the name-keyed SP view (profiled SP survives rewrites and the
        sweep because it is keyed by instance name, not net index)
     4. edit application (each ledger edit re-derives its context from
        the current netlist, which makes the ledger replayable)
     5. JSON codecs for the ledger (checkpoint format)
     6. the 64-lane random differential used to bound approximate edits
     7. candidate search along the extremal path of a pair
     8. the verification gate (slack / collateral / area / lint / CEC)
     9. the greedy worst-first driver, checkpoint replay, and rendering *)

type rung = Strengthen | Dup_vote | Rebalance | Approx

let rung_name = function
  | Strengthen -> "strengthen"
  | Dup_vote -> "dup-vote"
  | Rebalance -> "rebalance"
  | Approx -> "approx"

let rung_of_name = function
  | "strengthen" -> Strengthen
  | "dup-vote" -> Dup_vote
  | "rebalance" -> Rebalance
  | "approx" -> Approx
  | s -> invalid_arg ("Repair.rung_of_name: " ^ s)

type edit =
  | Buf_elim of { eb_reader : string; eb_pin : int }
  | Not_not of { en_reader : string; en_pin : int }
  | Fuse_inv of { ef_reader : string; ef_pin : int; ef_kind : Cell.Kind.t }
  | Chain_balance of { ec_reader : string; ec_pin : int; ec_chain : string list }
  | Shannon of { es_reader : string; es_pin : int; es_late : string }
  | Hold_pad of { eh_reader : string; eh_pin : int; eh_bufs : int }
  | Vote3 of { ev_reader : string; ev_pin : int }
  | Approx_tie of { ea_reader : string; ea_pin : int; ea_value : bool }

let describe_edit = function
  | Buf_elim { eb_reader; eb_pin } -> Printf.sprintf "buf-elim %s.%d" eb_reader eb_pin
  | Not_not { en_reader; en_pin } -> Printf.sprintf "not-not %s.%d" en_reader en_pin
  | Fuse_inv { ef_reader; ef_pin; ef_kind } ->
      Printf.sprintf "fuse %s.%d -> %s" ef_reader ef_pin (Cell.Kind.to_string ef_kind)
  | Chain_balance { ec_reader; ec_pin; ec_chain } ->
      Printf.sprintf "balance %s.%d chain(%d)" ec_reader ec_pin (List.length ec_chain)
  | Shannon { es_reader; es_pin; es_late } ->
      Printf.sprintf "shannon %s.%d late=%s" es_reader es_pin es_late
  | Hold_pad { eh_reader; eh_pin; eh_bufs } ->
      Printf.sprintf "hold-pad %s.%d +%dbuf" eh_reader eh_pin eh_bufs
  | Vote3 { ev_reader; ev_pin } -> Printf.sprintf "vote3 %s.%d" ev_reader ev_pin
  | Approx_tie { ea_reader; ea_pin; ea_value } ->
      Printf.sprintf "tie %s.%d=%d" ea_reader ea_pin (if ea_value then 1 else 0)

type verification = Verified_cec | Verified_bound of float

type committed = {
  cm_seq : int;
  cm_pair : string;
  cm_rung : rung;
  cm_edit : edit;
  cm_verification : verification;
  cm_slack_before_ps : float;
  cm_slack_after_ps : float;
  cm_cells_added : int;
}

type pair_status = Repaired | Improved | Unrepaired of string

type pair_outcome = {
  po_pair : string;
  po_check : Sta.check;
  po_slack_before_ps : float;
  po_slack_after_ps : float;
  po_edits : int;
  po_status : pair_status;
}

type config = {
  rp_max_rewrites : int;
  rp_max_area_frac : float;
  rp_max_pair_edits : int;
  rp_rungs : rung list;
  rp_approx_bound : float option;
  rp_approx_cycles : int;
  rp_seed : int;
  rp_max_conflicts : int;
  rp_max_cone : int;
}

let default_config =
  {
    rp_max_rewrites = 64;
    rp_max_area_frac = 0.25;
    rp_max_pair_edits = 8;
    rp_rungs = [ Strengthen; Dup_vote; Rebalance ];
    rp_approx_bound = None;
    rp_approx_cycles = 256;
    rp_seed = 7;
    rp_max_conflicts = 200_000;
    rp_max_cone = 48;
  }

type result = {
  rs_netlist : Netlist.t;
  rs_sp_of_net : Netlist.net -> float;
  rs_outcomes : pair_outcome list;
  rs_ledger : committed list;
  rs_rewrites : int;
  rs_rejected : int;
  rs_cec_failures : int;
  rs_cells_before : int;
  rs_cells_after : int;
  rs_area_before_um2 : float;
  rs_area_after_um2 : float;
  rs_resumed_pairs : int;
}

let tele_committed = Telemetry.Counter.make "repair.committed"
let tele_rejected = Telemetry.Counter.make "repair.rejected"
let tele_pairs = Telemetry.Counter.make "repair.pairs"
let tele_cec = Telemetry.Counter.make "repair.cec_proofs"
let tele_resumed = Telemetry.Counter.make "repair.resumed_pairs"

exception Reject of string

let rejectf fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let complement_kind = function
  | Cell.Kind.And2 -> Some Cell.Kind.Nand2
  | Cell.Kind.Nand2 -> Some Cell.Kind.And2
  | Cell.Kind.Or2 -> Some Cell.Kind.Nor2
  | Cell.Kind.Nor2 -> Some Cell.Kind.Or2
  | Cell.Kind.Xor2 -> Some Cell.Kind.Xnor2
  | Cell.Kind.Xnor2 -> Some Cell.Kind.Xor2
  | _ -> None

let comb_driver nl net =
  match Netlist.driver nl net with
  | Netlist.Driven_by_input _ -> None
  | Netlist.Driven_by_cell id ->
      let c = Netlist.cell nl id in
      if Cell.Kind.is_sequential c.Netlist.kind then None else Some c

(* ------------------------------------------------------------------ *)
(* Dead-cell sweep                                                     *)

let live_cells nl =
  let live = Array.make (max 1 (Netlist.num_cells nl)) false in
  let seen = Array.make (max 1 (Netlist.num_nets nl)) false in
  let rec need net =
    if not seen.(net) then begin
      seen.(net) <- true;
      match Netlist.driver nl net with
      | Netlist.Driven_by_input _ -> ()
      | Netlist.Driven_by_cell id ->
          if not live.(id) then begin
            live.(id) <- true;
            Array.iter need (Netlist.cell nl id).Netlist.inputs
          end
    end
  in
  List.iter (fun p -> Array.iter need p.Netlist.port_nets) (Netlist.outputs nl);
  live

let live_area celllib nl =
  let live = live_cells nl in
  let a = ref 0.0 in
  Array.iteri
    (fun id alive ->
      if alive then
        a :=
          !a
          +. (Cell.Library.physical celllib (Netlist.cell nl id).Netlist.kind)
               .Cell.area_um2)
    live;
  !a

(* Rebuild without dead cells.  Instance names, ports and the live logic
   are preserved verbatim; only ids and net indices are renumbered (which
   is why everything downstream is keyed by name).  Mirrors the rebuild
   in Netlist_opt but performs no folding. *)
let sweep_dead nl =
  let live = live_cells nl in
  if Array.for_all (fun x -> x) live then nl
  else begin
    let b = Netlist.Builder.create (Netlist.name nl) in
    let nmap = Hashtbl.create 997 in
    let map_net n =
      match Hashtbl.find_opt nmap n with
      | Some n' -> n'
      | None -> rejectf "sweep: unmapped net %d" n
    in
    List.iter
      (fun p ->
        let nets =
          Netlist.Builder.add_input b p.Netlist.port_name
            (Array.length p.Netlist.port_nets)
        in
        Array.iteri (fun i old -> Hashtbl.replace nmap old nets.(i)) p.Netlist.port_nets)
      (Netlist.inputs nl);
    (* live registers first, with their D pins rewired to the real
       drivers in pass 2.  Until then every sequential pin borrows a
       temporarily-valid net: an input-port net when one exists (so the
       rebuild allocates no leftover nets), else a single bootstrap net
       that stays dangling — legal, since it ends up undriven and
       unread. *)
    let bootstrap =
      ref
        (List.find_map
           (fun p ->
             if Array.length p.Netlist.port_nets > 0 then
               Hashtbl.find_opt nmap p.Netlist.port_nets.(0)
             else None)
           (Netlist.inputs nl))
    in
    let borrow_net () =
      match !bootstrap with
      | Some n -> n
      | None ->
          let n = Netlist.Builder.fresh_net b in
          bootstrap := Some n;
          n
    in
    let dff_map = ref [] in
    List.iter
      (fun id ->
        if live.(id) then begin
          let c = Netlist.cell nl id in
          let ph = Array.map (fun _ -> borrow_net ()) c.Netlist.inputs in
          let nid, q =
            Netlist.Builder.add_cell_with_id ~name:c.Netlist.name
              ~clock_domain:c.Netlist.clock_domain ~reset_value:c.Netlist.reset_value b
              c.Netlist.kind ph
          in
          Hashtbl.replace nmap c.Netlist.output q;
          dff_map := (nid, id) :: !dff_map
        end)
      (Netlist.dffs nl);
    Array.iter
      (fun id ->
        if live.(id) then begin
          let c = Netlist.cell nl id in
          let out =
            Netlist.Builder.add_cell ~name:c.Netlist.name b c.Netlist.kind
              (Array.map map_net c.Netlist.inputs)
          in
          Hashtbl.replace nmap c.Netlist.output out
        end)
      (Netlist.topo_order nl);
    List.iter
      (fun (nid, oid) ->
        let c = Netlist.cell nl oid in
        Array.iteri
          (fun pin old -> Netlist.Builder.rewire_input b ~cell_id:nid ~pin (map_net old))
          c.Netlist.inputs)
      !dff_map;
    List.iter
      (fun p ->
        Netlist.Builder.add_output b p.Netlist.port_name
          (Array.map map_net p.Netlist.port_nets))
      (Netlist.outputs nl);
    Netlist.Builder.finish b
  end

let lint_codes nl =
  List.sort_uniq compare
    (List.map (fun d -> Check.code_id d.Check.code) (Check.lint_netlist nl))

(* ------------------------------------------------------------------ *)
(* Name-keyed SP view                                                  *)

type sp_state = {
  sp_cell : (string, float) Hashtbl.t;  (* instance name -> output SP *)
  sp_port : (string, float) Hashtbl.t;  (* "port[bit]" -> SP *)
}

let sp_key p b = Printf.sprintf "%s[%d]" p b

let sp_init nl sp_of_net =
  let st = { sp_cell = Hashtbl.create 997; sp_port = Hashtbl.create 97 } in
  Array.iter
    (fun c -> Hashtbl.replace st.sp_cell c.Netlist.name (sp_of_net c.Netlist.output))
    (Netlist.cells nl);
  List.iter
    (fun p ->
      Array.iteri
        (fun b n -> Hashtbl.replace st.sp_port (sp_key p.Netlist.port_name b) (sp_of_net n))
        p.Netlist.port_nets)
    (Netlist.inputs nl);
  st

(* New cells without a provenance assignment default to SP 0: maximum BTI
   aging, so the re-scored slack of anything they drive is a lower bound. *)
let sp_view st nl net =
  match Netlist.driver nl net with
  | Netlist.Driven_by_input (p, b) -> (
      match Hashtbl.find_opt st.sp_port (sp_key p b) with Some s -> s | None -> 0.0)
  | Netlist.Driven_by_cell id -> (
      let c = Netlist.cell nl id in
      match c.Netlist.kind with
      | Cell.Kind.Tie0 -> 0.0
      | Cell.Kind.Tie1 -> 1.0
      | _ -> (
          match Hashtbl.find_opt st.sp_cell c.Netlist.name with
          | Some s -> s
          | None -> 0.0))

(* ------------------------------------------------------------------ *)
(* Edit application                                                    *)

(* Local constant-folding values used when copying a Shannon cofactor. *)
type cvalue = Cconst of bool | Cnet of Netlist.net

(* Fold a gate whose abstract inputs are [vals]; [None] means the gate
   must be materialized. *)
let fold_gate kind (vals : cvalue array) =
  let kind_eval a b = Cell.Kind.eval kind [| a; b |] in
  match kind with
  | Cell.Kind.Buf -> Some vals.(0)
  | Cell.Kind.Not -> (
      match vals.(0) with Cconst v -> Some (Cconst (not v)) | Cnet _ -> None)
  | Cell.Kind.Tie0 -> Some (Cconst false)
  | Cell.Kind.Tie1 -> Some (Cconst true)
  | Cell.Kind.And2 | Cell.Kind.Or2 | Cell.Kind.Xor2 | Cell.Kind.Nand2
  | Cell.Kind.Nor2 | Cell.Kind.Xnor2 -> (
      match (vals.(0), vals.(1)) with
      | Cconst a, Cconst b -> Some (Cconst (kind_eval a b))
      | (Cconst cv, (Cnet _ as other)) | ((Cnet _ as other), Cconst cv) -> (
          match (kind, cv) with
          | Cell.Kind.And2, false -> Some (Cconst false)
          | Cell.Kind.And2, true -> Some other
          | Cell.Kind.Or2, true -> Some (Cconst true)
          | Cell.Kind.Or2, false -> Some other
          | Cell.Kind.Xor2, false -> Some other
          | Cell.Kind.Xnor2, true -> Some other
          | Cell.Kind.Nand2, false -> Some (Cconst true)
          | Cell.Kind.Nor2, true -> Some (Cconst false)
          | _ -> None (* would need an inverter: keep the gate *))
      | Cnet a, Cnet b when a = b -> (
          match kind with
          | Cell.Kind.And2 | Cell.Kind.Or2 -> Some vals.(0)
          | Cell.Kind.Xor2 -> Some (Cconst false)
          | Cell.Kind.Xnor2 -> Some (Cconst true)
          | _ -> None)
      | _ -> None)
  | Cell.Kind.Mux2 -> (
      match vals.(2) with
      | Cconst false -> Some vals.(0)
      | Cconst true -> Some vals.(1)
      | Cnet _ -> (
          match (vals.(0), vals.(1)) with
          | Cnet a, Cnet b when a = b -> Some vals.(0)
          | Cconst a, Cconst b when a = b -> Some (Cconst a)
          | _ -> None))
  | Cell.Kind.Dff -> None

(* [apply_edit sp_of nl ~seq edit] re-derives the edit's context from
   [nl], applies it through a Builder and returns the candidate netlist
   plus SP provenance assignments (instance name, output SP) for the new
   cells.  Raises [Reject] when the context no longer matches. *)
let apply_edit sp_of nl ~seq edit =
  let nm suffix = Printf.sprintf "_rp%d_%s" seq suffix in
  let find name =
    match Netlist.find_cell nl name with
    | c -> c
    | exception Not_found -> rejectf "edit: no cell named %s" name
  in
  let pin_net (c : Netlist.cell) pin =
    if pin < 0 || pin >= Array.length c.Netlist.inputs then
      rejectf "edit: pin %d out of range on %s" pin c.Netlist.name;
    c.Netlist.inputs.(pin)
  in
  match edit with
  | Buf_elim { eb_reader; eb_pin } -> (
      let r = find eb_reader in
      match comb_driver nl (pin_net r eb_pin) with
      | Some buf when buf.Netlist.kind = Cell.Kind.Buf ->
          let b = Netlist.Builder.of_netlist nl in
          Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:eb_pin
            buf.Netlist.inputs.(0);
          (Netlist.Builder.finish b, [])
      | _ -> rejectf "buf-elim: %s.%d does not read a BUF" eb_reader eb_pin)
  | Not_not { en_reader; en_pin } -> (
      let r = find en_reader in
      match comb_driver nl (pin_net r en_pin) with
      | Some outer when outer.Netlist.kind = Cell.Kind.Not -> (
          match comb_driver nl outer.Netlist.inputs.(0) with
          | Some inner when inner.Netlist.kind = Cell.Kind.Not ->
              let b = Netlist.Builder.of_netlist nl in
              Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:en_pin
                inner.Netlist.inputs.(0);
              (Netlist.Builder.finish b, [])
          | _ -> rejectf "not-not: %s.%d does not read NOT(NOT(x))" en_reader en_pin)
      | _ -> rejectf "not-not: %s.%d does not read a NOT" en_reader en_pin)
  | Fuse_inv { ef_reader; ef_pin; ef_kind } -> (
      let r = find ef_reader in
      match comb_driver nl (pin_net r ef_pin) with
      | Some inv when inv.Netlist.kind = Cell.Kind.Not -> (
          match comb_driver nl inv.Netlist.inputs.(0) with
          | Some g when complement_kind g.Netlist.kind = Some ef_kind ->
              let b = Netlist.Builder.of_netlist nl in
              let out =
                Netlist.Builder.add_cell ~name:(nm "fuse") b ef_kind
                  (Array.copy g.Netlist.inputs)
              in
              Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:ef_pin out;
              (* the fused cell computes NOT(g): same function as the
                 inverter's output, so it inherits that SP exactly *)
              (Netlist.Builder.finish b, [ (nm "fuse", sp_of inv.Netlist.output) ])
          | _ -> rejectf "fuse: %s.%d is not NOT(g) with complement %s" ef_reader ef_pin
                   (Cell.Kind.to_string ef_kind))
      | _ -> rejectf "fuse: %s.%d does not read a NOT" ef_reader ef_pin)
  | Chain_balance { ec_reader; ec_pin; ec_chain } ->
      let r = find ec_reader in
      let chain = List.map find ec_chain in
      let kind =
        match chain with
        | [] | [ _ ] -> rejectf "balance: chain shorter than 2"
        | c :: _ -> c.Netlist.kind
      in
      (match kind with
      | Cell.Kind.And2 | Cell.Kind.Or2 | Cell.Kind.Xor2 -> ()
      | k -> rejectf "balance: %s is not associative" (Cell.Kind.to_string k));
      (* collect leaves: both inputs of the deepest cell, then the side
         input of every later cell (its other input must be its
         predecessor's output, consumed exactly once) *)
      let leaves = ref [] and prev = ref None in
      List.iter
        (fun c ->
          if c.Netlist.kind <> kind then
            rejectf "balance: %s breaks the %s chain" c.Netlist.name
              (Cell.Kind.to_string kind);
          (match !prev with
          | None ->
              leaves := [ c.Netlist.inputs.(1); c.Netlist.inputs.(0) ]
          | Some (p : Netlist.cell) ->
              let i0 = c.Netlist.inputs.(0) and i1 = c.Netlist.inputs.(1) in
              if i0 = p.Netlist.output && i1 = p.Netlist.output then
                rejectf "balance: %s reads its predecessor twice" c.Netlist.name
              else if i0 = p.Netlist.output then leaves := i1 :: !leaves
              else if i1 = p.Netlist.output then leaves := i0 :: !leaves
              else rejectf "balance: %s does not read its predecessor" c.Netlist.name);
          prev := Some c)
        chain;
      let root = match !prev with Some c -> c | None -> assert false in
      if pin_net r ec_pin <> root.Netlist.output then
        rejectf "balance: %s.%d does not read the chain root" ec_reader ec_pin;
      let b = Netlist.Builder.of_netlist nl in
      let assigns = ref [] and fresh = ref 0 in
      let new_cell nets =
        let name = nm (Printf.sprintf "bal%d" !fresh) in
        incr fresh;
        let out = Netlist.Builder.add_cell ~name b kind nets in
        (name, out)
      in
      (* pairwise reduction of the leaf list = a balanced tree; the
         multiset of leaves is unchanged and [kind] is associative and
         commutative, so the root computes the same function *)
      let rec reduce nets =
        match nets with
        | [ n ] -> n
        | _ ->
            let rec pair = function
              | a :: b :: rest ->
                  let _, out = new_cell [| a; b |] in
                  out :: pair rest
              | rest -> rest
            in
            reduce (pair nets)
      in
      let tree_root = reduce (List.rev !leaves) in
      Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:ec_pin tree_root;
      (* internal nodes are pinned at SP 0 (max aging, sound); the root
         recomputes the old root's function and inherits its SP *)
      let sp_root = sp_of root.Netlist.output in
      let cand = Netlist.Builder.finish b in
      let root_name =
        match Netlist.driver cand tree_root with
        | Netlist.Driven_by_cell id -> (Netlist.cell cand id).Netlist.name
        | Netlist.Driven_by_input _ -> rejectf "balance: degenerate chain"
      in
      assigns := [ (root_name, sp_root) ];
      (cand, !assigns)
  | Shannon { es_reader; es_pin; es_late } ->
      let r = find es_reader in
      let d_net = pin_net r es_pin in
      let late = find es_late in
      let late_net = late.Netlist.output in
      (* cone = combinational cells both reachable from the late net and
         able to reach the pin *)
      let ncells = Netlist.num_cells nl in
      let fwd = Array.make (max 1 ncells) false in
      let q = Queue.create () in
      let push_readers net =
        List.iter
          (fun rid ->
            let g = Netlist.cell nl rid in
            if (not (Cell.Kind.is_sequential g.Netlist.kind)) && not fwd.(rid) then begin
              fwd.(rid) <- true;
              Queue.add rid q
            end)
          (Netlist.readers nl net)
      in
      push_readers late_net;
      while not (Queue.is_empty q) do
        push_readers (Netlist.cell nl (Queue.pop q)).Netlist.output
      done;
      let bwd = Array.make (max 1 ncells) false in
      let qb = Queue.create () in
      let push_back net =
        match comb_driver nl net with
        | Some c when not bwd.(c.Netlist.id) ->
            bwd.(c.Netlist.id) <- true;
            Queue.add c.Netlist.id qb
        | _ -> ()
      in
      push_back d_net;
      while not (Queue.is_empty qb) do
        Array.iter push_back (Netlist.cell nl (Queue.pop qb)).Netlist.inputs
      done;
      let cone =
        Array.to_list (Netlist.topo_order nl)
        |> List.filter (fun id -> fwd.(id) && bwd.(id))
      in
      if cone = [] then rejectf "shannon: no cone between %s and %s.%d" es_late es_reader es_pin;
      (match Netlist.driver nl d_net with
      | Netlist.Driven_by_cell id when fwd.(id) && bwd.(id) -> ()
      | _ -> rejectf "shannon: pin driver outside the cone");
      let b = Netlist.Builder.of_netlist nl in
      let tie0 = ref None and tie1 = ref None in
      let tie v =
        let cache = if v then tie1 else tie0 in
        match !cache with
        | Some n -> n
        | None ->
            let n =
              Netlist.Builder.add_cell ~name:(nm (if v then "t1" else "t0")) b
                (if v then Cell.Kind.Tie1 else Cell.Kind.Tie0)
                [||]
            in
            cache := Some n;
            n
      in
      let assigns = ref [] in
      let copy_cofactor tag value =
        let map = Hashtbl.create 97 in
        let abstract net =
          if net = late_net then Cconst value
          else
            match Netlist.driver nl net with
            | Netlist.Driven_by_cell did when Hashtbl.mem map did -> Hashtbl.find map did
            | _ -> Cnet net
        in
        let k = ref 0 in
        List.iter
          (fun id ->
            let c = Netlist.cell nl id in
            let vals = Array.map abstract c.Netlist.inputs in
            let v =
              match fold_gate c.Netlist.kind vals with
              | Some v -> v
              | None ->
                  let nets =
                    Array.map (function Cconst bv -> tie bv | Cnet n -> n) vals
                  in
                  let name = nm (Printf.sprintf "%s%d" tag !k) in
                  incr k;
                  let out = Netlist.Builder.add_cell ~name b c.Netlist.kind nets in
                  assigns := (name, 0.0) :: !assigns;
                  Cnet out
            in
            Hashtbl.replace map id v)
          cone;
        match Netlist.driver nl d_net with
        | Netlist.Driven_by_cell id -> Hashtbl.find map id
        | Netlist.Driven_by_input _ -> assert false
      in
      let f0 = copy_cofactor "s0c" false in
      let f1 = copy_cofactor "s1c" true in
      let materialize = function Cconst bv -> tie bv | Cnet n -> n in
      let mux =
        Netlist.Builder.add_cell ~name:(nm "mux") b Cell.Kind.Mux2
          [| materialize f0; materialize f1; late_net |]
      in
      Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:es_pin mux;
      (* the mux recomputes the original pin function and inherits its SP *)
      assigns := (nm "mux", sp_of d_net) :: !assigns;
      (Netlist.Builder.finish b, !assigns)
  | Hold_pad { eh_reader; eh_pin; eh_bufs } ->
      if eh_bufs < 1 || eh_bufs > 64 then rejectf "hold-pad: %d buffers" eh_bufs;
      let r = find eh_reader in
      let src = pin_net r eh_pin in
      let sp_src = sp_of src in
      let b = Netlist.Builder.of_netlist nl in
      let cur = ref src and assigns = ref [] in
      for k = 0 to eh_bufs - 1 do
        let name = nm (Printf.sprintf "pad%d" k) in
        cur := Netlist.Builder.add_cell ~name b Cell.Kind.Buf [| !cur |];
        assigns := (name, sp_src) :: !assigns
      done;
      Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:eh_pin !cur;
      (Netlist.Builder.finish b, !assigns)
  | Vote3 { ev_reader; ev_pin } -> (
      let r = find ev_reader in
      match comb_driver nl (pin_net r ev_pin) with
      | Some g when Cell.Kind.arity g.Netlist.kind > 0 ->
          let b = Netlist.Builder.of_netlist nl in
          let a = g.Netlist.output in
          let ga =
            Netlist.Builder.add_cell ~name:(nm "va") b g.Netlist.kind
              (Array.copy g.Netlist.inputs)
          in
          let gb =
            Netlist.Builder.add_cell ~name:(nm "vb") b g.Netlist.kind
              (Array.copy g.Netlist.inputs)
          in
          (* maj(a,ga,gb) = (a & ga) | (gb & (a | ga)) *)
          let m_ab = Netlist.Builder.add_cell ~name:(nm "vand") b Cell.Kind.And2 [| a; ga |] in
          let o_ab = Netlist.Builder.add_cell ~name:(nm "vor") b Cell.Kind.Or2 [| a; ga |] in
          let m_c = Netlist.Builder.add_cell ~name:(nm "vsel") b Cell.Kind.And2 [| gb; o_ab |] in
          let v = Netlist.Builder.add_cell ~name:(nm "vmaj") b Cell.Kind.Or2 [| m_ab; m_c |] in
          Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:ev_pin v;
          (* every voter node computes the replicated function (the
             replicas agree), so all inherit the driver's SP exactly *)
          let s = sp_of a in
          ( Netlist.Builder.finish b,
            List.map (fun suffix -> (nm suffix, s)) [ "va"; "vb"; "vand"; "vor"; "vsel"; "vmaj" ] )
      | _ -> rejectf "vote3: %s.%d is not driven by a replicable cell" ev_reader ev_pin)
  | Approx_tie { ea_reader; ea_pin; ea_value } ->
      let r = find ea_reader in
      if Cell.Kind.is_sequential r.Netlist.kind then
        rejectf "approx: refusing to tie a register D pin (would be NL011)";
      ignore (pin_net r ea_pin);
      let b = Netlist.Builder.of_netlist nl in
      let t =
        Netlist.Builder.add_cell ~name:(nm "tie") b
          (if ea_value then Cell.Kind.Tie1 else Cell.Kind.Tie0)
          [||]
      in
      Netlist.Builder.rewire_input b ~cell_id:r.Netlist.id ~pin:ea_pin t;
      (Netlist.Builder.finish b, [])

(* ------------------------------------------------------------------ *)
(* Ledger JSON codecs (checkpoint format)                              *)

let kind_of_string s =
  match List.find_opt (fun k -> Cell.Kind.to_string k = s) Cell.Kind.all with
  | Some k -> k
  | None -> invalid_arg ("Repair: unknown cell kind " ^ s)

let edit_to_json edit =
  let base t reader pin rest =
    Json.Obj
      ([ ("edit", Json.String t); ("reader", Json.String reader); ("pin", Json.Int pin) ]
      @ rest)
  in
  match edit with
  | Buf_elim { eb_reader; eb_pin } -> base "buf-elim" eb_reader eb_pin []
  | Not_not { en_reader; en_pin } -> base "not-not" en_reader en_pin []
  | Fuse_inv { ef_reader; ef_pin; ef_kind } ->
      base "fuse" ef_reader ef_pin [ ("kind", Json.String (Cell.Kind.to_string ef_kind)) ]
  | Chain_balance { ec_reader; ec_pin; ec_chain } ->
      base "balance" ec_reader ec_pin
        [ ("chain", Json.List (List.map (fun s -> Json.String s) ec_chain)) ]
  | Shannon { es_reader; es_pin; es_late } ->
      base "shannon" es_reader es_pin [ ("late", Json.String es_late) ]
  | Hold_pad { eh_reader; eh_pin; eh_bufs } ->
      base "hold-pad" eh_reader eh_pin [ ("bufs", Json.Int eh_bufs) ]
  | Vote3 { ev_reader; ev_pin } -> base "vote3" ev_reader ev_pin []
  | Approx_tie { ea_reader; ea_pin; ea_value } ->
      base "tie" ea_reader ea_pin [ ("value", Json.Bool ea_value) ]

let jok = function Ok v -> v | Error e -> invalid_arg ("Repair: malformed ledger: " ^ e)
let jmem name j = jok (Json.member name j)
let jstr name j = jok (Json.to_str (jmem name j))
let jint name j = jok (Json.to_int (jmem name j))
let jfloat name j = jok (Json.to_float (jmem name j))
let jbool name j = jok (Json.to_bool (jmem name j))
let jlist name j = jok (Json.to_list (jmem name j))

let edit_of_json j =
  let reader = jstr "reader" j in
  let pin = jint "pin" j in
  match jstr "edit" j with
  | "buf-elim" -> Buf_elim { eb_reader = reader; eb_pin = pin }
  | "not-not" -> Not_not { en_reader = reader; en_pin = pin }
  | "fuse" ->
      Fuse_inv
        { ef_reader = reader; ef_pin = pin; ef_kind = kind_of_string (jstr "kind" j) }
  | "balance" ->
      Chain_balance
        { ec_reader = reader; ec_pin = pin;
          ec_chain = List.map (fun v -> jok (Json.to_str v)) (jlist "chain" j) }
  | "shannon" -> Shannon { es_reader = reader; es_pin = pin; es_late = jstr "late" j }
  | "hold-pad" -> Hold_pad { eh_reader = reader; eh_pin = pin; eh_bufs = jint "bufs" j }
  | "vote3" -> Vote3 { ev_reader = reader; ev_pin = pin }
  | "tie" -> Approx_tie { ea_reader = reader; ea_pin = pin; ea_value = jbool "value" j }
  | t -> invalid_arg ("Repair: unknown ledger edit " ^ t)

let committed_to_json c =
  Json.Obj
    [
      ("seq", Json.Int c.cm_seq);
      ("pair", Json.String c.cm_pair);
      ("rung", Json.String (rung_name c.cm_rung));
      ("edit", edit_to_json c.cm_edit);
      ( "verification",
        match c.cm_verification with
        | Verified_cec -> Json.String "cec"
        | Verified_bound r -> Json.Float r );
      ("slack_before_ps", Json.Float c.cm_slack_before_ps);
      ("slack_after_ps", Json.Float c.cm_slack_after_ps);
      ("cells_added", Json.Int c.cm_cells_added);
    ]

(* ------------------------------------------------------------------ *)
(* 64-lane random differential (approximate-edit bound)                *)

let lane_mask =
  if Sim64.lanes >= Sys.int_size then -1 else (1 lsl Sim64.lanes) - 1

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let rand_word rng =
  (Random.State.bits rng
  lor (Random.State.bits rng lsl 30)
  lor (Random.State.bits rng lsl 60))
  land lane_mask

(* Fraction of differing output bits between the two netlists under
   [cycles] cycles of shared uniform-random stimulus, Sim64.lanes lanes
   per cycle.  Deterministic for a given seed. *)
let error_rate ~seed ~cycles ref_nl cand_nl =
  let sa = Sim64.create ref_nl and sb = Sim64.create cand_nl in
  Sim64.reset sa;
  Sim64.reset sb;
  let rng = Random.State.make [| 0x5eed; seed |] in
  let ins = Netlist.inputs ref_nl in
  let outs = List.map (fun p -> p.Netlist.port_name) (Netlist.outputs ref_nl) in
  let mism = ref 0 and total = ref 0 in
  for _ = 1 to cycles do
    List.iter
      (fun p ->
        let words = Array.map (fun _ -> rand_word rng) p.Netlist.port_nets in
        Sim64.set_input_words sa p.Netlist.port_name words;
        Sim64.set_input_words sb p.Netlist.port_name words)
      ins;
    Sim64.step ~sample:false sa;
    Sim64.step ~sample:false sb;
    List.iter
      (fun name ->
        let wa = Sim64.output_words sa name and wb = Sim64.output_words sb name in
        Array.iteri
          (fun i w ->
            mism := !mism + popcount ((w lxor wb.(i)) land lane_mask);
            total := !total + Sim64.lanes)
          wa)
      outs
  done;
  float_of_int !mism /. float_of_int (max 1 !total)

(* ------------------------------------------------------------------ *)
(* Run state                                                           *)

type state = {
  cfg : config;
  sp : sp_state;
  celllib : Cell.Library.t;
  derate : float;
  clock_tree : Clock_tree.t;
  years : float;
  clock_period_ps : float;
  aglib : Aging.Timing_library.t;
  original : Netlist.t;
  codes0 : string list;
  area0 : float;
  mutable nl : Netlist.t;
  mutable seq : int;
  mutable rewrites : int;
  mutable rejected : int;
  mutable cec_failures : int;
  mutable ledger : committed list;  (* newest first *)
  log : string -> unit;
}

let timing_of st nl =
  Sta.aged_timing ~derate:st.derate ~clock_tree:st.clock_tree
    ~sp_of_net:(sp_view st.sp nl) ~years:st.years st.aglib

let pair_slack st nl (s, e, c) =
  match
    Sta.pair_path ~timing:(timing_of st nl) ~clock_period_ps:st.clock_period_ps nl s e c
  with
  | Some p -> p.Sta.slack_ps
  | None -> infinity

let violating_map st nl =
  List.map
    (fun (s, e, c, slack) -> (Spbound.pair_key nl s e c, slack))
    (Sta.violating_pairs ~timing:(timing_of st nl) ~clock_period_ps:st.clock_period_ps nl)

(* ------------------------------------------------------------------ *)
(* Candidate search along the extremal path                            *)

let pin_of (c : Netlist.cell) net =
  let rec go k =
    if k >= Array.length c.Netlist.inputs then None
    else if c.Netlist.inputs.(k) = net then Some k
    else go (k + 1)
  in
  go 0

let setup_candidates st nl (path : Sta.path) =
  let cells = Array.of_list (List.map (Netlist.cell nl) path.Sta.through) in
  let n = Array.length cells in
  let (Sta.At_dff cap_id) = path.Sta.finish in
  let capture = Netlist.cell nl cap_id in
  let consumer i = if i = n - 1 then capture else cells.(i + 1) in
  (* strengthen: scan from the capture side inward *)
  let strengthen = ref [] in
  for i = 0 to n - 1 do
    let c = cells.(i) in
    let cons = consumer i in
    match pin_of cons c.Netlist.output with
    | None -> ()
    | Some pin -> (
        match c.Netlist.kind with
        | Cell.Kind.Buf ->
            strengthen :=
              (Strengthen, Buf_elim { eb_reader = cons.Netlist.name; eb_pin = pin })
              :: !strengthen
        | Cell.Kind.Not -> (
            match comb_driver nl c.Netlist.inputs.(0) with
            | Some g when g.Netlist.kind = Cell.Kind.Not ->
                strengthen :=
                  (Strengthen, Not_not { en_reader = cons.Netlist.name; en_pin = pin })
                  :: !strengthen
            | Some g -> (
                match complement_kind g.Netlist.kind with
                | Some fused ->
                    strengthen :=
                      ( Strengthen,
                        Fuse_inv
                          { ef_reader = cons.Netlist.name; ef_pin = pin; ef_kind = fused } )
                      :: !strengthen
                | None -> ())
            | None -> ())
        | _ -> ())
  done;
  (* associative chain runs of length >= 3 along the path *)
  let chains = ref [] in
  let i = ref 0 in
  while !i < n do
    let k = cells.(!i).Netlist.kind in
    let assoc =
      match k with Cell.Kind.And2 | Cell.Kind.Or2 | Cell.Kind.Xor2 -> true | _ -> false
    in
    if assoc then begin
      let j = ref !i in
      let extends t =
        t + 1 < n
        && cells.(t + 1).Netlist.kind = k
        &&
        let nx = cells.(t + 1) and p = cells.(t) in
        let i0 = nx.Netlist.inputs.(0) = p.Netlist.output
        and i1 = nx.Netlist.inputs.(1) = p.Netlist.output in
        (i0 || i1) && not (i0 && i1)
      in
      while extends !j do
        incr j
      done;
      let len = !j - !i + 1 in
      (if len >= 3 then
         let cons = consumer !j in
         match pin_of cons cells.(!j).Netlist.output with
         | Some pin ->
             let chain =
               Array.to_list (Array.sub cells !i len)
               |> List.map (fun (c : Netlist.cell) -> c.Netlist.name)
             in
             chains :=
               ( Rebalance,
                 Chain_balance { ec_reader = cons.Netlist.name; ec_pin = pin; ec_chain = chain } )
               :: !chains
         | None -> ());
      i := !j + 1
    end
    else incr i
  done;
  (* Shannon restructure against the late signal m cells up the path *)
  let shannons = ref [] in
  for m = min 4 n downto 2 do
    let late_name =
      if m < n then Some cells.(n - m - 1).Netlist.name
      else
        match path.Sta.start with
        | Sta.From_dff id -> Some (Netlist.cell nl id).Netlist.name
        | Sta.From_input _ -> None
    in
    match late_name with
    | Some late ->
        shannons :=
          ( Rebalance,
            Shannon { es_reader = capture.Netlist.name; es_pin = 0; es_late = late } )
          :: !shannons
    | None -> ()
  done;
  (* approximate constant tie on the pin the worst path enters through *)
  let approx =
    match st.cfg.rp_approx_bound with
    | None -> []
    | Some _ when n = 0 -> []
    | Some _ -> (
        let last = cells.(n - 1) in
        let prev_net =
          if n >= 2 then Some cells.(n - 2).Netlist.output
          else
            match path.Sta.start with
            | Sta.From_dff id -> Some (Netlist.cell nl id).Netlist.output
            | Sta.From_input _ -> None
        in
        match prev_net with
        | None -> []
        | Some pnet -> (
            match pin_of last pnet with
            | None -> []
            | Some pin ->
                let v = sp_view st.sp nl pnet >= 0.5 in
                [ ( Approx,
                    Approx_tie { ea_reader = last.Netlist.name; ea_pin = pin; ea_value = v } ) ]))
  in
  List.concat_map
    (fun rung ->
      match rung with
      | Strengthen -> List.filter (fun (r, _) -> r = Strengthen) !strengthen
      | Rebalance -> List.rev !chains @ !shannons
      | Dup_vote -> []
      | Approx -> approx)
    st.cfg.rp_rungs

let hold_candidates st nl (path : Sta.path) =
  let (Sta.At_dff cap_id) = path.Sta.finish in
  let capture = Netlist.cell nl cap_id in
  let deficit = -.path.Sta.slack_ps in
  let buf_min = (Cell.Library.timing st.celllib Cell.Kind.Buf).Cell.tpd_min_ps in
  let bufs =
    max 1 (int_of_float (Float.ceil (deficit /. Float.max buf_min 1.0)))
  in
  let pad =
    (Strengthen, Hold_pad { eh_reader = capture.Netlist.name; eh_pin = 0; eh_bufs = min bufs 32 })
  in
  let vote =
    match comb_driver nl capture.Netlist.inputs.(0) with
    | Some g when Cell.Kind.arity g.Netlist.kind > 0 ->
        [ (Dup_vote, Vote3 { ev_reader = capture.Netlist.name; ev_pin = 0 }) ]
    | _ -> []
  in
  List.concat_map
    (fun rung ->
      match rung with
      | Strengthen -> [ pad ]
      | Dup_vote -> vote
      | Rebalance | Approx -> [])
    st.cfg.rp_rungs

let candidates st nl (path : Sta.path) =
  match path.Sta.check with
  | Sta.Setup -> setup_candidates st nl path
  | Sta.Hold -> hold_candidates st nl path

(* ------------------------------------------------------------------ *)
(* The verification gate                                               *)

type accepted = {
  ac_nl : Netlist.t;
  ac_verification : verification;
  ac_slack_after : float;
  ac_cells_added : int;
}

let evaluate st pair slack_before viol_before edit =
  try
    let cand, assigns = apply_edit (sp_view st.sp st.nl) st.nl ~seq:st.seq edit in
    List.iter (fun (n, s) -> Hashtbl.replace st.sp.sp_cell n s) assigns;
    let cleanup () = List.iter (fun (n, _) -> Hashtbl.remove st.sp.sp_cell n) assigns in
    (try
       (* gate 1: the pair's aged slack must strictly improve *)
       let slack' = pair_slack st cand pair in
       if not (slack' > slack_before +. 1e-6) then
         rejectf "no slack improvement (%.1f -> %.1f ps)" slack_before slack';
       (* gate 2: no collateral damage — the violating set must not gain
          members and no member may get worse *)
       List.iter
         (fun (k, s') ->
           match List.assoc_opt k viol_before with
           | None -> rejectf "creates new violating pair %s" k
           | Some s -> if s' < s -. 1e-6 then rejectf "worsens pair %s" k)
         (violating_map st cand);
       (* gate 3: area budget over live cells *)
       let area' = live_area st.celllib cand in
       if area' > st.area0 *. (1.0 +. st.cfg.rp_max_area_frac) then
         rejectf "area budget exceeded (%.1f -> %.1f um2)" st.area0 area';
       (* gate 4: the swept candidate must not introduce a lint code *)
       let swept = sweep_dead cand in
       let diags = Check.lint_netlist swept in
       (match Check.errors diags with
       | [] -> ()
       | d :: _ -> rejectf "lint error %s" (Check.code_id d.Check.code));
       List.iter
         (fun d ->
           let c = Check.code_id d.Check.code in
           if not (List.mem c st.codes0) then rejectf "introduces lint %s" c)
         diags;
       (* gate 5: the proof *)
       let verification =
         match edit with
         | Approx_tie _ ->
             let bound =
               match st.cfg.rp_approx_bound with
               | Some b -> b
               | None -> rejectf "approximation disabled"
             in
             let rate =
               Telemetry.with_span ~cat:"repair" "repair.differential" (fun () ->
                   error_rate ~seed:st.cfg.rp_seed ~cycles:st.cfg.rp_approx_cycles
                     st.original cand)
             in
             if rate > bound then rejectf "error rate %.6f above bound %.6f" rate bound;
             Verified_bound rate
         | _ -> (
             Telemetry.Counter.incr tele_cec;
             match
               Telemetry.with_span ~cat:"repair" "repair.cec" (fun () ->
                   Cec.check ~max_conflicts:st.cfg.rp_max_conflicts st.nl cand)
             with
             | Cec.Equivalent -> Verified_cec
             | Cec.Inequivalent cex ->
                 st.cec_failures <- st.cec_failures + 1;
                 rejectf "CEC refuted the rewrite at %s" cex.Cec.cex_site
             | Cec.Unknown -> rejectf "CEC inconclusive (conflict budget)")
       in
       Ok
         {
           ac_nl = cand;
           ac_verification = verification;
           ac_slack_after = slack';
           ac_cells_added = Netlist.num_cells cand - Netlist.num_cells st.nl;
         }
     with e ->
       cleanup ();
       raise e)
  with
  | Reject msg -> Error msg
  | Invalid_argument msg -> Error ("builder rejected: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Greedy driver                                                       *)

let commit st pkey rung edit acc slack_before =
  st.nl <- acc.ac_nl;
  st.ledger <-
    {
      cm_seq = st.seq;
      cm_pair = pkey;
      cm_rung = rung;
      cm_edit = edit;
      cm_verification = acc.ac_verification;
      cm_slack_before_ps = slack_before;
      cm_slack_after_ps = acc.ac_slack_after;
      cm_cells_added = acc.ac_cells_added;
    }
    :: st.ledger;
  st.seq <- st.seq + 1;
  st.rewrites <- st.rewrites + 1;
  Telemetry.Counter.incr tele_committed;
  st.log
    (Printf.sprintf "  commit [%s] %s  %.1f -> %.1f ps" (rung_name rung)
       (describe_edit edit) slack_before acc.ac_slack_after)

(* Repair one pair in place.  Returns the reason the pair could not be
   fully repaired, or [None] if its slack is non-negative on exit. *)
let repair_one st pair pkey =
  let rec go n last_reason =
    if st.rewrites >= st.cfg.rp_max_rewrites then Some "rewrite budget exhausted"
    else if n >= st.cfg.rp_max_pair_edits then Some "per-pair edit cap reached"
    else
      let slack = pair_slack st st.nl pair in
      if slack >= 0.0 then None
      else
        let s, e, c = pair in
        match
          Sta.pair_path ~timing:(timing_of st st.nl)
            ~clock_period_ps:st.clock_period_ps st.nl s e c
        with
        | None -> None
        | Some path ->
            let viol_before = violating_map st st.nl in
            let cands = candidates st st.nl path in
            let rec try_cands reason = function
              | [] -> `Stuck reason
              | (rung, edit) :: rest -> (
                  match evaluate st pair slack viol_before edit with
                  | Ok acc -> `Committed (rung, edit, acc)
                  | Error msg ->
                      st.rejected <- st.rejected + 1;
                      Telemetry.Counter.incr tele_rejected;
                      st.log (Printf.sprintf "  reject %s: %s" (describe_edit edit) msg);
                      try_cands (Some msg) rest)
            in
            (match try_cands last_reason cands with
            | `Stuck r ->
                Some (Option.value r ~default:"no applicable rewrite on the critical path")
            | `Committed (rung, edit, acc) ->
                commit st pkey rung edit acc slack;
                go (n + 1) None)
  in
  go 0 None

let replay_pair st pkey edits_json =
  List.iter
    (fun cj ->
      let edit = edit_of_json (jmem "edit" cj) in
      let rung = rung_of_name (jstr "rung" cj) in
      let verification =
        match jmem "verification" cj with
        | Json.String "cec" -> Verified_cec
        | v -> Verified_bound (jok (Json.to_float v))
      in
      let cand, assigns = apply_edit (sp_view st.sp st.nl) st.nl ~seq:st.seq edit in
      List.iter (fun (n, s) -> Hashtbl.replace st.sp.sp_cell n s) assigns;
      st.nl <- cand;
      st.ledger <-
        {
          cm_seq = st.seq;
          cm_pair = pkey;
          cm_rung = rung;
          cm_edit = edit;
          cm_verification = verification;
          cm_slack_before_ps = jfloat "slack_before_ps" cj;
          cm_slack_after_ps = jfloat "slack_after_ps" cj;
          cm_cells_added = jint "cells_added" cj;
        }
        :: st.ledger;
      st.seq <- st.seq + 1;
      st.rewrites <- st.rewrites + 1)
    edits_json

let digest cfg nl ~clock_period_ps ~years =
  Resilience.digest_of_strings
    [
      "vega-repair/1";
      Resilience.netlist_digest nl;
      Printf.sprintf "%.17g" clock_period_ps;
      Printf.sprintf "%.17g" years;
      string_of_int cfg.rp_max_rewrites;
      Printf.sprintf "%.17g" cfg.rp_max_area_frac;
      string_of_int cfg.rp_max_pair_edits;
      String.concat "," (List.map rung_name cfg.rp_rungs);
      (match cfg.rp_approx_bound with
      | None -> "approx-off"
      | Some b -> Printf.sprintf "%.17g" b);
      string_of_int cfg.rp_approx_cycles;
      string_of_int cfg.rp_seed;
      string_of_int cfg.rp_max_conflicts;
      string_of_int cfg.rp_max_cone;
    ]

let run ?(config = default_config) ?checkpoint ?(log = fun _ -> ()) ~netlist
    ~sp_of_net ~clock_period_ps ~years ~derate ~clock_tree ~aglib ~pairs () =
  Telemetry.with_span ~cat:"repair" "repair.run" @@ fun () ->
  (match Check.errors (Check.lint_netlist netlist) with
  | [] -> ()
  | d :: _ ->
      invalid_arg
        (Printf.sprintf "Repair.run: netlist fails lint %s at %s"
           (Check.code_id d.Check.code) d.Check.loc));
  let celllib = Aging.Timing_library.cell_library aglib in
  let st =
    {
      cfg = config;
      sp = sp_init netlist sp_of_net;
      celllib;
      derate;
      clock_tree;
      years;
      clock_period_ps;
      aglib;
      original = netlist;
      codes0 = lint_codes netlist;
      area0 = live_area celllib netlist;
      nl = netlist;
      seq = 0;
      rewrites = 0;
      rejected = 0;
      cec_failures = 0;
      ledger = [];
      log;
    }
  in
  let resumed = ref 0 in
  let worked =
    List.mapi
      (fun i (s, e, c, slack0) ->
        Telemetry.Counter.incr tele_pairs;
        let pkey = Spbound.pair_key netlist s e c in
        let ck_key = Printf.sprintf "pair-%04d" i in
        let cached =
          match checkpoint with
          | Some ck -> Resilience.Checkpoint.load ck ck_key
          | None -> None
        in
        let before = st.rewrites in
        let reason =
          match cached with
          | Some j ->
              incr resumed;
              Telemetry.Counter.incr tele_resumed;
              let edits = jlist "edits" j in
              log (Printf.sprintf "pair %s: replaying %d edit(s) from checkpoint" pkey
                     (List.length edits));
              replay_pair st pkey edits;
              (* restore the exploration counters too, so a resumed run's
                 report is byte-identical to an uninterrupted one *)
              st.rejected <- st.rejected + jint "rejected" j;
              jstr "reason" j
          | None ->
              log (Printf.sprintf "pair %s: slack %.1f ps" pkey slack0);
              let rejected_before = st.rejected in
              let stuck =
                Telemetry.with_span ~cat:"repair" "repair.pair" (fun () ->
                    repair_one st (s, e, c) pkey)
              in
              let reason = Option.value stuck ~default:"" in
              (match checkpoint with
              | Some ck ->
                  let mine =
                    List.rev
                      (List.filteri (fun k _ -> k < st.rewrites - before) st.ledger)
                  in
                  Resilience.Checkpoint.store ck ck_key
                    (Json.Obj
                       [
                         ("pair", Json.String pkey);
                         ("edits", Json.List (List.map committed_to_json mine));
                         ("rejected", Json.Int (st.rejected - rejected_before));
                         ("reason", Json.String reason);
                       ])
              | None -> ());
              reason
        in
        ((s, e, c), pkey, slack0, st.rewrites - before, reason))
      pairs
  in
  (* statuses are judged against the final netlist so later pairs' edits
     (which the gate guarantees never hurt) are reflected everywhere *)
  let outcomes =
    List.map
      (fun (pair, pkey, slack0, edits, reason) ->
        let _, _, c = pair in
        let slack_after = pair_slack st st.nl pair in
        let status =
          if slack_after >= 0.0 then Repaired
          else if slack_after > slack0 +. 1e-6 then Improved
          else Unrepaired (if reason = "" then "no applicable rewrite" else reason)
        in
        {
          po_pair = pkey;
          po_check = c;
          po_slack_before_ps = slack0;
          po_slack_after_ps = slack_after;
          po_edits = edits;
          po_status = status;
        })
      worked
  in
  let final = sweep_dead st.nl in
  {
    rs_netlist = final;
    rs_sp_of_net = sp_view st.sp final;
    rs_outcomes = outcomes;
    rs_ledger = List.rev st.ledger;
    rs_rewrites = st.rewrites;
    rs_rejected = st.rejected;
    rs_cec_failures = st.cec_failures;
    rs_cells_before = Netlist.num_cells netlist;
    rs_cells_after = Netlist.num_cells final;
    rs_area_before_um2 = st.area0;
    rs_area_after_um2 = live_area celllib final;
    rs_resumed_pairs = !resumed;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let check_name = function Sta.Setup -> "setup" | Sta.Hold -> "hold"

let render r =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "Netlist repair: %s\n" (Netlist.name r.rs_netlist);
  let count p = List.length (List.filter p r.rs_outcomes) in
  let n_rep = count (fun o -> o.po_status = Repaired) in
  let n_imp = count (fun o -> o.po_status = Improved) in
  let n_unr = List.length r.rs_outcomes - n_rep - n_imp in
  pf "  pairs %d: repaired %d, improved %d, unrepaired %d\n"
    (List.length r.rs_outcomes) n_rep n_imp n_unr;
  let per_rung rg = List.length (List.filter (fun c -> c.cm_rung = rg) r.rs_ledger) in
  pf "  rewrites %d (strengthen %d, dup-vote %d, rebalance %d, approx %d), rejected %d, cec failures %d\n"
    r.rs_rewrites (per_rung Strengthen) (per_rung Dup_vote) (per_rung Rebalance)
    (per_rung Approx) r.rs_rejected r.rs_cec_failures;
  let growth =
    if r.rs_area_before_um2 > 0.0 then
      100.0 *. (r.rs_area_after_um2 -. r.rs_area_before_um2) /. r.rs_area_before_um2
    else 0.0
  in
  pf "  cells %d -> %d, live area %.2f -> %.2f um2 (%+.1f%%)\n" r.rs_cells_before
    r.rs_cells_after r.rs_area_before_um2 r.rs_area_after_um2 growth;
  let recovered =
    List.fold_left
      (fun acc o ->
        if o.po_slack_before_ps < 0.0 then
          acc +. (Float.min o.po_slack_after_ps 0.0 -. o.po_slack_before_ps)
        else acc)
      0.0 r.rs_outcomes
  in
  pf "  recovered slack %.1f ps, resumed pairs %d\n" recovered r.rs_resumed_pairs;
  pf "\n  %-40s %6s %10s %10s %6s  %s\n" "pair" "check" "before" "after" "edits" "status";
  List.iter
    (fun o ->
      let status =
        match o.po_status with
        | Repaired -> "repaired"
        | Improved -> "improved"
        | Unrepaired why -> Printf.sprintf "unrepaired (%s)" why
      in
      let key =
        match String.index_opt o.po_pair ':' with
        | Some i -> String.sub o.po_pair 0 i
        | None -> o.po_pair
      in
      pf "  %-40s %6s %10.1f %10.1f %6d  %s\n" key (check_name o.po_check)
        o.po_slack_before_ps o.po_slack_after_ps o.po_edits status)
    r.rs_outcomes;
  pf "\n  ledger:\n";
  if r.rs_ledger = [] then pf "    (none)\n"
  else
    List.iter
      (fun c ->
        let proof =
          match c.cm_verification with
          | Verified_cec -> "cec"
          | Verified_bound rate -> Printf.sprintf "err %.6f" rate
        in
        pf "    %3d. [%s] %s  %s  %.1f -> %.1f ps (+%d cells, %s)\n" c.cm_seq
          (rung_name c.cm_rung) (describe_edit c.cm_edit) c.cm_pair
          c.cm_slack_before_ps c.cm_slack_after_ps c.cm_cells_added proof)
      r.rs_ledger;
  Buffer.contents b
