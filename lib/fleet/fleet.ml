(* Work-stealing domain pool with retry, timeout re-dispatch, quarantine
   and sharded crash-safe checkpoints.

   Shared state is deliberately coarse: one mutex guards the slot table
   (items are heavyweight — an STA scan or a lift run — so slot
   transitions are noise), one mutex per deque, and an atomic counter of
   outstanding items for termination.  Determinism never depends on the
   locks: the value of an item is a pure function of (derived seed,
   payload), computed identically no matter which worker runs it, how
   often it is retried, or whether two workers race on a straggler (the
   first completed execution wins; any later copy computes the same
   value and is dropped). *)

type config = {
  fl_domains : int;
  fl_max_attempts : int;
  fl_backoff_s : float;
  fl_timeout_s : float option;
}

let default_config =
  { fl_domains = 1; fl_max_attempts = 3; fl_backoff_s = 0.05; fl_timeout_s = None }

type 'a task = { tk_key : string; tk_payload : 'a }

type outcome = Completed | Retried of int | Timed_out of int | Quarantined of string

let outcome_name = function
  | Completed -> "completed"
  | Retried _ -> "retried"
  | Timed_out _ -> "timed-out"
  | Quarantined _ -> "quarantined"

type 'r item_result = {
  fr_key : string;
  fr_seed : int;
  fr_outcome : outcome;
  fr_value : 'r option;
  fr_attempts : int;
  fr_from_checkpoint : bool;
}

type stats = {
  st_domains : int;
  st_items : int;
  st_completed : int;
  st_retried : int;
  st_timed_out : int;
  st_quarantined : int;
  st_checkpoint_hits : int;
  st_steals : int;
  st_redispatches : int;
  st_retry_sleeps : int;
}

(* digest-based so the mapping is stable across OCaml versions and word
   sizes — [Hashtbl.hash] is neither *)
let derive_seed base key =
  let d = Digest.string (Printf.sprintf "%d\x00%s" base key) in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v land max_int

(* ---- per-worker deques ---- *)

module Deque = struct
  type t = { lock : Mutex.t; mutable items : int array; mutable front : int; mutable len : int }

  let create () = { lock = Mutex.create (); items = Array.make 8 0; front = 0; len = 0 }

  let push_back d x =
    Mutex.protect d.lock (fun () ->
        let cap = Array.length d.items in
        if d.len = cap then begin
          let bigger = Array.make (2 * cap) 0 in
          for i = 0 to d.len - 1 do
            bigger.(i) <- d.items.((d.front + i) mod cap)
          done;
          d.items <- bigger;
          d.front <- 0
        end;
        d.items.((d.front + d.len) mod Array.length d.items) <- x;
        d.len <- d.len + 1)

  (* owner end *)
  let pop_front d =
    Mutex.protect d.lock (fun () ->
        if d.len = 0 then None
        else begin
          let x = d.items.(d.front) in
          d.front <- (d.front + 1) mod Array.length d.items;
          d.len <- d.len - 1;
          Some x
        end)

  (* thief end *)
  let steal_back d =
    Mutex.protect d.lock (fun () ->
        if d.len = 0 then None
        else begin
          d.len <- d.len - 1;
          Some d.items.((d.front + d.len) mod Array.length d.items)
        end)
end

(* ---- checkpoint entry codec ---- *)

let entry_to_json encode = function
  | Ok v -> Json.Obj [ ("ok", encode v) ]
  | Error e -> Json.Obj [ ("quarantined", Json.String e) ]

let entry_of_json decode j =
  match Json.member "ok" j with
  | Ok data -> ( match decode data with Ok v -> Some (Ok v) | Error _ -> None)
  | Error _ -> (
    match Result.bind (Json.member "quarantined" j) Json.to_str with
    | Ok e -> Some (Error e)
    | Error _ -> None)

(* ---- slots ---- *)

type slot_state = Pending | Running of float | Done

type 'r slot = {
  sl_key : string;
  sl_seed : int;
  mutable sl_state : slot_state;
  mutable sl_result : ('r, string) result option;
  mutable sl_attempts : int;
  mutable sl_redispatches : int;
  mutable sl_from_ck : bool;
}

(* wall-clock health tallies, per worker; merged with the associative
   Counter.merge at the end of the run *)
type wstats = {
  mutable w_executed : int;
  mutable w_steals : int;
  mutable w_redispatches : int;
  mutable w_retry_sleeps : int;
}

let wstats_tally ws =
  [
    { Telemetry.Counter.c_name = "fleet.executed"; c_value = ws.w_executed };
    { Telemetry.Counter.c_name = "fleet.redispatches"; c_value = ws.w_redispatches };
    { Telemetry.Counter.c_name = "fleet.retry_sleeps"; c_value = ws.w_retry_sleeps };
    { Telemetry.Counter.c_name = "fleet.steals"; c_value = ws.w_steals };
  ]

let tally_to_counters st =
  [
    { Telemetry.Counter.c_name = "fleet.completed"; c_value = st.st_completed };
    { Telemetry.Counter.c_name = "fleet.items"; c_value = st.st_items };
    { Telemetry.Counter.c_name = "fleet.quarantined"; c_value = st.st_quarantined };
    { Telemetry.Counter.c_name = "fleet.redispatches"; c_value = st.st_redispatches };
    { Telemetry.Counter.c_name = "fleet.retried"; c_value = st.st_retried };
    { Telemetry.Counter.c_name = "fleet.retry_sleeps"; c_value = st.st_retry_sleeps };
    { Telemetry.Counter.c_name = "fleet.steals"; c_value = st.st_steals };
    { Telemetry.Counter.c_name = "fleet.timed_out"; c_value = st.st_timed_out };
  ]

(* deterministic engine counters (scheduling-independent by construction:
   completions and quarantines do not depend on the worker interleaving) *)
let tele_items = Telemetry.Counter.make "fleet.items_done"
let tele_quarantined = Telemetry.Counter.make "fleet.items_quarantined"

let run ?(config = default_config) ?checkpoint ?(log = fun _ -> ()) ~seed ~f ~encode ~decode
    tasks_list =
  Telemetry.with_span ~cat:"fleet" "fleet.run" @@ fun () ->
  let tasks = Array.of_list tasks_list in
  let n_items = Array.length tasks in
  let seen = Hashtbl.create (2 * n_items) in
  Array.iter
    (fun t ->
      if Hashtbl.mem seen t.tk_key then
        invalid_arg (Printf.sprintf "Fleet.run: duplicate task key %S" t.tk_key);
      Hashtbl.replace seen t.tk_key ())
    tasks;
  let cfg =
    {
      config with
      fl_domains = max 1 (min config.fl_domains (max 1 n_items));
      fl_max_attempts = max 1 config.fl_max_attempts;
    }
  in
  let slots =
    Array.map
      (fun t ->
        {
          sl_key = t.tk_key;
          sl_seed = derive_seed seed t.tk_key;
          sl_state = Pending;
          sl_result = None;
          sl_attempts = 0;
          sl_redispatches = 0;
          sl_from_ck = false;
        })
      tasks
  in
  let log_lock = Mutex.create () in
  let log m = Mutex.protect log_lock (fun () -> log m) in
  (* checkpoint preload: restored items (quarantine dispositions
     included) never re-execute *)
  let ck_hits = ref 0 in
  (match checkpoint with
  | None -> ()
  | Some sh ->
    Array.iter
      (fun s ->
        match Resilience.Checkpoint.sharded_load sh s.sl_key with
        | None -> ()
        | Some j -> (
          match entry_of_json decode j with
          | Some result ->
            s.sl_state <- Done;
            s.sl_result <- Some result;
            s.sl_from_ck <- true;
            incr ck_hits
          | None -> () (* undecodable: recompute *)))
      slots);
  let shard_for wi =
    match checkpoint with
    | None -> None
    | Some sh -> Some (Resilience.Checkpoint.shard sh (wi mod Resilience.Checkpoint.shard_count sh))
  in
  let lock = Mutex.create () in
  let remaining =
    Atomic.make
      (Array.fold_left (fun n s -> if s.sl_state = Done then n else n + 1) 0 slots)
  in
  let n_domains = cfg.fl_domains in
  let deques = Array.init n_domains (fun _ -> Deque.create ()) in
  Array.iteri
    (fun i s -> if s.sl_state <> Done then Deque.push_back deques.(i mod n_domains) i)
    slots;
  let is_done idx = Mutex.protect lock (fun () -> slots.(idx).sl_state = Done) in
  let mark_running idx =
    Mutex.protect lock (fun () ->
        match slots.(idx).sl_state with
        | Done -> false
        | Pending | Running _ ->
          slots.(idx).sl_state <- Running (Unix.gettimeofday ());
          true)
  in
  let complete wi idx result attempts =
    let won =
      Mutex.protect lock (fun () ->
          let s = slots.(idx) in
          match s.sl_state with
          | Done -> false
          | Pending | Running _ ->
            s.sl_state <- Done;
            s.sl_result <- Some result;
            s.sl_attempts <- attempts;
            true)
    in
    if won then begin
      (* shard [wi] is written only by worker [wi]: no lock on the store *)
      (match shard_for wi with
      | Some ck -> Resilience.Checkpoint.store ck slots.(idx).sl_key (entry_to_json encode result)
      | None -> ());
      Telemetry.Counter.incr tele_items;
      (match result with
      | Error _ -> Telemetry.Counter.incr tele_quarantined
      | Ok _ -> ());
      ignore (Atomic.fetch_and_add remaining (-1))
    end;
    won
  in
  let find_straggler () =
    match cfg.fl_timeout_s with
    | None -> None
    | Some tmo ->
      Mutex.protect lock (fun () ->
          let now = Unix.gettimeofday () in
          let best = ref None in
          Array.iteri
            (fun i s ->
              match s.sl_state with
              | Running started when now -. started > tmo -> (
                match !best with
                | Some (_, st) when st <= started -> ()
                | _ -> best := Some (i, started))
              | _ -> ())
            slots;
          match !best with
          | None -> None
          | Some (i, _) ->
            (* restart the clock so other idle workers don't pile onto
               the same item before this copy had its chance *)
            slots.(i).sl_state <- Running now;
            slots.(i).sl_redispatches <- slots.(i).sl_redispatches + 1;
            Some i)
  in
  let run_item wi ws idx =
    let s = slots.(idx) in
    if mark_running idx then begin
      Telemetry.begin_span ~cat:"fleet" "fleet.item";
      let rec go attempt =
        ws.w_executed <- ws.w_executed + 1;
        match f ~seed:s.sl_seed tasks.(idx).tk_payload with
        | v -> ignore (complete wi idx (Ok v) attempt)
        | exception e ->
          let msg = Printexc.to_string e in
          if attempt >= cfg.fl_max_attempts then begin
            if complete wi idx (Error msg) attempt then
              log
                (Printf.sprintf "fleet: quarantined %s after %d attempt(s): %s" s.sl_key attempt
                   msg)
          end
          else begin
            ws.w_retry_sleeps <- ws.w_retry_sleeps + 1;
            Unix.sleepf (cfg.fl_backoff_s *. float_of_int (1 lsl (attempt - 1)));
            (* a straggler copy elsewhere may have finished it meanwhile *)
            if not (is_done idx) then go (attempt + 1)
          end
      in
      go 1;
      Telemetry.end_span ~args:[ ("key", Telemetry.Str s.sl_key) ] ()
    end
  in
  let worker wi =
    let ws = { w_executed = 0; w_steals = 0; w_redispatches = 0; w_retry_sleeps = 0 } in
    let rec loop () =
      if Atomic.get remaining > 0 then begin
        (match Deque.pop_front deques.(wi) with
        | Some idx -> run_item wi ws idx
        | None -> (
          let rec try_steal k =
            if k >= n_domains then None
            else
              match Deque.steal_back deques.((wi + k) mod n_domains) with
              | Some idx -> Some idx
              | None -> try_steal (k + 1)
          in
          match try_steal 1 with
          | Some idx ->
            ws.w_steals <- ws.w_steals + 1;
            run_item wi ws idx
          | None -> (
            match find_straggler () with
            | Some idx ->
              ws.w_redispatches <- ws.w_redispatches + 1;
              run_item wi ws idx
            | None -> if Atomic.get remaining > 0 then Unix.sleepf 2e-4)));
        loop ()
      end
    in
    loop ();
    ws
  in
  (* spawn workers 1..n-1; the calling domain is worker 0.  A failed
     spawn degrades the pool (thieves drain the orphan deque). *)
  let joins = ref [] in
  for wi = 1 to n_domains - 1 do
    match
      Domain.spawn (fun () ->
          let ws = worker wi in
          (ws, Telemetry.harvest ()))
    with
    | d -> joins := (wi, d) :: !joins
    | exception e ->
      log
        (Printf.sprintf "fleet: Domain.spawn failed for worker %d (%s); degrading to %d worker(s)"
           wi (Printexc.to_string e) (1 + List.length !joins))
  done;
  let ws0 = worker 0 in
  let joined =
    List.rev_map
      (fun (wi, d) ->
        let ws, spans = Domain.join d in
        (wi, ws, spans))
      !joins
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  (* splice worker span forests into this domain's trace in worker order
     (worker 0 recorded directly into this domain) *)
  List.iter (fun (_, _, spans) -> Telemetry.absorb spans) joined;
  let tallies = wstats_tally ws0 :: List.map (fun (_, ws, _) -> wstats_tally ws) joined in
  let health =
    match tallies with
    | [] -> assert false
    | first :: rest ->
      List.fold_left (fun acc t -> List.map2 Telemetry.Counter.merge acc t) first rest
  in
  let counter name =
    match List.find_opt (fun c -> c.Telemetry.Counter.c_name = name) health with
    | Some c -> c.Telemetry.Counter.c_value
    | None -> 0
  in
  let results =
    Array.map
      (fun s ->
        let fr_outcome, fr_value =
          match s.sl_result with
          | Some (Ok v) ->
            let o =
              if s.sl_from_ck then Completed
              else if s.sl_attempts > 1 then Retried (s.sl_attempts - 1)
              else if s.sl_redispatches > 0 then Timed_out s.sl_redispatches
              else Completed
            in
            (o, Some v)
          | Some (Error e) -> (Quarantined e, None)
          | None -> assert false (* remaining = 0 ⇒ every slot is Done *)
        in
        {
          fr_key = s.sl_key;
          fr_seed = s.sl_seed;
          fr_outcome;
          fr_value;
          fr_attempts = s.sl_attempts;
          fr_from_checkpoint = s.sl_from_ck;
        })
      slots
  in
  let count p = Array.fold_left (fun n r -> if p r.fr_outcome then n + 1 else n) 0 results in
  let stats =
    {
      st_domains = 1 + List.length joined;
      st_items = n_items;
      st_completed = count (function Completed -> true | _ -> false);
      st_retried = count (function Retried _ -> true | _ -> false);
      st_timed_out = count (function Timed_out _ -> true | _ -> false);
      st_quarantined = count (function Quarantined _ -> true | _ -> false);
      st_checkpoint_hits = !ck_hits;
      st_steals = counter "fleet.steals";
      st_redispatches = counter "fleet.redispatches";
      st_retry_sleeps = counter "fleet.retry_sleeps";
    }
  in
  (results, stats)
