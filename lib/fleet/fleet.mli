(** Fault-tolerant parallel execution over OCaml 5 domains.

    The fleet engine runs a list of keyed work items through a pool of
    domains and guarantees two properties that usually pull against each
    other:

    - {b scheduling independence}: every item carries its own seed,
      derived deterministically from the run seed and the item key, and
      the item function is required to be a pure function of (seed,
      payload).  Results are therefore bit-identical regardless of the
      domain count, work-stealing order, straggler re-dispatches, or
      kill/resume points — the QCheck property [--domains 1] ≡
      [--domains 8] in [test_fleet];
    - {b robustness}: a raising item is retried with exponential backoff
      and quarantined (not fatal) after the attempt budget; an item
      running past the soft timeout is re-dispatched to an idle worker
      (first writer wins); a failed [Domain.spawn] degrades the pool to
      fewer workers, down to serial execution in the calling domain.
      The run itself never crashes because of an item.

    Work distribution is a set of per-worker deques filled round-robin:
    a worker pops from the front of its own deque and steals from the
    back of the others when empty.  Completed items are persisted to a
    per-domain shard of a {!Resilience.Checkpoint.sharded} store (atomic
    tmp+rename discipline), so a SIGKILL at any point resumes with the
    same results; quarantine dispositions are checkpointed too, so a
    resume does not re-burn attempts on a poisoned item.

    Wall-clock-dependent facts (steal counts, re-dispatches, retry
    sleeps) are health metadata: they are reported in {!stats} and as
    merged {!Telemetry.Counter.snapshot}s, and deliberately kept out of
    the deterministic result array. *)

type config = {
  fl_domains : int;  (** worker domains (>= 1); 1 = serial in the caller *)
  fl_max_attempts : int;  (** attempts per item before quarantine (>= 1) *)
  fl_backoff_s : float;  (** first retry backoff; doubles per attempt *)
  fl_timeout_s : float option;
      (** soft per-item timeout: past it, idle workers re-dispatch a
          fresh execution of the item ([None] = never) *)
}

val default_config : config
(** 1 domain, 3 attempts, 0.05 s backoff, no timeout. *)

(** One work item: a stable key (the checkpoint identity) plus a
    payload. *)
type 'a task = { tk_key : string; tk_payload : 'a }

(** Structured disposition of one item.  Never an exception. *)
type outcome =
  | Completed  (** first execution (or checkpoint restore) succeeded *)
  | Retried of int  (** succeeded after this many failed attempts *)
  | Timed_out of int
      (** succeeded, but only after this many straggler re-dispatches *)
  | Quarantined of string
      (** every attempt raised; the final error, item value absent *)

val outcome_name : outcome -> string

type 'r item_result = {
  fr_key : string;
  fr_seed : int;  (** the derived per-item seed the run used *)
  fr_outcome : outcome;
  fr_value : 'r option;  (** [None] iff quarantined *)
  fr_attempts : int;  (** executions by the recording worker (0 = restored) *)
  fr_from_checkpoint : bool;
}

(** Pool health counters.  [st_items .. st_checkpoint_hits] are
    deterministic; [st_steals .. st_retry_sleeps] depend on wall-clock
    scheduling and must stay out of diffed output. *)
type stats = {
  st_domains : int;  (** workers actually running (after spawn failures) *)
  st_items : int;
  st_completed : int;
  st_retried : int;
  st_timed_out : int;
  st_quarantined : int;
  st_checkpoint_hits : int;
  st_steals : int;
  st_redispatches : int;
  st_retry_sleeps : int;
}

val derive_seed : int -> string -> int
(** [derive_seed run_seed key]: a stable nonnegative seed, a pure
    function of both arguments (digest-based, independent of the OCaml
    hash function's word size). *)

val run :
  ?config:config ->
  ?checkpoint:Resilience.Checkpoint.sharded ->
  ?log:(string -> unit) ->
  seed:int ->
  f:(seed:int -> 'a -> 'r) ->
  encode:('r -> Json.t) ->
  decode:(Json.t -> ('r, string) result) ->
  'a task list ->
  'r item_result array * stats
(** Execute every task; the result array is in task order.

    [f ~seed payload] must be a pure function of its arguments (that is
    the whole determinism argument) and must terminate; it may raise,
    which counts as a failed attempt.  [encode]/[decode] are the
    checkpoint codec for item values (a value that fails to decode on
    resume is treated as a miss and recomputed).  [log] receives
    human-readable health lines (quarantines, spawn degradation) and may
    be called from any worker; calls are serialized internally.

    Task keys must be unique. @raise Invalid_argument on a duplicate.

    When [checkpoint] is given, worker [k] persists its completions into
    shard [k mod shard_count]; restored items (including restored
    quarantine dispositions) are not re-executed. *)

val tally_to_counters : stats -> Telemetry.Counter.snapshot list
(** The health counters as telemetry snapshots (name-sorted), the form
    in which per-run tallies aggregate across runs or machines with
    {!Telemetry.Counter.merge}. *)
