(** Hardware formal verification by bounded model checking.

    This is the JasperGold substitute of the Error Lifting phase: given a
    netlist (typically one instrumented with a failure model and a shadow
    replica), a [cover] property, and optional [assume] constraints on the
    module inputs, the engine unrolls the netlist's transition relation
    cycle by cycle into CNF (Tseitin encoding), asks the CDCL solver for a
    satisfying assignment, and reconstructs a cycle-accurate input {!Trace.t}
    when one exists.

    Completeness: for pipelines whose DFF-to-DFF dependency graph is acyclic
    (the ALU datapath, the instrumented shadow logic), the state at cycle
    [sequential_depth] is a function of the inputs alone, so exhausting all
    bounds up to that depth *proves* the cover unreachable — the paper's "UR"
    outcome.  Circuits with state feedback (the FPU handshake FSM) fall back
    to a bounded claim unless the exploration bound exceeds their diameter. *)

(** Boolean expressions over the circuit, evaluated at one clock cycle. *)
type expr =
  | Const of bool
  | Input of string * int  (** primary-input port bit *)
  | Net of Netlist.net  (** any internal net *)
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

val nets_differ : Netlist.net -> Netlist.net -> expr
(** The canonical Vega cover property: two nets (an original output bit and
    its shadow-replica copy) disagree. *)

val port_equals : Netlist.t -> string -> Bitvec.t -> expr
(** Input port holds exactly this value. *)

val port_in : Netlist.t -> string -> Bitvec.t list -> expr
(** Input port holds one of the listed values (an [assume] restricting a
    module to valid operations, Section 3.3.3). *)

val eval_expr : Sim.t -> expr -> bool
(** Evaluate an expression against the current simulator state (used to
    replay and validate traces). *)

(** Cycle-accurate counterexample traces. *)
module Trace : sig
  type t = {
    netlist_name : string;
    cycles : int;  (** trace length; inputs are indexed [0 .. cycles-1] *)
    inputs : (string * Bitvec.t array) list;  (** per input port, per cycle *)
    observed : (string * bool array) list;  (** watched nets, per cycle *)
  }

  val input_at : t -> string -> int -> Bitvec.t
  val to_string : t -> string
  (** Waveform-table rendering in the style of the paper's Table 2. *)

  val replay : Sim.t -> t -> on_cycle:(int -> unit) -> unit
  (** Drive a simulator with the trace's inputs, calling [on_cycle] after
      each settled cycle (before the clock edge), then stepping. *)

  val to_vcd : Netlist.t -> t -> string
  (** Replay the trace on the given netlist and render a VCD waveform of
      its input ports, output ports, and watched nets — the "saved
      waveform" of the paper's step 5. *)

  val covers : Netlist.t -> t -> expr -> bool
  (** Replay the trace on a fresh simulator of the given netlist and report
      whether the expression held during at least one cycle. *)
end

type outcome =
  | Trace_found of Trace.t
  | Unreachable  (** proven: no input sequence can ever satisfy the cover *)
  | Bounded_unreachable of int  (** no trace within the bound; not a proof *)
  | Timeout of int
      (** solver conflict budget exhausted (the paper's "FF").  The payload
          is the deepest bound already proven unreachable — an [Unsat] at
          bound [k] that exactly exhausts the budget still proved [k], so a
          resumed run can restart at bound [k + 1] instead of bound 0
          (see [start_cycle] of {!check_cover}). *)

val sequential_depth : Netlist.t -> int option
(** [Some d] when the DFF-to-DFF dependency graph is acyclic, where [d] is
    the length of its longest register chain; [None] for circuits with
    state feedback. *)

val check_cover :
  ?assumes:expr list ->
  ?watch:(string * Netlist.net) list ->
  ?max_cycles:int ->
  ?max_conflicts:int ->
  ?start_cycle:int ->
  Netlist.t ->
  cover:expr ->
  outcome
(** Search for an input trace satisfying [cover] at some cycle, trying
    bounds 1, 2, ... [max_cycles] (default: [sequential_depth] when known,
    else 8).  [assumes] must hold at every cycle of the trace.  [watch]
    names extra nets whose values are recorded in the returned trace.
    [max_conflicts] (default 200_000) bounds total solver effort; exceeding
    it yields [Timeout].

    [start_cycle] (default 1) skips the solver queries for bounds below it:
    those cycles are still unrolled and constrained, but the caller vouches
    that they were already proven unreachable by an earlier (timed-out)
    run — pass [k + 1] after a [Timeout k] to resume where it stopped.
    Unsound if bounds below [start_cycle] were never actually proven. *)

type run_stats = {
  rs_solver : Sat.stats;  (** total solver effort of this run *)
  rs_calls : int;  (** bounds actually queried (solver calls) *)
  rs_deepest_unsat : int;
      (** deepest bound proven unreachable, [start_cycle - 1] if none *)
}

val check_cover_stats :
  ?assumes:expr list ->
  ?watch:(string * Netlist.net) list ->
  ?max_cycles:int ->
  ?max_conflicts:int ->
  ?start_cycle:int ->
  Netlist.t ->
  cover:expr ->
  outcome * run_stats
(** Like {!check_cover}, but also reports the effort actually spent — the
    currency of the {!Resilience}-style shared-budget slicing: callers
    charge [rs_solver.conflicts] against their budget rather than assuming
    the whole [max_conflicts] was consumed. *)

(** {1 Sequential equivalence checking} *)

type equivalence =
  | Equivalent  (** proven equal on every reachable cycle *)
  | Different of Trace.t  (** a distinguishing input sequence *)
  | Bounded_equivalent of int  (** equal within the bound; not a proof *)
  | Equiv_timeout

val check_equivalence :
  ?max_cycles:int -> ?max_conflicts:int -> Netlist.t -> Netlist.t -> equivalence
(** Miter-based sequential equivalence: both netlists (which must have
    identical port interfaces) are inlined side by side over shared inputs
    and the engine searches for a cycle where any output bit differs.
    Used to validate netlist transformations such as {!Netlist_opt}.
    @raise Invalid_argument when the interfaces differ. *)

val stats : unit -> int * int
(** (solver calls, total conflicts) since the program started — cheap
    instrumentation for the benchmark harness. *)
