type expr =
  | Const of bool
  | Input of string * int
  | Net of Netlist.net
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

let nets_differ a b = Xor (Net a, Net b)

let port_equals nl port v =
  let p = Netlist.find_input nl port in
  let width = Array.length p.port_nets in
  if Bitvec.width v <> width then
    invalid_arg (Printf.sprintf "Formal.port_equals: port %s has width %d" port width);
  let bit i =
    if Bitvec.bit v i then Input (port, i) else Not (Input (port, i))
  in
  let rec conj i acc = if i >= width then acc else conj (i + 1) (And (acc, bit i)) in
  conj 1 (bit 0)

let port_in nl port values =
  match values with
  | [] -> Const false
  | v :: rest ->
    List.fold_left (fun acc v -> Or (acc, port_equals nl port v)) (port_equals nl port v) rest

let rec eval_expr sim = function
  | Const b -> b
  | Input (port, bit) ->
    Sim.net sim (Netlist.net_of_port_bit (Sim.netlist sim) port bit)
  | Net n -> Sim.net sim n
  | Not e -> not (eval_expr sim e)
  | And (a, b) -> eval_expr sim a && eval_expr sim b
  | Or (a, b) -> eval_expr sim a || eval_expr sim b
  | Xor (a, b) -> eval_expr sim a <> eval_expr sim b

module Trace = struct
  type t = {
    netlist_name : string;
    cycles : int;
    inputs : (string * Bitvec.t array) list;
    observed : (string * bool array) list;
  }

  let input_at t port cycle =
    match List.assoc_opt port t.inputs with
    | Some arr when cycle >= 0 && cycle < Array.length arr -> arr.(cycle)
    | Some _ -> invalid_arg (Printf.sprintf "Trace.input_at: no cycle %d" cycle)
    | None -> invalid_arg (Printf.sprintf "Trace.input_at: no port %s" port)

  let to_string t =
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "trace of %s (%d cycles)\n" t.netlist_name t.cycles);
    Buffer.add_string buf "cycle     ";
    for c = 1 to t.cycles do
      Buffer.add_string buf (Printf.sprintf "%12d" c)
    done;
    Buffer.add_char buf '\n';
    List.iter
      (fun (port, arr) ->
        Buffer.add_string buf (Printf.sprintf "%-10s" port);
        Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%12s" (Bitvec.to_string v))) arr;
        Buffer.add_char buf '\n')
      t.inputs;
    List.iter
      (fun (name, arr) ->
        Buffer.add_string buf (Printf.sprintf "%-10s" name);
        Array.iter
          (fun v -> Buffer.add_string buf (Printf.sprintf "%12s" (if v then "'b1" else "'b0")))
          arr;
        Buffer.add_char buf '\n')
      t.observed;
    Buffer.contents buf

  let replay sim t ~on_cycle =
    for c = 0 to t.cycles - 1 do
      List.iter (fun (port, arr) -> Sim.set_input sim port arr.(c)) t.inputs;
      Sim.settle sim;
      on_cycle c;
      Sim.step sim
    done

  let to_vcd nl t =
    let sim = Sim.create nl in
    let vcd = Vcd.create ~design:t.netlist_name () in
    let in_sigs =
      List.map (fun (port, arr) -> (port, Vcd.add_signal vcd ~width:(Bitvec.width arr.(0)) port))
        t.inputs
    in
    let out_sigs =
      List.map
        (fun (p : Netlist.port) ->
          (p.Netlist.port_nets, Vcd.add_signal vcd ~width:(Array.length p.Netlist.port_nets) p.Netlist.port_name))
        (Netlist.outputs nl)
    in
    let obs_sigs = List.map (fun (name, _) -> Vcd.add_signal vcd name) t.observed in
    replay sim t ~on_cycle:(fun c ->
        List.iter (fun (port, s) -> Vcd.set vcd s (input_at t port c)) in_sigs;
        List.iter
          (fun (nets, s) ->
            Vcd.set vcd s (Bitvec.of_bits (Array.to_list (Array.map (Sim.net sim) nets))))
          out_sigs;
        List.iter2 (fun s (_, arr) -> Vcd.set_bit vcd s arr.(c)) obs_sigs t.observed;
        Vcd.advance vcd 1);
    Vcd.to_string vcd

  let covers nl t expr =
    let sim = Sim.create nl in
    let hit = ref false in
    replay sim t ~on_cycle:(fun _ -> if eval_expr sim expr then hit := true);
    !hit
end

type outcome =
  | Trace_found of Trace.t
  | Unreachable
  | Bounded_unreachable of int
  | Timeout of int

let sequential_depth nl =
  let cells = Netlist.cells nl in
  let dff_ids = Netlist.dffs nl in
  (* source DFFs feeding each DFF's D pin through combinational logic *)
  let sources id =
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let rec walk net =
      match Netlist.driver nl net with
      | Netlist.Driven_by_input _ -> ()
      | Netlist.Driven_by_cell cid ->
        if not (Hashtbl.mem seen cid) then begin
          Hashtbl.replace seen cid ();
          let c = cells.(cid) in
          if Cell.Kind.is_sequential c.kind then acc := cid :: !acc
          else Array.iter walk c.inputs
        end
    in
    walk cells.(id).inputs.(0);
    !acc
  in
  let rank = Hashtbl.create 16 in
  let exception Cyclic in
  let rec compute id =
    match Hashtbl.find_opt rank id with
    | Some (Some r) -> r
    | Some None -> raise Cyclic
    | None ->
      Hashtbl.replace rank id None;
      let r = 1 + List.fold_left (fun acc s -> max acc (compute s)) 0 (sources id) in
      Hashtbl.replace rank id (Some r);
      r
  in
  try Some (List.fold_left (fun acc id -> max acc (compute id)) 0 dff_ids)
  with Cyclic -> None

let solver_calls = ref 0
let total_conflicts = ref 0

let stats () = (!solver_calls, !total_conflicts)

(* One BMC session: incrementally unrolled transition relation. *)
type session = {
  nl : Netlist.t;
  solver : Sat.t;
  mutable vars : int array list;  (* per cycle, reversed: hd = latest *)
  mutable depth : int;  (* cycles encoded *)
  const_true : int;
}

let new_session nl =
  let solver = Sat.create () in
  let const_true = Sat.new_var solver in
  Sat.add_clause solver [ const_true ];
  { nl; solver; vars = []; depth = 0; const_true }

let cycle_vars s c =
  let rec nth l i = match l with [] -> invalid_arg "cycle" | x :: r -> if i = 0 then x else nth r (i - 1) in
  nth s.vars (s.depth - 1 - c)

let add_gate_clauses s vars (c : Netlist.cell) =
  let sv = s.solver in
  let y = vars.(c.output) in
  let i k = vars.(c.inputs.(k)) in
  match c.kind with
  | Cell.Kind.Tie0 -> Sat.add_clause sv [ -y ]
  | Cell.Kind.Tie1 -> Sat.add_clause sv [ y ]
  | Cell.Kind.Buf ->
    Sat.add_clause sv [ -y; i 0 ];
    Sat.add_clause sv [ y; -(i 0) ]
  | Cell.Kind.Not ->
    Sat.add_clause sv [ -y; -(i 0) ];
    Sat.add_clause sv [ y; i 0 ]
  | Cell.Kind.And2 ->
    Sat.add_clause sv [ -y; i 0 ];
    Sat.add_clause sv [ -y; i 1 ];
    Sat.add_clause sv [ y; -(i 0); -(i 1) ]
  | Cell.Kind.Or2 ->
    Sat.add_clause sv [ y; -(i 0) ];
    Sat.add_clause sv [ y; -(i 1) ];
    Sat.add_clause sv [ -y; i 0; i 1 ]
  | Cell.Kind.Nand2 ->
    Sat.add_clause sv [ y; i 0 ];
    Sat.add_clause sv [ y; i 1 ];
    Sat.add_clause sv [ -y; -(i 0); -(i 1) ]
  | Cell.Kind.Nor2 ->
    Sat.add_clause sv [ -y; -(i 0) ];
    Sat.add_clause sv [ -y; -(i 1) ];
    Sat.add_clause sv [ y; i 0; i 1 ]
  | Cell.Kind.Xor2 ->
    Sat.add_clause sv [ -y; i 0; i 1 ];
    Sat.add_clause sv [ -y; -(i 0); -(i 1) ];
    Sat.add_clause sv [ y; -(i 0); i 1 ];
    Sat.add_clause sv [ y; i 0; -(i 1) ]
  | Cell.Kind.Xnor2 ->
    Sat.add_clause sv [ y; i 0; i 1 ];
    Sat.add_clause sv [ y; -(i 0); -(i 1) ];
    Sat.add_clause sv [ -y; -(i 0); i 1 ];
    Sat.add_clause sv [ -y; i 0; -(i 1) ]
  | Cell.Kind.Mux2 ->
    (* output = s ? b : a with inputs a=0, b=1, s=2 *)
    Sat.add_clause sv [ i 2; -(i 0); y ];
    Sat.add_clause sv [ i 2; i 0; -y ];
    Sat.add_clause sv [ -(i 2); -(i 1); y ];
    Sat.add_clause sv [ -(i 2); i 1; -y ]
  | Cell.Kind.Dff -> ()  (* handled by the transition relation *)

(* Extend the unrolling by one cycle. *)
let push_cycle s =
  let n = Netlist.num_nets s.nl in
  let vars = Array.init n (fun _ -> Sat.new_var s.solver) in
  let prev = if s.depth > 0 then Some (List.hd s.vars) else None in
  s.vars <- vars :: s.vars;
  s.depth <- s.depth + 1;
  let cells = Netlist.cells s.nl in
  Array.iter (fun (c : Netlist.cell) -> add_gate_clauses s vars c) cells;
  List.iter
    (fun id ->
      let c = cells.(id) in
      let q = vars.(c.output) in
      match prev with
      | None ->
        (* cycle 0: reset state *)
        Sat.add_clause s.solver [ (if c.reset_value then q else -q) ]
      | Some pvars ->
        let d = pvars.(c.inputs.(0)) in
        Sat.add_clause s.solver [ -q; d ];
        Sat.add_clause s.solver [ q; -d ])
    (Netlist.dffs s.nl)

(* Tseitin encoding of an expression at a given cycle; returns a literal. *)
let rec lit_of_expr s cycle = function
  | Const true -> s.const_true
  | Const false -> -s.const_true
  | Input (port, bit) -> (cycle_vars s cycle).(Netlist.net_of_port_bit s.nl port bit)
  | Net n -> (cycle_vars s cycle).(n)
  | Not e -> -lit_of_expr s cycle e
  | And (a, b) ->
    let la = lit_of_expr s cycle a and lb = lit_of_expr s cycle b in
    let v = Sat.new_var s.solver in
    Sat.add_clause s.solver [ -v; la ];
    Sat.add_clause s.solver [ -v; lb ];
    Sat.add_clause s.solver [ v; -la; -lb ];
    v
  | Or (a, b) ->
    let la = lit_of_expr s cycle a and lb = lit_of_expr s cycle b in
    let v = Sat.new_var s.solver in
    Sat.add_clause s.solver [ v; -la ];
    Sat.add_clause s.solver [ v; -lb ];
    Sat.add_clause s.solver [ -v; la; lb ];
    v
  | Xor (a, b) ->
    let la = lit_of_expr s cycle a and lb = lit_of_expr s cycle b in
    let v = Sat.new_var s.solver in
    Sat.add_clause s.solver [ -v; la; lb ];
    Sat.add_clause s.solver [ -v; -la; -lb ];
    Sat.add_clause s.solver [ v; -la; lb ];
    Sat.add_clause s.solver [ v; la; -lb ];
    v

let extract_trace s watch bound =
  let inputs =
    List.map
      (fun (p : Netlist.port) ->
        let per_cycle =
          Array.init bound (fun c ->
              let vars = cycle_vars s c in
              let width = Array.length p.port_nets in
              let v = ref (Bitvec.zero width) in
              Array.iteri
                (fun i n -> if Sat.value s.solver vars.(n) then v := Bitvec.set_bit !v i true)
                p.port_nets;
              !v)
        in
        (p.port_name, per_cycle))
      (Netlist.inputs s.nl)
  in
  let observed =
    List.map
      (fun (name, net) ->
        (name, Array.init bound (fun c -> Sat.value s.solver (cycle_vars s c).(net))))
      watch
  in
  { Trace.netlist_name = Netlist.name s.nl; cycles = bound; inputs; observed }

type run_stats = { rs_solver : Sat.stats; rs_calls : int; rs_deepest_unsat : int }

let check_cover_stats ?(assumes = []) ?(watch = []) ?max_cycles ?(max_conflicts = 200_000)
    ?(start_cycle = 1) nl ~cover =
  let depth = sequential_depth nl in
  let complete_bound = Option.map (fun d -> d + 1) depth in
  let max_cycles =
    match (max_cycles, complete_bound) with
    | Some m, _ -> m
    | None, Some b -> b
    | None, None -> 8
  in
  let start_cycle = max 1 start_cycle in
  let s = new_session nl in
  let budget = ref max_conflicts in
  let calls = ref 0 in
  let effort = ref Sat.zero_stats in
  (* bounds below [start_cycle] are encoded (so the transition relation and
     the per-cycle assumes constrain later cycles) but not queried: the
     caller vouches that they were proven unreachable by an earlier run *)
  let deepest = ref (start_cycle - 1) in
  let rec try_bound k =
    if k > max_cycles then
      match complete_bound with
      | Some b when max_cycles >= b -> Unreachable
      | _ -> Bounded_unreachable max_cycles
    else begin
      push_cycle s;
      (* assumptions for this cycle's constraints *)
      List.iter
        (fun e -> Sat.add_clause s.solver [ lit_of_expr s (k - 1) e ])
        assumes;
      if k < start_cycle then try_bound (k + 1)
      else begin
        (* the span must close before the Unsat branch recurses, so
           successive bounds are siblings under the check_cover span
           rather than an ever-deeper nest *)
        let tele = Telemetry.enabled () in
        if tele then Telemetry.begin_span ~cat:"formal" "formal.bound";
        let cover_lit = lit_of_expr s (k - 1) cover in
        incr solver_calls;
        incr calls;
        let before = Sat.stats s.solver in
        let r = Sat.solve ~assumptions:[ cover_lit ] ~max_conflicts:!budget s.solver in
        let used = Sat.stats_diff (Sat.stats s.solver) before in
        effort := Sat.stats_sum !effort used;
        total_conflicts := !total_conflicts + used.Sat.conflicts;
        budget := !budget - used.Sat.conflicts;
        if tele then
          Telemetry.end_span
            ~args:
              [
                ("bound", Telemetry.Int k);
                ("result", Telemetry.Str (Sat.result_name r));
                ("conflicts", Telemetry.Int used.Sat.conflicts);
                ("budget_left", Telemetry.Int !budget);
              ]
            ();
        match r with
        | Sat.Sat -> Trace_found (extract_trace s watch k)
        | Sat.Unsat ->
          (* the boundary case: an Unsat that exactly exhausts the budget
             still proved bound [k] — record it so a resumed run restarts
             at [k + 1] rather than bound 0 *)
          deepest := k;
          if !budget <= 0 then Timeout !deepest else try_bound (k + 1)
        | Sat.Unknown -> Timeout !deepest
      end
    end
  in
  let tele = Telemetry.enabled () in
  if tele then Telemetry.begin_span ~cat:"formal" "formal.check_cover";
  let outcome = try_bound 1 in
  if tele then begin
    let outcome_name =
      match outcome with
      | Trace_found _ -> "trace_found"
      | Unreachable -> "unreachable"
      | Bounded_unreachable _ -> "bounded_unreachable"
      | Timeout _ -> "timeout"
    in
    Telemetry.end_span
      ~args:
        [
          ("netlist", Telemetry.Str (Netlist.name nl));
          ("outcome", Telemetry.Str outcome_name);
          ("calls", Telemetry.Int !calls);
          ("conflicts", Telemetry.Int !effort.Sat.conflicts);
          ("deepest_unsat", Telemetry.Int !deepest);
        ]
      ()
  end;
  (outcome, { rs_solver = !effort; rs_calls = !calls; rs_deepest_unsat = !deepest })

let check_cover ?assumes ?watch ?max_cycles ?max_conflicts ?start_cycle nl ~cover =
  fst (check_cover_stats ?assumes ?watch ?max_cycles ?max_conflicts ?start_cycle nl ~cover)

(* Inline a netlist's cells into a builder, feeding its input ports from
   the given nets; returns a map from the inlined netlist's nets to the
   builder's nets. *)
let inline b (nl : Netlist.t) ~suffix ~input_nets =
  let map = Hashtbl.create 64 in
  List.iter
    (fun (p : Netlist.port) ->
      let feed =
        match List.assoc_opt p.Netlist.port_name input_nets with
        | Some nets -> nets
        | None -> invalid_arg ("Formal.inline: missing input " ^ p.Netlist.port_name)
      in
      if Array.length feed <> Array.length p.Netlist.port_nets then
        invalid_arg ("Formal.inline: width mismatch on " ^ p.Netlist.port_name);
      Array.iteri (fun i orig -> Hashtbl.replace map orig feed.(i)) p.Netlist.port_nets)
    (Netlist.inputs nl);
  (* pass 1: DFFs with placeholder inputs *)
  let dffs = ref [] in
  List.iter
    (fun id ->
      let c = Netlist.cell nl id in
      let new_id, out =
        Netlist.Builder.add_cell_with_id
          ~name:(c.Netlist.name ^ suffix)
          ~clock_domain:c.Netlist.clock_domain ~reset_value:c.Netlist.reset_value b
          Cell.Kind.Dff
          [| Netlist.Builder.fresh_net b |]
      in
      dffs := (id, new_id) :: !dffs;
      Hashtbl.replace map c.Netlist.output out)
    (Netlist.dffs nl);
  let get orig =
    match Hashtbl.find_opt map orig with
    | Some n -> n
    | None -> invalid_arg "Formal.inline: unmapped net (internal)"
  in
  (* pass 2: comb cells in topo order *)
  Array.iter
    (fun id ->
      let c = Netlist.cell nl id in
      let out =
        Netlist.Builder.add_cell
          ~name:(c.Netlist.name ^ suffix)
          b c.Netlist.kind
          (Array.map get c.Netlist.inputs)
      in
      Hashtbl.replace map c.Netlist.output out)
    (Netlist.topo_order nl);
  (* pass 3: rewire DFF inputs *)
  List.iter
    (fun (orig_id, new_id) ->
      let c = Netlist.cell nl orig_id in
      Netlist.Builder.rewire_input b ~cell_id:new_id ~pin:0 (get c.Netlist.inputs.(0)))
    !dffs;
  get

type equivalence = Equivalent | Different of Trace.t | Bounded_equivalent of int | Equiv_timeout

let check_equivalence ?max_cycles ?max_conflicts left right =
  (* interfaces must match *)
  let sig_of nl =
    ( List.map (fun (p : Netlist.port) -> (p.Netlist.port_name, Array.length p.Netlist.port_nets))
        (Netlist.inputs nl),
      List.map (fun (p : Netlist.port) -> (p.Netlist.port_name, Array.length p.Netlist.port_nets))
        (Netlist.outputs nl) )
  in
  if sig_of left <> sig_of right then
    invalid_arg "Formal.check_equivalence: port interfaces differ";
  let b = Netlist.Builder.create (Netlist.name left ^ "_miter") in
  let input_nets =
    List.map
      (fun (p : Netlist.port) ->
        (p.Netlist.port_name, Netlist.Builder.add_input b p.Netlist.port_name (Array.length p.Netlist.port_nets)))
      (Netlist.inputs left)
  in
  let map_l = inline b left ~suffix:"@l" ~input_nets in
  let map_r = inline b right ~suffix:"@r" ~input_nets in
  (* cover: any output bit differs *)
  let diffs =
    List.concat_map
      (fun (p : Netlist.port) ->
        let rp = Netlist.find_output right p.Netlist.port_name in
        List.init (Array.length p.Netlist.port_nets) (fun i ->
            Netlist.Builder.add_cell b Cell.Kind.Xor2
              [| map_l p.Netlist.port_nets.(i); map_r rp.Netlist.port_nets.(i) |]))
      (Netlist.outputs left)
  in
  let rec or_tree = function
    | [] -> invalid_arg "Formal.check_equivalence: no outputs to compare"
    | [ x ] -> x
    | x :: y :: rest -> or_tree (Netlist.Builder.add_cell b Cell.Kind.Or2 [| x; y |] :: rest)
  in
  let any_diff = or_tree diffs in
  Netlist.Builder.add_output b "miter" [| any_diff |];
  let miter = Netlist.Builder.finish b in
  match
    check_cover ?max_cycles ?max_conflicts miter
      ~cover:(Net (Netlist.net_of_port_bit miter "miter" 0))
  with
  | Trace_found t -> Different t
  | Unreachable -> Equivalent
  | Bounded_unreachable k -> Bounded_equivalent k
  | Timeout _ -> Equiv_timeout
