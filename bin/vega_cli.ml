(* The vega command-line tool.

     vega analyze  --unit alu|fpu [--width N] [--margin M] [--years Y]
                   [--static | --static-prune]
     vega lift     --unit alu|fpu [--mitigation] [--asm] [--out FILE] [--seed N]
                   [--slice N] [--budget N] [--no-fallback]
                   [--engine scalar|sim64|simc] [--static-prune]
                   [--checkpoint DIR] [--resume]
     vega run      --unit alu|fpu [--inject START:END:KIND:C] [--random-order SEED]
     vega emit-c   --unit alu|fpu
     vega encode   --unit alu|fpu
     vega verilog  --unit alu|fpu|example [--inject START:END:KIND:C]
     vega fuzz     --unit alu|fpu --pair START:END [--budget CYCLES]
     vega optimize --unit alu|fpu [--verify]
     vega lint     --unit alu|fpu | --selftest
     vega check    --unit alu|fpu [--seed N]
     vega report   [--quick]
     vega guard-campaign [--quick] [--seed N] [--checkpoint DIR] [--resume]
     vega attack   --unit alu|fpu [--width N] [--len N] [--iters N] [--seed N]
                   [--no-sat] [--cells C1,C2]
                   [--campaign [--quick]] [--checkpoint DIR] [--resume]
     vega monitors --unit alu|fpu [--width N] [--margin M] [--count N]
                   [--pessimism F]
     vega repair   --unit alu|fpu [--width N] [--margin M] [--years Y]
                   [--budget N] [--area-frac F] [--pair-edits N]
                   [--approx-bound RATE] [--seed N]
                   [--checkpoint DIR] [--resume]
     vega fleet    [--quick] [--width N] [--devices N] [--domains D] [--seed N]
                   [--specs N] [--engine scalar|sim64|simc] [--poison ID,ID]
                   [--checkpoint DIR] [--resume]

   The pipeline subcommands (analyze, lift, run, fuzz, optimize, check,
   report, guard-campaign, attack, monitors, repair, fleet) additionally
   accept
     --trace FILE      Chrome trace-event JSON (Perfetto-loadable)
     --metrics FILE    JSONL counters / histograms / span totals
     --virtual-clock   deterministic timestamps: identical runs produce
                       byte-identical exports (used by the golden tests)
   Telemetry is recorded only when --trace or --metrics is given; the
   instrumentation compiles to a single flag check otherwise.

   Exit codes are uniform across subcommands: 0 success; 1 the analysis
   itself failed or detected a problem (SDC detected, check/lint failure,
   a supervised item errored, a guarded campaign run escaped, an attack
   campaign without acceleration or with canary-guarded escapes, a canary
   monitor failing its verification gate, a fleet run with quarantined
   devices, a repair run that leaves violating pairs unrepaired); 2 usage
   errors; 3 runtime
   errors such as a stale or unusable checkpoint (digest mismatch).
   Unknown subcommands exit non-zero (cmdliner's exit 124).

   The long-running subcommands (lift, guard-campaign, attack, repair) accept
   --checkpoint DIR to persist every completed work item atomically, and
   --resume to continue such a directory, skipping completed items; a
   resumed run prints byte-identical output for the same seed.  Faults
   are specified as "start_dff:end_dff:setup|hold:0|1|r",
   e.g. --inject a_q0:r_q0:setup:0. *)

open Cmdliner

(* ---------- shared arguments ---------- *)

type unit_kind = U_alu | U_fpu

let unit_conv =
  let parse = function
    | "alu" -> Ok U_alu
    | "fpu" -> Ok U_fpu
    | s -> Error (`Msg (Printf.sprintf "unknown unit %S (expected alu or fpu)" s))
  in
  let print fmt u = Format.pp_print_string fmt (match u with U_alu -> "alu" | U_fpu -> "fpu") in
  Arg.conv (parse, print)

let unit_arg =
  Arg.(required & opt (some unit_conv) None & info [ "unit"; "u" ] ~docv:"UNIT" ~doc:"Functional unit: alu or fpu.")

let engine_conv =
  let parse s =
    match Lift.engine_of_name s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S (expected scalar, sim64, or simc)" s))
  in
  let print fmt e = Format.pp_print_string fmt (Lift.engine_name e) in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(
    value
    & opt engine_conv Lift.Engine_sim64
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Word-parallel simulation engine for detection sweeps: $(b,scalar) (reference \
           interpreter, one lane), $(b,sim64) (word-parallel interpreter), or $(b,simc) \
           (compiled superop programs).  sim64 and simc produce bit-identical verdicts.")

let width_arg =
  Arg.(value & opt int 16 & info [ "width" ] ~docv:"BITS" ~doc:"ALU datapath width (power of two, 4-32).")

let margin_arg =
  Arg.(value & opt float 1.0 & info [ "margin" ] ~docv:"M" ~doc:"Clock guardband over the fresh critical path (e.g. 1.005).")

let years_arg =
  Arg.(value & opt float 10.0 & info [ "years" ] ~docv:"Y" ~doc:"Assumed service life for the aging analysis.")

let mitigation_arg =
  Arg.(value & flag & info [ "mitigation" ] ~doc:"Enable the initial-value-dependency mitigation (rising/falling variants).")

let fault_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ start_dff; end_dff; kind; c ] -> (
      let kind =
        match kind with
        | "setup" -> Ok Fault.Setup_violation
        | "hold" -> Ok Fault.Hold_violation
        | k -> Error (`Msg (Printf.sprintf "bad violation kind %S" k))
      in
      let constant =
        match c with
        | "0" -> Ok Fault.C0
        | "1" -> Ok Fault.C1
        | "r" | "R" -> Ok Fault.C_random
        | c -> Error (`Msg (Printf.sprintf "bad constant %S" c))
      in
      match (kind, constant) with
      | Ok kind, Ok constant ->
        Ok { Fault.start_dff; end_dff; kind; constant; activation = Fault.Any_transition }
      | Error e, _ | _, Error e -> Error e)
    | _ -> Error (`Msg "expected START:END:setup|hold:0|1|r")
  in
  let print fmt s = Format.pp_print_string fmt (Fault.describe s) in
  Arg.conv (parse, print)

let inject_arg =
  Arg.(value & opt (some fault_conv) None & info [ "inject" ] ~docv:"FAULT" ~doc:"Inject a failure model: START:END:setup|hold:0|1|r.")

let target_of = function
  | U_alu, width -> Lift.alu_target ~width ()
  | U_fpu, _ -> Lift.fpu_target ()

(* ---------- telemetry plumbing ---------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv); load it in Perfetto \
           (ui.perfetto.dev) or chrome://tracing.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write run metrics (counters, histograms, span totals) to $(docv) as JSONL.")

let virtual_clock_arg =
  Arg.(
    value & flag
    & info [ "virtual-clock" ]
        ~doc:
          "Timestamp telemetry with the deterministic virtual clock instead of real time: \
           identical runs then produce byte-identical exports.")

let telemetry_term =
  Term.(const (fun trace metrics vclock -> (trace, metrics, vclock))
        $ trace_arg $ metrics_arg $ virtual_clock_arg)

(* Recording is active only when an export destination was requested, so
   the plain CLI keeps the disabled-path (single flag check) cost. *)
let with_telemetry (trace, metrics, vclock) f =
  match (trace, metrics) with
  | None, None -> f ()
  | _ ->
    let clock =
      if vclock then Telemetry.Clock.virtual_ () else Telemetry.Clock.monotonic ()
    in
    Telemetry.enable ~clock ();
    let finish () =
      let snap = Telemetry.snapshot () in
      Telemetry.disable ();
      let write path text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      Option.iter (fun p -> write p (Telemetry.Export.chrome_trace snap)) trace;
      Option.iter (fun p -> write p (Telemetry.Export.jsonl snap)) metrics
    in
    (match f () with
    | code ->
      finish ();
      code
    | exception e ->
      finish ();
      raise e)

let phase1_of margin =
  { Vega.default_phase1 with Vega.clock_margin = margin }

let workflow unit_kind width margin mitigation =
  let target = target_of (unit_kind, width) in
  let phase2 = { Lift.default_config with Lift.mitigation } in
  Vega.run_workflow ~phase1:(phase1_of margin) ~phase2 target ~workload:Vega.run_minver_workload

(* ---------- analyze ---------- *)

let static_arg =
  Arg.(
    value & flag
    & info [ "static" ]
        ~doc:
          "Print only the static Spbound triage report (SP/duty intervals and Safe / Critical \
           / Unknown pair verdicts): no simulation runs, so the output is deterministic and \
           golden-diffable.")

let static_prune_arg =
  Arg.(
    value & flag
    & info [ "static-prune" ]
        ~doc:
          "Triage register pairs with the static Spbound analysis first and skip \
           statically-Safe pairs in the phase-1 sweep; verdicts are identical, Critical pairs \
           are front-loaded in phase 2.")

(* The deterministic Spbound report: clock period from the fresh critical
   path exactly as phase 1 derives it, then the static triage at the same
   aging corner phase 1 uses. *)
let static_report target (config : Vega.phase1_config) =
  let nl = target.Lift.netlist in
  let fresh_timing =
    Sta.fresh_timing ~derate:config.Vega.derate ~clock_tree:config.Vega.clock_tree
      Cell.Library.c28
  in
  let fresh_probe = Sta.analyze ~timing:fresh_timing ~clock_period_ps:1e9 nl in
  let crit =
    List.fold_left
      (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
      0.0 fresh_probe.Sta.endpoint_slacks
  in
  let clock_period_ps = crit *. config.Vega.clock_margin in
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  let sb = Spbound.analyze nl in
  let pvs =
    Spbound.classify ~derate:config.Vega.derate ~clock_tree:config.Vega.clock_tree ~aglib
      ~years:config.Vega.years ~clock_period_ps sb
  in
  (sb, pvs, clock_period_ps)

let analyze_cmd =
  let run tele unit_kind width margin years static static_prune =
    with_telemetry tele @@ fun () ->
    let target = target_of (unit_kind, width) in
    let config = { (phase1_of margin) with Vega.years } in
    if static then begin
      let sb, pvs, clock_period_ps = static_report target config in
      Printf.printf "clock period %.0f ps (fresh critical path x margin %.3f)\n" clock_period_ps
        margin;
      print_string (Spbound.render sb pvs);
      0
    end
    else
    (* workload characterization + area/power from the same profiled run *)
    let m = Vega.machine_for ~profile_units:true target in
    Vega.run_minver_workload m;
    let stats = Machine.op_stats m in
    Printf.printf "workload op mix: ";
    List.iter (fun (op, n) -> Printf.printf "%s:%d " (Alu.op_name op) n) stats.Machine.alu_ops;
    List.iter
      (fun (op, n) -> Printf.printf "%s:%d " (Fpu_format.op_name op) n)
      stats.Machine.fpu_ops;
    Printf.printf "ld:%d st:%d br:%d(%d taken)\n" stats.Machine.loads stats.Machine.stores
      stats.Machine.branches stats.Machine.branches_taken;
    let unit_sim =
      match unit_kind with
      | U_alu -> Option.get (Machine.alu_sim m)
      | U_fpu -> Option.get (Machine.fpu_sim m)
    in
    if Sim.samples unit_sim > 1 then
      print_string (Power.render (Power.analyze Cell.Library.c28 unit_sim ~clock_mhz:200.0));
    let a =
      Vega.aging_analysis ~config ~static_prune target ~workload:Vega.run_minver_workload
    in
    Printf.printf "netlist: %d cells, clock period %.0f ps (margin %.3f)\n"
      (Netlist.num_cells target.Lift.netlist) a.Vega.clock_period_ps margin;
    (match a.Vega.static_verdicts with
    | None -> ()
    | Some pvs ->
      let safe, critical, unknown = Spbound.verdict_counts pvs in
      Printf.printf "static triage: %d safe (skipped) / %d critical / %d unknown pairs\n" safe
        critical unknown);
    Printf.printf "fresh:  setup WNS %.1f ps, hold WNS %.1f ps (violations: %d setup, %d hold)\n"
      a.Vega.fresh_report.Sta.wns_setup_ps a.Vega.fresh_report.Sta.wns_hold_ps
      (List.length a.Vega.fresh_report.Sta.setup_violations)
      (List.length a.Vega.fresh_report.Sta.hold_violations);
    Printf.printf "aged %g years: setup WNS %.1f ps, hold WNS %.1f ps\n" years
      a.Vega.aged_report.Sta.wns_setup_ps a.Vega.aged_report.Sta.wns_hold_ps;
    Printf.printf "violating register pairs (%d):\n" (List.length a.Vega.violating_pairs);
    List.iter
      (fun (s, e, c, sl) ->
        Printf.printf "  %-10s -> %-10s %-6s slack %7.1f ps\n"
          (Sta.describe_startpoint target.Lift.netlist s)
          (Sta.describe_endpoint target.Lift.netlist e)
          (match c with Sta.Setup -> "setup" | Sta.Hold -> "hold")
          sl)
      a.Vega.violating_pairs;
    0
  in
  let term =
    Term.(
      const run $ telemetry_term $ unit_arg $ width_arg $ margin_arg $ years_arg $ static_arg
      $ static_prune_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Phase 1: aging-aware timing analysis of a functional unit, optionally pruned (or \
          replaced entirely, with $(b,--static)) by the sound static Spbound triage.")
    term

(* ---------- lift ---------- *)

let asm_arg = Arg.(value & flag & info [ "asm" ] ~doc:"Print the generated suite as assembly.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the suite as JSON (the operator interchange format).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Persist every completed work item into $(docv) (atomic JSON snapshots), making the \
           run resumable with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:"Continue from an existing checkpoint directory, skipping completed items.")

let lift_cmd =
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the random-search degradation ladder.")
  in
  let slice_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "slice" ] ~docv:"CONFLICTS"
          ~doc:"First-pass per-pair solver-conflict slice (default: the formal budget, 200000).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"CONFLICTS"
          ~doc:"Total shared solver-conflict budget (default: slice x pairs).")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:"Disable the random-search fallback for formally-FF pairs.")
  in
  let run tele unit_kind width margin mitigation asm out seed slice budget no_fallback engine
      static_prune checkpoint resume =
    with_telemetry tele @@ fun () ->
    let target = target_of (unit_kind, width) in
    let config =
      {
        Lift.default_config with
        Lift.mitigation;
        max_conflicts =
          (match slice with Some s -> s | None -> Lift.default_config.Lift.max_conflicts);
      }
    in
    let analysis =
      Vega.aging_analysis ~config:(phase1_of margin) ~static_prune target
        ~workload:Vega.run_minver_workload
    in
    (* triage summary goes to stderr: stdout stays byte-comparable with an
       unpruned run (same pairs, same verdicts) *)
    (match analysis.Vega.static_verdicts with
    | None -> ()
    | Some pvs ->
      let safe, critical, unknown = Spbound.verdict_counts pvs in
      Printf.eprintf "[vega] static triage: %d safe (skipped) / %d critical / %d unknown\n%!"
        safe critical unknown);
    let items = Vega.lifting_items analysis in
    let sup0 = Resilience.default_supervisor ~pairs:(List.length items) config in
    let sup =
      {
        sup0 with
        Resilience.sv_budget_conflicts =
          (match budget with Some b -> b | None -> sup0.Resilience.sv_budget_conflicts);
        sv_ladder =
          {
            sup0.Resilience.sv_ladder with
            Resilience.ld_fallback = not no_fallback;
            ld_seed = seed;
            ld_engine = engine;
          };
      }
    in
    let opened =
      match checkpoint with
      | None -> Ok None
      | Some dir ->
        let digest =
          Resilience.digest_of_strings
            [
              "vega-lift";
              Resilience.netlist_digest target.Lift.netlist;
              Printf.sprintf "%.17g" margin;
              string_of_bool mitigation;
              string_of_int config.Lift.max_conflicts;
              string_of_int sup.Resilience.sv_budget_conflicts;
              string_of_int seed;
              string_of_bool (not no_fallback);
              Lift.engine_name engine;
              string_of_bool static_prune;
            ]
        in
        Result.map Option.some (Resilience.Checkpoint.open_dir ~resume ~dir ~digest ())
    in
    match opened with
    | Error msg ->
      prerr_endline ("vega lift: " ^ msg);
      3
    | Ok checkpoint ->
      (* progress goes to stderr: stdout is the diffable report *)
      let on_item i r =
        Printf.eprintf "[vega] item %d: %s (pass %d, %d conflicts)\n%!" i
          r.Resilience.ir_item.Resilience.it_key r.Resilience.ir_passes
          r.Resilience.ir_conflicts
      in
      let rp = Resilience.supervised_lift ~config ~supervisor:sup ?checkpoint ~on_item target items in
      print_string (Resilience.render_report rp);
      let suite = Resilience.suite_of_report target rp in
      Printf.printf "suite: %d cases, %d cycles\n"
        (List.length suite.Lift.suite_cases)
        (Vega.suite_cycles suite);
      if asm then print_string (Isa.to_asm_text (Lift.suite_program suite));
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Serial.suite_to_string suite);
        close_out oc;
        Printf.printf "suite written to %s\n" path);
      if
        List.exists
          (fun r ->
            match r.Resilience.ir_outcome with Resilience.Failed _ -> true | _ -> false)
          rp.Resilience.rp_items
      then 1
      else 0
  in
  let term =
    Term.(
      const run $ telemetry_term $ unit_arg $ width_arg $ margin_arg $ mitigation_arg $ asm_arg
      $ out_arg $ seed_arg $ slice_arg $ budget_arg $ no_fallback_arg $ engine_arg
      $ static_prune_arg $ checkpoint_arg $ resume_arg)
  in
  Cmd.v
    (Cmd.info "lift"
       ~doc:
         "Phases 1+2 under the resilience supervisor: generate the SDC test suite for a unit \
          with budget-sliced formal lifting, a random-search degradation ladder, and optional \
          checkpoint/resume.")
    term

(* ---------- run ---------- *)

let seed_arg =
  Arg.(value & opt (some int) None & info [ "random-order" ] ~docv:"SEED" ~doc:"Run the suite in a random order.")

let suite_file_arg =
  Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"FILE" ~doc:"Run a previously exported JSON suite instead of regenerating one.")

let run_cmd =
  let run tele unit_kind width margin mitigation inject seed suite_file =
    with_telemetry tele @@ fun () ->
    let suite, target =
      match suite_file with
      | Some path ->
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        (match Serial.suite_of_string text with
        | Error e ->
          prerr_endline e;
          exit 2
        | Ok suite ->
          let target =
            match suite.Lift.suite_target with
            | Lift.Alu_module { width } -> Lift.alu_target ~width ()
            | Lift.Fpu_module { fmt } -> Lift.fpu_target ~fmt ()
          in
          (suite, target))
      | None ->
        let report = workflow unit_kind width margin mitigation in
        (report.Vega.suite, report.Vega.analysis.Vega.target)
    in
    let nl =
      match inject with
      | None -> target.Lift.netlist
      | Some spec ->
        Printf.printf "injecting %s\n" (Fault.describe spec);
        Fault.failing_netlist target.Lift.netlist spec
    in
    let m = Vega.machine_for (Lift.target_of_netlist target.Lift.kind nl) in
    let strategy =
      match seed with
      | None -> Integrate.Runner.Sequential
      | Some s -> Integrate.Runner.Random_order s
    in
    (match Integrate.Runner.run_tests m suite strategy with
    | Ok () ->
      print_endline "PASS: no aging-related SDC detected";
      0
    | Error id ->
      Printf.printf "SDC DETECTED by test case [%s]\n" id;
      1)
  in
  let term =
    Term.(
      const run $ telemetry_term $ unit_arg $ width_arg $ margin_arg $ mitigation_arg
      $ inject_arg $ seed_arg $ suite_file_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the generated suite on a healthy or fault-injected unit.")
    term

(* ---------- emit-c ---------- *)

let emit_c_cmd =
  let run unit_kind width margin mitigation =
    let report = workflow unit_kind width margin mitigation in
    print_string (Integrate.emit_c_library report.Vega.suite);
    0
  in
  let term = Term.(const run $ unit_arg $ width_arg $ margin_arg $ mitigation_arg) in
  Cmd.v (Cmd.info "emit-c" ~doc:"Emit the software aging library as C source.") term

(* ---------- verilog ---------- *)

let verilog_cmd =
  let unit_conv3 =
    let parse = function
      | "alu" -> Ok `Alu
      | "fpu" -> Ok `Fpu
      | "example" -> Ok `Example
      | s -> Error (`Msg (Printf.sprintf "unknown unit %S" s))
    in
    let print fmt u =
      Format.pp_print_string fmt
        (match u with `Alu -> "alu" | `Fpu -> "fpu" | `Example -> "example")
    in
    Arg.conv (parse, print)
  in
  let unit3_arg =
    Arg.(
      required
      & opt (some unit_conv3) None
      & info [ "unit"; "u" ] ~docv:"UNIT" ~doc:"alu, fpu, or example (the paper's adder).")
  in
  let run unit_kind width inject =
    let nl =
      match unit_kind with
      | `Alu -> Alu.netlist ~width ()
      | `Fpu -> Fpu.netlist ()
      | `Example -> Example_circuits.pipelined_adder ()
    in
    let nl = match inject with None -> nl | Some spec -> Fault.failing_netlist nl spec in
    print_string (Netlist.to_verilog nl);
    0
  in
  let term = Term.(const run $ unit3_arg $ width_arg $ inject_arg) in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Export a (optionally fault-instrumented) netlist as Verilog.")
    term

(* ---------- fuzz ---------- *)

let pair_arg =
  Arg.(
    required
    & opt (some (pair ~sep:':' string string)) None
    & info [ "pair" ] ~docv:"START:END" ~doc:"Register pair to lift (e.g. a_q0:r_q0).")

let fuzz_cmd =
  let run tele unit_kind width (start_dff, end_dff) budget =
    with_telemetry tele @@ fun () ->
    let target = target_of (unit_kind, width) in
    let fuzz = { Lift.default_fuzz_config with Lift.budget_cycles = budget } in
    let formal =
      Lift.lift_pair target ~start_dff ~end_dff ~violation:Fault.Setup_violation
    in
    let fuzzed =
      Lift.fuzz_pair ~fuzz target ~start_dff ~end_dff ~violation:Fault.Setup_violation
    in
    let show tag (r : Lift.pair_result) =
      Printf.printf "%-7s %s (%d cases%s)
" tag
        (Lift.classification_name r.Lift.classification)
        (List.length r.Lift.cases)
        (match r.Lift.cases with
        | tc :: _ -> Printf.sprintf ", first has %d ops" (Lift.steps tc)
        | [] -> "")
    in
    show "formal:" formal;
    show "fuzz:" fuzzed;
    0
  in
  let budget_arg =
    Arg.(value & opt int 2000 & info [ "budget" ] ~docv:"CYCLES" ~doc:"Fuzzing cycle budget.")
  in
  let term = Term.(const run $ telemetry_term $ unit_arg $ width_arg $ pair_arg $ budget_arg) in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Compare formal vs fuzzing-based test construction for one pair.")
    term

(* ---------- optimize ---------- *)

let optimize_cmd =
  let run tele unit_kind width verify =
    with_telemetry tele @@ fun () ->
    let target = target_of (unit_kind, width) in
    let nl = target.Lift.netlist in
    let opt, stats = Netlist_opt.optimize nl in
    Printf.printf "%d cells -> %d cells (%d folded, %d dead)
"
      stats.Netlist_opt.cells_before stats.Netlist_opt.cells_after stats.Netlist_opt.folded
      stats.Netlist_opt.dead_removed;
    if verify then begin
      match Formal.check_equivalence nl opt with
      | Formal.Equivalent -> print_endline "formally equivalent: PROVEN"
      | Formal.Different t ->
        print_endline "DIVERGES:";
        print_string (Formal.Trace.to_string t);
        exit 1
      | Formal.Bounded_equivalent k -> Printf.printf "equivalent within %d cycles (bounded)
" k
      | Formal.Equiv_timeout -> print_endline "verification timed out"
    end;
    0
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify" ] ~doc:"Prove equivalence with the formal checker.")
  in
  let term = Term.(const run $ telemetry_term $ unit_arg $ width_arg $ verify_arg) in
  Cmd.v (Cmd.info "optimize" ~doc:"Run the netlist optimizer on a unit (and optionally verify).") term

(* ---------- encode ---------- *)

let encode_cmd =
  let run unit_kind width margin mitigation =
    let report = workflow unit_kind width margin mitigation in
    match Rv32_encode.encode (Lift.suite_program report.Vega.suite) with
    | Ok words ->
      print_string (Rv32_encode.to_hex words);
      0
    | Error e ->
      prerr_endline e;
      1
  in
  let term = Term.(const run $ unit_arg $ width_arg $ margin_arg $ mitigation_arg) in
  Cmd.v
    (Cmd.info "encode" ~doc:"Emit the generated suite as RV32 machine code (readmemh hex).")
    term

(* ---------- lint ---------- *)

let lint_cmd =
  let selftest_arg =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:"Lint the built-in corpus of deliberately defective designs and verify every \
                diagnostic code fires.")
  in
  let unit_opt_arg =
    Arg.(value & opt (some unit_conv) None & info [ "unit"; "u" ] ~docv:"UNIT" ~doc:"Functional unit: alu or fpu.")
  in
  let run unit_kind width selftest =
    if selftest then begin
      let failures = ref 0 in
      List.iter
        (fun (code, design) ->
          let diags = Check.lint design in
          let hit = List.exists (fun (d : Check.diagnostic) -> d.Check.code = code) diags in
          let codes =
            List.sort_uniq compare (List.map (fun (d : Check.diagnostic) -> Check.code_id d.Check.code) diags)
          in
          Printf.printf "  %-5s %-16s %s (reported: %s)\n" (Check.code_id code)
            design.Netlist.Raw.r_name
            (if hit then "flagged" else "MISSED")
            (String.concat " " codes);
          if not hit then incr failures)
        Check.selftest_designs;
      if !failures = 0 then begin
        Printf.printf "lint selftest: all %d diagnostic codes fire\n"
          (List.length Check.selftest_designs);
        0
      end
      else begin
        Printf.printf "lint selftest: %d code(s) failed to fire\n" !failures;
        1
      end
    end
    else begin
      match unit_kind with
      | None ->
        prerr_endline "vega lint: either --unit or --selftest is required";
        2
      | Some u ->
        let target = target_of (u, width) in
        let nl = target.Lift.netlist in
        let diags = Check.lint_netlist nl in
        print_string (Check.render ~design:(Netlist.name nl) diags);
        if Check.errors diags = [] then 0 else 1
    end
  in
  let term = Term.(const run $ unit_opt_arg $ width_arg $ selftest_arg) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Structural lint of a unit netlist (or --selftest the diagnostic corpus); exits \
             non-zero on error-class diagnostics.")
    term

(* ---------- check ---------- *)

let check_cmd =
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the sanity mutation.")
  in
  let run tele unit_kind width seed =
    with_telemetry tele @@ fun () ->
    let target = target_of (unit_kind, width) in
    let nl = target.Lift.netlist in
    let failed = ref false in
    let step label ok detail =
      Printf.printf "  %-44s %s%s\n" label (if ok then "ok" else "FAIL")
        (if detail = "" then "" else ": " ^ detail);
      if not ok then failed := true
    in
    Printf.printf "static verification of %s\n" (Netlist.name nl);
    (* 1. structural lint *)
    let diags = Check.lint_netlist nl in
    step "lint (no error-class diagnostics)"
      (Check.errors diags = [])
      (Printf.sprintf "%d diagnostic(s)" (List.length diags));
    (* 2. optimizer output is CEC-equivalent *)
    let opt, stats = Netlist_opt.optimize nl in
    let v = Cec.check nl opt in
    step
      (Printf.sprintf "cec: optimized (%d -> %d cells)" stats.Netlist_opt.cells_before
         stats.Netlist_opt.cells_after)
      (v = Cec.Equivalent) (Cec.describe v);
    (* 3. fault instrumentation is inert while dormant *)
    (match Netlist.dffs nl with
    | x :: (_ :: _ as rest) ->
      let start_dff = (Netlist.cell nl x).Netlist.name in
      let end_dff = (Netlist.cell nl (List.nth rest (List.length rest - 1))).Netlist.name in
      let spec =
        {
          Fault.start_dff;
          end_dff;
          kind = Fault.Setup_violation;
          constant = Fault.C0;
          activation = Fault.Any_transition;
        }
      in
      let faulty = Fault.failing_netlist nl spec in
      let v = Cec.check ~free_inputs:true ~tie_low:(Fault.select_cells faulty) nl faulty in
      step
        (Printf.sprintf "cec: fault replica inert (%s)" (Fault.describe spec))
        (v = Cec.Equivalent) (Cec.describe v)
    | _ -> step "cec: fault replica inert" false "netlist has fewer than two registers");
    (* 4. a seeded mutation must be caught *)
    let mutant, desc = Check.mutate ~seed nl in
    (match Cec.check nl mutant with
    | Cec.Inequivalent cex -> step (Printf.sprintf "cec: mutation caught (%s)" desc) true cex.Cec.cex_site
    | v -> step (Printf.sprintf "cec: mutation caught (%s)" desc) false (Cec.describe v));
    (* 5. SCOAP testability summary *)
    print_string (Scoap.render ~limit:5 nl (Scoap.analyze nl));
    if !failed then begin
      print_endline "static verification: FAILED";
      1
    end
    else begin
      print_endline "static verification: PASSED";
      0
    end
  in
  let term = Term.(const run $ telemetry_term $ unit_arg $ width_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Full static-verification sweep of a unit: lint, optimizer CEC, fault-replica CEC, \
             seeded-mutation detection, SCOAP testability.")
    term

(* ---------- report ---------- *)

let report_cmd =
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced configuration.") in
  let run tele quick =
    with_telemetry tele @@ fun () ->
    let config = if quick then Experiments.quick_config else Experiments.default_config in
    let log s = Printf.eprintf "[vega] %s\n%!" s in
    print_string (Experiments.run_all ~config ~log ());
    0
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Regenerate every table and figure of the paper's evaluation.")
    Term.(const run $ telemetry_term $ quick_arg)

(* ---------- guard-campaign ---------- *)

let guard_campaign_cmd =
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"CI smoke configuration.") in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Machine RNG seed.")
  in
  let run tele quick seed checkpoint resume =
    with_telemetry tele @@ fun () ->
    let base = if quick then Experiments.quick_campaign else Experiments.default_campaign in
    let config = { base with Experiments.cg_seed = seed } in
    let log s = Printf.eprintf "[vega] %s\n%!" s in
    let opened =
      match checkpoint with
      | None -> Ok None
      | Some dir ->
        Result.map Option.some
          (Resilience.Checkpoint.open_dir ~resume ~dir
             ~digest:(Experiments.campaign_digest config) ())
    in
    match opened with
    | Error msg ->
      prerr_endline ("vega guard-campaign: " ^ msg);
      3
    | Ok checkpoint ->
      let rows = Experiments.campaign ~config ~log ?checkpoint () in
      print_string (Experiments.render_campaign rows);
      let s = Experiments.campaign_summary rows in
      if s.Experiments.cs_guarded_escapes > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "guard-campaign"
       ~doc:
         "Inject phase-2 fault specs mid-run under each recovery policy and tabulate; exits 1 \
          when any guarded run escapes.")
    Term.(const run $ telemetry_term $ quick_arg $ seed_arg $ checkpoint_arg $ resume_arg)

(* ---------- attack ---------- *)

let attack_cmd =
  let len_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "len" ] ~docv:"N" ~doc:"Operations per candidate stream.")
  in
  let iters_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "iters" ] ~docv:"N" ~doc:"Mutate/evaluate search iterations.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Search seed.")
  in
  let no_sat_arg =
    Arg.(value & flag & info [ "no-sat" ] ~doc:"Disable the SAT-derived hold patterns.")
  in
  let cells_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cells" ] ~docv:"C1,C2"
          ~doc:
            "Comma-separated victim cell instances (default: the combinational cells of the \
             worst fresh critical paths).")
  in
  let campaign_arg =
    Arg.(
      value & flag
      & info [ "campaign" ]
          ~doc:
            "Run the full adversarial wearout campaign on the ALU: stress search, \
             time-to-violation bisection against the nominal workload corner, canary \
             insertion (CEC-proved inert), and the guarded fault-injection comparison.")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"CI smoke campaign configuration.") in
  let run tele unit_kind width len iters seed no_sat cells campaign quick checkpoint resume =
    with_telemetry tele @@ fun () ->
    let override (base : Attack.config) =
      let base = { base with Attack.atk_sat_assist = base.Attack.atk_sat_assist && not no_sat } in
      let base = match seed with None -> base | Some s -> { base with Attack.atk_seed = s } in
      let base = match len with None -> base | Some l -> { base with Attack.atk_len = l } in
      match iters with None -> base | Some i -> { base with Attack.atk_iters = i }
    in
    let cells_of s = String.split_on_char ',' s in
    if not campaign then begin
      let target = target_of (unit_kind, width) in
      let cells =
        match cells with
        | None -> Attack.default_targets target.Lift.netlist
        | Some s -> cells_of s
      in
      let r = Attack.search ~config:(override Attack.default_config) target ~cells in
      print_string (Attack.render r);
      0
    end
    else begin
      let base =
        if quick then Experiments.quick_attack_campaign else Experiments.default_attack_campaign
      in
      let config =
        {
          base with
          Experiments.ak_width = width;
          ak_attack = override base.Experiments.ak_attack;
          ak_cells =
            (match cells with None -> base.Experiments.ak_cells | Some s -> cells_of s);
        }
      in
      let log s = Printf.eprintf "[vega] %s\n%!" s in
      let opened =
        match checkpoint with
        | None -> Ok None
        | Some dir ->
          Result.map Option.some
            (Resilience.Checkpoint.open_dir ~resume ~dir
               ~digest:(Experiments.attack_campaign_digest config) ())
      in
      match opened with
      | Error msg ->
        prerr_endline ("vega attack: " ^ msg);
        3
      | Ok checkpoint ->
        let report = Experiments.attack_campaign ~config ~log ?checkpoint () in
        print_string
          (Experiments.render_attack_campaign ~years_max:config.Experiments.ak_years_max report);
        let s = Experiments.attack_summary report.Experiments.ap_rows in
        let accelerated =
          match (report.Experiments.ap_ttv_attack, report.Experiments.ap_acceleration) with
          | None, _ -> false (* the attack never reached a violating corner *)
          | Some _, Some a -> a > 1.0
          | Some _, None -> true (* nominal corner clean at the horizon *)
        in
        if (not accelerated) || s.Experiments.as_canary_escapes > 0 then 1 else 0
    end
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Search for an adversarial wearout workload (maximal BTI stress duty on the worst \
          paths); with $(b,--campaign), also measure its time-to-violation acceleration and \
          the canary-guarded detection response.  Exits 1 when the campaign shows no \
          acceleration or a canary-guarded run escapes.")
    Term.(
      const run $ telemetry_term $ unit_arg $ width_arg $ len_arg $ iters_arg $ seed_arg
      $ no_sat_arg $ cells_arg $ campaign_arg $ quick_arg $ checkpoint_arg $ resume_arg)

(* ---------- monitors ---------- *)

let monitors_cmd =
  let count_arg =
    Arg.(
      value & opt int 2
      & info [ "count" ] ~docv:"N" ~doc:"Canary monitors to insert (worst paths first).")
  in
  let pessimism_arg =
    Arg.(
      value & opt float 1.25
      & info [ "pessimism" ] ~docv:"F"
          ~doc:
            "Aged-replica guardband: a path qualifies for a canary when its arrival scaled by \
             $(docv) exceeds the clock period.")
  in
  let run tele unit_kind width margin count pessimism =
    with_telemetry tele @@ fun () ->
    let target = target_of (unit_kind, width) in
    let nl = target.Lift.netlist in
    let timing = Sta.fresh_timing Cell.Library.c28 in
    let probe = Sta.analyze ~timing ~clock_period_ps:1e9 nl in
    let crit =
      List.fold_left
        (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
        0.0 probe.Sta.endpoint_slacks
    in
    let clock_period_ps = crit *. margin in
    Printf.printf "clock %.1f ps (margin %.3f over fresh critical path %.1f ps)\n" clock_period_ps
      margin crit;
    let paths = Canary.plan ~count ~pessimism nl ~timing ~clock_period_ps in
    if paths = [] then begin
      print_endline "no path qualifies for a canary at this corner (try a lower --margin)";
      1
    end
    else begin
      let monitored, canaries = Canary.insert nl paths in
      print_string (Canary.describe canaries);
      match Canary.verify ~original:nl monitored with
      | Ok () ->
        Printf.printf "verified: lint clean, CEC-proved inert, trip covers hold (%d canaries)\n"
          (List.length canaries);
        0
      | Error e ->
        print_endline e;
        print_endline "canary verification: FAILED";
        1
    end
  in
  Cmd.v
    (Cmd.info "monitors"
       ~doc:
         "Insert in-situ canary monitors (aged-replica paths with a trip comparator) into a \
          unit and prove them inert (lint, CEC, trip covers).  Exits 1 when no path qualifies \
          or verification fails.")
    Term.(
      const run $ telemetry_term $ unit_arg $ width_arg $ margin_arg $ count_arg $ pessimism_arg)

(* ---------- repair ---------- *)

let repair_cmd =
  let budget_arg =
    Arg.(
      value & opt int 64
      & info [ "budget" ] ~docv:"N" ~doc:"Maximum committed rewrites across all pairs.")
  in
  let area_frac_arg =
    Arg.(
      value & opt float 0.25
      & info [ "area-frac" ] ~docv:"F"
          ~doc:"Maximum live-area growth as a fraction of the original netlist's area.")
  in
  let pair_edits_arg =
    Arg.(
      value & opt int 8
      & info [ "pair-edits" ] ~docv:"N" ~doc:"Maximum committed rewrites per register pair.")
  in
  let approx_bound_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "approx-bound" ] ~docv:"RATE"
          ~doc:
            "Enable the bounded-error approximate rung: a constant tie is committed only when \
             the 64-lane random differential output error rate stays within $(docv).")
  in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED" ~doc:"Differential stimulus seed for approximate rewrites.")
  in
  let run tele unit_kind width margin years budget area_frac pair_edits approx_bound seed ck_dir
      resume =
    with_telemetry tele @@ fun () ->
    let target = target_of (unit_kind, width) in
    let config = { (phase1_of margin) with Vega.years } in
    let rcfg =
      {
        Repair.default_config with
        Repair.rp_max_rewrites = budget;
        rp_max_area_frac = area_frac;
        rp_max_pair_edits = pair_edits;
        rp_approx_bound = approx_bound;
        rp_seed = seed;
        rp_rungs =
          (Repair.default_config.Repair.rp_rungs
          @ match approx_bound with Some _ -> [ Repair.Approx ] | None -> []);
      }
    in
    (* same clock derivation as phase 1, so the checkpoint digest is
       computable before the (expensive) profiling run *)
    let clock_period_ps =
      let timing =
        Sta.fresh_timing ~derate:config.Vega.derate ~clock_tree:config.Vega.clock_tree
          Cell.Library.c28
      in
      let probe = Sta.analyze ~timing ~clock_period_ps:1e9 target.Lift.netlist in
      let crit =
        List.fold_left
          (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
          0.0 probe.Sta.endpoint_slacks
      in
      crit *. margin
    in
    let opened =
      match ck_dir with
      | None -> Ok None
      | Some dir ->
        let digest = Repair.digest rcfg target.Lift.netlist ~clock_period_ps ~years in
        Result.map Option.some (Resilience.Checkpoint.open_dir ~resume ~dir ~digest ())
    in
    match opened with
    | Error msg ->
      prerr_endline ("vega repair: " ^ msg);
      3
    | Ok checkpoint ->
      (* progress goes to stderr: stdout is the diffable report *)
      let log msg = Printf.eprintf "[vega] %s\n%!" msg in
      let report =
        Vega.repair ~config ~repair_config:rcfg ?checkpoint ~log target
          ~workload:Vega.run_minver_workload
      in
      print_string (Vega.render_repair report);
      if report.Vega.rr_violating_after > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Repair the aging-violating register pairs of a unit with the verified rewrite \
          ladder (gate strengthening, duplication + voting, SP-rebalancing restructure, \
          optional bounded-error approximation): every exact rewrite is CEC-proved before \
          commit and the repaired netlist is re-scored through aged STA and Spbound.  Exits 1 \
          when violating pairs remain.")
    Term.(
      const run $ telemetry_term $ unit_arg $ width_arg $ margin_arg $ years_arg $ budget_arg
      $ area_frac_arg $ pair_edits_arg $ approx_bound_arg $ seed_arg $ checkpoint_arg
      $ resume_arg)

(* ---------- fleet ---------- *)

let fleet_cmd =
  let devices_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "devices" ] ~docv:"N" ~doc:"Population size (devices evaluated).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains of the fleet pool.  Results are bit-identical for any $(docv): \
             per-device seeds derive from the master seed and the device key, never from \
             scheduling.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed: corner draws and per-device item seeds.")
  in
  let specs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "specs" ] ~docv:"N" ~doc:"Violating pairs lifted into the deployed suite.")
  in
  let poison_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "poison" ] ~docv:"ID,ID"
          ~doc:
            "Force these device ids to fail persistently — the quarantine drill.  The run \
             completes (exit 1), the devices report QUARANTINED.")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"CI smoke campaign configuration.") in
  let fleet_width_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "width" ] ~docv:"BITS"
          ~doc:"ALU datapath width (default: the campaign preset's, 16 or 8 with $(b,--quick)).")
  in
  let fleet_margin_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "margin" ] ~docv:"M"
          ~doc:"Clock guardband of the shared analysis (default: the campaign preset's).")
  in
  let run tele quick width devices domains seed specs margin engine poison checkpoint resume =
    with_telemetry tele @@ fun () ->
    let base = if quick then Experiments.quick_fleet else Experiments.default_fleet in
    let base = { base with Experiments.fd_engine = engine } in
    let base =
      match width with None -> base | Some w -> { base with Experiments.fd_width = w }
    in
    let base =
      match margin with None -> base | Some m -> { base with Experiments.fd_margin = m }
    in
    let base =
      match devices with None -> base | Some n -> { base with Experiments.fd_devices = n }
    in
    let base = match seed with None -> base | Some s -> { base with Experiments.fd_seed = s } in
    let base = match specs with None -> base | Some n -> { base with Experiments.fd_specs = n } in
    let config =
      match poison with
      | None -> base
      | Some s ->
        {
          base with
          Experiments.fd_poison = List.map int_of_string (String.split_on_char ',' s);
        }
    in
    let log s = Printf.eprintf "[vega] %s\n%!" s in
    let opened =
      match checkpoint with
      | None -> Ok None
      | Some dir ->
        Result.map Option.some
          (Resilience.Checkpoint.open_sharded ~resume ~dir
             ~digest:(Experiments.fleet_digest config) ~shards:(max 1 domains) ())
    in
    match opened with
    | Error msg ->
      prerr_endline ("vega fleet: " ^ msg);
      3
    | Ok checkpoint ->
      let report = Experiments.fleet_campaign ~config ~domains ~log ?checkpoint () in
      print_string (Experiments.render_fleet report);
      (* pool health is wall-clock-dependent: stderr only, never in the
         diffable stdout *)
      let st = report.Experiments.fe_stats in
      Printf.eprintf
        "[vega] pool: %d domain(s), %d item(s): %d completed, %d retried, %d timed-out, %d \
         quarantined, %d from checkpoint; %d steal(s), %d re-dispatch(es), %d retry sleep(s)\n%!"
        st.Fleet.st_domains st.Fleet.st_items st.Fleet.st_completed st.Fleet.st_retried
        st.Fleet.st_timed_out st.Fleet.st_quarantined st.Fleet.st_checkpoint_hits
        st.Fleet.st_steals st.Fleet.st_redispatches st.Fleet.st_retry_sleeps;
      if st.Fleet.st_quarantined > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a device population (per-device temperature/Vdd/workload aging corners) through \
          the fault-tolerant domain pool and tabulate the population SDC-escape and \
          detection-latency curves vs lifetime.  Stdout is bit-identical for any \
          $(b,--domains) count and across kill/resume; exits 1 when any device was \
          quarantined.")
    Term.(
      const run $ telemetry_term $ quick_arg $ fleet_width_arg $ devices_arg $ domains_arg
      $ seed_arg $ specs_arg $ fleet_margin_arg $ engine_arg $ poison_arg $ checkpoint_arg
      $ resume_arg)

let () =
  let doc = "proactive runtime detection of aging-related silent data corruptions" in
  let info = Cmd.info "vega" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            analyze_cmd; lift_cmd; run_cmd; emit_c_cmd; verilog_cmd; fuzz_cmd; optimize_cmd;
            encode_cmd; lint_cmd; check_cmd; report_cmd; guard_campaign_cmd; attack_cmd;
            monitors_cmd; repair_cmd; fleet_cmd;
          ]))
