(* Aging analysis of a multiply-accumulate unit: state feedback.

     dune exec examples/mac_accumulator.exe

   The ALU and FPU of the main evaluation are feed-forward pipelines.  A
   MAC unit is the classic counterexample: its accumulator register feeds
   itself (acc' = clear ? 0 : acc + a*b), which exercises the parts of the
   workflow the pipelines never reach:

   - STA reports accumulator self-paths (acc bit -> acc bit), whose
     failure model is the always-metastable special case of Section 3.3.1;
   - the formal engine cannot claim completeness over the feedback loop,
     so unreachable covers come back as Bounded_unreachable, not proofs;
   - detection still works: a software test drives the MAC and checks the
     accumulated sum. *)

let build_mac () =
  let c = Hw.create "mac8" in
  let a_in = Hw.input c "a" 8 in
  let b_in = Hw.input c "b" 8 in
  let clear_in = Hw.input c "clear" 1 in
  (* input rank *)
  let a = Hw.reg_vec c ~prefix:"a_q" a_in in
  let b = Hw.reg_vec c ~prefix:"b_q" b_in in
  let clear = Hw.reg c ~name:"clr_q" clear_in.(0) in
  (* 8x8 -> 16 array multiplier *)
  let zeros n = Array.init n (fun _ -> Hw.tie0 c) in
  let product = ref (zeros 16) in
  Array.iteri
    (fun i bbit ->
      let row =
        Array.init 16 (fun j -> if j >= i && j - i < 8 then Hw.and_ c a.(j - i) bbit else Hw.tie0 c)
      in
      product := fst (Hw.ripple_add c !product row ~cin:(Hw.tie0 c)))
    b;
  (* accumulator with feedback: registers are created on placeholder nets
     and rewired to their own next-state logic *)
  let bld = Hw.builder c in
  let placeholder = Array.init 16 (fun _ -> Hw.tie0 c) in
  let acc_ids =
    Array.mapi
      (fun i d ->
        Netlist.Builder.add_cell_with_id ~name:(Printf.sprintf "acc_q%d" i) ~clock_domain:0 bld
          Cell.Kind.Dff [| d |])
      placeholder
  in
  let acc = Array.map snd acc_ids in
  let sum, _ = Hw.ripple_add c acc !product ~cin:(Hw.tie0 c) in
  let next = Hw.mux_vec c ~sel:clear ~if0:sum ~if1:(Hw.const_vec c ~width:16 0) in
  Array.iteri
    (fun i (id, _) -> Netlist.Builder.rewire_input bld ~cell_id:id ~pin:0 next.(i))
    acc_ids;
  Hw.output c "acc" acc;
  Hw.finish c

let bv w v = Bitvec.create ~width:w v

let run_mac nl pairs =
  let sim = Sim.create nl in
  Sim.set_input_bit sim "clear" 0 true;
  Sim.step sim;
  Sim.step sim;
  Sim.set_input_bit sim "clear" 0 false;
  List.iter
    (fun (a, b) ->
      Sim.set_input sim "a" (bv 8 a);
      Sim.set_input sim "b" (bv 8 b);
      Sim.step sim)
    pairs;
  (* flush the two-stage latency *)
  Sim.set_input sim "a" (bv 8 0);
  Sim.set_input sim "b" (bv 8 0);
  Sim.step sim;
  Sim.step sim;
  Bitvec.to_int (Sim.output sim "acc")

let () =
  print_endline "=== The MAC unit ===";
  let nl = build_mac () in
  Printf.printf "mac8: %d cells, %d DFFs, sequential depth: %s\n" (Netlist.num_cells nl)
    (List.length (Netlist.dffs nl))
    (match Formal.sequential_depth nl with
    | Some d -> string_of_int d
    | None -> "none (state feedback)");
  let pairs = [ (200, 200); (100, 30); (7, 9) ] in
  Printf.printf "healthy: sum of products = %d (expected %d)\n" (run_mac nl pairs)
    (List.fold_left (fun acc (a, b) -> acc + (a * b)) 0 pairs);

  print_endline "\n=== Aging-aware STA: the accumulator loop is the critical path ===";
  let sim = Sim.create ~profile:true nl in
  Sim.run_random sim ~cycles:3000;
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  let tree = Clock_tree.single_domain in
  let fresh = Sta.fresh_timing ~clock_tree:tree Cell.Library.c28 in
  let probe = Sta.analyze ~timing:fresh ~clock_period_ps:1e9 nl in
  let crit =
    List.fold_left
      (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
      0.0 probe.Sta.endpoint_slacks
  in
  let period = crit *. 1.005 in
  let aged =
    Sta.aged_timing ~clock_tree:tree ~sp_of_net:(fun n -> Sim.sp sim n) ~years:10.0 aglib
  in
  let viol = Sta.violating_pairs ~timing:aged ~clock_period_ps:period nl in
  Printf.printf "clock %.0f ps; %d violating register pairs after 10 years:\n" period
    (List.length viol);
  List.iteri
    (fun i (s, e, c, sl) ->
      if i < 6 then
        Printf.printf "  %-8s -> %-8s %s (%.1f ps)%s\n"
          (Sta.describe_startpoint nl s) (Sta.describe_endpoint nl e)
          (match c with Sta.Setup -> "setup" | Sta.Hold -> "hold")
          sl
          (match (s, e) with
          | Sta.From_dff a, Sta.At_dff b when a = b -> "   <- self-loop!"
          | _ -> ""))
    viol;

  print_endline "\n=== The self-loop failure model: always metastable ===";
  (* the accumulator's self-paths skip the multiplier, so they are not the
     first to violate - but they exist, and further aging (or a faster
     clock) reaches them; take the tightest one from the exact pair
     analysis *)
  let self_pair =
    Sta.endpoint_pairs ~timing:aged ~clock_period_ps:period nl
    |> List.filter_map (fun (s, e, c, sl) ->
           match (s, e, c) with
           | Sta.From_dff a, Sta.At_dff b, Sta.Setup when a = b ->
             Some ((Netlist.cell nl a).Netlist.name, sl)
           | _ -> None)
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
    |> function
    | [] -> None
    | (reg, slack) :: _ ->
      Printf.printf "tightest accumulator self-path: %s -> %s, setup slack %.1f ps\n" reg reg
        slack;
      Some reg
  in
  (match self_pair with
  | None -> print_endline "(no self-loop pair in this design)"
  | Some reg ->
    let spec =
      {
        Fault.start_dff = reg;
        end_dff = reg;
        kind = Fault.Setup_violation;
        constant = Fault.C0;
        activation = Fault.Any_transition;
      }
    in
    Printf.printf "injecting %s: the bit can never settle, Eq. (2) degenerates to constant C\n"
      (Fault.describe spec);
    let faulty = Fault.failing_netlist nl spec in
    let got = run_mac faulty pairs and want = run_mac nl pairs in
    Printf.printf "faulty MAC: %d vs healthy %d%s\n" got want
      (if got <> want then "  <- silently wrong" else "");
    (* formal status over the feedback loop *)
    let inst = Fault.instrument_shadow nl spec in
    (match
       Formal.check_cover ~max_cycles:6 inst.Fault.netlist ~cover:inst.Fault.cover
     with
    | Formal.Trace_found t ->
      Printf.printf "BMC found a %d-cycle witness that the fault is observable\n"
        t.Formal.Trace.cycles
    | Formal.Bounded_unreachable k ->
      Printf.printf "no witness within %d cycles - with feedback this is NOT a proof (no UR claim)\n" k
    | Formal.Unreachable -> print_endline "unexpected: proof over a feedback loop"
    | Formal.Timeout _ -> print_endline "formal budget exhausted"));

  print_endline "\n=== A software self-test for the MAC ===";
  let test nl =
    (* deterministic MAC sweep with a golden checksum *)
    let stimulus =
      (255, 255) :: List.init 11 (fun k -> (((k * 37) + 5) land 0xFF, ((k * 91) + 3) land 0xFF))
    in
    let expect =
      List.fold_left (fun acc (a, b) -> (acc + (a * b)) land 0xFFFF) 0 stimulus
    in
    run_mac nl stimulus = expect
  in
  Printf.printf "healthy MAC passes: %b\n" (test nl);
  (match self_pair with
  | Some reg ->
    let faulty =
      Fault.failing_netlist nl
        {
          Fault.start_dff = reg;
          end_dff = reg;
          kind = Fault.Setup_violation;
          constant = Fault.C0;
          activation = Fault.Any_transition;
        }
    in
    let pass = test faulty in
    Printf.printf "aged MAC passes: %b%s\n" pass
      (if pass then "" else "  <- caught by the routine self-test")
  | None -> ());
  print_endline "\ndone."
