(* The closed-loop runtime guard on a real kernel.

     dune exec examples/guarded_app.exe

   A crc kernel runs on a netlist-backed ALU that develops an aging fault
   mid-run (the fault is *not* present at reset — [Guard.Injector] swaps a
   fault-instrumented replica in once a scheduled instruction count is
   reached).  Four scenarios:

   - the golden run (functional backend, fault-free by construction),
   - the unguarded run: the kernel exits cleanly with a corrupt checksum —
     a silent data corruption that nothing notices,
   - the guarded run with failover: interleaved aging tests catch the
     fault and retire the unit onto its golden backend,
   - the guarded run with checkpoint/rollback: execution rewinds to the
     last verified checkpoint and the final checksum matches the golden
     run exactly. *)

let width = 16
let fmt = Fpu_format.binary16

let spec =
  {
    Fault.start_dff = "a_q0";
    end_dff = "r_q0";
    kind = Fault.Setup_violation;
    constant = Fault.C0;
    activation = Fault.Any_transition;
  }

let () =
  let target = Lift.alu_target ~width () in
  let crc = Workload.find "crc" in
  let prog = Minic.assemble (Minic.compile ~width ~fmt crc.Workload.program) in

  (* Phase two builds the aging-test suite for the injected pair. *)
  let r =
    Lift.lift_pair target ~start_dff:spec.Fault.start_dff ~end_dff:spec.Fault.end_dff
      ~violation:spec.Fault.kind
  in
  let suite = Lift.suite_of_results target.Lift.kind [ r ] in
  Printf.printf "aging-test suite for %s: %d cases\n\n" (Fault.describe spec)
    (List.length suite.Lift.suite_cases);

  print_endline "=== Golden run (functional backend) ===";
  let golden_m = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional () in
  Machine.reset golden_m;
  (match Machine.run ~max_instructions:1_000_000 golden_m prog with
  | Machine.Exited 0 -> ()
  | o -> Format.printf "unexpected: %a@." Machine.pp_outcome o);
  let golden_sum = Bitvec.to_int (Machine.mem golden_m Workload.checksum_address) in
  let golden_instrs = Machine.instructions_retired golden_m in
  Printf.printf "  checksum %#x after %d instructions\n\n" golden_sum golden_instrs;

  let onset = golden_instrs / 5 in
  let netlist_machine () =
    let m =
      Machine.create ~alu:(Machine.Alu_netlist target.Lift.netlist) ~fpu:Machine.Fpu_functional ()
    in
    Machine.reset m;
    let inj =
      Guard.Injector.create ~machine:m ~slot:Guard.Injector.Alu_slot ~spec
        (Guard.Injector.permanent onset)
    in
    (m, inj)
  in

  Printf.printf "=== Unguarded run (fault onset at instruction %d) ===\n" onset;
  let m, inj = netlist_machine () in
  (match
     Machine.run ~max_instructions:1_000_000 ~on_instr:(fun _ -> Guard.Injector.tick inj) m prog
   with
  | Machine.Exited 0 ->
    let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
    Printf.printf "  exited cleanly with checksum %#x — %s\n\n" sum
      (if sum = golden_sum then "correct (fault dormant)"
       else "SILENTLY CORRUPT: nothing detected this")
  | o -> Format.printf "  %a@.@." Machine.pp_outcome o);

  let guarded policy =
    let m, inj = netlist_machine () in
    let config =
      {
        Guard.Monitor.default_config with
        Guard.Monitor.cadence = 100;
        max_cadence = 2_000;
        policy;
        max_instructions = 1_000_000;
      }
    in
    let report = Guard.Monitor.run ~config ~injector:inj ~suite m prog in
    print_string (Guard.Monitor.render report);
    let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
    Printf.printf "  final checksum %#x (%s)\n\n" sum
      (if sum = golden_sum then "matches golden" else "corrupt")
  in

  print_endline "=== Guarded run: failover policy ===";
  guarded Guard.Monitor.Failover;

  print_endline "=== Guarded run: checkpoint/rollback policy ===";
  guarded
    (Guard.Monitor.Rollback_retry { checkpoint_every = 2_000; max_retries = 3 })
