(* Tests for the adversarial wearout search: target selection, per-seed
   determinism, the skew-never-negative invariant, input validation, and
   the time-to-violation acceleration on alu8. *)

let alu8 = Lift.alu_target ~width:8 ()
let nl = alu8.Lift.netlist
let aglib = Aging.Timing_library.build Cell.Library.c28
let targets = Attack.default_targets ~n:2 nl

let small_config =
  { Attack.default_config with Attack.atk_len = 16; atk_iters = 8 }

let worst_arrival timing =
  let probe = Sta.analyze ~timing ~clock_period_ps:1e9 nl in
  List.fold_left
    (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
    0.0 probe.Sta.endpoint_slacks

let test_default_targets () =
  Alcotest.(check bool) "found targets" true (targets <> []);
  Alcotest.(check bool) "at most n" true (List.length targets <= 2);
  (* every returned name resolves in the netlist *)
  List.iter (fun c -> ignore (Netlist.find_cell nl c)) targets

let test_search_basics () =
  let r = Attack.search ~config:small_config alu8 ~cells:targets in
  Alcotest.(check bool) "skew non-negative" true (Attack.skew r >= 0.0);
  Alcotest.(check int) "cell list echoes targets" (List.length targets)
    (List.length r.Attack.atk_cells);
  Alcotest.(check bool) "evals counted" true (r.Attack.atk_evals > 0);
  Alcotest.(check int) "winning stream has the configured length" small_config.Attack.atk_len
    (Array.length r.Attack.atk_ops);
  Alcotest.(check bool) "profile carries samples" true (r.Attack.atk_samples > 0);
  (* the report is the golden-diffed artifact; sanity-check its header *)
  let report = Attack.render r in
  Alcotest.(check bool) "render mentions the search" true
    (String.length report > 0
    && String.sub report 0 26 = "Adversarial stress search:")

let test_search_deterministic () =
  let a = Attack.search ~config:small_config alu8 ~cells:targets in
  let b = Attack.search ~config:small_config alu8 ~cells:targets in
  Alcotest.(check string) "same report" (Attack.render a) (Attack.render b);
  Alcotest.(check bool) "same winning stream" true (a.Attack.atk_ops = b.Attack.atk_ops);
  Alcotest.(check int) "same eval count" a.Attack.atk_evals b.Attack.atk_evals

let test_validation () =
  Alcotest.check_raises "empty cell list"
    (Invalid_argument "Attack.search: no target cells") (fun () ->
      ignore (Attack.search alu8 ~cells:[]));
  Alcotest.check_raises "zero-length stream"
    (Invalid_argument "Attack.search: stream length must be positive") (fun () ->
      ignore
        (Attack.search ~config:{ small_config with Attack.atk_len = 0 } alu8 ~cells:targets));
  Alcotest.check_raises "unknown cell"
    (Invalid_argument
       (Printf.sprintf "Attack.search: no cell named _nosuch in %s" (Netlist.name nl)))
    (fun () -> ignore (Attack.search alu8 ~cells:[ "_nosuch" ]))

let test_workload_program () =
  let r = Attack.search ~config:small_config alu8 ~cells:targets in
  let prog = Attack.workload_program alu8.Lift.kind r.Attack.atk_ops in
  (* assemble already validated it; each ALU op expands to 3 instructions *)
  Alcotest.(check int) "program length"
    ((3 * small_config.Attack.atk_len) + 1)
    (Array.length prog.Isa.instrs)

(* The acceptance criterion: on alu8 the attack stream's aging corner
   reaches its first timing violation sooner than the nominal (random
   workload) corner — acceleration factor > 1. *)
let test_ttv_acceleration () =
  let config = { Attack.default_config with Attack.atk_len = 32; atk_iters = 16 } in
  let cells = Attack.default_targets nl in
  let r = Attack.search ~config alu8 ~cells in
  let base_sp =
    match
      Vega.replay_sp alu8
        (Testgen.random_unit_ops ~seed:config.Attack.atk_seed ~len:config.Attack.atk_len
           alu8.Lift.kind)
    with
    | Some (_, sp) -> sp
    | None -> Alcotest.fail "baseline replay failed"
  in
  let fresh_crit = worst_arrival (Sta.fresh_timing Cell.Library.c28) in
  let att30 =
    worst_arrival (Sta.aged_timing ~sp_of_net:r.Attack.atk_sp_of_net ~years:30.0 aglib)
  in
  Alcotest.(check bool) "attack corner ages the unit" true (att30 > fresh_crit);
  (* a clock that the fresh design meets but the 30-year attack corner
     misses: the attack TTV is guaranteed finite *)
  let clock_period_ps = 0.5 *. (fresh_crit +. att30) in
  let ttv sp =
    Attack.time_to_violation
      ~timing_of_years:(fun y -> Sta.aged_timing ~sp_of_net:sp ~years:y aglib)
      ~clock_period_ps nl
  in
  match ttv r.Attack.atk_sp_of_net with
  | None -> Alcotest.fail "attack corner never violates within the bisection horizon"
  | Some att -> (
    Alcotest.(check bool) "fresh design meets the clock" true (att > 0.0);
    match ttv base_sp with
    | None -> () (* nominal corner never violates: unbounded acceleration *)
    | Some nom ->
      Alcotest.(check bool)
        (Printf.sprintf "attack accelerates TTV (nominal %.2fy vs attack %.2fy)" nom att)
        true (att < nom))

let prop_skew_and_determinism =
  QCheck.Test.make ~count:8 ~name:"attack skew never negative, per-seed deterministic"
    QCheck.(int_bound 1000)
    (fun seed ->
      let config =
        {
          small_config with
          Attack.atk_seed = seed;
          atk_iters = 4;
          atk_sat_assist = false;
        }
      in
      let a = Attack.search ~config alu8 ~cells:targets in
      let b = Attack.search ~config alu8 ~cells:targets in
      Attack.skew a >= 0.0 && Attack.render a = Attack.render b)

let () =
  Alcotest.run "attack"
    [
      ( "search",
        [
          Alcotest.test_case "default targets" `Quick test_default_targets;
          Alcotest.test_case "basics" `Quick test_search_basics;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "workload program" `Quick test_workload_program;
          Alcotest.test_case "ttv acceleration" `Quick test_ttv_acceleration;
          QCheck_alcotest.to_alcotest prop_skew_and_determinism;
        ] );
    ]
