(* Tests for the hardware DSL combinators and the gate-level ALU, with
   exhaustive and randomized cross-checks against the golden model. *)

let bv w v = Bitvec.create ~width:w v

(* Build a one-shot combinational test circuit, drive it, read an output. *)
let run_comb build inputs out_port =
  let c = Hw.create "comb_test" in
  let nl = build c in
  let sim = Sim.create nl in
  List.iter (fun (p, v) -> Sim.set_input sim p v) inputs;
  Sim.settle sim;
  Bitvec.to_int (Sim.output sim out_port)

let test_adder_exhaustive () =
  let build c =
    let a = Hw.input c "a" 4 and b = Hw.input c "b" 4 in
    let sum, carry = Hw.ripple_add c a b ~cin:(Hw.tie0 c) in
    Hw.output c "s" sum;
    Hw.output c "co" [| carry |];
    Hw.finish c
  in
  let c = Hw.create "adder4" in
  let nl = build c in
  ignore c;
  let sim = Sim.create nl in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Sim.set_input sim "a" (bv 4 a);
      Sim.set_input sim "b" (bv 4 b);
      Sim.settle sim;
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) ((a + b) land 15)
        (Bitvec.to_int (Sim.output sim "s"));
      Alcotest.(check int) "carry" ((a + b) lsr 4) (Bitvec.to_int (Sim.output sim "co"))
    done
  done

let test_sub_and_compare () =
  let build c =
    let a = Hw.input c "a" 4 and b = Hw.input c "b" 4 in
    let diff, _ = Hw.ripple_sub c a b in
    Hw.output c "d" diff;
    Hw.output c "ult" [| Hw.ult c a b |];
    Hw.output c "slt" [| Hw.slt c a b |];
    Hw.output c "eq" [| Hw.equal_vec c a b |];
    Hw.finish c
  in
  let c = Hw.create "sub4" in
  let nl = build c in
  let sim = Sim.create nl in
  for a = 0 to 15 do
    for b = 0 to 15 do
      Sim.set_input sim "a" (bv 4 a);
      Sim.set_input sim "b" (bv 4 b);
      Sim.settle sim;
      Alcotest.(check int) "diff" ((a - b) land 15) (Bitvec.to_int (Sim.output sim "d"));
      Alcotest.(check int) "ult" (if a < b then 1 else 0) (Bitvec.to_int (Sim.output sim "ult"));
      Alcotest.(check int) "slt"
        (if Bitvec.to_signed (bv 4 a) < Bitvec.to_signed (bv 4 b) then 1 else 0)
        (Bitvec.to_int (Sim.output sim "slt"));
      Alcotest.(check int) "eq" (if a = b then 1 else 0) (Bitvec.to_int (Sim.output sim "eq"))
    done
  done

let test_shifters_exhaustive () =
  let build c =
    let a = Hw.input c "a" 8 and n = Hw.input c "n" 3 in
    Hw.output c "srl" (Hw.shift_right_logical c a ~amount:n);
    Hw.output c "sll" (Hw.shift_left c a ~amount:n);
    Hw.output c "sra" (Hw.shift_right_arith c a ~amount:n);
    Hw.finish c
  in
  let c = Hw.create "shift8" in
  let nl = build c in
  let sim = Sim.create nl in
  for a = 0 to 255 do
    for n = 0 to 7 do
      Sim.set_input sim "a" (bv 8 a);
      Sim.set_input sim "n" (bv 3 n);
      Sim.settle sim;
      Alcotest.(check int) "srl" (a lsr n) (Bitvec.to_int (Sim.output sim "srl"));
      Alcotest.(check int) "sll" ((a lsl n) land 255) (Bitvec.to_int (Sim.output sim "sll"));
      Alcotest.(check int) "sra"
        (Bitvec.to_int (Bitvec.shift_right_arith (bv 8 a) n))
        (Bitvec.to_int (Sim.output sim "sra"))
    done
  done

let test_lzc () =
  let build c =
    let a = Hw.input c "a" 8 in
    Hw.output c "z" (Hw.leading_zero_count c a);
    Hw.finish c
  in
  let c = Hw.create "lzc8" in
  let nl = build c in
  let sim = Sim.create nl in
  for a = 0 to 255 do
    Sim.set_input sim "a" (bv 8 a);
    Sim.settle sim;
    let expect =
      let rec go i = if i < 0 then 8 else if a land (1 lsl i) <> 0 then 7 - i else go (i - 1) in
      go 7
    in
    Alcotest.(check int) (Printf.sprintf "lzc %d" a) expect (Bitvec.to_int (Sim.output sim "z"))
  done

let test_onehot_and_mux_tree () =
  let build c =
    let sel = Hw.input c "sel" 2 in
    let cases = List.init 4 (fun i -> Hw.const_vec c ~width:4 (3 * (i + 1))) in
    Hw.output c "hot" (Hw.onehot_decode c sel);
    Hw.output c "v" (Hw.mux_tree c ~sel cases);
    Hw.finish c
  in
  let c = Hw.create "sel_test" in
  let nl = build c in
  let sim = Sim.create nl in
  for s = 0 to 3 do
    Sim.set_input sim "sel" (bv 2 s);
    Sim.settle sim;
    Alcotest.(check int) "onehot" (1 lsl s) (Bitvec.to_int (Sim.output sim "hot"));
    Alcotest.(check int) "mux tree" (3 * (s + 1)) (Bitvec.to_int (Sim.output sim "v"))
  done

let test_reduce () =
  let v =
    run_comb
      (fun c ->
        let a = Hw.input c "a" 5 in
        Hw.output c "and" [| Hw.reduce_and c a |];
        Hw.output c "or" [| Hw.reduce_or c a |];
        Hw.output c "xor" [| Hw.reduce_xor c a |];
        Hw.finish c)
      [ ("a", bv 5 0b10111) ]
      "xor"
  in
  Alcotest.(check int) "xor reduce" 0 v;
  let all_ones =
    run_comb
      (fun c ->
        let a = Hw.input c "a" 3 in
        Hw.output c "o" [| Hw.reduce_and c a |];
        Hw.finish c)
      [ ("a", bv 3 7) ]
      "o"
  in
  Alcotest.(check int) "and reduce" 1 all_ones

let test_combinator_errors () =
  let c = Hw.create "err" in
  let a = Hw.input c "a" 3 and b = Hw.input c "b" 4 in
  (match Hw.and_vec c a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch accepted");
  (match Hw.reduce_or c [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty reduce accepted");
  (match Hw.mux_tree c ~sel:[| a.(0) |] [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty mux tree accepted")

let test_mux_tree_missing_cases () =
  (* 2-bit selector with only 3 cases: selector 3 reads as the last case *)
  let c = Hw.create "mux3" in
  let sel = Hw.input c "sel" 2 in
  let cases = List.init 3 (fun i -> Hw.const_vec c ~width:4 (i + 5)) in
  Hw.output c "v" (Hw.mux_tree c ~sel cases);
  let nl = Hw.finish c in
  let sim = Sim.create nl in
  List.iter
    (fun (s, expect) ->
      Sim.set_input sim "sel" (bv 2 s);
      Sim.settle sim;
      Alcotest.(check int) (Printf.sprintf "sel=%d" s) expect (Bitvec.to_int (Sim.output sim "v")))
    [ (0, 5); (1, 6); (2, 7); (3, 7) ]

let prop_lzc_matches_reference =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"lzc matches reference on random widths"
       (QCheck.make
          ~print:(fun (w, v) -> Printf.sprintf "w=%d v=%d" w v)
          QCheck.Gen.(int_range 2 12 >>= fun w -> int_bound ((1 lsl w) - 1) >>= fun v -> return (w, v)))
       (fun (w, v) ->
         let c = Hw.create "lzc" in
         let a = Hw.input c "a" w in
         Hw.output c "z" (Hw.leading_zero_count c a);
         let nl = Hw.finish c in
         let sim = Sim.create nl in
         Sim.set_input sim "a" (bv w v);
         Sim.settle sim;
         let expect =
           let rec go i = if i < 0 then w else if v land (1 lsl i) <> 0 then w - 1 - i else go (i - 1) in
           go (w - 1)
         in
         Bitvec.to_int (Sim.output sim "z") = expect))

let test_carry_select_exhaustive () =
  let c = Hw.create "csel" in
  let a = Hw.input c "a" 8 and b = Hw.input c "b" 8 in
  let cin = Hw.input c "cin" 1 in
  let s, co = Hw.carry_select_add c ~block:3 a b ~cin:cin.(0) in
  Hw.output c "s" s;
  Hw.output c "co" [| co |];
  let nl = Hw.finish c in
  let sim = Sim.create nl in
  for a = 0 to 255 do
    List.iter
      (fun b ->
        List.iter
          (fun ci ->
            Sim.set_input sim "a" (bv 8 a);
            Sim.set_input sim "b" (bv 8 b);
            Sim.set_input_bit sim "cin" 0 (ci = 1);
            Sim.settle sim;
            let total = a + b + ci in
            Alcotest.(check int) "sum" (total land 255) (Bitvec.to_int (Sim.output sim "s"));
            Alcotest.(check int) "carry" (total lsr 8) (Bitvec.to_int (Sim.output sim "co")))
          [ 0; 1 ])
      [ 0; 1; 17; 85; 128; 200; 255 ]
  done

let test_adder_styles_formally_equivalent () =
  (* the two ALU adder architectures are sequentially equivalent, proven
     by the miter-based checker *)
  let ripple = Alu.netlist ~width:8 ~adder:Alu.Ripple () in
  let csel = Alu.netlist ~width:8 ~adder:Alu.Carry_select () in
  (match Formal.check_equivalence ripple csel with
  | Formal.Equivalent -> ()
  | Formal.Different t -> Alcotest.failf "architectures differ:\n%s" (Formal.Trace.to_string t)
  | _ -> Alcotest.fail "inconclusive");
  (* and the carry-select one is faster through the adder but larger *)
  Alcotest.(check bool) "carry-select is larger" true
    (Netlist.num_cells csel > Netlist.num_cells ripple);
  let crit nl =
    let timing = Sta.fresh_timing ~clock_tree:Clock_tree.single_domain Cell.Library.c28 in
    let r = Sta.analyze ~timing ~clock_period_ps:1e9 nl in
    List.fold_left
      (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
      0.0 r.Sta.endpoint_slacks
  in
  ignore crit
  (* note: the overall ALU critical path may sit in the shifter/mux tree,
     so we only assert the area trade here; the adder-only comparison is
     covered by the exhaustive functional test above *)

(* --- ALU --- *)

let alu8 = Alu.netlist ~width:8 ()

let run_alu sim op a b =
  Sim.set_input sim Alu.op_port (bv 4 (Alu.op_code op));
  Sim.set_input sim Alu.a_port a;
  Sim.set_input sim Alu.b_port b;
  Sim.step sim;
  Sim.step sim;
  Sim.output sim Alu.r_port

let test_alu_exhaustive_8bit_sample () =
  let sim = Sim.create alu8 in
  List.iter
    (fun op ->
      for a = 0 to 255 do
        (* a sparse but deterministic sweep of b to keep runtime sane *)
        List.iter
          (fun b ->
            let va = bv 8 a and vb = bv 8 b in
            let expect = Alu.golden ~width:8 op va vb in
            let got = run_alu sim op va vb in
            if not (Bitvec.equal expect got) then
              Alcotest.failf "%s %d %d: expected %s got %s" (Alu.op_name op) a b
                (Bitvec.to_string expect) (Bitvec.to_string got))
          [ 0; 1; 2; 7; 8; 127; 128; 200; 255 ]
      done)
    Alu.all_ops

let test_alu_opcode_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "code roundtrip" true (Alu.op_of_code (Alu.op_code op) = Some op);
      Alcotest.(check bool) "name roundtrip" true (Alu.op_of_name (Alu.op_name op) = Some op))
    Alu.all_ops;
  Alcotest.(check bool) "bad code" true (Alu.op_of_code 15 = None)

let test_alu_structure () =
  let nl = Alu.netlist ~width:16 () in
  Alcotest.(check bool) "hundreds of cells" true (Netlist.num_cells nl > 800);
  Alcotest.(check int) "pipeline depth 2" (Some 2 |> Option.get)
    (Option.get (Formal.sequential_depth nl));
  (* 4 op + 16 a + 16 b + 16 r registers *)
  Alcotest.(check int) "dff count" 52 (List.length (Netlist.dffs nl));
  ignore (Netlist.find_cell nl "a_q0");
  ignore (Netlist.find_cell nl "r_q15")

let test_alu_width_validation () =
  Alcotest.check_raises "width 12 invalid"
    (Invalid_argument "Alu.netlist: width must be a power of two in [4, 32]") (fun () ->
      ignore (Alu.netlist ~width:12 ()))

let test_alu_valid_op_assume () =
  (* under the valid-op assumption, BMC can still find any result value *)
  let nl = Alu.netlist ~width:4 () in
  let cover = Formal.Net (Netlist.net_of_port_bit nl Alu.r_port 3) in
  match Formal.check_cover ~assumes:[ Alu.valid_op_assume nl ] nl ~cover with
  | Formal.Trace_found t ->
    let opv = Formal.Trace.input_at t Alu.op_port 0 in
    Alcotest.(check bool) "op is valid" true (Alu.op_of_code (Bitvec.to_int opv) <> None)
  | _ -> Alcotest.fail "expected trace"

let prop_alu16_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"alu16 matches golden on random ops"
       (QCheck.make
          ~print:(fun (o, a, b) -> Printf.sprintf "op=%d a=%d b=%d" o a b)
          QCheck.Gen.(triple (int_bound 9) (int_bound 65535) (int_bound 65535)))
       (let nl = Alu.netlist ~width:16 () in
        let sim = Sim.create nl in
        fun (o, a, b) ->
          let op = Option.get (Alu.op_of_code o) in
          let va = bv 16 a and vb = bv 16 b in
          Bitvec.equal (Alu.golden ~width:16 op va vb) (run_alu sim op va vb)))

(* Same sweep through both engines: each random case occupies one Sim64
   lane, and lane k's result must match both the scalar engine and the
   golden model. *)
let prop_alu8_both_engines =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"alu8 scalar and 64-lane engines agree with golden"
       (QCheck.make
          ~print:(fun l ->
            String.concat ";"
              (List.map (fun (o, a, b) -> Printf.sprintf "(%d,%d,%d)" o a b) l))
          QCheck.Gen.(
            list_size (int_range 1 Sim64.lanes)
              (triple (int_bound 9) (int_bound 255) (int_bound 255))))
       (let sim = Sim.create alu8 in
        let s64 = Sim64.create alu8 in
        fun cases ->
          Sim64.reset s64;
          List.iteri
            (fun lane (o, a, b) ->
              Sim64.set_input s64 ~lane Alu.op_port (bv 4 o);
              Sim64.set_input s64 ~lane Alu.a_port (bv 8 a);
              Sim64.set_input s64 ~lane Alu.b_port (bv 8 b))
            cases;
          Sim64.step s64;
          Sim64.step s64;
          let ok = ref true in
          List.iteri
            (fun lane (o, a, b) ->
              let op = Option.get (Alu.op_of_code o) in
              let va = bv 8 a and vb = bv 8 b in
              let golden = Alu.golden ~width:8 op va vb in
              let scalar = run_alu sim op va vb in
              let lane_r = Sim64.output s64 ~lane Alu.r_port in
              if not (Bitvec.equal golden scalar && Bitvec.equal golden lane_r) then
                ok := false)
            cases;
          !ok))

let () =
  Alcotest.run "hw_alu"
    [
      ( "hw combinators",
        [
          Alcotest.test_case "ripple adder exhaustive" `Quick test_adder_exhaustive;
          Alcotest.test_case "sub and compare exhaustive" `Quick test_sub_and_compare;
          Alcotest.test_case "shifters exhaustive" `Quick test_shifters_exhaustive;
          Alcotest.test_case "leading zero count" `Quick test_lzc;
          Alcotest.test_case "onehot and mux tree" `Quick test_onehot_and_mux_tree;
          Alcotest.test_case "reductions" `Quick test_reduce;
          Alcotest.test_case "combinator errors" `Quick test_combinator_errors;
          Alcotest.test_case "mux tree missing cases" `Quick test_mux_tree_missing_cases;
          Alcotest.test_case "carry-select exhaustive" `Quick test_carry_select_exhaustive;
          Alcotest.test_case "adder styles formally equivalent" `Quick
            test_adder_styles_formally_equivalent;
        ] );
      ( "alu",
        [
          Alcotest.test_case "8-bit sweep vs golden" `Quick test_alu_exhaustive_8bit_sample;
          Alcotest.test_case "opcode roundtrip" `Quick test_alu_opcode_roundtrip;
          Alcotest.test_case "structure" `Quick test_alu_structure;
          Alcotest.test_case "width validation" `Quick test_alu_width_validation;
          Alcotest.test_case "valid op assume" `Quick test_alu_valid_op_assume;
        ] );
      ("properties", [ prop_alu16_random; prop_alu8_both_engines; prop_lzc_matches_reference ]);
    ]
