(* The resilience supervisor: budget slicing, the degradation ladder, and
   crash-safe checkpoint/resume.

   The central property mirrors the CI kill-and-resume smoke at QCheck
   granularity: a run killed at ANY item event and then resumed must render
   a byte-identical report. *)

let alu8 = Lift.alu_target ~width:8 ()

(* ---- a small fixed work list, cheap enough to supervise many times ---- *)

let tiny_items =
  List.map
    (fun (s, e) ->
      {
        Resilience.it_key = Printf.sprintf "%s~%s~setup" s e;
        it_start = s;
        it_end = e;
        it_violation = Fault.Setup_violation;
      })
    [ ("a_q0", "r_q0"); ("b_q1", "r_q2"); ("b_q0", "r_q7") ]

(* a starvation-level slice so some pairs time out formally and exercise
   both the escalation passes and the random-search ladder *)
let tiny_sup =
  {
    Resilience.sv_budget_conflicts = 1_000;
    sv_wall_clock_s = None;
    sv_slice = 2;
    sv_escalation = 2;
    sv_max_passes = 2;
    sv_ladder =
      {
        Resilience.ld_fallback = true;
        ld_suites = 2;
        ld_cases = 16;
        ld_seed = 11;
        ld_engine = Lift.Engine_sim64;
      };
  }

let tiny_run ?checkpoint ?on_item () =
  Resilience.supervised_lift ~supervisor:tiny_sup ?checkpoint ?on_item alu8 tiny_items

let tiny_digest =
  Resilience.digest_of_strings [ "test-resilience"; Resilience.netlist_digest alu8.Lift.netlist ]

let golden_render = lazy (Resilience.render_report (tiny_run ()))

let tiny_events =
  lazy
    (let n = ref 0 in
     ignore (tiny_run ~on_item:(fun _ _ -> incr n) ());
     !n)

(* ---- filesystem helpers ---- *)

let fresh_dir () =
  let f = Filename.temp_file "vega-resilience" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected checkpoint error: %s" msg

(* ---- checkpoint store behavior ---- *)

let test_stale_digest_rejected () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      ignore (ok (Resilience.Checkpoint.open_dir ~dir ~digest:"aaaa" ()));
      match Resilience.Checkpoint.open_dir ~resume:true ~dir ~digest:"bbbb" () with
      | Ok _ -> Alcotest.fail "stale digest accepted"
      | Error msg ->
        let has needle =
          let ln = String.length needle and lm = String.length msg in
          let rec at i = i + ln <= lm && (String.sub msg i ln = needle || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool) "names the stored digest" true (has "aaaa");
        Alcotest.(check bool) "names the current digest" true (has "bbbb");
        Alcotest.(check bool) "says stale" true (has "stale"))

let test_populated_needs_resume () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ck = ok (Resilience.Checkpoint.open_dir ~dir ~digest:tiny_digest ()) in
      Resilience.Checkpoint.store ck "some~item" (Json.Obj [ ("x", Json.Int 1) ]);
      (* an empty directory reopens fine without --resume *)
      (match Resilience.Checkpoint.open_dir ~resume:true ~dir ~digest:tiny_digest () with
      | Ok ck2 -> Alcotest.(check int) "item survives reopen" 1 (Resilience.Checkpoint.item_count ck2)
      | Error msg -> Alcotest.failf "resume reopen failed: %s" msg);
      match Resilience.Checkpoint.open_dir ~dir ~digest:tiny_digest () with
      | Ok _ -> Alcotest.fail "populated checkpoint accepted without resume"
      | Error _ -> ())

let test_torn_files_recovered () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ck = ok (Resilience.Checkpoint.open_dir ~dir ~digest:tiny_digest ()) in
      ignore (tiny_run ~checkpoint:ck ());
      let idir = Filename.concat dir "items" in
      let jsons =
        Sys.readdir idir |> Array.to_list
        |> List.filter (fun n -> Filename.check_suffix n ".json")
        |> List.sort compare
      in
      Alcotest.(check int) "one snapshot per item" (List.length tiny_items) (List.length jsons);
      (* truncate one completed item mid-document and leave a stale tmp, as
         a kill between write and rename would *)
      let torn = Filename.concat idir (List.hd jsons) in
      let oc = open_out_bin torn in
      output_string oc "{\"key\": \"trunc";
      close_out oc;
      let oc = open_out_bin (Filename.concat idir "half-written.json.tmp") in
      output_string oc "{";
      close_out oc;
      let ck2 = ok (Resilience.Checkpoint.open_dir ~resume:true ~dir ~digest:tiny_digest ()) in
      Alcotest.(check int)
        "torn item dropped, the rest kept"
        (List.length tiny_items - 1)
        (Resilience.Checkpoint.item_count ck2);
      Alcotest.(check bool) "stale tmp swept" false
        (Sys.file_exists (Filename.concat idir "half-written.json.tmp"));
      (* the dropped item is recomputed; the report is still byte-identical *)
      let rp = tiny_run ~checkpoint:ck2 () in
      Alcotest.(check string)
        "recomputed report identical" (Lazy.force golden_render)
        (Resilience.render_report rp))

(* ---- kill-and-resume: byte-identical at every item boundary ---- *)

let resume_after_kill_at k =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ck = ok (Resilience.Checkpoint.open_dir ~dir ~digest:tiny_digest ()) in
      (* the hook raises after item event [k] is persisted — the closest a
         test can get to `kill -9` at an item boundary *)
      (try ignore (tiny_run ~checkpoint:ck ~on_item:(fun i _ -> if i = k then raise Exit) ())
       with Exit -> ());
      let ck2 = ok (Resilience.Checkpoint.open_dir ~resume:true ~dir ~digest:tiny_digest ()) in
      let rp = tiny_run ~checkpoint:ck2 () in
      Resilience.render_report rp = Lazy.force golden_render)

let prop_resume_byte_identical =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"resume after a kill at any item event is byte-identical"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound (max 0 (Lazy.force tiny_events - 1))))
       resume_after_kill_at)

let test_completed_checkpoint_is_silent () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ck = ok (Resilience.Checkpoint.open_dir ~dir ~digest:tiny_digest ()) in
      ignore (tiny_run ~checkpoint:ck ());
      let ck2 = ok (Resilience.Checkpoint.open_dir ~resume:true ~dir ~digest:tiny_digest ()) in
      let events = ref 0 in
      let rp = tiny_run ~checkpoint:ck2 ~on_item:(fun _ _ -> incr events) () in
      Alcotest.(check int) "no item recomputed" 0 !events;
      Alcotest.(check string)
        "fully-cached report identical" (Lazy.force golden_render)
        (Resilience.render_report rp))

(* ---- budget slicing and the ladder on the real ALU sweep ---- *)

let sweep =
  lazy
    (let config = { Lift.default_config with Lift.max_conflicts = 2 } in
     let analysis =
       Vega.aging_analysis
         ~config:{ Vega.default_phase1 with Vega.clock_margin = 1.0 }
         alu8 ~workload:Vega.run_minver_workload
     in
     (config, analysis, Vega.error_lifting_supervised ~config analysis))

let test_sweep_ff_covered_by_fallback () =
  let _, _, rp = Lazy.force sweep in
  let counts = Resilience.split_counts rp in
  Alcotest.(check bool) "sweep has items" true (List.length rp.Resilience.rp_items > 0);
  let covered = List.assoc Resilience.R_FF_covered counts in
  let exhausted = List.assoc Resilience.R_FF_exhausted counts in
  Alcotest.(check bool)
    (Printf.sprintf "starved sweep times out formally (covered %d, exhausted %d)" covered
       exhausted)
    true
    (covered + exhausted > 0);
  Alcotest.(check bool)
    "the ladder covers at least one formally-FF pair" true (covered >= 1)

let test_sweep_first_pass_within_slice () =
  let config, _, rp = Lazy.force sweep in
  let slice = config.Lift.max_conflicts in
  List.iter
    (fun (r : Resilience.item_report) ->
      match r.Resilience.ir_pass_conflicts with
      | [] -> Alcotest.failf "%s has no recorded pass" r.Resilience.ir_item.Resilience.it_key
      | first :: _ ->
        if first > slice then
          Alcotest.failf "%s spent %d conflicts on pass 1 (slice %d)"
            r.Resilience.ir_item.Resilience.it_key first slice)
    rp.Resilience.rp_items;
  Alcotest.(check bool)
    "total spend within the shared budget" true
    (rp.Resilience.rp_budget_spent <= rp.Resilience.rp_budget_total)

let test_sweep_deterministic () =
  let config, analysis, rp = Lazy.force sweep in
  let rp2 = Vega.error_lifting_supervised ~config analysis in
  Alcotest.(check string)
    "same seed, same report" (Resilience.render_report rp) (Resilience.render_report rp2)

let test_suite_of_report () =
  let _, _, rp = Lazy.force sweep in
  let suite = Resilience.suite_of_report alu8 rp in
  let expected =
    List.fold_left
      (fun acc (r : Resilience.item_report) ->
        acc
        + (match r.Resilience.ir_result with Some pr -> List.length pr.Lift.cases | None -> 0)
        + List.length r.Resilience.ir_fallback_cases)
      0 rp.Resilience.rp_items
  in
  Alcotest.(check int) "suite holds every produced case" expected
    (List.length suite.Lift.suite_cases);
  Alcotest.(check bool) "the supervised sweep yields executable cases" true (expected > 0)

(* ---- sharded checkpoint stores ---- *)

let contains msg needle =
  let ln = String.length needle and lm = String.length msg in
  let rec at i = i + ln <= lm && (String.sub msg i ln = needle || at (i + 1)) in
  at 0

let test_sharded_merge_across_shard_counts () =
  let dir = fresh_dir () in
  let sh = ok (Resilience.Checkpoint.open_sharded ~dir ~digest:"d1" ~shards:3 ()) in
  Alcotest.(check int) "shard count" 3 (Resilience.Checkpoint.shard_count sh);
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard sh 0) "a" (Json.Int 1);
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard sh 1) "b" (Json.Int 2);
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard sh 2) "c" (Json.Int 3);
  (* reopen with a DIFFERENT shard count: all shards on disk must merge *)
  let sh2 = ok (Resilience.Checkpoint.open_sharded ~resume:true ~dir ~digest:"d1" ~shards:1 ()) in
  Alcotest.(check int) "merged items" 3 (Resilience.Checkpoint.sharded_item_count sh2);
  Alcotest.(check (list string))
    "merged keys" [ "a"; "b"; "c" ]
    (Resilience.Checkpoint.sharded_keys sh2);
  (match Resilience.Checkpoint.sharded_load sh2 "b" with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "shard-1 item lost in the merged view");
  (* ascending shard order wins on a duplicated key *)
  let dup = fresh_dir () in
  let shd = ok (Resilience.Checkpoint.open_sharded ~dir:dup ~digest:"d1" ~shards:2 ()) in
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard shd 0) "k" (Json.Int 10);
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard shd 1) "k" (Json.Int 20);
  let shd2 =
    ok (Resilience.Checkpoint.open_sharded ~resume:true ~dir:dup ~digest:"d1" ~shards:2 ())
  in
  (match Resilience.Checkpoint.sharded_load shd2 "k" with
  | Some (Json.Int 10) -> ()
  | _ -> Alcotest.fail "duplicate key must resolve to the lowest shard");
  rm_rf dir;
  rm_rf dup

let test_sharded_torn_tmp_swept () =
  let dir = fresh_dir () in
  let sh = ok (Resilience.Checkpoint.open_sharded ~dir ~digest:"d1" ~shards:2 ()) in
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard sh 1) "x" (Json.Int 7);
  (* simulate a crash mid-write inside a shard subdirectory *)
  let torn = Filename.concat (Filename.concat dir "shard-1") "items" in
  let tmp = Filename.concat torn "garbage.json.tmp" in
  let oc = open_out tmp in
  output_string oc "{ torn";
  close_out oc;
  let sh2 = ok (Resilience.Checkpoint.open_sharded ~resume:true ~dir ~digest:"d1" ~shards:2 ()) in
  Alcotest.(check bool) "tmp swept on open" false (Sys.file_exists tmp);
  Alcotest.(check int) "real item survives" 1 (Resilience.Checkpoint.sharded_item_count sh2);
  rm_rf dir

let test_sharded_stale_shard_refused () =
  let dir = fresh_dir () in
  let sh = ok (Resilience.Checkpoint.open_sharded ~dir ~digest:"good" ~shards:2 ()) in
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard sh 0) "x" (Json.Int 1);
  (* rewrite ONE shard's meta with a different digest: the whole resume
     must refuse, even though the root meta still matches *)
  let meta = Filename.concat (Filename.concat dir "shard-1") "meta.json" in
  let oc = open_out meta in
  output_string oc
    (Json.to_string
       (Json.Obj
          [
            ("format", Json.String "vega-checkpoint");
            ("version", Json.Int 1);
            ("digest", Json.String "evil");
          ]));
  close_out oc;
  (match Resilience.Checkpoint.open_sharded ~resume:true ~dir ~digest:"good" ~shards:2 () with
  | Ok _ -> Alcotest.fail "stale shard digest must refuse the resume"
  | Error msg ->
    let has s = contains msg s in
    Alcotest.(check bool) "names stale" true (has "stale");
    Alcotest.(check bool) "names both digests" true (has "good" && has "evil"));
  rm_rf dir

let test_sharded_populated_needs_resume () =
  let dir = fresh_dir () in
  let sh = ok (Resilience.Checkpoint.open_sharded ~dir ~digest:"d1" ~shards:2 ()) in
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard sh 0) "x" (Json.Int 1);
  Resilience.Checkpoint.store (Resilience.Checkpoint.shard sh 1) "y" (Json.Int 2);
  (match Resilience.Checkpoint.open_sharded ~dir ~digest:"d1" ~shards:2 () with
  | Ok _ -> Alcotest.fail "populated sharded store must demand --resume"
  | Error msg ->
    Alcotest.(check bool) "mentions --resume" true (contains msg "--resume");
    Alcotest.(check bool)
      "counts items across shards" true
      (contains msg "2 completed item(s) across 2 shard(s)"));
  rm_rf dir

let () =
  Alcotest.run "resilience"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "stale digest rejected readably" `Quick test_stale_digest_rejected;
          Alcotest.test_case "populated dir needs --resume" `Quick test_populated_needs_resume;
          Alcotest.test_case "torn items and stale tmps recovered" `Quick
            test_torn_files_recovered;
        ] );
      ( "resume",
        [
          prop_resume_byte_identical;
          Alcotest.test_case "completed checkpoint replays silently" `Quick
            test_completed_checkpoint_is_silent;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "shards merge across differing shard counts" `Quick
            test_sharded_merge_across_shard_counts;
          Alcotest.test_case "torn tmp inside a shard swept" `Quick test_sharded_torn_tmp_swept;
          Alcotest.test_case "one stale shard refuses the whole resume" `Quick
            test_sharded_stale_shard_refused;
          Alcotest.test_case "populated sharded store needs --resume" `Quick
            test_sharded_populated_needs_resume;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "ALU sweep: ladder covers a formally-FF pair" `Slow
            test_sweep_ff_covered_by_fallback;
          Alcotest.test_case "ALU sweep: first pass never exceeds its slice" `Slow
            test_sweep_first_pass_within_slice;
          Alcotest.test_case "ALU sweep: deterministic per seed" `Slow test_sweep_deterministic;
          Alcotest.test_case "suite_of_report collects formal + fallback cases" `Slow
            test_suite_of_report;
        ] );
    ]
