(* Tests for the telemetry layer: clock sources, span forest
   well-formedness under arbitrary begin/end interleavings, merge
   algebra of counters and histograms, exporter determinism, the
   disabled-sink contract, the zero-allocation overhead regression on
   the Sim64 hot path, and the byte-exact golden Chrome traces. *)

(* Force the guard monitor into the link so its counters and histogram
   are registered: golden exports list every registered counter, and the
   CLI binary (which produced the ALU golden) links Guard via
   Experiments. *)
let _force_link_guard : Guard.Monitor.config = Guard.Monitor.default_config

let golden_path name =
  if Sys.file_exists (Filename.concat "golden" name) then Filename.concat "golden" name
  else Filename.concat (Filename.concat "test" "golden") name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------- clocks ---------- *)

let test_virtual_clock () =
  let c = Telemetry.Clock.virtual_ ~start_ns:100 ~step_ns:7 () in
  Alcotest.(check bool) "is_virtual" true (Telemetry.Clock.is_virtual c);
  Alcotest.(check int) "first read" 100 (Telemetry.Clock.now_ns c);
  Alcotest.(check int) "auto-advance" 107 (Telemetry.Clock.now_ns c);
  Alcotest.(check int) "again" 114 (Telemetry.Clock.now_ns c);
  Alcotest.check_raises "bad step"
    (Invalid_argument "Telemetry.Clock.virtual_: step_ns must be positive") (fun () ->
      ignore (Telemetry.Clock.virtual_ ~step_ns:0 ()))

let test_monotonic_clock () =
  let c = Telemetry.Clock.monotonic () in
  Alcotest.(check bool) "not virtual" false (Telemetry.Clock.is_virtual c);
  let prev = ref (Telemetry.Clock.now_ns c) in
  for _ = 1 to 1000 do
    let t = Telemetry.Clock.now_ns c in
    if t <= !prev then Alcotest.failf "clock not strictly increasing: %d then %d" !prev t;
    prev := t
  done

(* ---------- span forest well-formedness (QCheck) ---------- *)

(* A span forest is well-formed iff every node has start <= end, every
   child lies within its parent's interval, and siblings are ordered by
   start time.  Any interleaving of begin/end through the public API —
   including unbalanced ones — must produce a well-formed forest. *)
let rec check_span ~lo ~hi (sp : Telemetry.span) =
  if sp.Telemetry.sp_start_ns < lo then Alcotest.failf "%s starts before enclosing scope" sp.Telemetry.sp_name;
  if sp.Telemetry.sp_end_ns > hi then Alcotest.failf "%s ends after enclosing scope" sp.Telemetry.sp_name;
  if sp.Telemetry.sp_start_ns > sp.Telemetry.sp_end_ns then
    Alcotest.failf "%s has start > end" sp.Telemetry.sp_name;
  check_forest ~lo:sp.Telemetry.sp_start_ns ~hi:sp.Telemetry.sp_end_ns sp.Telemetry.sp_children

and check_forest ~lo ~hi spans =
  ignore
    (List.fold_left
       (fun prev_start (sp : Telemetry.span) ->
         if sp.Telemetry.sp_start_ns < prev_start then
           Alcotest.failf "siblings out of order at %s" sp.Telemetry.sp_name;
         check_span ~lo ~hi sp;
         sp.Telemetry.sp_start_ns)
       lo spans)

let count_spans snap =
  let rec go acc (sp : Telemetry.span) = List.fold_left go (acc + 1) sp.Telemetry.sp_children in
  List.fold_left go 0 snap.Telemetry.ss_spans

let arb_ops =
  (* true = begin, false = end; deliberately unbalanced sequences included *)
  QCheck.make
    ~print:(fun ops ->
      String.concat "" (List.map (fun b -> if b then "B" else "E") ops))
    QCheck.Gen.(list_size (int_range 0 40) bool)

let prop_forest ops =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let begins = ref 0 in
  List.iteri
    (fun i b ->
      if b then begin
        incr begins;
        Telemetry.begin_span (Printf.sprintf "s%d" i)
      end
      else Telemetry.end_span ~args:[ ("i", Telemetry.Int i) ] ())
    ops;
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  check_forest ~lo:0 ~hi:snap.Telemetry.ss_end_ns snap.Telemetry.ss_spans;
  (* every begin is accounted for: closed normally or virtually closed *)
  count_spans snap = !begins

let forest_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"any begin/end interleaving yields a well-formed forest"
       arb_ops prop_forest)

(* ---------- merge algebra (QCheck) ---------- *)

let counter_snap v = { Telemetry.Counter.c_name = "c"; c_value = v }

let prop_counter_assoc (a, b, c) =
  let open Telemetry.Counter in
  let x = merge (merge (counter_snap a) (counter_snap b)) (counter_snap c) in
  let y = merge (counter_snap a) (merge (counter_snap b) (counter_snap c)) in
  let z = merge (counter_snap b) (counter_snap a) in
  x = y && z.c_value = (merge (counter_snap a) (counter_snap b)).c_value

let counter_merge_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"counter merge is associative and commutative"
       QCheck.(triple small_nat small_nat small_nat)
       prop_counter_assoc)

let hist_bounds = [| 1; 4; 16 |]

let hist_snap counts sum =
  {
    Telemetry.Histogram.h_name = "h";
    h_bounds = hist_bounds;
    h_counts = Array.of_list counts;
    h_total = List.fold_left ( + ) 0 counts;
    h_sum = sum;
  }

let arb_hist =
  QCheck.make
    ~print:(fun (c, s) -> Printf.sprintf "counts=%s sum=%d" (String.concat "," (List.map string_of_int c)) s)
    QCheck.Gen.(
      list_repeat 4 (int_range 0 50) >>= fun counts ->
      int_range 0 1000 >>= fun sum -> return (counts, sum))

let prop_hist_assoc ((ca, sa), (cb, sb), (cc, sc)) =
  let open Telemetry.Histogram in
  let a = hist_snap ca sa and b = hist_snap cb sb and c = hist_snap cc sc in
  merge (merge a b) c = merge a (merge b c)
  && (merge a b).h_counts = (merge b a).h_counts

let hist_merge_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"histogram merge is associative and commutative"
       QCheck.(triple arb_hist arb_hist arb_hist)
       prop_hist_assoc)

let test_merge_mismatch () =
  Alcotest.check_raises "counter name mismatch"
    (Invalid_argument "Telemetry.Counter.merge: a vs b") (fun () ->
      ignore
        (Telemetry.Counter.merge
           { Telemetry.Counter.c_name = "a"; c_value = 1 }
           { Telemetry.Counter.c_name = "b"; c_value = 2 }))

let test_histogram_buckets () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let h = Telemetry.Histogram.make "test.buckets" ~bounds:[| 10; 20 |] in
  List.iter (Telemetry.Histogram.observe h) [ 0; 10; 11; 20; 21; 1000 ];
  let s = Telemetry.Histogram.snapshot_value h in
  Telemetry.disable ();
  (* inclusive upper bounds: 0,10 | 11,20 | 21,1000 *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 2 |] s.Telemetry.Histogram.h_counts;
  Alcotest.(check int) "total" 6 s.Telemetry.Histogram.h_total;
  Alcotest.(check int) "sum" 1062 s.Telemetry.Histogram.h_sum;
  Alcotest.check_raises "bounds not increasing"
    (Invalid_argument "Telemetry.Histogram.make test.bad: bounds not strictly increasing")
    (fun () -> ignore (Telemetry.Histogram.make "test.bad" ~bounds:[| 5; 5 |]))

(* ---------- sink lifecycle ---------- *)

let test_disabled_records_nothing () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  Telemetry.disable ();
  let c = Telemetry.Counter.make "test.disabled" in
  Telemetry.Counter.add c 5;
  Telemetry.begin_span "ghost";
  Telemetry.end_span ();
  Alcotest.(check int) "counter untouched" 0 (Telemetry.Counter.value c);
  Alcotest.(check int) "no open spans" 0 (Telemetry.span_depth ());
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no spans recorded" 0 (count_spans snap)

let test_enable_resets () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let c = Telemetry.Counter.make "test.reset" in
  Telemetry.Counter.add c 3;
  Telemetry.begin_span "old";
  Telemetry.end_span ();
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  Alcotest.(check int) "counter zeroed" 0 (Telemetry.Counter.value c);
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "spans cleared" 0 (count_spans snap)

let test_with_span_exception () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  (try Telemetry.with_span "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 0 (Telemetry.span_depth ());
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  match snap.Telemetry.ss_spans with
  | [ sp ] ->
    Alcotest.(check string) "name" "boom" sp.Telemetry.sp_name;
    Alcotest.(check bool) "exception arg attached" true
      (List.mem_assoc "exception" sp.Telemetry.sp_args)
  | l -> Alcotest.failf "expected one root span, got %d" (List.length l)

let test_stray_end_ignored () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  Telemetry.end_span ();
  Telemetry.begin_span "a";
  Telemetry.end_span ();
  Telemetry.end_span ();
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "one span" 1 (count_spans snap)

(* ---------- domain safety ---------- *)

let test_concurrent_counter_bumps () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let c = Telemetry.Counter.make "test.dom.counter" in
  let h = Telemetry.Histogram.make "test.dom.hist" ~bounds:[| 10; 100 |] in
  let bumps = 100_000 in
  let worker () =
    for i = 1 to bumps do
      Telemetry.Counter.incr c;
      Telemetry.Histogram.observe h (i mod 150)
    done
  in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  (* every bump from both domains lands: no lost update, ever *)
  Alcotest.(check int) "no counter bump lost" (2 * bumps) (Telemetry.Counter.value c);
  let hs = Telemetry.Histogram.snapshot_value h in
  Alcotest.(check int) "no observation lost" (2 * bumps) hs.Telemetry.Histogram.h_total;
  Alcotest.(check int)
    "bucket counts sum to the total" (2 * bumps)
    (Array.fold_left ( + ) 0 hs.Telemetry.Histogram.h_counts);
  Telemetry.disable ();
  Telemetry.reset ()

let test_spans_are_domain_local () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  Telemetry.begin_span ~cat:"t" "coordinator";
  let d =
    Domain.spawn (fun () ->
        (* a worker's spans live in ITS forest: the coordinator's open
           span is not its parent, and its depth starts at zero *)
        let d0 = Telemetry.span_depth () in
        Telemetry.begin_span ~cat:"t" "worker";
        Telemetry.end_span ();
        (d0, Telemetry.harvest ()))
  in
  let d0, harvested = Domain.join d in
  Alcotest.(check int) "worker depth starts at 0" 0 d0;
  Alcotest.(check int) "worker span harvested" 1 (List.length harvested);
  Telemetry.absorb harvested;
  Telemetry.end_span ();
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  (match snap.Telemetry.ss_spans with
  | [ root ] ->
    Alcotest.(check string) "coordinator root" "coordinator" root.Telemetry.sp_name;
    (match root.Telemetry.sp_children with
    | [ child ] ->
      Alcotest.(check string) "absorbed under the open span" "worker" child.Telemetry.sp_name
    | l -> Alcotest.failf "expected 1 absorbed child, got %d" (List.length l))
  | l -> Alcotest.failf "expected 1 root span, got %d" (List.length l));
  Telemetry.reset ()

let test_absorb_without_open_span () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  Telemetry.begin_span ~cat:"t" "orphan";
  Telemetry.end_span ();
  let spans = Telemetry.harvest () in
  Alcotest.(check int) "harvest clears" 0 (List.length (Telemetry.harvest ()));
  Telemetry.absorb spans;
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Alcotest.(check int) "absorbed at the roots" 1 (List.length snap.Telemetry.ss_spans);
  Telemetry.reset ()

let test_disabled_stays_cheap_across_domains () =
  (* the disabled path must stay a plain flag check from any domain *)
  Telemetry.disable ();
  let c = Telemetry.Counter.make "test.dom.disabled" in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to 1000 do
          Telemetry.Counter.incr c
        done)
  in
  Domain.join d;
  Alcotest.(check int) "disabled records nothing from workers" 0 (Telemetry.Counter.value c)

(* ---------- exporters ---------- *)

let mini_workload () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let c = Telemetry.Counter.make "test.mini" in
  Telemetry.with_span ~cat:"t" "outer" (fun () ->
      Telemetry.Counter.add c 41;
      Telemetry.with_span "inner" (fun () -> Telemetry.Counter.incr c));
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  snap

let test_export_deterministic () =
  let a = mini_workload () and b = mini_workload () in
  Alcotest.(check string) "chrome trace byte-identical" (Telemetry.Export.chrome_trace a)
    (Telemetry.Export.chrome_trace b);
  Alcotest.(check string) "jsonl byte-identical" (Telemetry.Export.jsonl a)
    (Telemetry.Export.jsonl b);
  Alcotest.(check string) "summary byte-identical" (Telemetry.Export.summary a)
    (Telemetry.Export.summary b)

let test_export_parses () =
  let snap = mini_workload () in
  (match Json.of_string (Telemetry.Export.chrome_trace snap) with
  | Ok (Json.Obj fields) ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Json.List events) ->
      Alcotest.(check bool) "has events" true (List.length events >= 3)
    | _ -> Alcotest.fail "traceEvents missing or not a list")
  | Ok _ -> Alcotest.fail "chrome trace is not an object"
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e);
  String.split_on_char '\n' (Telemetry.Export.jsonl snap)
  |> List.iter (fun line ->
         if line <> "" then
           match Json.of_string line with
           | Ok _ -> ()
           | Error e -> Alcotest.failf "jsonl line does not parse: %s (%s)" line e)

let test_span_totals () =
  let snap = mini_workload () in
  let totals = Telemetry.span_totals snap in
  Alcotest.(check int) "two names" 2 (List.length totals);
  let name, count, total = List.hd totals in
  Alcotest.(check string) "depth-first first-seen order" "outer" name;
  Alcotest.(check int) "one occurrence" 1 count;
  Alcotest.(check bool) "positive duration" true (total > 0)

(* ---------- overhead regression: Sim64 hot path ---------- *)

(* The instrumented Sim64 settle/step/sample loops must not allocate for
   telemetry, whether the sink is on or off: a counter bump is a guarded
   int store.  Run the ALU detection sweep and compare minor-heap
   allocation with telemetry disabled vs enabled — byte-for-byte equal
   word counts, checked via the GC (CI-stable), not wall-clock. *)
let test_sim64_zero_allocation_overhead () =
  let target = Lift.alu_target ~width:8 () in
  let pr =
    Lift.lift_pair target ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation
  in
  let suite = Lift.suite_of_results target.Lift.kind [ pr ] in
  let faulty =
    Fault.failing_netlist target.Lift.netlist
      {
        Fault.start_dff = "a_q0";
        end_dff = "r_q0";
        kind = Fault.Setup_violation;
        constant = Fault.C0;
        activation = Fault.Any_transition;
      }
  in
  let sweep () = ignore (Sys.opaque_identity (Lift.detected_cases ~seed:7 suite faulty)) in
  let alloc_of f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  Telemetry.disable ();
  sweep ();
  (* warm-up: tables, lazy blocks *)
  let disabled1 = alloc_of sweep in
  let disabled2 = alloc_of sweep in
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let enabled = alloc_of sweep in
  Telemetry.disable ();
  Alcotest.(check (float 0.0)) "disabled sweep allocation is reproducible" disabled1 disabled2;
  Alcotest.(check (float 0.0)) "enabled sweep allocates exactly as much as disabled" disabled1
    enabled;
  (* Same regression for the compiled engine: the Simc dispatch loop and
     its counters must be equally allocation-free across the sweep. *)
  let sweep_simc () =
    ignore (Sys.opaque_identity (Lift.detected_cases ~seed:7 ~engine:Lift.Engine_simc suite faulty))
  in
  sweep_simc ();
  let c_disabled1 = alloc_of sweep_simc in
  let c_disabled2 = alloc_of sweep_simc in
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let c_enabled = alloc_of sweep_simc in
  Telemetry.disable ();
  Alcotest.(check (float 0.0))
    "disabled simc sweep allocation is reproducible" c_disabled1 c_disabled2;
  Alcotest.(check (float 0.0))
    "enabled simc sweep allocates exactly as much as disabled" c_disabled1 c_enabled

(* ---------- golden Chrome traces ---------- *)

(* The ALU golden is the byte-exact --trace output of
     vega_cli lift --unit alu --width 8 --margin 1.0 --virtual-clock
   (phase 1 + supervised phase 2).  Running the CLI itself pins the
   acceptance path: the golden in git, this test, and the CI trace job
   all see identical bytes. *)
let cli_path () =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "vega_cli.exe";
      Filename.concat (Filename.concat (Filename.concat "_build" "default") "bin") "vega_cli.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let test_golden_trace_alu () =
  match cli_path () with
  | None -> Alcotest.skip ()
  | Some cli ->
    let tmp = Filename.temp_file "vega_trace" ".json" in
    let cmd =
      Printf.sprintf "%s lift --unit alu --width 8 --margin 1.0 --virtual-clock --trace %s > %s 2> %s"
        (Filename.quote cli) (Filename.quote tmp) Filename.null Filename.null
    in
    let rc = Sys.command cmd in
    Alcotest.(check int) "vega_cli lift exits 0" 0 rc;
    let got = read_file tmp in
    Sys.remove tmp;
    let expected = read_file (golden_path "trace_alu.json") in
    Alcotest.(check string) "ALU lift trace matches golden byte-for-byte" expected got

(* The FPU golden covers the phase-1-only path (aging_analysis) in
   process, exercising the vega.* spans and the Sim/Sim64 counters. *)
let fpu_phase1_trace () =
  Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
  let target = Lift.fpu_target () in
  let _a =
    Vega.aging_analysis
      ~config:{ Vega.default_phase1 with Vega.clock_margin = 1.0 }
      target ~workload:Vega.run_minver_workload
  in
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  Telemetry.Export.chrome_trace snap

let test_golden_trace_fpu () =
  let got = fpu_phase1_trace () in
  let expected = read_file (golden_path "trace_fpu.json") in
  Alcotest.(check string) "FPU phase-1 trace matches golden byte-for-byte" expected got

let () =
  Alcotest.run "telemetry"
    [
      ( "clock",
        [
          Alcotest.test_case "virtual" `Quick test_virtual_clock;
          Alcotest.test_case "monotonic" `Quick test_monotonic_clock;
        ] );
      ("spans", [ forest_test ]);
      ( "merge",
        [
          counter_merge_test;
          hist_merge_test;
          Alcotest.test_case "name mismatch" `Quick test_merge_mismatch;
          Alcotest.test_case "bucketing" `Quick test_histogram_buckets;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "enable resets" `Quick test_enable_resets;
          Alcotest.test_case "with_span survives exceptions" `Quick test_with_span_exception;
          Alcotest.test_case "stray end ignored" `Quick test_stray_end_ignored;
        ] );
      ( "domains",
        [
          Alcotest.test_case "concurrent bumps never lost" `Quick test_concurrent_counter_bumps;
          Alcotest.test_case "spans are domain-local, harvest/absorb transfers" `Quick
            test_spans_are_domain_local;
          Alcotest.test_case "absorb lands at the roots when nothing is open" `Quick
            test_absorb_without_open_span;
          Alcotest.test_case "disabled sink ignores worker bumps" `Quick
            test_disabled_stays_cheap_across_domains;
        ] );
      ( "export",
        [
          Alcotest.test_case "deterministic" `Quick test_export_deterministic;
          Alcotest.test_case "parses as JSON" `Quick test_export_parses;
          Alcotest.test_case "span totals" `Quick test_span_totals;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "sim64 hot path allocation-free" `Quick
            test_sim64_zero_allocation_overhead;
        ] );
      ( "golden",
        [
          Alcotest.test_case "trace_alu (via vega_cli)" `Quick test_golden_trace_alu;
          Alcotest.test_case "trace_fpu (phase 1)" `Quick test_golden_trace_fpu;
        ] );
    ]
