(* Tests for the bounded-model-checking engine: cover traces, proofs of
   unreachability, assumes, timeouts, and replay validation. *)

let adder = Example_circuits.pipelined_adder ()
let bv w v = Bitvec.create ~width:w v

let out_bit nl port bit = Formal.Net (Netlist.net_of_port_bit nl port bit)

let test_sequential_depth () =
  Alcotest.(check (option int)) "adder depth 2" (Some 2) (Formal.sequential_depth adder);
  Alcotest.(check (option int)) "chain depth 5" (Some 5)
    (Formal.sequential_depth (Example_circuits.dff_chain 5));
  Alcotest.(check (option int)) "xor tree depth 0" (Some 0)
    (Formal.sequential_depth (Example_circuits.comb_xor_tree 4));
  Alcotest.(check (option int)) "lfsr has feedback" None
    (Formal.sequential_depth (Example_circuits.lfsr4 ()))

let test_cover_simple () =
  (* cover o[1]: reachable in 2 cycles (e.g. a=2, b=0) *)
  match Formal.check_cover adder ~cover:(out_bit adder "o" 1) with
  | Formal.Trace_found t ->
    Alcotest.(check bool) "minimal trace" true (t.Formal.Trace.cycles <= 3);
    Alcotest.(check bool) "trace really covers" true
      (Formal.Trace.covers adder t (out_bit adder "o" 1))
  | _ -> Alcotest.fail "expected trace"

let test_cover_unreachable () =
  (* o = a + b with 2-bit wrap; cover o[0] && !o[0] is a contradiction *)
  let contradiction = Formal.And (out_bit adder "o" 0, Formal.Not (out_bit adder "o" 0)) in
  match Formal.check_cover adder ~cover:contradiction with
  | Formal.Unreachable -> ()
  | _ -> Alcotest.fail "expected proof of unreachability"

let test_cover_semantic_unreachable () =
  (* the adder can never produce o[1:0] = 3 when both inputs are forced to
     zero by assumes *)
  let assumes =
    [ Formal.port_equals adder "a" (bv 2 0); Formal.port_equals adder "b" (bv 2 0) ]
  in
  let cover = Formal.And (out_bit adder "o" 0, out_bit adder "o" 1) in
  match Formal.check_cover ~assumes adder ~cover with
  | Formal.Unreachable -> ()
  | _ -> Alcotest.fail "expected unreachable under assumes"

let test_assumes_respected () =
  (* restrict a to {1}: a trace covering o[0] must still exist (1 + 0 = 1) *)
  let assumes = [ Formal.port_in adder "a" [ bv 2 1 ] ] in
  match Formal.check_cover ~assumes adder ~cover:(out_bit adder "o" 0) with
  | Formal.Trace_found t ->
    List.iter
      (fun (port, arr) ->
        if port = "a" then
          Array.iter
            (fun v -> Alcotest.(check int) "a always 1" 1 (Bitvec.to_int v))
            arr)
      t.Formal.Trace.inputs
  | _ -> Alcotest.fail "expected trace under assumes"

let test_feedback_circuit_bounded () =
  (* LFSR walk 0001 -> 0010 -> 0100 -> 1001 -> 0011: cover state 0b0011,
     reachable after 4 enabled steps *)
  let lfsr = Example_circuits.lfsr4 () in
  let cover =
    Formal.And
      ( Formal.And (Formal.Not (out_bit lfsr "q" 3), out_bit lfsr "q" 0),
        Formal.And (out_bit lfsr "q" 1, Formal.Not (out_bit lfsr "q" 2)) )
  in
  match Formal.check_cover ~max_cycles:6 lfsr ~cover with
  | Formal.Trace_found t ->
    Alcotest.(check bool) "covers on replay" true (Formal.Trace.covers lfsr t cover)
  | _ -> Alcotest.fail "expected trace through the LFSR"

let test_feedback_unreachable_is_bounded () =
  (* all-zero LFSR state is unreachable, but with feedback we can only say
     "not within the bound" *)
  let lfsr = Example_circuits.lfsr4 () in
  let cover =
    List.fold_left
      (fun acc i -> Formal.And (acc, Formal.Not (out_bit lfsr "q" i)))
      (Formal.Not (out_bit lfsr "q" 0))
      [ 1; 2; 3 ]
  in
  match Formal.check_cover ~max_cycles:5 lfsr ~cover with
  | Formal.Bounded_unreachable 5 -> ()
  | _ -> Alcotest.fail "expected bounded-unreachable"

let test_timeout () =
  match Formal.check_cover ~max_conflicts:0 adder ~cover:(out_bit adder "o" 1) with
  | Formal.Timeout _ -> ()
  | Formal.Trace_found _ ->
    (* a zero budget can still succeed if no conflicts are needed; accept *)
    ()
  | _ -> Alcotest.fail "expected timeout or cheap trace"

let test_watch_nets () =
  let c8 = Netlist.find_cell adder "$8" in
  match
    Formal.check_cover ~watch:[ ("sum1", c8.output) ] adder ~cover:(out_bit adder "o" 1)
  with
  | Formal.Trace_found t ->
    (match List.assoc_opt "sum1" t.Formal.Trace.observed with
    | Some arr ->
      Alcotest.(check int) "watched all cycles" t.Formal.Trace.cycles (Array.length arr);
      (* o[1] at the final cycle means $8 was 1 one cycle earlier *)
      Alcotest.(check bool) "watched value set" true (Array.exists (fun b -> b) arr)
    | None -> Alcotest.fail "missing watched net")
  | _ -> Alcotest.fail "expected trace"

let test_trace_rendering () =
  match Formal.check_cover adder ~cover:(out_bit adder "o" 1) with
  | Formal.Trace_found t ->
    let s = Formal.Trace.to_string t in
    Alcotest.(check bool) "mentions ports" true
      (String.length s > 0
      &&
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      contains "a" s && contains "cycle" s)
  | _ -> Alcotest.fail "expected trace"

(* Property: traces found by BMC always replay successfully on the
   simulator (end-to-end consistency of encoder, solver and simulator). *)
let prop_traces_replay =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"BMC traces replay on the simulator"
       (QCheck.make ~print:(fun (a, b) -> Printf.sprintf "o=%d bit=%d" a b)
          QCheck.Gen.(pair (int_bound 3) (int_bound 1)))
       (fun (target, bit) ->
         ignore target;
         let cover = out_bit adder "o" bit in
         match Formal.check_cover adder ~cover with
         | Formal.Trace_found t -> Formal.Trace.covers adder t cover
         | _ -> false))

(* Property: for random 8-bit parity circuits, cover of parity=1 finds a
   trace whose input has odd popcount. *)
let prop_parity_cover =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"xor tree cover finds odd-parity input"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 10))
       (fun n ->
         let nl = Example_circuits.comb_xor_tree n in
         let cover = Formal.Net (Netlist.net_of_port_bit nl "p" 0) in
         match Formal.check_cover nl ~cover with
         | Formal.Trace_found t ->
           let v = Formal.Trace.input_at t "x" 0 in
           Bitvec.popcount v land 1 = 1
         | _ -> false))

(* Property: on small random sequential circuits, BMC's reachability answer
   for "output bit = 1" agrees with exhaustive input-sequence simulation. *)
let prop_bmc_matches_exhaustive_sim =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"BMC agrees with exhaustive simulation"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let b = Netlist.Builder.create "rnd" in
         let x = Netlist.Builder.add_input b "x" 2 in
         let nets = ref [ x.(0); x.(1) ] in
         for _ = 1 to 4 + Random.State.int rng 8 do
           let pick () = List.nth !nets (Random.State.int rng (List.length !nets)) in
           let kind =
             match Random.State.int rng 6 with
             | 0 -> Cell.Kind.And2
             | 1 -> Cell.Kind.Or2
             | 2 -> Cell.Kind.Xor2
             | 3 -> Cell.Kind.Nand2
             | 4 -> Cell.Kind.Not
             | _ -> Cell.Kind.Dff
           in
           let inputs = Array.init (Cell.Kind.arity kind) (fun _ -> pick ()) in
           let out =
             if Cell.Kind.is_sequential kind then
               Netlist.Builder.add_cell ~clock_domain:0 b kind inputs
             else Netlist.Builder.add_cell b kind inputs
           in
           nets := out :: !nets
         done;
         Netlist.Builder.add_output b "y" [| List.hd !nets |];
         let nl = Netlist.Builder.finish b in
         let cover = Formal.Net (Netlist.net_of_port_bit nl "y" 0) in
         (* exhaustive simulation over all input sequences up to the same
            bound the checker uses *)
         let bound =
           match Formal.sequential_depth nl with Some d -> d + 1 | None -> 4
         in
         let reachable = ref false in
         let sim = Sim.create nl in
         let rec dfs depth prefix =
           if (not !reachable) && depth < bound then
             for v = 0 to 3 do
               if not !reachable then begin
                 let stim = prefix @ [ v ] in
                 Sim.reset sim;
                 List.iter
                   (fun value ->
                     Sim.set_input sim "x" (Bitvec.create ~width:2 value);
                     Sim.settle sim;
                     if Formal.eval_expr sim cover then reachable := true;
                     Sim.step sim)
                   stim;
                 dfs (depth + 1) stim
               end
             done
         in
         dfs 0 [];
         let bmc_says =
           match Formal.check_cover ~max_cycles:bound nl ~cover with
           | Formal.Trace_found _ -> true
           | Formal.Unreachable | Formal.Bounded_unreachable _ -> false
           | Formal.Timeout _ -> !reachable  (* inconclusive: don't fail *)
         in
         bmc_says = !reachable))

let () =
  Alcotest.run "formal"
    [
      ( "unit",
        [
          Alcotest.test_case "sequential depth" `Quick test_sequential_depth;
          Alcotest.test_case "cover simple" `Quick test_cover_simple;
          Alcotest.test_case "cover contradiction" `Quick test_cover_unreachable;
          Alcotest.test_case "cover unreachable under assumes" `Quick
            test_cover_semantic_unreachable;
          Alcotest.test_case "assumes respected" `Quick test_assumes_respected;
          Alcotest.test_case "feedback circuit trace" `Quick test_feedback_circuit_bounded;
          Alcotest.test_case "feedback bounded unreachable" `Quick
            test_feedback_unreachable_is_bounded;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "watch nets" `Quick test_watch_nets;
          Alcotest.test_case "trace rendering" `Quick test_trace_rendering;
        ] );
      ( "properties",
        [ prop_traces_replay; prop_parity_cover; prop_bmc_matches_exhaustive_sim ] );
    ]
