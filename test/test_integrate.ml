(* Tests for Test Integration: block profiling, integration-point planning,
   instrumentation transparency, gating, the C-library emitter, and the
   aging-library runner. *)

let functional16 () =
  Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()

(* a small program with a hot inner loop and a cold-but-routine outer body *)
let looped_program =
  Minic.
    {
      globals = [ Gint ("out", 0) ];
      funcs =
        [
          {
            fname = "main";
            params = [];
            ret = None;
            body =
              [
                Decl (Tint, "acc", i 0);
                For
                  ( Decl (Tint, "outer", i 0),
                    v "outer" < i 20,
                    Assign ("outer", v "outer" + i 1),
                    [
                      For
                        ( Decl (Tint, "inner", i 0),
                          v "inner" < i 30,
                          Assign ("inner", v "inner" + i 1),
                          [ Assign ("acc", v "acc" + Binop (Bxor, v "outer", v "inner")) ] );
                    ] );
                Assign ("out", v "acc");
              ];
          };
        ];
    }

let compiled = Minic.compile looped_program

let small_suite =
  (* a couple of deterministic hand-built cases so the tests do not depend
     on the formal engine *)
  Testgen.random_alu_suite ~seed:5 ~width:16 ~cases:3 ()

let test_profile_counts () =
  let prof = Integrate.profile (functional16 ()) compiled in
  let count label = List.assoc label prof in
  Alcotest.(check int) "start runs once" 1 (count "__start");
  Alcotest.(check int) "main runs once" 1 (count "main");
  (* the inner loop head runs 20 * (30 + 1) times, the outer head 21 *)
  let loop_counts = List.filter (fun (l, c) -> l <> "__start" && c > 100) prof in
  Alcotest.(check bool) "hot inner blocks found" true (List.length loop_counts >= 1);
  ignore count

let test_dynamic_instructions () =
  let prof = Integrate.profile (functional16 ()) compiled in
  let total = Integrate.dynamic_instructions compiled prof in
  let m = functional16 () in
  Machine.reset m;
  ignore (Machine.run m (Minic.assemble compiled));
  let retired = Machine.instructions_retired m in
  (* The block model over-approximates: a branch out of a block's middle
     still charges the whole block.  It must stay within a reasonable band
     of the true count. *)
  Alcotest.(check bool) "dynamic estimate within 50% of retirement" true
    (total > 0
    && Float.abs (float_of_int (total - retired)) /. float_of_int retired < 0.5)

let test_plan_picks_cold_block () =
  let prof = Integrate.profile (functional16 ()) compiled in
  let plan =
    Integrate.plan_integration ~overhead_threshold:0.05 ~compiled ~profile:prof
      ~suite:small_suite ()
  in
  Alcotest.(check bool) "estimated under threshold" true
    (plan.Integrate.estimated_overhead <= 0.05 +. 1e-9);
  Alcotest.(check bool) "block routinely executed" true (plan.Integrate.block_count >= 1)

let test_plan_gates_when_hot () =
  let prof = Integrate.profile (functional16 ()) compiled in
  (* a threshold so small that even count=1 blocks exceed it: must gate *)
  let plan =
    Integrate.plan_integration ~overhead_threshold:0.00001 ~compiled ~profile:prof
      ~suite:small_suite ()
  in
  Alcotest.(check bool) "gated" true (plan.Integrate.gate <> None);
  Alcotest.(check bool) "gated overhead within budget-ish" true
    (plan.Integrate.estimated_overhead < 0.01)

let run_cycles code =
  let m = functional16 () in
  Machine.reset m;
  match Machine.run ~max_instructions:5_000_000 m (Isa.assemble code) with
  | Machine.Exited 0 -> (Machine.cycles m, Bitvec.to_int (Machine.mem m 32))
  | o -> Alcotest.failf "run failed: %a" Machine.pp_outcome o

let test_instrument_transparent () =
  let prof = Integrate.profile (functional16 ()) compiled in
  let plan =
    Integrate.plan_integration ~overhead_threshold:0.05 ~compiled ~profile:prof
      ~suite:small_suite ()
  in
  let code = Integrate.instrument ~compiled ~suite:small_suite ~plan in
  let base_cycles, base_out = run_cycles compiled.Minic.code in
  let inst_cycles, inst_out = run_cycles code in
  Alcotest.(check int) "application result preserved" base_out inst_out;
  Alcotest.(check bool) "tests add cycles" true (inst_cycles > base_cycles);
  let overhead = float_of_int (inst_cycles - base_cycles) /. float_of_int base_cycles in
  Alcotest.(check bool) "measured overhead sane (<10%)" true (overhead < 0.10)

let test_instrument_detects_faults () =
  (* instrumented application on a faulty ALU exits with the SDC code *)
  let suite =
    let r =
      Lift.lift_pair (Lift.alu_target ~width:16 ()) ~start_dff:"a_q0" ~end_dff:"r_q0"
        ~violation:Fault.Setup_violation
    in
    Lift.suite_of_results (Lift.Alu_module { width = 16 }) [ r ]
  in
  let prof = Integrate.profile (functional16 ()) compiled in
  let plan =
    Integrate.plan_integration ~overhead_threshold:0.10 ~compiled ~profile:prof ~suite ()
  in
  let code = Integrate.instrument ~compiled ~suite ~plan in
  let spec =
    {
      Fault.start_dff = "a_q0";
      end_dff = "r_q0";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  let faulty = Fault.failing_netlist (Alu.netlist ~width:16 ()) spec in
  let m = Machine.create ~alu:(Machine.Alu_netlist faulty) ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  match Machine.run ~max_instructions:5_000_000 m (Isa.assemble code) with
  | Machine.Exited code when code = Isa.exit_sdc -> ()
  | o -> Alcotest.failf "expected in-app SDC detection, got %a" Machine.pp_outcome o

let test_c_library_emission () =
  let c = Integrate.emit_c_library ~name:"vega_t" small_suite in
  let contains needle =
    let nl = String.length needle and hl = String.length c in
    let rec go i = i + nl <= hl && (String.sub c i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has case functions" true (contains "vega_t_case_0");
  Alcotest.(check bool) "has run_all" true (contains "int vega_t_run_all");
  Alcotest.(check bool) "has random driver" true (contains "vega_t_run_random");
  Alcotest.(check bool) "inline asm" true (contains "__asm__ volatile");
  Alcotest.(check bool) "mentions li" true (contains "li x")

let test_runner_strategies () =
  let m = functional16 () in
  Alcotest.(check bool) "sequential ok" true
    (Integrate.Runner.run_tests m small_suite Integrate.Runner.Sequential = Ok ());
  Alcotest.(check bool) "random order ok" true
    (Integrate.Runner.run_tests m small_suite (Integrate.Runner.Random_order 9) = Ok ());
  Integrate.Runner.run_tests_exn m small_suite Integrate.Runner.Sequential

let test_run_slice_rotation () =
  let m = functional16 () in
  let n = List.length small_suite.Lift.suite_cases in
  (* a full rotation passes on healthy hardware *)
  for k = 0 to (2 * n) - 1 do
    Alcotest.(check bool) "slice ok" true (Integrate.Runner.run_slice m small_suite ~index:k = Ok ())
  done;
  Alcotest.(check bool) "empty suite ok" true
    (Integrate.Runner.run_slice m
       { Lift.suite_target = Lift.Alu_module { width = 16 }; suite_cases = [] }
       ~index:0
    = Ok ())

let test_runner_preserves_state () =
  let m = functional16 () in
  Machine.reset m;
  let _ =
    Machine.run m
      (Isa.assemble [ Isa.Li (1, 1234); Isa.Li (2, 77); Isa.Sw (1, 0, 8); Isa.Ecall 0 ])
  in
  let observe () =
    ( List.init 16 (fun r -> Bitvec.to_int (Machine.reg m r)),
      Bitvec.to_int (Machine.mem m 8),
      Machine.cycles m,
      Machine.instructions_retired m )
  in
  let before = observe () in
  Alcotest.(check bool) "suite passes" true
    (Integrate.Runner.run_tests m small_suite Integrate.Runner.Sequential = Ok ());
  Alcotest.(check bool) "architectural state restored" true (before = observe ())

let test_runner_detects_and_raises () =
  let target = Lift.alu_target ~width:16 () in
  let r = Lift.lift_pair target ~start_dff:"b_q0" ~end_dff:"r_q1" ~violation:Fault.Setup_violation in
  let suite = Lift.suite_of_results target.Lift.kind [ r ] in
  let spec =
    {
      Fault.start_dff = "b_q0";
      end_dff = "r_q1";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  let m =
    Machine.create
      ~alu:(Machine.Alu_netlist (Fault.failing_netlist target.Lift.netlist spec))
      ~fpu:Machine.Fpu_functional ()
  in
  (match Integrate.Runner.run_tests m suite Integrate.Runner.Sequential with
  | Error id -> Alcotest.(check bool) "identifies the case" true (String.length id > 0)
  | Ok () -> Alcotest.fail "fault not detected");
  match Integrate.Runner.run_tests_exn m suite Integrate.Runner.Sequential with
  | () -> Alcotest.fail "expected exception"
  | exception Integrate.Runner.Sdc_detected _ -> ()

let () =
  Alcotest.run "integrate"
    [
      ( "profiling",
        [
          Alcotest.test_case "block counts" `Quick test_profile_counts;
          Alcotest.test_case "dynamic instruction model" `Quick test_dynamic_instructions;
        ] );
      ( "planning",
        [
          Alcotest.test_case "picks block under budget" `Quick test_plan_picks_cold_block;
          Alcotest.test_case "gates hot programs" `Quick test_plan_gates_when_hot;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "transparent to the app" `Quick test_instrument_transparent;
          Alcotest.test_case "detects faults in-app" `Quick test_instrument_detects_faults;
        ] );
      ( "aging library",
        [
          Alcotest.test_case "C emission" `Quick test_c_library_emission;
          Alcotest.test_case "runner strategies" `Quick test_runner_strategies;
          Alcotest.test_case "rotating slice" `Quick test_run_slice_rotation;
          Alcotest.test_case "runner preserves app state" `Quick test_runner_preserves_state;
          Alcotest.test_case "runner detects and raises" `Quick test_runner_detects_and_raises;
        ] );
    ]
