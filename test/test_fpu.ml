(* Tests for the floating-point substrate: the format module, the golden
   softfloat model, and exhaustive gate-vs-golden cross-checks. *)

module F = Fpu_format

let tiny = F.tiny
let b16 = F.binary16

let bv w v = Bitvec.create ~width:w v

let test_format_basics () =
  Alcotest.(check int) "binary16 width" 16 (F.width b16);
  Alcotest.(check int) "binary16 bias" 15 (F.bias b16);
  Alcotest.(check int) "tiny width" 6 (F.width tiny);
  Alcotest.(check bool) "qnan is nan" true (F.is_nan b16 (F.qnan b16));
  Alcotest.(check bool) "inf is inf" true (F.is_inf b16 (F.infinity b16 ~sign:true));
  Alcotest.(check bool) "zero is zero" true (F.is_zero b16 (F.zero b16 ~sign:false));
  Alcotest.(check (float 1e-9)) "one" 1.0 (F.to_float b16 (F.one b16))

let test_float_roundtrip () =
  List.iter
    (fun x ->
      let v = F.of_float b16 x in
      let back = F.to_float b16 v in
      Alcotest.(check bool)
        (Printf.sprintf "%g roundtrips closely" x)
        true
        (Float.abs (back -. x) <= Float.abs x *. 0.001))
    [ 1.0; -2.5; 0.125; 3.1415; -1000.0; 65000.0 ]

let test_float_conversion_specials () =
  Alcotest.(check bool) "nan" true (Float.is_nan (F.to_float b16 (F.of_float b16 Float.nan)));
  Alcotest.(check (float 0.0)) "inf" Float.infinity (F.to_float b16 (F.of_float b16 1e10));
  Alcotest.(check (float 0.0)) "neg inf saturates" Float.neg_infinity
    (F.to_float b16 (F.of_float b16 (-1e10)));
  Alcotest.(check (float 0.0)) "tiny flushes to zero" 0.0 (F.to_float b16 (F.of_float b16 1e-8))

let test_op_codes () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "roundtrip" true (F.op_of_code (F.op_code op) = Some op);
      Alcotest.(check bool) "name" true (F.op_of_name (F.op_name op) = Some op))
    F.all_ops

let test_flags_roundtrip () =
  for v = 0 to 15 do
    Alcotest.(check int) "flags int roundtrip" v (F.flags_to_int (F.flags_of_int v))
  done

(* softfloat semantic spot checks against real float arithmetic *)
let test_softfloat_semantics () =
  let check_binop name op fop cases =
    List.iter
      (fun (x, y) ->
        let a = F.of_float b16 x and b = F.of_float b16 y in
        let r, _ = Softfloat.apply b16 op a b in
        let expect = fop x y in
        let got = F.to_float b16 r in
        if Float.is_nan expect then
          Alcotest.(check bool) (Printf.sprintf "%s %g %g nan" name x y) true (Float.is_nan got)
        else
          Alcotest.(check bool)
            (Printf.sprintf "%s %g %g = %g (got %g)" name x y expect got)
            true
            (Float.abs (got -. expect) <= Float.abs expect *. 0.01 +. 1e-6))
      cases
  in
  check_binop "fadd" F.Fadd ( +. ) [ (1.0, 2.0); (-1.5, 0.5); (100.0, 0.25); (0.0, -0.0) ];
  check_binop "fsub" F.Fsub ( -. ) [ (3.0, 1.0); (1.0, 1.0); (-2.0, 5.0) ];
  check_binop "fmul" F.Fmul ( *. ) [ (2.0, 3.0); (-4.0, 0.5); (0.1, 0.1) ]

let test_softfloat_specials () =
  let inf = F.infinity b16 ~sign:false and ninf = F.infinity b16 ~sign:true in
  let nan = F.qnan b16 in
  let one = F.one b16 in
  let r, fl = Softfloat.add b16 inf ninf in
  Alcotest.(check bool) "inf - inf is nan" true (F.is_nan b16 r);
  Alcotest.(check bool) "invalid raised" true fl.F.invalid;
  let r, fl = Softfloat.mul b16 inf (F.zero b16 ~sign:false) in
  Alcotest.(check bool) "inf * 0 is nan" true (F.is_nan b16 r);
  Alcotest.(check bool) "invalid" true fl.F.invalid;
  let r, _ = Softfloat.add b16 one nan in
  Alcotest.(check bool) "nan propagates" true (F.is_nan b16 r);
  let eqr, eqf = Softfloat.eq b16 nan nan in
  Alcotest.(check bool) "nan != nan" false eqr;
  Alcotest.(check bool) "feq quiet" false eqf.F.invalid;
  let ltr, ltf = Softfloat.lt b16 nan one in
  Alcotest.(check bool) "nan < x false" false ltr;
  Alcotest.(check bool) "flt signaling" true ltf.F.invalid

let test_softfloat_minmax_zero_signs () =
  let pz = F.zero b16 ~sign:false and nz = F.zero b16 ~sign:true in
  let mn, _ = Softfloat.min_f b16 pz nz in
  Alcotest.(check bool) "min(+0,-0) = -0" true (F.sign_of b16 mn);
  let mx, _ = Softfloat.max_f b16 nz pz in
  Alcotest.(check bool) "max(-0,+0) = +0" false (F.sign_of b16 mx);
  let one = F.one b16 and nan = F.qnan b16 in
  let mn, _ = Softfloat.min_f b16 nan one in
  Alcotest.(check bool) "min(nan, 1) = 1" true (Bitvec.equal mn one)

let test_softfloat_overflow_underflow () =
  (* largest normal * 2 overflows *)
  let big = F.pack b16 ~sign:false ~exp:(F.exp_max b16 - 1) ~man:((1 lsl 10) - 1) in
  let two = F.of_float b16 2.0 in
  let r, fl = Softfloat.mul b16 big two in
  Alcotest.(check bool) "overflow to inf" true (F.is_inf b16 r);
  Alcotest.(check bool) "overflow flag" true fl.F.overflow;
  (* smallest normal * 0.5 underflows to zero (FTZ) *)
  let small = F.pack b16 ~sign:false ~exp:1 ~man:0 in
  let half = F.of_float b16 0.5 in
  let r, fl = Softfloat.mul b16 small half in
  Alcotest.(check bool) "underflow to zero" true (F.is_zero b16 r);
  Alcotest.(check bool) "underflow flag" true fl.F.underflow

(* --- gate level vs golden --- *)

let run_fpu fmt sim op a b =
  Sim.set_input sim Fpu.op_port (bv 3 (F.op_code op));
  Sim.set_input sim Fpu.a_port a;
  Sim.set_input sim Fpu.b_port b;
  Sim.set_input sim Fpu.in_valid_port (bv 1 1);
  Sim.step sim;
  Sim.step sim;
  ignore fmt;
  (Sim.output sim Fpu.r_port, Sim.output sim Fpu.flags_port)

let test_gate_vs_golden_tiny_exhaustive () =
  let nl = Fpu.netlist ~fmt:tiny () in
  let sim = Sim.create nl in
  let w = F.width tiny in
  List.iter
    (fun op ->
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          let va = bv w a and vb = bv w b in
          let expect_r, expect_fl = Softfloat.apply tiny op va vb in
          let got_r, got_fl = run_fpu tiny sim op va vb in
          if not (Bitvec.equal expect_r got_r) then
            Alcotest.failf "%s %s %s: expected %s got %s" (F.op_name op) (Bitvec.to_string va)
              (Bitvec.to_string vb) (Bitvec.to_string expect_r) (Bitvec.to_string got_r);
          if F.flags_to_int expect_fl <> Bitvec.to_int got_fl then
            Alcotest.failf "%s %s %s: flags expected %d got %d" (F.op_name op)
              (Bitvec.to_string va) (Bitvec.to_string vb) (F.flags_to_int expect_fl)
              (Bitvec.to_int got_fl)
        done
      done)
    F.all_ops

let test_fpu_structure () =
  let nl = Fpu.netlist () in
  Alcotest.(check bool) "thousands of cells" true (Netlist.num_cells nl > 2500);
  Alcotest.(check (option int)) "pipeline depth 2" (Some 2) (Formal.sequential_depth nl);
  ignore (Netlist.find_cell nl "v_out");
  ignore (Netlist.find_cell nl "r_q0")

let test_valid_chain () =
  let nl = Fpu.netlist ~fmt:tiny () in
  let sim = Sim.create nl in
  Alcotest.(check int) "idle invalid" 0 (Bitvec.to_int (Sim.output sim Fpu.valid_port));
  Sim.set_input sim Fpu.in_valid_port (bv 1 1);
  Sim.step sim;
  Sim.set_input sim Fpu.in_valid_port (bv 1 0);
  Alcotest.(check int) "after one cycle still pending" 0
    (Bitvec.to_int (Sim.output sim Fpu.valid_port));
  Sim.step sim;
  Alcotest.(check int) "valid after latency" 1 (Bitvec.to_int (Sim.output sim Fpu.valid_port));
  Sim.step sim;
  Alcotest.(check int) "token drains" 0 (Bitvec.to_int (Sim.output sim Fpu.valid_port))

let gen_b16_interesting =
  QCheck.Gen.(
    frequency
      [
        (6, int_bound 65535);
        (1, return 0);
        (1, return 0x8000);  (* -0 *)
        (1, return 0x7C00);  (* +inf *)
        (1, return 0xFC00);  (* -inf *)
        (1, return 0x7E00);  (* qnan *)
        (1, return 0x0001);  (* ftz-denormal encoding *)
      ])

let prop_gate_vs_golden_b16 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:400 ~name:"binary16 gate FPU matches golden"
       (QCheck.make
          ~print:(fun (o, a, b) -> Printf.sprintf "op=%d a=%04x b=%04x" o a b)
          QCheck.Gen.(triple (int_bound 7) gen_b16_interesting gen_b16_interesting))
       (let nl = Fpu.netlist () in
        let sim = Sim.create nl in
        fun (o, a, b) ->
          let op = Option.get (F.op_of_code o) in
          let va = bv 16 a and vb = bv 16 b in
          let expect_r, expect_fl = Softfloat.apply b16 op va vb in
          let got_r, got_fl = run_fpu b16 sim op va vb in
          Bitvec.equal expect_r got_r && F.flags_to_int expect_fl = Bitvec.to_int got_fl))

(* Same sweep through both engines: each random case occupies one Sim64
   lane (in_valid driven per lane), and lane k's result and flags must
   match both the scalar engine and the golden model. *)
let prop_b16_both_engines =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"binary16 FPU: scalar and 64-lane engines agree"
       (QCheck.make
          ~print:(fun l ->
            String.concat ";"
              (List.map (fun (o, a, b) -> Printf.sprintf "(%d,%04x,%04x)" o a b) l))
          QCheck.Gen.(
            list_size (int_range 1 Sim64.lanes)
              (triple (int_bound 7) gen_b16_interesting gen_b16_interesting)))
       (let nl = Fpu.netlist () in
        let sim = Sim.create nl in
        let s64 = Sim64.create nl in
        fun cases ->
          Sim64.reset s64;
          List.iteri
            (fun lane (o, a, b) ->
              Sim64.set_input s64 ~lane Fpu.op_port (bv 3 o);
              Sim64.set_input s64 ~lane Fpu.a_port (bv 16 a);
              Sim64.set_input s64 ~lane Fpu.b_port (bv 16 b);
              Sim64.set_input s64 ~lane Fpu.in_valid_port (bv 1 1))
            cases;
          Sim64.step s64;
          Sim64.step s64;
          let ok = ref true in
          List.iteri
            (fun lane (o, a, b) ->
              let op = Option.get (F.op_of_code o) in
              let va = bv 16 a and vb = bv 16 b in
              let expect_r, expect_fl = Softfloat.apply b16 op va vb in
              let got_r, got_fl = run_fpu b16 sim op va vb in
              let r64 = Sim64.output s64 ~lane Fpu.r_port in
              let fl64 = Sim64.output s64 ~lane Fpu.flags_port in
              if
                not
                  (Bitvec.equal expect_r got_r
                  && Bitvec.equal expect_r r64
                  && F.flags_to_int expect_fl = Bitvec.to_int got_fl
                  && Bitvec.to_int got_fl = Bitvec.to_int fl64)
              then ok := false)
            cases;
          !ok))

let prop_softfloat_add_commutes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"softfloat add commutes"
       (QCheck.make
          ~print:(fun (a, b) -> Printf.sprintf "a=%04x b=%04x" a b)
          QCheck.Gen.(pair gen_b16_interesting gen_b16_interesting))
       (fun (a, b) ->
         let va = bv 16 a and vb = bv 16 b in
         let r1, _ = Softfloat.add b16 va vb and r2, _ = Softfloat.add b16 vb va in
         Bitvec.equal r1 r2))

let prop_softfloat_mul_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"x * 1 = x for finite normals"
       (QCheck.make ~print:(Printf.sprintf "%04x") gen_b16_interesting)
       (fun a ->
         let va = bv 16 a in
         QCheck.assume (not (F.is_nan b16 va) && not (F.is_zero b16 va) && not (F.is_inf b16 va));
         let r, fl = Softfloat.mul b16 va (F.one b16) in
         Bitvec.equal r va && not fl.F.inexact))

let () =
  Alcotest.run "fpu"
    [
      ( "format",
        [
          Alcotest.test_case "basics" `Quick test_format_basics;
          Alcotest.test_case "float roundtrip" `Quick test_float_roundtrip;
          Alcotest.test_case "conversion specials" `Quick test_float_conversion_specials;
          Alcotest.test_case "op codes" `Quick test_op_codes;
          Alcotest.test_case "flags roundtrip" `Quick test_flags_roundtrip;
        ] );
      ( "softfloat",
        [
          Alcotest.test_case "semantics vs real floats" `Quick test_softfloat_semantics;
          Alcotest.test_case "specials" `Quick test_softfloat_specials;
          Alcotest.test_case "minmax zero signs" `Quick test_softfloat_minmax_zero_signs;
          Alcotest.test_case "overflow underflow" `Quick test_softfloat_overflow_underflow;
        ] );
      ( "gate level",
        [
          Alcotest.test_case "tiny format exhaustive" `Slow test_gate_vs_golden_tiny_exhaustive;
          Alcotest.test_case "structure" `Quick test_fpu_structure;
          Alcotest.test_case "valid chain" `Quick test_valid_chain;
        ] );
      ( "properties",
        [
          prop_gate_vs_golden_b16;
          prop_b16_both_engines;
          prop_softfloat_add_commutes;
          prop_softfloat_mul_identity;
        ]
      );
    ]
