(* Tests for the static-verification suite: structural lint, SAT-based
   equivalence checking (CEC), SCOAP testability, and the seeded-mutation
   machinery behind them. *)

module B = Netlist.Builder
module R = Netlist.Raw

let alu8 = Alu.netlist ~width:8 ()
let fpu = Fpu.netlist ()

(* --- lint --- *)

let test_selftest_corpus () =
  List.iter
    (fun (code, design) ->
      let diags = Check.lint design in
      Alcotest.(check bool)
        (Printf.sprintf "%s fires on %s" (Check.code_id code) design.R.r_name)
        true
        (List.exists (fun (d : Check.diagnostic) -> d.Check.code = code) diags))
    Check.selftest_designs

let test_distinct_codes () =
  (* the four headline defect classes each report their own distinct code *)
  let code_for name =
    let _, design =
      List.find (fun (_, d) -> d.R.r_name = name) Check.selftest_designs
    in
    List.map (fun (d : Check.diagnostic) -> Check.code_id d.Check.code) (Check.lint design)
  in
  Alcotest.(check (list string)) "multi_driver" [ "NL001" ] (code_for "multi_driver");
  Alcotest.(check (list string)) "floating_input" [ "NL002" ] (code_for "floating_input");
  Alcotest.(check (list string)) "comb_cycle" [ "NL004" ] (code_for "comb_cycle");
  Alcotest.(check (list string)) "dead_gate" [ "NL005"; "NL008" ] (code_for "dead_gate")

let test_const_dff_rule () =
  (* NL011: a register fed (transitively, through combinational logic and
     like-reset registers) by tie cells alone never changes state. *)
  let b = B.create "nl011" in
  let t = B.add_cell b Cell.Kind.Tie1 [||] in
  let n = B.add_cell b Cell.Kind.Not [| t |] in
  let q = B.add_cell ~clock_domain:0 ~reset_value:false b Cell.Kind.Dff [| n |] in
  B.add_output b "y" [| q |];
  let diags = Check.lint (B.raw b) in
  let nl011 = List.filter (fun (d : Check.diagnostic) -> Check.code_id d.Check.code = "NL011") diags in
  Alcotest.(check int) "constant-D register flagged" 1 (List.length nl011);
  Alcotest.(check bool) "NL011 is a warning" true
    (List.for_all
       (fun (d : Check.diagnostic) -> Check.severity_of d.Check.code = Check.Warning)
       nl011);
  (* a register fed from a primary input is not constant *)
  let b2 = B.create "nl011_clean" in
  let x = B.add_input b2 "x" 1 in
  let q2 = B.add_cell ~clock_domain:0 b2 Cell.Kind.Dff [| x.(0) |] in
  B.add_output b2 "y" [| q2 |];
  Alcotest.(check int) "input-fed register is clean" 0
    (List.length
       (List.filter
          (fun (d : Check.diagnostic) -> Check.code_id d.Check.code = "NL011")
          (Check.lint (B.raw b2))))

let test_unread_input_rule () =
  (* NL012: an input-port bit nothing reads is dead interface surface. *)
  let b = B.create "nl012" in
  let a = B.add_input b "a" 2 in
  let g = B.add_cell b Cell.Kind.Buf [| a.(0) |] in
  B.add_output b "y" [| g |];
  let diags = Check.lint (B.raw b) in
  let nl012 = List.filter (fun (d : Check.diagnostic) -> Check.code_id d.Check.code = "NL012") diags in
  Alcotest.(check int) "only the unread bit is flagged" 1 (List.length nl012);
  (* an input bit wired straight to an output port is read *)
  let b2 = B.create "nl012_clean" in
  let a2 = B.add_input b2 "a" 1 in
  B.add_output b2 "y" [| a2.(0) |];
  Alcotest.(check int) "output-wired input is clean" 0
    (List.length
       (List.filter
          (fun (d : Check.diagnostic) -> Check.code_id d.Check.code = "NL012")
          (Check.lint (B.raw b2))))

let test_frozen_netlists_error_free () =
  List.iter
    (fun nl ->
      Alcotest.(check int)
        (Printf.sprintf "%s has no error-class diagnostics" (Netlist.name nl))
        0
        (List.length (Check.errors (Check.lint_netlist nl))))
    [ alu8; fpu; Example_circuits.pipelined_adder () ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let golden_path name =
  if Sys.file_exists (Filename.concat "golden" name) then Filename.concat "golden" name
  else Filename.concat (Filename.concat "test" "golden") name

let test_golden_report nl file () =
  let out = Check.render ~design:(Netlist.name nl) (Check.lint_netlist nl) in
  let expected = read_file (golden_path file) in
  Alcotest.(check string) (Printf.sprintf "byte-for-byte vs golden/%s" file) expected out

(* --- CEC --- *)

let is_equiv = function Cec.Equivalent -> true | _ -> false
let is_inequiv = function Cec.Inequivalent _ -> true | _ -> false

let test_cec_reflexive () =
  Alcotest.(check bool) "alu8 = alu8" true (is_equiv (Cec.check alu8 alu8))

let test_cec_optimized () =
  List.iter
    (fun nl ->
      let opt, _ = Netlist_opt.optimize nl in
      Alcotest.(check bool)
        (Printf.sprintf "%s = optimized" (Netlist.name nl))
        true
        (is_equiv (Cec.check nl opt)))
    [ alu8; fpu ]

let test_cec_mutations_caught () =
  for seed = 0 to 9 do
    let mutant, desc = Check.mutate ~seed alu8 in
    match Cec.check alu8 mutant with
    | Cec.Inequivalent cex ->
      Alcotest.(check bool)
        (Printf.sprintf "cex site for %S" desc)
        true
        (String.length cex.Cec.cex_site > 0)
    | _ -> Alcotest.fail (Printf.sprintf "mutation not caught: %s" desc)
  done

let alu_fault_spec =
  {
    Fault.start_dff = "a_q0";
    end_dff = "r_q0";
    kind = Fault.Setup_violation;
    constant = Fault.C0;
    activation = Fault.Any_transition;
  }

let test_cec_fault_tied_inert () =
  let faulty = Fault.failing_netlist alu8 alu_fault_spec in
  let tie_low = Fault.select_cells faulty in
  Alcotest.(check bool) "select cells found" true (tie_low <> []);
  Alcotest.(check bool) "inert replica = golden" true
    (is_equiv (Cec.check ~free_inputs:true ~tie_low alu8 faulty))

let test_cec_fault_active_differs () =
  (* without the tie-low, the armed failure model is a real difference *)
  let faulty = Fault.failing_netlist alu8 alu_fault_spec in
  Alcotest.(check bool) "armed replica differs" true
    (is_inequiv (Cec.check ~free_inputs:true alu8 faulty))

let dff_pair_netlist name reset =
  let b = B.create name in
  let d = B.add_input b "d" 1 in
  let q = B.add_cell ~name:"r" ~clock_domain:0 ~reset_value:reset b Cell.Kind.Dff d in
  B.add_output b "q" [| q |];
  B.finish b

let test_cec_reset_mismatch () =
  match Cec.check (dff_pair_netlist "t" false) (dff_pair_netlist "t" true) with
  | Cec.Inequivalent cex ->
    Alcotest.(check bool) "site names the register" true
      (String.length cex.Cec.cex_site > 0)
  | _ -> Alcotest.fail "reset-value mismatch not reported"

let test_cec_interface_checks () =
  let one_wide =
    let b = B.create "iface" in
    let a = B.add_input b "a" 1 in
    B.add_output b "y" [| a.(0) |];
    B.finish b
  in
  let two_wide =
    let b = B.create "iface" in
    let a = B.add_input b "a" 2 in
    B.add_output b "y" [| a.(0) |];
    B.finish b
  in
  (match Cec.check one_wide two_wide with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width mismatch accepted");
  (* an extra input port is rejected strictly but free under free_inputs *)
  let extra =
    let b = B.create "iface" in
    let a = B.add_input b "a" 1 in
    let e = B.add_input b "extra" 1 in
    let y = B.add_cell b Cell.Kind.Or2 [| a.(0); e.(0) |] in
    B.add_output b "y" [| y |];
    B.finish b
  in
  (match Cec.check one_wide extra with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "extra port accepted without free_inputs");
  (* with a free extra input the OR can differ from the plain wire *)
  Alcotest.(check bool) "free extra input differs" true
    (is_inequiv (Cec.check ~free_inputs:true one_wide extra))

let test_mutate_requires_site () =
  let b = B.create "no_sites" in
  let a = B.add_input b "a" 1 in
  let dead = B.add_cell b Cell.Kind.Buf [| a.(0) |] in
  ignore dead;
  let nl = B.finish b in
  match Check.mutate nl with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mutate accepted a netlist with no comparison points"

(* --- SCOAP --- *)

let test_scoap_hand_example () =
  let b = B.create "scoap" in
  let a = B.add_input b "a" 1 in
  let c = B.add_input b "c" 1 in
  let g = B.add_cell ~name:"g" b Cell.Kind.And2 [| a.(0); c.(0) |] in
  let dead = B.add_cell ~name:"dead" b Cell.Kind.Not [| a.(0) |] in
  ignore dead;
  B.add_output b "y" [| g |];
  let nl = B.finish b in
  let t = Scoap.analyze nl in
  let na = (Netlist.find_input nl "a").Netlist.port_nets.(0) in
  let ng = (Netlist.find_cell nl "g").Netlist.output in
  let ndead = (Netlist.find_cell nl "dead").Netlist.output in
  Alcotest.(check int) "CC0(input)" 1 (Scoap.cc0 t na);
  Alcotest.(check int) "CC1(input)" 1 (Scoap.cc1 t na);
  Alcotest.(check int) "CC1(and) = CC1(a)+CC1(c)+1" 3 (Scoap.cc1 t ng);
  Alcotest.(check int) "CC0(and) = min+1" 2 (Scoap.cc0 t ng);
  Alcotest.(check int) "CO(exported net)" 0 (Scoap.co t ng);
  Alcotest.(check int) "CO(a) through the and" 2 (Scoap.co t na);
  Alcotest.(check bool) "dead gate unobservable" true (Scoap.co t ndead >= Scoap.unobservable);
  Alcotest.(check bool) "dead ranks hardest" true (fst (List.hd (Scoap.hardest nl t)) = "dead")

let test_scoap_ranking () =
  let dffs = Netlist.dffs alu8 in
  let pairs =
    List.concat_map
      (fun x -> List.map (fun y -> (Sta.From_dff x, Sta.At_dff y, Sta.Setup, -1.0)) dffs)
      (match dffs with x :: y :: _ -> [ x; y ] | _ -> Alcotest.fail "alu8 has registers")
  in
  let ranked = Testgen.scoap_ranked_pairs alu8 pairs in
  Alcotest.(check int) "permutation: same length" (List.length pairs) (List.length ranked);
  List.iter
    (fun p -> Alcotest.(check bool) "permutation: same elements" true (List.mem p pairs))
    ranked;
  let t = Scoap.analyze alu8 in
  let difficulty (sp, Sta.At_dff y, _, _) =
    let l =
      match sp with
      | Sta.From_dff x -> (Netlist.cell alu8 x).Netlist.output
      | Sta.From_input (p, bit) -> Netlist.net_of_port_bit alu8 p bit
    in
    let q = (Netlist.cell alu8 y).Netlist.output in
    Scoap.cc0 t l + Scoap.cc1 t l + Scoap.co t q
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> difficulty a >= difficulty b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "hardest first" true (non_increasing ranked)

(* --- QCheck properties over random netlists --- *)

let comb_kinds =
  [|
    Cell.Kind.Buf; Cell.Kind.Not; Cell.Kind.And2; Cell.Kind.Or2; Cell.Kind.Xor2;
    Cell.Kind.Nand2; Cell.Kind.Nor2; Cell.Kind.Xnor2; Cell.Kind.Mux2;
  |]

let build_random_netlist rng =
  let b = B.create "rand" in
  let pool = ref [] in
  let n_ports = 1 + Random.State.int rng 3 in
  for i = 0 to n_ports - 1 do
    let w = 1 + Random.State.int rng 4 in
    pool := Array.to_list (B.add_input b (Printf.sprintf "in%d" i) w) @ !pool
  done;
  let pick () =
    let a = Array.of_list !pool in
    a.(Random.State.int rng (Array.length a))
  in
  let n_cells = 5 + Random.State.int rng 36 in
  for _ = 1 to n_cells do
    let out =
      if Random.State.int rng 4 = 0 then
        B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
          [| pick () |]
      else begin
        let k = comb_kinds.(Random.State.int rng (Array.length comb_kinds)) in
        B.add_cell b k (Array.init (Cell.Kind.arity k) (fun _ -> pick ()))
      end
    in
    pool := out :: !pool
  done;
  let n_out = 1 + Random.State.int rng 2 in
  for i = 0 to n_out - 1 do
    let w = 1 + Random.State.int rng 3 in
    B.add_output b (Printf.sprintf "out%d" i) (Array.init w (fun _ -> pick ()))
  done;
  B.finish b

let qcheck_optimize_equiv =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"Netlist_opt output is CEC-equivalent to its input"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let nl = build_random_netlist (Random.State.make [| seed; 0xce |]) in
         let opt, _ = Netlist_opt.optimize nl in
         Cec.check nl opt = Cec.Equivalent))

let qcheck_mutation_caught =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"a seeded mutation is always CEC-inequivalent"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let nl = build_random_netlist (Random.State.make [| seed; 0x3d |]) in
         let mutant, _ = Check.mutate ~seed nl in
         match Cec.check nl mutant with Cec.Inequivalent _ -> true | _ -> false))

let qcheck_random_netlists_lint_clean =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"frozen netlists never lint error-class diagnostics"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let nl = build_random_netlist (Random.State.make [| seed; 0x11 |]) in
         Check.errors (Check.lint_netlist nl) = []))

let () =
  Alcotest.run "check"
    [
      ( "lint",
        [
          Alcotest.test_case "selftest corpus" `Quick test_selftest_corpus;
          Alcotest.test_case "distinct codes" `Quick test_distinct_codes;
          Alcotest.test_case "constant-D register (NL011)" `Quick test_const_dff_rule;
          Alcotest.test_case "unread input bit (NL012)" `Quick test_unread_input_rule;
          Alcotest.test_case "frozen netlists error-free" `Quick test_frozen_netlists_error_free;
          Alcotest.test_case "golden ALU report" `Quick (test_golden_report alu8 "lint_alu.txt");
          Alcotest.test_case "golden FPU report" `Quick (test_golden_report fpu "lint_fpu.txt");
        ] );
      ( "cec",
        [
          Alcotest.test_case "reflexive" `Quick test_cec_reflexive;
          Alcotest.test_case "optimized units equivalent" `Quick test_cec_optimized;
          Alcotest.test_case "mutations caught" `Quick test_cec_mutations_caught;
          Alcotest.test_case "fault replica inert when tied" `Quick test_cec_fault_tied_inert;
          Alcotest.test_case "armed fault replica differs" `Quick test_cec_fault_active_differs;
          Alcotest.test_case "reset mismatch" `Quick test_cec_reset_mismatch;
          Alcotest.test_case "interface checks" `Quick test_cec_interface_checks;
          Alcotest.test_case "mutate needs a site" `Quick test_mutate_requires_site;
        ] );
      ( "scoap",
        [
          Alcotest.test_case "hand example" `Quick test_scoap_hand_example;
          Alcotest.test_case "pair ranking" `Quick test_scoap_ranking;
        ] );
      ( "properties",
        [ qcheck_optimize_equiv; qcheck_mutation_caught; qcheck_random_netlists_lint_clean ] );
    ]
