(* The fleet engine: scheduling independence (bit-identical results for
   any domain count), kill/resume through sharded checkpoints at a
   different domain count, retry/timeout/quarantine dispositions, and
   the campaign-level determinism the CLI smoke diffs.

   Everything here runs on whatever cores the machine has — the
   properties are about VALUES, never wall-clock, so they hold on a
   single hardware core too. *)

let fresh_dir () =
  let f = Filename.temp_file "vega-fleet" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected checkpoint error: %s" msg

(* a cheap deterministic item function with real per-item work: results
   depend on both the derived seed and the payload, so any scheduling
   leak shows up as a value difference *)
let work ~seed payload =
  let st = Random.State.make [| seed; payload |] in
  let acc = ref 0 in
  for _ = 1 to 50 do
    acc := (!acc * 31) + Random.State.int st 1000 + payload
  done;
  !acc

let tasks n = List.init n (fun i -> { Fleet.tk_key = Printf.sprintf "item-%03d" i; tk_payload = i })

let encode v = Json.Int v

let decode = function
  | Json.Int v -> Ok v
  | j -> Error (Printf.sprintf "not an int: %s" (Json.to_string j))

let run_at ?checkpoint ~domains ?(max_attempts = 3) ?timeout n =
  Fleet.run
    ~config:
      {
        Fleet.fl_domains = domains;
        fl_max_attempts = max_attempts;
        fl_backoff_s = 0.001;
        fl_timeout_s = timeout;
      }
    ?checkpoint ~seed:42 ~f:work ~encode ~decode (tasks n)

let canonical results =
  Array.to_list results
  |> List.map (fun r ->
         ( r.Fleet.fr_key,
           r.Fleet.fr_seed,
           r.Fleet.fr_value,
           match r.Fleet.fr_outcome with Fleet.Quarantined e -> Some e | _ -> None ))

(* ---- derived seeds ---- *)

let test_derive_seed () =
  Alcotest.(check int)
    "stable" (Fleet.derive_seed 42 "item-001") (Fleet.derive_seed 42 "item-001");
  Alcotest.(check bool)
    "key-sensitive" true
    (Fleet.derive_seed 42 "item-001" <> Fleet.derive_seed 42 "item-002");
  Alcotest.(check bool)
    "run-seed-sensitive" true
    (Fleet.derive_seed 42 "item-001" <> Fleet.derive_seed 43 "item-001");
  Alcotest.(check bool) "nonnegative" true (Fleet.derive_seed (-7) "k" >= 0)

(* ---- scheduling independence ---- *)

let prop_domain_count_independent domains =
  let r1, s1 = run_at ~domains:1 40 in
  let rd, sd = run_at ~domains 40 in
  canonical r1 = canonical rd
  && s1.Fleet.st_completed = sd.Fleet.st_completed
  && sd.Fleet.st_quarantined = 0

let domain_independence_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:6 ~name:"results are bit-identical for any domain count"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 6))
       prop_domain_count_independent)

let test_serial_equals_parallel_with_telemetry () =
  (* counter TOTALS are deterministic too: items_done counts every item
     exactly once no matter how many domains raced for them *)
  let total_at domains =
    Telemetry.enable ~clock:(Telemetry.Clock.virtual_ ()) ();
    let _ = run_at ~domains 30 in
    let snap = Telemetry.snapshot () in
    Telemetry.disable ();
    Telemetry.reset ();
    let v name =
      List.fold_left
        (fun acc (c : Telemetry.Counter.snapshot) ->
          if c.Telemetry.Counter.c_name = name then c.Telemetry.Counter.c_value else acc)
        (-1) snap.Telemetry.ss_counters
    in
    (v "fleet.items_done", v "fleet.items_quarantined")
  in
  let d1 = total_at 1 and d4 = total_at 4 in
  Alcotest.(check (pair int int)) "counter totals equal" d1 d4;
  Alcotest.(check (pair int int)) "every item counted once" (30, 0) d4

(* ---- checkpoints: kill/resume at a different domain count ---- *)

let test_resume_across_domain_counts () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let golden, _ = run_at ~domains:1 25 in
      let sh = ok (Resilience.Checkpoint.open_sharded ~dir ~digest:"fleet-test" ~shards:4 ()) in
      let _ = run_at ~checkpoint:sh ~domains:4 25 in
      (* simulate a kill that lost some completions: delete every other
         item file in every shard.  Sweeping all shards (rather than a
         fixed subset) keeps this deterministic on a single-core box,
         where one hungry domain can end up owning every item. *)
      let deleted = ref 0 in
      List.iter
        (fun k ->
          let idir = Filename.concat (Filename.concat dir (Printf.sprintf "shard-%d" k)) "items" in
          if Sys.file_exists idir then begin
            let files = Sys.readdir idir in
            Array.sort compare files;
            Array.iteri
              (fun i f ->
                if i mod 2 = 0 then begin
                  Sys.remove (Filename.concat idir f);
                  incr deleted
                end)
              files
          end)
        [ 0; 1; 2; 3 ];
      Alcotest.(check bool) "something was lost" true (!deleted > 0);
      (* resume at a DIFFERENT domain count *)
      let sh2 =
        ok (Resilience.Checkpoint.open_sharded ~resume:true ~dir ~digest:"fleet-test" ~shards:2 ())
      in
      let resumed, stats = run_at ~checkpoint:sh2 ~domains:2 25 in
      Alcotest.(check bool)
        "surviving items restored, lost ones recomputed" true
        (stats.Fleet.st_checkpoint_hits = 25 - !deleted);
      Alcotest.(check bool) "byte-identical values" true (canonical golden = canonical resumed))

(* ---- retries, quarantine, stragglers ---- *)

let test_flaky_item_retried () =
  let failures = Array.init 10 (fun _ -> Atomic.make 0) in
  let f ~seed:_ i =
    if i = 4 && Atomic.fetch_and_add failures.(i) 1 < 2 then failwith "flaky";
    i * 10
  in
  let results, stats =
    Fleet.run
      ~config:
        { Fleet.fl_domains = 2; fl_max_attempts = 5; fl_backoff_s = 0.001; fl_timeout_s = None }
      ~seed:1 ~f ~encode ~decode (tasks 10)
  in
  Alcotest.(check int) "value correct after retries" 40 (Option.get results.(4).Fleet.fr_value);
  (match results.(4).Fleet.fr_outcome with
  | Fleet.Retried n -> Alcotest.(check int) "two failed attempts recorded" 2 n
  | o -> Alcotest.failf "expected Retried, got %s" (Fleet.outcome_name o));
  Alcotest.(check int) "one item retried" 1 stats.Fleet.st_retried;
  Alcotest.(check int) "nothing quarantined" 0 stats.Fleet.st_quarantined

let test_persistent_failure_quarantined () =
  let f ~seed:_ i = if i = 2 || i = 5 then failwith (Printf.sprintf "poisoned %d" i) else i in
  let results, stats =
    Fleet.run
      ~config:
        { Fleet.fl_domains = 3; fl_max_attempts = 3; fl_backoff_s = 0.001; fl_timeout_s = None }
      ~seed:1 ~f ~encode ~decode (tasks 8)
  in
  Alcotest.(check int) "two quarantined" 2 stats.Fleet.st_quarantined;
  Alcotest.(check int) "the rest completed" 6 stats.Fleet.st_completed;
  (match results.(2).Fleet.fr_outcome with
  | Fleet.Quarantined msg ->
    Alcotest.(check string) "final error kept" "Failure(\"poisoned 2\")" msg
  | o -> Alcotest.failf "expected Quarantined, got %s" (Fleet.outcome_name o));
  Alcotest.(check (option int)) "no value for a quarantined item" None results.(5).Fleet.fr_value;
  Alcotest.(check int) "attempt budget honored" 3 results.(5).Fleet.fr_attempts

let test_quarantine_disposition_checkpointed () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let executions = Atomic.make 0 in
      let f ~seed:_ i =
        if i = 1 then begin
          Atomic.incr executions;
          failwith "always fails"
        end
        else i
      in
      let cfg =
        { Fleet.fl_domains = 1; fl_max_attempts = 3; fl_backoff_s = 0.001; fl_timeout_s = None }
      in
      let sh = ok (Resilience.Checkpoint.open_sharded ~dir ~digest:"q" ~shards:1 ()) in
      let _ = Fleet.run ~config:cfg ~checkpoint:sh ~seed:1 ~f ~encode ~decode (tasks 3) in
      Alcotest.(check int) "attempt budget burned once" 3 (Atomic.get executions);
      let sh2 = ok (Resilience.Checkpoint.open_sharded ~resume:true ~dir ~digest:"q" ~shards:1 ()) in
      let results, stats = Fleet.run ~config:cfg ~checkpoint:sh2 ~seed:1 ~f ~encode ~decode (tasks 3) in
      (* the quarantine disposition was persisted: the resume re-executes
         NOTHING, not even the poisoned item *)
      Alcotest.(check int) "no re-execution on resume" 3 (Atomic.get executions);
      Alcotest.(check int) "all items from checkpoint" 3 stats.Fleet.st_checkpoint_hits;
      match results.(1).Fleet.fr_outcome with
      | Fleet.Quarantined _ -> ()
      | o -> Alcotest.failf "expected restored Quarantined, got %s" (Fleet.outcome_name o))

let test_straggler_redispatched () =
  (* one item sleeps well past the timeout; the run must still finish
     with the right value, whether the original or a re-dispatched
     execution wins the race *)
  let f ~seed:_ i =
    if i = 0 then Unix.sleepf 0.08;
    i + 100
  in
  let results, _stats =
    Fleet.run
      ~config:
        { Fleet.fl_domains = 2; fl_max_attempts = 3; fl_backoff_s = 0.001; fl_timeout_s = Some 0.02 }
      ~seed:1 ~f ~encode ~decode (tasks 6)
  in
  Alcotest.(check int) "slow item's value correct" 100 (Option.get results.(0).Fleet.fr_value);
  (match results.(0).Fleet.fr_outcome with
  | Fleet.Completed | Fleet.Timed_out _ -> ()
  | o -> Alcotest.failf "expected Completed or Timed_out, got %s" (Fleet.outcome_name o));
  Array.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "item %d value" i) (i + 100) (Option.get r.Fleet.fr_value))
    results

let test_duplicate_keys_rejected () =
  let dup = [ { Fleet.tk_key = "same"; tk_payload = 1 }; { Fleet.tk_key = "same"; tk_payload = 2 } ] in
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Fleet.run: duplicate task key \"same\"")
    (fun () -> ignore (Fleet.run ~seed:1 ~f:work ~encode ~decode dup))

let test_stats_tally_merges () =
  let _, stats = run_at ~domains:3 12 in
  let snaps = Fleet.tally_to_counters stats in
  let v name =
    List.fold_left
      (fun acc (c : Telemetry.Counter.snapshot) ->
        if c.Telemetry.Counter.c_name = name then c.Telemetry.Counter.c_value else acc)
      (-1) snaps
  in
  Alcotest.(check int) "items" 12 (v "fleet.items");
  Alcotest.(check int) "completed" 12 (v "fleet.completed");
  (* merging a tally with itself doubles every counter — the merge is the
     associative Telemetry one *)
  let doubled = List.map2 Telemetry.Counter.merge snaps snaps in
  Alcotest.(check int)
    "merge is the telemetry merge" 24
    (List.fold_left
       (fun acc (c : Telemetry.Counter.snapshot) ->
         if c.Telemetry.Counter.c_name = "fleet.items" then c.Telemetry.Counter.c_value else acc)
       (-1) doubled)

(* ---- the campaign through the pool ---- *)

let tiny_fleet =
  { Experiments.quick_fleet with Experiments.fd_devices = 4; fd_specs = 1; fd_year_steps = 4 }

let test_campaign_domain_independent () =
  let r1 = Experiments.fleet_campaign ~config:tiny_fleet ~domains:1 () in
  let r2 = Experiments.fleet_campaign ~config:tiny_fleet ~domains:2 () in
  Alcotest.(check string)
    "rendered campaign byte-identical across domain counts" (Experiments.render_fleet r1)
    (Experiments.render_fleet r2)

let test_campaign_corners_seeded () =
  let c1 = Experiments.fleet_corners tiny_fleet in
  let c2 = Experiments.fleet_corners { tiny_fleet with Experiments.fd_devices = 8 } in
  (* growing the population never changes existing devices' corners *)
  List.iteri
    (fun i (a : Experiments.device_corner) ->
      let b = List.nth c2 i in
      Alcotest.(check bool) (Printf.sprintf "corner %d stable" i) true (a = b))
    c1;
  List.iter
    (fun (c : Experiments.device_corner) ->
      Alcotest.(check bool) "temp in range" true
        (c.Experiments.dc_temp_k >= tiny_fleet.Experiments.fd_temp_min_k
        && c.Experiments.dc_temp_k <= tiny_fleet.Experiments.fd_temp_max_k);
      Alcotest.(check bool) "kernel from the pool" true
        (List.mem c.Experiments.dc_kernel tiny_fleet.Experiments.fd_kernels))
    c1

let test_campaign_row_codec_roundtrip () =
  let row =
    {
      Experiments.dv_device = 3;
      dv_temp_k = 391.7251234;
      dv_vdd = 1.0333;
      dv_kernel = "crc";
      dv_onset_idx = Some 2;
      dv_worst_pair = "b_q0~r_q0~setup";
      dv_specs = 2;
      dv_detected = 1;
      dv_escape = true;
      dv_latency_cycles = Some 977;
    }
  in
  (match Experiments.fleet_row_of_json (Experiments.fleet_row_to_json row) with
  | Ok back -> Alcotest.(check bool) "row round-trips" true (row = back)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  let clean = { row with Experiments.dv_onset_idx = None; dv_latency_cycles = None } in
  match Experiments.fleet_row_of_json (Experiments.fleet_row_to_json clean) with
  | Ok back -> Alcotest.(check bool) "optional fields round-trip" true (clean = back)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_campaign_digest_ignores_robustness_knobs () =
  let d = Experiments.fleet_digest tiny_fleet in
  Alcotest.(check string) "attempts do not invalidate checkpoints" d
    (Experiments.fleet_digest { tiny_fleet with Experiments.fd_max_attempts = 9 });
  Alcotest.(check string) "timeout does not invalidate checkpoints" d
    (Experiments.fleet_digest { tiny_fleet with Experiments.fd_timeout_s = None });
  Alcotest.(check bool) "the seed does" true
    (d <> Experiments.fleet_digest { tiny_fleet with Experiments.fd_seed = 7 })

let () =
  Alcotest.run "fleet"
    [
      ( "engine",
        [
          Alcotest.test_case "derived seeds" `Quick test_derive_seed;
          domain_independence_test;
          Alcotest.test_case "telemetry counter totals domain-independent" `Quick
            test_serial_equals_parallel_with_telemetry;
          Alcotest.test_case "duplicate keys rejected" `Quick test_duplicate_keys_rejected;
          Alcotest.test_case "stats tally merges" `Quick test_stats_tally_merges;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "flaky item retried with backoff" `Quick test_flaky_item_retried;
          Alcotest.test_case "persistent failure quarantined, run survives" `Quick
            test_persistent_failure_quarantined;
          Alcotest.test_case "quarantine disposition checkpointed" `Quick
            test_quarantine_disposition_checkpointed;
          Alcotest.test_case "straggler re-dispatched, first writer wins" `Quick
            test_straggler_redispatched;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill/resume across domain counts" `Quick
            test_resume_across_domain_counts;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "byte-identical across domain counts" `Slow
            test_campaign_domain_independent;
          Alcotest.test_case "corners are seeded and population-stable" `Quick
            test_campaign_corners_seeded;
          Alcotest.test_case "row codec round-trips" `Quick test_campaign_row_codec_roundtrip;
          Alcotest.test_case "digest ignores robustness knobs" `Quick
            test_campaign_digest_ignores_robustness_knobs;
        ] );
    ]
