(* Tests for SPICE-lite: the alpha-power-law resistance model, the
   closed-form RC delay, the transient integrator against its closed-form
   oracle, and the degradation factor the aging library consumes. *)

let elec ?(vdd = 1.0) ?(vth0 = 0.35) ?(alpha = 1.4) ?(cload_ff = 2.0) ?(stack_factor = 1.0) () =
  { Cell.vdd; vth0; alpha; cload_ff; stack_factor }

let test_resistance_law () =
  let e = elec () in
  let r v = Spice.stage_resistance e ~vth:v in
  (* alpha-power law: R scales as (vdd - vth)^-alpha *)
  let expected v = e.Cell.stack_factor /. ((e.Cell.vdd -. v) ** e.Cell.alpha) in
  List.iter
    (fun v -> Alcotest.(check (float 1e-12)) (Printf.sprintf "R(%.2f)" v) (expected v) (r v))
    [ 0.0; 0.2; 0.35; 0.6; 0.9 ];
  (* monotone: a higher threshold strangles the pull-up *)
  Alcotest.(check bool) "R increases with vth" true (r 0.5 > r 0.35);
  (* stack factor is a straight multiplier *)
  let e2 = elec ~stack_factor:3.0 () in
  Alcotest.(check (float 1e-12)) "stack factor multiplies" (3.0 *. r 0.35)
    (Spice.stage_resistance e2 ~vth:0.35)

let test_resistance_rejects_vth_at_vdd () =
  let e = elec () in
  Alcotest.check_raises "vth = vdd" (Invalid_argument "Spice.stage_resistance: vth 1.000 >= vdd 1.000")
    (fun () -> ignore (Spice.stage_resistance e ~vth:1.0));
  Alcotest.check_raises "vth > vdd" (Invalid_argument "Spice.stage_resistance: vth 1.200 >= vdd 1.000")
    (fun () -> ignore (Spice.stage_resistance e ~vth:1.2))

let test_closed_form_delay () =
  let e = elec () in
  let r = Spice.stage_resistance e ~vth:e.Cell.vth0 in
  (* R * C * ln 2, with the module's 10 ps-per-RC-unit scale *)
  Alcotest.(check (float 1e-9)) "R C ln2" (r *. e.Cell.cload_ff *. 10.0 *. log 2.0)
    (Spice.stage_delay_ps e ~vth:e.Cell.vth0);
  (* doubling the load doubles the delay *)
  let e2 = elec ~cload_ff:4.0 () in
  Alcotest.(check (float 1e-9)) "linear in C"
    (2.0 *. Spice.stage_delay_ps e ~vth:0.35)
    (Spice.stage_delay_ps e2 ~vth:0.35)

let test_transient_matches_closed_form () =
  (* the integrator is the simulation, the closed form its oracle: they
     must agree to well under a percent at the default step *)
  List.iter
    (fun (v, stack) ->
      let e = elec ~stack_factor:stack () in
      let exact = Spice.stage_delay_ps e ~vth:v in
      let sim = Spice.transient_delay_ps e ~vth:v in
      let rel = Float.abs (sim -. exact) /. exact in
      if rel > 0.01 then
        Alcotest.failf "transient off by %.3f%% at vth=%.2f stack=%.1f" (100.0 *. rel) v stack)
    [ (0.2, 1.0); (0.35, 1.0); (0.5, 2.0); (0.7, 1.5) ];
  (* refining the step tightens the agreement *)
  let e = elec () in
  let exact = Spice.stage_delay_ps e ~vth:0.35 in
  let coarse = Float.abs (Spice.transient_delay_ps ~dt_ps:0.5 e ~vth:0.35 -. exact) in
  let fine = Float.abs (Spice.transient_delay_ps ~dt_ps:0.001 e ~vth:0.35 -. exact) in
  Alcotest.(check bool) "finer step converges" true (fine < coarse)

let test_degradation_factor () =
  let e = elec () in
  Alcotest.(check (float 1e-12)) "no shift, no slow-down" 1.0
    (Spice.degradation_factor e ~dvth:0.0);
  let d1 = Spice.degradation_factor e ~dvth:0.02 in
  let d2 = Spice.degradation_factor e ~dvth:0.05 in
  Alcotest.(check bool) "slow-down > 1" true (d1 > 1.0);
  Alcotest.(check bool) "monotone in dvth" true (d2 > d1);
  (* the factor is a delay ratio, so the load cancels out *)
  let e_big_load = elec ~cload_ff:20.0 () in
  Alcotest.(check (float 1e-9)) "independent of load" d1
    (Spice.degradation_factor e_big_load ~dvth:0.02)

let test_library_cells_are_sane () =
  (* every combinational cell of the shipped library has a positive fresh
     delay and degrades under a BTI-scale shift *)
  List.iter
    (fun k ->
      let e = Cell.Library.electrical Cell.Library.c28 k in
      let d = Spice.stage_delay_ps e ~vth:e.Cell.vth0 in
      Alcotest.(check bool) (Cell.Kind.to_string k ^ " fresh delay positive") true (d > 0.0);
      let f = Spice.degradation_factor e ~dvth:0.03 in
      Alcotest.(check bool) (Cell.Kind.to_string k ^ " degrades") true (f > 1.0 && f < 2.0))
    Cell.Kind.combinational

let prop_degradation_at_least_one =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"degradation_factor >= 1 for dvth >= 0"
       QCheck.(pair (float_bound_inclusive 0.25) (float_bound_inclusive 3.0))
       (fun (dvth, stack) ->
         let e = elec ~stack_factor:(1.0 +. stack) () in
         Spice.degradation_factor e ~dvth >= 1.0))

let () =
  Alcotest.run "spice"
    [
      ( "resistance",
        [
          Alcotest.test_case "alpha-power law" `Quick test_resistance_law;
          Alcotest.test_case "rejects vth >= vdd" `Quick test_resistance_rejects_vth_at_vdd;
        ] );
      ( "delay",
        [
          Alcotest.test_case "closed form" `Quick test_closed_form_delay;
          Alcotest.test_case "transient vs closed form" `Quick test_transient_matches_closed_form;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "factor" `Quick test_degradation_factor;
          Alcotest.test_case "library cells" `Quick test_library_cells_are_sane;
          prop_degradation_at_least_one;
        ] );
    ]
