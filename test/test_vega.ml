(* End-to-end tests for the Vega workflow core and smoke tests for the
   experiment drivers (small configurations). *)

let small_target = Lift.alu_target ~width:8 ()

let small_phase1 =
  {
    Vega.default_phase1 with
    Vega.clock_margin = 1.0;
    clock_tree = Clock_tree.two_domain_gated ~leaf_buffers:4 ~sp_gated:0.05 ();
  }

let analysis =
  Vega.aging_analysis ~config:small_phase1 small_target ~workload:Vega.run_minver_workload

let test_analysis_sanity () =
  Alcotest.(check bool) "clock period positive" true (analysis.Vega.clock_period_ps > 0.0);
  (* the fresh design meets timing at the derived clock *)
  Alcotest.(check int) "fresh setup clean" 0
    (List.length analysis.Vega.fresh_report.Sta.setup_violations);
  Alcotest.(check int) "fresh hold clean" 0
    (List.length analysis.Vega.fresh_report.Sta.hold_violations);
  (* aging opens violations *)
  Alcotest.(check bool) "aged violations appear" true
    (analysis.Vega.aged_report.Sta.setup_violations <> []);
  Alcotest.(check bool) "violating pairs found" true (analysis.Vega.violating_pairs <> []);
  Alcotest.(check bool) "sp profiled" true (analysis.Vega.sp_samples > 0)

let test_cell_degradation_range () =
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "factor in the Fig 8 band" true (f >= 1.015 && f <= 1.07))
    analysis.Vega.cell_degradation;
  Alcotest.(check bool) "covers all comb cells" true
    (List.length analysis.Vega.cell_degradation > 300)

let test_static_prune_identical () =
  (* The statically pruned sweep must produce the same violating pairs as
     the unpruned one (Safe pairs are proven non-violating), while
     actually pruning a nonzero fraction of the pair population. *)
  let pruned =
    Vega.aging_analysis ~config:small_phase1 ~static_prune:true small_target
      ~workload:Vega.run_minver_workload
  in
  Alcotest.(check bool) "pruned run records verdicts" true
    (pruned.Vega.static_verdicts <> None);
  (match pruned.Vega.static_verdicts with
  | None -> ()
  | Some pvs ->
    let safe, _, _ = Spbound.verdict_counts pvs in
    Alcotest.(check bool) "a nonzero fraction of pairs is Safe" true (safe > 0);
    Alcotest.(check bool) "not every pair is Safe" true (safe < List.length pvs));
  Alcotest.(check bool) "violating pairs identical with and without pruning" true
    (pruned.Vega.violating_pairs = analysis.Vega.violating_pairs);
  Alcotest.(check bool) "unpruned run records no verdicts" true
    (analysis.Vega.static_verdicts = None)

let test_full_workflow () =
  let report =
    Vega.run_workflow ~phase1:small_phase1 small_target ~workload:Vega.run_minver_workload
  in
  Alcotest.(check bool) "pairs lifted" true (report.Vega.pair_results <> []);
  Alcotest.(check bool) "suite built" true (report.Vega.suite.Lift.suite_cases <> []);
  Alcotest.(check bool) "suite cycles measured" true (report.Vega.suite_cycles > 0);
  Alcotest.(check bool) "suite runs within thousands of cycles" true
    (report.Vega.suite_cycles < 5000);
  let counts = Vega.classification_counts report.Vega.pair_results in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  Alcotest.(check int) "classification partitions pairs" (List.length report.Vega.pair_results)
    total

(* --- the batched (word-parallel) profiling path --- *)

let scalar_ones r n =
  int_of_float (Float.round (Sim.sp r n *. float_of_int (Sim.samples r)))

(* The documented contract of [Batched_profile]: ones-counts are exact
   w.r.t. a sequential back-to-back replay of the same operation stream
   (each lane's warm-up replays the preceding ops, so lane boundaries do
   not perturb the pipeline state the samples observe). *)
let test_batched_replay_matches_scalar () =
  let ops = Vega.recorded_unit_ops small_target ~workload:Vega.run_minver_workload in
  Alcotest.(check bool) "ops recorded" true (Array.length ops > 0);
  match Vega.replay_unit_ops small_target ops with
  | None -> Alcotest.fail "replay returned no simulator"
  | Some s64 ->
    let nl = small_target.Lift.netlist in
    let n = Array.length ops in
    let r = Sim.create ~profile:true nl in
    let idle = List.map (fun (p, v) -> (p, Bitvec.create ~width:(Bitvec.width v) 0)) ops.(0) in
    for _ = 1 to Alu.latency do
      List.iter (fun (p, v) -> Sim.set_input r p v) idle;
      Sim.step ~sample:false r
    done;
    Array.iter
      (fun assignment ->
        List.iter (fun (p, v) -> Sim.set_input r p v) assignment;
        Sim.step r)
      ops;
    Alcotest.(check int) "one sample per operation" n (Sim64.samples s64);
    Alcotest.(check int) "samples match scalar replay" (Sim.samples r) (Sim64.samples s64);
    let mismatches = ref 0 in
    for net = 0 to Netlist.num_nets nl - 1 do
      if Sim64.ones_count s64 net <> scalar_ones r net then incr mismatches
    done;
    Alcotest.(check int) "ones-counts exact on every net" 0 !mismatches

let test_batched_engine_analysis () =
  let a =
    Vega.aging_analysis ~engine:Vega.Batched_profile ~config:small_phase1 small_target
      ~workload:Vega.run_minver_workload
  in
  Alcotest.(check bool) "sp profiled" true (a.Vega.sp_samples > 0);
  Alcotest.(check bool) "aged violations appear" true
    (a.Vega.aged_report.Sta.setup_violations <> []);
  Alcotest.(check bool) "violating pairs found" true (a.Vega.violating_pairs <> []);
  let bad = ref 0 in
  for net = 0 to Netlist.num_nets small_target.Lift.netlist - 1 do
    let sp = a.Vega.sp_of_net net in
    if not (sp >= 0.0 && sp <= 1.0) then incr bad
  done;
  Alcotest.(check int) "sp is a probability on every net" 0 !bad

let test_machine_for () =
  let m = Vega.machine_for small_target in
  Alcotest.(check int) "width matches" 8 (Machine.config m).Machine.width;
  let mf = Vega.machine_for (Lift.fpu_target ()) in
  Alcotest.(check int) "fpu machine width" 16 (Machine.config mf).Machine.width

(* --- experiment drivers (cheap ones; the full context is exercised by the
   benchmark harness) --- *)

let test_fig4_shape () =
  let f = Experiments.fig4 () in
  List.iter
    (fun (sp, series) ->
      let _, final = List.nth series (List.length series - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "SP %.2f degradation in band" sp)
        true
        (final > 1.5 && final < 7.0);
      (* monotone in years *)
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone" true (mono series))
    f.Experiments.sp_series;
  (* lower SP ages faster: compare final points *)
  let final sp =
    let _, series = List.find (fun (s, _) -> Float.abs (s -. sp) < 1e-9) f.Experiments.sp_series in
    snd (List.nth series (List.length series - 1))
  in
  Alcotest.(check bool) "SP 0.05 worse than SP 0.95" true (final 0.05 > final 0.95)

let test_table1_shape () =
  let rows = Experiments.table1 () in
  Alcotest.(check int) "ten signals" 10 (List.length rows);
  List.iter (fun (_, sp) -> Alcotest.(check bool) "sp in [0,1]" true (sp >= 0.0 && sp <= 1.0)) rows;
  (* the biased stimulus makes $1 high-SP and $4 low-SP *)
  let sp name = snd (List.find (fun (n, _) -> String.length n >= 2 && String.sub n 3 (String.length name) = name) rows) in
  ignore sp

let test_table2_trace () =
  let t = Experiments.table2 () in
  Alcotest.(check bool) "short trace" true (t.Formal.Trace.cycles <= 4);
  Alcotest.(check bool) "observes shadow" true
    (List.exists (fun (n, _) -> String.length n > 2 && String.sub n (String.length n - 2) 2 = "_s")
       t.Formal.Trace.observed);
  let rendered = Experiments.render_table2 t in
  Alcotest.(check bool) "renders" true (String.length rendered > 40)

let () =
  Alcotest.run "vega"
    [
      ( "workflow",
        [
          Alcotest.test_case "analysis sanity" `Quick test_analysis_sanity;
          Alcotest.test_case "cell degradation" `Quick test_cell_degradation_range;
          Alcotest.test_case "static prune is transparent" `Quick test_static_prune_identical;
          Alcotest.test_case "full workflow" `Quick test_full_workflow;
          Alcotest.test_case "machine_for" `Quick test_machine_for;
        ] );
      ( "batched profile",
        [
          Alcotest.test_case "replay matches scalar" `Quick test_batched_replay_matches_scalar;
          Alcotest.test_case "aging analysis" `Quick test_batched_engine_analysis;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig4" `Quick test_fig4_shape;
          Alcotest.test_case "table1" `Quick test_table1_shape;
          Alcotest.test_case "table2" `Quick test_table2_trace;
        ] );
    ]
