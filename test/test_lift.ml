(* Tests for Error Lifting: the trace-to-instruction construction, the
   S/UR/FF/FC taxonomy, suite rendering, and end-to-end detection of the
   lifted faults on the ISS. *)

let alu8 = Lift.alu_target ~width:8 ()
let fpu_tiny = Lift.fpu_target ~fmt:Fpu_format.tiny ()

let machine_for_alu8 faulty_nl =
  Machine.create
    ~config:{ Machine.default_config with Machine.width = 8; fmt = Fpu_format.tiny }
    ~alu:(Machine.Alu_netlist faulty_nl) ~fpu:Machine.Fpu_functional ()

let test_lift_alu_pair_s () =
  let r = Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation in
  Alcotest.(check string) "classified S" "S" (Lift.classification_name r.Lift.classification);
  Alcotest.(check bool) "has cases" true (r.Lift.cases <> []);
  Alcotest.(check int) "two variants without mitigation" 2 (List.length r.Lift.variants);
  List.iter
    (fun (tc : Lift.test_case) ->
      Alcotest.(check bool) "short case" true (Lift.steps tc <= 4);
      Alcotest.(check bool) "alu body" true
        (match tc.Lift.tc_body with Lift.Alu_test _ -> true | _ -> false))
    r.Lift.cases

let test_lift_mitigation_variants () =
  let config = { Lift.default_config with Lift.mitigation = true } in
  let r =
    Lift.lift_pair ~config alu8 ~start_dff:"a_q0" ~end_dff:"r_q0"
      ~violation:Fault.Setup_violation
  in
  Alcotest.(check int) "four variants with mitigation" 4 (List.length r.Lift.variants);
  List.iter
    (fun ((spec : Fault.spec), _) ->
      Alcotest.(check bool) "edge-restricted" true
        (spec.Fault.activation <> Fault.Any_transition))
    r.Lift.variants

let test_lift_ff_budget () =
  (* a zero conflict budget can still find a trace if BCP suffices, so use
     a tiny budget and a hard pair; accept either S or FF but require the
     mechanism to engage (no exceptions) *)
  let config = { Lift.default_config with Lift.max_conflicts = 1 } in
  let r =
    Lift.lift_pair ~config fpu_tiny ~start_dff:"a_q3" ~end_dff:"r_q4"
      ~violation:Fault.Setup_violation
  in
  Alcotest.(check bool) "S or FF" true
    (r.Lift.classification = Lift.S || r.Lift.classification = Lift.FF)

let test_lift_detects_on_iss () =
  (* end-to-end: lift a pair, inject the same fault, run the suite *)
  let r = Lift.lift_pair alu8 ~start_dff:"b_q1" ~end_dff:"r_q2" ~violation:Fault.Setup_violation in
  Alcotest.(check bool) "constructed" true (r.Lift.cases <> []);
  let suite = Lift.suite_of_results alu8.Lift.kind [ r ] in
  let prog = Lift.suite_program suite in
  (* healthy pass *)
  let mh = machine_for_alu8 alu8.Lift.netlist in
  Machine.reset mh;
  (match Machine.run mh prog with
  | Machine.Exited 0 -> ()
  | o -> Alcotest.failf "healthy suite failed: %a" Machine.pp_outcome o);
  (* faulty runs for both constants *)
  List.iter
    (fun constant ->
      let spec =
        {
          Fault.start_dff = "b_q1";
          end_dff = "r_q2";
          kind = Fault.Setup_violation;
          constant;
          activation = Fault.Any_transition;
        }
      in
      let mf = machine_for_alu8 (Fault.failing_netlist alu8.Lift.netlist spec) in
      Machine.reset mf;
      match Machine.run mf prog with
      | Machine.Exited 1 -> ()
      | o -> Alcotest.failf "fault C=%s not detected: %a"
               (match constant with Fault.C0 -> "0" | Fault.C1 -> "1" | Fault.C_random -> "R")
               Machine.pp_outcome o)
    [ Fault.C0; Fault.C1 ]

let test_lift_fpu_valid_chain () =
  (* the handshake pair: lifting must succeed and flag a possible stall *)
  let r =
    Lift.lift_pair fpu_tiny ~start_dff:"v_q" ~end_dff:"v_out" ~violation:Fault.Setup_violation
  in
  Alcotest.(check bool) "constructed" true (r.Lift.cases <> []);
  Alcotest.(check bool) "some case may stall" true
    (List.exists (fun (tc : Lift.test_case) -> tc.Lift.tc_may_stall) r.Lift.cases)

let test_lift_violating_pairs_dedup () =
  let pairs =
    [
      (Sta.From_dff 0, Sta.At_dff 5, Sta.Setup, -10.0);
      (Sta.From_dff 0, Sta.At_dff 5, Sta.Setup, -5.0);
      (Sta.From_input ("a", 0), Sta.At_dff 5, Sta.Setup, -3.0);
    ]
  in
  (* cell 0 of the ALU8 netlist is an input-rank register? use real ids *)
  let nl = alu8.Lift.netlist in
  let aq0 = (Netlist.find_cell nl "a_q0").Netlist.id in
  let rq0 = (Netlist.find_cell nl "r_q0").Netlist.id in
  let pairs =
    List.map
      (fun (s, _, c, sl) ->
        let s = match s with Sta.From_dff _ -> Sta.From_dff aq0 | x -> x in
        (s, Sta.At_dff rq0, c, sl))
      pairs
  in
  let results = Lift.lift_violating_pairs alu8 pairs in
  Alcotest.(check int) "dedup to one register pair" 1 (List.length results)

let test_case_instrs_shape () =
  let r = Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation in
  let tc = List.hd r.Lift.cases in
  let instrs = Lift.case_instrs ~fail_label:"oops" tc in
  let has_bne = List.exists (function Isa.Bne (_, _, "oops") -> true | _ -> false) instrs in
  let has_alu = List.exists (function Isa.Alu _ -> true | _ -> false) instrs in
  Alcotest.(check bool) "compares against fail label" true has_bne;
  Alcotest.(check bool) "executes alu ops" true has_alu

let test_suite_order () =
  let r1 = Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation in
  let r2 = Lift.lift_pair alu8 ~start_dff:"b_q0" ~end_dff:"r_q1" ~violation:Fault.Setup_violation in
  let suite = Lift.suite_of_results alu8.Lift.kind [ r1; r2 ] in
  let n = List.length suite.Lift.suite_cases in
  Alcotest.(check bool) "multiple cases" true (n >= 2);
  let rev = List.init n (fun i -> n - 1 - i) in
  let p1 = Lift.suite_program suite in
  let p2 = Lift.suite_program ~order:rev suite in
  Alcotest.(check bool) "orders differ in layout" true (Isa.length p1 = Isa.length p2);
  (* both orders pass on healthy hardware *)
  let m = machine_for_alu8 alu8.Lift.netlist in
  Machine.reset m;
  Alcotest.(check bool) "order 1 passes" true (Machine.run m p1 = Machine.Exited 0);
  Machine.reset m;
  Alcotest.(check bool) "order 2 passes" true (Machine.run m p2 = Machine.Exited 0)

let test_fuzz_pair () =
  let r =
    Lift.fuzz_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation
  in
  Alcotest.(check string) "fuzzing constructs" "S"
    (Lift.classification_name r.Lift.classification);
  (* fuzz-built cases detect the fault just like formal ones *)
  let suite = Lift.suite_of_results alu8.Lift.kind [ r ] in
  let spec =
    {
      Fault.start_dff = "a_q0";
      end_dff = "r_q0";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  let mf = machine_for_alu8 (Fault.failing_netlist alu8.Lift.netlist spec) in
  Machine.reset mf;
  Alcotest.(check bool) "fuzzed suite detects" true
    (Machine.run mf (Lift.suite_program suite) = Machine.Exited 1);
  (* shrinking keeps cases short *)
  List.iter
    (fun tc -> Alcotest.(check bool) "shrunk case short" true (Lift.steps tc <= 6))
    r.Lift.cases

let test_fuzz_budget_exhaustion () =
  (* zero budget cannot find anything: classifies FF (fuzzing cannot prove UR) *)
  let fuzz = { Lift.default_fuzz_config with Lift.budget_cycles = 0 } in
  let r = Lift.fuzz_pair ~fuzz alu8 ~start_dff:"a_q0" ~end_dff:"r_q0"
      ~violation:Fault.Setup_violation
  in
  Alcotest.(check string) "budget exhaustion is FF" "FF"
    (Lift.classification_name r.Lift.classification)

(* the three word engines agree on detection verdicts: sim64 and simc are
   bit-identical on every fault (same lanes, same RNG stream); the scalar
   reference re-batches with one lane, so it is compared on a C0 fault,
   where verdicts do not depend on the random fault stream *)
let test_engine_equivalence () =
  let r =
    Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation
  in
  let suite = Lift.suite_of_results alu8.Lift.kind [ r ] in
  let spec c =
    {
      Fault.start_dff = "a_q0";
      end_dff = "r_q0";
      kind = Fault.Setup_violation;
      constant = c;
      activation = Fault.Any_transition;
    }
  in
  List.iter
    (fun constant ->
      let faulty = Fault.failing_netlist alu8.Lift.netlist (spec constant) in
      let v64 = Lift.detected_cases ~engine:Lift.Engine_sim64 suite faulty in
      let vc = Lift.detected_cases ~engine:Lift.Engine_simc suite faulty in
      Alcotest.(check (array bool)) "sim64 = simc" v64 vc)
    [ Fault.C0; Fault.C1; Fault.C_random ];
  let faulty0 = Fault.failing_netlist alu8.Lift.netlist (spec Fault.C0) in
  Alcotest.(check (array bool))
    "scalar = sim64 on C0"
    (Lift.detected_cases ~engine:Lift.Engine_sim64 suite faulty0)
    (Lift.detected_cases ~engine:Lift.Engine_scalar suite faulty0)

(* random baseline: healthy machines pass random suites; suites are
   deterministic per seed *)
let test_testgen () =
  let suite = Testgen.random_alu_suite ~seed:42 ~width:8 ~cases:12 () in
  Alcotest.(check int) "case count" 12 (List.length suite.Lift.suite_cases);
  let suite' = Testgen.random_alu_suite ~seed:42 ~width:8 ~cases:12 () in
  Alcotest.(check bool) "deterministic" true (suite = suite');
  let m = machine_for_alu8 alu8.Lift.netlist in
  Machine.reset m;
  Alcotest.(check bool) "healthy passes random alu suite" true
    (Machine.run m (Lift.suite_program suite) = Machine.Exited 0);
  let fsuite = Testgen.random_fpu_suite ~seed:1 ~fmt:Fpu_format.binary16 ~cases:8 () in
  let mf =
    Machine.create ~alu:Machine.Alu_functional
      ~fpu:(Machine.Fpu_netlist (Fpu.netlist ())) ()
  in
  Machine.reset mf;
  Alcotest.(check bool) "healthy passes random fpu suite" true
    (Machine.run mf (Lift.suite_program fsuite) = Machine.Exited 0);
  let matched = Testgen.matched_suite suite in
  Alcotest.(check int) "matched size" 12 (List.length matched.Lift.suite_cases)

let () =
  Alcotest.run "lift"
    [
      ( "lifting",
        [
          Alcotest.test_case "alu pair constructs" `Quick test_lift_alu_pair_s;
          Alcotest.test_case "mitigation variants" `Quick test_lift_mitigation_variants;
          Alcotest.test_case "formal budget" `Quick test_lift_ff_budget;
          Alcotest.test_case "lifted suite detects fault" `Quick test_lift_detects_on_iss;
          Alcotest.test_case "fpu valid chain" `Quick test_lift_fpu_valid_chain;
          Alcotest.test_case "pair dedup" `Quick test_lift_violating_pairs_dedup;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "case instrs shape" `Quick test_case_instrs_shape;
          Alcotest.test_case "suite order" `Quick test_suite_order;
        ] );
      ( "fuzzing",
        [
          Alcotest.test_case "fuzz constructs and detects" `Quick test_fuzz_pair;
          Alcotest.test_case "fuzz budget exhaustion" `Quick test_fuzz_budget_exhaustion;
        ] );
      ( "engines",
        [ Alcotest.test_case "detection verdicts engine-independent" `Quick test_engine_equivalence ]
      );
      ("testgen", [ Alcotest.test_case "random baseline" `Quick test_testgen ]);
    ]
