(* Tests for the static timing analysis engine, reproducing the numbers of
   the paper's Section 3 walk-through on the example adder. *)

let adder = Example_circuits.pipelined_adder ()
let example_lib = Cell.Library.example

(* The paper's example uses no clock-tree delay: clock arrivals are 0. *)
let flat_clock = { (Sta.fresh_timing example_lib) with Sta.clock_arrival_ps = (fun _ -> 0.0) }

let test_paper_example_fresh () =
  (* At 1 GHz the longest path $4 -> $7 -> $8 -> $10 accumulates 0.9 ns,
     meeting the 60 ps setup; the shortest path $1 -> $5 -> $9 has 0.2 ns,
     meeting the 30 ps hold: no violations when fresh. *)
  let r = Sta.analyze ~timing:flat_clock ~clock_period_ps:1000.0 adder in
  Alcotest.(check int) "no setup violations" 0 (List.length r.Sta.setup_violations);
  Alcotest.(check int) "no hold violations" 0 (List.length r.Sta.hold_violations);
  Alcotest.(check (float 1e-9)) "wns setup 0" 0.0 r.Sta.wns_setup_ps;
  (* worst setup endpoint is $10: slack = 1000 - 60 - 900 = 40 ps *)
  let c10 = Netlist.find_cell adder "$10" in
  let es =
    List.find (fun e -> e.Sta.ep = Sta.At_dff c10.id) r.Sta.endpoint_slacks
  in
  Alcotest.(check (float 1e-6)) "slack at $10" 40.0 es.Sta.setup_slack_ps;
  (* hold slack at $9: arrival_min 200 ps vs hold 30 ps => 170 ps *)
  let c9 = Netlist.find_cell adder "$9" in
  let e9 = List.find (fun e -> e.Sta.ep = Sta.At_dff c9.id) r.Sta.endpoint_slacks in
  Alcotest.(check (float 1e-6)) "hold slack at $9" 170.0 e9.Sta.hold_slack_ps

let test_paper_example_aged_setup () =
  (* Age the cells on the critical path by ~5.5%: 900 ps -> ~0.95 ns,
     violating the 940 ps setup requirement, as in Section 3.2.2. *)
  let aged_delay (c : Netlist.cell) =
    let t = Cell.Library.timing example_lib c.kind in
    let factor = if List.mem c.name [ "$7"; "$8" ] then 1.08 else 1.055 in
    { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. factor }
  in
  let timing = { flat_clock with Sta.cell_delay = aged_delay } in
  let r = Sta.analyze ~timing ~clock_period_ps:1000.0 adder in
  Alcotest.(check bool) "setup violations found" true (List.length r.Sta.setup_violations > 0);
  Alcotest.(check bool) "wns negative" true (r.Sta.wns_setup_ps < 0.0);
  (* all violating paths end at $10 (the only 3-deep endpoint) *)
  let c10 = Netlist.find_cell adder "$10" in
  List.iter
    (fun p -> Alcotest.(check bool) "ends at $10" true (p.Sta.finish = Sta.At_dff c10.id))
    r.Sta.setup_violations;
  (* the worst path goes through $7 and $8 *)
  let worst = List.hd r.Sta.setup_violations in
  let names = List.map (fun id -> (Netlist.cell adder id).name) worst.Sta.through in
  Alcotest.(check (list string)) "worst path cells" [ "$7"; "$8" ] names

let test_paper_example_hold_via_skew () =
  (* A clock phase shift between the launching $1 (domain 0) and capturing
     $9 (domain 1) creates the hold violation of the paper's example. *)
  let split = Example_circuits.pipelined_adder ~split_domains:true () in
  let timing =
    {
      flat_clock with
      Sta.clock_arrival_ps = (fun dom -> if dom = 1 then 180.0 else 0.0);
    }
  in
  let r = Sta.analyze ~timing ~clock_period_ps:1000.0 split in
  (* both rank-one registers $1 and $3 launch a violating path into $9 *)
  Alcotest.(check int) "hold violations found" 2 (List.length r.Sta.hold_violations);
  let starts =
    List.map (fun p -> Sta.describe_startpoint split p.Sta.start) r.Sta.hold_violations
    |> List.sort compare
  in
  Alcotest.(check (list string)) "starts" [ "$1"; "$3" ] starts;
  List.iter
    (fun p ->
      Alcotest.(check string) "end" "$9" (Sta.describe_endpoint split p.Sta.finish);
      (* arrival_min = 100 (clk->q) + 100 ($5) = 200; required = 180 + 30 = 210 *)
      Alcotest.(check (float 1e-6)) "hold slack" (-10.0) p.Sta.slack_ps)
    r.Sta.hold_violations

let test_violating_path_count () =
  (* Slow every cell dramatically: every register-to-register path through
     combinational logic must then violate setup.  Distinct violating paths
     into $10: $2/$4 -> $7 -> $8, $1/$3 -> $6 -> $8 (4 paths); into $9:
     $1/$3 -> $5 (2 paths); direct DFF->DFF input-rank paths have no comb
     delay and stay clean. *)
  let slow (c : Netlist.cell) =
    let t = Cell.Library.timing example_lib c.kind in
    { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. 2.0 }
  in
  let timing = { flat_clock with Sta.cell_delay = slow } in
  let r = Sta.analyze ~timing ~clock_period_ps:850.0 adder in
  Alcotest.(check int) "six violating setup paths" 6 (List.length r.Sta.setup_violations);
  let pairs = Sta.unique_pairs r.Sta.setup_violations in
  Alcotest.(check int) "unique endpoint pairs" 6 (List.length pairs)

let test_unique_pairs_dedup () =
  (* force two violating paths between the same pair by slowing only $6/$7:
     both $2->$7->$8->$10 and $2 is unique per start; instead check that
     unique_pairs keeps worst slack *)
  let p1 =
    {
      Sta.start = Sta.From_dff 1;
      finish = Sta.At_dff 9;
      through = [ 6 ];
      delay_ps = 950.0;
      slack_ps = -10.0;
      check = Sta.Setup;
    }
  in
  let p2 = { p1 with Sta.through = [ 7 ]; delay_ps = 960.0; slack_ps = -20.0 } in
  let pairs = Sta.unique_pairs [ p1; p2 ] in
  Alcotest.(check int) "merged" 1 (List.length pairs);
  let _, best = List.hd pairs in
  Alcotest.(check (float 1e-9)) "kept worst" (-20.0) best.Sta.slack_ps

let test_aged_timing_source () =
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  (* constant SP 0.1: heavy stress everywhere *)
  let timing = Sta.aged_timing ~sp_of_net:(fun _ -> 0.1) ~years:10.0 aglib in
  let fresh = Sta.fresh_timing Cell.Library.c28 in
  let c7 = Netlist.find_cell adder "$7" in
  let aged_d = timing.Sta.cell_delay c7 and fresh_d = fresh.Sta.cell_delay c7 in
  Alcotest.(check bool) "aged slower" true (aged_d.Cell.tpd_max_ps > fresh_d.Cell.tpd_max_ps);
  Alcotest.(check bool) "ratio in 4-8% band" true
    (let r = aged_d.Cell.tpd_max_ps /. fresh_d.Cell.tpd_max_ps in
     r > 1.03 && r < 1.09)

let test_em_aware_timing () =
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  let bti_only = Sta.aged_timing ~sp_of_net:(fun _ -> 0.5) ~years:10.0 aglib in
  let with_em =
    Sta.aged_timing ~toggle_of_net:(fun _ -> 0.8) ~sp_of_net:(fun _ -> 0.5) ~years:10.0 aglib
  in
  let c7 = Netlist.find_cell adder "$7" in
  let d_bti = (bti_only.Sta.cell_delay c7).Cell.tpd_max_ps in
  let d_em = (with_em.Sta.cell_delay c7).Cell.tpd_max_ps in
  Alcotest.(check bool) "EM adds delay on busy nets" true (d_em > d_bti);
  (* idle nets see no EM contribution *)
  let idle =
    Sta.aged_timing ~toggle_of_net:(fun _ -> 0.0) ~sp_of_net:(fun _ -> 0.5) ~years:10.0 aglib
  in
  Alcotest.(check (float 1e-9)) "no activity, no EM" d_bti
    ((idle.Sta.cell_delay c7).Cell.tpd_max_ps)

(* ---------- aged-corner edge cases on minimal paths ---------- *)

let aglib_c28 = Aging.Timing_library.build Cell.Library.c28
let aged_sp sp = Sta.aged_timing ~sp_of_net:(fun _ -> sp) ~years:10.0 aglib_c28

let pair_slack pairs st en ck =
  match List.find_opt (fun (s, e, c, _) -> s = st && e = en && c = ck) pairs with
  | Some (_, _, _, sl) -> sl
  | None -> Alcotest.fail "expected register pair missing from endpoint_pairs"

let test_direct_dff_to_dff () =
  (* Zero combinational cells between the registers: the setup arrival is
     exactly clk-to-Q max, the hold arrival clk-to-Q min, and same-domain
     clock arrivals cancel even when the tree buffers age. *)
  let b = Netlist.Builder.create "direct" in
  let d = Netlist.Builder.add_input b "d" 1 in
  let a_id, qa = Netlist.Builder.add_cell_with_id ~clock_domain:0 b Cell.Kind.Dff [| d.(0) |] in
  let b_id, qb = Netlist.Builder.add_cell_with_id ~clock_domain:0 b Cell.Kind.Dff [| qa |] in
  Netlist.Builder.add_output b "q" [| qb |];
  let nl = Netlist.Builder.finish b in
  let timing = aged_sp 0.2 in
  let period = 500.0 in
  let pairs = Sta.endpoint_pairs ~timing ~clock_period_ps:period nl in
  let dt = timing.Sta.dff_timing in
  Alcotest.(check (float 1e-6)) "setup slack = T - clkq_max - setup"
    (period -. dt.Cell.clk_to_q_max_ps -. dt.Cell.setup_ps)
    (pair_slack pairs (Sta.From_dff a_id) (Sta.At_dff b_id) Sta.Setup);
  Alcotest.(check (float 1e-6)) "hold slack = clkq_min - hold"
    (dt.Cell.clk_to_q_min_ps -. dt.Cell.hold_ps)
    (pair_slack pairs (Sta.From_dff a_id) (Sta.At_dff b_id) Sta.Hold)

let test_single_cell_aged_path () =
  (* One inverter between the registers: the pair's setup slack must track
     the aged inverter delay exactly, and lowering SP (more stress) must
     eat slack monotonically. *)
  let b = Netlist.Builder.create "single" in
  let d = Netlist.Builder.add_input b "d" 1 in
  let a_id, qa = Netlist.Builder.add_cell_with_id ~clock_domain:0 b Cell.Kind.Dff [| d.(0) |] in
  let inv_id, inv = Netlist.Builder.add_cell_with_id b Cell.Kind.Not [| qa |] in
  let b_id, qb = Netlist.Builder.add_cell_with_id ~clock_domain:0 b Cell.Kind.Dff [| inv |] in
  Netlist.Builder.add_output b "q" [| qb |];
  let nl = Netlist.Builder.finish b in
  let period = 500.0 in
  let slack_at sp =
    let timing = aged_sp sp in
    let pairs = Sta.endpoint_pairs ~timing ~clock_period_ps:period nl in
    let dt = timing.Sta.dff_timing in
    let aged_inv = (timing.Sta.cell_delay (Netlist.cell nl inv_id)).Cell.tpd_max_ps in
    let got = pair_slack pairs (Sta.From_dff a_id) (Sta.At_dff b_id) Sta.Setup in
    Alcotest.(check (float 1e-6)) "setup slack = T - clkq_max - aged inv - setup"
      (period -. dt.Cell.clk_to_q_max_ps -. aged_inv -. dt.Cell.setup_ps) got;
    got
  in
  let stressed = slack_at 0.05 and relaxed = slack_at 0.95 in
  Alcotest.(check bool) "lower SP ages harder" true (stressed < relaxed)

let test_chain_delay_summation () =
  (* Buf -> Not -> Buf: the single path's aged delays must add up. *)
  let b = Netlist.Builder.create "chain" in
  let d = Netlist.Builder.add_input b "d" 1 in
  let a_id, qa = Netlist.Builder.add_cell_with_id ~clock_domain:0 b Cell.Kind.Dff [| d.(0) |] in
  let c1_id, n1 = Netlist.Builder.add_cell_with_id b Cell.Kind.Buf [| qa |] in
  let c2_id, n2 = Netlist.Builder.add_cell_with_id b Cell.Kind.Not [| n1 |] in
  let c3_id, n3 = Netlist.Builder.add_cell_with_id b Cell.Kind.Buf [| n2 |] in
  let b_id, qb = Netlist.Builder.add_cell_with_id ~clock_domain:0 b Cell.Kind.Dff [| n3 |] in
  Netlist.Builder.add_output b "q" [| qb |];
  let nl = Netlist.Builder.finish b in
  let timing = aged_sp 0.1 in
  let period = 800.0 in
  let pairs = Sta.endpoint_pairs ~timing ~clock_period_ps:period nl in
  let dt = timing.Sta.dff_timing in
  let comb =
    List.fold_left
      (fun acc id -> acc +. (timing.Sta.cell_delay (Netlist.cell nl id)).Cell.tpd_max_ps)
      0.0 [ c1_id; c2_id; c3_id ]
  in
  Alcotest.(check (float 1e-6)) "setup slack sums the aged chain"
    (period -. dt.Cell.clk_to_q_max_ps -. comb -. dt.Cell.setup_ps)
    (pair_slack pairs (Sta.From_dff a_id) (Sta.At_dff b_id) Sta.Setup)

let test_skip_drops_only_skipped_pairs () =
  let timing = aged_sp 0.3 in
  let all = Sta.endpoint_pairs ~timing ~clock_period_ps:850.0 adder in
  Alcotest.(check bool) "adder has register pairs" true (all <> []);
  let s0, e0, c0, _ = List.hd all in
  let skip s e c = s = s0 && e = e0 && c = c0 in
  let pruned = Sta.endpoint_pairs ~skip ~timing ~clock_period_ps:850.0 adder in
  let expected = List.filter (fun (s, e, c, _) -> not (skip s e c)) all in
  Alcotest.(check int) "exactly one pair dropped" (List.length all - 1) (List.length pruned);
  Alcotest.(check bool) "surviving pairs are untouched" true (pruned = expected)

let test_describe_path () =
  let slow (c : Netlist.cell) =
    let t = Cell.Library.timing example_lib c.kind in
    { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. 2.0 }
  in
  let timing = { flat_clock with Sta.cell_delay = slow } in
  let r = Sta.analyze ~timing ~clock_period_ps:850.0 adder in
  let descr = Sta.describe_path adder (List.hd r.Sta.setup_violations) in
  Alcotest.(check bool) "mentions setup" true
    (String.length descr > 0
    &&
    let rec contains i =
      i + 5 <= String.length descr && (String.sub descr i 5 = "setup" || contains (i + 1))
    in
    contains 0)

let test_render_report () =
  let slow (c : Netlist.cell) =
    let t = Cell.Library.timing example_lib c.kind in
    { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. 2.0 }
  in
  let timing = { flat_clock with Sta.cell_delay = slow } in
  let r = Sta.analyze ~timing ~clock_period_ps:850.0 adder in
  let text = Sta.render_report adder r in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions WNS" true (contains "WNS");
  Alcotest.(check bool) "mentions violations" true (contains "setup violations: 6");
  Alcotest.(check bool) "mentions endpoints" true (contains "tightest endpoints");
  Alcotest.(check bool) "describes a path" true (contains "$10")

let test_truncation () =
  let slow (c : Netlist.cell) =
    let t = Cell.Library.timing example_lib c.kind in
    { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. 2.0 }
  in
  let timing = { flat_clock with Sta.cell_delay = slow } in
  let r = Sta.analyze ~max_violating_paths:2 ~timing ~clock_period_ps:850.0 adder in
  Alcotest.(check bool) "truncated flagged" true r.Sta.truncated;
  Alcotest.(check int) "capped" 2 (List.length r.Sta.setup_violations)

(* Property: path delays reported by enumeration never exceed the
   propagated arrival-time bound, and slacks are consistent. *)
let prop_paths_within_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"enumerated setup paths consistent with slack"
       (QCheck.make ~print:(Printf.sprintf "%.1f")
          QCheck.Gen.(float_range 700.0 1100.0))
       (fun period ->
         let slow (c : Netlist.cell) =
           let t = Cell.Library.timing example_lib c.kind in
           { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. 1.6 }
         in
         let timing = { flat_clock with Sta.cell_delay = slow } in
         let r = Sta.analyze ~timing ~clock_period_ps:period adder in
         List.for_all
           (fun p ->
             p.Sta.slack_ps < 0.0
             && Float.abs (p.Sta.slack_ps -. (period -. 60.0 -. p.Sta.delay_ps)) < 1e-6)
           r.Sta.setup_violations))

(* Property: Monte-Carlo path sampling never exceeds the propagated
   arrival-time bound at any endpoint. *)
let prop_monte_carlo_paths_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"sampled path delays within STA bounds"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let nl = Alu.netlist ~width:8 () in
         let timing = Sta.fresh_timing ~clock_tree:Clock_tree.single_domain Cell.Library.c28 in
         let r = Sta.analyze ~timing ~clock_period_ps:1e9 nl in
         (* pick a random endpoint and walk a random backward path, summing
            max delays; the arrival must be <= the endpoint's bound *)
         let dffs = Array.of_list (Netlist.dffs nl) in
         let ep = dffs.(Random.State.int rng (Array.length dffs)) in
         let ep_cell = Netlist.cell nl ep in
         let bound =
           let es = List.find (fun e -> e.Sta.ep = Sta.At_dff ep) r.Sta.endpoint_slacks in
           1e9 -. es.Sta.setup_slack_ps -. (Cell.Library.dff Cell.Library.c28).Cell.setup_ps
         in
         let rec walk net acc =
           match Netlist.driver nl net with
           | Netlist.Driven_by_input _ -> None  (* unconstrained start *)
           | Netlist.Driven_by_cell id ->
             let c = Netlist.cell nl id in
             if Cell.Kind.is_sequential c.Netlist.kind then
               Some (acc +. (Cell.Library.dff Cell.Library.c28).Cell.clk_to_q_max_ps)
             else if Array.length c.Netlist.inputs = 0 then None  (* tie *)
             else begin
               let d = (timing.Sta.cell_delay c).Cell.tpd_max_ps in
               let pin = Random.State.int rng (Array.length c.Netlist.inputs) in
               walk c.Netlist.inputs.(pin) (acc +. d)
             end
         in
         match walk ep_cell.Netlist.inputs.(0) 0.0 with
         | None -> true  (* path from an unconstrained source *)
         | Some arrival -> arrival <= bound +. 1e-6))

let () =
  Alcotest.run "sta"
    [
      ( "paper example",
        [
          Alcotest.test_case "fresh timing clean" `Quick test_paper_example_fresh;
          Alcotest.test_case "aged setup violation" `Quick test_paper_example_aged_setup;
          Alcotest.test_case "hold violation via skew" `Quick test_paper_example_hold_via_skew;
        ] );
      ( "path enumeration",
        [
          Alcotest.test_case "violating path count" `Quick test_violating_path_count;
          Alcotest.test_case "unique pairs dedup" `Quick test_unique_pairs_dedup;
          Alcotest.test_case "describe path" `Quick test_describe_path;
          Alcotest.test_case "render report" `Quick test_render_report;
          Alcotest.test_case "truncation cap" `Quick test_truncation;
        ] );
      ( "aging integration",
        [
          Alcotest.test_case "aged timing source" `Quick test_aged_timing_source;
          Alcotest.test_case "em-aware timing" `Quick test_em_aware_timing;
        ] );
      ( "aged corners",
        [
          Alcotest.test_case "direct DFF-to-DFF pair" `Quick test_direct_dff_to_dff;
          Alcotest.test_case "single-cell aged path" `Quick test_single_cell_aged_path;
          Alcotest.test_case "chain delay summation" `Quick test_chain_delay_summation;
          Alcotest.test_case "skip drops only skipped pairs" `Quick
            test_skip_drops_only_skipped_pairs;
        ] );
      ("properties", [ prop_paths_within_bounds; prop_monte_carlo_paths_bounded ]);
    ]
