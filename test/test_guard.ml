(* Tests for the closed-loop runtime guard: mid-life fault onset, adaptive
   test cadence, stall-as-detection, recovery policies, and the
   fault-injection campaign driver. *)

let width = 16
let fmt = Fpu_format.binary16
let alu_target = Lift.alu_target ~width ()
let fpu16 = Fpu.netlist ~fmt ()

let alu_spec =
  {
    Fault.start_dff = "a_q0";
    end_dff = "r_q0";
    kind = Fault.Setup_violation;
    constant = Fault.C0;
    activation = Fault.Any_transition;
  }

(* A real lifted suite for the injected ALU pair — the same construction the
   campaign uses, so detection semantics are the production ones. *)
let alu_suite =
  let r =
    Lift.lift_pair alu_target ~start_dff:alu_spec.Fault.start_dff
      ~end_dff:alu_spec.Fault.end_dff ~violation:alu_spec.Fault.kind
  in
  Lift.suite_of_results alu_target.Lift.kind [ r ]

(* The FPU suite is synthetic: golden-expected Fadd steps.  Any FPU case
   suffices for the stall tests — detection manifests as the watchdog, not
   as a wrong value. *)
let fpu_spec =
  {
    Fault.start_dff = "v_q";
    end_dff = "v_out";
    kind = Fault.Hold_violation;
    constant = Fault.C_random;
    activation = Fault.Any_transition;
  }

let fadd_step a b =
  let av = Fpu_format.of_float fmt a and bv = Fpu_format.of_float fmt b in
  let r, fl = Fpu.golden fmt Fpu_format.Fadd av bv in
  {
    Lift.f_op = Fpu_format.Fadd;
    f_lhs = Bitvec.to_int av;
    f_rhs = Bitvec.to_int bv;
    f_expected = Bitvec.to_int r;
    f_flags = fl;
  }

let fpu_suite =
  {
    Lift.suite_target = Lift.Fpu_module { fmt };
    suite_cases =
      [
        {
          Lift.tc_id = "fpu-valid";
          tc_spec = fpu_spec;
          tc_body = Lift.Fpu_test [ fadd_step 1.5 2.25; fadd_step 0.5 0.75 ];
          tc_may_stall = true;
          tc_checks_flags = false;
        };
      ];
  }

let machine ?(seed = 7) ~alu ~fpu () =
  let config = { Machine.default_config with Machine.width; fmt; rng_seed = seed } in
  Machine.create ~config ~alu ~fpu ()

(* A pure-ALU countdown loop: ~3 instructions per iteration. *)
let app_prog n =
  Isa.assemble
    [ Isa.Li (1, n); Isa.Label "loop"; Isa.Alui (Alu.Sub, 1, 1, 1); Isa.Bne (1, 0, "loop");
      Isa.Ecall 0 ]

let test_injector_onset_timing () =
  let m = machine ~alu:(Machine.Alu_netlist alu_target.Lift.netlist) ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  let inj =
    Guard.Injector.create ~machine:m ~slot:Guard.Injector.Alu_slot ~spec:alu_spec
      (Guard.Injector.permanent 100)
  in
  let first_active = ref None in
  let on_instr _pc =
    Guard.Injector.tick inj;
    if Guard.Injector.active inj && !first_active = None then
      first_active := Some (Machine.instructions_retired m)
  in
  let _ = Machine.run ~on_instr m (app_prog 100) in
  Alcotest.(check (option int)) "activates exactly at onset" (Some 100) !first_active;
  (match Guard.Injector.onset inj with
  | Some (n, _) -> Alcotest.(check int) "onset recorded" 100 n
  | None -> Alcotest.fail "no onset recorded");
  Guard.Injector.disable inj;
  Alcotest.(check bool) "disabled" true (Guard.Injector.disabled inj);
  Alcotest.(check bool) "inactive after disable" false (Guard.Injector.active inj)

let test_injector_rejects_functional_backend () =
  let m = machine ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional () in
  match
    Guard.Injector.create ~machine:m ~slot:Guard.Injector.Alu_slot ~spec:alu_spec
      (Guard.Injector.permanent 1)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for functional backend"

(* C_random hold violation on the FPU valid handshake: the app (pure ALU)
   never notices, but the next interleaved FPU test case wedges the unit.
   The machine watchdog turns that into [Machine.Stalled], the monitor books
   it as a detection with a " (stall)" marker, and failover recovery retires
   the unit so the app still completes. *)
let test_stall_detection_and_recovery () =
  let m = machine ~seed:1 ~alu:Machine.Alu_functional ~fpu:(Machine.Fpu_netlist fpu16) () in
  Machine.reset m;
  let inj =
    Guard.Injector.create ~machine:m ~slot:Guard.Injector.Fpu_slot ~spec:fpu_spec
      (Guard.Injector.permanent 50)
  in
  let config =
    {
      Guard.Monitor.default_config with
      Guard.Monitor.cadence = 20;
      max_cadence = 100;
      policy = Guard.Monitor.Failover;
      max_instructions = 100_000;
    }
  in
  let report = Guard.Monitor.run ~config ~injector:inj ~suite:fpu_suite m (app_prog 300) in
  (match report.Guard.Monitor.r_verdict with
  | Guard.Monitor.App_completed (Machine.Exited 0) -> ()
  | Guard.Monitor.App_completed o ->
    Alcotest.failf "app did not complete cleanly: %a" Machine.pp_outcome o
  | Guard.Monitor.Guard_aborted why -> Alcotest.failf "guard aborted: %s" why);
  Alcotest.(check bool) "detected" true (Guard.Monitor.detected report);
  let det =
    match report.Guard.Monitor.r_detections with
    | d :: _ -> d
    | [] -> Alcotest.fail "no detections"
  in
  let suffix = " (stall)" in
  let id = det.Guard.Monitor.det_id in
  Alcotest.(check bool)
    (Printf.sprintf "detection %S is a stall" id)
    true
    (String.length id > String.length suffix
    && String.sub id (String.length id - String.length suffix) (String.length suffix) = suffix);
  Alcotest.(check bool) "recovered" true report.Guard.Monitor.r_recovered;
  Alcotest.(check bool) "unit retired" true (Guard.Injector.disabled inj);
  (match report.Guard.Monitor.r_latency with
  | Some (instrs, cycles) ->
    Alcotest.(check bool) "finite positive latency" true (instrs >= 0 && cycles > 0)
  | None -> Alcotest.fail "no latency measured")

let crc = Workload.find "crc"
let compiled_crc = Minic.assemble (Minic.compile ~width ~fmt crc.Workload.program)

let golden_crc =
  let m = machine ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  (match Machine.run ~max_instructions:5_000_000 m compiled_crc with
  | Machine.Exited 0 -> ()
  | o -> Alcotest.failf "golden crc run failed: %a" Machine.pp_outcome o);
  (Bitvec.to_int (Machine.mem m Workload.checksum_address), Machine.instructions_retired m)

let crc_onset () =
  let _, golden_instrs = golden_crc in
  golden_instrs / 5

(* Without the guard, the mid-life C=0 fault corrupts the checksum but the
   kernel still exits cleanly: a silent data corruption escape. *)
let test_unguarded_escape () =
  let golden_sum, _ = golden_crc in
  let m = machine ~alu:(Machine.Alu_netlist alu_target.Lift.netlist) ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  let inj =
    Guard.Injector.create ~machine:m ~slot:Guard.Injector.Alu_slot ~spec:alu_spec
      (Guard.Injector.permanent (crc_onset ()))
  in
  (match
     Machine.run ~max_instructions:1_000_000 ~on_instr:(fun _ -> Guard.Injector.tick inj) m
       compiled_crc
   with
  | Machine.Exited 0 -> ()
  | o -> Alcotest.failf "expected a clean (corrupt) exit, got %a" Machine.pp_outcome o);
  let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
  Alcotest.(check bool) "checksum silently corrupted" true (sum <> golden_sum)

(* Under checkpoint/rollback the same fault is detected, the app rolls back
   to a verified checkpoint, re-executes on the golden backend, and the
   final checksum matches the fault-free run. *)
let test_rollback_recovers_golden_checksum () =
  let golden_sum, _ = golden_crc in
  let m = machine ~alu:(Machine.Alu_netlist alu_target.Lift.netlist) ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  let inj =
    Guard.Injector.create ~machine:m ~slot:Guard.Injector.Alu_slot ~spec:alu_spec
      (Guard.Injector.permanent (crc_onset ()))
  in
  let config =
    {
      Guard.Monitor.default_config with
      Guard.Monitor.cadence = 100;
      max_cadence = 2_000;
      policy = Guard.Monitor.Rollback_retry { checkpoint_every = 2_000; max_retries = 3 };
      max_instructions = 1_000_000;
    }
  in
  let report = Guard.Monitor.run ~config ~injector:inj ~suite:alu_suite m compiled_crc in
  (match report.Guard.Monitor.r_verdict with
  | Guard.Monitor.App_completed (Machine.Exited 0) -> ()
  | Guard.Monitor.App_completed o -> Alcotest.failf "app failed: %a" Machine.pp_outcome o
  | Guard.Monitor.Guard_aborted why -> Alcotest.failf "guard aborted: %s" why);
  Alcotest.(check bool) "detected" true (Guard.Monitor.detected report);
  Alcotest.(check bool) "recovered" true report.Guard.Monitor.r_recovered;
  Alcotest.(check bool) "rolled back at least once" true (report.Guard.Monitor.r_retries >= 1);
  Alcotest.(check bool) "checkpoints were taken" true (report.Guard.Monitor.r_checkpoints >= 1);
  let sum = Bitvec.to_int (Machine.mem m Workload.checksum_address) in
  Alcotest.(check int) "checksum matches the golden run" golden_sum sum;
  (match report.Guard.Monitor.r_latency with
  | Some (instrs, _) -> Alcotest.(check bool) "finite latency" true (instrs >= 0)
  | None -> Alcotest.fail "no latency measured");
  Alcotest.(check bool) "cadence backed off while healthy" true
    (report.Guard.Monitor.r_final_cadence >= 100)

(* Degenerate monitor configurations must be rejected up front — a zero
   cadence used to be silently clamped, a zero poll interval would re-fire
   on every instruction. *)
let test_config_rejects_degenerate () =
  let m = machine ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional () in
  let run config = ignore (Guard.Monitor.run ~config ~suite:alu_suite m (app_prog 10)) in
  Alcotest.check_raises "zero test cadence"
    (Invalid_argument "Guard.Monitor.run: test cadence must be positive") (fun () ->
      run { Guard.Monitor.default_config with Guard.Monitor.cadence = 0 });
  Alcotest.check_raises "zero canary poll cadence"
    (Invalid_argument "Guard.Monitor.run: canary poll cadence must be positive") (fun () ->
      run { Guard.Monitor.default_config with Guard.Monitor.canary_poll = Some 0 });
  Alcotest.check_raises "zero instruction budget"
    (Invalid_argument "Guard.Monitor.run: instruction budget must be positive") (fun () ->
      run { Guard.Monitor.default_config with Guard.Monitor.max_instructions = 0 });
  Alcotest.check_raises "zero checkpoint interval"
    (Invalid_argument "Guard.Monitor.run: checkpoint interval must be positive") (fun () ->
      run
        {
          Guard.Monitor.default_config with
          Guard.Monitor.policy =
            Guard.Monitor.Rollback_retry { checkpoint_every = 0; max_retries = 1 };
        })

(* The hardware channel end to end: a canary-monitored ALU, an injector
   whose aged replica arms the canaries at onset, and a poll cadence much
   tighter than the test cadence.  The canary trip must come in first and
   beat the software-tests-only configuration's detection latency. *)
let test_canary_channel_beats_software_tests () =
  let nl = alu_target.Lift.netlist in
  let paths =
    Canary.plan ~count:2 nl ~timing:(Sta.fresh_timing Cell.Library.c28) ~clock_period_ps:1.0
  in
  Alcotest.(check bool) "paths planned" true (paths <> []);
  let monitored, _ = Canary.insert nl paths in
  let run_with canary_poll =
    let m = machine ~alu:(Machine.Alu_netlist monitored) ~fpu:Machine.Fpu_functional () in
    Machine.reset m;
    let inj =
      Guard.Injector.create ~machine:m ~slot:Guard.Injector.Alu_slot ~spec:alu_spec
        (Guard.Injector.permanent 100)
    in
    let config =
      {
        Guard.Monitor.default_config with
        Guard.Monitor.cadence = 400;
        max_cadence = 1_000;
        max_instructions = 100_000;
        canary_poll;
      }
    in
    Guard.Monitor.run ~config ~injector:inj ~suite:alu_suite m (app_prog 300)
  in
  let with_canary = run_with (Some 25) in
  let sw_only = run_with None in
  Alcotest.(check int) "software-only run never polls" 0 sw_only.Guard.Monitor.r_canary_polls;
  Alcotest.(check bool) "canary run polls" true (with_canary.Guard.Monitor.r_canary_polls > 0);
  let first = function
    | { Guard.Monitor.r_detections = d :: _; _ } -> d
    | _ -> Alcotest.fail "no detection"
  in
  let cd = first with_canary and sd = first sw_only in
  Alcotest.(check bool)
    (Printf.sprintf "first detection %S is a canary trip" cd.Guard.Monitor.det_id)
    true
    (String.length cd.Guard.Monitor.det_id >= 8
    && String.sub cd.Guard.Monitor.det_id 0 8 = "__canary");
  ignore sd;
  match (with_canary.Guard.Monitor.r_latency, sw_only.Guard.Monitor.r_latency) with
  | Some (ci, _), Some (si, _) ->
    Alcotest.(check bool)
      (Printf.sprintf "canary latency %d < software latency %d" ci si)
      true (ci < si)
  | _ -> Alcotest.fail "latency missing"

(* The campaign driver on a minimal configuration: the acceptance invariants
   plus bit-identical output across two invocations (the CI contract). *)
let test_campaign_acceptance_and_determinism () =
  let config =
    {
      Experiments.quick_campaign with
      Experiments.cg_kernels = [ "crc" ];
      cg_specs_per_unit = 1;
      cg_constants = [ Fault.C0 ];
    }
  in
  let rows1 = Experiments.campaign ~config () in
  let rows2 = Experiments.campaign ~config () in
  Alcotest.(check string) "deterministic rendering" (Experiments.render_campaign rows1)
    (Experiments.render_campaign rows2);
  let s = Experiments.campaign_summary rows1 in
  Alcotest.(check bool) "has unguarded escapes" true (s.Experiments.cs_unguarded_escapes >= 1);
  Alcotest.(check int) "no guarded escapes" 0 s.Experiments.cs_guarded_escapes;
  Alcotest.(check int) "every guarded run detects" s.Experiments.cs_guarded_rows
    s.Experiments.cs_guarded_detected;
  Alcotest.(check int) "rollback checksums all golden" s.Experiments.cs_rollback_rows
    s.Experiments.cs_rollback_checksum_ok;
  Alcotest.(check bool) "rollback rows exist" true (s.Experiments.cs_rollback_rows >= 1)

let () =
  Alcotest.run "guard"
    [
      ( "injector",
        [
          Alcotest.test_case "onset timing" `Quick test_injector_onset_timing;
          Alcotest.test_case "rejects functional backend" `Quick
            test_injector_rejects_functional_backend;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "stall detection and failover" `Quick
            test_stall_detection_and_recovery;
          Alcotest.test_case "unguarded escape" `Quick test_unguarded_escape;
          Alcotest.test_case "rollback recovers golden checksum" `Quick
            test_rollback_recovers_golden_checksum;
          Alcotest.test_case "rejects degenerate config" `Quick test_config_rejects_degenerate;
          Alcotest.test_case "canary channel beats software tests" `Quick
            test_canary_channel_beats_software_tests;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "acceptance and determinism" `Slow
            test_campaign_acceptance_and_determinism;
        ] );
    ]
